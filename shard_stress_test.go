package mogul

// Stress test for the sharded fan-out under concurrent mutation,
// mirroring engine_stress_test.go one layer up: fan-out searchers
// (held ShardedSearchers and the pooled ShardedIndex methods) hammer
// the index while Insert/Delete/Compact churn the shards underneath.
// Run under -race in CI, this proves two invariants at once: the
// per-shard epoch-based scratch invalidation (a held searcher's
// workspaces survive any shard's base swap), and the sharded id-map
// consistency (a search can never pair a post-compaction shard state
// with pre-compaction local<->global maps, or see a shard answer with
// a local id the maps do not cover).

import (
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"mogul/internal/dataset"
)

func TestShardedSearchVsConcurrentMutation(t *testing.T) {
	ds := dataset.Mixture(dataset.MixtureConfig{
		N: 1000, Classes: 8, Dim: 12, WithinStd: 0.3, Separation: 2.5, Seed: 37,
	})
	const base = 800
	six, err := BuildSharded(ds.Points[:base], Options{Seed: 3}, ShardOptions{Shards: 4, Partitioner: PartitionKMeans})
	if err != nil {
		t.Fatal(err)
	}

	const (
		searchWorkers = 4
		queriesEach   = 200
		compactRounds = 6
	)
	var (
		wg       sync.WaitGroup
		searched atomic.Int64
		stop     atomic.Bool
	)

	// Held-ShardedSearcher workers: each keeps one fan-out engine —
	// and therefore one pinned Searcher per shard — across every
	// query, including across the compactions below; the worst case
	// for stale scratches AND stale id maps.
	for w := 0; w < searchWorkers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ss := six.NewSearcher()
			for i := 0; i < queriesEach; i++ {
				q := (i*131 + w*17) % base
				res, err := ss.TopK(q, 10)
				if err != nil {
					// The query may have been tombstoned by the mutator;
					// anything else is a real bug (the live count never
					// drops below base, and global ids of live items are
					// stable across every compaction).
					if !strings.Contains(err.Error(), "deleted") {
						t.Errorf("TopK(%d): %v", q, err)
						return
					}
					continue
				}
				if len(res) == 0 {
					t.Error("empty result from live sharded index")
					return
				}
				for _, r := range res {
					if r.Node < 0 {
						t.Errorf("negative global id %d", r.Node)
						return
					}
				}
				searched.Add(1)
			}
		}(w)
	}

	// Pool-path workers: plain ShardedIndex methods plus vector
	// queries, exercising the searcher pool while epochs move.
	for w := 0; w < searchWorkers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < queriesEach; i++ {
				if stop.Load() {
					return
				}
				if _, err := six.TopKVector(ds.Points[base+(i+w)%(len(ds.Points)-base)], 5); err != nil {
					t.Errorf("TopKVector: %v", err)
					return
				}
				if _, err := six.TopK((i*59+w*7)%base, 5); err != nil && !strings.Contains(err.Error(), "deleted") {
					t.Errorf("pooled TopK: %v", err)
					return
				}
				searched.Add(1)
			}
		}(w)
	}

	// Mutator: insert, delete, compact in a loop. Every Compact
	// rebuilds shard bases (bumping their engine epochs) and — when
	// tombstones fold in — renumbers the id maps under the write lock
	// while searches stream.
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer stop.Store(true)
		next := base
		for round := 0; round < compactRounds; round++ {
			for j := 0; j < 10; j++ {
				if _, err := six.Insert(ds.Points[next%len(ds.Points)]); err != nil {
					t.Errorf("Insert: %v", err)
					return
				}
				next++
			}
			if err := six.Delete(round * 13 % base); err != nil {
				// Already deleted in a previous round is fine.
				continue
			}
			if err := six.Compact(); err != nil {
				t.Errorf("Compact: %v", err)
				return
			}
		}
	}()

	wg.Wait()
	if searched.Load() == 0 {
		t.Fatal("no searches completed")
	}
	// The index is still coherent after the storm: every live item
	// queries, the maps agree with the shards.
	if six.Len() < base {
		t.Fatalf("live count %d below base %d", six.Len(), base)
	}
	if _, err := six.TopK(1, 10); err != nil {
		t.Fatal(err)
	}
}

// TestShardedSearcherSurvivesCompactMidStream pins the
// epoch-invalidation path deterministically (the stress test above
// exercises it probabilistically): a held ShardedSearcher searches,
// one shard compacts away tombstones (renumbering its locals and
// swapping its base), and the same searcher must serve the next query
// against the new state.
func TestShardedSearcherSurvivesCompactMidStream(t *testing.T) {
	ds := dataset.Mixture(dataset.MixtureConfig{
		N: 420, Classes: 8, Dim: 12, WithinStd: 0.3, Separation: 2.5, Seed: 41,
	})
	six, err := BuildSharded(ds.Points[:400], Options{Seed: 3}, ShardOptions{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	ss := six.NewSearcher()
	before, err := ss.TopK(7, 10)
	if err != nil {
		t.Fatal(err)
	}
	// Mutate one shard's worth of state: inserts land on the least
	// loaded shard, the delete tombstones a base item, Compact
	// renumbers.
	for _, p := range ds.Points[400:] {
		if _, err := six.Insert(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := six.Delete(350); err != nil {
		t.Fatal(err)
	}
	if err := six.Compact(); err != nil {
		t.Fatal(err)
	}
	after, err := ss.TopK(7, 10)
	if err != nil {
		t.Fatalf("held searcher failed after compact: %v", err)
	}
	if len(after) != len(before) {
		t.Fatalf("result width changed: %d -> %d", len(before), len(after))
	}
	if _, err := ss.TopK(350, 3); err == nil || !strings.Contains(err.Error(), "deleted") {
		t.Fatalf("compacted-away id 350: %v", err)
	}
	// A fresh searcher agrees with the held one on the new state.
	fresh, err := six.NewSearcher().TopK(7, 10)
	if err != nil {
		t.Fatal(err)
	}
	for i := range fresh {
		if fresh[i] != after[i] {
			t.Fatalf("held searcher diverges from fresh after compact at rank %d: %+v vs %+v", i, after[i], fresh[i])
		}
	}
}
