package mogul

import (
	"bytes"
	"fmt"
	"math"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"mogul/internal/knn"
)

// Tests for the dynamic-update subsystem: online Insert/Delete via the
// out-of-sample delta layer, Compact, auto-compaction, persistence of
// dynamic state, and the metamorphic properties the design promises
// (Insert+Compact ≡ fresh Build; Save→Load→Insert ≡ Insert→Save→Load;
// TopKBatch ≡ sequential TopK).

// clusteredDataset is the synthetic clustered dataset the acceptance
// criteria reference: well-separated Gaussian classes, so Manifold
// Ranking has real cluster structure to exploit.
func clusteredDataset(t testing.TB, n int, seed int64) *Dataset {
	t.Helper()
	return NewMixture(MixtureConfig{
		N: n, Classes: 8, Dim: 12, WithinStd: 0.25, Separation: 3.0, Seed: seed,
	})
}

func sameResults(t *testing.T, label string, got, want []Result) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d results, want %d", label, len(got), len(want))
	}
	for i := range got {
		if got[i].Node != want[i].Node || got[i].Score != want[i].Score {
			t.Fatalf("%s: result %d is {%d, %.17g}, want {%d, %.17g}",
				label, i, got[i].Node, got[i].Score, want[i].Node, want[i].Score)
		}
	}
}

func TestInsertBecomesSearchable(t *testing.T) {
	ds := clusteredDataset(t, 300, 21)
	ix, err := Build(ds.Points[:299], Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Insert a near-duplicate of item 3: it must enter 3's top-k.
	v := ds.Points[299]
	copy(v, ds.Points[3])
	id, err := ix.Insert(v)
	if err != nil {
		t.Fatal(err)
	}
	if id != 299 {
		t.Fatalf("first insert got id %d, want 299", id)
	}
	if ix.Len() != 300 {
		t.Fatalf("Len after insert: %d", ix.Len())
	}
	res, err := ix.TopK(3, 10)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, r := range res {
		if r.Node == id {
			found = true
			if r.Score <= 0 {
				t.Fatalf("inserted duplicate scored %g", r.Score)
			}
		}
	}
	if !found {
		t.Fatalf("inserted duplicate of item 3 missing from TopK(3): %v", res)
	}

	// The inserted item also works as a query, ranking its own
	// neighbourhood first.
	res, err = ix.TopK(id, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 5 {
		t.Fatalf("delta query returned %d results", len(res))
	}

	// And competes in out-of-sample searches.
	res, err = ix.TopKVector(ds.Points[3], 10)
	if err != nil {
		t.Fatal(err)
	}
	found = false
	for _, r := range res {
		found = found || r.Node == id
	}
	if !found {
		t.Fatal("inserted item missing from TopKVector results")
	}

	// Dimension mismatch and non-finite components error.
	if _, err := ix.Insert(Vector{1, 2}); err == nil {
		t.Fatal("wrong-dimension insert accepted")
	}
	bad := ds.Points[0].Clone()
	bad[1] = math.NaN()
	if _, err := ix.Insert(bad); err == nil {
		t.Fatal("NaN insert accepted")
	}
	bad[1] = math.Inf(1)
	if _, err := ix.Insert(bad); err == nil {
		t.Fatal("Inf insert accepted")
	}
}

func TestDeleteSemantics(t *testing.T) {
	ds := clusteredDataset(t, 200, 5)
	ix, err := Build(ds.Points[:190], Options{})
	if err != nil {
		t.Fatal(err)
	}
	var deltaIDs []int
	for _, p := range ds.Points[190:] {
		id, err := ix.Insert(p)
		if err != nil {
			t.Fatal(err)
		}
		deltaIDs = append(deltaIDs, id)
	}

	// Delete one base and one delta item.
	for _, id := range []int{7, deltaIDs[2]} {
		if err := ix.Delete(id); err != nil {
			t.Fatal(err)
		}
		// Gone from large searches...
		res, err := ix.TopK(0, ix.Len()+5)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range res {
			if r.Node == id {
				t.Fatalf("deleted item %d still in TopK results", id)
			}
		}
		// ...rejected as a query...
		if _, err := ix.TopK(id, 3); err == nil {
			t.Fatalf("deleted item %d accepted as query", id)
		}
		// ...and gone from Neighbors.
		if _, _, err := ix.Neighbors(id); err == nil {
			t.Fatalf("Neighbors served deleted item %d", id)
		}
		// Double delete errors.
		if err := ix.Delete(id); err == nil {
			t.Fatalf("double delete of %d accepted", id)
		}
	}
	if ix.Len() != 198 {
		t.Fatalf("Len after two deletes: %d, want 198", ix.Len())
	}
	st := ix.Delta()
	if st.BaseItems != 190 || st.DeltaItems != 9 || st.Tombstones != 2 {
		t.Fatalf("Delta stats: %+v", st)
	}

	// Deleted base items vanish from surviving items' neighbour lists.
	ids, _, err := ix.Neighbors(0)
	if err != nil {
		t.Fatal(err)
	}
	for _, nb := range ids {
		if nb == 7 {
			t.Fatal("deleted item listed as neighbour")
		}
	}

	// Out-of-range deletes error.
	if err := ix.Delete(-1); err == nil {
		t.Fatal("negative id accepted")
	}
	if err := ix.Delete(10_000); err == nil {
		t.Fatal("out-of-range id accepted")
	}
}

func TestDeleteLastItemRefused(t *testing.T) {
	ds := clusteredDataset(t, 10, 3)
	ix, err := Build(ds.Points, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 9; i++ {
		if err := ix.Delete(i); err != nil {
			t.Fatal(err)
		}
	}
	if err := ix.Delete(9); err == nil {
		t.Fatal("deleting the last live item accepted")
	}
	res, err := ix.TopK(9, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[0].Node != 9 {
		t.Fatalf("single-survivor search: %v", res)
	}
}

// TestInsertCompactMatchesBuild is the determinism acceptance
// criterion: Insert-then-Compact must be bit-identical — ids and
// float scores — to a fresh Build over the merged point set with the
// same seed.
func TestInsertCompactMatchesBuild(t *testing.T) {
	ds := clusteredDataset(t, 420, 11)
	base, inserts := ds.Points[:400], ds.Points[400:]
	opts := Options{GraphK: 5, Seed: 3}

	dyn, err := Build(base, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range inserts {
		if _, err := dyn.Insert(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := dyn.Compact(); err != nil {
		t.Fatal(err)
	}
	if st := dyn.Delta(); st.DeltaItems != 0 || st.Tombstones != 0 || st.BaseItems != 420 {
		t.Fatalf("delta not empty after compact: %+v", st)
	}

	fresh, err := Build(ds.Points, opts)
	if err != nil {
		t.Fatal(err)
	}

	ds1, ds2 := dyn.Stats(), fresh.Stats()
	if ds1.NumClusters != ds2.NumClusters || ds1.FactorNNZ != ds2.FactorNNZ ||
		ds1.BorderSize != ds2.BorderSize || ds1.NumEdges != ds2.NumEdges {
		t.Fatalf("structural stats differ: compacted %+v, fresh %+v", ds1, ds2)
	}
	for q := 0; q < 420; q += 7 {
		a, err := dyn.TopK(q, 10)
		if err != nil {
			t.Fatal(err)
		}
		b, err := fresh.TopK(q, 10)
		if err != nil {
			t.Fatal(err)
		}
		sameResults(t, fmt.Sprintf("TopK(%d)", q), a, b)
	}
	// Out-of-sample queries agree bit-for-bit too.
	q := ds.Points[17].Clone()
	q[0] += 0.05
	a, err := dyn.TopKVector(q, 10)
	if err != nil {
		t.Fatal(err)
	}
	b, err := fresh.TopKVector(q, 10)
	if err != nil {
		t.Fatal(err)
	}
	sameResults(t, "TopKVector", a, b)
}

// TestInsertRecall is the accuracy acceptance criterion: after
// inserting 5% new points through the delta layer, TopK recall@10
// against a full rebuild stays at 0.9 or above.
func TestInsertRecall(t *testing.T) {
	ds := clusteredDataset(t, 840, 29)
	n := 800
	base, inserts := ds.Points[:n], ds.Points[n:] // 5% of n

	dyn, err := Build(base, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range inserts {
		if _, err := dyn.Insert(p); err != nil {
			t.Fatal(err)
		}
	}
	rebuilt, err := Build(ds.Points, Options{})
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(7))
	const k = 10
	var recall float64
	const queries = 100
	for i := 0; i < queries; i++ {
		q := rng.Intn(n)
		got, err := dyn.TopK(q, k)
		if err != nil {
			t.Fatal(err)
		}
		want, err := rebuilt.TopK(q, k)
		if err != nil {
			t.Fatal(err)
		}
		wantSet := make(map[int]bool, k)
		for _, r := range want {
			wantSet[r.Node] = true
		}
		hit := 0
		for _, r := range got {
			if wantSet[r.Node] {
				hit++
			}
		}
		recall += float64(hit) / float64(k)
	}
	recall /= queries
	t.Logf("recall@10 with 5%% delta vs full rebuild: %.3f", recall)
	if recall < 0.9 {
		t.Fatalf("recall@10 = %.3f, want >= 0.9", recall)
	}
}

// TestTopKBatchMatchesSequentialWithDelta is the batch metamorphic
// property on a dynamic index: concurrent TopKBatch over a random
// query set (base and delta ids mixed) equals sequential TopK.
func TestTopKBatchMatchesSequentialWithDelta(t *testing.T) {
	ds := clusteredDataset(t, 320, 13)
	ix, err := Build(ds.Points[:300], Options{})
	if err != nil {
		t.Fatal(err)
	}
	var deltaIDs []int
	for _, p := range ds.Points[300:] {
		id, err := ix.Insert(p)
		if err != nil {
			t.Fatal(err)
		}
		deltaIDs = append(deltaIDs, id)
	}
	if err := ix.Delete(4); err != nil {
		t.Fatal(err)
	}
	if err := ix.Delete(deltaIDs[0]); err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(99))
	queries := make([]int, 64)
	for i := range queries {
		if i%5 == 0 {
			queries[i] = deltaIDs[1+rng.Intn(len(deltaIDs)-1)]
		} else {
			queries[i] = rng.Intn(300)
			if queries[i] == 4 {
				queries[i] = 5
			}
		}
	}
	batch := ix.TopKBatch(queries, 7, 4)
	for i, br := range batch {
		if br.Err != nil {
			t.Fatalf("batch query %d: %v", queries[i], br.Err)
		}
		seq, err := ix.TopK(queries[i], 7)
		if err != nil {
			t.Fatal(err)
		}
		sameResults(t, fmt.Sprintf("batch query %d", queries[i]), br.Results, seq)
	}
	// Deleted ids fail per-query, not batch-wide.
	bad := ix.TopKBatch([]int{4, 5}, 3, 2)
	if bad[0].Err == nil {
		t.Fatal("deleted id succeeded in batch")
	}
	if bad[1].Err != nil {
		t.Fatalf("valid id failed in batch: %v", bad[1].Err)
	}
}

// TestSaveLoadInsertCommutes is the persistence metamorphic property:
// inserting after a save/load round trip gives bit-identical results
// to saving/loading after the inserts — the delta layer (and the
// quantizer that computes surrogates) round-trips exactly.
func TestSaveLoadInsertCommutes(t *testing.T) {
	ds := clusteredDataset(t, 330, 17)
	base, extra := ds.Points[:300], ds.Points[300:]
	opts := Options{Seed: 2}

	build := func() *Index {
		ix, err := Build(base, opts)
		if err != nil {
			t.Fatal(err)
		}
		return ix
	}
	roundTrip := func(ix *Index) *Index {
		var buf bytes.Buffer
		if err := ix.Save(&buf); err != nil {
			t.Fatal(err)
		}
		out, err := Load(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		// Load dispatches on the magic header; a plain file always
		// yields the concrete *Index.
		return out.(*Index)
	}
	insertAll := func(ix *Index) {
		for _, p := range extra {
			if _, err := ix.Insert(p); err != nil {
				t.Fatal(err)
			}
		}
		if err := ix.Delete(9); err != nil {
			t.Fatal(err)
		}
		if err := ix.Delete(305); err != nil {
			t.Fatal(err)
		}
	}

	a := build() // Save -> Load -> Insert
	a = roundTrip(a)
	insertAll(a)

	b := build() // Insert -> Save -> Load
	insertAll(b)
	b = roundTrip(b)

	if sa, sb := a.Delta(), b.Delta(); sa != sb {
		t.Fatalf("delta stats differ: %+v vs %+v", sa, sb)
	}
	for q := 0; q < a.Len(); q += 13 {
		if q == 9 || q == 305 {
			continue
		}
		ra, err := a.TopK(q, 8)
		if err != nil {
			t.Fatal(err)
		}
		rb, err := b.TopK(q, 8)
		if err != nil {
			t.Fatal(err)
		}
		sameResults(t, fmt.Sprintf("TopK(%d)", q), ra, rb)
	}
	va, err := a.TopKVector(ds.Points[301], 8)
	if err != nil {
		t.Fatal(err)
	}
	vb, err := b.TopKVector(ds.Points[301], 8)
	if err != nil {
		t.Fatal(err)
	}
	sameResults(t, "TopKVector", va, vb)

	// Both sides still compact (the build recipe round-tripped), and
	// agree afterwards.
	if err := a.Compact(); err != nil {
		t.Fatal(err)
	}
	if err := b.Compact(); err != nil {
		t.Fatal(err)
	}
	ra, err := a.TopK(0, 10)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := b.TopK(0, 10)
	if err != nil {
		t.Fatal(err)
	}
	sameResults(t, "post-compact TopK", ra, rb)
}

func TestAutoCompact(t *testing.T) {
	ds := clusteredDataset(t, 230, 41)
	n := 200
	ix, err := Build(ds.Points[:n], Options{AutoCompactFraction: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	// The delta tolerates floor(0.05*200) = 10 pending entries; the
	// 11th insert must trigger a compaction that folds everything in.
	for i := 0; i < 11; i++ {
		if _, err := ix.Insert(ds.Points[n+i]); err != nil {
			t.Fatal(err)
		}
	}
	if st := ix.Delta(); st.DeltaItems != 0 || st.BaseItems != 211 {
		t.Fatalf("auto-compaction did not run: %+v", st)
	}
	if ix.Len() != 211 {
		t.Fatalf("Len after auto-compaction: %d", ix.Len())
	}
	// Insert-only auto-compaction keeps ids: the compacted index is
	// bit-identical to a fresh build over the same 211 points.
	fresh, err := Build(ds.Points[:211], Options{AutoCompactFraction: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	for q := 0; q < 211; q += 17 {
		a, err := ix.TopK(q, 6)
		if err != nil {
			t.Fatal(err)
		}
		b, err := fresh.TopK(q, 6)
		if err != nil {
			t.Fatal(err)
		}
		sameResults(t, fmt.Sprintf("TopK(%d)", q), a, b)
	}
}

// TestCompactUnavailableForExternalGraph: an index wrapped around a
// caller-built graph has no recorded rebuild recipe — Insert/Delete
// work, Compact refuses.
// TestAutoCompactAfterDeleteReturnsRenumberedID: when an insert
// triggers a compaction that renumbers (because deletions are being
// folded in), the returned id must refer to the inserted point in the
// new numbering — the youngest live item.
func TestAutoCompactAfterDeleteReturnsRenumberedID(t *testing.T) {
	ds := clusteredDataset(t, 120, 47)
	n := 100
	ix, err := Build(ds.Points[:n], Options{AutoCompactFraction: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.Delete(5); err != nil {
		t.Fatal(err)
	}
	// pending = 1 insert + 1 tombstone > 0.01*100, so this insert
	// compacts: 99 survivors renumbered, the new point last.
	marker := ds.Points[n].Clone()
	id, err := ix.Insert(marker)
	if err != nil {
		t.Fatal(err)
	}
	if st := ix.Delta(); st.DeltaItems != 0 || st.Tombstones != 0 {
		t.Fatalf("auto-compaction did not run: %+v", st)
	}
	if want := ix.Len() - 1; id != want {
		t.Fatalf("insert returned id %d, want renumbered id %d", id, want)
	}
	// The id really is the inserted point: the compacted base stores
	// the marker vector under it.
	pts := ix.core.Graph().Points
	for j := range marker {
		if pts[id][j] != marker[j] {
			t.Fatalf("item %d holds %v, inserted %v", id, pts[id], marker)
		}
	}
}

func TestCompactUnavailableForExternalGraph(t *testing.T) {
	ds := clusteredDataset(t, 60, 8)
	g, err := knn.BuildGraph(ds.Points, knn.GraphConfig{K: 5})
	if err != nil {
		t.Fatal(err)
	}
	ix, err := BuildFromGraphPoints(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ix.Insert(ds.Points[0].Clone()); err != nil {
		t.Fatalf("insert on external-graph index: %v", err)
	}
	if err := ix.Delete(0); err != nil {
		t.Fatalf("delete on external-graph index: %v", err)
	}
	if err := ix.Compact(); err == nil {
		t.Fatal("Compact succeeded without a graph recipe")
	}
}

// TestConcurrentInsertDeleteSearch is the race-detector stress test
// the acceptance criteria require: concurrent Insert, Delete,
// TopKBatch, TopKVector and a mid-flight Compact on one index. Run
// with -race in CI.
func TestConcurrentInsertDeleteSearch(t *testing.T) {
	ds := clusteredDataset(t, 360, 53)
	n := 300
	ix, err := Build(ds.Points[:n], Options{})
	if err != nil {
		t.Fatal(err)
	}

	var (
		wg       sync.WaitGroup
		inserted atomic.Int64
		deleted  atomic.Int64
	)

	// Two inserters.
	pool := ds.Points[n:]
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(pool); i += 2 {
				if _, err := ix.Insert(pool[i]); err != nil {
					t.Errorf("insert: %v", err)
					return
				}
				inserted.Add(1)
			}
		}(w)
	}

	// One deleter over distinct base ids (no contention on the same id,
	// so every delete must succeed).
	wg.Add(1)
	go func() {
		defer wg.Done()
		for id := 0; id < 20; id++ {
			if err := ix.Delete(id); err != nil {
				t.Errorf("delete %d: %v", id, err)
				return
			}
			deleted.Add(1)
		}
	}()

	// Four searchers: batch in-database, vector, and single queries.
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < 30; i++ {
				switch i % 3 {
				case 0:
					queries := make([]int, 8)
					for j := range queries {
						queries[j] = 20 + rng.Intn(n-20)
					}
					for _, br := range ix.TopKBatch(queries, 5, 2) {
						if br.Err != nil {
							t.Errorf("batch: %v", br.Err)
							return
						}
					}
				case 1:
					if _, err := ix.TopKVector(ds.Points[rng.Intn(n)], 5); err != nil {
						t.Errorf("vector search: %v", err)
						return
					}
				default:
					if _, err := ix.TopK(20+rng.Intn(n-20), 5); err != nil {
						t.Errorf("search: %v", err)
						return
					}
				}
			}
		}(w)
	}

	// One compaction racing the rest.
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := ix.Compact(); err != nil {
			t.Errorf("compact: %v", err)
		}
	}()

	wg.Wait()
	if t.Failed() {
		return
	}

	// The index is consistent afterwards: compact the remainder and
	// count the survivors.
	if err := ix.Compact(); err != nil {
		t.Fatal(err)
	}
	want := n + int(inserted.Load()) - int(deleted.Load())
	if ix.Len() != want {
		t.Fatalf("Len after stress: %d, want %d", ix.Len(), want)
	}
	if st := ix.Delta(); st.DeltaItems != 0 || st.Tombstones != 0 {
		t.Fatalf("delta not drained: %+v", st)
	}
	if _, err := ix.TopK(0, 10); err != nil {
		t.Fatal(err)
	}
}

// TestDynamicIndexFileCorruption sweeps truncations and byte flips
// over a saved dynamic index (delta points, tombstones, build config):
// every corruption must surface as an error, never a panic or a
// silently wrong index.
func TestDynamicIndexFileCorruption(t *testing.T) {
	ds := clusteredDataset(t, 120, 71)
	ix, err := Build(ds.Points[:110], Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range ds.Points[110:] {
		if _, err := ix.Insert(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := ix.Delete(2); err != nil {
		t.Fatal(err)
	}
	if err := ix.Delete(112); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ix.Save(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()

	tryLoad := func(label string, b []byte) {
		t.Helper()
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("Load panicked on %s: %v", label, r)
			}
		}()
		if _, err := Load(bytes.NewReader(b)); err == nil {
			t.Fatalf("Load accepted %s", label)
		}
	}
	for n := 0; n < len(data); n += 97 {
		tryLoad(fmt.Sprintf("truncation to %d bytes", n), data[:n])
	}
	for pos := 0; pos < len(data); pos += 53 {
		mutated := append([]byte(nil), data...)
		mutated[pos] ^= 0xFF
		tryLoad(fmt.Sprintf("corruption at byte %d", pos), mutated)
	}
}

// TestDeltaScoreExtension pins the scoring model: a delta point's
// score for a query equals the weighted sum of its surrogates' scores
// (the symmetric out-of-sample extension).
func TestDeltaScoreExtension(t *testing.T) {
	ds := clusteredDataset(t, 150, 61)
	ix, err := Build(ds.Points[:149], Options{})
	if err != nil {
		t.Fatal(err)
	}
	id, err := ix.Insert(ds.Points[149])
	if err != nil {
		t.Fatal(err)
	}
	probes, weights, err := ix.Neighbors(id)
	if err != nil {
		t.Fatal(err)
	}
	const query = 31
	scores, err := ix.Scores(query)
	if err != nil {
		t.Fatal(err)
	}
	var want float64
	for j, p := range probes {
		want += weights[j] * scores[p]
	}
	res, err := ix.TopK(query, ix.Len())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res {
		if r.Node == id {
			if math.Abs(r.Score-want) > 1e-9*math.Max(1, math.Abs(want)) {
				t.Fatalf("delta score %.17g, extension predicts %.17g", r.Score, want)
			}
			return
		}
	}
	t.Fatal("inserted item missing from exhaustive TopK")
}
