package mogul

// Build-pipeline benchmarks (PR: parallel precompute). Run with
// -cpu 1,4 to see the core scaling the parallel build stages buy:
//
//	go test -bench 'BenchmarkBuild(EMR|Sharded)?$' -benchtime 1x -cpu 1,4
//
// The acceptance criteria pin BenchmarkBuild at n=10k (exact engine)
// and BenchmarkBuildEMR at n=100k/p=2560 to >= 2x speedup over the
// serial build; CI's bench-smoke job records the sweep in
// BENCH_build.json via cmd/bench2json. mogul-bench -exp build reports
// the per-stage wall-time breakdown behind the same numbers.

import (
	"fmt"
	"testing"
)

// buildBenchPoints draws the micro-cluster mixture every build
// benchmark shares (same family as emrBenchPoints, kept separate so
// the graph-build sizes can sweep independently).
func buildBenchPoints(n int) []Vector {
	ds := NewMixture(MixtureConfig{
		N: n, Classes: n / 10, Dim: 8, WithinStd: 0.25, Separation: 3.0, Seed: 11,
	})
	return ds.Points
}

// BenchmarkBuild measures the exact-engine build (k-NN graph, Louvain
// ordering, complete LDL^T, bound tables) end to end.
func BenchmarkBuild(b *testing.B) {
	for _, n := range []int{2000, 10_000} {
		pts := buildBenchPoints(n)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := Build(pts, Options{Exact: true, Seed: 11}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkBuildEMR measures the anchor-graph engine build (k-means
// anchors, attachment, gram factorization) at the frontier point the
// EMR acceptance criteria are pinned to (p=2560, s=24).
func BenchmarkBuildEMR(b *testing.B) {
	for _, n := range emrBenchSizes {
		pts, _ := emrBenchPoints(n)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := BuildEMR(pts, Options{Seed: 11}, emrBenchOptions); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkBuildSharded measures the fan-out build: per-shard builds
// already run concurrently, so this tracks how intra-shard parallelism
// composes with the shard-level pool rather than fighting it.
func BenchmarkBuildSharded(b *testing.B) {
	const n = 10_000
	pts := buildBenchPoints(n)
	b.Run(fmt.Sprintf("n=%d/shards=4", n), func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := BuildSharded(pts, Options{Exact: true, Seed: 11}, ShardOptions{Shards: 4}); err != nil {
				b.Fatal(err)
			}
		}
	})
}
