// Command bench2json converts `go test -bench` output on stdin into a
// machine-readable JSON report on stdout, so CI can archive the
// performance trajectory of the hot paths (ns/op, B/op, allocs/op and
// any custom b.ReportMetric units) run over run instead of letting the
// numbers scroll away in build logs.
//
// Usage:
//
//	go test -run '^$' -bench 'BenchmarkTopK' -benchmem . | bench2json > BENCH_search.json
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Benchmark is one parsed benchmark result line.
type Benchmark struct {
	// Name is the full benchmark name including sub-benchmark path,
	// with the trailing -GOMAXPROCS suffix stripped.
	Name string `json:"name"`
	// Runs is the measured iteration count (the b.N column).
	Runs int64 `json:"runs"`
	// NsPerOp is the standard timing metric. BytesPerOp and
	// AllocsPerOp appear only under -benchmem; they are pointers so a
	// measured zero — the engine's goal state — is distinguishable
	// from "not measured" (null/absent).
	NsPerOp     float64  `json:"ns_per_op"`
	BytesPerOp  *float64 `json:"b_per_op,omitempty"`
	AllocsPerOp *float64 `json:"allocs_per_op,omitempty"`
	// Metrics holds any custom b.ReportMetric units (e.g. "P@5").
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Report is the whole converted run.
type Report struct {
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	Pkg        string      `json:"pkg,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	rep, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench2json:", err)
		os.Exit(1)
	}
	if len(rep.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "bench2json: no benchmark lines found on stdin")
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintln(os.Stderr, "bench2json:", err)
		os.Exit(1)
	}
}

// parse reads go-test benchmark output and extracts the header
// metadata plus every benchmark result line.
func parse(r io.Reader) (*Report, error) {
	rep := &Report{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos: "):
			rep.Goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			rep.Goarch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "pkg: "):
			rep.Pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "cpu: "):
			rep.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "Benchmark"):
			b, ok := parseBenchLine(line)
			if ok {
				rep.Benchmarks = append(rep.Benchmarks, b)
			}
		}
	}
	return rep, sc.Err()
}

// parseBenchLine parses one result line of the form
//
//	BenchmarkName-8   200   41289 ns/op   160 B/op   1 allocs/op   0.95 P@5
//
// Returns ok=false for lines that merely start with "Benchmark" (e.g.
// a -v RUN header) but carry no measurements.
func parseBenchLine(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Benchmark{}, false
	}
	runs, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	name := fields[0]
	if i := strings.LastIndex(name, "-"); i > 0 {
		// Strip the -GOMAXPROCS suffix iff numeric (sub-benchmark names
		// may legitimately contain dashes).
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	b := Benchmark{Name: name, Runs: runs}
	seen := false
	for i := 2; i+1 < len(fields); i += 2 {
		val, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		unit := fields[i+1]
		switch unit {
		case "ns/op":
			b.NsPerOp = val
		case "B/op":
			v := val
			b.BytesPerOp = &v
		case "allocs/op":
			v := val
			b.AllocsPerOp = &v
		default:
			if b.Metrics == nil {
				b.Metrics = make(map[string]float64)
			}
			b.Metrics[unit] = val
		}
		seen = true
	}
	return b, seen
}
