package main

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: mogul
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkTopK/pooled-8         	     200	     41289 ns/op	     160 B/op	       1 allocs/op
BenchmarkTopK/searcher-8       	     200	     40088 ns/op	    1103 B/op	       1 allocs/op
BenchmarkTopKVector-8          	     200	     76039 ns/op	    1198 B/op	       1 allocs/op
BenchmarkInsert-8              	     200	      4180 ns/op	    1648 B/op	       4 allocs/op
BenchmarkFig234AnchorSweep/Mogul-8 	   10000	     10873 ns/op	         0.9625 P@5	         0.9531 precision
PASS
ok  	mogul	1.814s
`

func TestParse(t *testing.T) {
	rep, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Goos != "linux" || rep.Goarch != "amd64" || rep.Pkg != "mogul" {
		t.Fatalf("header parsed wrong: %+v", rep)
	}
	if !strings.Contains(rep.CPU, "Xeon") {
		t.Fatalf("cpu parsed wrong: %q", rep.CPU)
	}
	if len(rep.Benchmarks) != 5 {
		t.Fatalf("parsed %d benchmarks, want 5", len(rep.Benchmarks))
	}
	b := rep.Benchmarks[0]
	if b.Name != "BenchmarkTopK/pooled" || b.Runs != 200 || b.NsPerOp != 41289 ||
		b.BytesPerOp == nil || *b.BytesPerOp != 160 || b.AllocsPerOp == nil || *b.AllocsPerOp != 1 {
		t.Fatalf("first benchmark parsed wrong: %+v", b)
	}
	sweep := rep.Benchmarks[4]
	if sweep.Name != "BenchmarkFig234AnchorSweep/Mogul" {
		t.Fatalf("sub-benchmark name parsed wrong: %q", sweep.Name)
	}
	// No -benchmem columns on the sweep line: must be absent, not 0.
	if sweep.BytesPerOp != nil || sweep.AllocsPerOp != nil {
		t.Fatalf("absent B/op-allocs/op not nil: %+v", sweep)
	}
	if sweep.Metrics["P@5"] != 0.9625 || sweep.Metrics["precision"] != 0.9531 {
		t.Fatalf("custom metrics parsed wrong: %+v", sweep.Metrics)
	}
}

func TestParseSkipsNonResultLines(t *testing.T) {
	in := `BenchmarkFoo
=== RUN   TestSomething
Benchmark (not a result)
BenchmarkBar-4	 100	 12.5 ns/op
`
	rep, err := parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Benchmarks) != 1 || rep.Benchmarks[0].Name != "BenchmarkBar" {
		t.Fatalf("want only BenchmarkBar, got %+v", rep.Benchmarks)
	}
}
