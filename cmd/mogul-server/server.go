package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"mogul"
)

// server wraps a built index behind a small JSON HTTP API — the
// retrieval-service shape the paper's introduction motivates (image
// search over a multimedia database). Endpoints:
//
//	GET  /healthz                  -> {"status":"ok", ...index stats}
//	GET  /search?id=17&k=10        -> in-database query
//	POST /search/vector {"vector":[...], "k":10}
//	                               -> out-of-sample query
//	POST /search/set {"ids":[1,2,3], "k":10}
//	                               -> multi-seed query
//	GET  /item/17                  -> item metadata (label, neighbours)
//	POST /insert {"vector":[...]}  -> online insert, returns the new id
//	POST /delete {"id":17}         -> online delete (tombstone)
//	POST /compact                  -> fold the delta into a fresh base
type server struct {
	// idx is the shared serving surface: a *mogul.Index or a
	// *mogul.ShardedIndex (-shards N, or a sharded index file), the
	// handlers never care which.
	idx mogul.Retriever
	mux *http.ServeMux

	// mutateMu serializes the mutating handlers (/insert, /delete,
	// /compact) so that "index mutated" and "label bookkeeping
	// updated" are atomic with respect to a racing compaction —
	// otherwise a compact (explicit, or auto-triggered inside Insert)
	// could renumber ids after a delete whose record it never saw,
	// leaving labels silently misaligned. Searches never take it.
	mutateMu sync.Mutex
	// labelMu guards labels and deleted: labels index items by id, so
	// they go stale when a compaction renumbers ids after deletions.
	labelMu sync.RWMutex
	labels  []int
	deleted bool

	// Cumulative counters surfaced by /stats (atomics: handlers run
	// concurrently).
	queriesServed atomic.Int64
	queryErrors   atomic.Int64
	totalLatUS    atomic.Int64

	// searchers recycles per-request query engines: each search handler
	// borrows a mogul.Searcher (which owns the score vectors and top-k
	// heap for one query) for the duration of the request, so a busy
	// server runs steady-state searches without per-request allocation
	// — net/http goroutines come and go, the workspaces stay.
	searchers sync.Pool
}

func newServer(idx mogul.Retriever, labels []int) *server {
	s := &server{idx: idx, labels: labels, mux: http.NewServeMux()}
	s.mux.HandleFunc("/healthz", s.handleHealth)
	s.mux.HandleFunc("/stats", s.handleStats)
	s.mux.HandleFunc("/search", s.handleSearch)
	s.mux.HandleFunc("/search/vector", s.handleSearchVector)
	s.mux.HandleFunc("/search/set", s.handleSearchSet)
	s.mux.HandleFunc("/search/batch", s.handleSearchBatch)
	s.mux.HandleFunc("/item/", s.handleItem)
	s.mux.HandleFunc("/insert", s.handleInsert)
	s.mux.HandleFunc("/delete", s.handleDelete)
	s.mux.HandleFunc("/compact", s.handleCompact)
	return s
}

func (s *server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// searcher borrows a reusable query engine for one request; pair with
// putSearcher.
func (s *server) searcher() mogul.Querier {
	if sr, ok := s.searchers.Get().(mogul.Querier); ok {
		return sr
	}
	return s.idx.NewQuerier()
}

func (s *server) putSearcher(sr mogul.Querier) { s.searchers.Put(sr) }

// record updates the cumulative counters for one query.
func (s *server) record(took time.Duration, err error) {
	s.queriesServed.Add(1)
	s.totalLatUS.Add(took.Microseconds())
	if err != nil {
		s.queryErrors.Add(1)
	}
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	served := s.queriesServed.Load()
	meanUS := int64(0)
	if served > 0 {
		meanUS = s.totalLatUS.Load() / served
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"queries_served":  served,
		"query_errors":    s.queryErrors.Load(),
		"mean_latency_us": meanUS,
	})
}

// answer is one result row on the wire.
type answer struct {
	Item  int     `json:"item"`
	Score float64 `json:"score"`
	Label *int    `json:"label,omitempty"`
}

type searchResponse struct {
	Query    interface{} `json:"query"`
	K        int         `json:"k"`
	TookUS   int64       `json:"took_us"`
	Answers  []answer    `json:"answers"`
	Exact    bool        `json:"exact"`
	Pruned   int         `json:"clusters_pruned,omitempty"`
	Scanned  int         `json:"clusters_scanned,omitempty"`
	Computed int         `json:"scores_computed,omitempty"`
}

func (s *server) toAnswers(res []mogul.Result) []answer {
	s.labelMu.RLock()
	labels := s.labels
	s.labelMu.RUnlock()
	out := make([]answer, len(res))
	for i, r := range res {
		out[i] = answer{Item: r.Node, Score: r.Score}
		// Inserted items sit beyond the labelled range; they simply
		// carry no label.
		if labels != nil && r.Node < len(labels) {
			l := labels[r.Node]
			out[i].Label = &l
		}
	}
	return out
}

func (s *server) handleHealth(w http.ResponseWriter, r *http.Request) {
	st := s.idx.Stats()
	ds := s.idx.Delta()
	s.labelMu.RLock()
	hasLabels := s.labels != nil
	s.labelMu.RUnlock()
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"status":       "ok",
		"items":        s.idx.Len(),
		"clusters":     st.NumClusters,
		"border_size":  st.BorderSize,
		"factor_nnz":   st.FactorNNZ,
		"exact":        s.idx.Exact(),
		"has_labels":   hasLabels,
		"precompute_s": st.PrecomputeTime().Seconds(),
		"delta_items":  ds.DeltaItems,
		"tombstones":   ds.Tombstones,
	})
}

// handleInsert adds one point online (POST {"vector":[...]}); the new
// item competes in every subsequent search.
func (s *server) handleInsert(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "use POST")
		return
	}
	var req struct {
		Vector []float64 `json:"vector"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad JSON: "+err.Error())
		return
	}
	s.mutateMu.Lock()
	baseBefore := s.idx.Delta().BaseItems
	id, err := s.idx.Insert(req.Vector)
	if err == nil && s.idx.Delta().BaseItems != baseBefore {
		// The insert auto-compacted (AutoCompactFraction, e.g. restored
		// from a loaded index's build config). If deletions were folded
		// in, ids were renumbered and the label table is stale.
		s.dropLabelsAfterRenumber()
	}
	s.mutateMu.Unlock()
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	ds := s.idx.Delta()
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"id":          id,
		"items":       s.idx.Len(),
		"delta_items": ds.DeltaItems,
	})
}

// handleDelete tombstones one item (POST {"id":17}).
func (s *server) handleDelete(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "use POST")
		return
	}
	var req struct {
		ID *int `json:"id"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil || req.ID == nil {
		writeError(w, http.StatusBadRequest, "body must be {\"id\": <int>}")
		return
	}
	s.mutateMu.Lock()
	isBase := *req.ID < s.idx.Delta().BaseItems
	err := s.idx.Delete(*req.ID)
	if err == nil && isBase {
		// Only a base delete will shift ids at the next compaction;
		// deleting a delta item leaves base ids 0..n-1 untouched, so
		// the label table stays aligned.
		s.labelMu.Lock()
		s.deleted = true
		s.labelMu.Unlock()
	}
	s.mutateMu.Unlock()
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"deleted": *req.ID,
		"items":   s.idx.Len(),
	})
}

// dropLabelsAfterRenumber clears the label table after a compaction
// that folded base deletions in (those renumber ids); callers hold
// mutateMu.
func (s *server) dropLabelsAfterRenumber() {
	s.labelMu.Lock()
	if s.deleted {
		s.labels = nil
		s.deleted = false
	}
	s.labelMu.Unlock()
}

// handleCompact folds the delta into a fresh base build (POST).
// Compaction after deletions renumbers ids, which orphans the
// dataset's label table — labels are dropped in that case rather than
// served misaligned.
func (s *server) handleCompact(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "use POST")
		return
	}
	t0 := time.Now()
	s.mutateMu.Lock()
	err := s.idx.Compact()
	if err == nil {
		s.dropLabelsAfterRenumber()
	}
	s.mutateMu.Unlock()
	if err != nil {
		writeError(w, http.StatusConflict, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"items":   s.idx.Len(),
		"took_us": time.Since(t0).Microseconds(),
	})
}

func (s *server) handleSearch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	id, err := strconv.Atoi(r.URL.Query().Get("id"))
	if err != nil {
		writeError(w, http.StatusBadRequest, "id must be an integer")
		return
	}
	k := parseK(r.URL.Query().Get("k"))
	sr := s.searcher()
	t0 := time.Now()
	res, info, err := sr.TopKWithInfo(id, k)
	s.putSearcher(sr)
	s.record(time.Since(t0), err)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, searchResponse{
		Query:    id,
		K:        k,
		TookUS:   time.Since(t0).Microseconds(),
		Answers:  s.toAnswers(res),
		Exact:    s.idx.Exact(),
		Pruned:   info.ClustersPruned,
		Scanned:  info.ClustersScanned,
		Computed: info.ScoresComputed,
	})
}

func (s *server) handleSearchVector(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "use POST")
		return
	}
	var req struct {
		Vector []float64 `json:"vector"`
		K      int       `json:"k"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad JSON: "+err.Error())
		return
	}
	if req.K <= 0 {
		req.K = 10
	}
	sr := s.searcher()
	t0 := time.Now()
	res, err := sr.TopKVector(req.Vector, req.K)
	s.putSearcher(sr)
	s.record(time.Since(t0), err)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, searchResponse{
		Query:   "vector",
		K:       req.K,
		TookUS:  time.Since(t0).Microseconds(),
		Answers: s.toAnswers(res),
		Exact:   s.idx.Exact(),
	})
}

func (s *server) handleSearchSet(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "use POST")
		return
	}
	var req struct {
		IDs []int `json:"ids"`
		K   int   `json:"k"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad JSON: "+err.Error())
		return
	}
	if req.K <= 0 {
		req.K = 10
	}
	sr := s.searcher()
	t0 := time.Now()
	res, err := sr.TopKSet(req.IDs, req.K)
	s.putSearcher(sr)
	s.record(time.Since(t0), err)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, searchResponse{
		Query:   req.IDs,
		K:       req.K,
		TookUS:  time.Since(t0).Microseconds(),
		Answers: s.toAnswers(res),
		Exact:   s.idx.Exact(),
	})
}

func (s *server) handleSearchBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "use POST")
		return
	}
	var req struct {
		IDs []int `json:"ids"`
		K   int   `json:"k"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad JSON: "+err.Error())
		return
	}
	if len(req.IDs) == 0 {
		writeError(w, http.StatusBadRequest, "ids must be non-empty")
		return
	}
	if req.K <= 0 {
		req.K = 10
	}
	t0 := time.Now()
	batch := s.idx.TopKBatch(req.IDs, req.K, 0)
	took := time.Since(t0)
	type batchEntry struct {
		Query   int      `json:"query"`
		Answers []answer `json:"answers,omitempty"`
		Error   string   `json:"error,omitempty"`
	}
	entries := make([]batchEntry, len(batch))
	for i, br := range batch {
		entries[i] = batchEntry{Query: br.Query}
		if br.Err != nil {
			entries[i].Error = br.Err.Error()
			s.record(0, br.Err)
			continue
		}
		entries[i].Answers = s.toAnswers(br.Results)
		s.record(took/time.Duration(len(batch)), nil)
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"k":       req.K,
		"took_us": took.Microseconds(),
		"results": entries,
	})
}

func (s *server) handleItem(w http.ResponseWriter, r *http.Request) {
	idStr := strings.TrimPrefix(r.URL.Path, "/item/")
	id, err := strconv.Atoi(idStr)
	if err != nil {
		writeError(w, http.StatusBadRequest, "item id must be an integer")
		return
	}
	ids, weights, err := s.idx.Neighbors(id)
	if err != nil {
		writeError(w, http.StatusNotFound, err.Error())
		return
	}
	resp := map[string]interface{}{
		"item":             id,
		"neighbors":        ids,
		"neighbor_weights": weights,
	}
	s.labelMu.RLock()
	if s.labels != nil && id < len(s.labels) {
		resp["label"] = s.labels[id]
	}
	s.labelMu.RUnlock()
	writeJSON(w, http.StatusOK, resp)
}

func parseK(raw string) int {
	k, err := strconv.Atoi(raw)
	if err != nil || k <= 0 {
		return 10
	}
	return k
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// The header is already out; nothing more to do than log.
		fmt.Println("mogul-server: encoding response:", err)
	}
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}
