package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"mogul"
)

// server wraps a built index behind a small JSON HTTP API — the
// retrieval-service shape the paper's introduction motivates (image
// search over a multimedia database). Endpoints:
//
//	GET  /healthz                  -> {"status":"ok", ...index stats}
//	GET  /search?id=17&k=10        -> in-database query
//	POST /search/vector {"vector":[...], "k":10}
//	                               -> out-of-sample query
//	POST /search/set {"ids":[1,2,3], "k":10}
//	                               -> multi-seed query
//	GET  /item/17                  -> item metadata (label, neighbours)
type server struct {
	idx    *mogul.Index
	labels []int
	mux    *http.ServeMux

	// Cumulative counters surfaced by /stats (atomics: handlers run
	// concurrently).
	queriesServed atomic.Int64
	queryErrors   atomic.Int64
	totalLatUS    atomic.Int64
}

func newServer(idx *mogul.Index, labels []int) *server {
	s := &server{idx: idx, labels: labels, mux: http.NewServeMux()}
	s.mux.HandleFunc("/healthz", s.handleHealth)
	s.mux.HandleFunc("/stats", s.handleStats)
	s.mux.HandleFunc("/search", s.handleSearch)
	s.mux.HandleFunc("/search/vector", s.handleSearchVector)
	s.mux.HandleFunc("/search/set", s.handleSearchSet)
	s.mux.HandleFunc("/search/batch", s.handleSearchBatch)
	s.mux.HandleFunc("/item/", s.handleItem)
	return s
}

func (s *server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// record updates the cumulative counters for one query.
func (s *server) record(took time.Duration, err error) {
	s.queriesServed.Add(1)
	s.totalLatUS.Add(took.Microseconds())
	if err != nil {
		s.queryErrors.Add(1)
	}
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	served := s.queriesServed.Load()
	meanUS := int64(0)
	if served > 0 {
		meanUS = s.totalLatUS.Load() / served
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"queries_served":  served,
		"query_errors":    s.queryErrors.Load(),
		"mean_latency_us": meanUS,
	})
}

// answer is one result row on the wire.
type answer struct {
	Item  int     `json:"item"`
	Score float64 `json:"score"`
	Label *int    `json:"label,omitempty"`
}

type searchResponse struct {
	Query    interface{} `json:"query"`
	K        int         `json:"k"`
	TookUS   int64       `json:"took_us"`
	Answers  []answer    `json:"answers"`
	Exact    bool        `json:"exact"`
	Pruned   int         `json:"clusters_pruned,omitempty"`
	Scanned  int         `json:"clusters_scanned,omitempty"`
	Computed int         `json:"scores_computed,omitempty"`
}

func (s *server) toAnswers(res []mogul.Result) []answer {
	out := make([]answer, len(res))
	for i, r := range res {
		out[i] = answer{Item: r.Node, Score: r.Score}
		if s.labels != nil {
			l := s.labels[r.Node]
			out[i].Label = &l
		}
	}
	return out
}

func (s *server) handleHealth(w http.ResponseWriter, r *http.Request) {
	st := s.idx.Stats()
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"status":       "ok",
		"items":        s.idx.Len(),
		"clusters":     st.NumClusters,
		"border_size":  st.BorderSize,
		"factor_nnz":   st.FactorNNZ,
		"exact":        s.idx.Exact(),
		"has_labels":   s.labels != nil,
		"precompute_s": st.PrecomputeTime().Seconds(),
	})
}

func (s *server) handleSearch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	id, err := strconv.Atoi(r.URL.Query().Get("id"))
	if err != nil {
		writeError(w, http.StatusBadRequest, "id must be an integer")
		return
	}
	k := parseK(r.URL.Query().Get("k"))
	t0 := time.Now()
	res, info, err := s.idx.TopKWithInfo(id, k)
	s.record(time.Since(t0), err)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, searchResponse{
		Query:    id,
		K:        k,
		TookUS:   time.Since(t0).Microseconds(),
		Answers:  s.toAnswers(res),
		Exact:    s.idx.Exact(),
		Pruned:   info.ClustersPruned,
		Scanned:  info.ClustersScanned,
		Computed: info.ScoresComputed,
	})
}

func (s *server) handleSearchVector(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "use POST")
		return
	}
	var req struct {
		Vector []float64 `json:"vector"`
		K      int       `json:"k"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad JSON: "+err.Error())
		return
	}
	if req.K <= 0 {
		req.K = 10
	}
	t0 := time.Now()
	res, err := s.idx.TopKVector(req.Vector, req.K)
	s.record(time.Since(t0), err)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, searchResponse{
		Query:   "vector",
		K:       req.K,
		TookUS:  time.Since(t0).Microseconds(),
		Answers: s.toAnswers(res),
		Exact:   s.idx.Exact(),
	})
}

func (s *server) handleSearchSet(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "use POST")
		return
	}
	var req struct {
		IDs []int `json:"ids"`
		K   int   `json:"k"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad JSON: "+err.Error())
		return
	}
	if req.K <= 0 {
		req.K = 10
	}
	t0 := time.Now()
	res, err := s.idx.TopKSet(req.IDs, req.K)
	s.record(time.Since(t0), err)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, searchResponse{
		Query:   req.IDs,
		K:       req.K,
		TookUS:  time.Since(t0).Microseconds(),
		Answers: s.toAnswers(res),
		Exact:   s.idx.Exact(),
	})
}

func (s *server) handleSearchBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "use POST")
		return
	}
	var req struct {
		IDs []int `json:"ids"`
		K   int   `json:"k"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad JSON: "+err.Error())
		return
	}
	if len(req.IDs) == 0 {
		writeError(w, http.StatusBadRequest, "ids must be non-empty")
		return
	}
	if req.K <= 0 {
		req.K = 10
	}
	t0 := time.Now()
	batch := s.idx.TopKBatch(req.IDs, req.K, 0)
	took := time.Since(t0)
	type batchEntry struct {
		Query   int      `json:"query"`
		Answers []answer `json:"answers,omitempty"`
		Error   string   `json:"error,omitempty"`
	}
	entries := make([]batchEntry, len(batch))
	for i, br := range batch {
		entries[i] = batchEntry{Query: br.Query}
		if br.Err != nil {
			entries[i].Error = br.Err.Error()
			s.record(0, br.Err)
			continue
		}
		entries[i].Answers = s.toAnswers(br.Results)
		s.record(took/time.Duration(len(batch)), nil)
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"k":       req.K,
		"took_us": took.Microseconds(),
		"results": entries,
	})
}

func (s *server) handleItem(w http.ResponseWriter, r *http.Request) {
	idStr := strings.TrimPrefix(r.URL.Path, "/item/")
	id, err := strconv.Atoi(idStr)
	if err != nil {
		writeError(w, http.StatusBadRequest, "item id must be an integer")
		return
	}
	ids, weights, err := s.idx.Neighbors(id)
	if err != nil {
		writeError(w, http.StatusNotFound, err.Error())
		return
	}
	resp := map[string]interface{}{
		"item":             id,
		"neighbors":        ids,
		"neighbor_weights": weights,
	}
	if s.labels != nil {
		resp["label"] = s.labels[id]
	}
	writeJSON(w, http.StatusOK, resp)
}

func parseK(raw string) int {
	k, err := strconv.Atoi(raw)
	if err != nil || k <= 0 {
		return 10
	}
	return k
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// The header is already out; nothing more to do than log.
		fmt.Println("mogul-server: encoding response:", err)
	}
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}
