// Command mogul-server serves Manifold Ranking search over HTTP — the
// image-retrieval-system deployment the paper's introduction
// motivates. It builds (or loads) a Mogul index once and mounts the
// serve package's production query service over it (version-keyed
// result caching, micro-batched execution, backpressure, /metrics):
//
//	mogul-datagen -dataset coil -o coil.gob
//	mogul-server -data coil.gob -save-index coil.mogul
//	mogul-server -load-index coil.mogul -addr :8080 -batch-window 200us
//	curl 'localhost:8080/search?id=17&k=5'
//	curl -X POST localhost:8080/search/vector -d '{"vector":[...],"k":5}'
//	curl 'localhost:8080/metrics'
//
// With -load-index the precomputed index file (from -save-index) is
// loaded instead of rebuilding, so startup is I/O bound only: no graph
// construction, no clustering, no factorization. All handler logic
// lives in package serve; this command is flag parsing and wiring.
//
// -precision f32 builds the index with float32 bulk storage (about
// half the resident bytes per point). Saving with -save-align 4096 and
// serving with -load-index -mmap maps the file read-only instead of
// copying it onto the heap, so N server processes over one index file
// share a single physical copy of the big arrays:
//
//	mogul-server -data coil.gob -precision f32 -save-index coil.mogul -save-align 4096
//	mogul-server -load-index coil.mogul -mmap -addr :8080
//
// The same binary also runs the distributed topology (docs/DISTRIBUTED.md):
//
//	# one shard server per process (plain index only, -shards must be 1)
//	mogul-server -mode shard -load-index shard0.mogul -addr :9000
//	mogul-server -mode shard -load-index shard1.mogul -addr :9001
//	# coordinator fanning out over them; replicas of one shard join with |
//	mogul-server -mode coordinator -shard-urls 'http://h0:9000,http://h1:9001|http://h1b:9001' -addr :8080
//
// The coordinator derives the contiguous global-id partition from each
// shard's item count in -shard-urls order, so shard files must come
// from one dataset split in that same order (mogul-server -mode shard
// servers built via dist.BuildShardIndexes, or -save-index on slices).
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"mogul"
	"mogul/dist"
	"mogul/internal/diskio"
	"mogul/serve"
)

func main() {
	var (
		data      = flag.String("data", "", "dataset file (.gob from mogul-datagen, or .csv)")
		saveIndex = flag.String("save-index", "", "after building, persist the index here and exit")
		addr      = flag.String("addr", ":8080", "listen address")
		graphK    = flag.Int("graph-k", 5, "k of the k-NN graph")
		alpha     = flag.Float64("alpha", 0.99, "Manifold Ranking damping parameter")
		exact     = flag.Bool("exact", false, "serve exact scores (MogulE)")
		approx    = flag.Bool("approx-graph", false, "build the k-NN graph with the IVF index")
		shards    = flag.Int("shards", 1, "partition the dataset into N shards (parallel build, fan-out search)")
		partition = flag.String("partitioner", "contiguous", "shard partitioner: contiguous or kmeans")
		engine    = flag.String("engine", "graph", "ranking engine: graph (k-NN graph index), emr (anchor-graph EMR), or spectral (truncated eigenbasis)")
		anchors   = flag.Int("anchors", 0, "emr engine: number of k-means anchors (0 = default)")
		anchorsPP = flag.Int("anchors-per-point", 0, "emr engine: anchors in each point's support (0 = default)")
		rank      = flag.Int("rank", 0, "spectral engine: retained eigenpairs (0 = default)")
		precision = flag.String("precision", "f64", "storage precision for built indexes: f64 or f32 (f32 roughly halves resident bulk-array bytes; ranking differs only by storage rounding)")
		saveAlign = flag.Int("save-align", 0, "with -save-index: pad container sections to this power-of-two byte boundary (0 = compact layout; 4096 suits -mmap serving)")
		useMmap   = flag.Bool("mmap", false, "with -load-index: serve through a read-only memory map so concurrent server processes share one physical copy of the file")

		cacheBytes  = flag.Int64("cache-bytes", 64<<20, "query-result cache budget in bytes (0 disables)")
		batchWindow = flag.Duration("batch-window", 0, "micro-batch window for /search/vector (0 disables, try 200us)")
		maxBatch    = flag.Int("max-batch", 64, "max queries coalesced into one micro-batch")
		maxInflight = flag.Int("max-inflight", 0, "max concurrently executing searches (0 = GOMAXPROCS)")
		maxQueue    = flag.Int("max-queue", 0, "max searches queued for a slot before shedding 429 (0 = 4x max-inflight)")

		mode          = flag.String("mode", "serve", "serve (single node), shard (shard server with /dist/* surface), coordinator (fan out over -shard-urls)")
		shardURLs     = flag.String("shard-urls", "", "coordinator mode: comma-separated shard base URLs; replicas of one shard joined with |")
		shardTimeout  = flag.Duration("shard-timeout", 2*time.Second, "coordinator mode: per-shard call deadline (0 = caller's context only)")
		hedgeDelay    = flag.Duration("hedge-delay", 0, "coordinator mode: hedge to the next replica after this delay (0 = failover only)")
		clientTimeout = flag.Duration("client-timeout", 5*time.Second, "coordinator mode: per-HTTP-attempt timeout to a shard")
		clientRetries = flag.Int("client-retries", 2, "coordinator mode: extra attempts for idempotent reads on retryable errors")
	)
	var indexPath string
	flag.StringVar(&indexPath, "load-index", "", "serve from a prebuilt index file (from -save-index) instead of building")
	flag.StringVar(&indexPath, "index", "", "alias for -load-index")
	flag.Parse()

	if *engine != "graph" && *engine != "emr" && *engine != "spectral" {
		log.Fatalf("mogul-server: unknown -engine %q (want graph, emr, or spectral)", *engine)
	}
	var prec mogul.Precision
	switch *precision {
	case "f64":
		prec = mogul.F64
	case "f32":
		prec = mogul.F32
	default:
		log.Fatalf("mogul-server: unknown -precision %q (want f64 or f32)", *precision)
	}
	serveOpts := serve.Options{
		CacheBytes:  *cacheBytes,
		BatchWindow: *batchWindow,
		MaxBatch:    *maxBatch,
		MaxInFlight: *maxInflight,
		MaxQueue:    *maxQueue,
	}

	if *mode == "coordinator" {
		runCoordinator(*addr, *shardURLs, serveOpts, dist.ClientOptions{
			Timeout: *clientTimeout,
			Retries: *clientRetries,
		}, dist.CoordOptions{
			ShardTimeout: *shardTimeout,
			HedgeDelay:   *hedgeDelay,
		})
		return
	}

	var (
		idx    mogul.Retriever
		labels []int
		err    error
	)
	switch {
	case indexPath != "":
		t0 := time.Now()
		how := "loaded"
		if *useMmap {
			// The mapping must outlive the engine; main's defer releases
			// it after the handler drains at shutdown.
			var closer io.Closer
			idx, closer, err = mogul.LoadFileMapped(indexPath)
			if err == nil {
				defer closer.Close()
			}
			how = "mapped"
		} else {
			// LoadFile sniffs the file's magic header: a plain index and a
			// sharded manifest both come back behind the Retriever surface.
			idx, err = mogul.LoadFile(indexPath)
		}
		if err != nil {
			log.Fatal("mogul-server: ", err)
		}
		log.Printf("%s index (%d items) in %v", how, idx.Len(), time.Since(t0).Round(time.Millisecond))
		// Labels may come from the dataset alongside, when given.
		if *data != "" {
			if ds, err := loadDataset(*data); err == nil && ds.Len() == idx.Len() {
				labels = ds.Labels
			}
		}
	case *data != "":
		ds, err := loadDataset(*data)
		if err != nil {
			log.Fatal("mogul-server: ", err)
		}
		labels = ds.Labels
		opts := mogul.Options{
			GraphK:           *graphK,
			Alpha:            *alpha,
			Exact:            *exact,
			ApproximateGraph: *approx,
			Precision:        prec,
		}
		t0 := time.Now()
		if *engine == "emr" {
			if *shards > 1 {
				log.Fatal("mogul-server: -engine emr builds one anchor graph; use -shards 1 (shard EMR engines across processes via -mode coordinator)")
			}
			if *exact {
				log.Fatal("mogul-server: -engine emr serves anchor-graph scores; -exact selects the graph engine's MogulE")
			}
			e, err := mogul.BuildEMR(ds.Points, opts, mogul.EMROptions{
				NumAnchors:        *anchors,
				NumNearestAnchors: *anchorsPP,
			})
			if err != nil {
				log.Fatal("mogul-server: ", err)
			}
			idx = e
			log.Printf("built EMR engine over %d items (%d anchors) in %v",
				e.Len(), e.NumAnchors(), time.Since(t0).Round(time.Millisecond))
		} else if *engine == "spectral" {
			if *shards > 1 {
				log.Fatal("mogul-server: -engine spectral builds one eigenbasis; use -shards 1 (shard spectral engines across processes via -mode coordinator)")
			}
			if *exact {
				log.Fatal("mogul-server: -engine spectral serves truncated-eigenbasis scores; -exact selects the graph engine's MogulE")
			}
			e, err := mogul.BuildSpectral(ds.Points, opts, mogul.SpectralOptions{Rank: *rank})
			if err != nil {
				log.Fatal("mogul-server: ", err)
			}
			idx = e
			log.Printf("built spectral engine over %d items (rank %d) in %v",
				e.Len(), e.Rank(), time.Since(t0).Round(time.Millisecond))
		} else if *shards > 1 {
			var p mogul.Partitioner
			switch *partition {
			case "contiguous":
				p = mogul.PartitionContiguous
			case "kmeans":
				p = mogul.PartitionKMeans
			default:
				log.Fatalf("mogul-server: unknown partitioner %q (want contiguous or kmeans)", *partition)
			}
			sharded, err := mogul.BuildSharded(ds.Points, opts, mogul.ShardOptions{Shards: *shards, Partitioner: p})
			if err != nil {
				log.Fatal("mogul-server: ", err)
			}
			idx = sharded
			log.Printf("built %d shards over %d items in %v (shard sizes %v)",
				sharded.NumShards(), sharded.Len(), time.Since(t0).Round(time.Millisecond), sharded.ShardLens())
		} else {
			idx, err = mogul.BuildFromDataset(ds, opts)
			if err != nil {
				log.Fatal("mogul-server: ", err)
			}
			log.Printf("built index over %d items in %v", idx.Len(), time.Since(t0).Round(time.Millisecond))
		}
	default:
		log.Fatal("mogul-server: provide -data or -load-index")
	}

	if *saveIndex != "" {
		var err error
		if *saveAlign > 0 {
			s, ok := idx.(interface{ SaveFileAligned(string, int) error })
			if !ok {
				log.Fatalf("mogul-server: -save-align is not supported for %T (the sharded manifest has no aligned layout)", idx)
			}
			err = s.SaveFileAligned(*saveIndex, *saveAlign)
		} else {
			err = idx.SaveFile(*saveIndex)
		}
		if err != nil {
			log.Fatal("mogul-server: saving index: ", err)
		}
		log.Printf("index saved to %s", *saveIndex)
		return
	}

	serveOpts.Labels = labels
	var handler interface {
		http.Handler
		Close()
	}
	switch *mode {
	case "serve":
		handler = serve.New(idx, serveOpts)
	case "shard":
		// A shard server exposes the /dist/* surface (owner/vector/set
		// search, replication log, snapshot), which needs the plain
		// single-index mutation and delta-log machinery underneath.
		plain, ok := idx.(*mogul.Index)
		if !ok {
			log.Fatalf("mogul-server: -mode shard needs a plain index (got %T); build with -shards 1 or load a non-sharded file", idx)
		}
		handler = dist.NewShardServer(plain, serveOpts)
		log.Printf("shard server: /dist/* surface enabled over %d items", plain.Len())
	default:
		log.Fatalf("mogul-server: unknown -mode %q (want serve, shard, or coordinator)", *mode)
	}
	defer handler.Close()
	serveForever(*addr, handler)
}

// serveForever listens on addr and serves h until SIGINT/SIGTERM,
// then drains with a 10s grace period.
func serveForever(addr string, h http.Handler) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		log.Fatal("mogul-server: ", err)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	log.Printf("serving Manifold Ranking search on %s", l.Addr())
	if err := serve.Run(ctx, l, h, 10*time.Second); err != nil {
		log.Fatal("mogul-server: ", err)
	}
	log.Print("shut down cleanly")
}

// runCoordinator assembles the distributed read/write path: one
// Client per shard URL (replicas of a shard separated by |), the
// contiguous global-id partition derived from each shard's reported
// item count, and the full serving layer (cache, batching,
// backpressure, metrics) mounted over the Coordinator — which is just
// another mogul.Retriever as far as package serve is concerned.
func runCoordinator(addr, urls string, serveOpts serve.Options, copts dist.ClientOptions, opts dist.CoordOptions) {
	if urls == "" {
		log.Fatal("mogul-server: -mode coordinator needs -shard-urls")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	var (
		shards    []dist.Shard
		partition [][]int
		next      int
	)
	for _, group := range strings.Split(urls, ",") {
		var replicas []dist.Backend
		var primary *dist.Client
		for _, u := range strings.Split(group, "|") {
			u = strings.TrimSpace(u)
			if u == "" {
				continue
			}
			c := dist.NewClient(u, copts)
			if primary == nil {
				primary = c
			}
			replicas = append(replicas, c)
		}
		if primary == nil {
			log.Fatalf("mogul-server: empty shard group in -shard-urls %q", urls)
		}
		info, err := primary.InfoCtx(ctx)
		if err != nil {
			log.Fatalf("mogul-server: probing shard %d (%s): %v", len(shards), primary.Base(), err)
		}
		ids := make([]int, info.Items)
		for i := range ids {
			ids[i] = next + i
		}
		next += info.Items
		partition = append(partition, ids)
		shards = append(shards, dist.Shard{Replicas: replicas})
		log.Printf("shard %d: %s (%d replicas, %d items, version %d)",
			len(shards)-1, primary.Base(), len(replicas), info.Items, info.Version)
	}
	coord, err := dist.NewCoordinator(shards, partition, opts)
	if err != nil {
		log.Fatal("mogul-server: ", err)
	}
	srv := serve.New(coord, serveOpts)
	defer srv.Close()
	log.Printf("coordinator over %d shards, %d items", len(shards), coord.Len())
	serveForever(addr, srv)
}

func loadDataset(path string) (*mogul.Dataset, error) {
	if strings.HasSuffix(strings.ToLower(path), ".csv") {
		f, err := os.Open(path)
		if err != nil {
			return nil, fmt.Errorf("opening %s: %w", path, err)
		}
		defer f.Close()
		return diskio.LoadCSV(f, path)
	}
	return diskio.LoadGob(path)
}
