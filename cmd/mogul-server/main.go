// Command mogul-server serves Manifold Ranking search over HTTP — the
// image-retrieval-system deployment the paper's introduction
// motivates. It builds (or loads) a Mogul index once and mounts the
// serve package's production query service over it (version-keyed
// result caching, micro-batched execution, backpressure, /metrics):
//
//	mogul-datagen -dataset coil -o coil.gob
//	mogul-server -data coil.gob -save-index coil.mogul
//	mogul-server -load-index coil.mogul -addr :8080 -batch-window 200us
//	curl 'localhost:8080/search?id=17&k=5'
//	curl -X POST localhost:8080/search/vector -d '{"vector":[...],"k":5}'
//	curl 'localhost:8080/metrics'
//
// With -load-index the precomputed index file (from -save-index) is
// loaded instead of rebuilding, so startup is I/O bound only: no graph
// construction, no clustering, no factorization. All handler logic
// lives in package serve; this command is flag parsing and wiring.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"mogul"
	"mogul/internal/diskio"
	"mogul/serve"
)

func main() {
	var (
		data      = flag.String("data", "", "dataset file (.gob from mogul-datagen, or .csv)")
		saveIndex = flag.String("save-index", "", "after building, persist the index here and exit")
		addr      = flag.String("addr", ":8080", "listen address")
		graphK    = flag.Int("graph-k", 5, "k of the k-NN graph")
		alpha     = flag.Float64("alpha", 0.99, "Manifold Ranking damping parameter")
		exact     = flag.Bool("exact", false, "serve exact scores (MogulE)")
		approx    = flag.Bool("approx-graph", false, "build the k-NN graph with the IVF index")
		shards    = flag.Int("shards", 1, "partition the dataset into N shards (parallel build, fan-out search)")
		partition = flag.String("partitioner", "contiguous", "shard partitioner: contiguous or kmeans")

		cacheBytes  = flag.Int64("cache-bytes", 64<<20, "query-result cache budget in bytes (0 disables)")
		batchWindow = flag.Duration("batch-window", 0, "micro-batch window for /search/vector (0 disables, try 200us)")
		maxBatch    = flag.Int("max-batch", 64, "max queries coalesced into one micro-batch")
		maxInflight = flag.Int("max-inflight", 0, "max concurrently executing searches (0 = GOMAXPROCS)")
		maxQueue    = flag.Int("max-queue", 0, "max searches queued for a slot before shedding 429 (0 = 4x max-inflight)")
	)
	var indexPath string
	flag.StringVar(&indexPath, "load-index", "", "serve from a prebuilt index file (from -save-index) instead of building")
	flag.StringVar(&indexPath, "index", "", "alias for -load-index")
	flag.Parse()

	var (
		idx    mogul.Retriever
		labels []int
		err    error
	)
	switch {
	case indexPath != "":
		t0 := time.Now()
		// LoadFile sniffs the file's magic header: a plain index and a
		// sharded manifest both come back behind the Retriever surface.
		idx, err = mogul.LoadFile(indexPath)
		if err != nil {
			log.Fatal("mogul-server: ", err)
		}
		log.Printf("loaded index (%d items) in %v", idx.Len(), time.Since(t0).Round(time.Millisecond))
		// Labels may come from the dataset alongside, when given.
		if *data != "" {
			if ds, err := loadDataset(*data); err == nil && ds.Len() == idx.Len() {
				labels = ds.Labels
			}
		}
	case *data != "":
		ds, err := loadDataset(*data)
		if err != nil {
			log.Fatal("mogul-server: ", err)
		}
		labels = ds.Labels
		opts := mogul.Options{
			GraphK:           *graphK,
			Alpha:            *alpha,
			Exact:            *exact,
			ApproximateGraph: *approx,
		}
		t0 := time.Now()
		if *shards > 1 {
			var p mogul.Partitioner
			switch *partition {
			case "contiguous":
				p = mogul.PartitionContiguous
			case "kmeans":
				p = mogul.PartitionKMeans
			default:
				log.Fatalf("mogul-server: unknown partitioner %q (want contiguous or kmeans)", *partition)
			}
			sharded, err := mogul.BuildSharded(ds.Points, opts, mogul.ShardOptions{Shards: *shards, Partitioner: p})
			if err != nil {
				log.Fatal("mogul-server: ", err)
			}
			idx = sharded
			log.Printf("built %d shards over %d items in %v (shard sizes %v)",
				sharded.NumShards(), sharded.Len(), time.Since(t0).Round(time.Millisecond), sharded.ShardLens())
		} else {
			idx, err = mogul.BuildFromDataset(ds, opts)
			if err != nil {
				log.Fatal("mogul-server: ", err)
			}
			log.Printf("built index over %d items in %v", idx.Len(), time.Since(t0).Round(time.Millisecond))
		}
	default:
		log.Fatal("mogul-server: provide -data or -load-index")
	}

	if *saveIndex != "" {
		if err := idx.SaveFile(*saveIndex); err != nil {
			log.Fatal("mogul-server: saving index: ", err)
		}
		log.Printf("index saved to %s", *saveIndex)
		return
	}

	srv := serve.New(idx, serve.Options{
		Labels:      labels,
		CacheBytes:  *cacheBytes,
		BatchWindow: *batchWindow,
		MaxBatch:    *maxBatch,
		MaxInFlight: *maxInflight,
		MaxQueue:    *maxQueue,
	})
	defer srv.Close()
	l, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal("mogul-server: ", err)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	log.Printf("serving Manifold Ranking search on %s", l.Addr())
	if err := serve.Run(ctx, l, srv, 10*time.Second); err != nil {
		log.Fatal("mogul-server: ", err)
	}
	log.Print("shut down cleanly")
}

func loadDataset(path string) (*mogul.Dataset, error) {
	if strings.HasSuffix(strings.ToLower(path), ".csv") {
		f, err := os.Open(path)
		if err != nil {
			return nil, fmt.Errorf("opening %s: %w", path, err)
		}
		defer f.Close()
		return diskio.LoadCSV(f, path)
	}
	return diskio.LoadGob(path)
}
