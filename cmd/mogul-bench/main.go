// Command mogul-bench regenerates every figure and table of the
// paper's evaluation (Section 5) on the synthetic dataset stand-ins:
//
//	mogul-bench -exp all                 # everything, small scale
//	mogul-bench -exp fig1 -scale medium  # one experiment, bigger data
//
// Experiments: fig1 (search time), fig234 (accuracy/time vs anchors),
// fig5 (pruning ablation), fig6 (sparsity spy plots), fig7
// (out-of-sample time), table2 (out-of-sample breakdown), fig8
// (precompute time), fig9 (case studies), nnz (factor sizes).
//
// Scales: small (seconds), medium (minutes), large (tens of minutes).
// EXPERIMENTS.md records paper-reported versus measured results.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"
)

func main() {
	var (
		exp         = flag.String("exp", "all", "experiment: all,fig1,fig234,fig5,fig6,fig7,table2,fig8,fig9,nnz,ordering,sharded,... (comma separated)")
		scale       = flag.String("scale", "small", "dataset scale: small, medium, large")
		seed        = flag.Int64("seed", 1, "random seed for datasets and stochastic components")
		queries     = flag.Int("queries", 10, "query repetitions per timing measurement")
		inverseMaxN = flag.Int("inverse-max-n", 2000, "skip the O(n^3) Inverse baseline above this many nodes")
		fmrMaxN     = flag.Int("fmr-max-n", 30000, "skip the FMR baseline above this many nodes")
		format      = flag.String("format", "table", "result format: table (aligned text) or csv")
		shards      = flag.Int("shards", 8, "largest shard count of the sharded experiment's S sweep (1,2,4,... up to N)")
	)
	flag.Parse()
	switch *format {
	case "table":
	case "csv":
		csvOutput = true
	default:
		fmt.Fprintf(os.Stderr, "unknown format %q (want table or csv)\n", *format)
		os.Exit(2)
	}

	l, err := newLab(*scale, *seed, *queries, *inverseMaxN, *fmrMaxN)
	if err != nil {
		fatal(err)
	}
	l.maxShards = *shards

	runners := map[string]func(*lab){
		"fig1":     expFig1,
		"fig234":   expFig234,
		"fig5":     expFig5,
		"fig6":     expFig6,
		"fig7":     expFig7,
		"table2":   expTable2,
		"fig8":     expFig8,
		"fig9":     expFig9,
		"nnz":      expNNZ,
		"ordering": expOrdering,
		"scaling":  expScaling,
		"quality":  expQuality,
		"mogulcg":  expMogulCG,
		"serving":  expServing,
		"sharded":  expSharded,
		"dist":     expDist,
		"emr":      expEMR,
		"spectral": expSpectral,
		"build":    expBuild,
		"memory":   expMemory,
	}
	order := []string{"fig1", "fig234", "fig5", "fig6", "fig7", "table2", "fig8", "fig9", "nnz", "ordering", "scaling", "quality", "mogulcg", "serving", "sharded", "dist", "emr", "spectral", "build", "memory"}

	var selected []string
	if *exp == "all" {
		selected = order
	} else {
		for _, name := range strings.Split(*exp, ",") {
			name = strings.TrimSpace(name)
			if _, ok := runners[name]; !ok {
				fmt.Fprintf(os.Stderr, "unknown experiment %q; available: all,%s\n", name, strings.Join(order, ","))
				os.Exit(2)
			}
			selected = append(selected, name)
		}
	}

	fmt.Printf("mogul-bench: scale=%s seed=%d queries=%d\n\n", *scale, *seed, *queries)
	for i, name := range selected {
		if i > 0 {
			fmt.Println()
		}
		t0 := time.Now()
		runners[name](l)
		fmt.Fprintf(os.Stderr, "[lab] %s finished in %v\n", name, time.Since(t0).Round(time.Millisecond))
	}
}
