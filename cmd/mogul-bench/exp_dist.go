package main

// The "dist" experiment prices the distributed deployment
// (docs/DISTRIBUTED.md): for S = 2, 4, ... shards it boots a real
// loopback cluster — one HTTP shard server per shard, the coordinator
// fanning out over remote clients — and compares coordinated search
// latency and ranking agreement against the in-process ShardedIndex
// doing the identical fan-out with function calls instead of sockets.
// The latency delta IS the network tax (HTTP + JSON + merge); the
// agreement column should read 1.000 because scores cross the wire as
// shortest-round-trip float64 and the coordinator mirrors the
// in-process fan-out math exactly.

import (
	"fmt"
	"slices"
	"time"

	"mogul"
	"mogul/dist"
	"mogul/dist/disttest"
	"mogul/internal/eval"
)

// labT adapts the bench lab to disttest's testing surface: failures
// abort the run, cleanups are collected for explicit teardown after
// each cluster's measurements.
type labT struct{ cleanups []func() }

func (t *labT) Helper() {}
func (t *labT) Fatalf(format string, args ...interface{}) {
	fatal(fmt.Errorf(format, args...))
}
func (t *labT) Cleanup(f func()) { t.cleanups = append(t.cleanups, f) }
func (t *labT) close() {
	for i := len(t.cleanups) - 1; i >= 0; i-- {
		t.cleanups[i]()
	}
}

func expDist(l *lab) {
	const name = "NUS-WIDE"
	const k = 10
	ds := l.dataset(name)
	queries := l.queryNodes(name)

	rows := [][]string{{"shards", "in-proc [s]", "distributed [s]", "net tax", "agree@10"}}
	for s := 2; s <= l.maxShards; s *= 2 {
		// In-process twin: same shard count, same seed, same fan-out.
		six, err := mogul.BuildSharded(ds.Points, mogul.Options{Seed: l.seed}, mogul.ShardOptions{Shards: s})
		if err != nil {
			fatal(err)
		}
		inproc := medianSearchTime(queries, func(q int) {
			if _, err := six.TopK(q, k); err != nil {
				fatal(err)
			}
		})

		t := &labT{}
		cl := disttest.NewCluster(t, disttest.ClusterConfig{
			Shards: s,
			Points: ds.Points,
			Build:  mogul.Options{Seed: l.seed},
			Client: dist.ClientOptions{Timeout: 30 * time.Second},
		})
		var agree float64
		for _, q := range queries {
			want, err := six.TopK(q, k)
			if err != nil {
				fatal(err)
			}
			got, err := cl.Coord.TopK(q, k)
			if err != nil {
				fatal(err)
			}
			if slices.Equal(eval.TopKIDs(got), eval.TopKIDs(want)) {
				agree++
			}
		}
		agree /= float64(len(queries))
		med := medianSearchTime(queries, func(q int) {
			if _, err := cl.Coord.TopK(q, k); err != nil {
				fatal(err)
			}
		})
		t.close()

		tax := "-"
		if inproc > 0 {
			tax = fmt.Sprintf("%.1fx", float64(med)/float64(inproc))
		}
		rows = append(rows, []string{
			fmt.Sprintf("%d", s),
			eval.Seconds(inproc),
			eval.Seconds(med),
			tax,
			fmt.Sprintf("%.3f", agree),
		})
	}
	fmt.Printf("Distributed coordinator on %s (loopback HTTP cluster, top-%d, twin = in-process ShardedIndex)\n", ds.Name, k)
	emitTable(rows)
}
