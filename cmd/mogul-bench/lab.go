package main

import (
	"fmt"
	"os"
	"time"

	"mogul/internal/baseline"
	"mogul/internal/core"
	"mogul/internal/dataset"
	"mogul/internal/eval"
	"mogul/internal/knn"
	"mogul/internal/vec"
)

// sizes holds the per-dataset point counts of one scale preset.
type sizes struct {
	coil, pubfig, nus, inria int
}

var scalePresets = map[string]sizes{
	// small: everything (including the O(n^3) Inverse baseline) runs
	// in seconds; used by default in automated runs.
	"small": {coil: 1800, pubfig: 3000, nus: 5000, inria: 8000},
	// medium: minutes; the shape of every figure is already stable.
	"medium": {coil: 7200, pubfig: 12000, nus: 24000, inria: 48000},
	// large: tens of minutes; closest to the paper's raw sizes that a
	// single container sensibly runs (INRIA is still scaled down from
	// the paper's 1M).
	"large": {coil: 7200, pubfig: 58797, nus: 100000, inria: 200000},
}

// lab lazily builds and caches datasets, graphs, indexes and baselines
// so that experiments sharing a substrate do not pay for it twice.
type lab struct {
	scale   sizes
	seed    int64
	queries int
	// inverseMaxN caps the dense Inverse baseline (O(n^2) memory /
	// O(n^3) time), mirroring the paper's inability to run it on the
	// larger datasets.
	inverseMaxN int
	// fmrMaxN caps the FMR baseline (dense per-block eigensolver).
	fmrMaxN int
	// maxShards bounds the sharded experiment's S sweep (-shards).
	maxShards int

	datasets  map[string]*vec.Dataset
	graphs    map[string]*knn.Graph
	indexes   map[string]*core.Index
	exactIdx  map[string]*core.Index
	emrs      map[string]*baseline.EMR
	holdouts  map[string]*holdout
	graphTime map[string]time.Duration
}

type holdout struct {
	in      *vec.Dataset
	graph   *knn.Graph
	index   *core.Index
	emr     *baseline.EMR
	queries []vec.Vector
	labels  []int
}

// datasetNames is the paper's evaluation order (graph sizes ascending).
var datasetNames = []string{"COIL-100", "PubFig", "NUS-WIDE", "INRIA"}

func newLab(scale string, seed int64, queries, inverseMaxN, fmrMaxN int) (*lab, error) {
	preset, ok := scalePresets[scale]
	if !ok {
		return nil, fmt.Errorf("unknown scale %q (want small, medium or large)", scale)
	}
	return &lab{
		scale:       preset,
		seed:        seed,
		queries:     queries,
		inverseMaxN: inverseMaxN,
		fmrMaxN:     fmrMaxN,
		datasets:    map[string]*vec.Dataset{},
		graphs:      map[string]*knn.Graph{},
		indexes:     map[string]*core.Index{},
		exactIdx:    map[string]*core.Index{},
		emrs:        map[string]*baseline.EMR{},
		holdouts:    map[string]*holdout{},
		graphTime:   map[string]time.Duration{},
	}, nil
}

func (l *lab) dataset(name string) *vec.Dataset {
	if ds, ok := l.datasets[name]; ok {
		return ds
	}
	var ds *vec.Dataset
	switch name {
	case "COIL-100":
		objects := l.scale.coil / 72
		if objects < 1 {
			objects = 1
		}
		ds = dataset.COILSim(dataset.COILConfig{Objects: objects, Poses: 72, Seed: l.seed})
	case "PubFig":
		ds = dataset.PubFigSim(l.scale.pubfig, l.seed+1)
	case "NUS-WIDE":
		ds = dataset.NUSWideSim(l.scale.nus, l.seed+2)
	case "INRIA":
		ds = dataset.INRIASim(l.scale.inria, l.seed+3)
	default:
		fmt.Fprintf(os.Stderr, "unknown dataset %q\n", name)
		os.Exit(2)
	}
	l.datasets[name] = ds
	return ds
}

func (l *lab) graph(name string) *knn.Graph {
	if g, ok := l.graphs[name]; ok {
		return g
	}
	ds := l.dataset(name)
	t0 := time.Now()
	g, err := knn.BuildGraph(ds.Points, knn.GraphConfig{
		K:           5, // the paper's evaluation setting
		Approximate: true,
		Seed:        l.seed,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "building %s graph: %v\n", name, err)
		os.Exit(1)
	}
	l.graphTime[name] = time.Since(t0)
	l.graphs[name] = g
	fmt.Fprintf(os.Stderr, "[lab] %s: n=%d edges=%d graph built in %v\n",
		ds.Name, g.Len(), g.NumEdges(), l.graphTime[name].Round(time.Millisecond))
	return g
}

func (l *lab) index(name string) *core.Index {
	if ix, ok := l.indexes[name]; ok {
		return ix
	}
	ix, err := core.NewIndex(l.graph(name), core.Options{})
	if err != nil {
		fmt.Fprintf(os.Stderr, "building %s index: %v\n", name, err)
		os.Exit(1)
	}
	l.indexes[name] = ix
	st := ix.Stats()
	fmt.Fprintf(os.Stderr, "[lab] %s: Mogul index N=%d border=%d nnz(L)=%d precompute=%v\n",
		name, st.NumClusters, st.BorderSize, st.FactorNNZ, st.PrecomputeTime().Round(time.Millisecond))
	return ix
}

func (l *lab) exactIndex(name string) *core.Index {
	if ix, ok := l.exactIdx[name]; ok {
		return ix
	}
	ix, err := core.NewIndex(l.graph(name), core.Options{Exact: true})
	if err != nil {
		fmt.Fprintf(os.Stderr, "building %s exact index: %v\n", name, err)
		os.Exit(1)
	}
	l.exactIdx[name] = ix
	return ix
}

func (l *lab) emr(name string, anchors int) *baseline.EMR {
	key := fmt.Sprintf("%s/%d", name, anchors)
	if e, ok := l.emrs[key]; ok {
		return e
	}
	ds := l.dataset(name)
	e, err := baseline.NewEMR(ds.Points, core.DefaultAlpha, baseline.EMRConfig{
		NumAnchors: anchors, Seed: l.seed,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "building %s EMR: %v\n", name, err)
		os.Exit(1)
	}
	l.emrs[key] = e
	return e
}

// holdoutFor splits a dataset for out-of-sample experiments, reusing
// one split per dataset across experiments.
func (l *lab) holdoutFor(name string, anchors int) *holdout {
	if h, ok := l.holdouts[name]; ok {
		return h
	}
	ds := l.dataset(name)
	in, queries, labels, err := dataset.HoldOut(ds, 0.01, l.seed+7)
	if err != nil {
		fmt.Fprintf(os.Stderr, "holdout %s: %v\n", name, err)
		os.Exit(1)
	}
	if len(queries) > 50 {
		queries = queries[:50]
		if labels != nil {
			labels = labels[:50]
		}
	}
	g, err := knn.BuildGraph(in.Points, knn.GraphConfig{K: 5, Approximate: true, Seed: l.seed})
	if err != nil {
		fmt.Fprintf(os.Stderr, "holdout graph %s: %v\n", name, err)
		os.Exit(1)
	}
	ix, err := core.NewIndex(g, core.Options{})
	if err != nil {
		fmt.Fprintf(os.Stderr, "holdout index %s: %v\n", name, err)
		os.Exit(1)
	}
	e, err := baseline.NewEMR(in.Points, core.DefaultAlpha, baseline.EMRConfig{
		NumAnchors: anchors, Seed: l.seed,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "holdout EMR %s: %v\n", name, err)
		os.Exit(1)
	}
	h := &holdout{in: in, graph: g, index: ix, emr: e, queries: queries, labels: labels}
	l.holdouts[name] = h
	return h
}

// queryNodes returns deterministic query node ids spread over the
// dataset.
func (l *lab) queryNodes(name string) []int {
	n := l.graph(name).Len()
	count := l.queries
	if count > n {
		count = n
	}
	out := make([]int, count)
	for i := range out {
		out[i] = (i*2654435761 + 17) % n // Knuth multiplicative spread, deterministic
	}
	return out
}

// medianSearchTime times fn over the lab's query nodes and returns the
// median per-query wall time.
func medianSearchTime(queries []int, fn func(q int)) time.Duration {
	times := make([]time.Duration, 0, len(queries))
	for _, q := range queries {
		t0 := time.Now()
		fn(q)
		times = append(times, time.Since(t0))
	}
	return medianDuration(times)
}

func medianDuration(ts []time.Duration) time.Duration {
	if len(ts) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), ts...)
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && sorted[j] < sorted[j-1]; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	return sorted[len(sorted)/2]
}

// csvOutput switches emitTable from aligned text to CSV; set by the
// -format flag in main.
var csvOutput bool

// emitTable renders one experiment table in the selected format.
func emitTable(rows [][]string) {
	if csvOutput {
		eval.CSVTable(os.Stdout, rows)
		return
	}
	eval.Table(os.Stdout, rows)
}
