package main

import (
	"bytes"
	"fmt"
	"runtime"

	"mogul"
)

// expMemory reports the resident footprint of each serving engine in
// both storage precisions: live heap bytes per point (measured as the
// post-GC HeapAlloc delta around the build, so it counts exactly what
// keeping the engine alive costs) and the saved container's bytes per
// point (what a -mmap server pays in shared page cache instead). The
// acceptance shape: f32 roughly halves the bulk-array share of both
// columns, and the residual gap between heap and disk is the
// per-engine bookkeeping that never narrows (int edge indices, bound
// tables, the delta log).
func expMemory(l *lab) {
	n := l.scale.nus
	// Each measurement generates its own copy of the dataset and drops
	// it before the post-build heap reading: engines alias f64 input
	// vectors instead of copying them, so the aliased points must be
	// charged to the engine or the f64 rows under-count their real
	// resident cost (and the f32 rows, which copy into fresh float32
	// arrays and let the input die, would look paradoxically larger).
	mkPoints := func() []mogul.Vector {
		return mogul.NewMixture(mogul.MixtureConfig{
			N: n, Classes: n / 10, Dim: 8, WithinStd: 0.25, Separation: 3.0, Seed: l.seed,
		}).Points
	}

	type build func(pts []mogul.Vector, o mogul.Options) (mogul.Retriever, error)
	engines := []struct {
		name string
		mk   build
	}{
		{"graph", func(pts []mogul.Vector, o mogul.Options) (mogul.Retriever, error) {
			return mogul.Build(pts, o)
		}},
		{"emr", func(pts []mogul.Vector, o mogul.Options) (mogul.Retriever, error) {
			return mogul.BuildEMR(pts, o, mogul.EMROptions{})
		}},
		{"spectral", func(pts []mogul.Vector, o mogul.Options) (mogul.Retriever, error) {
			return mogul.BuildSpectral(pts, o, mogul.SpectralOptions{})
		}},
	}

	rows := [][]string{{"engine", "precision", "heap [B/point]", "disk [B/point]", "f32/f64 heap"}}
	for _, eng := range engines {
		var f64Heap float64
		for _, prec := range []mogul.Precision{mogul.F64, mogul.F32} {
			opts := mogul.Options{Seed: l.seed, GraphK: 6, ApproximateGraph: true, Precision: prec}
			heap, disk, err := measureEngine(eng.mk, mkPoints, opts, n)
			if err != nil {
				fatal(err)
			}
			label, ratio := "f64", "-"
			if prec == mogul.F32 {
				label = "f32"
				ratio = fmt.Sprintf("%.2fx", heap/f64Heap)
			} else {
				f64Heap = heap
			}
			rows = append(rows, []string{
				eng.name, label,
				fmt.Sprintf("%.0f", heap), fmt.Sprintf("%.0f", disk), ratio,
			})
		}
	}
	fmt.Printf("Resident and serialized engine footprint (mixture, n=%d, dim=8; post-GC HeapAlloc delta around the build)\n", n)
	emitTable(rows)
}

// measureEngine builds one engine and returns (live heap bytes/point,
// serialized bytes/point). The heap figure is the post-GC HeapAlloc
// delta with the engine the only thing kept alive across the two
// readings: the input points are dropped before the second reading, so
// whatever the engine aliased is charged to it and the rest (plus all
// build scratch) is garbage by then.
func measureEngine(mk func(pts []mogul.Vector, o mogul.Options) (mogul.Retriever, error), mkPoints func() []mogul.Vector, opts mogul.Options, n int) (heapPerPoint, diskPerPoint float64, err error) {
	before := heapBytes()
	pts := mkPoints()
	r, err := mk(pts, opts)
	if err != nil {
		return 0, 0, err
	}
	pts = nil
	_ = pts
	after := heapBytes()
	var buf bytes.Buffer
	if err := r.Save(&buf); err != nil {
		return 0, 0, err
	}
	runtime.KeepAlive(r)
	heap := float64(after) - float64(before)
	if heap < 0 {
		heap = 0
	}
	return heap / float64(n), float64(buf.Len()) / float64(n), nil
}

// heapBytes returns HeapAlloc after forcing a full collection, so
// deltas measure retained bytes rather than allocation churn.
func heapBytes() uint64 {
	runtime.GC()
	var m runtime.MemStats
	runtime.ReadMemStats(&m)
	return m.HeapAlloc
}
