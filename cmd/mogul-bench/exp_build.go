package main

import (
	"fmt"
	"runtime"
	"time"

	"mogul"
	"mogul/internal/eval"
)

// expBuild reports the build-stage wall-time breakdown of both engines
// at 1 worker and at all cores — the scaling check behind the parallel
// precompute pipeline (docs/PERFORMANCE.md). Stages:
//
//	exact engine:  knn (graph build), cluster (Louvain + permute),
//	               factor (LDL^T + bound tables)
//	anchor engine: anchors (k-means), attach (anchor attachment + H),
//	               gram (G assembly + LU)
//
// The parallel stages are knn, anchors, attach, and the gram assembly;
// Louvain and the sparse factorization are serial, so their share of
// the total bounds the achievable end-to-end speedup (Amdahl).
func expBuild(l *lab) {
	n := l.scale.nus
	ds := mogul.NewMixture(mogul.MixtureConfig{
		N: n, Classes: n / 10, Dim: 8, WithinStd: 0.25, Separation: 3.0, Seed: l.seed,
	})

	allCores := runtime.GOMAXPROCS(0)
	procSweep := []int{1, allCores}
	if allCores == 1 {
		procSweep = procSweep[:1]
	}

	rows := [][]string{{"engine", "procs", "total [s]", "knn/anchors [s]", "cluster/attach [s]", "factor/gram [s]"}}
	for _, procs := range procSweep {
		prev := runtime.GOMAXPROCS(procs)

		t0 := time.Now()
		ix, err := mogul.Build(ds.Points, mogul.Options{Exact: true, ApproximateGraph: true, Seed: l.seed})
		if err != nil {
			runtime.GOMAXPROCS(prev)
			fatal(err)
		}
		total := time.Since(t0)
		st := ix.Stats()
		graph := total - st.PrecomputeTime()
		rows = append(rows, []string{
			"MogulE", fmt.Sprintf("%d", procs),
			eval.Seconds(total), eval.Seconds(graph),
			eval.Seconds(st.ClusterTime + st.PermuteTime), eval.Seconds(st.FactorTime),
		})

		t1 := time.Now()
		engine, err := mogul.BuildEMR(ds.Points, mogul.Options{Seed: l.seed}, mogul.EMROptions{
			NumAnchors: 2560, NumNearestAnchors: 24,
		})
		if err != nil {
			runtime.GOMAXPROCS(prev)
			fatal(err)
		}
		etotal := time.Since(t1)
		est := engine.Stats()
		attach := etotal - est.ClusterTime - est.FactorTime
		rows = append(rows, []string{
			"EMR", fmt.Sprintf("%d", procs),
			eval.Seconds(etotal), eval.Seconds(est.ClusterTime),
			eval.Seconds(attach), eval.Seconds(est.FactorTime),
		})

		runtime.GOMAXPROCS(prev)
	}
	fmt.Printf("Build-stage breakdown on %s (n=%d, EMR p=2560 s=24; knn/anchors+attach+gram-assembly parallel, Louvain+LDL^T serial)\n", ds.Name, n)
	emitTable(rows)
}
