package main

import (
	"fmt"
	"math/rand"
	"time"

	"mogul"
	"mogul/internal/baseline"
	"mogul/internal/core"
	"mogul/internal/dataset"
	"mogul/internal/eval"
	"mogul/internal/knn"
	"mogul/internal/workload"
)

// expScaling validates the paper's complexity claims (Theorems 2 and
// 3) directly: Mogul's precompute time, factor size and per-query
// search time as functions of n on the INRIA stand-in. Each column
// should grow linearly (time roughly doubles per row); the dense
// inverse approach would grow 8x per row.
func expScaling(l *lab) {
	ns := []int{2000, 4000, 8000, 16000}
	if l.scale.inria >= 48000 {
		ns = append(ns, 32000)
	}
	rows := [][]string{{"n", "graph build [s]", "precompute [s]", "nnz(L)", "Mogul search [s]", "EMR search [s]"}}
	for _, n := range ns {
		ds := dataset.INRIASim(n, l.seed)
		t0 := time.Now()
		g, err := knn.BuildGraph(ds.Points, knn.GraphConfig{K: 5, Approximate: true, Seed: l.seed})
		if err != nil {
			fatal(err)
		}
		graphTime := time.Since(t0)
		t1 := time.Now()
		ix, err := core.NewIndex(g, core.Options{})
		if err != nil {
			fatal(err)
		}
		pre := time.Since(t1)
		emr, err := baseline.NewEMR(ds.Points, core.DefaultAlpha, baseline.EMRConfig{NumAnchors: 10, Seed: l.seed})
		if err != nil {
			fatal(err)
		}
		queries := make([]int, l.queries)
		for i := range queries {
			queries[i] = (i*2654435761 + 17) % n
		}
		mogulMed := medianSearchTime(queries, func(q int) {
			if _, err := ix.TopK(q, 5); err != nil {
				fatal(err)
			}
		})
		emrMed := medianSearchTime(queries, func(q int) {
			if _, err := emr.TopK(q, 5); err != nil {
				fatal(err)
			}
		})
		rows = append(rows, []string{
			fmt.Sprintf("%d", n),
			eval.Seconds(graphTime),
			eval.Seconds(pre),
			fmt.Sprintf("%d", ix.Factor().NNZ()),
			eval.Seconds(mogulMed),
			eval.Seconds(emrMed),
		})
	}
	fmt.Println("Scaling with n (Theorems 2-3; INRIA stand-in, top-5)")
	emitTable(rows)
}

// expQuality extends the paper's accuracy evaluation (Section 5.2.1)
// with standard retrieval metrics: P@10 against the exact ranking, MAP
// with same-label relevance, and Spearman rank correlation between
// each method's full score vector and the exact one. Run on the COIL
// stand-in.
func expQuality(l *lab) {
	const name = "COIL-100"
	const k = 10
	ds := l.dataset(name)
	g := l.graph(name)
	ix := l.index(name)
	exact := l.exactIndex(name)
	emr := l.emr(name, 100)
	it, err := baseline.NewIterative(g, core.DefaultAlpha)
	if err != nil {
		fatal(err)
	}

	queries := l.queryNodes(name)
	// Per-label relevant counts for MAP.
	labelCount := map[int]int{}
	for _, lab := range ds.Labels {
		labelCount[lab]++
	}

	type method struct {
		label  string
		scores func(q int) []float64
	}
	methods := []method{
		{"Mogul", func(q int) []float64 {
			s, err := ix.AllScores(q)
			if err != nil {
				fatal(err)
			}
			return s
		}},
		{"MogulE", func(q int) []float64 {
			s, err := exact.AllScores(q)
			if err != nil {
				fatal(err)
			}
			return s
		}},
		{"EMR(d=100)", func(q int) []float64 {
			s, err := emr.AllScores(q)
			if err != nil {
				fatal(err)
			}
			return s
		}},
		{"Iterative", func(q int) []float64 {
			s, err := it.AllScores(q)
			if err != nil {
				fatal(err)
			}
			return s
		}},
	}

	rows := [][]string{{"method", "P@10 vs exact", "MAP (same label)", "Spearman rho vs exact"}}
	for _, m := range methods {
		var patk, ap, rho float64
		for _, q := range queries {
			exactScores, err := exact.AllScores(q)
			if err != nil {
				fatal(err)
			}
			ref := eval.TopKFromScores(exactScores, k, nil)
			s := m.scores(q)
			ids := eval.TopKFromScores(s, k, nil)
			patk += eval.PAtK(ids, ref)
			relevant := map[int]bool{}
			for i, lab := range ds.Labels {
				if lab == ds.Labels[q] && i != q {
					relevant[i] = true
				}
			}
			// Exclude the query itself from the ranked list for AP.
			ranked := eval.TopKFromScores(s, k+1, map[int]bool{q: true})
			ap += eval.AveragePrecision(ranked, relevant, labelCount[ds.Labels[q]]-1)
			rho += eval.RankCorrelation(s, exactScores)
		}
		n := float64(len(queries))
		rows = append(rows, []string{
			m.label,
			fmt.Sprintf("%.3f", patk/n),
			fmt.Sprintf("%.3f", ap/n),
			fmt.Sprintf("%.3f", rho/n),
		})
	}
	fmt.Printf("Extended quality metrics on %s (top-%d)\n", ds.Name, k)
	emitTable(rows)
}

// expServing replays a service-style query stream (Zipf popularity,
// 10% out-of-sample uploads) over each dataset's index and reports
// throughput and tail latency at several concurrency levels — the
// operational consequence of the paper's O(n) search.
func expServing(l *lab) {
	rows := [][]string{{"dataset", "clients", "QPS", "p50", "p90", "p99"}}
	for _, name := range datasetNames {
		h := l.holdoutFor(name, 10)
		for _, clients := range []int{1, 4, 16} {
			rep, err := workload.Run(h.index, workload.Config{
				Queries:             400,
				K:                   10,
				Concurrency:         clients,
				OutOfSampleFraction: 0.1,
				HoldOut:             h.queries,
				Seed:                l.seed,
			})
			if err != nil {
				fatal(err)
			}
			if rep.Errors > 0 {
				fatal(fmt.Errorf("serving %s: %d query errors", name, rep.Errors))
			}
			rows = append(rows, []string{
				name,
				fmt.Sprintf("%d", clients),
				fmt.Sprintf("%.0f", rep.QPS),
				rep.Latency.Median.Round(time.Microsecond).String(),
				rep.Latency.P90.Round(time.Microsecond).String(),
				rep.Latency.P99.Round(time.Microsecond).String(),
			})
		}
	}
	fmt.Println("Serving workload: Zipf query stream, 10% out-of-sample, top-10")
	emitTable(rows)
}

// expMogulCG reports the CG extension: exact scores from the
// incomplete factor used as an IC(0) preconditioner, versus MogulE's
// complete factorization. Columns: per-query time, CG iterations, and
// the two precompute times.
func expMogulCG(l *lab) {
	rows := [][]string{{"dataset", "MogulCG search [s]", "CG iters", "MogulE search [s]", "incomplete precompute [s]", "complete precompute [s]"}}
	for _, name := range datasetNames {
		g := l.graph(name)
		ix := l.index(name)
		exact := l.exactIndex(name)
		queries := l.queryNodes(name)

		var iters int
		cgMed := medianSearchTime(queries, func(q int) {
			_, it, err := ix.ExactScoresCG(q, 1e-8)
			if err != nil {
				fatal(err)
			}
			iters += it
		})
		exactMed := medianSearchTime(queries, func(q int) {
			if _, err := exact.TopK(q, 5); err != nil {
				fatal(err)
			}
		})
		// Fresh builds for precompute timing.
		t0 := time.Now()
		if _, err := core.NewIndex(g, core.Options{}); err != nil {
			fatal(err)
		}
		incPre := time.Since(t0)
		t1 := time.Now()
		if _, err := core.NewIndex(g, core.Options{Exact: true}); err != nil {
			fatal(err)
		}
		comPre := time.Since(t1)
		rows = append(rows, []string{
			name,
			eval.Seconds(cgMed),
			fmt.Sprintf("%.1f", float64(iters)/float64(len(queries))),
			eval.Seconds(exactMed),
			eval.Seconds(incPre),
			eval.Seconds(comPre),
		})
	}
	fmt.Println("MogulCG extension: exact scores via IC(0)-preconditioned CG vs MogulE")
	emitTable(rows)
}

// expSharded reports the sharding trade-off (docs/SHARDING.md): for
// S = 1, 2, 4, ... up to -shards, the parallel multi-shard build time,
// the median fan-out search time, and recall@10 of the fan-out ranking
// against the unsharded index as oracle — the scaling lever past one
// precomputation, priced in build speedup versus recall.
func expSharded(l *lab) {
	const name = "NUS-WIDE"
	const k = 10
	ds := l.dataset(name)
	queries := l.queryNodes(name)

	// Unsharded oracle: one index over the full dataset, built through
	// the same public path the sharded builds use.
	t0 := time.Now()
	oracle, err := mogul.Build(ds.Points, mogul.Options{Seed: l.seed})
	if err != nil {
		fatal(err)
	}
	oracleBuild := time.Since(t0)
	ref := make(map[int][]int, len(queries))
	for _, q := range queries {
		res, err := oracle.TopK(q, k)
		if err != nil {
			fatal(err)
		}
		ref[q] = eval.TopKIDs(res)
	}
	oracleMed := medianSearchTime(queries, func(q int) {
		if _, err := oracle.TopK(q, k); err != nil {
			fatal(err)
		}
	})

	rows := [][]string{{"shards", "build [s]", "search [s]", "recall@10"}}
	rows = append(rows, []string{"1 (plain)", eval.Seconds(oracleBuild), eval.Seconds(oracleMed), "1.000"})
	for s := 1; s <= l.maxShards; s *= 2 {
		t1 := time.Now()
		six, err := mogul.BuildSharded(ds.Points, mogul.Options{Seed: l.seed}, mogul.ShardOptions{
			Shards: s, Partitioner: mogul.PartitionKMeans,
		})
		if err != nil {
			fatal(err)
		}
		build := time.Since(t1)
		var recall float64
		for _, q := range queries {
			res, err := six.TopK(q, k)
			if err != nil {
				fatal(err)
			}
			recall += eval.PAtK(eval.TopKIDs(res), ref[q])
		}
		recall /= float64(len(queries))
		med := medianSearchTime(queries, func(q int) {
			if _, err := six.TopK(q, k); err != nil {
				fatal(err)
			}
		})
		rows = append(rows, []string{
			fmt.Sprintf("%d", s),
			eval.Seconds(build),
			eval.Seconds(med),
			fmt.Sprintf("%.3f", recall),
		})
	}
	fmt.Printf("Sharded fan-out on %s (k-means partitioner, top-%d, oracle = unsharded index)\n", ds.Name, k)
	emitTable(rows)
}

// expEMR maps the anchor-graph engine's recall/latency frontier
// (docs/EMR.md): a fine-grained retrieval mixture (micro-clusters of
// ~10 near-duplicates, low intrinsic dimension — the regime the
// EMR engine targets), the exact engine as oracle, and BuildEMR at a
// sweep of anchor counts. Search times are median per out-of-sample
// query; recall@10 counts overlap with the oracle's top-10.
func expEMR(l *lab) {
	const k = 10
	n := l.scale.nus
	ds := mogul.NewMixture(mogul.MixtureConfig{
		N: n, Classes: n / 10, Dim: 8, WithinStd: 0.25, Separation: 3.0, Seed: l.seed,
	})
	queries := emrQueryVectors(ds.Points, 32, l.seed)

	t0 := time.Now()
	exact, err := mogul.Build(ds.Points, mogul.Options{Exact: true, ApproximateGraph: true, Seed: l.seed})
	if err != nil {
		fatal(err)
	}
	exactBuild := time.Since(t0)
	ref := make([][]int, len(queries))
	for i, q := range queries {
		res, err := exact.TopKVector(q, k)
		if err != nil {
			fatal(err)
		}
		ref[i] = eval.TopKIDs(res)
	}
	exactTimes := make([]time.Duration, 0, len(queries))
	for _, q := range queries {
		t1 := time.Now()
		if _, err := exact.TopKVector(q, k); err != nil {
			fatal(err)
		}
		exactTimes = append(exactTimes, time.Since(t1))
	}

	rows := [][]string{{"engine", "anchors", "build [s]", "search [s]", "recall@10"}}
	rows = append(rows, []string{
		"MogulE (oracle)", "-", eval.Seconds(exactBuild),
		eval.Seconds(medianDuration(exactTimes)), "1.000",
	})
	for _, p := range []int{256, 512, 1024, 2048, 2560} {
		if p > n/4 {
			continue
		}
		t1 := time.Now()
		engine, err := mogul.BuildEMR(ds.Points, mogul.Options{Seed: l.seed}, mogul.EMROptions{
			NumAnchors: p, NumNearestAnchors: 24,
		})
		if err != nil {
			fatal(err)
		}
		build := time.Since(t1)
		var recall float64
		times := make([]time.Duration, 0, len(queries))
		for i, q := range queries {
			t2 := time.Now()
			res, err := engine.TopKVector(q, k)
			if err != nil {
				fatal(err)
			}
			times = append(times, time.Since(t2))
			recall += eval.PAtK(eval.TopKIDs(res), ref[i])
		}
		recall /= float64(len(queries))
		rows = append(rows, []string{
			"EMR", fmt.Sprintf("%d", p), eval.Seconds(build),
			eval.Seconds(medianDuration(times)), fmt.Sprintf("%.3f", recall),
		})
	}
	fmt.Printf("EMR anchor-graph engine on %s (top-%d, oracle = exact MogulE, out-of-sample queries)\n", ds.Name, k)
	emitTable(rows)
}

// emrQueryVectors derives out-of-sample queries by perturbing stored
// points — the near-duplicate lookup workload the frontier is
// measured on.
func emrQueryVectors(pts []mogul.Vector, count int, seed int64) []mogul.Vector {
	rng := rand.New(rand.NewSource(seed ^ 0x5f5e))
	out := make([]mogul.Vector, count)
	for i := range out {
		base := pts[rng.Intn(len(pts))]
		q := make(mogul.Vector, len(base))
		for j := range q {
			q[j] = base[j] + 0.05*rng.NormFloat64()
		}
		out[i] = q
	}
	return out
}

// expSpectral maps the truncated-eigenbasis engine's rank-vs-recall
// frontier: for each retained rank r, build time, median per-query
// latency, and recall@10 against the exact oracle on the same
// out-of-sample near-duplicate workload the EMR experiment uses, so
// the two engines' frontiers are directly comparable. The hybrid
// estimator's adaptive hop expansion carries the component-local part
// of the resolvent exactly, so on this clustered workload recall
// stays high even at ranks far below the cluster count; the sweep
// shows what (little) extra rank buys once the hops saturate
// (docs/SPECTRAL.md).
func expSpectral(l *lab) {
	const k = 10
	n := l.scale.nus
	ds := mogul.NewMixture(mogul.MixtureConfig{
		N: n, Classes: n / 10, Dim: 8, WithinStd: 0.25, Separation: 3.0, Seed: l.seed,
	})
	queries := emrQueryVectors(ds.Points, 32, l.seed)

	t0 := time.Now()
	exact, err := mogul.Build(ds.Points, mogul.Options{Exact: true, ApproximateGraph: true, Seed: l.seed})
	if err != nil {
		fatal(err)
	}
	exactBuild := time.Since(t0)
	ref := make([][]int, len(queries))
	for i, q := range queries {
		res, err := exact.TopKVector(q, k)
		if err != nil {
			fatal(err)
		}
		ref[i] = eval.TopKIDs(res)
	}
	exactTimes := make([]time.Duration, 0, len(queries))
	for _, q := range queries {
		t1 := time.Now()
		if _, err := exact.TopKVector(q, k); err != nil {
			fatal(err)
		}
		exactTimes = append(exactTimes, time.Since(t1))
	}

	rows := [][]string{{"engine", "rank", "build [s]", "search [s]", "recall@10"}}
	rows = append(rows, []string{
		"MogulE (oracle)", "-", eval.Seconds(exactBuild),
		eval.Seconds(medianDuration(exactTimes)), "1.000",
	})
	for _, r := range []int{16, 32, 64, 128, 256} {
		if r > n/4 {
			continue
		}
		t1 := time.Now()
		engine, err := mogul.BuildSpectral(ds.Points,
			mogul.Options{Seed: l.seed, ApproximateGraph: true},
			mogul.SpectralOptions{Rank: r})
		if err != nil {
			fatal(err)
		}
		build := time.Since(t1)
		var recall float64
		times := make([]time.Duration, 0, len(queries))
		for i, q := range queries {
			t2 := time.Now()
			res, err := engine.TopKVector(q, k)
			if err != nil {
				fatal(err)
			}
			times = append(times, time.Since(t2))
			recall += eval.PAtK(eval.TopKIDs(res), ref[i])
		}
		recall /= float64(len(queries))
		rows = append(rows, []string{
			"Spectral", fmt.Sprintf("%d", r), eval.Seconds(build),
			eval.Seconds(medianDuration(times)), fmt.Sprintf("%.3f", recall),
		})
	}
	fmt.Printf("Spectral (FSR) engine on %s (top-%d, oracle = exact MogulE, out-of-sample queries)\n", ds.Name, k)
	emitTable(rows)
}
