package main

import (
	"fmt"
	"os"
	"sort"
	"time"

	"mogul/internal/baseline"
	"mogul/internal/core"
	"mogul/internal/dataset"
	"mogul/internal/eval"
	"mogul/internal/knn"
)

// expFig1 reproduces Figure 1: per-query search time of Mogul(k) for
// k in {5,10,15,20} against EMR (d=10), FMR (rank 250), Iterative
// (eps=1e-4) and the Inverse baseline, per dataset. Inverse mirrors
// the paper's measurement (the O(n^3) solve happens inside the query)
// and is skipped above -inverse-max-n, as the paper skipped it on its
// larger datasets.
func expFig1(l *lab) {
	rows := [][]string{{"method", "COIL-100", "PubFig", "NUS-WIDE", "INRIA"}}
	methods := []string{"Mogul(5)", "Mogul(10)", "Mogul(15)", "Mogul(20)", "EMR", "FMR", "Iterative", "Inverse"}
	cells := map[string][]string{}
	for _, m := range methods {
		cells[m] = []string{}
	}
	for _, name := range datasetNames {
		g := l.graph(name)
		ix := l.index(name)
		queries := l.queryNodes(name)

		for _, k := range []int{5, 10, 15, 20} {
			med := medianSearchTime(queries, func(q int) {
				if _, err := ix.TopK(q, k); err != nil {
					fatal(err)
				}
			})
			cells[fmt.Sprintf("Mogul(%d)", k)] = append(cells[fmt.Sprintf("Mogul(%d)", k)], eval.Seconds(med))
		}

		emr := l.emr(name, 10)
		med := medianSearchTime(queries, func(q int) {
			if _, err := emr.TopK(q, 5); err != nil {
				fatal(err)
			}
		})
		cells["EMR"] = append(cells["EMR"], eval.Seconds(med))

		if g.Len() <= l.fmrMaxN {
			fmr, err := baseline.NewFMR(g, core.DefaultAlpha, baseline.FMRConfig{
				NumBlocks: fmrBlocksFor(g.Len()), Rank: 250, Seed: l.seed,
			})
			if err != nil {
				fatal(err)
			}
			med = medianSearchTime(queries, func(q int) {
				if _, err := fmr.TopK(q, 5); err != nil {
					fatal(err)
				}
			})
			cells["FMR"] = append(cells["FMR"], eval.Seconds(med))
		} else {
			cells["FMR"] = append(cells["FMR"], "- (n > fmr-max-n)")
		}

		it, err := baseline.NewIterative(g, core.DefaultAlpha)
		if err != nil {
			fatal(err)
		}
		med = medianSearchTime(queries[:minInt(3, len(queries))], func(q int) {
			if _, err := it.TopK(q, 5); err != nil {
				fatal(err)
			}
		})
		cells["Iterative"] = append(cells["Iterative"], eval.Seconds(med))

		if g.Len() <= l.inverseMaxN {
			inv, err := baseline.NewInverse(g, core.DefaultAlpha)
			if err != nil {
				fatal(err)
			}
			// One query, cold cache: the per-query cost the paper
			// reports includes the O(n^3) solve.
			inv.ResetCache()
			t0 := time.Now()
			if _, err := inv.TopK(queries[0], 5); err != nil {
				fatal(err)
			}
			cells["Inverse"] = append(cells["Inverse"], eval.Seconds(time.Since(t0)))
		} else {
			cells["Inverse"] = append(cells["Inverse"], "- (n > inverse-max-n)")
		}
	}
	for _, m := range methods {
		rows = append(rows, append([]string{m}, cells[m]...))
	}
	fmt.Println("Figure 1: search time [s] (median per query; k = answer count for Mogul)")
	emitTable(rows)
}

func fmrBlocksFor(n int) int {
	b := n / 300
	if b < 8 {
		b = 8
	}
	return b
}

// anchorSweep is the x axis of Figures 2-4.
func anchorSweep(n int) []int {
	all := []int{10, 25, 50, 100, 250, 500, 1000}
	out := all[:0:0]
	for _, d := range all {
		if d <= n {
			out = append(out, d)
		}
	}
	return out
}

// expFig234 reproduces Figures 2, 3 and 4 on the COIL stand-in:
// P@k, retrieval precision and search time versus EMR's anchor count,
// with Mogul and MogulE as (anchor-independent) references.
func expFig234(l *lab) {
	const name = "COIL-100"
	const k = 5
	ds := l.dataset(name)
	ix := l.index(name)
	exact := l.exactIndex(name)
	queries := l.queryNodes(name)

	// Reference top-k comes from the exact factorization, which the
	// test suite verifies equals the inverse-matrix scores.
	refTopK := make(map[int][]int, len(queries))
	for _, q := range queries {
		scores, err := exact.AllScores(q)
		if err != nil {
			fatal(err)
		}
		refTopK[q] = eval.TopKFromScores(scores, k, nil)
	}

	type rankerRow struct {
		label string
		patk  float64
		prec  float64
		time  time.Duration
	}
	evalRanker := func(label string, topk func(q int) []core.Result) rankerRow {
		var patk, prec float64
		med := medianSearchTime(queries, func(q int) { topk(q) })
		for _, q := range queries {
			res := topk(q)
			ids := eval.TopKIDs(res)
			patk += eval.PAtK(ids, refTopK[q])
			prec += eval.RetrievalPrecision(ids, ds.Labels, ds.Labels[q], q)
		}
		n := float64(len(queries))
		return rankerRow{label: label, patk: patk / n, prec: prec / n, time: med}
	}

	var rows []rankerRow
	rows = append(rows, evalRanker("Mogul", func(q int) []core.Result {
		res, err := ix.TopK(q, k)
		if err != nil {
			fatal(err)
		}
		return res
	}))
	rows = append(rows, evalRanker("MogulE", func(q int) []core.Result {
		res, err := exact.TopK(q, k)
		if err != nil {
			fatal(err)
		}
		return res
	}))
	for _, d := range anchorSweep(ds.Len()) {
		emr := l.emr(name, d)
		rows = append(rows, evalRanker(fmt.Sprintf("EMR(d=%d)", d), func(q int) []core.Result {
			res, err := emr.TopK(q, k)
			if err != nil {
				fatal(err)
			}
			return res
		}))
	}

	table := [][]string{{"method", "P@5 (Fig 2)", "retrieval precision (Fig 3)", "search time [s] (Fig 4)"}}
	for _, r := range rows {
		table = append(table, []string{
			r.label,
			fmt.Sprintf("%.3f", r.patk),
			fmt.Sprintf("%.3f", r.prec),
			eval.Seconds(r.time),
		})
	}
	fmt.Printf("Figures 2-4: accuracy and time vs number of anchor points (%s, top-%d)\n", ds.Name, k)
	emitTable(table)
}

// expFig5 reproduces Figure 5: the pruning ablation. "Mogul" is the
// full algorithm, "W/O estimation" drops the upper-bound pruning but
// keeps restricted substitution, "Incomplete Cholesky" computes all
// scores with unrestricted substitution.
func expFig5(l *lab) {
	rows := [][]string{{"variant", "COIL-100", "PubFig", "NUS-WIDE", "INRIA"}}
	variants := []struct {
		label string
		opts  core.SearchOptions
	}{
		{"Mogul", core.SearchOptions{K: 5}},
		{"W/O estimation", core.SearchOptions{K: 5, DisablePruning: true}},
		{"Incomplete Cholesky", core.SearchOptions{K: 5, FullSubstitution: true}},
	}
	cells := make([][]string, len(variants))
	pruned := []string{}
	for _, name := range datasetNames {
		ix := l.index(name)
		queries := l.queryNodes(name)
		var prunedCount, totalClusters int
		for vi, v := range variants {
			opts := v.opts
			med := medianSearchTime(queries, func(q int) {
				_, info, err := ix.Search(q, opts)
				if err != nil {
					fatal(err)
				}
				if vi == 0 {
					prunedCount += info.ClustersPruned
					totalClusters += info.ClustersPruned + info.ClustersScanned
				}
			})
			cells[vi] = append(cells[vi], eval.Seconds(med))
		}
		pruned = append(pruned, fmt.Sprintf("%s: %.1f%% of clusters pruned", name,
			100*float64(prunedCount)/float64(maxInt(totalClusters, 1))))
	}
	for vi, v := range variants {
		rows = append(rows, append([]string{v.label}, cells[vi]...))
	}
	fmt.Println("Figure 5: effect of pruning on search time [s] (top-5)")
	emitTable(rows)
	for _, p := range pruned {
		fmt.Println("  " + p)
	}
}

// expFig6 reproduces Figure 6: the sparsity pattern of L under the
// Mogul ordering versus a random ordering, as ASCII spy plots plus
// non-zero counts.
func expFig6(l *lab) {
	fmt.Println("Figure 6: non-zero structure of matrix L (spy plots; '#' dense, ' ' empty)")
	for _, name := range datasetNames {
		g := l.graph(name)
		mogulIx := l.index(name)
		randIx, err := core.NewIndex(g, core.Options{Ordering: core.OrderingRandom, Seed: l.seed})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("\n%s (n=%d): Mogul nnz(L)=%d | Random nnz(L)=%d\n",
			name, g.Len(), mogulIx.Factor().NNZ(), randIx.Factor().NNZ())
		fmt.Println("(a) Mogul ordering:")
		fmt.Print(eval.SpyFactor(mogulIx.Factor(), 40))
		fmt.Println("(b) Random ordering:")
		fmt.Print(eval.SpyFactor(randIx.Factor(), 40))
	}
}

// expFig7 reproduces Figure 7: out-of-sample query search time, Mogul
// versus EMR.
func expFig7(l *lab) {
	rows := [][]string{{"method", "COIL-100", "PubFig", "NUS-WIDE", "INRIA"}}
	var mogulCells, emrCells []string
	for _, name := range datasetNames {
		h := l.holdoutFor(name, 10)
		var mTimes, eTimes []time.Duration
		for _, q := range h.queries {
			t0 := time.Now()
			if _, _, err := h.index.SearchOutOfSample(q, core.OOSOptions{K: 5}); err != nil {
				fatal(err)
			}
			mTimes = append(mTimes, time.Since(t0))
			t1 := time.Now()
			if _, err := h.emr.TopKOutOfSample(q, 5); err != nil {
				fatal(err)
			}
			eTimes = append(eTimes, time.Since(t1))
		}
		mogulCells = append(mogulCells, eval.Seconds(medianDuration(mTimes)))
		emrCells = append(emrCells, eval.Seconds(medianDuration(eTimes)))
	}
	rows = append(rows, append([]string{"Mogul"}, mogulCells...))
	rows = append(rows, append([]string{"EMR"}, emrCells...))
	fmt.Println("Figure 7: out-of-sample search time [s] (median, top-5)")
	emitTable(rows)
}

// expTable2 reproduces Table 2: the breakdown of Mogul's out-of-sample
// search into nearest-neighbour and top-k phases.
func expTable2(l *lab) {
	rows := [][]string{{"dataset", "nearest neighbor [ms]", "top-k search [ms]", "overall [ms]"}}
	for _, name := range datasetNames {
		h := l.holdoutFor(name, 10)
		var nn, tk, all float64
		for _, q := range h.queries {
			_, bd, err := h.index.SearchOutOfSample(q, core.OOSOptions{K: 5})
			if err != nil {
				fatal(err)
			}
			nn += bd.NearestNeighbor.Seconds() * 1000
			tk += bd.TopK.Seconds() * 1000
			all += bd.Overall().Seconds() * 1000
		}
		n := float64(len(h.queries))
		rows = append(rows, []string{
			name,
			fmt.Sprintf("%.2f", nn/n),
			fmt.Sprintf("%.2f", tk/n),
			fmt.Sprintf("%.2f", all/n),
		})
	}
	fmt.Println("Table 2: breakdown of out-of-sample search (mean per query)")
	emitTable(rows)
}

// expFig8 reproduces Figure 8: precomputation time with the Mogul
// ordering versus the random ("Incomplete Cholesky") ordering, for
// both the incomplete factor (Mogul) and the complete factor (MogulE),
// where the ordering's fill-in reduction is most visible.
func expFig8(l *lab) {
	rows := [][]string{{"variant", "COIL-100", "PubFig", "NUS-WIDE", "INRIA"}}
	variants := []struct {
		label string
		opts  core.Options
	}{
		{"Mogul (total precompute)", core.Options{}},
		{"Incomplete Cholesky (random order)", core.Options{Ordering: core.OrderingRandom, Seed: l.seed}},
		{"MogulE complete factor (Mogul order)", core.Options{Exact: true}},
		{"complete factor (random order)", core.Options{Exact: true, Ordering: core.OrderingRandom, Seed: l.seed}},
	}
	cells := make([][]string, len(variants))
	nnzNotes := []string{}
	for _, name := range datasetNames {
		g := l.graph(name)
		var nnzMogul, nnzRandom int
		for vi, v := range variants {
			// Rebuild to time precompute fresh (the lab caches indexes).
			t0 := time.Now()
			ix, err := core.NewIndex(g, v.opts)
			if err != nil {
				fatal(err)
			}
			cells[vi] = append(cells[vi], eval.Seconds(time.Since(t0)))
			if v.opts.Exact {
				if v.opts.Ordering == core.OrderingMogul {
					nnzMogul = ix.Factor().NNZ()
				} else {
					nnzRandom = ix.Factor().NNZ()
				}
			}
		}
		nnzNotes = append(nnzNotes, fmt.Sprintf("%s: complete-factor nnz(L) %d (Mogul order) vs %d (random order)",
			name, nnzMogul, nnzRandom))
	}
	for vi, v := range variants {
		rows = append(rows, append([]string{v.label}, cells[vi]...))
	}
	fmt.Println("Figure 8: precomputation time [s]")
	emitTable(rows)
	for _, nz := range nnzNotes {
		fmt.Println("  " + nz)
	}
}

// expOrdering is the ordering ablation behind Section 4.2.2: how the
// node permutation affects approximation accuracy (P@5 against the
// exact ranking) and the complete factor's fill-in. Identity ordering
// is included as a reference; it looks artificially good on generated
// data because the generators emit points sorted by class, which is
// itself a near-ideal clustering order.
func expOrdering(l *lab) {
	const name = "COIL-100"
	const k = 5
	exact := l.exactIndex(name)
	g := l.graph(name)
	queries := l.queryNodes(name)
	ref := make(map[int][]int, len(queries))
	for _, q := range queries {
		scores, err := exact.AllScores(q)
		if err != nil {
			fatal(err)
		}
		ref[q] = eval.TopKFromScores(scores, k, nil)
	}
	rows := [][]string{{"ordering", "P@5", "factor time [s]", "complete nnz(L)"}}
	for _, ord := range []struct {
		label string
		o     core.Ordering
	}{
		{"Mogul (Algorithm 1)", core.OrderingMogul},
		{"Random", core.OrderingRandom},
		{"Identity (class-sorted input)", core.OrderingIdentity},
		{"RCM (bandwidth-reducing)", core.OrderingRCM},
	} {
		ix, err := core.NewIndex(g, core.Options{Ordering: ord.o, Seed: l.seed})
		if err != nil {
			fatal(err)
		}
		var patk float64
		for _, q := range queries {
			res, err := ix.TopK(q, k)
			if err != nil {
				fatal(err)
			}
			patk += eval.PAtK(eval.TopKIDs(res), ref[q])
		}
		complete, err := core.NewIndex(g, core.Options{Exact: true, Ordering: ord.o, Seed: l.seed})
		if err != nil {
			fatal(err)
		}
		rows = append(rows, []string{
			ord.label,
			fmt.Sprintf("%.3f", patk/float64(len(queries))),
			eval.Seconds(ix.Stats().FactorTime),
			fmt.Sprintf("%d", complete.Factor().NNZ()),
		})
	}
	fmt.Printf("Ordering ablation (Section 4.2.2) on %s, top-%d\n", l.dataset(name).Name, k)
	emitTable(rows)
}

// expFig9 reproduces the Figure 9 case studies qualitatively: for a
// few queries, the labels retrieved by plain k-NN ("Connected"),
// Mogul and EMR (d=100, the paper's case-study setting), with * on
// answers matching the query's object. The dataset is a COIL variant
// in the semantic-gap regime: clean pose manifolds in a cramped
// feature space, so different objects' rings pass close at isolated
// pinch points — exactly where nearest-neighbour retrieval drifts onto
// the wrong object while Manifold Ranking stays on the query's ring.
func expFig9(l *lab) {
	const k = 4
	objects := l.scale.coil / 72
	if objects < 1 {
		objects = 1
	}
	ds := dataset.COILSim(dataset.COILConfig{
		Objects: objects, Poses: 72, Dim: 6, Noise: 0.01, Separation: 0.08, Seed: l.seed,
	})
	g, err := knn.BuildGraph(ds.Points, knn.GraphConfig{K: 5, Approximate: true, Seed: l.seed})
	if err != nil {
		fatal(err)
	}
	ix, err := core.NewIndex(g, core.Options{})
	if err != nil {
		fatal(err)
	}
	emr, err := baseline.NewEMR(ds.Points, core.DefaultAlpha, baseline.EMRConfig{
		NumAnchors: minInt(100, ds.Len()), Seed: l.seed,
	})
	if err != nil {
		fatal(err)
	}

	fmt.Printf("Figure 9: case studies on %s/gap (top-%d answers; * = same object as query)\n", ds.Name, k)
	rows := [][]string{{"query(label)", "Connected", "Mogul", "EMR"}}
	// Sample queries across objects; keep those where the three
	// methods disagree first (the paper's case studies showcase
	// disagreement), padded with agreeing ones.
	var queries []int
	for q := 3; q < ds.Len() && len(queries) < 36; q += 72 {
		queries = append(queries, q)
	}
	fmtAnswers := func(ids []int, queryLabel, queryID int) string {
		s := ""
		count := 0
		for _, id := range ids {
			if id == queryID {
				continue
			}
			if count > 0 {
				s += " "
			}
			s += fmt.Sprintf("%d", ds.Labels[id])
			if ds.Labels[id] == queryLabel {
				s += "*"
			}
			count++
			if count == k {
				break
			}
		}
		return s
	}
	hits := func(ids []int, queryLabel, queryID int) int {
		h, count := 0, 0
		for _, id := range ids {
			if id == queryID {
				continue
			}
			if ds.Labels[id] == queryLabel {
				h++
			}
			count++
			if count == k {
				break
			}
		}
		return h
	}
	type caseRow struct {
		cells    []string
		hitTotal int // used to surface disagreeing cases first
	}
	var cases []caseRow
	var connHits, mogulHits, emrHits, total int
	for _, q := range queries {
		// Connected: direct graph neighbours by descending edge weight.
		cols, vals := g.Neighbors(q)
		type nb struct {
			id int
			w  float64
		}
		nbs := make([]nb, len(cols))
		for i := range cols {
			nbs[i] = nb{cols[i], vals[i]}
		}
		for i := 1; i < len(nbs); i++ {
			for j := i; j > 0 && nbs[j].w > nbs[j-1].w; j-- {
				nbs[j], nbs[j-1] = nbs[j-1], nbs[j]
			}
		}
		connIDs := make([]int, len(nbs))
		for i, x := range nbs {
			connIDs[i] = x.id
		}

		mres, err := ix.TopK(q, k+1)
		if err != nil {
			fatal(err)
		}
		eres, err := emr.TopK(q, k+1)
		if err != nil {
			fatal(err)
		}
		ch := hits(connIDs, ds.Labels[q], q)
		mh := hits(eval.TopKIDs(mres), ds.Labels[q], q)
		eh := hits(eval.TopKIDs(eres), ds.Labels[q], q)
		connHits += ch
		mogulHits += mh
		emrHits += eh
		total += k
		cases = append(cases, caseRow{
			cells: []string{
				fmt.Sprintf("%d(%d)", q, ds.Labels[q]),
				fmtAnswers(connIDs, ds.Labels[q], q),
				fmtAnswers(eval.TopKIDs(mres), ds.Labels[q], q),
				fmtAnswers(eval.TopKIDs(eres), ds.Labels[q], q),
			},
			hitTotal: ch + mh + eh,
		})
	}
	// Disagreeing cases first (the paper's case studies showcase the
	// queries where methods differ).
	sort.SliceStable(cases, func(a, b int) bool { return cases[a].hitTotal < cases[b].hitTotal })
	for i, c := range cases {
		if i == 8 {
			break
		}
		rows = append(rows, c.cells)
	}
	emitTable(rows)
	fmt.Printf("  precision over %d queries: Connected %.3f | Mogul %.3f | EMR %.3f\n",
		len(queries),
		float64(connHits)/float64(total),
		float64(mogulHits)/float64(total),
		float64(emrHits)/float64(total))
}

// expNNZ reproduces the Section 5.2.1 factor-size comparison: nnz(L)
// for Mogul's incomplete factor versus MogulE's complete factor on the
// COIL stand-in (the paper reports 28,293 vs 132,818).
func expNNZ(l *lab) {
	const name = "COIL-100"
	ix := l.index(name)
	exact := l.exactIndex(name)
	rows := [][]string{
		{"factorization", "nnz(L)"},
		{"Mogul (incomplete)", fmt.Sprintf("%d", ix.Factor().NNZ())},
		{"MogulE (complete)", fmt.Sprintf("%d", exact.Factor().NNZ())},
	}
	fmt.Printf("Section 5.2.1: factor size on %s (n=%d)\n", l.dataset(name).Name, l.dataset(name).Len())
	emitTable(rows)
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mogul-bench:", err)
	os.Exit(1)
}
