package main

import (
	"testing"
	"time"
)

func TestScalePresets(t *testing.T) {
	for name, p := range scalePresets {
		if p.coil <= 0 || p.pubfig <= 0 || p.nus <= 0 || p.inria <= 0 {
			t.Fatalf("preset %q has non-positive sizes: %+v", name, p)
		}
	}
	// Sizes ascend with scale per dataset (the paper's "graph sizes
	// increase in the order ..." ordering is preserved within a scale).
	small, medium := scalePresets["small"], scalePresets["medium"]
	if small.inria >= medium.inria || small.coil > medium.coil {
		t.Fatal("small preset not smaller than medium")
	}
	for name, p := range scalePresets {
		if !(p.coil <= p.pubfig && p.pubfig <= p.nus && p.nus <= p.inria) {
			t.Fatalf("preset %q violates dataset size ordering: %+v", name, p)
		}
	}
}

func TestNewLabValidation(t *testing.T) {
	if _, err := newLab("galactic", 1, 1, 1, 1); err == nil {
		t.Fatal("unknown scale accepted")
	}
	l, err := newLab("small", 1, 5, 100, 100)
	if err != nil {
		t.Fatal(err)
	}
	if l.queries != 5 || l.inverseMaxN != 100 {
		t.Fatalf("lab misconfigured: %+v", l)
	}
}

func TestQueryNodesDeterministicAndInRange(t *testing.T) {
	l, err := newLab("small", 1, 20, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Fake a cached graph-free path: use dataset directly via graph();
	// COIL small is fast enough for a unit test.
	a := l.queryNodes("COIL-100")
	b := l.queryNodes("COIL-100")
	if len(a) != 20 {
		t.Fatalf("got %d query nodes", len(a))
	}
	n := l.graph("COIL-100").Len()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("query nodes not deterministic")
		}
		if a[i] < 0 || a[i] >= n {
			t.Fatalf("query node %d out of range", a[i])
		}
	}
}

func TestMedianDuration(t *testing.T) {
	if medianDuration(nil) != 0 {
		t.Fatal("empty median not 0")
	}
	ds := []time.Duration{5, 1, 3}
	if medianDuration(ds) != 3 {
		t.Fatalf("median = %v", medianDuration(ds))
	}
	// Input must not be reordered.
	if ds[0] != 5 || ds[2] != 3 {
		t.Fatal("medianDuration mutated its input")
	}
}

func TestMedianSearchTime(t *testing.T) {
	calls := 0
	d := medianSearchTime([]int{1, 2, 3}, func(q int) {
		calls++
		time.Sleep(time.Millisecond)
	})
	if calls != 3 {
		t.Fatalf("fn called %d times", calls)
	}
	if d < time.Millisecond {
		t.Fatalf("median %v below sleep time", d)
	}
}

func TestAnchorSweepClamps(t *testing.T) {
	sweep := anchorSweep(120)
	for _, d := range sweep {
		if d > 120 {
			t.Fatalf("anchor count %d exceeds n", d)
		}
	}
	if len(sweep) != 4 { // 10, 25, 50, 100
		t.Fatalf("sweep = %v", sweep)
	}
}

func TestFMRBlocksFor(t *testing.T) {
	if got := fmrBlocksFor(100); got != 8 {
		t.Fatalf("small n blocks = %d", got)
	}
	if got := fmrBlocksFor(30000); got != 100 {
		t.Fatalf("large n blocks = %d", got)
	}
}

func TestMinMaxInt(t *testing.T) {
	if minInt(2, 3) != 2 || minInt(3, 2) != 2 {
		t.Fatal("minInt wrong")
	}
	if maxInt(2, 3) != 3 || maxInt(3, 2) != 3 {
		t.Fatal("maxInt wrong")
	}
}
