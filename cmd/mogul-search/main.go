// Command mogul-search builds a Mogul index over a dataset file and
// answers top-k Manifold Ranking queries:
//
//	mogul-datagen -dataset coil -o coil.gob
//	mogul-search -data coil.gob -query 17,93 -k 10
//	mogul-search -data coil.gob -query-vec "0.1,0.2,..." -k 10   # out-of-sample
//	mogul-search -data coil.gob -exact -query 17                 # MogulE
//	mogul-search -data coil.gob -save-index coil.mogul           # precompute once
//	mogul-search -load-index coil.mogul -query 17                # query in O(load)
//
// Input is a gob file from mogul-datagen or a CSV file (header row,
// numeric feature columns, optional trailing "label" column), or a
// prebuilt index file via -load-index (see docs/FORMAT.md).
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"mogul"
	"mogul/internal/diskio"
)

func main() {
	var (
		data      = flag.String("data", "", "dataset file (.gob from mogul-datagen, or .csv)")
		loadIndex = flag.String("load-index", "", "query a prebuilt index file (from -save-index) instead of building")
		saveIndex = flag.String("save-index", "", "after building, persist the index here")
		queryIDs  = flag.String("query", "", "comma-separated in-database query ids")
		queryVec  = flag.String("query-vec", "", "comma-separated feature vector for an out-of-sample query")
		k         = flag.Int("k", 10, "number of answers")
		graphK    = flag.Int("graph-k", 5, "k of the k-NN graph")
		alpha     = flag.Float64("alpha", 0.99, "Manifold Ranking damping parameter")
		exact     = flag.Bool("exact", false, "use MogulE (exact scores, denser factor)")
		approx    = flag.Bool("approx-graph", false, "build the k-NN graph with the IVF index (for large n)")
		seed      = flag.Int64("seed", 1, "seed for stochastic components")
	)
	flag.Parse()
	if *data == "" && *loadIndex == "" {
		fmt.Fprintln(os.Stderr, "mogul-search: provide -data or -load-index")
		flag.Usage()
		os.Exit(2)
	}
	if *queryIDs == "" && *queryVec == "" && *saveIndex == "" {
		fmt.Fprintln(os.Stderr, "mogul-search: provide -query, -query-vec, or -save-index")
		os.Exit(2)
	}

	// Labels are cosmetic (result annotation); load them when a dataset
	// is at hand, even next to a prebuilt index.
	var ds *mogul.Dataset
	if *data != "" {
		var err error
		ds, err = loadDataset(*data)
		if err != nil {
			fail(err)
		}
		fmt.Fprintf(os.Stderr, "loaded %s: n=%d dim=%d labels=%v\n", ds.Name, ds.Len(), ds.Dim(), ds.Labels != nil)
	}

	// ix is the shared Retriever surface: -load-index may hand back a
	// plain or a sharded index (mogul.Load dispatches on the magic),
	// and every query below works the same on either.
	var ix mogul.Retriever
	if *loadIndex != "" {
		// Build parameters are baked into the index file; warn when the
		// user sets one alongside -load-index so a mode mismatch (e.g.
		// expecting -exact scores from an approximate index) is visible.
		buildOnly := map[string]bool{"graph-k": true, "alpha": true, "exact": true, "approx-graph": true, "seed": true}
		flag.Visit(func(f *flag.Flag) {
			if buildOnly[f.Name] {
				fmt.Fprintf(os.Stderr, "mogul-search: warning: -%s is ignored with -load-index (the index file fixes it)\n", f.Name)
			}
		})
		t0 := time.Now()
		var err error
		ix, err = mogul.LoadFile(*loadIndex)
		if err != nil {
			fail(err)
		}
		fmt.Fprintf(os.Stderr, "index loaded in %v (%d items)\n", time.Since(t0).Round(time.Millisecond), ix.Len())
		if ds != nil && ds.Len() != ix.Len() {
			fmt.Fprintf(os.Stderr, "mogul-search: warning: -data has %d items but the index has %d; ignoring its labels\n", ds.Len(), ix.Len())
			ds = nil
		}
	} else {
		t0 := time.Now()
		idx, err := mogul.BuildFromDataset(ds, mogul.Options{
			GraphK:           *graphK,
			Alpha:            *alpha,
			Exact:            *exact,
			ApproximateGraph: *approx,
			Seed:             *seed,
		})
		if err != nil {
			fail(err)
		}
		ix = idx
		st := ix.Stats()
		fmt.Fprintf(os.Stderr, "index built in %v (clusters=%d, border=%d, nnz(L)=%d)\n",
			time.Since(t0).Round(time.Millisecond), st.NumClusters, st.BorderSize, st.FactorNNZ)
	}

	if *saveIndex != "" {
		if err := ix.SaveFile(*saveIndex); err != nil {
			fail(err)
		}
		fmt.Fprintf(os.Stderr, "index saved to %s\n", *saveIndex)
	}

	if *queryIDs != "" {
		for _, tok := range strings.Split(*queryIDs, ",") {
			id, err := strconv.Atoi(strings.TrimSpace(tok))
			if err != nil {
				fail(fmt.Errorf("bad query id %q: %w", tok, err))
			}
			t1 := time.Now()
			res, err := ix.TopK(id, *k)
			if err != nil {
				fail(err)
			}
			printResults(fmt.Sprintf("query node %d", id), res, ds, time.Since(t1))
		}
	}
	if *queryVec != "" {
		q, err := parseVector(*queryVec)
		if err != nil {
			fail(err)
		}
		t1 := time.Now()
		res, err := ix.TopKVector(q, *k)
		if err != nil {
			fail(err)
		}
		printResults("out-of-sample query", res, ds, time.Since(t1))
	}
}

func loadDataset(path string) (*mogul.Dataset, error) {
	if strings.HasSuffix(strings.ToLower(path), ".csv") {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return diskio.LoadCSV(f, path)
	}
	return diskio.LoadGob(path)
}

func parseVector(s string) (mogul.Vector, error) {
	fields := strings.Split(s, ",")
	v := make(mogul.Vector, len(fields))
	for i, tok := range fields {
		x, err := strconv.ParseFloat(strings.TrimSpace(tok), 64)
		if err != nil {
			return nil, fmt.Errorf("bad vector component %q: %w", tok, err)
		}
		v[i] = x
	}
	return v, nil
}

func printResults(header string, res []mogul.Result, ds *mogul.Dataset, took time.Duration) {
	fmt.Printf("%s (%v):\n", header, took.Round(time.Microsecond))
	for rank, r := range res {
		if ds != nil && ds.Labels != nil {
			fmt.Printf("  %2d. node %-8d score %.6g  label %d\n", rank+1, r.Node, r.Score, ds.Labels[r.Node])
		} else {
			fmt.Printf("  %2d. node %-8d score %.6g\n", rank+1, r.Node, r.Score)
		}
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "mogul-search:", err)
	os.Exit(1)
}
