// Command mogul-datagen emits the synthetic datasets the reproduction
// evaluates on, in gob (for mogul-search) or CSV form:
//
//	mogul-datagen -dataset coil -o coil.gob
//	mogul-datagen -dataset pubfig -n 5000 -format csv -o pubfig.csv
//
// Datasets: coil (pose manifolds), pubfig (73-D attributes), nus
// (150-D color moments), inria (128-D SIFT-like), mixture (generic).
package main

import (
	"flag"
	"fmt"
	"os"

	"mogul/internal/dataset"
	"mogul/internal/diskio"
	"mogul/internal/pca"
	"mogul/internal/vec"
)

func main() {
	var (
		name    = flag.String("dataset", "coil", "dataset: coil, pubfig, nus, inria, mixture")
		n       = flag.Int("n", 0, "number of points (0 = dataset default; for coil this is rounded to whole objects)")
		classes = flag.Int("classes", 10, "classes for -dataset mixture")
		dim     = flag.Int("dim", 32, "dimensionality for -dataset mixture")
		seed    = flag.Int64("seed", 1, "random seed")
		format  = flag.String("format", "gob", "output format: gob or csv")
		out     = flag.String("o", "", "output path (required; '-' writes CSV to stdout)")
		pcaDim  = flag.Int("pca", 0, "project features onto this many principal components before writing (0 = off)")
	)
	flag.Parse()
	if *out == "" {
		fmt.Fprintln(os.Stderr, "mogul-datagen: -o is required")
		flag.Usage()
		os.Exit(2)
	}

	var ds *vec.Dataset
	switch *name {
	case "coil":
		objects := 100
		if *n > 0 {
			objects = *n / 72
			if objects < 1 {
				objects = 1
			}
		}
		ds = dataset.COILSim(dataset.COILConfig{Objects: objects, Seed: *seed})
	case "pubfig":
		size := *n
		if size <= 0 {
			size = 12000
		}
		ds = dataset.PubFigSim(size, *seed)
	case "nus":
		size := *n
		if size <= 0 {
			size = 24000
		}
		ds = dataset.NUSWideSim(size, *seed)
	case "inria":
		size := *n
		if size <= 0 {
			size = 48000
		}
		ds = dataset.INRIASim(size, *seed)
	case "mixture":
		size := *n
		if size <= 0 {
			size = 1000
		}
		ds = dataset.Mixture(dataset.MixtureConfig{
			N: size, Classes: *classes, Dim: *dim, Seed: *seed,
			Separation: 2, WithinStd: 0.25, Name: "mixture",
		})
	default:
		fmt.Fprintf(os.Stderr, "mogul-datagen: unknown dataset %q\n", *name)
		os.Exit(2)
	}

	if *pcaDim > 0 {
		reduced, model, err := pca.Transform(ds, *pcaDim)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mogul-datagen: pca:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "mogul-datagen: PCA %d -> %d dims (%.1f%% variance kept)\n",
			ds.Dim(), reduced.Dim(), 100*model.ExplainedRatio())
		ds = reduced
	}

	switch *format {
	case "gob":
		if *out == "-" {
			fmt.Fprintln(os.Stderr, "mogul-datagen: gob output needs a file path")
			os.Exit(2)
		}
		if err := diskio.SaveGob(*out, ds); err != nil {
			fmt.Fprintln(os.Stderr, "mogul-datagen:", err)
			os.Exit(1)
		}
	case "csv":
		w := os.Stdout
		if *out != "-" {
			f, err := os.Create(*out)
			if err != nil {
				fmt.Fprintln(os.Stderr, "mogul-datagen:", err)
				os.Exit(1)
			}
			defer f.Close()
			w = f
		}
		if err := diskio.SaveCSV(w, ds); err != nil {
			fmt.Fprintln(os.Stderr, "mogul-datagen:", err)
			os.Exit(1)
		}
	default:
		fmt.Fprintf(os.Stderr, "mogul-datagen: unknown format %q\n", *format)
		os.Exit(2)
	}
	fmt.Fprintf(os.Stderr, "mogul-datagen: wrote %s (n=%d, dim=%d) to %s\n", ds.Name, ds.Len(), ds.Dim(), *out)
}
