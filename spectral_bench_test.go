package mogul

// Benchmarks backing BENCH_spectral.json (CI bench-smoke): spectral
// engine build time and per-query latency at n in {10k, 100k}, with
// recall@10 against the exact Manifold Ranking oracle attached via
// b.ReportMetric. The acceptance bars for the truncated-eigenbasis
// engine: recall@10 >= 0.85 vs exact at n=100k, with per-query
// latency below the EMR frontier point at matched recall — the
// spectral scan is one kernel-routed dot product per item over a flat
// n x r array (r=64 here vs EMR's s=24 gathers against p=2560 anchor
// columns plus a p^2 solve), so the scan is both smaller and
// perfectly sequential.
//
// The workload matches the EMR bench exactly (same mixture, same
// query pool, same oracle) so the two engines' BENCH files are
// directly comparable: micro-clusters of ~10 near-duplicates in a
// low-intrinsic-dimension feature space, queried out-of-sample with
// perturbed stored points. On this workload the adaptive hop
// expansion saturates the query's graph component and carries the
// resolvent almost exactly, so recall stays high at ranks far below
// the cluster count — the regime where a pure truncated basis
// collapses (docs/SPECTRAL.md).

import (
	"fmt"
	"sync"
	"testing"

	"mogul/internal/eval"
)

// spectralBenchSizes: directly comparable to emrBenchSizes.
var spectralBenchSizes = []int{10_000, 100_000}

// spectralBenchOptions is the frontier point the acceptance criteria
// are pinned to; mogul-bench -exp spectral sweeps rank across the
// rest of the frontier.
var spectralBenchOptions = SpectralOptions{Rank: 64}

type spectralBenchFixture struct {
	pts     []Vector
	queries []Vector
	engine  *SpectralIndex
	recall  float64 // recall@10 vs the exact oracle, mean over queries
}

var (
	spectralBenchMu       sync.Mutex
	spectralBenchFixtures = map[int]*spectralBenchFixture{}
)

func spectralBenchFixtureFor(b *testing.B, n int) *spectralBenchFixture {
	b.Helper()
	spectralBenchMu.Lock()
	defer spectralBenchMu.Unlock()
	if f, ok := spectralBenchFixtures[n]; ok {
		return f
	}
	// Identical workload to the EMR bench: same points, same queries.
	pts, queries := emrBenchPoints(n)
	engine, err := BuildSpectral(pts, Options{Seed: 11, ApproximateGraph: true}, spectralBenchOptions)
	if err != nil {
		b.Fatal(err)
	}
	exact, err := Build(pts, Options{Exact: true, ApproximateGraph: true, Seed: 11})
	if err != nil {
		b.Fatal(err)
	}
	var recall float64
	for _, q := range queries {
		ref, err := exact.TopKVector(q, 10)
		if err != nil {
			b.Fatal(err)
		}
		got, err := engine.TopKVector(q, 10)
		if err != nil {
			b.Fatal(err)
		}
		recall += eval.PAtK(eval.TopKIDs(got), eval.TopKIDs(ref))
	}
	recall /= float64(len(queries))
	f := &spectralBenchFixture{pts: pts, queries: queries, engine: engine, recall: recall}
	spectralBenchFixtures[n] = f
	return f
}

// BenchmarkSpectralBuild prices BuildSpectral end to end (k-NN graph,
// normalization, rank-r Lanczos decomposition) at each scale.
func BenchmarkSpectralBuild(b *testing.B) {
	for _, n := range spectralBenchSizes {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			pts, _ := emrBenchPoints(n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := BuildSpectral(pts, Options{Seed: 11, ApproximateGraph: true}, spectralBenchOptions); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSpectralTopKVector prices the out-of-sample query path —
// the serving hot path — and attaches recall@10 vs the exact oracle.
func BenchmarkSpectralTopKVector(b *testing.B) {
	for _, n := range spectralBenchSizes {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			f := spectralBenchFixtureFor(b, n)
			sr := f.engine.NewSearcher()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := sr.TopKVector(f.queries[i%len(f.queries)], 10); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(f.recall, "recall@10")
		})
	}
}

// BenchmarkSpectralTopK prices the in-sample path (seed item by id)
// through the pooled engine-level entry point.
func BenchmarkSpectralTopK(b *testing.B) {
	for _, n := range spectralBenchSizes {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			f := spectralBenchFixtureFor(b, n)
			queries := benchQueries(n, 64)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := f.engine.TopK(queries[i%len(queries)], 10); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(f.recall, "recall@10")
		})
	}
}
