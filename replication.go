package mogul

import (
	"fmt"
	"io"

	"mogul/internal/core"
)

// Replication surface: the delta log a distributed follower tails to
// mirror a primary index, plus the per-shard affinity accessors the
// dist coordinator needs to reproduce the sharded fan-out weighting
// across process boundaries. See docs/DISTRIBUTED.md.

// LogOp identifies one kind of logged mutation (insert, delete,
// compact).
type LogOp = core.LogOp

// The logged mutation kinds.
const (
	OpInsert  = core.OpInsert
	OpDelete  = core.OpDelete
	OpCompact = core.OpCompact
)

// LogEntry is one logged mutation, stamped with the Version() the
// mutation produced. A follower that has applied entries through
// version V resumes with EntriesSince(V).
type LogEntry = core.LogEntry

// EntriesSince returns a copy of the mutations logged after `since`
// (a Version() reading), oldest first. The second return reports
// whether the log still reaches back that far: false means entries
// past the cursor were truncated (TruncateEntries, or a load from a
// snapshot) and the follower must bootstrap from a fresh snapshot.
func (ix *Index) EntriesSince(since uint64) ([]LogEntry, bool) {
	return ix.core.EntriesSince(since)
}

// TruncateEntries drops logged mutations with Version <= upTo,
// bounding the log's memory to the un-acknowledged tail.
func (ix *Index) TruncateEntries(upTo uint64) { ix.core.TruncateEntries(upTo) }

// LogLen returns the number of retained delta-log entries.
func (ix *Index) LogLen() int { return ix.core.LogLen() }

// WriteLogEntries serializes a log tail in the wire format the dist
// subsystem ships replication feeds in (docs/FORMAT.md idioms: magic,
// format version, trailing CRC-32).
func WriteLogEntries(w io.Writer, entries []LogEntry) error {
	return core.WriteLogEntries(w, entries)
}

// ReadLogEntries decodes a log tail written by WriteLogEntries;
// malformed input yields an error, never a panic.
func ReadLogEntries(r io.Reader) ([]LogEntry, error) {
	return core.ReadLogEntries(r)
}

// SaveFileFunc writes whatever save streams to path with the same
// atomic temp-file-and-rename discipline SaveFile uses, so external
// Retriever implementations (a remote-shard client proxying a
// snapshot) get crash-safe SaveFile semantics for free.
func SaveFileFunc(path string, save func(io.Writer) error) error {
	return saveFileAtomic(path, save)
}

// Point returns the stored feature vector of a live item. The slice
// aliases index storage; treat as read-only. The dist shard server
// uses it to hand an in-database query's vector to the coordinator so
// non-owning shards can be probed out-of-sample.
func (ix *Index) Point(id int) (Vector, error) { return ix.core.Point(id) }

// SurrogateAffinity runs only the surrogate-selection phase of an
// out-of-sample search and returns the query's raw kernel affinity to
// this index (the mean heat-kernel weight of its selected surrogate
// neighbours) without searching. The sharded fan-out — in-process and
// distributed alike — prices each shard's contribution by this value.
func (ix *Index) SurrogateAffinity(q Vector) (float64, error) {
	s := ix.core.AcquireScratch()
	defer ix.core.ReleaseScratch(s)
	return ix.core.SurrogateAffinity(s, q)
}

// TopKVectorWithAffinity is TopKVector plus the query's raw kernel
// affinity to this index — the two values a fan-out coordinator needs
// from a non-owning shard in one round trip.
func (ix *Index) TopKVectorWithAffinity(q Vector, k int) ([]Result, float64, error) {
	s := ix.core.AcquireScratch()
	defer ix.core.ReleaseScratch(s)
	res, err := ix.core.TopKVectorScratch(s, q, k)
	if err != nil {
		return nil, 0, err
	}
	return res, s.OOSAffinity(), nil
}

// TopKSetWeighted ranks database items against seed items that all
// carry the given query weight — the per-shard half of a distributed
// set query, where each shard searches the seeds it owns at the
// global weight 1/len(all seeds) so query mass stays consistent
// across the fan-out.
func (ix *Index) TopKSetWeighted(seeds []int, weight float64, k int) ([]Result, error) {
	if len(seeds) == 0 {
		return nil, fmt.Errorf("mogul: TopKSetWeighted needs at least one seed item")
	}
	wq := make([]core.WeightedQuery, len(seeds))
	for i, s := range seeds {
		wq[i] = core.WeightedQuery{Node: s, Weight: weight}
	}
	res, _, err := ix.core.SearchMulti(wq, core.SearchOptions{K: k})
	return res, err
}

// IDSpace returns the total id space (live items plus tombstoned
// slots): valid item ids lie in [0, IDSpace()).
func (ix *Index) IDSpace() int { return ix.core.IDSpace() }

// Alive reports whether id addresses a live (non-deleted, in-range)
// item. Together with IDSpace it lets a distributed coordinator
// snapshot a shard's liveness before a compaction renumbers ids.
func (ix *Index) Alive(id int) bool { return ix.core.Alive(id) }

// TopKWithVector is TopK plus the query item's stored vector and the
// owning index's affinity to it — everything the distributed
// coordinator needs from the owner shard in one round trip to probe
// the remaining shards and scale their answers.
func (ix *Index) TopKWithVector(query, k int) (res []Result, qvec Vector, ownAff float64, err error) {
	s := ix.core.AcquireScratch()
	defer ix.core.ReleaseScratch(s)
	res, err = ix.core.TopKScratch(s, query, k)
	if err != nil {
		return nil, nil, 0, err
	}
	qvec, err = ix.core.Point(query)
	if err != nil {
		return nil, nil, 0, err
	}
	ownAff, err = ix.core.SurrogateAffinity(s, qvec)
	if err != nil {
		return nil, nil, 0, err
	}
	return res, qvec, ownAff, nil
}
