// Quickstart: build a Mogul index over a small labelled dataset and
// run one in-database and one out-of-sample query.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"mogul"
)

func main() {
	// A synthetic labelled dataset: 1,000 points in 10 classes. In a
	// real application these would be image descriptors, embeddings,
	// audio features, etc.
	ds := mogul.NewMixture(mogul.MixtureConfig{
		N:          1000,
		Classes:    10,
		Dim:        32,
		Separation: 2,
		WithinStd:  0.25,
		Seed:       7,
	})

	// Build the index: k-NN graph (k=5), alpha=0.99 — the paper's
	// evaluation settings. All precomputation is query independent.
	idx, err := mogul.BuildFromDataset(ds, mogul.Options{})
	if err != nil {
		log.Fatal(err)
	}
	st := idx.Stats()
	fmt.Printf("indexed %d items: %d clusters, %d border nodes, nnz(L)=%d, precompute %v\n",
		idx.Len(), st.NumClusters, st.BorderSize, st.FactorNNZ, st.PrecomputeTime().Round(1000))

	// In-database query: rank everything against item 42.
	const query = 42
	results, err := idx.TopK(query, 6)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ntop answers for item %d (label %d):\n", query, ds.Labels[query])
	for rank, r := range results {
		marker := ""
		if ds.Labels[r.Node] == ds.Labels[query] {
			marker = "  <- same class"
		}
		fmt.Printf("  %d. item %-5d score %.5f  label %d%s\n",
			rank+1, r.Node, r.Score, ds.Labels[r.Node], marker)
	}

	// Out-of-sample query: a vector that is not in the database. Mogul
	// routes it through its nearest cluster without touching the
	// precomputed factorization (Section 4.6.2 of the paper).
	probe := ds.Points[query].Clone()
	probe[0] += 0.05 // a slightly perturbed copy of item 42
	oos, err := idx.TopKVector(probe, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nout-of-sample query (perturbed copy of item 42):")
	for rank, r := range oos {
		fmt.Printf("  %d. item %-5d score %.5f  label %d\n", rank+1, r.Node, r.Score, ds.Labels[r.Node])
	}
}
