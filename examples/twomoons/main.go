// Two moons: the canonical Manifold Ranking illustration, straight
// from the original papers the reproduction builds on (Zhou et al.,
// "Ranking on Data Manifolds"). Two interlocking half-circles overlap
// in Euclidean space; ranking by raw distance from a query mixes the
// moons, while Manifold Ranking follows the query's moon around the
// bend.
//
// The program renders the point set as ASCII art, marks the query and
// the top-ranked answers for (a) Euclidean distance and (b) Mogul, and
// prints on-moon precision for both.
//
//	go run ./examples/twomoons
package main

import (
	"fmt"
	"log"
	"math"
	"sort"
	"strings"

	"mogul"
)

func main() {
	ds := mogul.NewTwoMoons(mogul.TwoMoonsConfig{N: 600, Noise: 0.03, Seed: 5})
	idx, err := mogul.BuildFromDataset(ds, mogul.Options{GraphK: 6})
	if err != nil {
		log.Fatal(err)
	}

	// Query: the tip of the upper moon, where the moons interleave.
	query := pickTip(ds)
	const k = 120

	// (a) Euclidean ranking: plain nearest neighbours.
	type distID struct {
		id int
		d  float64
	}
	byDist := make([]distID, ds.Len())
	for i, p := range ds.Points {
		dx := p[0] - ds.Points[query][0]
		dy := p[1] - ds.Points[query][1]
		byDist[i] = distID{id: i, d: dx*dx + dy*dy}
	}
	sort.Slice(byDist, func(a, b int) bool { return byDist[a].d < byDist[b].d })
	euclid := make([]int, 0, k)
	for _, x := range byDist[1 : k+1] { // skip the query itself
		euclid = append(euclid, x.id)
	}

	// (b) Manifold Ranking via Mogul.
	res, err := idx.TopK(query, k+1)
	if err != nil {
		log.Fatal(err)
	}
	manifold := make([]int, 0, k)
	for _, r := range res {
		if r.Node != query {
			manifold = append(manifold, r.Node)
		}
	}
	if len(manifold) > k {
		manifold = manifold[:k]
	}

	fmt.Println("two moons, query at the upper moon's tip; retrieved sets marked")
	fmt.Println("\n(a) Euclidean top-120   [o upper moon, x lower moon, # retrieved, Q query]")
	fmt.Println(render(ds, query, euclid))
	fmt.Println("(b) Mogul top-120")
	fmt.Println(render(ds, query, manifold))

	fmt.Printf("on-moon precision: euclidean %.2f, manifold ranking %.2f\n",
		precision(ds, query, euclid), precision(ds, query, manifold))
}

// pickTip returns the upper-moon point with the largest x (the end of
// the arc that dips between the moons).
func pickTip(ds *mogul.Dataset) int {
	best, bestX := 0, math.Inf(-1)
	for i, p := range ds.Points {
		if ds.Labels[i] == 0 && p[0] > bestX {
			best, bestX = i, p[0]
		}
	}
	return best
}

func precision(ds *mogul.Dataset, query int, answers []int) float64 {
	hits := 0
	for _, id := range answers {
		if ds.Labels[id] == ds.Labels[query] {
			hits++
		}
	}
	return float64(hits) / float64(len(answers))
}

// render draws the 2-D point cloud on a character grid.
func render(ds *mogul.Dataset, query int, retrieved []int) string {
	const w, h = 72, 24
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	for _, p := range ds.Points {
		minX, maxX = math.Min(minX, p[0]), math.Max(maxX, p[0])
		minY, maxY = math.Min(minY, p[1]), math.Max(maxY, p[1])
	}
	grid := make([][]byte, h)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", w))
	}
	cell := func(p mogul.Vector) (int, int) {
		c := int((p[0] - minX) / (maxX - minX) * float64(w-1))
		r := int((maxY - p[1]) / (maxY - minY) * float64(h-1))
		return r, c
	}
	for i, p := range ds.Points {
		r, c := cell(p)
		if ds.Labels[i] == 0 {
			grid[r][c] = 'o'
		} else {
			grid[r][c] = 'x'
		}
	}
	for _, id := range retrieved {
		r, c := cell(ds.Points[id])
		grid[r][c] = '#'
	}
	qr, qc := cell(ds.Points[query])
	grid[qr][qc] = 'Q'
	var b strings.Builder
	for _, row := range grid {
		b.Write(row)
		b.WriteByte('\n')
	}
	return b.String()
}
