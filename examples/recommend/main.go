// Recommendation over a song catalogue — the music-recommendation
// application the paper's introduction cites (Bu et al. [1]): items
// live on genre/style manifolds in audio-feature space, a user's
// listening history seeds the query, and Manifold Ranking surfaces
// songs on the same stylistic manifold rather than merely nearby in
// feature space.
//
// This example exercises the multi-seed API (TopKSet): the query mass
// is spread over everything the user liked.
//
//	go run ./examples/recommend
package main

import (
	"fmt"
	"log"

	"mogul"
)

func main() {
	// A catalogue of 3,000 songs across 25 "styles" (timbre/rhythm
	// feature clusters with low intrinsic dimension — i.e. manifolds).
	catalogue := mogul.NewMixture(mogul.MixtureConfig{
		N:            3000,
		Classes:      25,
		Dim:          40,
		IntrinsicDim: 5,
		WithinStd:    0.3,
		Separation:   1.6,
		ZipfExponent: 0.8, // popular styles have more songs
		Seed:         21,
	})
	idx, err := mogul.BuildFromDataset(catalogue, mogul.Options{GraphK: 8})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("catalogue: %d songs, %d styles; index stats: %d clusters, nnz(L)=%d\n\n",
		catalogue.Len(), 25, idx.Stats().NumClusters, idx.Stats().FactorNNZ)

	// The user liked three songs from (mostly) one style.
	liked := []int{100, 101, 104}
	fmt.Println("listening history:")
	for _, s := range liked {
		fmt.Printf("  song %-5d style %d\n", s, catalogue.Labels[s])
	}

	// Recommend: rank the whole catalogue against the liked set, skip
	// songs already in the history.
	res, err := idx.TopKSet(liked, 10+len(liked))
	if err != nil {
		log.Fatal(err)
	}
	seen := map[int]bool{}
	for _, s := range liked {
		seen[s] = true
	}
	fmt.Println("\nrecommendations:")
	shown := 0
	for _, r := range res {
		if seen[r.Node] {
			continue
		}
		fmt.Printf("  %2d. song %-5d style %-3d score %.5f\n",
			shown+1, r.Node, catalogue.Labels[r.Node], r.Score)
		shown++
		if shown == 10 {
			break
		}
	}

	// A brand-new song (not in the catalogue) can seed recommendations
	// too, via the out-of-sample path.
	newSong := catalogue.Points[100].Clone()
	for i := range newSong {
		newSong[i] += 0.05
	}
	oos, err := idx.TopKVector(newSong, 5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nlisteners of a new (uncatalogued) song might also like:")
	for rank, r := range oos {
		fmt.Printf("  %d. song %-5d style %d\n", rank+1, r.Node, catalogue.Labels[r.Node])
	}
}
