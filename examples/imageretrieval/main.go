// Image retrieval case study (the paper's Figure 9 scenario): on a
// COIL-100-like database of objects photographed from 72 angles,
// compare plain nearest-neighbour retrieval ("Connected" — the direct
// k-NN graph neighbours) with Manifold Ranking retrieval (Mogul).
//
// Plain k-NN suffers the semantic gap: visually close images of
// *different* objects sneak into the answers. Manifold Ranking walks
// along each object's pose manifold instead, so its answers stay on
// the query's object.
//
//	go run ./examples/imageretrieval
package main

import (
	"fmt"
	"log"
	"sort"

	"mogul"
)

func main() {
	// 40 objects x 72 poses in a low-dimensional, weakly separated
	// feature space, so object manifolds pass near each other — the
	// regime where the semantic gap bites.
	// Clean pose chains (low noise) in a cramped feature space: rings
	// of different objects pass close at isolated pinch points, where
	// plain nearest-neighbour retrieval steps onto the wrong object.
	ds := mogul.NewCOILSim(mogul.COILConfig{
		Objects:    40,
		Poses:      72,
		Dim:        6,
		Noise:      0.01,
		Separation: 0.08,
		Seed:       11,
	})
	idx, err := mogul.BuildFromDataset(ds, mogul.Options{GraphK: 5})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("database: %d images of %d objects (%d poses each)\n\n", ds.Len(), 40, 72)

	const k = 6
	queries := make([]int, 0, 40)
	for q := 10; q < ds.Len(); q += 72 {
		queries = append(queries, q)
	}
	verbose := map[int]bool{10: true, 730: true, 1450: true, 2170: true, 2890: true}
	var connHits, mogulHits, total int
	for _, q := range queries {
		if verbose[q] {
			fmt.Printf("query image %d = object %d\n", q, ds.Labels[q])
		}

		// "Connected": direct k-NN neighbours by descending weight.
		ids, weights, err := idx.Neighbors(q)
		if err != nil {
			log.Fatal(err)
		}
		type nb struct {
			id int
			w  float64
		}
		nbs := make([]nb, len(ids))
		for i := range ids {
			nbs[i] = nb{ids[i], weights[i]}
		}
		sort.Slice(nbs, func(a, b int) bool { return nbs[a].w > nbs[b].w })
		if verbose[q] {
			fmt.Print("  connected (plain k-NN): ")
		}
		for i, x := range nbs {
			if i == k {
				break
			}
			if verbose[q] {
				fmt.Printf("obj%d ", ds.Labels[x.id])
			}
			if ds.Labels[x.id] == ds.Labels[q] {
				connHits++
			}
			total++
		}

		// Mogul: Manifold Ranking top-k (skip the query itself).
		res, err := idx.TopK(q, k+1)
		if err != nil {
			log.Fatal(err)
		}
		if verbose[q] {
			fmt.Print("\n  mogul (manifold rank): ")
		}
		count := 0
		for _, r := range res {
			if r.Node == q {
				continue
			}
			if verbose[q] {
				fmt.Printf("obj%d ", ds.Labels[r.Node])
			}
			if ds.Labels[r.Node] == ds.Labels[q] {
				mogulHits++
			}
			count++
			if count == k {
				break
			}
		}
		if verbose[q] {
			fmt.Println()
		}
	}
	fmt.Printf("\nretrieval precision over %d queries: connected %.3f, mogul %.3f\n",
		len(queries),
		float64(connHits)/float64(total),
		float64(mogulHits)/float64(len(queries)*k))
	fmt.Println("(Manifold Ranking stays on the query's object manifold; plain k-NN drifts.)")
}
