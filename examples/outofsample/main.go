// Out-of-sample retrieval (the paper's Section 4.6.2 / Figure 7
// scenario): queries arrive from outside the database — a user uploads
// a new photo — and must be answered without rebuilding anything.
//
// Mogul keeps the index static: the query's neighbours inside the
// nearest cluster become surrogate query nodes, so out-of-sample
// search costs barely more than an in-database query.
//
//	go run ./examples/outofsample
package main

import (
	"fmt"
	"log"
	"time"

	"mogul"
)

func main() {
	// Database plus a stream of held-out "uploaded" images.
	full := mogul.NewNUSWideSim(4000, 3)
	db, uploads, uploadLabels, err := mogul.HoldOut(full, 0.02, 9)
	if err != nil {
		log.Fatal(err)
	}
	t0 := time.Now()
	idx, err := mogul.BuildFromDataset(db, mogul.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("indexed %d images in %v; %d uploads to answer\n\n",
		idx.Len(), time.Since(t0).Round(time.Millisecond), len(uploads))

	const k = 5
	var hits, total int
	var totalTime time.Duration
	for i, q := range uploads {
		t1 := time.Now()
		res, err := idx.TopKVector(q, k)
		if err != nil {
			log.Fatal(err)
		}
		took := time.Since(t1)
		totalTime += took
		good := 0
		for _, r := range res {
			total++
			if db.Labels[r.Node] == uploadLabels[i] {
				hits++
				good++
			}
		}
		if i < 5 {
			fmt.Printf("upload %2d (concept %3d): %d/%d answers on-concept in %v\n",
				i, uploadLabels[i], good, k, took.Round(time.Microsecond))
		}
	}
	fmt.Printf("...\nanswered %d uploads: mean latency %v, retrieval precision %.2f\n",
		len(uploads),
		(totalTime / time.Duration(len(uploads))).Round(time.Microsecond),
		float64(hits)/float64(total))
	fmt.Println("the index was never modified — precomputation is fully reusable across queries")
}
