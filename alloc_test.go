//go:build !race

package mogul

// Allocation-regression guards for the pooled query engine. The whole
// point of the engine refactor is that steady-state searches allocate
// nothing beyond the returned []Result; these tests pin that down with
// testing.AllocsPerRun so a regression fails CI instead of silently
// reintroducing O(n) per-query garbage. Excluded under the race
// detector, whose instrumentation changes allocation counts.

import (
	"testing"

	"mogul/internal/dataset"
	"mogul/internal/vec"
)

func allocFixture(t *testing.T) (*Index, *vec.Dataset) {
	t.Helper()
	ds := dataset.Mixture(dataset.MixtureConfig{
		N: 2100, Classes: 12, Dim: 16, WithinStd: 0.3, Separation: 2.5, Seed: 21,
	})
	ix, err := Build(ds.Points[:2000], Options{})
	if err != nil {
		t.Fatal(err)
	}
	return ix, ds
}

// TestTopKAllocs: a steady-state in-database query allocates exactly
// once — the returned []Result — on both the dedicated-Searcher path
// and the internal-pool path.
func TestTopKAllocs(t *testing.T) {
	ix, _ := allocFixture(t)
	sr := ix.NewSearcher()
	if _, err := sr.TopK(11, 10); err != nil { // warm: sizes the scratch
		t.Fatal(err)
	}
	queries := []int{3, 500, 999, 1500}
	i := 0
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := sr.TopK(queries[i%len(queries)], 10); err != nil {
			t.Fatal(err)
		}
		i++
	})
	if allocs > 1 {
		t.Fatalf("Searcher.TopK allocates %.1f objects/op in steady state, want 1 (the returned []Result)", allocs)
	}

	if _, err := ix.TopK(11, 10); err != nil { // warm the pool
		t.Fatal(err)
	}
	allocs = testing.AllocsPerRun(100, func() {
		if _, err := ix.TopK(queries[i%len(queries)], 10); err != nil {
			t.Fatal(err)
		}
		i++
	})
	// The pooled path matches the Searcher path except when a GC clears
	// the pool mid-measurement; allow that rare refill without letting a
	// real per-query regression through.
	if allocs > 2 {
		t.Fatalf("Index.TopK allocates %.1f objects/op in steady state, want 1 (the returned []Result)", allocs)
	}
}

// TestTopKVectorAllocs: the out-of-sample fast path — coarse
// quantizer, surrogate selection, heat-kernel weighting, pruned search
// — also allocates only the returned []Result.
func TestTopKVectorAllocs(t *testing.T) {
	ix, ds := allocFixture(t)
	sr := ix.NewSearcher()
	pool := ds.Points[2000:]
	if _, err := sr.TopKVector(pool[0], 10); err != nil { // warm: scratch + lazy OOS tables
		t.Fatal(err)
	}
	i := 0
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := sr.TopKVector(pool[i%len(pool)], 10); err != nil {
			t.Fatal(err)
		}
		i++
	})
	if allocs > 1 {
		t.Fatalf("Searcher.TopKVector allocates %.1f objects/op in steady state, want 1 (the returned []Result)", allocs)
	}
}

// TestTopKAllocsWithDeltaAndTombstones: the zero-steady-state-
// allocation property must survive dynamic state — live delta items
// merged into every search and tombstones filtered through the dense
// bitset.
func TestTopKAllocsWithDeltaAndTombstones(t *testing.T) {
	ix, ds := allocFixture(t)
	for _, p := range ds.Points[2000:2050] {
		if _, err := ix.Insert(p); err != nil {
			t.Fatal(err)
		}
	}
	for _, id := range []int{5, 800, 1999, 2001} {
		if err := ix.Delete(id); err != nil {
			t.Fatal(err)
		}
	}
	sr := ix.NewSearcher()
	if _, err := sr.TopK(11, 10); err != nil {
		t.Fatal(err)
	}
	queries := []int{3, 500, 999, 2010} // includes a live delta item
	i := 0
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := sr.TopK(queries[i%len(queries)], 10); err != nil {
			t.Fatal(err)
		}
		i++
	})
	if allocs > 1 {
		t.Fatalf("Searcher.TopK with delta+tombstones allocates %.1f objects/op, want 1", allocs)
	}
}

// TestSpectralTopKAllocs: the spectral engine's streaming scan plus
// the epoch-stamped hop expansion must also run allocation-free in
// steady state, on both the dedicated-Searcher path and the pooled
// path, including with live delta items and tombstones in play.
func TestSpectralTopKAllocs(t *testing.T) {
	ds := dataset.Mixture(dataset.MixtureConfig{
		N: 2100, Classes: 100, Dim: 16, WithinStd: 0.3, Separation: 2.5, Seed: 21,
	})
	e, err := BuildSpectral(ds.Points[:2000], Options{}, SpectralOptions{Rank: 32})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range ds.Points[2000:2050] {
		if _, err := e.Insert(p); err != nil {
			t.Fatal(err)
		}
	}
	for _, id := range []int{5, 800, 1999, 2001} {
		if err := e.Delete(id); err != nil {
			t.Fatal(err)
		}
	}

	sr := e.NewSearcher()
	if _, err := sr.TopK(11, 10); err != nil { // warm: sizes the scratch
		t.Fatal(err)
	}
	queries := []int{3, 500, 999, 2010} // includes a live delta item
	i := 0
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := sr.TopK(queries[i%len(queries)], 10); err != nil {
			t.Fatal(err)
		}
		i++
	})
	if allocs > 1 {
		t.Fatalf("SpectralSearcher.TopK allocates %.1f objects/op in steady state, want 1 (the returned []Result)", allocs)
	}

	pool := ds.Points[2050:]
	if _, err := sr.TopKVector(pool[0], 10); err != nil { // warm the attachment scratch
		t.Fatal(err)
	}
	allocs = testing.AllocsPerRun(100, func() {
		if _, err := sr.TopKVector(pool[i%len(pool)], 10); err != nil {
			t.Fatal(err)
		}
		i++
	})
	if allocs > 1 {
		t.Fatalf("SpectralSearcher.TopKVector allocates %.1f objects/op in steady state, want 1 (the returned []Result)", allocs)
	}

	if _, err := e.TopK(11, 10); err != nil { // warm the pool
		t.Fatal(err)
	}
	allocs = testing.AllocsPerRun(100, func() {
		if _, err := e.TopK(queries[i%len(queries)], 10); err != nil {
			t.Fatal(err)
		}
		i++
	})
	// As with Index.TopK: a GC clearing the pool mid-measurement may
	// force one refill; a real per-query regression still fails.
	if allocs > 2 {
		t.Fatalf("SpectralIndex.TopK allocates %.1f objects/op in steady state, want 1 (the returned []Result)", allocs)
	}
}

// TestTopKShardedAllocs: the fan-out over S shards must stay at S+1
// steady-state allocations — the S per-shard result slices plus the
// merged output — proving the fan-out runs entirely on the pinned
// per-shard Searchers and the reusable merge scratch.
func TestTopKShardedAllocs(t *testing.T) {
	ds := dataset.Mixture(dataset.MixtureConfig{
		N: 2000, Classes: 12, Dim: 16, WithinStd: 0.3, Separation: 2.5, Seed: 21,
	})
	const shards = 4
	six, err := BuildSharded(ds.Points, Options{}, ShardOptions{Shards: shards, Partitioner: PartitionKMeans})
	if err != nil {
		t.Fatal(err)
	}
	ss := six.NewSearcher()
	if _, err := ss.TopK(11, 10); err != nil { // warm: sizes every shard's scratch
		t.Fatal(err)
	}
	queries := []int{3, 500, 999, 1500}
	i := 0
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := ss.TopK(queries[i%len(queries)], 10); err != nil {
			t.Fatal(err)
		}
		i++
	})
	if allocs > shards+1 {
		t.Fatalf("ShardedSearcher.TopK allocates %.1f objects/op in steady state, want <= %d (S per-shard result slices + merged output)", allocs, shards+1)
	}
}
