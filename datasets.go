package mogul

import (
	"mogul/internal/dataset"
)

// Synthetic dataset generators. The paper evaluates on four image
// corpora (COIL-100, PubFig, NUS-WIDE, INRIA); these generators
// produce structurally equivalent synthetic data — labelled manifold
// mixtures — so examples, tests and benchmarks run self-contained.
// See DESIGN.md for the substitution rationale.

// COILConfig re-exports the COIL-100 stand-in configuration.
type COILConfig = dataset.COILConfig

// MixtureConfig re-exports the Gaussian-mixture generator
// configuration.
type MixtureConfig = dataset.MixtureConfig

// NewCOILSim generates a COIL-100-like dataset: Objects x Poses points
// on closed pose manifolds; labels are object ids.
func NewCOILSim(cfg COILConfig) *Dataset { return dataset.COILSim(cfg) }

// NewPubFigSim generates a PubFig-like dataset: n points of
// 73-dimensional attribute features over unbalanced person classes.
func NewPubFigSim(n int, seed int64) *Dataset { return dataset.PubFigSim(n, seed) }

// NewNUSWideSim generates a NUS-WIDE-like dataset: n points of
// 150-dimensional color-moment features over heavy-tailed concept
// clusters.
func NewNUSWideSim(n int, seed int64) *Dataset { return dataset.NUSWideSim(n, seed) }

// NewINRIASim generates an INRIA-like dataset: n points of
// 128-dimensional SIFT-like descriptors.
func NewINRIASim(n int, seed int64) *Dataset { return dataset.INRIASim(n, seed) }

// NewMixture generates a generic labelled Gaussian-mixture dataset.
func NewMixture(cfg MixtureConfig) *Dataset { return dataset.Mixture(cfg) }

// TwoMoonsConfig re-exports the two-moons generator configuration.
type TwoMoonsConfig = dataset.TwoMoonsConfig

// NewTwoMoons generates the interlocking half-circles pattern from the
// original Manifold Ranking papers — the canonical "ranking must
// follow the manifold" demonstration.
func NewTwoMoons(cfg TwoMoonsConfig) *Dataset { return dataset.TwoMoons(cfg) }

// HoldOut splits a dataset into an in-database part plus held-out
// query vectors (with labels when present) for out-of-sample
// experiments.
func HoldOut(ds *Dataset, fraction float64, seed int64) (in *Dataset, queries []Vector, labels []int, err error) {
	return dataset.HoldOut(ds, fraction, seed)
}
