package mogul

// LoadFileMapped hardening: the mmap loader round-trips every
// container format the magic sniffer dispatches on, corrupt or
// truncated aligned images error (never panic) through the bytes
// readers it delegates to, and a fuzz target drives arbitrary bytes
// through the same dispatch. The bytes readers skip the trailing CRC
// by design, so the corruption sweep here leans on the structural
// validation layer alone — exactly what a flipped page in a mapped
// file would meet in production.

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"mogul/internal/core"
)

// mappedFixtures returns one saved image per container format, keyed
// by a label, alongside the engine that wrote it. Core, EMR, and
// spectral save the aligned f32 layout (the mmap target); sharded
// saves its own manifest format, which LoadFileMapped decodes by
// copying.
func mappedFixtures(t *testing.T) map[string]struct {
	engine Retriever
	data   []byte
} {
	t.Helper()
	out := map[string]struct {
		engine Retriever
		data   []byte
	}{}
	ds := NewMixture(MixtureConfig{N: 300, Classes: 6, Dim: 8, WithinStd: 0.3, Separation: 3, Seed: 51})
	add := func(label string, r Retriever, save func(w *bytes.Buffer) error) {
		var buf bytes.Buffer
		if err := save(&buf); err != nil {
			t.Fatalf("%s: save: %v", label, err)
		}
		out[label] = struct {
			engine Retriever
			data   []byte
		}{r, buf.Bytes()}
	}

	ix, err := Build(ds.Points, Options{Seed: 51, Precision: F32})
	if err != nil {
		t.Fatal(err)
	}
	add("core", ix, func(w *bytes.Buffer) error { return ix.SaveAligned(w, 4096) })

	emr, err := BuildEMR(ds.Points, Options{Seed: 51, Precision: F32}, EMROptions{NumAnchors: 24, NumNearestAnchors: 3})
	if err != nil {
		t.Fatal(err)
	}
	add("emr", emr, func(w *bytes.Buffer) error { return emr.SaveAligned(w, 4096) })

	spc, err := BuildSpectral(ds.Points, Options{Seed: 51, GraphK: 6, Precision: F32}, SpectralOptions{Rank: 24})
	if err != nil {
		t.Fatal(err)
	}
	add("spectral", spc, func(w *bytes.Buffer) error { return spc.SaveAligned(w, 4096) })

	six, err := BuildSharded(ds.Points, Options{Seed: 51}, ShardOptions{Shards: 2, Partitioner: PartitionContiguous})
	if err != nil {
		t.Fatal(err)
	}
	add("sharded", six, func(w *bytes.Buffer) error { return six.Save(w) })
	return out
}

// TestLoadFileMappedRoundTrip: every format loads through the mmap
// path and answers bit-identically to the engine that saved it; the
// mapping closes cleanly afterwards, and closing is idempotent.
func TestLoadFileMappedRoundTrip(t *testing.T) {
	dir := t.TempDir()
	for label, fx := range mappedFixtures(t) {
		path := filepath.Join(dir, label+".idx")
		if err := os.WriteFile(path, fx.data, 0o644); err != nil {
			t.Fatal(err)
		}
		loaded, closer, err := LoadFileMapped(path)
		if err != nil {
			t.Fatalf("%s: LoadFileMapped: %v", label, err)
		}
		if loaded.Len() != fx.engine.Len() {
			t.Fatalf("%s: Len %d after mapped load, want %d", label, loaded.Len(), fx.engine.Len())
		}
		for _, q := range []int{0, 17, 299} {
			want, err := fx.engine.TopK(q, 10)
			if err != nil {
				t.Fatal(err)
			}
			got, err := loaded.TopK(q, 10)
			if err != nil {
				t.Fatalf("%s: mapped TopK(%d): %v", label, q, err)
			}
			if len(want) != len(got) {
				t.Fatalf("%s: result count differs", label)
			}
			for i := range want {
				if want[i].Node != got[i].Node || want[i].Score != got[i].Score {
					t.Fatalf("%s: query %d result %d differs: %+v vs %+v", label, q, i, want[i], got[i])
				}
			}
		}
		// Mutating a mapped engine must relocate, not write the mapping.
		if _, err := loaded.Insert(append(Vector(nil), make([]float64, 8)...)); err != nil {
			t.Fatalf("%s: Insert on mapped engine: %v", label, err)
		}
		if err := closer.Close(); err != nil {
			t.Fatalf("%s: Close: %v", label, err)
		}
		if err := closer.Close(); err != nil {
			t.Fatalf("%s: second Close: %v", label, err)
		}
	}
}

// TestLoadFileMappedErrors: file-level failure modes of the mmap
// loader — absent, too short, alien magic — error with the mapping
// released.
func TestLoadFileMappedErrors(t *testing.T) {
	dir := t.TempDir()
	if _, _, err := LoadFileMapped(filepath.Join(dir, "absent")); err == nil {
		t.Fatal("missing file: no error")
	}
	short := filepath.Join(dir, "short")
	if err := os.WriteFile(short, []byte("MOG"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := LoadFileMapped(short); err == nil {
		t.Fatal("3-byte file: no error")
	}
	alien := filepath.Join(dir, "alien")
	if err := os.WriteFile(alien, []byte("NOTMOGUL-and-some-trailing-bytes"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := LoadFileMapped(alien); err == nil {
		t.Fatal("alien magic: no error")
	}
}

// tryLoadMapped dispatches an in-memory image exactly as LoadFileMapped
// does after mapping, so the corruption sweep and the fuzz target
// exercise the identical decode surface without a file per case.
func tryLoadMapped(data []byte) (Retriever, error) {
	if len(data) < 8 {
		return nil, errors.New("image shorter than a magic header")
	}
	switch string(data[:8]) {
	case shardedMagic:
		return LoadSharded(bytes.NewReader(data))
	case emrMagic:
		return LoadEMRBytes(data)
	case spectralMagic:
		return LoadSpectralBytes(data)
	}
	ci, err := core.ReadIndexBytes(data)
	if err != nil {
		return nil, err
	}
	return &Index{core: ci}, nil
}

// TestLoadMappedNeverPanics: every truncation prefix and a stride of
// single-byte corruptions of each aligned image must error or produce
// a servable engine — never panic. The bytes path skips the CRC, so
// (unlike the streaming sweeps) a flipped byte may well decode; the
// property under test is purely no-panic plus a queryable result.
func TestLoadMappedNeverPanics(t *testing.T) {
	for label, fx := range mappedFixtures(t) {
		data := fx.data
		try := func(caseLabel string, b []byte) {
			t.Helper()
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("%s: mapped load panicked on %s: %v", label, caseLabel, r)
				}
			}()
			r, err := tryLoadMapped(b)
			if err != nil || r == nil {
				return
			}
			// Accepted input must serve without panicking.
			_, _ = r.TopK(0, 5)
			_ = r.Len()
		}
		step := len(data)/512 + 1
		for n := 0; n < len(data); n += step {
			try("truncation", data[:n])
		}
		for pos := 0; pos < len(data); pos += 131 {
			mutated := append([]byte(nil), data...)
			mutated[pos] ^= 0xFF
			try("bit flip", mutated)
		}
	}
}

// fuzzMappedSeed holds one aligned image per engine format for the
// fuzz corpus.
var fuzzMappedSeed = sync.OnceValue(func() [][]byte {
	ds := NewMixture(MixtureConfig{N: 120, Classes: 4, Dim: 6, WithinStd: 0.3, Separation: 3, Seed: 67})
	var out [][]byte
	save := func(save func(w *bytes.Buffer) error) {
		var buf bytes.Buffer
		if err := save(&buf); err != nil {
			panic(err)
		}
		out = append(out, buf.Bytes())
	}
	ix, err := Build(ds.Points, Options{Seed: 67, Precision: F32})
	if err != nil {
		panic(err)
	}
	save(func(w *bytes.Buffer) error { return ix.SaveAligned(w, 64) })
	emr, err := BuildEMR(ds.Points, Options{Seed: 67, Precision: F32}, EMROptions{NumAnchors: 12, NumNearestAnchors: 3})
	if err != nil {
		panic(err)
	}
	save(func(w *bytes.Buffer) error { return emr.SaveAligned(w, 64) })
	spc, err := BuildSpectral(ds.Points, Options{Seed: 67, GraphK: 5, Precision: F32}, SpectralOptions{Rank: 16})
	if err != nil {
		panic(err)
	}
	save(func(w *bytes.Buffer) error { return spc.SaveAligned(w, 64) })
	return out
})

// FuzzLoadMapped drives arbitrary bytes through the mapped-load
// dispatch. The contract: never panic; accepted input serves queries
// without panicking. Explore with
//
//	go test -fuzz FuzzLoadMapped -fuzztime 30s .
func FuzzLoadMapped(f *testing.F) {
	for _, seed := range fuzzMappedSeed() {
		f.Add(seed)
		f.Add(seed[:len(seed)/2])
		mutated := append([]byte(nil), seed...)
		mutated[len(mutated)/3] ^= 0x5A
		f.Add(mutated)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := tryLoadMapped(data)
		if err != nil || r == nil {
			return
		}
		_, _ = r.TopK(0, 5)
		_ = r.Len()
		_ = r.Delta()
	})
}
