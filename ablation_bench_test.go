package mogul

// Ablation benchmarks for the design choices DESIGN.md calls out:
// the Manifold Ranking damping parameter alpha, the k of the k-NN
// graph, the graph symmetrization mode, and the ordering strategy.
// Each reports retrieval quality as custom metrics next to the usual
// ns/op, so a single -bench run shows the quality/speed trade-off of
// every knob.

import (
	"fmt"
	"testing"

	"mogul/internal/core"
	"mogul/internal/dataset"
	"mogul/internal/eval"
	"mogul/internal/knn"
)

// ablationDataset is a moderate labelled workload shared by the
// ablations; small enough that every variant builds in milliseconds.
func ablationDataset() *dataset.MixtureConfig {
	return &dataset.MixtureConfig{
		N: 2000, Classes: 20, Dim: 16, WithinStd: 0.25, Separation: 1.8, Seed: 17,
	}
}

// BenchmarkAblationAlpha sweeps the damping parameter. The paper fixes
// alpha = 0.99 following [25, 26]; the sweep shows why: small alpha
// barely diffuses (high self-score, low recall of the manifold), while
// alpha close to 1 risks slower bound convergence.
func BenchmarkAblationAlpha(b *testing.B) {
	ds := dataset.Mixture(*ablationDataset())
	g, err := knn.BuildGraph(ds.Points, knn.GraphConfig{K: 5})
	if err != nil {
		b.Fatal(err)
	}
	queries := benchQueries(g.Len(), 24)
	for _, alpha := range []float64{0.5, 0.9, 0.99, 0.999} {
		b.Run(fmt.Sprintf("alpha=%g", alpha), func(b *testing.B) {
			ix, err := core.NewIndex(g, core.Options{Alpha: alpha})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := ix.TopK(queries[i%len(queries)], 10); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			var prec float64
			for _, q := range queries {
				res, err := ix.TopK(q, 10)
				if err != nil {
					b.Fatal(err)
				}
				prec += eval.RetrievalPrecision(eval.TopKIDs(res), ds.Labels, ds.Labels[q], q)
			}
			b.ReportMetric(prec/float64(len(queries)), "precision")
		})
	}
}

// BenchmarkAblationGraphK sweeps the k-NN graph degree (the paper
// notes k is usually 5-20 and evaluates with 5). Larger k densifies
// the graph: better connectivity, larger factor, slower search.
func BenchmarkAblationGraphK(b *testing.B) {
	ds := dataset.Mixture(*ablationDataset())
	for _, k := range []int{3, 5, 10, 20} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			g, err := knn.BuildGraph(ds.Points, knn.GraphConfig{K: k})
			if err != nil {
				b.Fatal(err)
			}
			ix, err := core.NewIndex(g, core.Options{})
			if err != nil {
				b.Fatal(err)
			}
			queries := benchQueries(g.Len(), 24)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := ix.TopK(queries[i%len(queries)], 10); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			var prec float64
			for _, q := range queries {
				res, err := ix.TopK(q, 10)
				if err != nil {
					b.Fatal(err)
				}
				prec += eval.RetrievalPrecision(eval.TopKIDs(res), ds.Labels, ds.Labels[q], q)
			}
			b.ReportMetric(prec/float64(len(queries)), "precision")
			b.ReportMetric(float64(ix.Factor().NNZ()), "nnz(L)")
		})
	}
}

// BenchmarkAblationOrdering compares the four node orderings on build
// time, with approximation quality (P@10 against the exact ranking)
// attached. Mogul's Algorithm 1 is the only ordering that also enables
// pruning; RCM/random/identity factor fine but cannot skip clusters.
func BenchmarkAblationOrdering(b *testing.B) {
	ds := dataset.Mixture(*ablationDataset())
	g, err := knn.BuildGraph(ds.Points, knn.GraphConfig{K: 5})
	if err != nil {
		b.Fatal(err)
	}
	exact, err := core.NewIndex(g, core.Options{Exact: true})
	if err != nil {
		b.Fatal(err)
	}
	queries := benchQueries(g.Len(), 16)
	ref := map[int][]int{}
	for _, q := range queries {
		scores, err := exact.AllScores(q)
		if err != nil {
			b.Fatal(err)
		}
		ref[q] = eval.TopKFromScores(scores, 10, nil)
	}
	for _, ord := range []struct {
		label string
		o     core.Ordering
	}{
		{"Mogul", core.OrderingMogul},
		{"Random", core.OrderingRandom},
		{"Identity", core.OrderingIdentity},
		{"RCM", core.OrderingRCM},
	} {
		b.Run(ord.label, func(b *testing.B) {
			var ix *core.Index
			for i := 0; i < b.N; i++ {
				var err error
				ix, err = core.NewIndex(g, core.Options{Ordering: ord.o, Seed: 7})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			var patk float64
			for _, q := range queries {
				res, err := ix.TopK(q, 10)
				if err != nil {
					b.Fatal(err)
				}
				patk += eval.PAtK(eval.TopKIDs(res), ref[q])
			}
			b.ReportMetric(patk/float64(len(queries)), "P@10")
		})
	}
}

// BenchmarkAblationSymmetrization compares union versus mutual k-NN
// symmetrization (Section 3 defines the graph; implementations differ
// on this detail and it changes connectivity).
func BenchmarkAblationSymmetrization(b *testing.B) {
	ds := dataset.Mixture(*ablationDataset())
	for _, mutual := range []bool{false, true} {
		name := "union"
		if mutual {
			name = "mutual"
		}
		b.Run(name, func(b *testing.B) {
			g, err := knn.BuildGraph(ds.Points, knn.GraphConfig{K: 5, Mutual: mutual})
			if err != nil {
				b.Fatal(err)
			}
			ix, err := core.NewIndex(g, core.Options{})
			if err != nil {
				b.Fatal(err)
			}
			queries := benchQueries(g.Len(), 24)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := ix.TopK(queries[i%len(queries)], 10); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			var prec float64
			for _, q := range queries {
				res, err := ix.TopK(q, 10)
				if err != nil {
					b.Fatal(err)
				}
				prec += eval.RetrievalPrecision(eval.TopKIDs(res), ds.Labels, ds.Labels[q], q)
			}
			b.ReportMetric(prec/float64(len(queries)), "precision")
			b.ReportMetric(float64(g.NumEdges()), "edges")
		})
	}
}

// BenchmarkThroughputParallel measures concurrent query throughput
// through the public API (the index is read-only during search, so
// QPS should scale with cores).
func BenchmarkThroughputParallel(b *testing.B) {
	ds := dataset.Mixture(*ablationDataset())
	idx, err := Build(ds.Points, Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.RunParallel(func(pb *testing.PB) {
		q := 0
		for pb.Next() {
			if _, err := idx.TopK(q%idx.Len(), 10); err != nil {
				b.Error(err)
				return
			}
			q += 7919 // large prime stride spreads queries
		}
	})
}

// BenchmarkKNNBackends compares the three k-NN search structures used
// for graph construction (brute force, VP-tree, IVF) on one query
// workload; recall against brute force is attached for the
// approximate backend.
func BenchmarkKNNBackends(b *testing.B) {
	ds := dataset.INRIASim(4000, 5)
	bf := knn.NewBruteForce(ds.Points)
	vp := knn.NewVPTree(ds.Points, 1)
	ivf, err := knn.NewIVF(ds.Points, knn.IVFConfig{Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	queries := benchQueries(len(ds.Points), 64)
	exact := map[int]map[int]bool{}
	for _, q := range queries {
		set := map[int]bool{}
		for _, nb := range bf.Search(ds.Points[q], 10) {
			set[nb.ID] = true
		}
		exact[q] = set
	}
	backends := []struct {
		name string
		s    knn.Searcher
	}{
		{"BruteForce", bf},
		{"VPTree", vp},
		{"IVF", ivf},
	}
	for _, be := range backends {
		b.Run(be.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				be.s.Search(ds.Points[queries[i%len(queries)]], 10)
			}
			b.StopTimer()
			hits, total := 0, 0
			for _, q := range queries {
				for _, nb := range be.s.Search(ds.Points[q], 10) {
					total++
					if exact[q][nb.ID] {
						hits++
					}
				}
			}
			b.ReportMetric(float64(hits)/float64(total), "recall@10")
		})
	}
}
