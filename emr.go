package mogul

// The EMR engine: Efficient Manifold Ranking (Xu et al., SIGIR'11)
// promoted from comparison baseline (internal/baseline/emr.go) to a
// first-class serving backend.
//
// The exact engine's precompute cost caps n per shard; EMR removes the
// cap by ranking over an anchor graph instead of the k-NN graph:
// p ≪ n anchors are chosen with k-means, every point is written as a
// Nadaraya-Watson weighted combination of its s nearest anchors
// (sparse Z, p x n), and the normalized graph factors as S = H^T H
// with H = Lambda^{1/2} Z D^{-1/2}. The Woodbury identity turns the
// n x n manifold-ranking solve into a p x p one,
//
//	x = (1-alpha) (q + alpha H^T (I_p - alpha H H^T)^{-1} H q),
//
// whose factorization is query independent. BuildEMR factorizes it
// exactly once (the baseline's lazily cached factorization raced under
// concurrent queries; prefactoring removes the race by construction),
// so a query is a dense p-vector solve plus one streaming pass over
// the H columns: O(p^2 + n s) with tiny constants, flat in n for the
// p^2 term and memory-bandwidth bound for the scan. Insert appends an
// H column against the frozen anchor set (O(p) — no refactorization),
// Delete tombstones, and Compact re-runs k-means over the live points.
//
// *EMRIndex implements the full Retriever surface, so it serves
// through the serve package, the dist coordinator, and mogul-server
// interchangeably with the exact and sharded engines. Scores are
// approximations of exact Manifold Ranking (the anchor graph replaces
// the k-NN graph); docs/EMR.md maps the recall/latency frontier
// against the exact engine and says when to choose which.

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"mogul/internal/baseline"
	"mogul/internal/dense"
	"mogul/internal/kmeans"
	"mogul/internal/par"
	"mogul/internal/topk"
	"mogul/internal/vec"
)

// EMROptions configures the anchor graph of BuildEMR. The zero value
// gives serving defaults (128 anchors, 5 nearest anchors per point);
// the shared Options value supplies Alpha, Seed, and
// AutoCompactFraction (graph-construction fields such as GraphK are
// ignored — EMR's anchor graph replaces the k-NN graph).
type EMROptions struct {
	// NumAnchors is p, the anchor count (k-means centers). More
	// anchors buy recall at O(p^2) per-query solve cost: the default
	// 128 suits coarse class-level retrieval; fine-grained workloads
	// (near-duplicate lookup over micro-clusters) want 2560 with
	// NumNearestAnchors 24, which holds recall@10 >= 0.9 against the
	// exact engine at n = 10^5 on the evaluation mixture (docs/EMR.md
	// maps the frontier).
	NumAnchors int
	// NumNearestAnchors is s, the anchors each point attaches to
	// (default 5, clamped to NumAnchors).
	NumNearestAnchors int
}

func (o EMROptions) withDefaults() EMROptions {
	if o.NumAnchors <= 0 {
		o.NumAnchors = 128
	}
	if o.NumNearestAnchors <= 0 {
		o.NumNearestAnchors = 5
	}
	return o
}

// emrState is everything a query touches, grouped so Compact can build
// a replacement off-line and swap it in atomically under the write
// lock. Within a state, anchors/lambda/colSum/gram are frozen at build
// time; points/hAnchor/hVal/dead grow or flip under the write lock.
type emrState struct {
	dim  int
	p, s int
	// anchors are the k-means centers; colSum[k] = sum_i Z_ki over the
	// base build and lambda[k] = 1/colSum[k] (frozen — delta columns
	// are attached against the base graph's normalization).
	anchors        []Vector
	colSum, lambda []float64
	// points holds every item ever inserted, by id; dead tombstones. In
	// mixed-precision mode points is nil and the vectors live flattened
	// in pts32 with stride dim.
	points []Vector
	pts32  []float32
	dead   []bool
	// hAnchor/hVal store the H columns flat with stride s (item i owns
	// [i*s, (i+1)*s)): one cache-friendly streaming array instead of n
	// little slices, which is what keeps the per-query scan
	// memory-bandwidth bound. In mixed-precision mode hVal is nil and
	// the attachment weights live in hVal32; anchors, colSum, lambda,
	// and the gram factor stay float64 (p-sized, cold next to the scan).
	hVal32  []float32
	hAnchor []int32
	hVal    []float64
	// deadCount counts all tombstones; deadBase only those in the base
	// build (the auto-compact policy counts a deleted delta item once:
	// it is already in the inserted-items term). baseN is how many
	// columns the gram factorization covers (items inserted later are
	// scored but do not contribute to the factor until Compact folds
	// them in).
	deadCount int
	deadBase  int
	baseN     int
	// gram is the prefactored p x p system I_p - alpha H H^T.
	gram  *dense.LU
	stats Stats
}

// f32 reports whether the state stores its bulk arrays narrowed.
func (st *emrState) f32() bool { return st.hVal32 != nil }

// numPoints returns the id-space size in either precision.
func (st *emrState) numPoints() int {
	if st.pts32 != nil {
		return len(st.pts32) / st.dim
	}
	return len(st.points)
}

// pointVec returns item i's stored vector. In f64 mode the returned
// slice aliases state storage; in f32 mode it is freshly widened —
// callers that retain it must copy in either case.
func (st *emrState) pointVec(i int) Vector {
	if st.pts32 != nil {
		return Vector(vec.Widen64(nil, st.pts32[i*st.dim:(i+1)*st.dim]))
	}
	return st.points[i]
}

// narrow32 moves the state into mixed-precision storage: the point
// matrix flattens to float32 rows and the H attachment weights round to
// float32, halving the bytes the per-query scan streams. Applied
// exactly once, after the (always float64) build; anchors, column
// sums, and the gram factor keep full precision.
func (st *emrState) narrow32() {
	if st.f32() {
		return
	}
	st.pts32, _ = vec.Flatten32(st.points)
	st.points = nil
	st.hVal32 = vec.Narrow32(nil, st.hVal)
	st.hVal = nil
}

// EMRIndex is the anchor-graph (Efficient Manifold Ranking) serving
// engine built by BuildEMR. It implements Retriever: searches run
// concurrently against the immutable base structures (read lock) on
// pooled per-searcher scratch, while Insert/Delete/Compact mutate the
// delta state (or swap the whole anchor graph) behind the write lock.
type EMRIndex struct {
	alpha float64
	// seed/autoCompact/eopts are the recorded recipe Compact rebuilds
	// with, so Insert...Compact converges to exactly what a fresh
	// BuildEMR over the live points would produce.
	seed        int64
	autoCompact float64
	eopts       EMROptions

	// mu guards st; mutMu serializes mutators so Compact's off-line
	// rebuild never races another Insert/Delete/Compact while searches
	// proceed against the old state.
	mu    sync.RWMutex
	mutMu sync.Mutex
	st    *emrState

	version   atomic.Uint64
	searchers sync.Pool
}

// Both the engine and its searcher implement the shared serving
// surfaces.
var (
	_ Retriever = (*EMRIndex)(nil)
	_ Querier   = (*EMRSearcher)(nil)
)

// BuildEMR constructs the anchor-graph engine over the given feature
// vectors. opts supplies Alpha, Seed, and AutoCompactFraction (its
// graph fields are ignored); eopts sizes the anchor graph. The build
// is deterministic for a fixed seed and query independent: one engine
// serves any query item, any vector, any k.
func BuildEMR(points []Vector, opts Options, eopts EMROptions) (*EMRIndex, error) {
	if len(points) == 0 {
		return nil, fmt.Errorf("mogul: BuildEMR needs at least one point")
	}
	alpha := opts.Alpha
	if alpha == 0 {
		alpha = 0.99
	}
	if alpha <= 0 || alpha >= 1 {
		return nil, fmt.Errorf("mogul: alpha must lie in (0,1), got %g", alpha)
	}
	if opts.AutoCompactFraction < 0 || math.IsNaN(opts.AutoCompactFraction) || math.IsInf(opts.AutoCompactFraction, 0) {
		return nil, fmt.Errorf("mogul: auto-compact fraction must be finite and non-negative, got %g", opts.AutoCompactFraction)
	}
	dim := len(points[0])
	if dim == 0 {
		return nil, fmt.Errorf("mogul: BuildEMR needs non-empty feature vectors")
	}
	for i, pt := range points {
		if len(pt) != dim {
			return nil, fmt.Errorf("mogul: point %d has dim %d, want %d", i, len(pt), dim)
		}
		for _, x := range pt {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return nil, fmt.Errorf("mogul: point %d has non-finite component %g", i, x)
			}
		}
	}
	eopts = eopts.withDefaults()
	st, err := buildEMRState(points, alpha, opts.Seed, eopts)
	if err != nil {
		return nil, err
	}
	if opts.Precision == F32 {
		// The build itself always runs in float64 (k-means, attachment,
		// gram factorization); narrowing once at the end is the only
		// lossy step, so an f32 engine differs from its f64 twin by one
		// rounding of each stored value, never by accumulated error.
		st.narrow32()
	}
	e := &EMRIndex{
		alpha:       alpha,
		seed:        opts.Seed,
		autoCompact: opts.AutoCompactFraction,
		eopts:       eopts,
		st:          st,
	}
	e.version.Store(1)
	return e, nil
}

// buildEMRState runs the offline half of EMR: k-means anchors, the
// shared anchor attachment (baseline.BuildAnchorGraph — the engine and
// the baseline produce bit-identical graphs from the same inputs), and
// the prefactored gram system.
func buildEMRState(points []Vector, alpha float64, seed int64, eopts EMROptions) (*emrState, error) {
	n := len(points)
	p := eopts.NumAnchors
	if p > n {
		p = n
	}
	s := eopts.NumNearestAnchors
	if s > p {
		s = p
	}
	t0 := time.Now()
	km, err := kmeans.Run(points, kmeans.Config{K: p, Seed: seed})
	if err != nil {
		return nil, fmt.Errorf("mogul: EMR anchors: %w", err)
	}
	clusterTime := time.Since(t0)
	p = len(km.Centroids)
	if s > p {
		s = p
	}
	ag := baseline.BuildAnchorGraph(points, km.Centroids, s)

	st := &emrState{
		dim:     len(points[0]),
		p:       p,
		s:       ag.S,
		anchors: ag.Anchors,
		colSum:  ag.ColSum,
		lambda:  ag.Lambda,
		points:  points,
		dead:    make([]bool, n),
		hAnchor: make([]int32, n*ag.S),
		hVal:    make([]float64, n*ag.S),
		baseN:   n,
	}
	for i := range ag.HIdx {
		off := i * st.s
		for t, a := range ag.HIdx[i] {
			st.hAnchor[off+t] = int32(a)
			st.hVal[off+t] = ag.HVal[i][t]
		}
	}

	// Gram system G = I_p - alpha H H^T. The baseline's factorGram
	// accumulates it serially over points; here the rows are
	// partitioned by anchor, with an inverted anchor -> flat-position
	// list (built in ascending point order) driving each row. A given
	// cell (r, c) then receives the exact contributions of the serial
	// loop in the exact same order — ascending point, then ascending
	// support position — and ((-alpha)*val[a])*val[b] reproduces the
	// serial expression bit-for-bit (negation is exact), so the
	// factorization — and every score downstream of it — stays
	// bit-identical to baseline.EMR over the same graph, at any
	// GOMAXPROCS.
	t1 := time.Now()
	g := dense.Identity(p)
	if st.s > 0 {
		rowPos := make([][]int32, p)
		for i := 0; i < n; i++ {
			off := i * st.s
			for t := 0; t < st.s; t++ {
				a := st.hAnchor[off+t]
				rowPos[a] = append(rowPos[a], int32(off+t))
			}
		}
		par.For(p, 1, func(lo, hi int) {
			for r := lo; r < hi; r++ {
				row := g.Row(r)
				for _, fp := range rowPos[r] {
					off := int(fp) / st.s * st.s
					va := -alpha * st.hVal[fp]
					idx := st.hAnchor[off : off+st.s]
					val := st.hVal[off : off+st.s]
					for b := range idx {
						row[idx[b]] += va * val[b]
					}
				}
			}
		})
	}
	lu, err := dense.Factorize(g)
	if err != nil {
		return nil, fmt.Errorf("mogul: EMR gram factorization: %w", err)
	}
	st.gram = lu
	st.stats = Stats{
		NumNodes:    n,
		NumClusters: p,
		FactorNNZ:   p * p,
		ClusterTime: clusterTime,
		FactorTime:  time.Since(t1),
	}
	return st, nil
}

// attachColumn computes the stored H column of a point that arrives
// after the base build, against the frozen base normalization: the
// Nadaraya-Watson weights of its s nearest anchors (shared helper —
// same code path as the base build and out-of-sample queries), scaled
// by Lambda^{1/2} and the point's own degree under the base column
// sums. idx/val are scratch; the results land in dstIdx/dstVal
// (exactly st.s entries each).
func (st *emrState) attachColumn(v Vector, sc *baseline.AnchorScratch, idx []int, val []float64, dstIdx []int32, dstVal []float64) {
	idx, val, _ = baseline.NearestAnchorWeights(v, st.anchors, st.s, sc, idx, val)
	var deg float64
	for t, a := range idx {
		deg += val[t] * st.lambda[a] * st.colSum[a]
	}
	invSqrtD := 0.0
	if deg > 0 {
		invSqrtD = 1 / math.Sqrt(deg)
	}
	for t, a := range idx {
		dstIdx[t] = int32(a)
		dstVal[t] = math.Sqrt(st.lambda[a]) * val[t] * invSqrtD
	}
}

// Len returns the number of live (searchable) items.
func (e *EMRIndex) Len() int {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.st.numPoints() - e.st.deadCount
}

// Exact reports false: EMR scores approximate exact Manifold Ranking
// through the anchor graph.
func (e *EMRIndex) Exact() bool { return false }

// Precision reports the storage precision the engine was built (or
// loaded) with.
func (e *EMRIndex) Precision() Precision {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if e.st.f32() {
		return F32
	}
	return F64
}

// Stats reports what the latest base build did, mapped onto the shared
// Stats shape: NumClusters is the anchor count p, FactorNNZ the dense
// p x p gram factor, ClusterTime the k-means run, FactorTime the gram
// assembly + factorization.
func (e *EMRIndex) Stats() Stats {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.st.stats
}

// Delta reports the dynamic state: items inserted since the base build
// and tombstones awaiting compaction.
func (e *EMRIndex) Delta() DeltaStats {
	e.mu.RLock()
	defer e.mu.RUnlock()
	st := e.st
	deltaDead := 0
	for i := st.baseN; i < len(st.dead); i++ {
		if st.dead[i] {
			deltaDead++
		}
	}
	return DeltaStats{
		BaseItems:  st.baseN,
		DeltaItems: st.numPoints() - st.baseN - deltaDead,
		Tombstones: st.deadCount,
	}
}

// Version is the monotonic mutation counter (same contract as
// Index.Version): unchanged Version means unchanged answers, which is
// what lets the serve layer cache results and invalidate implicitly.
func (e *EMRIndex) Version() uint64 { return e.version.Load() }

// NumAnchors returns p, the current anchor count.
func (e *EMRIndex) NumAnchors() int {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.st.p
}

// Neighbors is unavailable: the anchor graph stores point-to-anchor
// attachments, not item-to-item edges.
func (e *EMRIndex) Neighbors(item int) ([]int, []float64, error) {
	return nil, nil, fmt.Errorf("mogul: the EMR engine has no item-level neighbour graph (anchor attachments only)")
}

// EMRSearcher is a dedicated reusable query engine over an EMRIndex:
// it owns the dense rhs/solution vectors of the p x p solve, the
// top-k collector, and the anchor-attachment scratch, so a steady
// query load runs allocation-free. Use one searcher per worker
// goroutine (the EMRIndex query methods draw from an internal pool).
type EMRSearcher struct {
	e      *EMRIndex
	rhs, z []float64
	col    topk.Collector
	sc     baseline.AnchorScratch
	wIdx   []int
	wVal   []float64
	seeds  []seedWeight
	// aff is the raw kernel affinity of the last out-of-sample
	// attachment (the unnormalized Epanechnikov mass), the same
	// density proxy the sharded fan-out scales merges with.
	aff float64
	// scanned counts items scored by the last query (for SearchInfo).
	scanned int
}

type seedWeight struct {
	id int
	w  float64
}

// NewSearcher returns a fresh dedicated searcher.
func (e *EMRIndex) NewSearcher() *EMRSearcher { return &EMRSearcher{e: e} }

// NewQuerier is NewSearcher behind the interface surface (Retriever).
func (e *EMRIndex) NewQuerier() Querier { return e.NewSearcher() }

func (e *EMRIndex) acquire() *EMRSearcher {
	if v := e.searchers.Get(); v != nil {
		return v.(*EMRSearcher)
	}
	return e.NewSearcher()
}

func (e *EMRIndex) release(sr *EMRSearcher) { e.searchers.Put(sr) }

// ensure sizes the dense solve buffers for the current anchor count
// (Compact may change p). Callers hold e.mu.
func (sr *EMRSearcher) ensure(p int) {
	if cap(sr.rhs) < p {
		sr.rhs = make([]float64, p)
		sr.z = make([]float64, p)
	}
	sr.rhs = sr.rhs[:p]
	sr.z = sr.z[:p]
	for i := range sr.rhs {
		sr.rhs[i] = 0
	}
}

// collect runs the online half of EMR with e.mu held: solve the
// prefactored p x p system against sr.rhs, then stream every live H
// column through the collector. seeds carries the query-vector entries
// q_i (sorted by ascending id, unique); the score expression matches
// the baseline term for term, so over an unmutated engine the results
// are bit-identical to baseline.EMR.
func (sr *EMRSearcher) collect(k int, seeds []seedWeight) []Result {
	e := sr.e
	st := e.st
	z := st.gram.SolveInto(sr.z, sr.rhs)
	n := st.numPoints()
	live := n - st.deadCount
	if k > live {
		k = live
	}
	sr.col.Reset(k)
	si := 0
	s := st.s
	hv32 := st.hVal32
	for i := 0; i < n; i++ {
		if st.dead[i] {
			continue
		}
		// h_i^T z in the same fixed four-lane summation order as
		// baseline.AnchorDot (see vec.DotGather for why): the scan is
		// the only O(n) term of a query, and the four independent
		// accumulators keep it throughput-bound instead of
		// FP-add-latency-bound while preserving bit-identity with the
		// baseline's scores. In f32 mode the weights stream at half the
		// bytes and widen to float64 in registers (same lane order).
		off := i * s
		var sum float64
		if hv32 != nil {
			sum = vec.DotGather32I32(hv32[off:off+s], st.hAnchor[off:off+s], z)
		} else {
			sum = vec.DotGatherI32(st.hVal[off:off+s], st.hAnchor[off:off+s], z)
		}
		sum *= e.alpha
		if si < len(seeds) && seeds[si].id == i {
			sum += seeds[si].w
			si++
		}
		sr.col.Offer(i, (1-e.alpha)*sum)
	}
	sr.scanned = live
	items := sr.col.Drain()
	out := make([]Result, len(items))
	for i, it := range items {
		out[i] = Result{Node: it.ID, Score: it.Score}
	}
	return out
}

// checkItem validates an item id against the current state. Callers
// hold e.mu.
func (st *emrState) checkItem(id int) error {
	if n := st.numPoints(); id < 0 || id >= n {
		return fmt.Errorf("mogul: item %d outside [0,%d)", id, n)
	}
	if st.dead[id] {
		return fmt.Errorf("mogul: item %d deleted", id)
	}
	return nil
}

// TopK ranks database items against an in-database query item, best
// first. The query item itself is included (it typically ranks first).
func (sr *EMRSearcher) TopK(query, k int) ([]Result, error) {
	e := sr.e
	e.mu.RLock()
	defer e.mu.RUnlock()
	if k <= 0 {
		return nil, fmt.Errorf("mogul: K must be positive, got %d", k)
	}
	st := e.st
	if err := st.checkItem(query); err != nil {
		return nil, err
	}
	sr.ensure(st.p)
	off := query * st.s
	if st.hVal32 != nil {
		for t := 0; t < st.s; t++ {
			sr.rhs[st.hAnchor[off+t]] = float64(st.hVal32[off+t])
		}
	} else {
		for t := 0; t < st.s; t++ {
			sr.rhs[st.hAnchor[off+t]] = st.hVal[off+t]
		}
	}
	sr.seeds = append(sr.seeds[:0], seedWeight{id: query, w: 1})
	sr.aff = 0
	return sr.collect(k, sr.seeds), nil
}

// TopKWithInfo is TopK plus work counters: the EMR engine has no
// pruning, so every anchor is "scanned" and every live item scored.
func (sr *EMRSearcher) TopKWithInfo(query, k int) ([]Result, *SearchInfo, error) {
	res, err := sr.TopK(query, k)
	if err != nil {
		return nil, nil, err
	}
	e := sr.e
	e.mu.RLock()
	p := e.st.p
	e.mu.RUnlock()
	return res, &SearchInfo{ClustersScanned: p, ScoresComputed: sr.scanned}, nil
}

// TopKVector ranks database items against an out-of-sample query
// vector: the query's anchor weights are computed on the fly (EMR's
// native out-of-sample mechanism — no surrogate neighbours needed) and
// the anchor graph is queried with them.
func (sr *EMRSearcher) TopKVector(q Vector, k int) ([]Result, error) {
	e := sr.e
	e.mu.RLock()
	defer e.mu.RUnlock()
	if k <= 0 {
		return nil, fmt.Errorf("mogul: K must be positive, got %d", k)
	}
	st := e.st
	if len(q) != st.dim {
		return nil, fmt.Errorf("mogul: query dimension %d, want %d", len(q), st.dim)
	}
	sr.ensure(st.p)
	var mass float64
	sr.wIdx, sr.wVal, mass = baseline.NearestAnchorWeights(q, st.anchors, st.s, &sr.sc, sr.wIdx[:0], sr.wVal[:0])
	for t, a := range sr.wIdx {
		sr.rhs[a] = sr.wVal[t]
	}
	sr.aff = mass
	return sr.collect(k, nil), nil
}

// TopKSet ranks database items against a set of seed items with equal
// weights 1/len(seeds), so query mass matches a single-item query.
func (sr *EMRSearcher) TopKSet(seeds []int, k int) ([]Result, error) {
	if len(seeds) == 0 {
		return nil, fmt.Errorf("mogul: TopKSet needs at least one seed item")
	}
	return sr.topKSetWeighted(seeds, 1/float64(len(seeds)), k)
}

// topKSetWeighted seeds the query vector with q[seed] = weight for
// every seed (duplicates accumulate).
func (sr *EMRSearcher) topKSetWeighted(seeds []int, weight float64, k int) ([]Result, error) {
	e := sr.e
	e.mu.RLock()
	defer e.mu.RUnlock()
	if k <= 0 {
		return nil, fmt.Errorf("mogul: K must be positive, got %d", k)
	}
	st := e.st
	sr.seeds = sr.seeds[:0]
	for _, id := range seeds {
		if err := st.checkItem(id); err != nil {
			return nil, err
		}
		sr.seeds = append(sr.seeds, seedWeight{id: id, w: weight})
	}
	sort.Slice(sr.seeds, func(i, j int) bool { return sr.seeds[i].id < sr.seeds[j].id })
	// Merge duplicate seeds so the scan's cursor sees unique ascending ids.
	uniq := sr.seeds[:0]
	for _, sw := range sr.seeds {
		if len(uniq) > 0 && uniq[len(uniq)-1].id == sw.id {
			uniq[len(uniq)-1].w += sw.w
			continue
		}
		uniq = append(uniq, sw)
	}
	sr.seeds = uniq
	sr.ensure(st.p)
	for _, sw := range sr.seeds {
		off := sw.id * st.s
		if st.hVal32 != nil {
			for t := 0; t < st.s; t++ {
				sr.rhs[st.hAnchor[off+t]] += sw.w * float64(st.hVal32[off+t])
			}
		} else {
			for t := 0; t < st.s; t++ {
				sr.rhs[st.hAnchor[off+t]] += sw.w * st.hVal[off+t]
			}
		}
	}
	sr.aff = 0
	return sr.collect(k, sr.seeds), nil
}

// TopK is EMRSearcher.TopK on a pooled searcher.
func (e *EMRIndex) TopK(query, k int) ([]Result, error) {
	sr := e.acquire()
	defer e.release(sr)
	return sr.TopK(query, k)
}

// TopKWithInfo is EMRSearcher.TopKWithInfo on a pooled searcher.
func (e *EMRIndex) TopKWithInfo(query, k int) ([]Result, *SearchInfo, error) {
	sr := e.acquire()
	defer e.release(sr)
	return sr.TopKWithInfo(query, k)
}

// TopKVector is EMRSearcher.TopKVector on a pooled searcher.
func (e *EMRIndex) TopKVector(q Vector, k int) ([]Result, error) {
	sr := e.acquire()
	defer e.release(sr)
	return sr.TopKVector(q, k)
}

// TopKSet is EMRSearcher.TopKSet on a pooled searcher.
func (e *EMRIndex) TopKSet(seeds []int, k int) ([]Result, error) {
	sr := e.acquire()
	defer e.release(sr)
	return sr.TopKSet(seeds, k)
}

// TopKBatch answers many in-database queries on a bounded worker pool
// (parallelism <= 0 selects GOMAXPROCS); results land at their query's
// index and per-query failures are recorded, never fatal.
func (e *EMRIndex) TopKBatch(queries []int, k, parallelism int) []BatchResult {
	return runBatch(len(queries), parallelism, func() func(i int) BatchResult {
		sr := e.NewSearcher()
		return func(i int) BatchResult {
			res, err := sr.TopK(queries[i], k)
			return BatchResult{Query: queries[i], Results: res, Err: err}
		}
	})
}

// TopKVectorBatch answers many out-of-sample queries on a bounded
// worker pool; see TopKBatch.
func (e *EMRIndex) TopKVectorBatch(queries []Vector, k, parallelism int) []BatchResult {
	return runBatch(len(queries), parallelism, func() func(i int) BatchResult {
		sr := e.NewSearcher()
		return func(i int) BatchResult {
			res, err := sr.TopKVector(queries[i], k)
			return BatchResult{Query: i, Results: res, Err: err}
		}
	})
}

// Insert adds a new point without rebuilding and returns its item id.
// The point becomes immediately searchable: its H column is attached
// against the frozen anchor set in O(p·dim), no refactorization. It is
// scored by every query but does not contribute to the gram system
// until Compact folds it in, so accuracy degrades gently as the delta
// grows — size the delta with Options.AutoCompactFraction or call
// Compact. Safe for concurrent use with searches.
func (e *EMRIndex) Insert(v Vector) (int, error) {
	e.mutMu.Lock()
	defer e.mutMu.Unlock()

	for _, x := range v {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return 0, fmt.Errorf("mogul: inserted vector has non-finite component %g", x)
		}
	}
	e.mu.Lock()
	st := e.st
	if len(v) != st.dim {
		e.mu.Unlock()
		return 0, fmt.Errorf("mogul: inserted vector has dim %d, want %d", len(v), st.dim)
	}
	id := st.numPoints()
	stored := append(Vector(nil), v...)
	var sc baseline.AnchorScratch
	dstIdx := make([]int32, st.s)
	dstVal := make([]float64, st.s)
	st.attachColumn(stored, &sc, make([]int, 0, st.s), make([]float64, 0, st.s), dstIdx, dstVal)
	if st.f32() {
		// Attachment ran in full precision against the f64 anchors; the
		// stored copies round once, like everything else in this mode.
		// (A state loaded from a mapped file appends safely: views have
		// cap == len, so the first append reallocates onto the heap.)
		for _, x := range stored {
			st.pts32 = append(st.pts32, float32(x))
		}
		for _, x := range dstVal {
			st.hVal32 = append(st.hVal32, float32(x))
		}
	} else {
		st.points = append(st.points, stored)
		st.hVal = append(st.hVal, dstVal...)
	}
	st.dead = append(st.dead, false)
	st.hAnchor = append(st.hAnchor, dstIdx...)
	needCompact := e.needsCompactLocked()
	e.version.Add(1)
	e.mu.Unlock()

	if needCompact {
		if err := e.compactLocked(); err != nil {
			return id, fmt.Errorf("mogul: auto-compact after insert: %w", err)
		}
	}
	return id, nil
}

// Delete tombstones an item: it stops appearing in results and stops
// being a valid query, its id is never reused, and Compact reclaims
// the storage. Deleting the last live item is refused.
func (e *EMRIndex) Delete(id int) error {
	e.mutMu.Lock()
	defer e.mutMu.Unlock()

	e.mu.Lock()
	st := e.st
	if n := st.numPoints(); id < 0 || id >= n {
		e.mu.Unlock()
		return fmt.Errorf("mogul: item %d outside [0,%d)", id, n)
	}
	if st.dead[id] {
		e.mu.Unlock()
		return fmt.Errorf("mogul: item %d already deleted", id)
	}
	if st.numPoints()-st.deadCount <= 1 {
		e.mu.Unlock()
		return fmt.Errorf("mogul: cannot delete the last live item")
	}
	st.dead[id] = true
	st.deadCount++
	if id < st.baseN {
		st.deadBase++
	}
	needCompact := e.needsCompactLocked()
	e.version.Add(1)
	e.mu.Unlock()

	if needCompact {
		if err := e.compactLocked(); err != nil {
			return fmt.Errorf("mogul: auto-compact after delete: %w", err)
		}
	}
	return nil
}

// needsCompactLocked applies the AutoCompactFraction policy: the
// pending delta is the items inserted since the base build plus the
// tombstones in the base. A deleted delta item must count once, not
// twice — it is already in the inserted-items term — or churny
// insert-then-delete workloads trip compaction at half the configured
// threshold. Callers hold e.mu (any mode) and e.mutMu.
func (e *EMRIndex) needsCompactLocked() bool {
	if e.autoCompact <= 0 {
		return false
	}
	st := e.st
	pending := (st.numPoints() - st.baseN) + st.deadBase
	return float64(pending) > e.autoCompact*float64(st.baseN)
}

// Compact folds the delta into a fresh base: k-means anchors, anchor
// attachment, and gram factorization re-run over the live points in id
// order (renumbering ids contiguously from zero, exactly as a fresh
// BuildEMR over those points — the rebuild is deterministic for the
// recorded seed). Searches proceed against the old state until the
// swap; mutators queue behind it.
func (e *EMRIndex) Compact() error {
	e.mutMu.Lock()
	defer e.mutMu.Unlock()
	return e.compactLocked()
}

// compactLocked is Compact with mutMu already held.
func (e *EMRIndex) compactLocked() error {
	e.mu.RLock()
	st := e.st
	n := st.numPoints()
	if n == st.baseN && st.deadCount == 0 {
		e.mu.RUnlock()
		return nil
	}
	wasF32 := st.f32()
	live := make([]Vector, 0, n-st.deadCount)
	for i := 0; i < n; i++ {
		if !st.dead[i] {
			live = append(live, st.pointVec(i))
		}
	}
	e.mu.RUnlock()

	// The heavy rebuild runs outside every lock; mutMu keeps the live
	// snapshot authoritative (no mutator can run until the swap). An
	// f32 engine rebuilds from its widened points (exact) in float64
	// and narrows the result, preserving the storage mode.
	fresh, err := buildEMRState(live, e.alpha, e.seed, e.eopts)
	if err != nil {
		return err
	}
	if wasF32 {
		fresh.narrow32()
	}
	e.mu.Lock()
	e.st = fresh
	e.version.Add(1)
	e.mu.Unlock()
	return nil
}

// --- The extended surface the distributed layer fans out over ---

// IDSpace returns the upper bound of the id space, tombstones
// included (ids of deleted items are retired until Compact renumbers).
func (e *EMRIndex) IDSpace() int {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.st.numPoints()
}

// Alive reports whether id addresses a live (non-deleted, in-range)
// item.
func (e *EMRIndex) Alive(id int) bool {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return id >= 0 && id < e.st.numPoints() && !e.st.dead[id]
}

// LogLen reports 0: the EMR engine keeps no replayable delta log, so
// followers replicate it by snapshot only.
func (e *EMRIndex) LogLen() int { return 0 }

// TopKWithVector is TopK plus the query item's stored vector and the
// engine's raw kernel affinity to it — what the distributed
// coordinator needs from the owner shard in one round trip to probe
// the remaining shards and scale their answers.
func (e *EMRIndex) TopKWithVector(query, k int) ([]Result, Vector, float64, error) {
	sr := e.acquire()
	defer e.release(sr)
	res, err := sr.TopK(query, k)
	if err != nil {
		return nil, nil, 0, err
	}
	e.mu.RLock()
	st := e.st
	if err := st.checkItem(query); err != nil {
		e.mu.RUnlock()
		return nil, nil, 0, err
	}
	qvec := append(Vector(nil), st.pointVec(query)...)
	_, _, aff := baseline.NearestAnchorWeights(qvec, st.anchors, st.s, &sr.sc, sr.wIdx[:0], sr.wVal[:0])
	e.mu.RUnlock()
	return res, qvec, aff, nil
}

// TopKVectorWithAffinity is TopKVector plus the engine's raw kernel
// affinity to the query (the unnormalized Epanechnikov mass of the
// anchor attachment), the same density proxy the sharded fan-out
// scales cross-shard merges with.
func (e *EMRIndex) TopKVectorWithAffinity(q Vector, k int) ([]Result, float64, error) {
	sr := e.acquire()
	defer e.release(sr)
	res, err := sr.TopKVector(q, k)
	if err != nil {
		return nil, 0, err
	}
	return res, sr.aff, nil
}

// TopKSetWeighted ranks items against seed items all carrying the
// given weight (the coordinator's cross-shard set query, where the
// global 1/len(seeds) is applied before the fan-out).
func (e *EMRIndex) TopKSetWeighted(seeds []int, weight float64, k int) ([]Result, error) {
	if len(seeds) == 0 {
		return nil, fmt.Errorf("mogul: TopKSetWeighted needs at least one seed item")
	}
	sr := e.acquire()
	defer e.release(sr)
	return sr.topKSetWeighted(seeds, weight, k)
}
