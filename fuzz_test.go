package mogul

import (
	"bytes"
	"sync"
	"testing"
)

// FuzzLoad feeds arbitrary bytes to the index loader. The contract
// under fuzz: Load never panics — corrupt, truncated, hostile, or
// version-skewed input must yield an error — and any input it does
// accept must produce an index that searches without panicking. Run
// the stored corpus on every `go test`; explore with
//
//	go test -fuzz FuzzLoad -fuzztime 30s .

// fuzzSeedIndex builds one small static and one dynamic index and
// returns their serialized forms; computed once, shared by seeds and
// target.
var fuzzSeedIndex = sync.OnceValues(func() ([]byte, []byte) {
	ds := NewMixture(MixtureConfig{
		N: 80, Classes: 4, Dim: 6, WithinStd: 0.3, Separation: 2.5, Seed: 7,
	})
	ix, err := Build(ds.Points[:70], Options{})
	if err != nil {
		panic(err)
	}
	var static bytes.Buffer
	if err := ix.Save(&static); err != nil {
		panic(err)
	}
	for _, p := range ds.Points[70:] {
		if _, err := ix.Insert(p); err != nil {
			panic(err)
		}
	}
	if err := ix.Delete(3); err != nil {
		panic(err)
	}
	if err := ix.Delete(71); err != nil {
		panic(err)
	}
	var dynamic bytes.Buffer
	if err := ix.Save(&dynamic); err != nil {
		panic(err)
	}
	return static.Bytes(), dynamic.Bytes()
})

func FuzzLoad(f *testing.F) {
	static, dynamic := fuzzSeedIndex()
	f.Add(static)
	f.Add(dynamic)
	f.Add(static[:len(static)/2])               // truncation
	f.Add(dynamic[:len(dynamic)-3])             // clipped checksum
	f.Add([]byte{})                             // empty
	f.Add([]byte("MOGULIDX"))                   // header only
	f.Add([]byte("GOBSTREAMthis was format 1")) // wrong magic
	mutated := append([]byte(nil), dynamic...)
	mutated[len(mutated)/3] ^= 0x5A // body corruption
	f.Add(mutated)
	versioned := append([]byte(nil), static...)
	versioned[8] = 0xFF // far-future version
	f.Add(versioned)

	f.Fuzz(func(t *testing.T, data []byte) {
		ix, err := Load(bytes.NewReader(data))
		if err != nil {
			return
		}
		if _, ok := ix.(*EMRIndex); ok {
			// EMR engines have no neighbour graph and their own fuzz
			// target (FuzzLoadEMR) with the matching contract.
			return
		}
		// Accepted input must behave: searches, dynamic ops and a
		// re-save all run without panicking.
		if ix.Len() <= 0 {
			t.Fatalf("loaded index has %d items", ix.Len())
		}
		if _, err := ix.TopK(0, 3); err != nil {
			t.Fatalf("loaded index cannot search: %v", err)
		}
		if _, _, err := ix.Neighbors(0); err != nil {
			t.Fatalf("loaded index cannot serve neighbours: %v", err)
		}
		var buf bytes.Buffer
		if err := ix.Save(&buf); err != nil {
			t.Fatalf("loaded index cannot re-save: %v", err)
		}
	})
}
