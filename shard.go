package mogul

// Sharded indexes: the scale lever past one precomputation.
//
// A single Mogul index is bounded by what one clustering + Cholesky
// factorization can hold; the paper's whole pitch is scaling Manifold
// Ranking past that. A ShardedIndex partitions the database into S
// disjoint shards, builds S independent per-shard indexes in parallel,
// and serves every query by fanning it out to all shards and merging
// the per-shard top-k lists into one global ranking:
//
//   - the shard that owns an in-database query answers with the normal
//     in-database search;
//   - every other shard answers through the out-of-sample machinery of
//     Section 4.6.2, with the query's feature vector as the probe —
//     both query forms carry unit mass, so their scores are directly
//     comparable in the merge;
//   - vector queries are out-of-sample everywhere, exactly as on a
//     single index.
//
// Because diffusion never crosses shard boundaries, sharded rankings
// are an approximation of the unsharded ones (see docs/SHARDING.md for
// the recall model and shard_test.go for the measured recall@10); with
// S = 1 they are bit-identical to a plain Index. The fan-out reuses
// the pooled query engine (one pinned Searcher per shard inside a
// ShardedSearcher), so a steady-state sharded TopK allocates S+1
// objects: the S per-shard result slices plus the merged output.
//
// Item ids are global and stable: Insert assigns the next free global
// id and routes the point to its owning shard (nearest k-means
// centroid, or the least-loaded shard under contiguous partitioning);
// Delete and Compact route the same way. Unlike a single Index —
// whose Compact renumbers ids after deletions — global ids survive
// shard compaction unchanged; the shard-local renumbering is absorbed
// by the id maps below.

import (
	"fmt"
	"math"
	"runtime"
	"slices"
	"sync"
	"sync/atomic"

	"mogul/internal/core"
	"mogul/internal/kmeans"
	"mogul/internal/topk"
	"mogul/internal/vec"
)

// Partitioner selects how BuildSharded splits the dataset.
type Partitioner int

const (
	// PartitionContiguous assigns equal contiguous input ranges to the
	// shards: shard s holds the points with ids in [s*n/S, (s+1)*n/S).
	// Ids are preserved verbatim, which makes this the partitioner of
	// choice when the input order already groups related items (and the
	// one whose S=1 case is trivially bit-identical to a plain Build).
	PartitionContiguous Partitioner = iota
	// PartitionKMeans clusters the points with k-means (k = S, seeded
	// by Options.Seed) so that each shard holds a geometrically
	// coherent region. Queries then find most of their manifold inside
	// one shard, which is what keeps sharded recall close to the
	// unsharded ranking; shards that would end up with fewer than two
	// points are topped up from their largest neighbour.
	PartitionKMeans
)

// ShardOptions configures BuildSharded.
type ShardOptions struct {
	// Shards is the shard count S; 0 or 1 builds a single shard.
	Shards int
	// Partitioner selects the dataset split (default contiguous).
	Partitioner Partitioner
	// Parallelism bounds the concurrent per-shard builds; <= 0 selects
	// GOMAXPROCS.
	Parallelism int
}

// shardLoc addresses one item inside the shard set: the owning shard
// and the item's shard-local id. shard < 0 marks a global id whose
// item was deleted and compacted away (the id is never reused).
type shardLoc struct {
	shard, local int
}

// ShardedIndex is a set of per-shard Mogul indexes behind one global
// id space, built by BuildSharded or LoadSharded. It serves the same
// query surface as Index (it implements Retriever) and is safe for
// concurrent use: searches fan out under a read lock while
// Insert/Delete/Compact maintain the id maps under the write lock.
type ShardedIndex struct {
	// mu guards locOf and l2g, and freezes them relative to the shard
	// states: fan-out searches hold it in read mode for the whole
	// query, and the two mutations that change the local<->global
	// correspondence (Insert's append, Compact's renumbering after
	// deletions) run under the write lock.
	mu sync.RWMutex
	// mutMu serializes mutators, mirroring Index.compactMu.
	mutMu sync.Mutex

	shards      []*Index
	part        Partitioner
	centroids   []Vector // k-means routing centroids; nil for contiguous
	autoCompact float64  // sharded-level auto-compaction fraction

	// locOf maps a global id to its owning shard and shard-local id;
	// l2g is the inverse, one dense table per shard covering the
	// shard's whole local id space (live and tombstoned slots alike).
	locOf []shardLoc
	l2g   [][]int

	// searchers recycles ShardedSearchers for the pool-based entry
	// points (TopK etc.), mirroring the per-Index scratch pool.
	searchers sync.Pool

	// version counts completed sharded mutations (Insert/Delete/
	// Compact), bumped only after both the shard state AND the id maps
	// are final. It deliberately is not the sum of the shard versions:
	// a shard bumps mid-Insert, before the global id maps cover the new
	// item, and a result cache stamping that intermediate value could
	// serve the map-less ranking as current. See Version.
	version atomic.Uint64
}

// BuildSharded partitions the dataset into sopts.Shards shards, builds
// the per-shard indexes in parallel, and returns the sharded index
// serving them behind one global id space. opts applies to every
// shard build, with one exception: AutoCompactFraction is enforced at
// the sharded layer (which must renumber its id maps around a
// compaction), never inside a shard.
func BuildSharded(points []Vector, opts Options, sopts ShardOptions) (*ShardedIndex, error) {
	s := sopts.Shards
	if s <= 0 {
		s = 1
	}
	if len(points) < 2*s {
		return nil, fmt.Errorf("mogul: %d shards need at least %d points, got %d", s, 2*s, len(points))
	}
	assign, centroids, err := partitionPoints(points, s, sopts.Partitioner, opts.Seed)
	if err != nil {
		return nil, fmt.Errorf("mogul: partitioning: %w", err)
	}
	members := make([][]int, s)
	for g, sh := range assign {
		members[sh] = append(members[sh], g)
	}

	// Shards never auto-compact on their own: a shard-internal
	// compaction after deletions would renumber local ids behind the
	// sharded layer's back. The fraction moves up a level instead.
	shardOpts := opts
	shardOpts.AutoCompactFraction = 0
	// Pin one heat-kernel bandwidth across all shards: each shard
	// deriving sigma from its own (partition-restricted) neighbour
	// distances makes every shard score on a slightly different kernel,
	// which measurably distorts the merged ranking against the
	// unsharded one. Estimated once over the full dataset, exactly as
	// a single build would derive it. S = 1 keeps the derived value —
	// one shard over everything IS the single build, bit for bit.
	if s > 1 && shardOpts.Sigma == 0 {
		k := shardOpts.GraphK
		if k <= 0 {
			k = 5
		}
		shardOpts.Sigma = EstimateSigma(points, k)
	}

	shards := make([]*Index, s)
	errs := make([]error, s)
	workers := sopts.Parallelism
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > s {
		workers = s
	}
	next := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for sh := range next {
				pts := make([]Vector, len(members[sh]))
				for i, g := range members[sh] {
					pts[i] = points[g]
				}
				shards[sh], errs[sh] = Build(pts, shardOpts)
			}
		}()
	}
	for sh := 0; sh < s; sh++ {
		next <- sh
	}
	close(next)
	wg.Wait()
	for sh, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("mogul: building shard %d: %w", sh, err)
		}
	}

	six := &ShardedIndex{
		shards:      shards,
		part:        sopts.Partitioner,
		centroids:   centroids,
		autoCompact: opts.AutoCompactFraction,
		locOf:       make([]shardLoc, len(points)),
		l2g:         members,
	}
	for sh, m := range members {
		for local, g := range m {
			six.locOf[g] = shardLoc{shard: sh, local: local}
		}
	}
	six.version.Store(1)
	return six, nil
}

// EstimateSigma estimates the heat-kernel bandwidth a single Build
// would derive over the dataset — the standard deviation of all
// k-nearest-neighbour distances — from a deterministic sample of up to
// 512 points (each sample's exact k-NN is found over the full
// dataset). BuildSharded pins this estimate across its shards so every
// shard weighs edges on the same kernel; it is exported so tests and
// tools can construct reference indexes on the identical bandwidth.
func EstimateSigma(points []Vector, k int) float64 {
	const maxSample = 512
	n := len(points)
	m := n
	if m > maxSample {
		m = maxSample
	}
	// The sample rows are independent O(n·dim) scans — parallelize
	// them so the estimate never becomes the serial prefix of an
	// otherwise parallel sharded build.
	dists := make([]float64, m*k)
	counts := make([]int, m)
	workers := runtime.GOMAXPROCS(0)
	if workers > m {
		workers = m
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			coll := topk.New(k)
			for si := range next {
				i := si * n / m
				coll.Reset(k)
				for j, p := range points {
					if j == i {
						continue
					}
					// Negated squared distances: "largest score"
					// selects the nearest, as the k-NN searchers do.
					coll.Offer(j, -vec.SquaredEuclidean(points[i], p))
				}
				drained := coll.Drain()
				for t, it := range drained {
					dists[si*k+t] = math.Sqrt(-it.Score)
				}
				counts[si] = len(drained)
			}
		}()
	}
	for si := 0; si < m; si++ {
		next <- si
	}
	close(next)
	wg.Wait()
	// Compact out the unfilled tail slots of rows with fewer than k
	// other points (tiny datasets), keeping every real distance —
	// zeros from duplicate points included, as BuildGraph's own
	// derivation does.
	filled := dists[:0]
	for si, c := range counts {
		filled = append(filled, dists[si*k:si*k+c]...)
	}
	sigma := vec.Stddev(filled)
	if sigma <= 0 {
		// Degenerate data (all sampled points identical): any positive
		// bandwidth yields weight 1 on every edge (BuildGraph's own
		// fallback).
		sigma = 1
	}
	return sigma
}

// partitionPoints computes the shard assignment (and, for k-means, the
// routing centroids) for s shards. Every shard is guaranteed at least
// two points, the Build minimum.
func partitionPoints(points []Vector, s int, p Partitioner, seed int64) ([]int, []Vector, error) {
	n := len(points)
	switch p {
	case PartitionContiguous:
		assign := make([]int, n)
		for i := range assign {
			assign[i] = i * s / n
		}
		return assign, nil, nil
	case PartitionKMeans:
		km, err := kmeans.Run(points, kmeans.Config{K: s, Seed: seed})
		if err != nil {
			return nil, nil, err
		}
		assign := km.Assign
		counts := make([]int, s)
		for _, a := range assign {
			counts[a]++
		}
		// Top up degenerate shards (k-means can leave a cluster with 0
		// or 1 members) from the largest shard, moving the donor point
		// nearest to the starved centroid. n >= 2s guarantees a donor
		// with more than two points exists while any shard is short.
		for sh := 0; sh < s; sh++ {
			for counts[sh] < 2 {
				donor := -1
				for d := 0; d < s; d++ {
					if d != sh && counts[d] > 2 && (donor < 0 || counts[d] > counts[donor]) {
						donor = d
					}
				}
				if donor < 0 {
					return nil, nil, fmt.Errorf("cannot give every one of %d shards 2 of %d points", s, n)
				}
				best, bestD := -1, 0.0
				for i, a := range assign {
					if a != donor {
						continue
					}
					if d := vec.SquaredEuclidean(points[i], km.Centroids[sh]); best < 0 || d < bestD {
						best, bestD = i, d
					}
				}
				assign[best] = sh
				counts[sh]++
				counts[donor]--
			}
		}
		return assign, km.Centroids, nil
	default:
		return nil, nil, fmt.Errorf("unknown partitioner %d", p)
	}
}

// locate resolves a global id. Callers hold mu (any mode) or mutMu.
func (six *ShardedIndex) locate(id int) (shardLoc, error) {
	if id < 0 || id >= len(six.locOf) {
		return shardLoc{}, fmt.Errorf("mogul: item %d outside [0,%d)", id, len(six.locOf))
	}
	loc := six.locOf[id]
	if loc.shard < 0 {
		return shardLoc{}, fmt.Errorf("mogul: item %d is deleted", id)
	}
	return loc, nil
}

// NumShards returns the shard count S (fixed for the index lifetime).
func (six *ShardedIndex) NumShards() int { return len(six.shards) }

// ShardLens returns the live item count of every shard — the balance
// the partitioner achieved.
func (six *ShardedIndex) ShardLens() []int {
	out := make([]int, len(six.shards))
	for s, sh := range six.shards {
		out[s] = sh.Len()
	}
	return out
}

// Len returns the number of live items across all shards.
func (six *ShardedIndex) Len() int {
	total := 0
	for _, sh := range six.shards {
		total += sh.Len()
	}
	return total
}

// Exact reports whether the shards serve exact Manifold Ranking scores
// (MogulE); every shard is built with the same options.
func (six *ShardedIndex) Exact() bool { return six.shards[0].Exact() }

// Version returns the sharded index's monotonic mutation version,
// mirroring Index.Version: it starts at 1 and increases on every
// completed Insert, Delete, and Compact. The bump lands only once the
// mutation is fully visible — shard state and global id maps both —
// so version-stamped caches never capture the transient window where a
// shard already answers with an item the maps cannot yet name.
func (six *ShardedIndex) Version() uint64 { return six.version.Load() }

// Stats aggregates construction statistics across shards: counts and
// times sum, modularity is the node-weighted mean.
func (six *ShardedIndex) Stats() Stats {
	var out Stats
	var wmod float64
	for _, sh := range six.shards {
		st := sh.Stats()
		out.NumNodes += st.NumNodes
		out.NumEdges += st.NumEdges
		out.NumClusters += st.NumClusters
		out.BorderSize += st.BorderSize
		out.FactorNNZ += st.FactorNNZ
		out.ClampedPivots += st.ClampedPivots
		out.ClusterTime += st.ClusterTime
		out.PermuteTime += st.PermuteTime
		out.FactorTime += st.FactorTime
		wmod += st.Modularity * float64(st.NumNodes)
	}
	if out.NumNodes > 0 {
		out.Modularity = wmod / float64(out.NumNodes)
	}
	return out
}

// Delta aggregates the dynamic state across shards.
func (six *ShardedIndex) Delta() DeltaStats {
	var out DeltaStats
	for _, sh := range six.shards {
		d := sh.Delta()
		out.BaseItems += d.BaseItems
		out.DeltaItems += d.DeltaItems
		out.Tombstones += d.Tombstones
	}
	return out
}

// Neighbors returns an item's graph context inside its owning shard,
// remapped to global ids. Edges never cross shards, so the neighbour
// list of a boundary item reflects the shard's view of the manifold,
// not the global one.
func (six *ShardedIndex) Neighbors(item int) (ids []int, weights []float64, err error) {
	six.mu.RLock()
	defer six.mu.RUnlock()
	loc, err := six.locate(item)
	if err != nil {
		return nil, nil, err
	}
	ids, weights, err = six.shards[loc.shard].Neighbors(loc.local)
	if err != nil {
		return nil, nil, fmt.Errorf("mogul: item %d (shard %d): %w", item, loc.shard, err)
	}
	l2g := six.l2g[loc.shard]
	for i, local := range ids {
		ids[i] = l2g[local]
	}
	return ids, weights, nil
}

// ShardedSearcher is the per-worker reusable query engine of a
// ShardedIndex: it pins one Searcher (and therefore one scratch
// workspace) to every shard plus the merge buffers, so a steady-state
// fan-out search allocates only the S per-shard result slices and the
// merged output. Not safe for concurrent use — one per goroutine.
type ShardedSearcher struct {
	six *ShardedIndex
	srs []*Searcher

	// Merge scratch: items backs the remapped per-shard candidate
	// lists; merged receives the k-way merge; seeds expands TopKSet;
	// resBuf/affBuf stage per-shard results and affinities when every
	// shard must answer before the scales are known (TopKVector).
	merger topk.Merger
	lists  [][]topk.Item
	items  []topk.Item
	merged []topk.Item
	seeds  []core.WeightedQuery
	resBuf [][]Result
	affBuf []float64
	info   SearchInfo
}

// NewSearcher returns a dedicated reusable fan-out query engine.
func (six *ShardedIndex) NewSearcher() *ShardedSearcher {
	srs := make([]*Searcher, len(six.shards))
	for s, sh := range six.shards {
		srs[s] = sh.NewSearcher()
	}
	return &ShardedSearcher{six: six, srs: srs, lists: make([][]topk.Item, len(six.shards))}
}

// acquire borrows a pooled ShardedSearcher for one query; pair with
// release. The pool-based ShardedIndex methods use this so plain calls
// stay allocation-free in steady state, like the Index ones.
func (six *ShardedIndex) acquire() *ShardedSearcher {
	if ss, ok := six.searchers.Get().(*ShardedSearcher); ok {
		return ss
	}
	return six.NewSearcher()
}

func (six *ShardedIndex) release(ss *ShardedSearcher) { six.searchers.Put(ss) }

// resetLists readies the merge scratch for a new query.
func (ss *ShardedSearcher) resetLists() {
	ss.items = ss.items[:0]
	for s := range ss.lists {
		ss.lists[s] = nil
	}
	ss.info = SearchInfo{}
}

// addList remaps one shard's ranked results to global ids, scales the
// scores by the shard's affinity weight, and records them as a merge
// input. Within-shard order is (score desc, local id asc); the
// local->global remap need not be monotone (k-means partitions), so
// the list is re-sorted into the global order the merger expects
// (scaling by a non-negative factor preserves within-list score
// order). Appends may grow the flat backing buffer; earlier lists keep
// pointing at the old backing array, whose contents stay valid for the
// rest of the query.
func (ss *ShardedSearcher) addList(s int, res []Result, scale float64) {
	l2g := ss.six.l2g[s]
	start := len(ss.items)
	for _, r := range res {
		if r.Node >= len(l2g) {
			// An insert that landed in the shard but has not reached
			// the id maps yet (Insert appends them right after, under
			// the write lock this search excludes): skip it for this
			// query — its global id has not even been returned to the
			// inserter.
			continue
		}
		ss.items = append(ss.items, topk.Item{ID: l2g[r.Node], Score: scale * r.Score})
	}
	list := ss.items[start:]
	sortItems(list)
	ss.lists[s] = list
}

// relativeAffinity prices a non-owning shard's contribution against
// the owner's own kernel affinity: min(1, aff/own). A degenerate owner
// affinity (underflow to 0) falls back to the absolute affinity.
func relativeAffinity(aff, own float64) float64 {
	if own <= 0 {
		return aff
	}
	if aff >= own {
		return 1
	}
	return aff / own
}

// sortItems sorts a candidate list by the global ranking order
// (score descending, ties by ascending global id) in place.
func sortItems(items []topk.Item) {
	slices.SortFunc(items, func(a, b topk.Item) int {
		switch {
		case topk.Better(a, b):
			return -1
		case topk.Better(b, a):
			return 1
		default:
			return 0
		}
	})
}

// finish merges the per-shard lists into the global top-k and
// materializes the returned results — the one output allocation.
func (ss *ShardedSearcher) finish(k int) []Result {
	ss.merged = ss.merger.Merge(ss.merged, k, ss.lists...)
	out := make([]Result, len(ss.merged))
	for i, it := range ss.merged {
		out[i] = Result{Node: it.ID, Score: it.Score}
	}
	return out
}

// TopK ranks all shards against an in-database query item (global id):
// the owning shard runs the normal in-database search, every other
// shard scores the query's feature vector through the out-of-sample
// path, and the per-shard top-k lists merge into one global ranking.
func (ss *ShardedSearcher) TopK(query, k int) ([]Result, error) {
	res, _, err := ss.topK(query, k, false)
	return res, err
}

// TopKWithInfo is TopK plus work counters summed across shards.
func (ss *ShardedSearcher) TopKWithInfo(query, k int) ([]Result, *SearchInfo, error) {
	res, info, err := ss.topK(query, k, true)
	if err != nil {
		return nil, nil, err
	}
	return res, info, nil
}

func (ss *ShardedSearcher) topK(query, k int, wantInfo bool) ([]Result, *SearchInfo, error) {
	six := ss.six
	six.mu.RLock()
	defer six.mu.RUnlock()
	if k <= 0 {
		return nil, nil, fmt.Errorf("mogul: K must be positive, got %d", k)
	}
	loc, err := six.locate(query)
	if err != nil {
		return nil, nil, err
	}
	owner := six.shards[loc.shard]
	ss.resetLists()

	// The owning shard answers at full weight. Every other shard's
	// out-of-sample answers are scaled by its raw kernel affinity to
	// the query relative to the owner's own (its per-shard scores are
	// normalized to unit query mass and would otherwise merge at face
	// value): a shard the query is far from contributes ~nothing, a
	// shard just across a partition boundary competes near par.
	res, err := ss.srs[loc.shard].TopK(loc.local, k)
	if err != nil {
		return nil, nil, fmt.Errorf("mogul: item %d (shard %d): %w", query, loc.shard, err)
	}
	ss.addList(loc.shard, res, 1)
	if wantInfo {
		ss.accumulateInfo(loc.shard)
	}
	if len(six.shards) > 1 {
		// The query's stored vector probes the non-owning shards.
		qvec, err := owner.core.Point(loc.local)
		if err != nil {
			return nil, nil, fmt.Errorf("mogul: item %d (shard %d): %w", query, loc.shard, err)
		}
		srOwn := ss.srs[loc.shard]
		ownAff, err := owner.core.SurrogateAffinity(&srOwn.s, qvec)
		if err != nil {
			return nil, nil, fmt.Errorf("mogul: item %d (shard %d): %w", query, loc.shard, err)
		}
		for s := range six.shards {
			if s == loc.shard {
				continue
			}
			res, err := ss.srs[s].TopKVector(qvec, k)
			if err != nil {
				return nil, nil, fmt.Errorf("mogul: item %d (shard %d): %w", query, s, err)
			}
			ss.addList(s, res, relativeAffinity(ss.srs[s].s.OOSAffinity(), ownAff))
			if wantInfo {
				ss.accumulateInfo(s)
			}
		}
	}
	out := ss.finish(k)
	if !wantInfo {
		return out, nil, nil
	}
	info := ss.info
	return out, &info, nil
}

// accumulateInfo folds shard s's per-query work counters into the
// fan-out totals.
func (ss *ShardedSearcher) accumulateInfo(s int) {
	info := ss.srs[s].s.Info()
	ss.info.ClustersPruned += info.ClustersPruned
	ss.info.ClustersScanned += info.ClustersScanned
	ss.info.ScoresComputed += info.ScoresComputed
}

// TopKVector ranks all shards against an out-of-sample query vector
// and merges. Each shard's contribution is scaled by its raw kernel
// affinity to the query relative to the best shard's, so the shards
// holding the query's region dominate the merge the way they dominate
// the unsharded ranking; when every shard is equally remote (all
// affinities underflow to 0) the lists merge unscaled.
func (ss *ShardedSearcher) TopKVector(q Vector, k int) ([]Result, error) {
	six := ss.six
	six.mu.RLock()
	defer six.mu.RUnlock()
	if k <= 0 {
		return nil, fmt.Errorf("mogul: K must be positive, got %d", k)
	}
	ss.resetLists()
	if cap(ss.resBuf) < len(six.shards) {
		ss.resBuf = make([][]Result, len(six.shards))
		ss.affBuf = make([]float64, len(six.shards))
	}
	resBuf, affBuf := ss.resBuf[:len(six.shards)], ss.affBuf[:len(six.shards)]
	maxAff := 0.0
	for s := range six.shards {
		res, err := ss.srs[s].TopKVector(q, k)
		if err != nil {
			return nil, fmt.Errorf("mogul: shard %d: %w", s, err)
		}
		resBuf[s] = res
		affBuf[s] = ss.srs[s].s.OOSAffinity()
		if affBuf[s] > maxAff {
			maxAff = affBuf[s]
		}
	}
	for s := range six.shards {
		scale := 1.0
		if maxAff > 0 {
			scale = affBuf[s] / maxAff
		}
		ss.addList(s, resBuf[s], scale)
		resBuf[s] = nil
	}
	return ss.finish(k), nil
}

// TopKSet ranks items against a set of seed items with equal weights.
// Each shard is searched with the seeds it owns, every seed weighted
// 1/len(seeds) so query mass is consistent across the fan-out; shards
// owning no seed contribute nothing (diffusion cannot reach them —
// the set-query recall trade-off of sharding, see docs/SHARDING.md).
func (ss *ShardedSearcher) TopKSet(seeds []int, k int) ([]Result, error) {
	six := ss.six
	six.mu.RLock()
	defer six.mu.RUnlock()
	if len(seeds) == 0 {
		return nil, fmt.Errorf("mogul: TopKSet needs at least one seed item")
	}
	if k <= 0 {
		return nil, fmt.Errorf("mogul: K must be positive, got %d", k)
	}
	ss.resetLists()
	w := 1 / float64(len(seeds))
	for s := range six.shards {
		ss.seeds = ss.seeds[:0]
		for _, seed := range seeds {
			loc, err := six.locate(seed)
			if err != nil {
				return nil, err
			}
			if loc.shard == s {
				ss.seeds = append(ss.seeds, core.WeightedQuery{Node: loc.local, Weight: w})
			}
		}
		if len(ss.seeds) == 0 {
			continue
		}
		sr := ss.srs[s]
		res, _, err := sr.ix.core.SearchMultiScratch(&sr.s, ss.seeds, core.SearchOptions{K: k})
		if err != nil {
			return nil, fmt.Errorf("mogul: shard %d: %w", s, err)
		}
		ss.addList(s, res, 1)
	}
	return ss.finish(k), nil
}

// TopK is ShardedSearcher.TopK on a pooled fan-out workspace.
func (six *ShardedIndex) TopK(query, k int) ([]Result, error) {
	ss := six.acquire()
	defer six.release(ss)
	return ss.TopK(query, k)
}

// TopKWithInfo is TopK plus work counters summed across shards.
func (six *ShardedIndex) TopKWithInfo(query, k int) ([]Result, *SearchInfo, error) {
	ss := six.acquire()
	defer six.release(ss)
	return ss.TopKWithInfo(query, k)
}

// TopKVector is ShardedSearcher.TopKVector on a pooled workspace.
func (six *ShardedIndex) TopKVector(q Vector, k int) ([]Result, error) {
	ss := six.acquire()
	defer six.release(ss)
	return ss.TopKVector(q, k)
}

// TopKSet is ShardedSearcher.TopKSet on a pooled workspace.
func (six *ShardedIndex) TopKSet(seeds []int, k int) ([]Result, error) {
	ss := six.acquire()
	defer six.release(ss)
	return ss.TopKSet(seeds, k)
}

// TopKBatch answers many in-database queries concurrently, one pinned
// ShardedSearcher per worker, mirroring Index.TopKBatch.
func (six *ShardedIndex) TopKBatch(queries []int, k, parallelism int) []BatchResult {
	return runBatch(len(queries), parallelism, func() func(int) BatchResult {
		ss := six.NewSearcher()
		return func(i int) BatchResult {
			q := queries[i]
			res, err := ss.TopK(q, k)
			return BatchResult{Query: q, Results: res, Err: err}
		}
	})
}

// TopKVectorBatch answers many out-of-sample queries concurrently,
// mirroring Index.TopKVectorBatch.
func (six *ShardedIndex) TopKVectorBatch(queries []Vector, k, parallelism int) []BatchResult {
	return runBatch(len(queries), parallelism, func() func(int) BatchResult {
		ss := six.NewSearcher()
		return func(i int) BatchResult {
			res, err := ss.TopKVector(queries[i], k)
			return BatchResult{Query: i, Results: res, Err: err}
		}
	})
}

// routeInsert picks the owning shard for a new point: the nearest
// k-means centroid, or — under contiguous partitioning, whose ranges
// carry no geometry — the shard with the fewest live items (lowest id
// wins ties), which keeps the fan-out balanced. Callers hold mutMu.
func (six *ShardedIndex) routeInsert(v Vector) int {
	if six.part == PartitionKMeans && len(six.centroids) == len(six.shards) {
		best, bestD := 0, vec.SquaredEuclidean(v, six.centroids[0])
		for s := 1; s < len(six.centroids); s++ {
			if d := vec.SquaredEuclidean(v, six.centroids[s]); d < bestD {
				best, bestD = s, d
			}
		}
		return best
	}
	best := 0
	for s := 1; s < len(six.shards); s++ {
		if six.shards[s].Len() < six.shards[best].Len() {
			best = s
		}
	}
	return best
}

// Insert adds a new point to its owning shard and returns its global
// id. The point is immediately searchable through every fan-out path.
// Global ids are stable: they survive shard compaction (only the
// internal shard-local ids renumber). When Options.AutoCompactFraction
// was set at build time, an insert that pushes the owning shard's
// pending delta past the fraction triggers a compaction of that shard
// alone.
func (six *ShardedIndex) Insert(v Vector) (int, error) {
	six.mutMu.Lock()
	defer six.mutMu.Unlock()
	s := six.routeInsert(v)

	// The shard insert (surrogate selection, delta append) runs
	// outside the fan-out lock so searches on the other S-1 shards
	// never stall behind it; only the id-map appends take the write
	// lock. In the window between the two, a search can already see
	// the new item in the shard's answers with a local id the maps do
	// not cover yet — addList drops such items for that one query (the
	// caller has not even received the global id).
	local, err := six.shards[s].Insert(v)
	if err != nil {
		return 0, err
	}
	six.mu.Lock()
	g := len(six.locOf)
	six.locOf = append(six.locOf, shardLoc{shard: s, local: local})
	six.l2g[s] = append(six.l2g[s], g)
	six.mu.Unlock()

	if six.autoCompact > 0 {
		d := six.shards[s].Delta()
		if float64(d.DeltaItems+d.Tombstones) > six.autoCompact*float64(d.BaseItems) {
			// Mirrors the single-index auto path: the insert has already
			// succeeded, so a compaction failure is deferred to an
			// explicit Compact rather than failing the insert.
			_, _ = six.compactShardLocked(s)
		}
	}
	six.version.Add(1)
	return g, nil
}

// Delete tombstones an item in its owning shard. Like Index.Delete,
// deleting an unknown or already-deleted id is an error, and every
// shard must keep at least one live item.
func (six *ShardedIndex) Delete(id int) error {
	six.mutMu.Lock()
	defer six.mutMu.Unlock()
	loc, err := six.locate(id)
	if err != nil {
		return err
	}
	if err := six.shards[loc.shard].Delete(loc.local); err != nil {
		return fmt.Errorf("mogul: item %d (shard %d): %w", id, loc.shard, err)
	}
	six.version.Add(1)
	return nil
}

// Compact folds every shard's delta layer into a fresh per-shard base
// build. Global ids are preserved; shard-local renumbering after
// deletions is absorbed into the id maps. Insert-only shards compact
// without blocking searches; a shard with tombstones holds the
// fan-out write lock for its rebuild, so searches pause for that
// shard's compaction.
func (six *ShardedIndex) Compact() error {
	six.mutMu.Lock()
	defer six.mutMu.Unlock()
	for s := range six.shards {
		if _, err := six.compactShardLocked(s); err != nil {
			return fmt.Errorf("mogul: compacting shard %d: %w", s, err)
		}
	}
	return nil
}

// compactShardLocked compacts one shard and maintains the id maps,
// reporting whether the shard had anything to fold in. The version
// bump happens HERE, per shard, the moment that shard's swap is
// visible — not once at the end of the whole Compact — because each
// swap changes answers (a folded-in delta item scores through real
// graph edges instead of surrogates) and a version-stamped cache must
// never serve pre-swap answers as current while the remaining shards
// rebuild, nor when a later shard's rebuild fails. Callers hold mutMu.
func (six *ShardedIndex) compactShardLocked(s int) (bool, error) {
	sh := six.shards[s]
	d := sh.Delta()
	if d.DeltaItems == 0 && d.Tombstones == 0 {
		return false, nil
	}
	if d.Tombstones == 0 {
		// Insert-only: shard compaction preserves local ids bit for bit
		// (Compact's determinism guarantee), so the id maps stay valid
		// and searches keep running throughout the rebuild.
		if err := sh.Compact(); err != nil {
			return false, err
		}
		six.version.Add(1)
		return true, nil
	}
	// Tombstones renumber local ids. Snapshot liveness first (mutators
	// are serialized, searches cannot change it), then rebuild under
	// the fan-out write lock so no search can pair the new shard state
	// with the old maps.
	space := sh.core.IDSpace()
	alive := make([]bool, space)
	for i := range alive {
		alive[i] = sh.core.Alive(i)
	}
	six.mu.Lock()
	defer six.mu.Unlock()
	if err := sh.Compact(); err != nil {
		return false, err
	}
	old := six.l2g[s]
	j := 0
	for local, g := range old {
		if local < len(alive) && alive[local] {
			// Live items keep their relative order through Compact.
			old[j] = g
			six.locOf[g] = shardLoc{shard: s, local: j}
			j++
		} else {
			// The global id of a compacted-away item is retired forever.
			six.locOf[g] = shardLoc{shard: -1, local: -1}
		}
	}
	six.l2g[s] = old[:j]
	// Still under the fan-out write lock: searches observe the new
	// shard state and the new version together.
	six.version.Add(1)
	return true, nil
}
