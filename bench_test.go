package mogul

// One benchmark per table/figure of the paper's evaluation
// (Section 5). The mogul-bench command runs the same experiments at
// larger scales with full report tables; these testing.B benches keep
// every experiment reproducible straight from `go test -bench`.
//
// Where a figure reports quality rather than time (Figures 2, 3, the
// Figure 6 factor sizes, Table 2's phase split), the benchmark attaches
// the quantity via b.ReportMetric, so the -bench output contains the
// figure's numbers alongside ns/op.

import (
	"fmt"
	"sync"
	"testing"

	"mogul/internal/baseline"
	"mogul/internal/core"
	"mogul/internal/dataset"
	"mogul/internal/eval"
	"mogul/internal/knn"
	"mogul/internal/vec"
)

// benchSizes are deliberately small: the benches demonstrate shape
// (who wins, how costs scale), while cmd/mogul-bench handles the
// paper-scale runs.
var benchDatasets = []struct {
	name string
	gen  func() *vec.Dataset
}{
	{"COIL", func() *vec.Dataset {
		return dataset.COILSim(dataset.COILConfig{Objects: 20, Poses: 72, Dim: 32, Seed: 1})
	}},
	{"PubFig", func() *vec.Dataset { return dataset.PubFigSim(2500, 2) }},
	{"NUS", func() *vec.Dataset { return dataset.NUSWideSim(3500, 3) }},
	{"INRIA", func() *vec.Dataset { return dataset.INRIASim(5000, 4) }},
}

type benchFixture struct {
	ds    *vec.Dataset
	graph *knn.Graph
	index *core.Index
	exact *core.Index
}

var (
	fixturesMu sync.Mutex
	fixtures   = map[string]*benchFixture{}
)

func fixture(b *testing.B, name string) *benchFixture {
	b.Helper()
	fixturesMu.Lock()
	defer fixturesMu.Unlock()
	if f, ok := fixtures[name]; ok {
		return f
	}
	var gen func() *vec.Dataset
	for _, d := range benchDatasets {
		if d.name == name {
			gen = d.gen
		}
	}
	if gen == nil {
		b.Fatalf("unknown bench dataset %q", name)
	}
	ds := gen()
	g, err := knn.BuildGraph(ds.Points, knn.GraphConfig{K: 5})
	if err != nil {
		b.Fatal(err)
	}
	ix, err := core.NewIndex(g, core.Options{})
	if err != nil {
		b.Fatal(err)
	}
	exact, err := core.NewIndex(g, core.Options{Exact: true})
	if err != nil {
		b.Fatal(err)
	}
	f := &benchFixture{ds: ds, graph: g, index: ix, exact: exact}
	fixtures[name] = f
	return f
}

func benchQueries(n, count int) []int {
	out := make([]int, count)
	for i := range out {
		out[i] = (i*2654435761 + 17) % n
	}
	return out
}

// BenchmarkFig1SearchTime reproduces Figure 1: per-query top-k search
// time of Mogul(k) and every baseline on each dataset. The Inverse
// baseline runs only on COIL (O(n^3) per query, as in the paper).
func BenchmarkFig1SearchTime(b *testing.B) {
	for _, d := range benchDatasets {
		f := fixture(b, d.name)
		queries := benchQueries(f.graph.Len(), 64)

		for _, k := range []int{5, 10, 15, 20} {
			b.Run(fmt.Sprintf("%s/Mogul-k%d", d.name, k), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := f.index.TopK(queries[i%len(queries)], k); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
		b.Run(d.name+"/EMR", func(b *testing.B) {
			emr, err := baseline.NewEMR(f.ds.Points, core.DefaultAlpha, baseline.EMRConfig{NumAnchors: 10, Seed: 1})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := emr.TopK(queries[i%len(queries)], 5); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(d.name+"/FMR", func(b *testing.B) {
			fmr, err := baseline.NewFMR(f.graph, core.DefaultAlpha, baseline.FMRConfig{
				NumBlocks: f.graph.Len() / 250, Rank: 250, Seed: 1,
			})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := fmr.TopK(queries[i%len(queries)], 5); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(d.name+"/Iterative", func(b *testing.B) {
			it, err := baseline.NewIterative(f.graph, core.DefaultAlpha)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := it.TopK(queries[i%len(queries)], 5); err != nil {
					b.Fatal(err)
				}
			}
		})
		if d.name == "COIL" {
			b.Run(d.name+"/Inverse", func(b *testing.B) {
				inv, err := baseline.NewInverse(f.graph, core.DefaultAlpha)
				if err != nil {
					b.Fatal(err)
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					inv.ResetCache() // the paper's per-query cost includes the O(n^3) solve
					if _, err := inv.TopK(queries[i%len(queries)], 5); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkFig234AnchorSweep reproduces Figures 2-4: EMR accuracy and
// search time as the anchor count d grows, against the flat Mogul and
// MogulE references. P@5 (Figure 2) and retrieval precision (Figure 3)
// are attached as custom metrics; ns/op is Figure 4.
func BenchmarkFig234AnchorSweep(b *testing.B) {
	f := fixture(b, "COIL")
	const k = 5
	queries := benchQueries(f.graph.Len(), 32)

	ref := make(map[int][]int, len(queries))
	for _, q := range queries {
		scores, err := f.exact.AllScores(q)
		if err != nil {
			b.Fatal(err)
		}
		ref[q] = eval.TopKFromScores(scores, k, nil)
	}

	report := func(b *testing.B, topk func(q int) []core.Result) {
		var patk, prec float64
		for _, q := range queries {
			ids := eval.TopKIDs(topk(q))
			patk += eval.PAtK(ids, ref[q])
			prec += eval.RetrievalPrecision(ids, f.ds.Labels, f.ds.Labels[q], q)
		}
		b.ReportMetric(patk/float64(len(queries)), "P@5")
		b.ReportMetric(prec/float64(len(queries)), "precision")
	}

	b.Run("Mogul", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := f.index.TopK(queries[i%len(queries)], k); err != nil {
				b.Fatal(err)
			}
		}
		report(b, func(q int) []core.Result {
			res, err := f.index.TopK(q, k)
			if err != nil {
				b.Fatal(err)
			}
			return res
		})
	})
	b.Run("MogulE", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := f.exact.TopK(queries[i%len(queries)], k); err != nil {
				b.Fatal(err)
			}
		}
		report(b, func(q int) []core.Result {
			res, err := f.exact.TopK(q, k)
			if err != nil {
				b.Fatal(err)
			}
			return res
		})
	})
	for _, d := range []int{10, 100, 1000} {
		b.Run(fmt.Sprintf("EMR-d%d", d), func(b *testing.B) {
			emr, err := baseline.NewEMR(f.ds.Points, core.DefaultAlpha, baseline.EMRConfig{NumAnchors: d, Seed: 1})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := emr.TopK(queries[i%len(queries)], k); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			report(b, func(q int) []core.Result {
				res, err := emr.TopK(q, k)
				if err != nil {
					b.Fatal(err)
				}
				return res
			})
		})
	}
}

// BenchmarkFig5Pruning reproduces Figure 5: full Mogul versus the
// "W/O estimation" and plain "Incomplete Cholesky" ablations.
func BenchmarkFig5Pruning(b *testing.B) {
	variants := []struct {
		label string
		opts  core.SearchOptions
	}{
		{"Mogul", core.SearchOptions{K: 5}},
		{"WithoutEstimation", core.SearchOptions{K: 5, DisablePruning: true}},
		{"IncompleteCholesky", core.SearchOptions{K: 5, FullSubstitution: true}},
	}
	for _, d := range benchDatasets {
		f := fixture(b, d.name)
		queries := benchQueries(f.graph.Len(), 64)
		for _, v := range variants {
			b.Run(d.name+"/"+v.label, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, _, err := f.index.Search(queries[i%len(queries)], v.opts); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkFig6FactorStructure reproduces Figure 6 quantitatively (the
// spy plots themselves come from mogul-bench -exp fig6). The incomplete
// factor's nnz is ordering-invariant (the pattern is W's), so the
// ordering's effect shows in the complete factor's fill-in; both are
// reported as custom metrics. The timed operation is the index build.
func BenchmarkFig6FactorStructure(b *testing.B) {
	variants := []struct {
		label string
		opts  core.Options
	}{
		{"Incomplete-MogulOrder", core.Options{}},
		{"Complete-MogulOrder", core.Options{Exact: true}},
		{"Complete-RandomOrder", core.Options{Exact: true, Ordering: core.OrderingRandom, Seed: 7}},
	}
	for _, d := range benchDatasets {
		f := fixture(b, d.name)
		for _, v := range variants {
			opts := v.opts
			b.Run(d.name+"/"+v.label, func(b *testing.B) {
				var nnz int
				for i := 0; i < b.N; i++ {
					ix, err := core.NewIndex(f.graph, opts)
					if err != nil {
						b.Fatal(err)
					}
					nnz = ix.Factor().NNZ()
				}
				b.ReportMetric(float64(nnz), "nnz(L)")
			})
		}
	}
}

// BenchmarkFig7OutOfSample reproduces Figure 7: out-of-sample query
// time, Mogul versus EMR.
func BenchmarkFig7OutOfSample(b *testing.B) {
	for _, d := range benchDatasets {
		full := fixture(b, d.name).ds
		in, queries, _, err := dataset.HoldOut(full, 0.02, 5)
		if err != nil {
			b.Fatal(err)
		}
		g, err := knn.BuildGraph(in.Points, knn.GraphConfig{K: 5})
		if err != nil {
			b.Fatal(err)
		}
		ix, err := core.NewIndex(g, core.Options{})
		if err != nil {
			b.Fatal(err)
		}
		emr, err := baseline.NewEMR(in.Points, core.DefaultAlpha, baseline.EMRConfig{NumAnchors: 10, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		b.Run(d.name+"/Mogul", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := ix.SearchOutOfSample(queries[i%len(queries)], core.OOSOptions{K: 5}); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(d.name+"/EMR", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := emr.TopKOutOfSample(queries[i%len(queries)], 5); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTable2Breakdown reproduces Table 2: the nearest-neighbour
// versus top-k phase split of Mogul's out-of-sample search, attached
// as custom metrics in milliseconds.
func BenchmarkTable2Breakdown(b *testing.B) {
	for _, d := range benchDatasets {
		full := fixture(b, d.name).ds
		in, queries, _, err := dataset.HoldOut(full, 0.02, 5)
		if err != nil {
			b.Fatal(err)
		}
		g, err := knn.BuildGraph(in.Points, knn.GraphConfig{K: 5})
		if err != nil {
			b.Fatal(err)
		}
		ix, err := core.NewIndex(g, core.Options{})
		if err != nil {
			b.Fatal(err)
		}
		b.Run(d.name, func(b *testing.B) {
			var nnMs, tkMs float64
			for i := 0; i < b.N; i++ {
				_, bd, err := ix.SearchOutOfSample(queries[i%len(queries)], core.OOSOptions{K: 5})
				if err != nil {
					b.Fatal(err)
				}
				nnMs += bd.NearestNeighbor.Seconds() * 1000
				tkMs += bd.TopK.Seconds() * 1000
			}
			b.ReportMetric(nnMs/float64(b.N), "nn-ms")
			b.ReportMetric(tkMs/float64(b.N), "topk-ms")
		})
	}
}

// BenchmarkFig8Precompute reproduces Figure 8: total precomputation
// time (clustering + permutation + factorization) under the Mogul
// ordering versus the random-order Incomplete Cholesky baseline.
func BenchmarkFig8Precompute(b *testing.B) {
	for _, d := range benchDatasets {
		f := fixture(b, d.name)
		b.Run(d.name+"/Mogul", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.NewIndex(f.graph, core.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(d.name+"/RandomOrderICF", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.NewIndex(f.graph, core.Options{Ordering: core.OrderingRandom, Seed: 7}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig9CaseStudy reproduces the Figure 9 comparison
// quantitatively: retrieval precision of Connected (plain k-NN), Mogul
// and EMR (d=100, the paper's case-study setting) on the COIL
// stand-in, attached as a custom metric.
func BenchmarkFig9CaseStudy(b *testing.B) {
	f := fixture(b, "COIL")
	const k = 4
	queries := benchQueries(f.graph.Len(), 32)
	emr, err := baseline.NewEMR(f.ds.Points, core.DefaultAlpha, baseline.EMRConfig{NumAnchors: 100, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}

	precision := func(topk func(q int) []int) float64 {
		var total float64
		for _, q := range queries {
			total += eval.RetrievalPrecision(topk(q), f.ds.Labels, f.ds.Labels[q], q)
		}
		return total / float64(len(queries))
	}

	b.Run("Connected", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			cols, _ := f.graph.Neighbors(queries[i%len(queries)])
			_ = cols
		}
		b.ReportMetric(precision(func(q int) []int {
			cols, _ := f.graph.Neighbors(q)
			if len(cols) > k {
				cols = cols[:k]
			}
			return cols
		}), "precision")
	})
	b.Run("Mogul", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := f.index.TopK(queries[i%len(queries)], k+1); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(precision(func(q int) []int {
			res, err := f.index.TopK(q, k+1)
			if err != nil {
				b.Fatal(err)
			}
			return eval.TopKIDs(res)
		}), "precision")
	})
	b.Run("EMR", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := emr.TopK(queries[i%len(queries)], k+1); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(precision(func(q int) []int {
			res, err := emr.TopK(q, k+1)
			if err != nil {
				b.Fatal(err)
			}
			return eval.TopKIDs(res)
		}), "precision")
	})
}

// bench10k builds the n=10k index shared by the hot-path benchmarks
// below (lazily, once), mirroring the fixture cache used for the
// figure benches.
func hotFixture10k(b *testing.B) *Index {
	b.Helper()
	fixturesMu.Lock()
	defer fixturesMu.Unlock()
	if ix, ok := fixtures10k["ix"]; ok {
		return ix
	}
	ds := dataset.Mixture(dataset.MixtureConfig{
		N: 10100, Classes: 25, Dim: 16, WithinStd: 0.3, Separation: 2.5, Seed: 11,
	})
	ix, err := Build(ds.Points[:10000], Options{})
	if err != nil {
		b.Fatal(err)
	}
	fixtures10k["ix"] = ix
	fixtures10kPool = ds.Points[10000:]
	return ix
}

var (
	fixtures10k     = map[string]*Index{}
	fixtures10kPool []Vector
)

// BenchmarkTopK is the headline hot-path benchmark of the pooled query
// engine at n=10k: steady-state in-database searches must report, with
// -benchmem, exactly one allocation per op — the returned []Result —
// where the pre-engine path allocated O(n) scratch per query (~190 KB
// and 24 allocs at this size). The ns/op, B/op and allocs/op triple is
// exported to BENCH_search.json by the CI bench-smoke job.
func BenchmarkTopK(b *testing.B) {
	ix := hotFixture10k(b)
	queries := benchQueries(10000, 64)
	b.Run("pooled", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := ix.TopK(queries[i%len(queries)], 10); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("searcher", func(b *testing.B) {
		sr := ix.NewSearcher()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := sr.TopK(queries[i%len(queries)], 10); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkTopKVector is BenchmarkTopK for the out-of-sample fast
// path (coarse quantizer + surrogate selection + pruned search), which
// the engine refactor also brought down to one allocation per query.
func BenchmarkTopKVector(b *testing.B) {
	ix := hotFixture10k(b)
	pool := fixtures10kPool
	sr := ix.NewSearcher()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sr.TopKVector(pool[i%len(pool)], 10); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkIndexBuild tracks end-to-end public-API build cost (not a
// paper figure; a regression guard for the library itself).
func BenchmarkIndexBuild(b *testing.B) {
	ds := dataset.Mixture(dataset.MixtureConfig{N: 2000, Classes: 20, Dim: 16, Seed: 9, Separation: 2})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Build(ds.Points, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkInsert measures one online insert into the delta layer:
// a nearest-cluster probe plus surrogate weighting — microseconds,
// versus the milliseconds-to-seconds a full rebuild would cost (see
// BenchmarkIndexBuild for the comparison point at n=2000).
func BenchmarkInsert(b *testing.B) {
	ds := dataset.Mixture(dataset.MixtureConfig{
		N: 4000, Classes: 10, Dim: 16, WithinStd: 0.3, Separation: 2.5, Seed: 9,
	})
	ix, err := Build(ds.Points[:2000], Options{})
	if err != nil {
		b.Fatal(err)
	}
	pool := ds.Points[2000:]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ix.Insert(pool[i%len(pool)]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTopKWithDelta measures the search-time cost of an
// uncompacted delta at 0/1/5/10% of the base size — the quantity that
// sets a sensible AutoCompactFraction (README "Dynamic updates").
func BenchmarkTopKWithDelta(b *testing.B) {
	ds := dataset.Mixture(dataset.MixtureConfig{
		N: 2200, Classes: 10, Dim: 16, WithinStd: 0.3, Separation: 2.5, Seed: 10,
	})
	const n = 2000
	for _, pct := range []int{0, 1, 5, 10} {
		b.Run(fmt.Sprintf("delta=%d%%", pct), func(b *testing.B) {
			ix, err := Build(ds.Points[:n], Options{})
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < n*pct/100; i++ {
				if _, err := ix.Insert(ds.Points[n+i]); err != nil {
					b.Fatal(err)
				}
			}
			queries := benchQueries(n, 64)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := ix.TopK(queries[i%len(queries)], 10); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTopKSharded measures the fan-out search across shard counts
// at n=10k: per-query latency of a held ShardedSearcher (S pinned
// per-shard workspaces, S+1 allocs/op). Exported to BENCH_search.json
// by the CI bench-smoke job alongside the single-index BenchmarkTopK.
func BenchmarkTopKSharded(b *testing.B) {
	ds := dataset.Mixture(dataset.MixtureConfig{
		N: 10000, Classes: 25, Dim: 16, WithinStd: 0.3, Separation: 2.5, Seed: 11,
	})
	queries := benchQueries(10000, 64)
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("S=%d", shards), func(b *testing.B) {
			six, err := BuildSharded(ds.Points, Options{}, ShardOptions{Shards: shards, Partitioner: PartitionKMeans})
			if err != nil {
				b.Fatal(err)
			}
			ss := six.NewSearcher()
			// Warm: size every shard's scratch and build the lazy
			// out-of-sample tables, so allocs/op reports steady state
			// even at CI's short -benchtime.
			if _, err := ss.TopK(queries[0], 10); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := ss.TopK(queries[i%len(queries)], 10); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
