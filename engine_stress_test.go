package mogul

// Stress test for the pooled query engine under concurrent mutation:
// searchers (both pool-backed Index methods and long-held Searchers)
// hammer the index while Insert/Delete/Compact churn the base
// underneath. Run under -race in CI, this proves the epoch-based
// scratch invalidation: a Scratch sized for a pre-compaction base must
// never touch post-compaction structures (or vice versa) without being
// re-acquired.

import (
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"mogul/internal/dataset"
)

func TestScratchPoolVsConcurrentCompact(t *testing.T) {
	ds := dataset.Mixture(dataset.MixtureConfig{
		N: 800, Classes: 8, Dim: 12, WithinStd: 0.3, Separation: 2.5, Seed: 33,
	})
	const base = 600
	ix, err := Build(ds.Points[:base], Options{})
	if err != nil {
		t.Fatal(err)
	}

	const (
		searchWorkers = 4
		queriesEach   = 300
		compactRounds = 8
	)
	var (
		wg       sync.WaitGroup
		searched atomic.Int64
		stop     atomic.Bool
	)

	// Held-Searcher workers: each keeps ONE scratch across every
	// query, including across the compactions below — the worst case
	// for stale-buffer bugs.
	for w := 0; w < searchWorkers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sr := ix.NewSearcher()
			for i := 0; i < queriesEach; i++ {
				q := (i*131 + w*17) % base
				res, err := sr.TopK(q, 10)
				if err != nil {
					// The query item may have been deleted by the mutator;
					// any other failure is a real bug (the live count never
					// drops below base, so ids in [0, base) stay in range
					// across every compaction).
					if !strings.Contains(err.Error(), "is deleted") {
						t.Errorf("TopK(%d): %v", q, err)
						return
					}
					continue
				}
				if len(res) == 0 {
					t.Error("empty result from live index")
					return
				}
				for _, r := range res {
					if r.Node < 0 {
						t.Errorf("negative node id %d", r.Node)
						return
					}
				}
				searched.Add(1)
			}
		}(w)
	}

	// Pool-path workers: plain Index methods, exercising scratch
	// hand-off through the internal sync.Pool while the epoch moves.
	for w := 0; w < searchWorkers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < queriesEach; i++ {
				if stop.Load() {
					return
				}
				if _, err := ix.TopKVector(ds.Points[base+(i+w)%(len(ds.Points)-base)], 5); err != nil {
					t.Errorf("TopKVector: %v", err)
					return
				}
				searched.Add(1)
			}
		}(w)
	}

	// Mutator: insert, delete, compact in a loop. Every Compact bumps
	// the engine epoch and swaps the base geometry under the searchers.
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer stop.Store(true)
		next := base
		for round := 0; round < compactRounds; round++ {
			for j := 0; j < 10; j++ {
				if _, err := ix.Insert(ds.Points[next%len(ds.Points)]); err != nil {
					t.Errorf("Insert: %v", err)
					return
				}
				next++
			}
			if err := ix.Delete(round * 7 % base); err != nil {
				// Already deleted in a previous round is fine.
				continue
			}
			if err := ix.Compact(); err != nil {
				t.Errorf("Compact: %v", err)
				return
			}
		}
	}()

	wg.Wait()
	if searched.Load() == 0 {
		t.Fatal("no searches completed")
	}
}
