// Package mogul is a pure-Go implementation of Mogul, the scalable
// top-k Manifold Ranking search system of Fujiwara, Irie, Kuroyama and
// Onizuka, "Scaling Manifold Ranking Based Image Retrieval", PVLDB
// 8(4), 2014.
//
// Manifold Ranking scores every item of a database against a query by
// diffusing relevance over a k-nearest-neighbour graph, which respects
// the manifold (cluster) structure of the data and therefore retrieves
// semantically similar items where plain nearest-neighbour search
// returns merely visually close ones. The exact computation needs an
// n x n matrix inverse — O(n^3) time, O(n^2) memory. Mogul reduces
// both to O(n) by permuting the graph with a modularity clustering,
// factorizing the system matrix with an incomplete Cholesky
// factorization, and pruning whole clusters during search with
// provable upper bounds; an exact mode (MogulE) swaps in a complete
// sparse factorization.
//
// Typical use:
//
//	idx, err := mogul.Build(points, mogul.Options{GraphK: 5})
//	...
//	results, err := idx.TopK(queryID, 10)           // in-database query
//	results, err = idx.TopKVector(queryVec, 10)     // out-of-sample query
//
// Because the whole precomputation is query independent, an index can
// be persisted with Save/SaveFile and restored with Load/LoadFile
// (versioned binary format, docs/FORMAT.md); a loaded index returns
// bit-identical results without redoing any precomputation.
//
// Past the reach of one precomputation, BuildSharded partitions the
// database into independent shards built in parallel and searched by
// fan-out with a global-ranking merge (docs/SHARDING.md); *Index and
// *ShardedIndex share the Retriever serving surface, and Load sniffs
// the file magic to return whichever kind a file holds.
//
// The internal packages contain the full experimental apparatus
// (baselines EMR / FMR / Iterative / Inverse, synthetic datasets,
// metrics); cmd/mogul-bench regenerates every figure and table of the
// paper's evaluation.
package mogul

import (
	"bytes"
	"fmt"
	"io"
	"os"

	"mogul/internal/core"
	"mogul/internal/diskio"
	"mogul/internal/knn"
	"mogul/internal/vec"
)

// Vector is a dense feature vector (an image descriptor, attribute
// vector, embedding, ...).
type Vector = vec.Vector

// Dataset is a collection of feature vectors with optional labels.
type Dataset = vec.Dataset

// Result is one ranked answer: a database item id with its Manifold
// Ranking score (higher is more relevant).
type Result = core.Result

// Stats reports what index construction did: cluster structure,
// factor size, and precomputation timing.
type Stats = core.Stats

// SearchInfo reports per-query work counters (clusters pruned versus
// scanned, scores computed).
type SearchInfo = core.SearchInfo

// Precision selects the storage width of an engine's bulk arrays.
type Precision uint8

const (
	// F64 stores everything as float64 — the default, bit-identical to
	// every previous release.
	F64 Precision = iota
	// F32 stores the big streamed arrays — point vectors, graph edge
	// weights, factor values, anchor attachments, embedding rows — as
	// float32, roughly halving index memory and the bytes each query
	// streams. Every build and every accumulation still runs in
	// float64; narrowing happens exactly once when a value enters
	// storage, so retrieval quality is within rounding of the f64
	// engine (recall@10 >= 0.995 on the evaluation mixture at n=10^5;
	// docs/PERFORMANCE.md quantifies the traffic win).
	F32
)

// Options configures Build. The zero value gives the paper's
// evaluation settings (k = 5 graph, alpha = 0.99, approximate Mogul
// mode).
type Options struct {
	// GraphK is the k of the k-NN graph; the paper uses 5-20 and
	// evaluates with 5 (default 5).
	GraphK int
	// Alpha is the Manifold Ranking damping parameter in (0,1)
	// (default 0.99, as in the paper's evaluation).
	Alpha float64
	// Exact selects MogulE: exact Manifold Ranking scores via the
	// complete (Modified) Cholesky factorization, at the cost of a
	// denser factor.
	Exact bool
	// ApproximateGraph builds the k-NN graph with the IVF index
	// instead of exact brute force once the dataset exceeds a few
	// thousand points; recommended for n over ~50k.
	ApproximateGraph bool
	// MutualGraph keeps only mutual k-NN edges instead of the default
	// union symmetrization.
	MutualGraph bool
	// Sigma pins the heat-kernel bandwidth; 0 derives it from the
	// observed k-NN distances (the paper's convention).
	Sigma float64
	// Seed drives the stochastic pieces (IVF quantizer); results are
	// deterministic for a fixed seed.
	Seed int64
	// AutoCompactFraction makes Insert trigger an automatic Compact
	// once the pending delta (inserted items plus tombstones) exceeds
	// this fraction of the base size, bounding the recall drift of the
	// out-of-sample delta scoring; 0 disables auto-compaction. 0.1 is
	// a reasonable production setting (see README, "Dynamic updates").
	AutoCompactFraction float64
	// Precision selects float64 (default) or mixed-precision float32
	// storage for the index's bulk arrays; see the Precision constants.
	Precision Precision
}

// Index is a prebuilt Mogul search structure. Building is
// query-independent: one index serves any query node, any answer
// count, and out-of-sample queries. An Index is safe for concurrent
// use: searches run in parallel against the immutable base
// structures, while Insert/Delete/Compact mutate the delta layer (or
// swap the base) behind a write lock.
type Index struct {
	core *core.Index
}

// Build constructs an index over the given feature vectors.
func Build(points []Vector, opts Options) (*Index, error) {
	if len(points) < 2 {
		return nil, fmt.Errorf("mogul: need at least 2 points, got %d", len(points))
	}
	k := opts.GraphK
	if k <= 0 {
		k = 5
	}
	gcfg := knn.GraphConfig{
		K:           k,
		Mutual:      opts.MutualGraph,
		Sigma:       opts.Sigma,
		Approximate: opts.ApproximateGraph,
		Seed:        opts.Seed,
	}
	g, err := knn.BuildGraph(points, gcfg)
	if err != nil {
		return nil, fmt.Errorf("mogul: building k-NN graph: %w", err)
	}
	ci, err := core.NewIndex(g, core.Options{
		Alpha:               opts.Alpha,
		Exact:               opts.Exact,
		Seed:                opts.Seed,
		Graph:               &gcfg,
		AutoCompactFraction: opts.AutoCompactFraction,
		F32:                 opts.Precision == F32,
	})
	if err != nil {
		return nil, err
	}
	return &Index{core: ci}, nil
}

// BuildFromDataset is Build applied to a Dataset.
func BuildFromDataset(ds *Dataset, opts Options) (*Index, error) {
	if err := ds.Validate(); err != nil {
		return nil, err
	}
	return Build(ds.Points, opts)
}

// BuildFromGraphPoints wraps an already-constructed k-NN graph; for
// callers that built the graph themselves (custom metrics, external
// edges). Such an index supports Insert and Delete, but not Compact —
// the library cannot reproduce a graph it did not build.
func BuildFromGraphPoints(g *knn.Graph, opts Options) (*Index, error) {
	ci, err := core.NewIndex(g, core.Options{
		Alpha:               opts.Alpha,
		Exact:               opts.Exact,
		Seed:                opts.Seed,
		AutoCompactFraction: opts.AutoCompactFraction,
		F32:                 opts.Precision == F32,
	})
	if err != nil {
		return nil, err
	}
	return &Index{core: ci}, nil
}

// Len returns the number of live indexed items: the built base plus
// inserted items, minus deletions.
func (ix *Index) Len() int { return ix.core.Len() }

// Version returns the index's monotonic mutation version: it starts at
// 1 and increases on every Insert, Delete, and Compact (the coarser
// internal epoch moves only on Compact). Reading it is a single atomic
// load, so callers can stamp derived artifacts — cached query results,
// exported snapshots — and later detect "the index changed under me"
// without re-running the query. Two equal readings bracket a window
// with no visible mutation.
func (ix *Index) Version() uint64 { return ix.core.Version() }

// TopK returns the k database items with the highest Manifold Ranking
// scores for an in-database query item, best first. The query item
// itself is included (it typically ranks first); callers that want
// "results other than the query" can skip it.
func (ix *Index) TopK(query, k int) ([]Result, error) {
	return ix.core.TopK(query, k)
}

// TopKWithInfo is TopK plus work counters (how many clusters the upper
// bounds pruned).
func (ix *Index) TopKWithInfo(query, k int) ([]Result, *SearchInfo, error) {
	return ix.core.Search(query, core.SearchOptions{K: k})
}

// TopKVector ranks database items for a query vector that is not in
// the database (out-of-sample query, Section 4.6.2 of the paper): the
// query's neighbours inside the nearest cluster act as surrogate query
// nodes; the index itself is not modified.
func (ix *Index) TopKVector(q Vector, k int) ([]Result, error) {
	return ix.core.TopKVector(q, k)
}

// OOSBreakdown reports the phases of an out-of-sample search — the
// quantities the paper's Table 2 tabulates.
type OOSBreakdown = core.OOSBreakdown

// TopKVectorWithInfo is TopKVector plus the phase breakdown
// (nearest-neighbour lookup time, top-k search time, surrogate
// neighbours used).
func (ix *Index) TopKVectorWithInfo(q Vector, k int) ([]Result, *OOSBreakdown, error) {
	return ix.core.SearchOutOfSample(q, core.OOSOptions{K: k})
}

// seedQueries turns a seed-id list into the equal-weight multi-query
// form shared by Index.TopKSet and Searcher.TopKSet.
func seedQueries(seeds []int) ([]core.WeightedQuery, error) {
	if len(seeds) == 0 {
		return nil, fmt.Errorf("mogul: TopKSet needs at least one seed item")
	}
	wq := make([]core.WeightedQuery, len(seeds))
	for i, s := range seeds {
		wq[i] = core.WeightedQuery{Node: s, Weight: 1 / float64(len(seeds))}
	}
	return wq, nil
}

// TopKSet ranks database items against a set of seed items with equal
// weights — "find items like these". Seeds typically rank first; skip
// them in the output if undesired.
func (ix *Index) TopKSet(seeds []int, k int) ([]Result, error) {
	wq, err := seedQueries(seeds)
	if err != nil {
		return nil, err
	}
	res, _, err := ix.core.SearchMulti(wq, core.SearchOptions{K: k})
	return res, err
}

// Scores returns the full Manifold Ranking score vector for an
// in-database query (index = item id). O(n) time.
func (ix *Index) Scores(query int) ([]float64, error) {
	return ix.core.AllScores(query)
}

// Neighbors returns the direct k-NN graph neighbours of an item with
// their edge weights — the paper's "Connected" comparison in the
// Figure 9 case studies (plain nearest-neighbour retrieval). For an
// inserted (delta) item, the surrogate base neighbours and their
// weights are returned; deleted neighbours are filtered out.
func (ix *Index) Neighbors(item int) (ids []int, weights []float64, err error) {
	return ix.core.Neighbors(item)
}

// Save writes the fully precomputed index to w in the versioned
// binary format described in docs/FORMAT.md: everything Build
// computed — the k-NN graph, the cluster permutation, the Cholesky
// factor, the pruning-bound inputs, and the out-of-sample quantizer —
// is persisted, so a loaded index is immediately search-ready.
// Because all of Mogul's precomputation is query independent, this
// turns the O(n) build into a one-off: build once, serve forever.
func (ix *Index) Save(w io.Writer) error {
	_, err := ix.core.WriteTo(w)
	return err
}

// SaveFile writes the index to a file via Save. The file is written to
// a temporary sibling and renamed into place, so a crash mid-save
// never leaves a truncated index at path. The file is created with
// mode 0644 regardless of umask; callers that need the index private
// can Save to a file they opened themselves.
func (ix *Index) SaveFile(path string) error {
	return saveFileAtomic(path, ix.Save)
}

// SaveAligned writes the index in the aligned container layout: every
// large array starts on an align-byte boundary (use the page size for
// mmap sharing via LoadFileMapped). Works in either precision; align
// must be a positive power of two.
func (ix *Index) SaveAligned(w io.Writer, align int) error {
	_, err := ix.core.WriteToAligned(w, align)
	return err
}

// SaveFileAligned is SaveAligned to a file with the same atomic
// temp-file-and-rename protocol as SaveFile.
func (ix *Index) SaveFileAligned(path string, align int) error {
	return saveFileAtomic(path, func(w io.Writer) error { return ix.SaveAligned(w, align) })
}

// Querier is the per-worker reusable query engine surface shared by
// Searcher (one index) and ShardedSearcher (a shard set): it pins the
// scratch workspaces one worker needs, so every search it runs
// allocates only the returned results. A Querier is not safe for
// concurrent use — give each goroutine its own (NewQuerier).
type Querier interface {
	// TopK ranks database items against an in-database query item.
	TopK(query, k int) ([]Result, error)
	// TopKWithInfo is TopK plus work counters (summed across shards on
	// a sharded index).
	TopKWithInfo(query, k int) ([]Result, *SearchInfo, error)
	// TopKVector ranks database items against an out-of-sample vector.
	TopKVector(q Vector, k int) ([]Result, error)
	// TopKSet ranks database items against equally weighted seed items.
	TopKSet(seeds []int, k int) ([]Result, error)
}

// Retriever is the serving surface shared by *Index and *ShardedIndex:
// everything a search service needs — the query paths, dynamic
// updates, persistence, and introspection. Load returns a Retriever,
// dispatching on the file's magic header, so callers serve a plain and
// a sharded index file through identical code.
type Retriever interface {
	Len() int
	Exact() bool
	Stats() Stats
	Delta() DeltaStats
	// Version is the monotonic mutation counter (see Index.Version):
	// unchanged Version means unchanged answers, which is what lets a
	// serving layer cache results and invalidate implicitly.
	Version() uint64
	TopK(query, k int) ([]Result, error)
	TopKWithInfo(query, k int) ([]Result, *SearchInfo, error)
	TopKVector(q Vector, k int) ([]Result, error)
	TopKSet(seeds []int, k int) ([]Result, error)
	TopKBatch(queries []int, k, parallelism int) []BatchResult
	TopKVectorBatch(queries []Vector, k, parallelism int) []BatchResult
	Neighbors(item int) (ids []int, weights []float64, err error)
	Insert(v Vector) (int, error)
	Delete(id int) error
	Compact() error
	Save(w io.Writer) error
	SaveFile(path string) error
	// NewQuerier returns a dedicated reusable query engine (a Searcher
	// or ShardedSearcher behind the Querier surface); use one per
	// worker goroutine.
	NewQuerier() Querier
}

// Both index kinds implement the full serving surface.
var (
	_ Retriever = (*Index)(nil)
	_ Retriever = (*ShardedIndex)(nil)
	_ Querier   = (*Searcher)(nil)
	_ Querier   = (*ShardedSearcher)(nil)
)

// NewQuerier is NewSearcher behind the interface surface (Retriever).
func (ix *Index) NewQuerier() Querier { return ix.NewSearcher() }

// NewQuerier is NewSearcher behind the interface surface (Retriever).
func (six *ShardedIndex) NewQuerier() Querier { return six.NewSearcher() }

// Load reads an index written by (*Index).Save, (*ShardedIndex).Save,
// (*EMRIndex).Save, or (*SpectralIndex).Save, sniffing the magic
// header to dispatch: a plain MOGULIDX stream loads as *Index, a
// sharded MOGULSHD manifest as *ShardedIndex, a MOGULEMR stream as
// *EMRIndex, a MOGULSPC stream as *SpectralIndex, all behind the
// shared Retriever surface (type-assert for the concrete API).
// Old-version, truncated, or corrupted input (every format carries a
// magic header, a version field, and a whole-file checksum) yields an
// error, never a panic.
func Load(r io.Reader) (Retriever, error) {
	var magic [8]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, fmt.Errorf("mogul: reading index header: %w", err)
	}
	full := io.MultiReader(bytes.NewReader(magic[:]), r)
	switch string(magic[:]) {
	case shardedMagic:
		return LoadSharded(full)
	case emrMagic:
		return LoadEMR(full)
	case spectralMagic:
		return LoadSpectral(full)
	}
	// Everything else — including garbage magic — goes to the plain
	// reader, whose "not a mogul index file" error names the magic.
	ci, err := core.ReadIndex(full)
	if err != nil {
		return nil, err
	}
	return &Index{core: ci}, nil
}

// LoadFile reads an index file written by SaveFile (plain or sharded;
// see Load for the dispatch).
func LoadFile(path string) (Retriever, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(f)
}

// LoadIndex reads an index file written by SaveFile.
//
// Deprecated: use LoadFile.
func LoadIndex(path string) (Retriever, error) { return LoadFile(path) }

// LoadFileMapped reads an index file through a read-only memory map
// and serves the large arrays directly out of the mapped pages: many
// processes loading the same file share one physical copy, and cold
// start costs page faults instead of byte copies. Best paired with a
// file written by one of the SaveAligned variants (zero-copy needs the
// arrays on their natural boundaries; unaligned files still load, just
// through copying decodes). The returned io.Closer unmaps the file and
// MUST be held open for the engine's whole lifetime — views into the
// mapping become invalid at Close. Mutating a mapped engine is safe:
// the mapped arrays are never written in place (appends relocate to
// the heap, Compact rebuilds fresh state).
//
// Unlike the streaming loaders, the trailing CRC is not verified
// (hashing would fault in every page and defeat the point); the magic,
// the version, every section frame, and all structural invariants are
// still checked, so corrupt input yields an error, never a panic. On
// platforms without mmap (or under the mogul_nommap build tag) the
// file is read into memory instead, with identical results.
func LoadFileMapped(path string) (Retriever, io.Closer, error) {
	m, err := diskio.MapFile(path)
	if err != nil {
		return nil, nil, err
	}
	data := m.Data()
	if len(data) < 8 {
		m.Close()
		return nil, nil, fmt.Errorf("mogul: reading index header: %w", io.ErrUnexpectedEOF)
	}
	var r Retriever
	switch string(data[:8]) {
	case shardedMagic:
		// The sharded manifest embeds whole sub-engine payloads that the
		// loader re-frames and copies anyway; decode it through the
		// streaming reader over the mapped bytes.
		r, err = LoadSharded(bytes.NewReader(data))
	case emrMagic:
		r, err = LoadEMRBytes(data)
	case spectralMagic:
		r, err = LoadSpectralBytes(data)
	default:
		var ci *core.Index
		ci, err = core.ReadIndexBytes(data)
		if err == nil {
			r = &Index{core: ci}
		}
	}
	if err != nil {
		m.Close()
		return nil, nil, err
	}
	return r, m, nil
}

// Searcher is a reusable query engine bound to one Index: it owns a
// private scratch workspace (score vectors, cluster bookkeeping, the
// top-k heap), so every search it runs allocates nothing beyond the
// returned results. The plain Index methods already recycle scratches
// through an internal pool; a Searcher additionally pins one to a
// single worker — the right shape for a fixed worker loop (see
// TopKBatch) or any caller that wants per-query overhead at its floor.
//
// A Searcher is NOT safe for concurrent use: give each goroutine its
// own (they are cheap — buffers are sized lazily on first search).
// It never goes stale: after an Insert, Delete, Compact, or even when
// moved across indexes, the next search revalidates the workspace
// against the index's current state and resizes it when needed.
type Searcher struct {
	ix *Index
	s  core.Scratch
}

// NewSearcher returns a dedicated reusable query engine for the index.
func (ix *Index) NewSearcher() *Searcher {
	return &Searcher{ix: ix}
}

// TopK is Index.TopK on the searcher's private workspace.
func (sr *Searcher) TopK(query, k int) ([]Result, error) {
	return sr.ix.core.TopKScratch(&sr.s, query, k)
}

// TopKWithInfo is Index.TopKWithInfo on the searcher's private
// workspace.
func (sr *Searcher) TopKWithInfo(query, k int) ([]Result, *SearchInfo, error) {
	return sr.ix.core.SearchScratch(&sr.s, query, core.SearchOptions{K: k})
}

// TopKVector is Index.TopKVector on the searcher's private workspace.
func (sr *Searcher) TopKVector(q Vector, k int) ([]Result, error) {
	return sr.ix.core.TopKVectorScratch(&sr.s, q, k)
}

// TopKSet is Index.TopKSet on the searcher's private workspace. (The
// seed expansion itself still allocates one small WeightedQuery slice
// per call; "allocation-free" refers to the search engine's working
// memory.)
func (sr *Searcher) TopKSet(seeds []int, k int) ([]Result, error) {
	wq, err := seedQueries(seeds)
	if err != nil {
		return nil, err
	}
	res, _, err := sr.ix.core.SearchMultiScratch(&sr.s, wq, core.SearchOptions{K: k})
	return res, err
}

// Stats returns index construction statistics.
func (ix *Index) Stats() Stats { return ix.core.Stats() }

// Exact reports whether the index returns exact Manifold Ranking
// scores (MogulE) rather than the incomplete-factorization
// approximation.
func (ix *Index) Exact() bool { return ix.core.Exact() }

// Precision reports the storage precision the index was built (or
// loaded) with.
func (ix *Index) Precision() Precision {
	if ix.core.Factor().F32() {
		return F32
	}
	return F64
}
