package mogul

// Sharded index persistence: the MOGULSHD manifest (docs/FORMAT.md).
//
// A sharded index file is a container of its own — magic "MOGULSHD",
// its own version counter, the same tag/length/payload section framing
// as the plain index format, and a trailing CRC-32 — that nests one
// complete MOGULIDX stream per shard next to the manifest metadata
// (shard count, partitioner, routing centroids, and the local<->global
// id maps). A build that predates sharding fails the magic check with
// a clean "not a mogul index file" error instead of misreading the
// manifest, which is exactly the loud failure the format policy asks
// of a semantic extension; mogul.Load sniffs the magic and dispatches
// to the right reader, so callers never branch on file kind.

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"slices"

	"mogul/internal/binio"
	"mogul/internal/core"
)

// shardedMagic identifies a sharded Mogul index file.
const shardedMagic = "MOGULSHD"

// shardedFormatVersion is the sharded-manifest version this build
// writes; shardedMinReadVersion is the oldest it reads. The manifest
// versions independently of the nested plain-index format (each SIDX
// payload carries its own MOGULIDX version field).
const (
	shardedFormatVersion  = 1
	shardedMinReadVersion = 1
)

// Manifest section tags.
var (
	tagSmet = [4]byte{'S', 'M', 'E', 'T'}
	tagSctr = [4]byte{'S', 'C', 'T', 'R'}
	tagSmap = [4]byte{'S', 'M', 'A', 'P'}
	tagSidx = [4]byte{'S', 'I', 'D', 'X'}
	tagSend = [4]byte{'E', 'N', 'D', 0}
)

// writeShardSection frames one payload with the two-pass scheme the
// plain container uses (count first, then stream), which keeps Save at
// O(1) extra memory even though every SIDX payload is a whole nested
// index stream. The payload writers are deterministic while the locks
// held by Save freeze the index, so both passes produce identical
// bytes.
func writeShardSection(bw *binio.Writer, tag [4]byte, payload func(w io.Writer) error) error {
	var count int64
	counter := writerFunc(func(p []byte) (int, error) {
		count += int64(len(p))
		return len(p), nil
	})
	if err := payload(counter); err != nil {
		return err
	}
	bw.Raw(tag[:])
	bw.Uint64(uint64(count))
	before := bw.Count()
	sink := writerFunc(func(p []byte) (int, error) {
		bw.Raw(p)
		if err := bw.Err(); err != nil {
			return 0, err
		}
		return len(p), nil
	})
	if err := payload(sink); err != nil {
		return err
	}
	if got := bw.Count() - before; got != count {
		return fmt.Errorf("mogul: section produced %d bytes, declared %d", got, count)
	}
	return bw.Err()
}

// writerFunc adapts a function to io.Writer.
type writerFunc func(p []byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }

// maxRetiredIDs bounds how far the global id space may outgrow the
// mapped shard slots (each delete+Compact retires one id forever).
// Save enforces it so a file is never written that Load — which uses
// the same bound to keep its allocation proportional to the data the
// file actually carries — would reject; an index that hits it must be
// rebuilt fresh (BuildSharded over the live points re-ids from zero).
const maxRetiredIDs = 1 << 20

// Save writes the sharded index — manifest plus every shard's complete
// index stream — in the versioned MOGULSHD format. Mutators block for
// the duration; searches proceed.
func (six *ShardedIndex) Save(w io.Writer) error {
	// mutMu freezes the shard states and id maps against
	// Insert/Delete/Compact so the two-pass section framing sees
	// identical bytes; the read lock covers the map reads themselves.
	six.mutMu.Lock()
	defer six.mutMu.Unlock()
	six.mu.RLock()
	defer six.mu.RUnlock()

	totalSlots := 0
	for _, sh := range six.shards {
		totalSlots += sh.core.IDSpace()
	}
	if retired := len(six.locOf) - totalSlots; retired > maxRetiredIDs {
		return fmt.Errorf("mogul: %d retired global ids exceed the format's %d limit; rebuild the index fresh (BuildSharded over the live points) before saving", retired, maxRetiredIDs)
	}

	buffered := bufio.NewWriterSize(w, 1<<20)
	bw := binio.NewWriter(buffered)
	bw.Raw([]byte(shardedMagic))
	bw.Uint32(shardedFormatVersion)

	if err := writeShardSection(bw, tagSmet, six.writeShardMeta); err != nil {
		return fmt.Errorf("mogul: writing %q section: %w", tagSmet[:], err)
	}
	if len(six.centroids) > 0 {
		if err := writeShardSection(bw, tagSctr, six.writeCentroids); err != nil {
			return fmt.Errorf("mogul: writing %q section: %w", tagSctr[:], err)
		}
	}
	if err := writeShardSection(bw, tagSmap, six.writeIDMaps); err != nil {
		return fmt.Errorf("mogul: writing %q section: %w", tagSmap[:], err)
	}
	for s, sh := range six.shards {
		if err := writeShardSection(bw, tagSidx, sh.Save); err != nil {
			return fmt.Errorf("mogul: writing shard %d: %w", s, err)
		}
	}
	bw.Raw(tagSend[:])
	bw.Uint64(0)
	crc := bw.Sum32()
	bw.Uint32(crc)
	if err := bw.Err(); err != nil {
		return err
	}
	return buffered.Flush()
}

func (six *ShardedIndex) writeShardMeta(w io.Writer) error {
	bw := binio.NewWriter(w)
	bw.Int(len(six.shards))
	bw.Int(int(six.part))
	bw.Int(len(six.locOf))
	bw.Float64(six.autoCompact)
	return bw.Err()
}

func (six *ShardedIndex) writeCentroids(w io.Writer) error {
	bw := binio.NewWriter(w)
	bw.Int(len(six.centroids))
	for _, c := range six.centroids {
		bw.Floats(c)
	}
	return bw.Err()
}

// writeIDMaps stores one dense local->global table per shard; locOf is
// their inverse and is rebuilt on load (retired global ids are exactly
// the ones no table mentions).
func (six *ShardedIndex) writeIDMaps(w io.Writer) error {
	bw := binio.NewWriter(w)
	for _, m := range six.l2g {
		bw.Ints(m)
	}
	return bw.Err()
}

// SaveFile writes the sharded index to a file via Save with the same
// atomic temp-file-and-rename protocol as Index.SaveFile.
func (six *ShardedIndex) SaveFile(path string) error {
	return saveFileAtomic(path, six.Save)
}

// saveFileAtomic streams save into a temporary sibling of path and
// renames it into place, so a crash mid-save never leaves a truncated
// file behind. Shared by Index.SaveFile and ShardedIndex.SaveFile.
func saveFileAtomic(path string, save func(io.Writer) error) error {
	dir, base := filepath.Split(path)
	if dir == "" {
		// A bare filename must stage its temp file in the destination
		// directory, not os.TempDir(): rename does not cross devices.
		dir = "."
	}
	f, err := os.CreateTemp(dir, base+".tmp-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	// CreateTemp makes the file 0600; give the final index the usual
	// artifact permissions so other users (a service account) can load it.
	if err := f.Chmod(0o644); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := save(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

// LoadSharded reads a sharded index written by ShardedIndex.Save.
// Malformed input of any kind — wrong magic, unknown version,
// truncation, checksum mismatch, inconsistent id maps, a corrupt
// nested shard stream — yields an error, never a panic. Plain callers
// normally go through Load, which sniffs the magic and dispatches
// here on its own.
func LoadSharded(r io.Reader) (*ShardedIndex, error) {
	br := binio.NewReader(r)
	var magic [len(shardedMagic)]byte
	br.Raw(magic[:])
	if err := br.Err(); err != nil {
		return nil, fmt.Errorf("mogul: reading sharded index header: %w", err)
	}
	if string(magic[:]) != shardedMagic {
		return nil, fmt.Errorf("mogul: not a sharded mogul index file (magic %q)", magic[:])
	}
	version := br.Uint32()
	if err := br.Err(); err != nil {
		return nil, fmt.Errorf("mogul: reading sharded index header: %w", err)
	}
	if version < shardedMinReadVersion || version > shardedFormatVersion {
		return nil, fmt.Errorf("mogul: sharded index format version %d, this build reads versions %d-%d", version, shardedMinReadVersion, shardedFormatVersion)
	}

	var meta, centroids, idMaps []byte
	var shardPayloads [][]byte
	for {
		var tag [4]byte
		br.Raw(tag[:])
		n := br.Uint64()
		if err := br.Err(); err != nil {
			return nil, fmt.Errorf("mogul: reading section header: %w", err)
		}
		if tag == tagSend {
			if n != 0 {
				return nil, fmt.Errorf("mogul: end marker carries %d payload bytes", n)
			}
			break
		}
		if n > binio.MaxCount {
			return nil, fmt.Errorf("mogul: section %q claims %d bytes", tag[:], n)
		}
		switch tag {
		case tagSmet, tagSctr, tagSmap:
			payload, err := readShardPayload(br, n)
			if err != nil {
				return nil, fmt.Errorf("mogul: reading %q section: %w", tag[:], err)
			}
			switch tag {
			case tagSmet:
				meta = payload
			case tagSctr:
				centroids = payload
			case tagSmap:
				idMaps = payload
			}
		case tagSidx:
			payload, err := readShardPayload(br, n)
			if err != nil {
				return nil, fmt.Errorf("mogul: reading shard %d: %w", len(shardPayloads), err)
			}
			shardPayloads = append(shardPayloads, payload)
		default:
			// A section from a newer writer: skip (the bytes still count
			// toward the checksum), keeping additive evolution open.
			br.Skip(int64(n))
			if err := br.Err(); err != nil {
				return nil, fmt.Errorf("mogul: skipping %q section: %w", tag[:], err)
			}
		}
	}
	want := br.Sum32()
	got := br.Uint32()
	if err := br.Err(); err != nil {
		return nil, fmt.Errorf("mogul: reading checksum: %w", err)
	}
	if got != want {
		return nil, fmt.Errorf("mogul: checksum mismatch (file %08x, computed %08x): sharded index file is corrupt", got, want)
	}
	if meta == nil || idMaps == nil {
		return nil, fmt.Errorf("mogul: sharded index file is missing a required manifest section")
	}
	return assembleSharded(meta, centroids, idMaps, shardPayloads)
}

// readShardPayload reads exactly n bytes, growing the buffer in
// bounded steps so a corrupt length fails with an I/O error instead of
// a giant allocation (mirrors the plain container's reader).
func readShardPayload(br *binio.Reader, n uint64) ([]byte, error) {
	const chunk = uint64(1 << 20)
	buf := make([]byte, 0, min(n, chunk))
	for uint64(len(buf)) < n {
		k := int(min(n-uint64(len(buf)), chunk))
		off := len(buf)
		buf = slices.Grow(buf, k)[:off+k]
		br.Raw(buf[off:])
		if err := br.Err(); err != nil {
			return nil, err
		}
	}
	return buf, nil
}

// assembleSharded decodes the manifest payloads, loads every nested
// shard stream, and cross-validates the id maps against the loaded
// shard states.
func assembleSharded(meta, centroids, idMaps []byte, shardPayloads [][]byte) (*ShardedIndex, error) {
	mr := binio.NewReader(bytes.NewReader(meta))
	numShards := mr.Int()
	part := mr.Int()
	globals := mr.Int()
	autoCompact := mr.Float64()
	if err := mr.Err(); err != nil {
		return nil, fmt.Errorf("mogul: decoding sharded metadata: %w", err)
	}
	if numShards < 1 || numShards > binio.MaxCount {
		return nil, fmt.Errorf("mogul: corrupt sharded metadata: %d shards", numShards)
	}
	if part != int(PartitionContiguous) && part != int(PartitionKMeans) {
		return nil, fmt.Errorf("mogul: corrupt sharded metadata: partitioner %d", part)
	}
	if globals < numShards || globals > binio.MaxCount {
		return nil, fmt.Errorf("mogul: corrupt sharded metadata: %d global ids for %d shards", globals, numShards)
	}
	if math.IsNaN(autoCompact) || math.IsInf(autoCompact, 0) || autoCompact < 0 {
		return nil, fmt.Errorf("mogul: corrupt sharded metadata: auto-compact fraction %g", autoCompact)
	}
	if len(shardPayloads) != numShards {
		return nil, fmt.Errorf("mogul: sharded index file carries %d shard streams, metadata says %d", len(shardPayloads), numShards)
	}

	shards := make([]*Index, numShards)
	for s, payload := range shardPayloads {
		ci, err := core.ReadIndex(bytes.NewReader(payload))
		if err != nil {
			return nil, fmt.Errorf("mogul: loading shard %d: %w", s, err)
		}
		shards[s] = &Index{core: ci}
		shardPayloads[s] = nil // release while the rest decodes
	}

	dim := 0
	if p, err := shards[0].core.Point(firstAlive(shards[0])); err == nil {
		dim = len(p)
	}
	var ctr []Vector
	if part == int(PartitionKMeans) {
		if centroids == nil {
			return nil, fmt.Errorf("mogul: k-means sharded index is missing its centroid section")
		}
		cr := binio.NewReader(bytes.NewReader(centroids))
		count := cr.Int()
		if err := cr.Err(); err != nil {
			return nil, fmt.Errorf("mogul: decoding centroids: %w", err)
		}
		if count != numShards {
			return nil, fmt.Errorf("mogul: %d routing centroids for %d shards", count, numShards)
		}
		ctr = make([]Vector, count)
		for c := range ctr {
			v := cr.Floats(binio.MaxCount)
			if err := cr.Err(); err != nil {
				return nil, fmt.Errorf("mogul: decoding centroid %d: %w", c, err)
			}
			if dim > 0 && len(v) != dim {
				return nil, fmt.Errorf("mogul: centroid %d has dim %d, want %d", c, len(v), dim)
			}
			for _, x := range v {
				if math.IsNaN(x) || math.IsInf(x, 0) {
					return nil, fmt.Errorf("mogul: centroid %d has non-finite component", c)
				}
			}
			ctr[c] = v
		}
	}

	// The global id space may exceed the mapped slots (ids of items
	// deleted and compacted away are retired, never reused), but only
	// within a bounded headroom: the id maps are what the file actually
	// carries, and sizing locOf from an unchecked count would let a
	// crafted manifest demand an allocation unrelated to its own size.
	totalSlots := 0
	for _, sh := range shards {
		totalSlots += sh.core.IDSpace()
	}
	if globals > totalSlots+maxRetiredIDs {
		return nil, fmt.Errorf("mogul: corrupt sharded metadata: %d global ids for %d shard slots", globals, totalSlots)
	}
	l2g := make([][]int, numShards)
	locOf := make([]shardLoc, globals)
	for g := range locOf {
		locOf[g] = shardLoc{shard: -1, local: -1}
	}
	ir := binio.NewReader(bytes.NewReader(idMaps))
	for s := range l2g {
		m := ir.Ints(globals)
		if err := ir.Err(); err != nil {
			return nil, fmt.Errorf("mogul: decoding id map of shard %d: %w", s, err)
		}
		if space := shards[s].core.IDSpace(); len(m) != space {
			return nil, fmt.Errorf("mogul: shard %d id map covers %d slots, shard has %d", s, len(m), space)
		}
		for local, g := range m {
			if g < 0 || g >= globals {
				return nil, fmt.Errorf("mogul: shard %d maps local %d to global %d outside [0,%d)", s, local, g, globals)
			}
			if locOf[g].shard >= 0 {
				return nil, fmt.Errorf("mogul: global id %d mapped by two shards", g)
			}
			locOf[g] = shardLoc{shard: s, local: local}
		}
		l2g[s] = m
	}

	six := &ShardedIndex{
		shards:      shards,
		part:        Partitioner(part),
		centroids:   ctr,
		autoCompact: autoCompact,
		locOf:       locOf,
		l2g:         l2g,
	}
	six.version.Store(1)
	return six, nil
}

// firstAlive returns the lowest live local id of a shard (every loaded
// shard has at least one — the plain loader rejects all-tombstone
// files).
func firstAlive(ix *Index) int {
	space := ix.core.IDSpace()
	for i := 0; i < space; i++ {
		if ix.core.Alive(i) {
			return i
		}
	}
	return 0
}

// LoadShardedFile reads a sharded index file written by
// ShardedIndex.SaveFile.
func LoadShardedFile(path string) (*ShardedIndex, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return LoadSharded(f)
}
