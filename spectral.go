package mogul

// The spectral engine: Fast Spectral Ranking (Iscen et al., CVPR'18)
// as a first-class serving backend.
//
// The exact engine answers a query by solving (I - alpha*S) x =
// (1-alpha) q against a sparse factorization; EMR shrinks the solve to
// anchor space. The spectral engine removes the solve altogether.
// BuildSpectral computes the top-r eigenpairs S ~ U diag(lambda) U^T
// of the normalized k-NN graph adjacency once at build (Lanczos with
// full reorthogonalization, internal/spectral), and the query-time
// resolvent splits into an exact short-range part and a spectral tail:
//
//	x = (1-alpha) (I - alpha S)^{-1} q
//	  = (1-alpha) [ sum_{t<T} (alpha S)^t q  +  (alpha S)^T (I - alpha S)^{-1} q ]
//	  ~ (1-alpha) [ sum_{t<T} (alpha S)^t q  +  U diag(g) U^T q ],
//	g(lambda) = (alpha*lambda)^T / (1 - alpha*lambda).
//
// The first T hops run exactly as a sparse frontier expansion on the
// stored base graph — they carry the sharp local ordering that rank
// truncation destroys — while the eigenbasis carries only the smooth
// long-range tail, whose fine structure the hops have already damped
// by (alpha*lambda)^T. The horizon T is adaptive per query: after the
// guaranteed minimum (SpectralOptions.Hops), expansion continues
// while the residual mass still matters and an edge-traversal budget
// (SpectralOptions.HopBudget) allows. On clustered data diffusion is
// component-local, so the frontier saturates at the query's component
// and hops run to convergence at tiny cost, carrying virtually the
// whole resolvent exactly — precisely the regime where the truncated
// basis fails (the near-degenerate lambda~1 cluster eigenspace cannot
// be spanned by r < #clusters directions). On well-connected graphs
// the budget stops the expansion early and the decaying spectrum
// makes the truncated tail trustworthy. Because the tail coefficient
// g is evaluated with the actual per-query T, the split stays
// algebraically exact at r = n for ANY stopping point (a property the
// tests pin). A query is then: expand hops from the seeds (a local
// ball or a bounded sweep, never a factorization), project the seeds
// into the basis (O(r) per seed), scale by the tail coefficients, and
// stream the n embedding rows through one kernel-routed dot product
// each — O(n*r) plus the hop ball, with no back-substitution on the
// query path.
//
// Out-of-sample queries and Insert attach through surrogate
// neighbours: the vector's AttachK nearest live points, heat-kernel
// weighted with the base graph's bandwidth. Inserted items keep their
// attachment (ids + weights), so they both answer and seed queries
// through their base anchors, exactly as EMR's delta columns do.
// Delete tombstones; Compact re-runs the recorded recipe over the
// live points, exactly as a fresh BuildSpectral. *SpectralIndex
// implements the full Retriever surface, so it serves through the
// serve package, the dist coordinator, and mogul-server
// interchangeably with the other engines. docs/SPECTRAL.md maps the
// rank/recall frontier and names the workloads where truncation fails.

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"mogul/internal/knn"
	"mogul/internal/sparse"
	"mogul/internal/spectral"
	"mogul/internal/topk"
	"mogul/internal/vec"
)

// SpectralOptions configures the truncated eigenbasis of
// BuildSpectral. The zero value gives serving defaults (rank 64,
// 2*rank+16 Lanczos steps, 3 exact hops, 10 attachment neighbours);
// the shared Options value supplies the graph recipe (GraphK,
// ApproximateGraph, MutualGraph, Sigma), Alpha, Seed, and
// AutoCompactFraction.
type SpectralOptions struct {
	// Rank is r, the number of retained eigenpairs. More rank buys
	// recall on the smooth long-range part at O(n*r) per-query scan
	// cost; the exact hops below carry the local part regardless.
	// Default 64.
	Rank int
	// Steps is the Lanczos iteration count (the Krylov depth the
	// Ritz pairs converge in); 0 selects 2*Rank+16, which suits the
	// gapped spectra of clustered data. Clamped to n.
	Steps int
	// Hops is the guaranteed minimum T: how many leading terms of the
	// Neumann series each query evaluates exactly on the sparse base
	// graph before the adaptive policy may hand the rest to the
	// eigenbasis. The hops are a frontier expansion from the seeds and
	// are what keeps within-neighbourhood ranking sharp under
	// aggressive rank truncation. Default 3; minimum 1.
	Hops int
	// HopBudget bounds the adaptive continuation: past the minimum,
	// expansion keeps going while the un-diffused seed mass is above
	// tolerance and the cumulative edge traversals stay within this
	// budget. On clustered data the frontier saturates at the query's
	// small component, so convergence costs a few hundred cheap rounds
	// and the exact part carries essentially the whole resolvent; on
	// well-connected graphs one round costs ~n*k traversals and the
	// budget stops the expansion almost immediately, handing the
	// long-range mass to the eigenbasis (which a decaying spectrum
	// makes trustworthy there). Default 1<<18.
	HopBudget int
	// AttachK is how many nearest stored points an out-of-sample
	// query or inserted vector attaches to (heat-kernel weighted
	// surrogate seeds). Default 10.
	AttachK int
}

func (o SpectralOptions) withDefaults() SpectralOptions {
	if o.Rank <= 0 {
		o.Rank = 64
	}
	if o.Hops <= 0 {
		o.Hops = 3
	}
	if o.HopBudget <= 0 {
		o.HopBudget = 1 << 18
	}
	if o.AttachK <= 0 {
		o.AttachK = 10
	}
	return o
}

// hopMassTol is the convergence cutoff of the adaptive hop expansion:
// once the un-diffused frontier mass drops below it, the remaining
// resolvent tail cannot move any ranking (scores carry a further
// (1-alpha) scale) and expansion stops.
const hopMassTol = 1e-10

// spectralState is everything a query touches, grouped so Compact can
// build a replacement off-line and swap it in atomically under the
// write lock. Within a state, graph/vals/tail/sigma are frozen at
// build time; points/emb/dead and the attachment arrays grow or flip
// under the write lock.
type spectralState struct {
	dim  int
	rank int
	// graph is the normalized adjacency S over the base build — the
	// sparse operator the exact query-time hops run on. Tombstoned
	// base items stay in it (they conduct diffusion but are never
	// returned), exactly as EMR keeps dead columns until Compact.
	graph *sparse.CSR
	// sigma is the heat-kernel bandwidth the base graph derived (or
	// was pinned to) — the attachment kernel for out-of-sample queries
	// and inserts.
	sigma float64
	// vals are the retained eigenvalues, descending. Each query derives
	// its spectral-tail coefficients (alpha*vals[j])^T / (1 -
	// alpha*vals[j]) from them with its own adaptive horizon T.
	vals []float64
	// points holds every item ever inserted, by id; dead tombstones. In
	// mixed-precision mode points is nil and the vectors live flattened
	// in pts32 with stride dim.
	points []Vector
	pts32  []float32
	dead   []bool
	// emb stores the embedding rows flat with stride rank (item i owns
	// [i*rank, (i+1)*rank)): one cache-friendly streaming array, which
	// is what keeps the per-query scan memory-bandwidth bound. In
	// mixed-precision mode emb is nil and the rows live in emb32 (and
	// the base graph's CSR values narrow to Val32); the eigenvalues and
	// attachment weights stay float64 — they are rank- or
	// AttachK-sized, cold next to the scan.
	emb   []float64
	emb32 []float32
	// Delta attachments: item baseN+d owns attID/attW entries
	// [attPtr[d], attPtr[d+1]) — its surrogate base anchors. Through
	// them a delta item receives the hop scores of its neighbourhood
	// and redistributes its seed mass when queried.
	attPtr []int
	attID  []int
	attW   []float64
	// deadCount counts all tombstones; deadBase only those in the base
	// build (the auto-compact policy counts a deleted delta item once:
	// it is already in the inserted-items term). baseN is how many
	// rows the eigenbasis and the graph cover.
	deadCount int
	deadBase  int
	baseN     int
	stats     Stats
}

// f32 reports whether the state stores its bulk arrays narrowed.
func (st *spectralState) f32() bool { return st.emb32 != nil }

// numPoints returns the id-space size in either precision.
func (st *spectralState) numPoints() int {
	if st.pts32 != nil {
		return len(st.pts32) / st.dim
	}
	return len(st.points)
}

// pointVec returns item i's stored vector. In f64 mode the returned
// slice aliases state storage; in f32 mode it is freshly widened —
// callers that retain it must copy in either case.
func (st *spectralState) pointVec(i int) Vector {
	if st.pts32 != nil {
		return Vector(vec.Widen64(nil, st.pts32[i*st.dim:(i+1)*st.dim]))
	}
	return st.points[i]
}

// narrow32 moves the state into mixed-precision storage: the point
// matrix flattens to float32 rows, the embedding rows and the base
// graph's edge weights round to float32, halving the bytes each query
// streams (the O(n*r) embedding scan dominates). Applied exactly once,
// after the (always float64) build; the eigenvalues and the delta
// attachment weights keep full precision.
func (st *spectralState) narrow32() {
	if st.f32() {
		return
	}
	st.pts32, _ = vec.Flatten32(st.points)
	st.points = nil
	st.emb32 = vec.Narrow32(nil, st.emb)
	st.emb = nil
	st.graph.Narrow32()
}

// SpectralIndex is the truncated-eigenbasis (Fast Spectral Ranking)
// serving engine built by BuildSpectral. It implements Retriever:
// searches run concurrently against the immutable base structures
// (read lock) on pooled per-searcher scratch, while
// Insert/Delete/Compact mutate the delta state (or swap the whole
// basis) behind the write lock.
type SpectralIndex struct {
	alpha float64
	// ropts/sopts/seed/autoCompact are the recorded recipe Compact
	// rebuilds with, so Insert...Compact converges to exactly what a
	// fresh BuildSpectral over the live points would produce.
	seed        int64
	autoCompact float64
	ropts       Options // graph recipe (GraphK, Approximate, Mutual, Sigma)
	sopts       SpectralOptions

	// mu guards st; mutMu serializes mutators so Compact's off-line
	// rebuild never races another Insert/Delete/Compact while searches
	// proceed against the old state.
	mu    sync.RWMutex
	mutMu sync.Mutex
	st    *spectralState

	version   atomic.Uint64
	searchers sync.Pool
}

// Both the engine and its searcher implement the shared serving
// surfaces.
var (
	_ Retriever = (*SpectralIndex)(nil)
	_ Querier   = (*SpectralSearcher)(nil)
)

// BuildSpectral constructs the spectral engine over the given feature
// vectors. opts supplies the graph recipe, Alpha, Seed, and
// AutoCompactFraction (Exact is ignored — truncation is the point);
// sopts sizes the eigenbasis and the exact-hop horizon. The build is
// deterministic for a fixed seed — byte-identical at any GOMAXPROCS —
// and query independent: one engine serves any query item, any
// vector, any k.
func BuildSpectral(points []Vector, opts Options, sopts SpectralOptions) (*SpectralIndex, error) {
	if len(points) < 2 {
		return nil, fmt.Errorf("mogul: BuildSpectral needs at least 2 points, got %d", len(points))
	}
	if opts.Alpha == 0 {
		opts.Alpha = 0.99
	}
	if opts.Alpha <= 0 || opts.Alpha >= 1 {
		return nil, fmt.Errorf("mogul: alpha must lie in (0,1), got %g", opts.Alpha)
	}
	if opts.AutoCompactFraction < 0 || math.IsNaN(opts.AutoCompactFraction) || math.IsInf(opts.AutoCompactFraction, 0) {
		return nil, fmt.Errorf("mogul: auto-compact fraction must be finite and non-negative, got %g", opts.AutoCompactFraction)
	}
	dim := len(points[0])
	if dim == 0 {
		return nil, fmt.Errorf("mogul: BuildSpectral needs non-empty feature vectors")
	}
	for i, pt := range points {
		if len(pt) != dim {
			return nil, fmt.Errorf("mogul: point %d has dim %d, want %d", i, len(pt), dim)
		}
		for _, x := range pt {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return nil, fmt.Errorf("mogul: point %d has non-finite component %g", i, x)
			}
		}
	}
	sopts = sopts.withDefaults()
	st, err := buildSpectralState(points, opts, sopts)
	if err != nil {
		return nil, err
	}
	if opts.Precision == F32 {
		// The build itself always runs in float64 (graph, Lanczos);
		// narrowing once at the end is the only lossy step.
		st.narrow32()
	}
	e := &SpectralIndex{
		alpha:       opts.Alpha,
		seed:        opts.Seed,
		autoCompact: opts.AutoCompactFraction,
		ropts:       opts,
		sopts:       sopts,
		st:          st,
	}
	e.version.Store(1)
	return e, nil
}

// buildSpectralState runs the offline half of the engine: the k-NN
// graph and its symmetric normalization through the shared parallel
// pipeline, then the rank-r Lanczos decomposition.
func buildSpectralState(points []Vector, opts Options, sopts SpectralOptions) (*spectralState, error) {
	n := len(points)
	k := opts.GraphK
	if k <= 0 {
		k = 5
	}
	t0 := time.Now()
	g, err := knn.BuildGraph(points, knn.GraphConfig{
		K:           k,
		Mutual:      opts.MutualGraph,
		Sigma:       opts.Sigma,
		Approximate: opts.ApproximateGraph,
		Seed:        opts.Seed,
	})
	if err != nil {
		return nil, fmt.Errorf("mogul: building k-NN graph: %w", err)
	}
	S := g.NormalizedAdjacency()
	graphTime := time.Since(t0)

	t1 := time.Now()
	basis, err := spectral.Decompose(S, sopts.Rank, sopts.Steps, opts.Seed)
	if err != nil {
		return nil, fmt.Errorf("mogul: spectral decomposition: %w", err)
	}
	st := &spectralState{
		dim:    len(points[0]),
		rank:   basis.Rank,
		graph:  S,
		sigma:  g.Sigma,
		vals:   basis.Vals,
		points: points,
		dead:   make([]bool, n),
		emb:    basis.Vecs,
		attPtr: []int{0},
		baseN:  n,
	}
	st.stats = Stats{
		NumNodes:    n,
		NumClusters: st.rank,
		FactorNNZ:   n * st.rank,
		ClusterTime: graphTime,
		FactorTime:  time.Since(t1),
	}
	return st, nil
}

// tailCoefficient is the eigenvalue-wise weight of the resolvent's
// remainder after the first hops Neumann terms are evaluated exactly:
// (alpha*lambda)^hops / (1 - alpha*lambda). Evaluated from the same
// persisted eigenvalues by the same expression on every engine, so a
// loaded engine scores bit-identically to the one that saved it.
func tailCoefficient(alpha, lambda float64, hops int) float64 {
	av := alpha * lambda
	p := math.Pow(math.Abs(av), float64(hops))
	if av < 0 && hops%2 == 1 {
		p = -p
	}
	return p / (1 - av)
}

// Len returns the number of live (searchable) items.
func (e *SpectralIndex) Len() int {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.st.numPoints() - e.st.deadCount
}

// Exact reports false: spectral scores approximate exact Manifold
// Ranking through the truncated eigenbasis.
func (e *SpectralIndex) Exact() bool { return false }

// Precision reports the storage precision the engine was built (or
// loaded) with.
func (e *SpectralIndex) Precision() Precision {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if e.st.f32() {
		return F32
	}
	return F64
}

// Stats reports what the latest base build did, mapped onto the
// shared Stats shape: NumClusters is the retained rank r, FactorNNZ
// the n x r embedding, ClusterTime the graph construction, FactorTime
// the Lanczos decomposition.
func (e *SpectralIndex) Stats() Stats {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.st.stats
}

// Delta reports the dynamic state: items inserted since the base
// build and tombstones awaiting compaction.
func (e *SpectralIndex) Delta() DeltaStats {
	e.mu.RLock()
	defer e.mu.RUnlock()
	st := e.st
	deltaDead := st.deadCount - st.deadBase
	return DeltaStats{
		BaseItems:  st.baseN,
		DeltaItems: st.numPoints() - st.baseN - deltaDead,
		Tombstones: st.deadCount,
	}
}

// Version is the monotonic mutation counter (same contract as
// Index.Version): unchanged Version means unchanged answers, which is
// what lets the serve layer cache results and invalidate implicitly.
func (e *SpectralIndex) Version() uint64 { return e.version.Load() }

// Rank returns r, the number of eigenpairs the current basis retains.
func (e *SpectralIndex) Rank() int {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.st.rank
}

// Neighbors is unavailable: the eigenbasis stores per-item embedding
// rows, and the base graph is an internal diffusion operator, not a
// per-item result surface.
func (e *SpectralIndex) Neighbors(item int) ([]int, []float64, error) {
	return nil, nil, fmt.Errorf("mogul: the spectral engine has no item-level neighbour surface (embedding rows only)")
}

// SpectralSearcher is a dedicated reusable query engine over a
// SpectralIndex: it owns the projection/coefficient vectors, the
// top-k collector, the hop-expansion frontier, and the attachment
// scratch, so a steady query load runs allocation-free. Use one
// searcher per worker goroutine (the SpectralIndex query methods draw
// from an internal pool).
type SpectralSearcher struct {
	e        *SpectralIndex
	b, coeff []float64
	col      topk.Collector
	// Hop-expansion scratch: hop accumulates the exact Neumann prefix
	// over base items, pw/tmp carry the current power, and the stamp
	// arrays make "is this entry mine" O(1) without ever clearing the
	// dense arrays (hstamp/qepoch per query, estamp/eepoch per hop).
	hop, pw, tmp   []float64
	hstamp, estamp []uint64
	qepoch, eepoch uint64
	curID, nxtID   []int
	// dist/nbrID/nbrW are the out-of-sample attachment scratch: the
	// batched squared-distance sweep and the bounded nearest-live
	// selection.
	dist  []float64
	nbrID []int
	nbrW  []float64
	// seeds/baseSeeds/deltaSelf are the query's seed distribution: raw
	// seeds as given, their base-graph redistribution (delta seeds
	// forwarded to their anchors), and the t=0 self terms of delta
	// seeds.
	seeds, baseSeeds, deltaSelf []seedWeight
	// aff is the raw heat-kernel affinity of the last out-of-sample
	// attachment (the unnormalized kernel mass), the same density
	// proxy the sharded fan-out scales merges with.
	aff float64
	// scanned counts items scored by the last query (for SearchInfo).
	scanned int
}

// NewSearcher returns a fresh dedicated searcher.
func (e *SpectralIndex) NewSearcher() *SpectralSearcher { return &SpectralSearcher{e: e} }

// NewQuerier is NewSearcher behind the interface surface (Retriever).
func (e *SpectralIndex) NewQuerier() Querier { return e.NewSearcher() }

func (e *SpectralIndex) acquire() *SpectralSearcher {
	if v := e.searchers.Get(); v != nil {
		return v.(*SpectralSearcher)
	}
	return e.NewSearcher()
}

func (e *SpectralIndex) release(sr *SpectralSearcher) { e.searchers.Put(sr) }

// ensure sizes the scratch for the current state (Compact may change
// the rank and base size; Insert grows the id space). Callers hold
// e.mu.
func (sr *SpectralSearcher) ensure(st *spectralState) {
	rank := st.rank
	if cap(sr.b) < rank {
		sr.b = make([]float64, rank)
		sr.coeff = make([]float64, rank)
	}
	sr.b = sr.b[:rank]
	sr.coeff = sr.coeff[:rank]
	for j := range sr.b {
		sr.b[j] = 0
	}
	base := st.baseN
	if cap(sr.hop) < base {
		sr.hop = make([]float64, base)
		sr.pw = make([]float64, base)
		sr.tmp = make([]float64, base)
		sr.hstamp = make([]uint64, base)
		sr.estamp = make([]uint64, base)
		sr.qepoch, sr.eepoch = 0, 0
	}
	sr.hop = sr.hop[:base]
	sr.pw = sr.pw[:base]
	sr.tmp = sr.tmp[:base]
	sr.hstamp = sr.hstamp[:base]
	sr.estamp = sr.estamp[:base]
}

// sortSeedsByID orders a seed list ascending by id with a plain
// insertion sort: seed lists are tiny (a query item, or AttachK
// anchors), and unlike sort.Slice this never boxes the slice, keeping
// the steady-state query path allocation-free.
func sortSeedsByID(s []seedWeight) {
	for i := 1; i < len(s); i++ {
		sw := s[i]
		j := i
		for j > 0 && s[j-1].id > sw.id {
			s[j] = s[j-1]
			j--
		}
		s[j] = sw
	}
}

// splitSeeds converts the raw seed list into the base distribution
// (delta seeds forwarded to their stored anchors, entries merged and
// ascending) and the delta self-term list. Callers hold e.mu; the raw
// list must be ascending by id with unique ids.
func (sr *SpectralSearcher) splitSeeds(raw []seedWeight) {
	st := sr.e.st
	sr.baseSeeds = sr.baseSeeds[:0]
	sr.deltaSelf = sr.deltaSelf[:0]
	for _, sw := range raw {
		if sw.id < st.baseN {
			sr.baseSeeds = append(sr.baseSeeds, sw)
			continue
		}
		sr.deltaSelf = append(sr.deltaSelf, sw)
		d := sw.id - st.baseN
		for t := st.attPtr[d]; t < st.attPtr[d+1]; t++ {
			sr.baseSeeds = append(sr.baseSeeds, seedWeight{id: st.attID[t], w: sw.w * st.attW[t]})
		}
	}
	sortSeedsByID(sr.baseSeeds)
	uniq := sr.baseSeeds[:0]
	for _, sw := range sr.baseSeeds {
		if len(uniq) > 0 && uniq[len(uniq)-1].id == sw.id {
			uniq[len(uniq)-1].w += sw.w
			continue
		}
		uniq = append(uniq, sw)
	}
	sr.baseSeeds = uniq
}

// expandHops evaluates the exact Neumann prefix sum_{t<T} (alpha S)^t
// applied to the base seed distribution: a frontier expansion on the
// sparse base graph, entirely serial (the touched ball is tiny next
// to the O(n*r) scan) and therefore trivially deterministic. The
// horizon is adaptive: at least sopts.Hops rounds always run, after
// which expansion continues while the un-diffused mass exceeds
// hopMassTol and the cumulative edge traversals stay within
// sopts.HopBudget — every stopping criterion is a deterministic
// function of the graph and the seeds. Returns the realized T (so the
// caller evaluates the spectral tail coefficients with exactly the
// terms the prefix did not cover). Results land in sr.hop, valid
// where sr.hstamp[i] == sr.qepoch. Callers hold e.mu.
func (sr *SpectralSearcher) expandHops(seeds []seedWeight) int {
	e := sr.e
	st := e.st
	sr.qepoch++
	sr.curID = sr.curID[:0]
	mass := 0.0
	for _, sw := range seeds {
		sr.hop[sw.id] = sw.w
		sr.pw[sw.id] = sw.w
		sr.hstamp[sw.id] = sr.qepoch
		sr.curID = append(sr.curID, sw.id)
		mass += math.Abs(sw.w)
	}
	S := st.graph
	sval, sval32 := S.Val, S.Val32
	spent := 0
	t := 1
	for ; ; t++ {
		if len(sr.curID) == 0 {
			break
		}
		if t >= e.sopts.Hops && (mass <= hopMassTol || spent >= e.sopts.HopBudget) {
			break
		}
		sr.eepoch++
		sr.nxtID = sr.nxtID[:0]
		for _, j := range sr.curID {
			v := e.alpha * sr.pw[j]
			a, b := S.RowPtr[j], S.RowPtr[j+1]
			if sval32 != nil {
				for x := a; x < b; x++ {
					i := S.Col[x]
					if sr.estamp[i] != sr.eepoch {
						sr.estamp[i] = sr.eepoch
						sr.tmp[i] = 0
						sr.nxtID = append(sr.nxtID, i)
					}
					sr.tmp[i] += float64(sval32[x]) * v
				}
			} else {
				for x := a; x < b; x++ {
					i := S.Col[x]
					if sr.estamp[i] != sr.eepoch {
						sr.estamp[i] = sr.eepoch
						sr.tmp[i] = 0
						sr.nxtID = append(sr.nxtID, i)
					}
					sr.tmp[i] += sval[x] * v
				}
			}
			spent += b - a
		}
		// Ascending-id accumulation keeps the float sums independent of
		// frontier discovery order.
		sort.Ints(sr.nxtID)
		mass = 0
		for _, i := range sr.nxtID {
			w := sr.tmp[i]
			sr.pw[i] = w
			mass += math.Abs(w)
			if sr.hstamp[i] != sr.qepoch {
				sr.hstamp[i] = sr.qepoch
				sr.hop[i] = w
			} else {
				sr.hop[i] += w
			}
		}
		sr.curID, sr.nxtID = sr.nxtID, sr.curID
	}
	return t
}

// collect runs the online half of the engine with e.mu held: expand
// the exact hops from the base seed distribution, scale the
// projection sr.b by the spectral-tail coefficients of the realized
// horizon, then stream every live item through the collector — base
// items read their hop score directly, delta items gather it through
// their attachment and add their t=0 self term. The seed lists must
// already be prepared (splitSeeds) and sr.b filled.
func (sr *SpectralSearcher) collect(k int) []Result {
	e := sr.e
	st := e.st
	r := st.rank
	hops := sr.expandHops(sr.baseSeeds)
	for j := 0; j < r; j++ {
		sr.coeff[j] = tailCoefficient(e.alpha, st.vals[j], hops) * sr.b[j]
	}
	n := st.numPoints()
	live := n - st.deadCount
	if k > live {
		k = live
	}
	emb32 := st.emb32
	sr.col.Reset(k)
	for i := 0; i < st.baseN; i++ {
		if st.dead[i] {
			continue
		}
		// u_i^T coeff in the fixed four-lane summation order of vec.Dot:
		// the scan is the only O(n) term of a query, and the embedding
		// rows stream contiguously, so the four independent accumulators
		// keep it throughput-bound instead of FP-add-latency-bound. In
		// mixed-precision mode the rows stream as float32 (half the
		// bytes) through vec.Dot32, which widens in registers and
		// accumulates in float64 with the same lane order.
		off := i * r
		var sum float64
		if emb32 != nil {
			sum = vec.Dot32(sr.coeff, emb32[off:off+r])
		} else {
			sum = vec.Dot(st.emb[off:off+r], sr.coeff)
		}
		if sr.hstamp[i] == sr.qepoch {
			sum += sr.hop[i]
		}
		sr.col.Offer(i, (1-e.alpha)*sum)
	}
	si := 0
	for i := st.baseN; i < n; i++ {
		if si < len(sr.deltaSelf) && sr.deltaSelf[si].id < i {
			si++
		}
		if st.dead[i] {
			continue
		}
		off := i * r
		var sum float64
		if emb32 != nil {
			sum = vec.Dot32(sr.coeff, emb32[off:off+r])
		} else {
			sum = vec.Dot(st.emb[off:off+r], sr.coeff)
		}
		d := i - st.baseN
		for t := st.attPtr[d]; t < st.attPtr[d+1]; t++ {
			if id := st.attID[t]; sr.hstamp[id] == sr.qepoch {
				sum += st.attW[t] * sr.hop[id]
			}
		}
		if si < len(sr.deltaSelf) && sr.deltaSelf[si].id == i {
			sum += sr.deltaSelf[si].w
		}
		sr.col.Offer(i, (1-e.alpha)*sum)
	}
	sr.scanned = live
	items := sr.col.Drain()
	out := make([]Result, len(items))
	for i, it := range items {
		out[i] = Result{Node: it.ID, Score: it.Score}
	}
	return out
}

// checkItem validates an item id against the current state. Callers
// hold e.mu.
func (st *spectralState) checkItem(id int) error {
	if n := st.numPoints(); id < 0 || id >= n {
		return fmt.Errorf("mogul: item %d outside [0,%d)", id, n)
	}
	if st.dead[id] {
		return fmt.Errorf("mogul: item %d deleted", id)
	}
	return nil
}

// TopK ranks database items against an in-database query item, best
// first. The query item itself is included (it typically ranks first).
func (sr *SpectralSearcher) TopK(query, k int) ([]Result, error) {
	e := sr.e
	e.mu.RLock()
	defer e.mu.RUnlock()
	if k <= 0 {
		return nil, fmt.Errorf("mogul: K must be positive, got %d", k)
	}
	st := e.st
	if err := st.checkItem(query); err != nil {
		return nil, err
	}
	sr.ensure(st)
	if st.emb32 != nil {
		vec.Widen64(sr.b[:0], st.emb32[query*st.rank:(query+1)*st.rank])
	} else {
		copy(sr.b, st.emb[query*st.rank:(query+1)*st.rank])
	}
	sr.seeds = append(sr.seeds[:0], seedWeight{id: query, w: 1})
	sr.splitSeeds(sr.seeds)
	sr.aff = 0
	return sr.collect(k), nil
}

// TopKWithInfo is TopK plus work counters: the spectral engine has no
// pruning, so every retained eigenpair is "scanned" and every live
// item scored.
func (sr *SpectralSearcher) TopKWithInfo(query, k int) ([]Result, *SearchInfo, error) {
	res, err := sr.TopK(query, k)
	if err != nil {
		return nil, nil, err
	}
	e := sr.e
	e.mu.RLock()
	r := e.st.rank
	e.mu.RUnlock()
	return res, &SearchInfo{ClustersScanned: r, ScoresComputed: sr.scanned}, nil
}

// attachLive finds the engine's surrogate seeds for an out-of-sample
// vector: the AttachK nearest live points by one batched
// squared-distance sweep, heat-kernel weighted with the base graph's
// bandwidth. baseOnly restricts the candidates to the base build
// (Insert needs anchors the hop expansion can reach directly). It
// fills sr.nbrID/sr.nbrW (normalized to unit mass) and returns the
// count and the raw (unnormalized) kernel mass. Callers hold e.mu.
func (sr *SpectralSearcher) attachLive(q Vector, baseOnly bool) (int, float64) {
	e := sr.e
	st := e.st
	n := st.numPoints()
	if baseOnly {
		n = st.baseN
	}
	kAttach := e.sopts.AttachK
	if cap(sr.dist) < n {
		sr.dist = make([]float64, n)
	}
	sr.dist = sr.dist[:n]
	if st.pts32 != nil {
		vec.SquaredEuclideanBatch32(q, st.pts32[:n*st.dim], sr.dist)
	} else {
		vec.SquaredEuclideanBatch(q, st.points[:n], sr.dist)
	}
	if cap(sr.nbrID) < kAttach {
		sr.nbrID = make([]int, 0, kAttach)
		sr.nbrW = make([]float64, 0, kAttach)
	}
	sr.nbrID = sr.nbrID[:0]
	sr.nbrW = sr.nbrW[:0]
	// Bounded insertion selection over (distance, id) — a strict total
	// order, so the selected set is deterministic.
	for i := 0; i < n; i++ {
		if st.dead[i] {
			continue
		}
		d := sr.dist[i]
		if len(sr.nbrID) == kAttach && d >= sr.nbrW[kAttach-1] {
			continue
		}
		pos := len(sr.nbrID)
		if pos < kAttach {
			sr.nbrID = sr.nbrID[:pos+1]
			sr.nbrW = sr.nbrW[:pos+1]
		} else {
			pos = kAttach - 1
		}
		for pos > 0 && sr.nbrW[pos-1] > d {
			sr.nbrID[pos] = sr.nbrID[pos-1]
			sr.nbrW[pos] = sr.nbrW[pos-1]
			pos--
		}
		sr.nbrID[pos] = i
		sr.nbrW[pos] = d
	}
	// Heat-kernel weights under the base bandwidth; a query so remote
	// that every weight underflows falls back to uniform attachment
	// (the ranking is meaningless either way, but stays well-defined).
	inv := 0.0
	if st.sigma > 0 {
		inv = 1 / (2 * st.sigma * st.sigma)
	}
	var mass float64
	for t, d := range sr.nbrW {
		w := math.Exp(-d * inv)
		sr.nbrW[t] = w
		mass += w
	}
	if mass > 0 {
		for t := range sr.nbrW {
			sr.nbrW[t] /= mass
		}
	} else {
		for t := range sr.nbrW {
			sr.nbrW[t] = 1 / float64(len(sr.nbrW))
		}
	}
	return len(sr.nbrID), mass
}

// TopKVector ranks database items against an out-of-sample query
// vector: the query attaches to its AttachK nearest live points as
// heat-kernel-weighted surrogate seeds, whose embedding rows project
// it into the basis and whose graph neighbourhoods seed the exact
// hops.
func (sr *SpectralSearcher) TopKVector(q Vector, k int) ([]Result, error) {
	e := sr.e
	e.mu.RLock()
	defer e.mu.RUnlock()
	if k <= 0 {
		return nil, fmt.Errorf("mogul: K must be positive, got %d", k)
	}
	st := e.st
	if len(q) != st.dim {
		return nil, fmt.Errorf("mogul: query dimension %d, want %d", len(q), st.dim)
	}
	sr.ensure(st)
	m, mass := sr.attachLive(q, false)
	sr.seeds = sr.seeds[:0]
	for t := 0; t < m; t++ {
		id, w := sr.nbrID[t], sr.nbrW[t]
		off := id * st.rank
		if st.emb32 != nil {
			vec.Axpy32(sr.b, w, st.emb32[off:off+st.rank])
		} else {
			vec.Axpy(sr.b, w, st.emb[off:off+st.rank])
		}
		sr.seeds = append(sr.seeds, seedWeight{id: id, w: w})
	}
	sortSeedsByID(sr.seeds)
	sr.splitSeeds(sr.seeds)
	sr.aff = mass
	return sr.collect(k), nil
}

// TopKSet ranks database items against a set of seed items with equal
// weights 1/len(seeds), so query mass matches a single-item query.
func (sr *SpectralSearcher) TopKSet(seeds []int, k int) ([]Result, error) {
	if len(seeds) == 0 {
		return nil, fmt.Errorf("mogul: TopKSet needs at least one seed item")
	}
	return sr.topKSetWeighted(seeds, 1/float64(len(seeds)), k)
}

// topKSetWeighted seeds the query vector with q[seed] = weight for
// every seed (duplicates accumulate).
func (sr *SpectralSearcher) topKSetWeighted(seeds []int, weight float64, k int) ([]Result, error) {
	e := sr.e
	e.mu.RLock()
	defer e.mu.RUnlock()
	if k <= 0 {
		return nil, fmt.Errorf("mogul: K must be positive, got %d", k)
	}
	st := e.st
	sr.seeds = sr.seeds[:0]
	for _, id := range seeds {
		if err := st.checkItem(id); err != nil {
			return nil, err
		}
		sr.seeds = append(sr.seeds, seedWeight{id: id, w: weight})
	}
	sortSeedsByID(sr.seeds)
	// Merge duplicate seeds so the downstream cursors see unique
	// ascending ids.
	uniq := sr.seeds[:0]
	for _, sw := range sr.seeds {
		if len(uniq) > 0 && uniq[len(uniq)-1].id == sw.id {
			uniq[len(uniq)-1].w += sw.w
			continue
		}
		uniq = append(uniq, sw)
	}
	sr.seeds = uniq
	sr.ensure(st)
	for _, sw := range sr.seeds {
		off := sw.id * st.rank
		if st.emb32 != nil {
			vec.Axpy32(sr.b, sw.w, st.emb32[off:off+st.rank])
		} else {
			vec.Axpy(sr.b, sw.w, st.emb[off:off+st.rank])
		}
	}
	sr.splitSeeds(sr.seeds)
	sr.aff = 0
	return sr.collect(k), nil
}

// TopK is SpectralSearcher.TopK on a pooled searcher.
func (e *SpectralIndex) TopK(query, k int) ([]Result, error) {
	sr := e.acquire()
	defer e.release(sr)
	return sr.TopK(query, k)
}

// TopKWithInfo is SpectralSearcher.TopKWithInfo on a pooled searcher.
func (e *SpectralIndex) TopKWithInfo(query, k int) ([]Result, *SearchInfo, error) {
	sr := e.acquire()
	defer e.release(sr)
	return sr.TopKWithInfo(query, k)
}

// TopKVector is SpectralSearcher.TopKVector on a pooled searcher.
func (e *SpectralIndex) TopKVector(q Vector, k int) ([]Result, error) {
	sr := e.acquire()
	defer e.release(sr)
	return sr.TopKVector(q, k)
}

// TopKSet is SpectralSearcher.TopKSet on a pooled searcher.
func (e *SpectralIndex) TopKSet(seeds []int, k int) ([]Result, error) {
	sr := e.acquire()
	defer e.release(sr)
	return sr.TopKSet(seeds, k)
}

// TopKBatch answers many in-database queries on a bounded worker pool
// (parallelism <= 0 selects GOMAXPROCS); results land at their
// query's index and per-query failures are recorded, never fatal.
func (e *SpectralIndex) TopKBatch(queries []int, k, parallelism int) []BatchResult {
	return runBatch(len(queries), parallelism, func() func(i int) BatchResult {
		sr := e.NewSearcher()
		return func(i int) BatchResult {
			res, err := sr.TopK(queries[i], k)
			return BatchResult{Query: queries[i], Results: res, Err: err}
		}
	})
}

// TopKVectorBatch answers many out-of-sample queries on a bounded
// worker pool; see TopKBatch.
func (e *SpectralIndex) TopKVectorBatch(queries []Vector, k, parallelism int) []BatchResult {
	return runBatch(len(queries), parallelism, func() func(i int) BatchResult {
		sr := e.NewSearcher()
		return func(i int) BatchResult {
			res, err := sr.TopKVector(queries[i], k)
			return BatchResult{Query: i, Results: res, Err: err}
		}
	})
}

// Insert adds a new point without rebuilding and returns its item id.
// The point becomes immediately searchable: it attaches to its
// AttachK nearest live base points (one batched distance sweep, no
// decomposition), its embedding row is the attachment-weighted
// combination of theirs, and it reads the exact hop scores through
// the same anchors. It does not contribute an eigendirection or graph
// edges of its own until Compact folds it in, so accuracy degrades
// gently as the delta grows — size the delta with
// Options.AutoCompactFraction or call Compact. Safe for concurrent
// use with searches.
func (e *SpectralIndex) Insert(v Vector) (int, error) {
	e.mutMu.Lock()
	defer e.mutMu.Unlock()

	for _, x := range v {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return 0, fmt.Errorf("mogul: inserted vector has non-finite component %g", x)
		}
	}
	e.mu.Lock()
	st := e.st
	if len(v) != st.dim {
		e.mu.Unlock()
		return 0, fmt.Errorf("mogul: inserted vector has dim %d, want %d", len(v), st.dim)
	}
	id := st.numPoints()
	stored := append(Vector(nil), v...)
	// The attachment runs on a throwaway searcher: Insert is not the
	// hot path, and the helper shares the exact code the query-time
	// attachment uses. The row is always accumulated in float64 and
	// narrowed only on append, matching the build's narrow-last rule.
	sr := e.NewSearcher()
	m, _ := sr.attachLive(stored, true)
	row := make([]float64, st.rank)
	for t := 0; t < m; t++ {
		off := sr.nbrID[t] * st.rank
		if st.emb32 != nil {
			vec.Axpy32(row, sr.nbrW[t], st.emb32[off:off+st.rank])
		} else {
			vec.Axpy(row, sr.nbrW[t], st.emb[off:off+st.rank])
		}
	}
	if st.f32() {
		for _, x := range stored {
			st.pts32 = append(st.pts32, float32(x))
		}
		for _, x := range row {
			st.emb32 = append(st.emb32, float32(x))
		}
	} else {
		st.points = append(st.points, stored)
		st.emb = append(st.emb, row...)
	}
	st.dead = append(st.dead, false)
	st.attID = append(st.attID, sr.nbrID[:m]...)
	st.attW = append(st.attW, sr.nbrW[:m]...)
	st.attPtr = append(st.attPtr, len(st.attID))
	needCompact := e.needsCompactLocked()
	e.version.Add(1)
	e.mu.Unlock()

	if needCompact {
		if err := e.compactLocked(); err != nil {
			return id, fmt.Errorf("mogul: auto-compact after insert: %w", err)
		}
	}
	return id, nil
}

// Delete tombstones an item: it stops appearing in results and stops
// being a valid query, its id is never reused, and Compact reclaims
// the storage. Deleting the last live item is refused.
func (e *SpectralIndex) Delete(id int) error {
	e.mutMu.Lock()
	defer e.mutMu.Unlock()

	e.mu.Lock()
	st := e.st
	if n := st.numPoints(); id < 0 || id >= n {
		e.mu.Unlock()
		return fmt.Errorf("mogul: item %d outside [0,%d)", id, n)
	}
	if st.dead[id] {
		e.mu.Unlock()
		return fmt.Errorf("mogul: item %d already deleted", id)
	}
	if st.numPoints()-st.deadCount <= 1 {
		e.mu.Unlock()
		return fmt.Errorf("mogul: cannot delete the last live item")
	}
	st.dead[id] = true
	st.deadCount++
	if id < st.baseN {
		st.deadBase++
	}
	needCompact := e.needsCompactLocked()
	e.version.Add(1)
	e.mu.Unlock()

	if needCompact {
		if err := e.compactLocked(); err != nil {
			return fmt.Errorf("mogul: auto-compact after delete: %w", err)
		}
	}
	return nil
}

// needsCompactLocked applies the AutoCompactFraction policy: the
// pending delta is the items inserted since the base build plus the
// tombstones in the base (a deleted delta item already counts through
// the first term). Callers hold e.mu (any mode) and e.mutMu.
func (e *SpectralIndex) needsCompactLocked() bool {
	if e.autoCompact <= 0 {
		return false
	}
	st := e.st
	pending := (st.numPoints() - st.baseN) + st.deadBase
	return float64(pending) > e.autoCompact*float64(st.baseN)
}

// Compact folds the delta into a fresh base: graph construction and
// the Lanczos decomposition re-run over the live points in id order
// (renumbering ids contiguously from zero, exactly as a fresh
// BuildSpectral over those points — the rebuild is deterministic for
// the recorded seed). Searches proceed against the old state until
// the swap; mutators queue behind it.
func (e *SpectralIndex) Compact() error {
	e.mutMu.Lock()
	defer e.mutMu.Unlock()
	return e.compactLocked()
}

// compactLocked is Compact with mutMu already held.
func (e *SpectralIndex) compactLocked() error {
	e.mu.RLock()
	st := e.st
	if st.numPoints() == st.baseN && st.deadCount == 0 {
		e.mu.RUnlock()
		return nil
	}
	wasF32 := st.f32()
	live := make([]Vector, 0, st.numPoints()-st.deadCount)
	for i, n := 0, st.numPoints(); i < n; i++ {
		if !st.dead[i] {
			live = append(live, st.pointVec(i))
		}
	}
	e.mu.RUnlock()

	// The heavy rebuild runs outside every lock; mutMu keeps the live
	// snapshot authoritative (no mutator can run until the swap). The
	// rebuild itself is always float64; a narrowed engine re-narrows
	// the fresh state after, preserving the storage mode.
	fresh, err := buildSpectralState(live, e.ropts, e.sopts)
	if err != nil {
		return err
	}
	if wasF32 {
		fresh.narrow32()
	}
	e.mu.Lock()
	e.st = fresh
	e.version.Add(1)
	e.mu.Unlock()
	return nil
}

// --- The extended surface the distributed layer fans out over ---

// IDSpace returns the upper bound of the id space, tombstones
// included (ids of deleted items are retired until Compact renumbers).
func (e *SpectralIndex) IDSpace() int {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.st.numPoints()
}

// Alive reports whether id addresses a live (non-deleted, in-range)
// item.
func (e *SpectralIndex) Alive(id int) bool {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return id >= 0 && id < e.st.numPoints() && !e.st.dead[id]
}

// LogLen reports 0: the spectral engine keeps no replayable delta
// log, so followers replicate it by snapshot only.
func (e *SpectralIndex) LogLen() int { return 0 }

// TopKWithVector is TopK plus the query item's stored vector and the
// engine's raw kernel affinity to it — what the distributed
// coordinator needs from the owner shard in one round trip to probe
// the remaining shards and scale their answers.
func (e *SpectralIndex) TopKWithVector(query, k int) ([]Result, Vector, float64, error) {
	sr := e.acquire()
	defer e.release(sr)
	res, err := sr.TopK(query, k)
	if err != nil {
		return nil, nil, 0, err
	}
	e.mu.RLock()
	st := e.st
	if err := st.checkItem(query); err != nil {
		e.mu.RUnlock()
		return nil, nil, 0, err
	}
	qvec := append(Vector(nil), st.pointVec(query)...)
	_, aff := sr.attachLive(qvec, false)
	e.mu.RUnlock()
	return res, qvec, aff, nil
}

// TopKVectorWithAffinity is TopKVector plus the engine's raw kernel
// affinity to the query (the unnormalized heat-kernel mass of the
// attachment), the same density proxy the sharded fan-out scales
// cross-shard merges with.
func (e *SpectralIndex) TopKVectorWithAffinity(q Vector, k int) ([]Result, float64, error) {
	sr := e.acquire()
	defer e.release(sr)
	res, err := sr.TopKVector(q, k)
	if err != nil {
		return nil, 0, err
	}
	return res, sr.aff, nil
}

// TopKSetWeighted ranks items against seed items all carrying the
// given weight (the coordinator's cross-shard set query, where the
// global 1/len(seeds) is applied before the fan-out).
func (e *SpectralIndex) TopKSetWeighted(seeds []int, weight float64, k int) ([]Result, error) {
	if len(seeds) == 0 {
		return nil, fmt.Errorf("mogul: TopKSetWeighted needs at least one seed item")
	}
	sr := e.acquire()
	defer e.release(sr)
	return sr.topKSetWeighted(seeds, weight, k)
}
