package mogul

// Committed bench-baseline guard. CI's bench-smoke job and the docs
// reference BENCH_*.json artifacts as the repo's performance
// trajectory; the committed copies at the repo root are the baselines
// those runs are read against. A baseline that silently disappears
// from the tree (as BENCH_search.json, BENCH_emr.json, and
// BENCH_distributed.json once did) leaves the trajectory empty with
// no failing signal — so this test scans every doc and workflow for
// BENCH_*.json references and fails loudly when a referenced baseline
// is absent or unreadable.

import (
	"encoding/json"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"testing"
)

// benchBaselineRefs collects the set of BENCH_*.json names referenced
// by CI and the user-facing docs (historical notes in CHANGES.md and
// the per-PR ISSUE.md do not pin baselines).
func benchBaselineRefs(t *testing.T) []string {
	t.Helper()
	sources := []string{".github/workflows/ci.yml", "README.md", "ROADMAP.md"}
	docs, err := filepath.Glob("docs/*.md")
	if err != nil {
		t.Fatal(err)
	}
	sources = append(sources, docs...)

	re := regexp.MustCompile(`BENCH_\w+\.json`)
	seen := map[string]bool{}
	for _, src := range sources {
		data, err := os.ReadFile(src)
		if err != nil {
			t.Fatalf("reading %s: %v", src, err)
		}
		for _, m := range re.FindAllString(string(data), -1) {
			seen[m] = true
		}
	}
	names := make([]string, 0, len(seen))
	for n := range seen {
		names = append(names, n)
	}
	sort.Strings(names)
	if len(names) == 0 {
		t.Fatal("no BENCH_*.json references found in CI or docs — the scan is broken")
	}
	return names
}

func TestCommittedBenchBaselinesPresent(t *testing.T) {
	for _, name := range benchBaselineRefs(t) {
		t.Run(name, func(t *testing.T) {
			data, err := os.ReadFile(name)
			if err != nil {
				t.Fatalf("baseline %s is referenced by CI/docs but missing from the tree: %v", name, err)
			}
			// The committed baseline must be a real bench2json report, not
			// an empty or truncated artifact.
			var rep struct {
				Benchmarks []struct {
					Name    string  `json:"name"`
					NsPerOp float64 `json:"ns_per_op"`
				} `json:"benchmarks"`
			}
			if err := json.Unmarshal(data, &rep); err != nil {
				t.Fatalf("baseline %s is not valid bench2json output: %v", name, err)
			}
			if len(rep.Benchmarks) == 0 {
				t.Fatalf("baseline %s carries no benchmark entries", name)
			}
			for _, b := range rep.Benchmarks {
				if b.Name == "" || b.NsPerOp <= 0 {
					t.Fatalf("baseline %s has a benchmark entry without a name or timing: %+v", name, b)
				}
			}
		})
	}
}
