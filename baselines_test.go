package mogul

// Committed bench-baseline guard. CI's bench-smoke job and the docs
// reference BENCH_*.json artifacts as the repo's performance
// trajectory; the committed copies at the repo root are the baselines
// those runs are read against. A baseline that silently disappears
// from the tree (as BENCH_search.json, BENCH_emr.json, and
// BENCH_distributed.json once did) leaves the trajectory empty with
// no failing signal — so this test scans every doc and workflow for
// BENCH_*.json references and fails loudly when a referenced baseline
// is absent or unreadable.

import (
	"encoding/json"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"testing"
)

// benchBaselineRefs collects the set of BENCH_*.json names referenced
// by CI and the user-facing docs (historical notes in CHANGES.md and
// the per-PR ISSUE.md do not pin baselines).
func benchBaselineRefs(t *testing.T) []string {
	t.Helper()
	sources := []string{".github/workflows/ci.yml", "README.md", "ROADMAP.md"}
	docs, err := filepath.Glob("docs/*.md")
	if err != nil {
		t.Fatal(err)
	}
	sources = append(sources, docs...)

	re := regexp.MustCompile(`BENCH_\w+\.json`)
	seen := map[string]bool{}
	for _, src := range sources {
		data, err := os.ReadFile(src)
		if err != nil {
			t.Fatalf("reading %s: %v", src, err)
		}
		for _, m := range re.FindAllString(string(data), -1) {
			seen[m] = true
		}
	}
	names := make([]string, 0, len(seen))
	for n := range seen {
		names = append(names, n)
	}
	sort.Strings(names)
	if len(names) == 0 {
		t.Fatal("no BENCH_*.json references found in CI or docs — the scan is broken")
	}
	return names
}

// TestF32BaselineStreamRatio pins the mixed-precision acceptance
// criterion into the committed BENCH_f32.json: every F32 distance
// kernel must stream fewer bytes per op than its F64 counterpart, and
// the dense batch kernels (whose traffic is pure element storage, no
// index columns) must show at least the 1.5x reduction the storage
// mode exists for. The ratio is a property of the layout, not the
// machine, so a committed baseline that violates it was generated
// against regressed kernels.
func TestF32BaselineStreamRatio(t *testing.T) {
	data, err := os.ReadFile("BENCH_f32.json")
	if err != nil {
		t.Fatalf("baseline BENCH_f32.json missing: %v", err)
	}
	var rep struct {
		Benchmarks []struct {
			Name    string             `json:"name"`
			Metrics map[string]float64 `json:"metrics"`
		} `json:"benchmarks"`
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatal(err)
	}
	stream := map[string]float64{}
	for _, b := range rep.Benchmarks {
		if v, ok := b.Metrics["stream-B/op"]; ok {
			stream[b.Name] = v
		}
	}
	pairs := []struct {
		kernel   string
		minRatio float64
	}{
		{"BenchmarkKernelSquaredEuclideanBatch", 1.5},
		{"BenchmarkKernelDotRows", 1.5},
		// The gather kernel's traffic includes the int32 index column,
		// which does not narrow: 12 -> 8 bytes per element, ratio 1.5.
		{"BenchmarkKernelGather", 1.4},
	}
	for _, p := range pairs {
		f64, ok64 := stream[p.kernel+"F64"]
		f32, ok32 := stream[p.kernel+"F32"]
		if !ok64 || !ok32 {
			t.Errorf("BENCH_f32.json is missing the %sF64/F32 pair", p.kernel)
			continue
		}
		if ratio := f64 / f32; ratio < p.minRatio {
			t.Errorf("%s: f64 streams %.0f B/op vs f32 %.0f (%.2fx), want >= %.1fx less traffic",
				p.kernel, f64, f32, ratio, p.minRatio)
		}
	}
}

func TestCommittedBenchBaselinesPresent(t *testing.T) {
	for _, name := range benchBaselineRefs(t) {
		t.Run(name, func(t *testing.T) {
			data, err := os.ReadFile(name)
			if err != nil {
				t.Fatalf("baseline %s is referenced by CI/docs but missing from the tree: %v", name, err)
			}
			// The committed baseline must be a real bench2json report, not
			// an empty or truncated artifact.
			var rep struct {
				Benchmarks []struct {
					Name    string  `json:"name"`
					NsPerOp float64 `json:"ns_per_op"`
				} `json:"benchmarks"`
			}
			if err := json.Unmarshal(data, &rep); err != nil {
				t.Fatalf("baseline %s is not valid bench2json output: %v", name, err)
			}
			if len(rep.Benchmarks) == 0 {
				t.Fatalf("baseline %s carries no benchmark entries", name)
			}
			for _, b := range rep.Benchmarks {
				if b.Name == "" || b.NsPerOp <= 0 {
					t.Fatalf("baseline %s has a benchmark entry without a name or timing: %+v", name, b)
				}
			}
		})
	}
}
