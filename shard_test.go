package mogul

// Test harness pinning the sharded index to the single-index oracle.
//
// Three layers of evidence, from exact to statistical:
//
//  1. S = 1 is bit-identical to a plain Index: one shard over
//     everything IS the single build (same sigma derivation, same
//     graph, same factor), so every score must match exactly.
//  2. Equivalence property: the fan-out is rank- and score-identical
//     to an oracle assembled by hand from independent per-partition
//     indexes (owner searched in-database, the rest out-of-sample,
//     affinity-scaled, merged globally) — proving the ShardedIndex
//     adds nothing beyond partition + fan-out + merge.
//  3. Recall@10 >= 0.9 against the unsharded oracle for S in
//     {1, 2, 4, 8} on two-moons and random mixtures, on exact
//     (MogulE) scores — which isolates the sharded fan-out model from
//     IC(0) approximation noise: the incomplete factor depends on the
//     node ordering, so per-shard orderings perturb approximate
//     scores near the rank cut even when the fan-out is faithful. The
//     default approximate mode is pinned separately at >= 0.8.

import (
	"math"
	"slices"
	"sort"
	"testing"
)

// shardTestDatasets are the two dataset families the recall properties
// run on: the canonical manifold pattern and a labelled random
// mixture.
func shardTestDatasets() map[string]*Dataset {
	return map[string]*Dataset{
		"two-moons": NewTwoMoons(TwoMoonsConfig{N: 800, Noise: 0.06, Seed: 5}),
		"random":    NewMixture(MixtureConfig{N: 800, Classes: 8, Dim: 12, WithinStd: 0.25, Separation: 4, Seed: 11}),
	}
}

func sampleQueries(n, stride int) []int {
	out := []int{}
	for q := 0; q < n; q += stride {
		out = append(out, q)
	}
	return out
}

// TestShardedS1BitIdentical: with a single shard, every fan-out path
// returns exactly what the plain Index returns — scores included — for
// both partitioners and both factorization modes.
func TestShardedS1BitIdentical(t *testing.T) {
	ds := NewMixture(MixtureConfig{N: 400, Classes: 8, Dim: 12, WithinStd: 0.25, Separation: 3, Seed: 7})
	for _, exact := range []bool{false, true} {
		for _, part := range []Partitioner{PartitionContiguous, PartitionKMeans} {
			opts := Options{Seed: 3, Exact: exact}
			plain, err := Build(ds.Points, opts)
			if err != nil {
				t.Fatal(err)
			}
			six, err := BuildSharded(ds.Points, opts, ShardOptions{Shards: 1, Partitioner: part})
			if err != nil {
				t.Fatal(err)
			}
			if six.NumShards() != 1 || six.Len() != plain.Len() {
				t.Fatalf("S=1 shape: shards=%d len=%d", six.NumShards(), six.Len())
			}
			for _, q := range sampleQueries(ds.Len(), 37) {
				a, err := plain.TopK(q, 10)
				if err != nil {
					t.Fatal(err)
				}
				b, err := six.TopK(q, 10)
				if err != nil {
					t.Fatal(err)
				}
				if !slices.Equal(a, b) {
					t.Fatalf("exact=%v part=%d TopK(%d) differs:\nplain   %v\nsharded %v", exact, part, q, a, b)
				}
			}
			qv := slices.Clone(ds.Points[3])
			qv[0] += 0.05
			a, err := plain.TopKVector(qv, 10)
			if err != nil {
				t.Fatal(err)
			}
			b, err := six.TopKVector(qv, 10)
			if err != nil {
				t.Fatal(err)
			}
			if !slices.Equal(a, b) {
				t.Fatalf("exact=%v part=%d TopKVector differs", exact, part)
			}
			a, err = plain.TopKSet([]int{3, 4, 5}, 10)
			if err != nil {
				t.Fatal(err)
			}
			b, err = six.TopKSet([]int{3, 4, 5}, 10)
			if err != nil {
				t.Fatal(err)
			}
			if !slices.Equal(a, b) {
				t.Fatalf("exact=%v part=%d TopKSet differs", exact, part)
			}
		}
	}
}

// handOracle is an independent reimplementation of the fan-out over
// per-partition plain Indexes: the owner partition answers the
// in-database search, every other partition answers out-of-sample
// scaled by its affinity relative to the owner's, and the global top-k
// comes from sorting the concatenated candidates. Rank- and
// score-identity against it proves the ShardedIndex is exactly
// "partition + fan-out + merge" and nothing more.
type handOracle struct {
	parts  []*Index
	l2g    [][]int        // partition-local id -> global id
	locOf  map[int][2]int // global id -> (partition, local)
	points []Vector
}

func newHandOracle(t *testing.T, points []Vector, opts Options, shards int) *handOracle {
	t.Helper()
	// Mirror BuildSharded's per-shard options: no shard-local
	// auto-compaction, one pinned bandwidth across partitions.
	opts.AutoCompactFraction = 0
	if shards > 1 && opts.Sigma == 0 {
		k := opts.GraphK
		if k <= 0 {
			k = 5
		}
		opts.Sigma = EstimateSigma(points, k)
	}
	h := &handOracle{locOf: map[int][2]int{}, points: points}
	n := len(points)
	for s := 0; s < shards; s++ {
		lo, hi := s*n/shards, (s+1)*n/shards
		ix, err := Build(points[lo:hi], opts)
		if err != nil {
			t.Fatal(err)
		}
		h.parts = append(h.parts, ix)
		var m []int
		for g := lo; g < hi; g++ {
			h.locOf[g] = [2]int{s, g - lo}
			m = append(m, g)
		}
		h.l2g = append(h.l2g, m)
	}
	return h
}

func (h *handOracle) insert(t *testing.T, v Vector) int {
	t.Helper()
	// BuildSharded's contiguous insert routing: fewest live items,
	// lowest partition id on ties.
	best := 0
	for s := 1; s < len(h.parts); s++ {
		if h.parts[s].Len() < h.parts[best].Len() {
			best = s
		}
	}
	local, err := h.parts[best].Insert(v)
	if err != nil {
		t.Fatal(err)
	}
	g := len(h.locOf)
	h.locOf[g] = [2]int{best, local}
	h.l2g[best] = append(h.l2g[best], g)
	h.points = append(h.points, v)
	return g
}

func (h *handOracle) topK(t *testing.T, query, k int) []Result {
	t.Helper()
	loc := h.locOf[query]
	qvec := h.points[query]
	var all []Result
	ownRes, err := h.parts[loc[0]].TopK(loc[1], k)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range ownRes {
		all = append(all, Result{Node: h.l2g[loc[0]][r.Node], Score: r.Score})
	}
	var ownAff float64
	if len(h.parts) > 1 {
		// The public breakdown carries the same affinity the sharded
		// fan-out reads internally (surrogate selection is
		// deterministic, so a probe query reproduces it exactly).
		_, bd, err := h.parts[loc[0]].TopKVectorWithInfo(qvec, 1)
		if err != nil {
			t.Fatal(err)
		}
		ownAff = bd.Affinity
	}
	for s, part := range h.parts {
		if s == loc[0] {
			continue
		}
		res, bd, err := part.TopKVectorWithInfo(qvec, k)
		if err != nil {
			t.Fatal(err)
		}
		scale := relativeAffinity(bd.Affinity, ownAff)
		for _, r := range res {
			all = append(all, Result{Node: h.l2g[s][r.Node], Score: scale * r.Score})
		}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Score != all[j].Score {
			return all[i].Score > all[j].Score
		}
		return all[i].Node < all[j].Node
	})
	if len(all) > k {
		all = all[:k]
	}
	return all
}

// TestShardedEquivalenceToHandMerge: for insert-only workloads with
// the contiguous partitioner, fan-out results are rank-identical (and
// score-identical within 1e-9) to the hand-assembled per-partition
// oracle — before and after online inserts.
func TestShardedEquivalenceToHandMerge(t *testing.T) {
	ds := NewMixture(MixtureConfig{N: 440, Classes: 8, Dim: 12, WithinStd: 0.3, Separation: 2.5, Seed: 13})
	base, extra := ds.Points[:400], ds.Points[400:]
	opts := Options{Seed: 3}
	for _, shards := range []int{2, 4} {
		six, err := BuildSharded(base, opts, ShardOptions{Shards: shards, Partitioner: PartitionContiguous})
		if err != nil {
			t.Fatal(err)
		}
		oracle := newHandOracle(t, base, opts, shards)

		check := func(stage string) {
			t.Helper()
			for _, q := range sampleQueries(six.Len(), 41) {
				got, err := six.TopK(q, 10)
				if err != nil {
					t.Fatal(err)
				}
				want := oracle.topK(t, q, 10)
				if len(got) != len(want) {
					t.Fatalf("S=%d %s TopK(%d): %d results, oracle %d", shards, stage, q, len(got), len(want))
				}
				for i := range want {
					if got[i].Node != want[i].Node {
						t.Fatalf("S=%d %s TopK(%d) rank %d: item %d, oracle %d\ngot  %v\nwant %v",
							shards, stage, q, i, got[i].Node, want[i].Node, got, want)
					}
					if math.Abs(got[i].Score-want[i].Score) > 1e-9 {
						t.Fatalf("S=%d %s TopK(%d) rank %d: score %g, oracle %g",
							shards, stage, q, i, got[i].Score, want[i].Score)
					}
				}
			}
		}
		check("fresh")

		for _, p := range extra {
			g, err := six.Insert(p)
			if err != nil {
				t.Fatal(err)
			}
			if og := oracle.insert(t, p); og != g {
				t.Fatalf("S=%d insert ids diverge: sharded %d, oracle %d", shards, g, og)
			}
		}
		check("after inserts")
	}
}

// shardRecall returns mean recall@k of the sharded fan-out against the
// unsharded index.
func shardRecall(t *testing.T, six *ShardedIndex, oracle *Index, queries []int, k int) float64 {
	t.Helper()
	var total float64
	for _, q := range queries {
		got, err := six.TopK(q, k)
		if err != nil {
			t.Fatal(err)
		}
		want, err := oracle.TopK(q, k)
		if err != nil {
			t.Fatal(err)
		}
		ref := make(map[int]bool, len(want))
		for _, r := range want {
			ref[r.Node] = true
		}
		hits := 0
		for _, r := range got {
			if ref[r.Node] {
				hits++
			}
		}
		total += float64(hits) / float64(len(want))
	}
	return total / float64(len(queries))
}

// TestShardedRecallVsOracle: the acceptance property. On exact
// (MogulE) scores — isolating the fan-out model from IC(0) ordering
// noise — recall@10 against the unsharded oracle stays >= 0.9 for
// S in {1, 2, 4, 8} on both dataset families, and S = 1 is exact. The
// default approximate mode, whose incomplete factor differs per shard
// ordering, is pinned at >= 0.8 on the same grid.
func TestShardedRecallVsOracle(t *testing.T) {
	if testing.Short() {
		t.Skip("builds 2 datasets x 2 modes x 4 shard counts")
	}
	for name, ds := range shardTestDatasets() {
		queries := sampleQueries(ds.Len(), 23)
		for _, exact := range []bool{true, false} {
			opts := Options{Seed: 3, Exact: exact}
			oracle, err := Build(ds.Points, opts)
			if err != nil {
				t.Fatal(err)
			}
			floor := 0.9
			if !exact {
				floor = 0.8
			}
			for _, shards := range []int{1, 2, 4, 8} {
				six, err := BuildSharded(ds.Points, opts, ShardOptions{Shards: shards, Partitioner: PartitionKMeans})
				if err != nil {
					t.Fatal(err)
				}
				rec := shardRecall(t, six, oracle, queries, 10)
				t.Logf("%s exact=%v S=%d recall@10=%.3f (shard sizes %v)", name, exact, shards, rec, six.ShardLens())
				if shards == 1 && rec != 1 {
					t.Fatalf("%s exact=%v: S=1 recall %.3f, want exactly 1 (bit-identity)", name, exact, rec)
				}
				if rec < floor {
					t.Fatalf("%s exact=%v S=%d: recall@10 %.3f below %.2f", name, exact, shards, rec, floor)
				}
			}
		}
	}
}

// TestShardedDynamicRouting: Insert routes to the owning shard and
// returns stable global ids; Delete tombstones through the routing;
// Compact preserves global ids while renumbering shard-locals; errors
// mirror the single-index contract.
func TestShardedDynamicRouting(t *testing.T) {
	ds := NewMixture(MixtureConfig{N: 460, Classes: 8, Dim: 12, WithinStd: 0.3, Separation: 2.5, Seed: 17})
	base, extra := ds.Points[:400], ds.Points[400:]
	for _, part := range []Partitioner{PartitionContiguous, PartitionKMeans} {
		six, err := BuildSharded(base, Options{Seed: 3}, ShardOptions{Shards: 4, Partitioner: part})
		if err != nil {
			t.Fatal(err)
		}
		// Inserts get consecutive global ids and become searchable.
		var inserted []int
		for _, p := range extra {
			g, err := six.Insert(p)
			if err != nil {
				t.Fatal(err)
			}
			if g != six.Len()-1 {
				t.Fatalf("insert id %d, want %d", g, six.Len()-1)
			}
			inserted = append(inserted, g)
			// A delta item diffuses from its surrogates, so its own
			// score is their weighted mean — the surrogates themselves
			// may outrank it (as on a plain Index), but it must be
			// live and searchable under its global id.
			res, err := six.TopK(g, six.Len())
			if err != nil {
				t.Fatal(err)
			}
			found := false
			for _, r := range res {
				found = found || r.Node == g
			}
			if !found {
				t.Fatalf("fresh insert %d missing from its own full ranking", g)
			}
		}
		// A deleted item vanishes from results and can no longer query.
		victimBase, victimDelta := 11, inserted[1]
		for _, victim := range []int{victimBase, victimDelta} {
			if err := six.Delete(victim); err != nil {
				t.Fatal(err)
			}
			if err := six.Delete(victim); err == nil {
				t.Fatalf("double delete of %d accepted", victim)
			}
			if _, err := six.TopK(victim, 3); err == nil {
				t.Fatalf("deleted %d still queries", victim)
			}
			res, err := six.TopK(0, six.Len())
			if err != nil {
				t.Fatal(err)
			}
			for _, r := range res {
				if r.Node == victim {
					t.Fatalf("deleted %d still in results", victim)
				}
			}
		}
		if _, err := six.TopK(len(base)+len(extra)+5, 3); err == nil {
			t.Fatal("out-of-range query accepted")
		}
		if err := six.Delete(-1); err == nil {
			t.Fatal("negative delete accepted")
		}

		// Survivors, by global id, with their pre-compaction ranking.
		lenBefore := six.Len()
		before := map[int][]Result{}
		for _, q := range []int{0, 42, 399, inserted[0]} {
			res, err := six.TopK(q, 8)
			if err != nil {
				t.Fatal(err)
			}
			before[q] = res
		}
		if err := six.Compact(); err != nil {
			t.Fatal(err)
		}
		if six.Len() != lenBefore {
			t.Fatalf("Compact changed Len: %d -> %d", lenBefore, six.Len())
		}
		d := six.Delta()
		if d.DeltaItems != 0 || d.Tombstones != 0 {
			t.Fatalf("Compact left delta state: %+v", d)
		}
		// Global ids survive compaction: the same queries still answer
		// under the same ids and place at the very top of their own
		// ranking (a near-duplicate just across a shard boundary may
		// edge ahead through the affinity-scaled cross-shard path, so
		// exact rank 1 is not guaranteed; scores shift — the shard
		// bases were rebuilt over the merged point sets).
		for q := range before {
			res, err := six.TopK(q, 8)
			if err != nil {
				t.Fatalf("query %d after Compact: %v", q, err)
			}
			self := -1
			for i, r := range res {
				if r.Node == q {
					self = i
					break
				}
			}
			if self < 0 || self > 2 {
				t.Fatalf("query %d ranks %d in its own results after Compact: %+v", q, self, res)
			}
		}
		// Retired ids stay dead after compaction.
		if _, err := six.TopK(victimBase, 3); err == nil {
			t.Fatal("compacted-away id queries again")
		}
		if err := six.Delete(victimBase); err == nil {
			t.Fatal("compacted-away id deletes again")
		}
	}
}

// TestShardedBatchAndInterfaces: the batch entry points agree with the
// sequential ones, and both index kinds serve through the shared
// Retriever/Querier surface.
func TestShardedBatchAndInterfaces(t *testing.T) {
	ds := NewMixture(MixtureConfig{N: 400, Classes: 8, Dim: 12, WithinStd: 0.3, Separation: 2.5, Seed: 19})
	six, err := BuildSharded(ds.Points, Options{Seed: 3}, ShardOptions{Shards: 4, Partitioner: PartitionKMeans})
	if err != nil {
		t.Fatal(err)
	}
	queries := sampleQueries(six.Len(), 29)
	batch := six.TopKBatch(queries, 6, 4)
	if len(batch) != len(queries) {
		t.Fatalf("batch size %d, want %d", len(batch), len(queries))
	}
	for i, br := range batch {
		if br.Err != nil {
			t.Fatal(br.Err)
		}
		want, err := six.TopK(queries[i], 6)
		if err != nil {
			t.Fatal(err)
		}
		if !slices.Equal(br.Results, want) {
			t.Fatalf("batch query %d differs from sequential", queries[i])
		}
	}
	bad := six.TopKBatch([]int{0, six.Len() + 10}, 3, 2)
	if bad[1].Err == nil || bad[0].Err != nil {
		t.Fatalf("batch error routing wrong: %+v", bad)
	}

	vecBatch := six.TopKVectorBatch([]Vector{ds.Points[5], ds.Points[50]}, 4, 2)
	for i, br := range vecBatch {
		if br.Err != nil {
			t.Fatal(br.Err)
		}
		want, err := six.TopKVector([]Vector{ds.Points[5], ds.Points[50]}[i], 4)
		if err != nil {
			t.Fatal(err)
		}
		if !slices.Equal(br.Results, want) {
			t.Fatalf("vector batch %d differs from sequential", i)
		}
	}

	// The Retriever surface serves both kinds interchangeably.
	var r Retriever = six
	qr := r.NewQuerier()
	res, err := qr.TopK(7, 5)
	if err != nil || len(res) != 5 {
		t.Fatalf("querier through interface: %v %v", res, err)
	}
	if _, _, err := qr.TopKWithInfo(7, 5); err != nil {
		t.Fatal(err)
	}
	ids, weights, err := r.Neighbors(7)
	if err != nil || len(ids) == 0 || len(ids) != len(weights) {
		t.Fatalf("Neighbors through interface: %v %v %v", ids, weights, err)
	}
	st := r.Stats()
	if st.NumNodes != 400 || st.NumClusters < 4 {
		t.Fatalf("aggregated stats look wrong: %+v", st)
	}
	if r.Exact() {
		t.Fatal("Exact() true for approximate shards")
	}
}

// TestShardedAutoCompact: the sharded layer owns the auto-compaction
// fraction — a shard whose pending delta outgrows it folds in on
// Insert, without disturbing global ids.
func TestShardedAutoCompact(t *testing.T) {
	ds := NewMixture(MixtureConfig{N: 520, Classes: 8, Dim: 12, WithinStd: 0.3, Separation: 2.5, Seed: 23})
	base, extra := ds.Points[:400], ds.Points[400:]
	six, err := BuildSharded(base, Options{Seed: 3, AutoCompactFraction: 0.1}, ShardOptions{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	var ids []int
	for _, p := range extra {
		g, err := six.Insert(p)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, g)
	}
	// 120 inserts against a 10% fraction on ~200-item shards must have
	// compacted at least once.
	d := six.Delta()
	if d.DeltaItems >= len(extra) {
		t.Fatalf("auto-compaction never ran: %+v", d)
	}
	// Every insert's global id still answers and appears in its own
	// full ranking (compacted inserts became base items; still-pending
	// ones score as their surrogates' mean).
	for _, g := range ids {
		res, err := six.TopK(g, six.Len())
		if err != nil {
			t.Fatalf("insert %d lost after auto-compact: %v", g, err)
		}
		found := false
		for _, r := range res {
			found = found || r.Node == g
		}
		if !found {
			t.Fatalf("insert %d missing from its own full ranking after auto-compact", g)
		}
	}
}

// TestBuildShardedErrors: input validation.
func TestBuildShardedErrors(t *testing.T) {
	ds := NewMixture(MixtureConfig{N: 20, Classes: 2, Dim: 4, WithinStd: 0.3, Separation: 2.5, Seed: 29})
	if _, err := BuildSharded(ds.Points[:6], Options{}, ShardOptions{Shards: 4}); err == nil {
		t.Fatal("6 points across 4 shards accepted")
	}
	if _, err := BuildSharded(ds.Points, Options{}, ShardOptions{Shards: 2, Partitioner: Partitioner(99)}); err == nil {
		t.Fatal("unknown partitioner accepted")
	}
	six, err := BuildSharded(ds.Points, Options{}, ShardOptions{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := six.TopK(3, 0); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := six.TopKSet(nil, 5); err == nil {
		t.Fatal("empty seed set accepted")
	}
}
