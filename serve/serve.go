// Package serve is Mogul's production HTTP serving layer: it wraps any
// mogul.Retriever — a plain *mogul.Index, a *mogul.ShardedIndex, or
// whatever future backend implements the interface — in a JSON query
// service built for sustained traffic, not demos. On top of the plain
// handlers it layers:
//
//   - a version-keyed result cache (internal/lru): query results are
//     stamped with the index's mutation Version, so every Insert,
//     Delete, or Compact invalidates the whole cache implicitly — no
//     explicit flush, no stale answers;
//   - micro-batched execution: concurrent out-of-sample queries inside
//     a small window are coalesced (identical in-flight queries
//     deduplicated) into one TopKVectorBatch call on a bounded worker
//     pool, trading a bounded latency floor for much higher throughput
//     under load;
//   - backpressure: a semaphore plus a queue-depth limit shed excess
//     load with 429 and a Retry-After header instead of letting
//     latency collapse;
//   - observability: per-endpoint request/error counters and latency
//     histograms, cache and batching effectiveness, and index state,
//     exported at /metrics in Prometheus text format with no external
//     dependencies.
//
// Construct with New, mount the returned *Server as an http.Handler,
// and Close it on shutdown; Run provides the graceful serve loop a
// production main wants. See docs/SERVING.md for architecture,
// tuning, and the metrics reference.
//
// Endpoints:
//
//	GET  /healthz                  -> index stats + liveness
//	GET  /stats                    -> per-endpoint request counters (JSON)
//	GET  /metrics                  -> Prometheus text format
//	GET  /search?id=17&k=10        -> in-database query
//	POST /search/vector {"vector":[...], "k":10}
//	                               -> out-of-sample query (micro-batched)
//	POST /search/set {"ids":[1,2,3], "k":10}
//	                               -> multi-seed query
//	POST /search/batch {"ids":[...], "k":10}
//	                               -> bulk in-database queries
//	GET  /item/17                  -> item metadata (label, neighbours)
//	POST /insert {"vector":[...]}  -> online insert, returns the new id
//	POST /delete {"id":17}         -> online delete (tombstone)
//	POST /compact                  -> fold the delta into a fresh base
package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"time"

	"mogul"
	"mogul/internal/lru"
)

// Options configures a Server. The zero value serves correctly with
// caching and micro-batching disabled and backpressure at GOMAXPROCS
// concurrent searches.
type Options struct {
	// Labels attaches per-item labels (by id) to search answers; nil
	// serves unlabelled. Labels index base items, so they are dropped
	// automatically once a compaction after deletions renumbers ids.
	Labels []int

	// CacheBytes is the result cache budget in bytes; 0 disables
	// caching. Entries are stamped with the index mutation version, so
	// any Insert/Delete/Compact invalidates the cache implicitly.
	CacheBytes int64
	// CacheShards is the cache's lock-shard count (default 16).
	CacheShards int

	// BatchWindow enables micro-batching of /search/vector traffic:
	// the first query of a batch waits up to this long for company
	// before the batch executes as one TopKVectorBatch call. 0
	// disables batching (each query runs individually). 100-500µs is a
	// reasonable production window; see docs/SERVING.md.
	BatchWindow time.Duration
	// MaxBatch caps the queries coalesced into one batch (default 64).
	MaxBatch int

	// MaxInFlight bounds concurrently executing search work — direct
	// queries and batch executions each hold one slot (default
	// GOMAXPROCS).
	MaxInFlight int
	// MaxQueue bounds requests waiting for a slot; arrivals beyond it
	// are shed with 429 (default 4x MaxInFlight).
	MaxQueue int
	// RetryAfter is advertised in the Retry-After header of shed
	// responses (default 1s, rounded up to whole seconds).
	RetryAfter time.Duration
}

// withDefaults resolves zero fields to their documented defaults.
func (o Options) withDefaults() Options {
	if o.CacheShards <= 0 {
		o.CacheShards = 16
	}
	if o.MaxBatch <= 0 {
		o.MaxBatch = 64
	}
	if o.MaxInFlight <= 0 {
		o.MaxInFlight = runtime.GOMAXPROCS(0)
	}
	if o.MaxQueue <= 0 {
		o.MaxQueue = 4 * o.MaxInFlight
	}
	if o.RetryAfter <= 0 {
		o.RetryAfter = time.Second
	}
	return o
}

// Server is the serving layer around one Retriever. It implements
// http.Handler; construct with New, release background resources with
// Close. All handlers are safe for concurrent use.
type Server struct {
	idx  mogul.Retriever
	mux  *http.ServeMux
	opts Options

	// cache is the version-stamped query-result cache; nil when
	// disabled.
	cache *lru.Cache[string, cacheEntry]
	// lim backpressures search execution (direct queries and batch
	// executions alike).
	lim *limiter
	// bat coalesces /search/vector traffic; nil when disabled.
	bat *batcher
	met *metrics

	// baseCtx is cancelled by Close: batch executors and queued
	// waiters unwind through it.
	baseCtx   context.Context
	baseStop  context.CancelFunc
	closeOnce sync.Once

	// mutateMu serializes the mutating handlers (/insert, /delete,
	// /compact) so that "index mutated" and "label bookkeeping
	// updated" are atomic with respect to a racing compaction —
	// otherwise a compact (explicit, or auto-triggered inside Insert)
	// could renumber ids after a delete whose record it never saw,
	// leaving labels silently misaligned. Searches never take it.
	mutateMu sync.Mutex
	// labelMu guards labels and deleted: labels index items by id, so
	// they go stale when a compaction renumbers ids after deletions.
	labelMu sync.RWMutex
	labels  []int
	deleted bool

	// searchers recycles per-request query engines: each search
	// handler borrows a mogul.Querier (which owns the score vectors
	// and top-k heap for one query) for the duration of the request,
	// so a busy server runs steady-state searches without per-request
	// allocation — net/http goroutines come and go, the workspaces
	// stay.
	searchers sync.Pool
}

// New builds the serving layer over idx. The returned Server is an
// http.Handler ready to mount; callers should Close it on shutdown to
// stop the batching goroutines (requests in flight finish first).
func New(idx mogul.Retriever, opts Options) *Server {
	o := opts.withDefaults()
	s := &Server{idx: idx, opts: o, mux: http.NewServeMux(), labels: o.Labels}
	s.baseCtx, s.baseStop = context.WithCancel(context.Background())
	s.met = newMetrics()
	s.lim = &limiter{
		sem:      make(chan struct{}, o.MaxInFlight),
		maxQueue: int64(o.MaxQueue),
	}
	if o.CacheBytes > 0 {
		s.cache = lru.New[string, cacheEntry](o.CacheBytes, o.CacheShards)
	}
	if o.BatchWindow > 0 {
		s.bat = newBatcher(s, o.BatchWindow, o.MaxBatch, o.MaxQueue)
	}
	s.mux.HandleFunc("/healthz", s.instrument(epHealthz, s.handleHealth))
	s.mux.HandleFunc("/stats", s.instrument(epStats, s.handleStats))
	s.mux.HandleFunc("/metrics", s.instrument(epMetrics, s.handleMetrics))
	s.mux.HandleFunc("/search", s.instrument(epSearch, s.handleSearch))
	s.mux.HandleFunc("/search/vector", s.instrument(epSearchVector, s.handleSearchVector))
	s.mux.HandleFunc("/search/set", s.instrument(epSearchSet, s.handleSearchSet))
	s.mux.HandleFunc("/search/batch", s.instrument(epSearchBatch, s.handleSearchBatch))
	s.mux.HandleFunc("/item/", s.instrument(epItem, s.handleItem))
	s.mux.HandleFunc("/insert", s.instrument(epInsert, s.handleInsert))
	s.mux.HandleFunc("/delete", s.instrument(epDelete, s.handleDelete))
	s.mux.HandleFunc("/compact", s.instrument(epCompact, s.handleCompact))
	return s
}

func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Close stops the background batching machinery and unblocks queued
// waiters. In-flight handler calls finish; subsequent batched queries
// fail with 503. Close is idempotent and does not close the Retriever.
func (s *Server) Close() {
	s.closeOnce.Do(s.baseStop)
	if s.bat != nil {
		s.bat.wg.Wait()
	}
}

// Run serves h on l until ctx is cancelled (what SIGTERM should do in
// production), then shuts down gracefully: the listener closes
// immediately, in-flight requests get up to grace to finish. A clean
// shutdown returns nil.
func Run(ctx context.Context, l net.Listener, h http.Handler, grace time.Duration) error {
	srv := &http.Server{Handler: h}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(l) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
		sctx, cancel := context.WithTimeout(context.Background(), grace)
		defer cancel()
		if err := srv.Shutdown(sctx); err != nil {
			return err
		}
		if err := <-errc; err != nil && err != http.ErrServerClosed {
			return err
		}
		return nil
	}
}

// searcher borrows a reusable query engine for one request; pair with
// putSearcher.
func (s *Server) searcher() mogul.Querier {
	if sr, ok := s.searchers.Get().(mogul.Querier); ok {
		return sr
	}
	return s.idx.NewQuerier()
}

func (s *Server) putSearcher(sr mogul.Querier) { s.searchers.Put(sr) }

// instrument wraps a handler with the per-endpoint observability
// layer: request count, error count (any 4xx/5xx), and the latency
// histogram feeding /metrics and /stats.
func (s *Server) instrument(name string, h http.HandlerFunc) http.HandlerFunc {
	em := s.met.endpoint(name)
	return func(w http.ResponseWriter, r *http.Request) {
		t0 := time.Now()
		sw := &statusWriter{ResponseWriter: w}
		h(sw, r)
		em.observe(sw.status(), time.Since(t0))
	}
}

// statusWriter captures the response status for the metrics layer.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.code == 0 {
		w.code = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) status() int {
	if w.code == 0 {
		return http.StatusOK
	}
	return w.code
}

// shed writes the backpressure response: 429 with a Retry-After hint.
func (s *Server) shed(w http.ResponseWriter) {
	s.met.shed.Add(1)
	secs := int((s.opts.RetryAfter + time.Second - 1) / time.Second)
	w.Header().Set("Retry-After", strconv.Itoa(secs))
	writeError(w, http.StatusTooManyRequests, "overloaded, retry later")
}

// answer is one result row on the wire.
type answer struct {
	Item  int     `json:"item"`
	Score float64 `json:"score"`
	Label *int    `json:"label,omitempty"`
}

type searchResponse struct {
	Query  interface{} `json:"query"`
	K      int         `json:"k"`
	TookUS int64       `json:"took_us"`
	// Answers carries either freshly built []answer rows or the
	// pre-rendered json.RawMessage a cache hit returns — the encoder
	// emits identical bytes for both.
	Answers  interface{} `json:"answers"`
	Exact    bool        `json:"exact"`
	Cached   bool        `json:"cached,omitempty"`
	Pruned   int         `json:"clusters_pruned,omitempty"`
	Scanned  int         `json:"clusters_scanned,omitempty"`
	Computed int         `json:"scores_computed,omitempty"`
}

func (s *Server) toAnswers(res []mogul.Result) []answer {
	s.labelMu.RLock()
	labels := s.labels
	s.labelMu.RUnlock()
	out := make([]answer, len(res))
	for i, r := range res {
		out[i] = answer{Item: r.Node, Score: r.Score}
		// Inserted items sit beyond the labelled range; they simply
		// carry no label.
		if labels != nil && r.Node < len(labels) {
			l := labels[r.Node]
			out[i].Label = &l
		}
	}
	return out
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	st := s.idx.Stats()
	ds := s.idx.Delta()
	s.labelMu.RLock()
	hasLabels := s.labels != nil
	s.labelMu.RUnlock()
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"status":       "ok",
		"items":        s.idx.Len(),
		"version":      s.idx.Version(),
		"clusters":     st.NumClusters,
		"border_size":  st.BorderSize,
		"factor_nnz":   st.FactorNNZ,
		"exact":        s.idx.Exact(),
		"has_labels":   hasLabels,
		"precompute_s": st.PrecomputeTime().Seconds(),
		"delta_items":  ds.DeltaItems,
		"tombstones":   ds.Tombstones,
	})
}

// handleStats reports the per-endpoint counters as JSON. The legacy
// aggregate fields (queries_served, query_errors, mean_latency_us)
// cover the four search endpoints; the per-endpoint map breaks every
// endpoint out separately, errors included — a single global error
// tally cannot tell "the cluster is failing inserts" from "one client
// sends junk vectors".
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	perEndpoint := make(map[string]interface{}, len(endpointNames))
	var served, errs, latUS int64
	for _, name := range endpointNames {
		em := s.met.endpoint(name)
		req := em.requests.Load()
		eerr := em.errors.Load()
		lat := em.latUS.Load()
		mean := int64(0)
		if req > 0 {
			mean = lat / req
		}
		perEndpoint[statName(name)] = map[string]interface{}{
			"requests":        req,
			"errors":          eerr,
			"mean_latency_us": mean,
		}
		if isSearchEndpoint(name) {
			served += req
			errs += eerr
			latUS += lat
		}
	}
	mean := int64(0)
	if served > 0 {
		mean = latUS / served
	}
	out := map[string]interface{}{
		"queries_served":  served,
		"query_errors":    errs,
		"mean_latency_us": mean,
		"shed":            s.met.shed.Load(),
		"endpoints":       perEndpoint,
	}
	if s.cache != nil {
		cs := s.cache.Stats()
		out["cache"] = map[string]interface{}{
			"hits":      s.met.cacheHits.Load(),
			"misses":    s.met.cacheMisses.Load(),
			"evictions": cs.Evictions,
			"entries":   cs.Entries,
			"bytes":     cs.Bytes,
		}
	}
	writeJSON(w, http.StatusOK, out)
}

// statName maps an endpoint path to its /stats (and /metrics label)
// name: "/search/vector" -> "search_vector", "/item/" -> "item".
func statName(endpoint string) string {
	name := strings.Trim(endpoint, "/")
	return strings.ReplaceAll(name, "/", "_")
}

// handleInsert adds one point online (POST {"vector":[...]}); the new
// item competes in every subsequent search.
func (s *Server) handleInsert(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "use POST")
		return
	}
	var req struct {
		Vector []float64 `json:"vector"`
	}
	if err := readJSON(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, "bad JSON: "+err.Error())
		return
	}
	s.mutateMu.Lock()
	baseBefore := s.idx.Delta().BaseItems
	id, err := s.idx.Insert(req.Vector)
	if err == nil && s.idx.Delta().BaseItems != baseBefore {
		// The insert auto-compacted (AutoCompactFraction, e.g. restored
		// from a loaded index's build config). If deletions were folded
		// in, ids were renumbered and the label table is stale.
		s.dropLabelsAfterRenumber()
	}
	s.mutateMu.Unlock()
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	ds := s.idx.Delta()
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"id":          id,
		"items":       s.idx.Len(),
		"version":     s.idx.Version(),
		"delta_items": ds.DeltaItems,
	})
}

// handleDelete tombstones one item (POST {"id":17}).
func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "use POST")
		return
	}
	var req struct {
		ID *int `json:"id"`
	}
	if err := readJSON(r, &req); err != nil || req.ID == nil {
		writeError(w, http.StatusBadRequest, "body must be {\"id\": <int>}")
		return
	}
	s.mutateMu.Lock()
	isBase := *req.ID < s.idx.Delta().BaseItems
	err := s.idx.Delete(*req.ID)
	if err == nil && isBase {
		// Only a base delete will shift ids at the next compaction;
		// deleting a delta item leaves base ids 0..n-1 untouched, so
		// the label table stays aligned.
		s.labelMu.Lock()
		s.deleted = true
		s.labelMu.Unlock()
	}
	s.mutateMu.Unlock()
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"deleted": *req.ID,
		"items":   s.idx.Len(),
		"version": s.idx.Version(),
	})
}

// dropLabelsAfterRenumber clears the label table after a compaction
// that folded base deletions in (those renumber ids); callers hold
// mutateMu.
func (s *Server) dropLabelsAfterRenumber() {
	s.labelMu.Lock()
	if s.deleted {
		s.labels = nil
		s.deleted = false
	}
	s.labelMu.Unlock()
}

// handleCompact folds the delta into a fresh base build (POST).
// Compaction after deletions renumbers ids, which orphans the
// dataset's label table — labels are dropped in that case rather than
// served misaligned.
func (s *Server) handleCompact(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "use POST")
		return
	}
	t0 := time.Now()
	s.mutateMu.Lock()
	err := s.idx.Compact()
	if err == nil {
		s.dropLabelsAfterRenumber()
	}
	s.mutateMu.Unlock()
	if err != nil {
		writeError(w, http.StatusConflict, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"items":   s.idx.Len(),
		"version": s.idx.Version(),
		"took_us": time.Since(t0).Microseconds(),
	})
}

func (s *Server) handleItem(w http.ResponseWriter, r *http.Request) {
	idStr := strings.TrimPrefix(r.URL.Path, "/item/")
	id, err := strconv.Atoi(idStr)
	if err != nil {
		writeError(w, http.StatusBadRequest, "item id must be an integer")
		return
	}
	ids, weights, err := s.idx.Neighbors(id)
	if err != nil {
		writeError(w, http.StatusNotFound, err.Error())
		return
	}
	resp := map[string]interface{}{
		"item":             id,
		"neighbors":        ids,
		"neighbor_weights": weights,
	}
	s.labelMu.RLock()
	if s.labels != nil && id < len(s.labels) {
		resp["label"] = s.labels[id]
	}
	s.labelMu.RUnlock()
	writeJSON(w, http.StatusOK, resp)
}

// parseK parses the k query parameter: absent means the default of 10,
// while an explicit non-integer or non-positive value is rejected — a
// client that asked for 0 or -3 answers has a bug, and silently
// clamping it to 10 (the historical behaviour) hides it.
func parseK(raw string) (int, error) {
	if raw == "" {
		return 10, nil
	}
	k, err := strconv.Atoi(raw)
	if err != nil || k <= 0 {
		return 0, fmt.Errorf("k must be a positive integer, got %q", raw)
	}
	return k, nil
}

// normalizeK applies the same rule to the JSON body field: 0 (absent)
// defaults, negative is rejected.
func normalizeK(k int) (int, error) {
	if k == 0 {
		return 10, nil
	}
	if k < 0 {
		return 0, fmt.Errorf("k must be a positive integer, got %d", k)
	}
	return k, nil
}

// bodyBufs recycles request-body read buffers: decoding with
// json.Unmarshal over a pooled buffer beats a fresh json.Decoder
// (which allocates its own 4K read buffer) on every request — on the
// cache-hit path the decode is most of the remaining work.
var bodyBufs = sync.Pool{New: func() interface{} { return new(bytes.Buffer) }}

// readJSON decodes a request body into v.
func readJSON(r *http.Request, v interface{}) error {
	buf := bodyBufs.Get().(*bytes.Buffer)
	defer func() {
		buf.Reset()
		bodyBufs.Put(buf)
	}()
	if _, err := buf.ReadFrom(r.Body); err != nil {
		return err
	}
	return json.Unmarshal(buf.Bytes(), v)
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// The header is already out; nothing more to do than log.
		fmt.Println("serve: encoding response:", err)
	}
}

// WriteError renders the canonical error body — application/json,
// {"error": msg} — every endpoint of this server uses. Layers that
// extend the server with their own endpoints (e.g. the dist shard
// server) should render errors through it too, so clients parse one
// format across the whole surface and the Content-Type can never
// drift per path.
func WriteError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}

// writeError is the package-internal spelling of WriteError.
func writeError(w http.ResponseWriter, status int, msg string) {
	WriteError(w, status, msg)
}
