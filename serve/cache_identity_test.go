package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"testing"

	"mogul"
)

// The acceptance property of the version-stamped cache: with caching
// ON, every response is bit-identical to the response with caching
// OFF, no matter how Insert/Delete/Compact interleave with queries.
// Both servers share ONE index; mutations flow through the cached
// server (exercising its invalidation), probes hit both and must
// agree byte for byte — on the answer payload and on the status code,
// across the plain, sharded, EMR anchor-graph, and spectral
// truncated-eigenbasis backends.
func TestCacheIdentityAcrossMutations(t *testing.T) {
	ds := mogul.NewMixture(mogul.MixtureConfig{
		N: 160, Classes: 4, Dim: 6, WithinStd: 0.25, Separation: 2.0, Seed: 21,
	})
	backends := map[string]func(t *testing.T) mogul.Retriever{
		"plain": func(t *testing.T) mogul.Retriever {
			idx, err := mogul.BuildFromDataset(ds, mogul.Options{})
			if err != nil {
				t.Fatal(err)
			}
			return idx
		},
		"sharded": func(t *testing.T) mogul.Retriever {
			six, err := mogul.BuildSharded(ds.Points, mogul.Options{}, mogul.ShardOptions{
				Shards: 2, Partitioner: mogul.PartitionKMeans,
			})
			if err != nil {
				t.Fatal(err)
			}
			return six
		},
		"emr": func(t *testing.T) mogul.Retriever {
			e, err := mogul.BuildEMR(ds.Points, mogul.Options{}, mogul.EMROptions{
				NumAnchors: 16, NumNearestAnchors: 4,
			})
			if err != nil {
				t.Fatal(err)
			}
			return e
		},
		"spectral": func(t *testing.T) mogul.Retriever {
			e, err := mogul.BuildSpectral(ds.Points, mogul.Options{}, mogul.SpectralOptions{
				Rank: 24,
			})
			if err != nil {
				t.Fatal(err)
			}
			return e
		},
	}
	for name, build := range backends {
		t.Run(name, func(t *testing.T) {
			idx := build(t)
			cached := New(idx, Options{CacheBytes: 4 << 20})
			uncached := New(idx, Options{})
			t.Cleanup(cached.Close)
			t.Cleanup(uncached.Close)

			rng := rand.New(rand.NewSource(7))
			probe := func(step int) {
				t.Helper()
				// A spread of query shapes: in-database ids (some of
				// them deleted or out of range — then both sides must
				// fail identically), vectors, and seed sets.
				reqs := []struct {
					method, path string
					body         interface{}
				}{
					{http.MethodGet, fmt.Sprintf("/search?id=%d&k=7", rng.Intn(ds.Len()+8)), nil},
					{http.MethodGet, fmt.Sprintf("/search?id=%d&k=3", rng.Intn(ds.Len())), nil},
					{http.MethodPost, "/search/vector", map[string]interface{}{
						"vector": ds.Points[rng.Intn(ds.Len())], "k": 5,
					}},
					{http.MethodPost, "/search/set", map[string]interface{}{
						"ids": []int{rng.Intn(ds.Len()), rng.Intn(ds.Len())}, "k": 4,
					}},
				}
				for _, rq := range reqs {
					// Twice against the cached server: the second pass
					// is the one that must come out of the cache.
					rec1, body1 := doJSONQuiet(cached, rq.method, rq.path, rq.body)
					rec2, body2 := doJSONQuiet(cached, rq.method, rq.path, rq.body)
					rec3, body3 := doJSONQuiet(uncached, rq.method, rq.path, rq.body)
					if rec1.Code != rec3.Code || rec2.Code != rec3.Code {
						t.Fatalf("step %d %s %s: status cached %d/%d vs uncached %d",
							step, rq.method, rq.path, rec1.Code, rec2.Code, rec3.Code)
					}
					if rec3.Code != http.StatusOK {
						continue
					}
					a1, _ := json.Marshal(body1["answers"])
					a2, _ := json.Marshal(body2["answers"])
					a3, _ := json.Marshal(body3["answers"])
					if !bytes.Equal(a1, a3) || !bytes.Equal(a2, a3) {
						t.Fatalf("step %d %s %s: cached answers diverge from uncached\nfirst:  %s\nrepeat: %s\nfresh:  %s",
							step, rq.method, rq.path, a1, a2, a3)
					}
					// The /search work counters ride along in the cache
					// and must match a fresh computation too.
					for _, f := range []string{"clusters_pruned", "clusters_scanned", "scores_computed"} {
						if fmt.Sprint(body2[f]) != fmt.Sprint(body3[f]) {
							t.Fatalf("step %d %s %s: cached %s %v, fresh %v",
								step, rq.method, rq.path, f, body2[f], body3[f])
						}
					}
				}
			}

			probe(0)
			for step := 1; step <= 30; step++ {
				// One mutation per step, through the cached server.
				switch rng.Intn(5) {
				case 0, 1: // insert a perturbed copy of an existing point
					v := append([]float64(nil), ds.Points[rng.Intn(ds.Len())]...)
					v[0] += rng.Float64() * 0.01
					doJSONQuiet(cached, http.MethodPost, "/insert", map[string]interface{}{"vector": v})
				case 2, 3: // delete a random id (may 400 — fine, no mutation then)
					doJSONQuiet(cached, http.MethodPost, "/delete", map[string]interface{}{
						"id": rng.Intn(ds.Len() + 8),
					})
				case 4:
					doJSONQuiet(cached, http.MethodPost, "/compact", nil)
				}
				probe(step)
			}
			// The cache genuinely served version-valid hits during all
			// this — otherwise the property was tested against thin air.
			if cached.met.cacheHits.Load() == 0 {
				t.Fatal("identity held but the cache never served a hit")
			}
		})
	}
}
