package serve

import (
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"sync/atomic"
	"time"
)

// Observability without dependencies: a fixed set of counters,
// gauges, and histograms exported in the Prometheus text exposition
// format (version 0.0.4) by /metrics. Everything is atomics — the
// hot path pays a handful of uncontended atomic adds per request —
// and the endpoint set is fixed at construction, so the maps are
// read-only after New and need no locking.

// Endpoint names double as mux patterns and metric label values.
const (
	epHealthz      = "/healthz"
	epStats        = "/stats"
	epMetrics      = "/metrics"
	epSearch       = "/search"
	epSearchVector = "/search/vector"
	epSearchSet    = "/search/set"
	epSearchBatch  = "/search/batch"
	epItem         = "/item/"
	epInsert       = "/insert"
	epDelete       = "/delete"
	epCompact      = "/compact"
)

// endpointNames lists every instrumented endpoint in export order.
var endpointNames = []string{
	epHealthz, epStats, epMetrics,
	epSearch, epSearchVector, epSearchSet, epSearchBatch,
	epItem, epInsert, epDelete, epCompact,
}

// isSearchEndpoint selects the endpoints aggregated into the legacy
// "queries_served"/"query_errors" stats fields.
func isSearchEndpoint(name string) bool {
	switch name {
	case epSearch, epSearchVector, epSearchSet, epSearchBatch:
		return true
	}
	return false
}

// latencyBoundsUS are the latency histogram bucket upper bounds in
// microseconds (exported as seconds): 50µs to 1s, roughly
// logarithmic — the span from a warm cache hit to a compaction-stalled
// tail.
var latencyBoundsUS = []int64{
	50, 100, 250, 500,
	1000, 2500, 5000, 10000, 25000, 50000,
	100000, 250000, 500000, 1000000,
}

// batchSizeBounds are the batch occupancy bucket upper bounds.
var batchSizeBounds = []int64{1, 2, 4, 8, 16, 32, 64, 128}

// hist is a lock-free fixed-bucket histogram over int64 observations.
// Buckets store per-bin counts; the Prometheus cumulative form is
// produced at export time.
type hist struct {
	bounds  []int64
	buckets []atomic.Int64 // len(bounds)+1; last bin is +Inf
	count   atomic.Int64
	sum     atomic.Int64
}

func newHist(bounds []int64) *hist {
	return &hist{bounds: bounds, buckets: make([]atomic.Int64, len(bounds)+1)}
}

func (h *hist) observe(v int64) {
	i := sort.Search(len(h.bounds), func(i int) bool { return v <= h.bounds[i] })
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// endpointMetrics is the per-endpoint bundle.
type endpointMetrics struct {
	requests atomic.Int64
	errors   atomic.Int64
	latUS    atomic.Int64
	latency  *hist
}

// observe records one completed request.
func (em *endpointMetrics) observe(status int, took time.Duration) {
	em.requests.Add(1)
	if status >= 400 {
		em.errors.Add(1)
	}
	us := took.Microseconds()
	em.latUS.Add(us)
	em.latency.observe(us)
}

// metrics is the server-wide registry.
type metrics struct {
	endpoints map[string]*endpointMetrics

	// Batching effectiveness: batches executed, queries they carried,
	// queries answered by coalescing onto an identical in-flight one,
	// and the occupancy distribution.
	batches        atomic.Int64
	batchedQueries atomic.Int64
	coalesced      atomic.Int64
	batchSize      *hist

	// shed counts requests refused with 429.
	shed atomic.Int64

	// cacheHits/cacheMisses count version-VALID cache outcomes: an
	// entry that is resident but stamped with a stale version is a
	// miss here (and a hit in the LRU's own residency counters).
	cacheHits   atomic.Int64
	cacheMisses atomic.Int64
}

func newMetrics() *metrics {
	m := &metrics{
		endpoints: make(map[string]*endpointMetrics, len(endpointNames)),
		batchSize: newHist(batchSizeBounds),
	}
	for _, name := range endpointNames {
		m.endpoints[name] = &endpointMetrics{latency: newHist(latencyBoundsUS)}
	}
	return m
}

func (m *metrics) endpoint(name string) *endpointMetrics { return m.endpoints[name] }

// handleMetrics renders the Prometheus text exposition format. No
// client library — the format is lines of "name{labels} value", and
// a retrieval server has no business pulling in a metrics SDK for
// that.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	m := s.met

	fmt.Fprintf(w, "# HELP mogul_requests_total Requests handled, by endpoint.\n")
	fmt.Fprintf(w, "# TYPE mogul_requests_total counter\n")
	for _, name := range endpointNames {
		fmt.Fprintf(w, "mogul_requests_total{endpoint=%q} %d\n", statName(name), m.endpoints[name].requests.Load())
	}
	fmt.Fprintf(w, "# HELP mogul_request_errors_total Requests answered with a 4xx/5xx status, by endpoint.\n")
	fmt.Fprintf(w, "# TYPE mogul_request_errors_total counter\n")
	for _, name := range endpointNames {
		fmt.Fprintf(w, "mogul_request_errors_total{endpoint=%q} %d\n", statName(name), m.endpoints[name].errors.Load())
	}

	fmt.Fprintf(w, "# HELP mogul_request_duration_seconds Request latency, by endpoint.\n")
	fmt.Fprintf(w, "# TYPE mogul_request_duration_seconds histogram\n")
	for _, name := range endpointNames {
		em := m.endpoints[name]
		if em.requests.Load() == 0 {
			continue
		}
		label := statName(name)
		cum := int64(0)
		for i, b := range em.latency.bounds {
			cum += em.latency.buckets[i].Load()
			fmt.Fprintf(w, "mogul_request_duration_seconds_bucket{endpoint=%q,le=%q} %d\n",
				label, formatSeconds(b), cum)
		}
		cum += em.latency.buckets[len(em.latency.bounds)].Load()
		fmt.Fprintf(w, "mogul_request_duration_seconds_bucket{endpoint=%q,le=\"+Inf\"} %d\n", label, cum)
		fmt.Fprintf(w, "mogul_request_duration_seconds_sum{endpoint=%q} %g\n",
			label, float64(em.latency.sum.Load())/1e6)
		fmt.Fprintf(w, "mogul_request_duration_seconds_count{endpoint=%q} %d\n", label, cum)
	}

	if s.cache != nil {
		cs := s.cache.Stats()
		fmt.Fprintf(w, "# HELP mogul_cache_hits_total Version-valid result cache hits.\n# TYPE mogul_cache_hits_total counter\nmogul_cache_hits_total %d\n", m.cacheHits.Load())
		fmt.Fprintf(w, "# HELP mogul_cache_misses_total Result cache misses (absent or stale-version entries).\n# TYPE mogul_cache_misses_total counter\nmogul_cache_misses_total %d\n", m.cacheMisses.Load())
		fmt.Fprintf(w, "# HELP mogul_cache_evictions_total Result cache evictions (byte budget).\n# TYPE mogul_cache_evictions_total counter\nmogul_cache_evictions_total %d\n", cs.Evictions)
		fmt.Fprintf(w, "# HELP mogul_cache_entries Resident result cache entries.\n# TYPE mogul_cache_entries gauge\nmogul_cache_entries %d\n", cs.Entries)
		fmt.Fprintf(w, "# HELP mogul_cache_bytes Resident result cache bytes.\n# TYPE mogul_cache_bytes gauge\nmogul_cache_bytes %d\n", cs.Bytes)
	}

	if s.bat != nil {
		fmt.Fprintf(w, "# HELP mogul_batches_total Micro-batches executed.\n# TYPE mogul_batches_total counter\nmogul_batches_total %d\n", m.batches.Load())
		fmt.Fprintf(w, "# HELP mogul_batched_queries_total Queries served through micro-batches.\n# TYPE mogul_batched_queries_total counter\nmogul_batched_queries_total %d\n", m.batchedQueries.Load())
		fmt.Fprintf(w, "# HELP mogul_batch_coalesced_total Queries answered by deduplicating onto an identical in-flight query.\n# TYPE mogul_batch_coalesced_total counter\nmogul_batch_coalesced_total %d\n", m.coalesced.Load())
		fmt.Fprintf(w, "# HELP mogul_batch_size Queries per executed micro-batch.\n")
		fmt.Fprintf(w, "# TYPE mogul_batch_size histogram\n")
		cum := int64(0)
		for i, b := range m.batchSize.bounds {
			cum += m.batchSize.buckets[i].Load()
			fmt.Fprintf(w, "mogul_batch_size_bucket{le=\"%d\"} %d\n", b, cum)
		}
		cum += m.batchSize.buckets[len(m.batchSize.bounds)].Load()
		fmt.Fprintf(w, "mogul_batch_size_bucket{le=\"+Inf\"} %d\n", cum)
		fmt.Fprintf(w, "mogul_batch_size_sum %d\n", m.batchSize.sum.Load())
		fmt.Fprintf(w, "mogul_batch_size_count %d\n", cum)
	}

	fmt.Fprintf(w, "# HELP mogul_shed_total Requests shed with 429 by backpressure.\n# TYPE mogul_shed_total counter\nmogul_shed_total %d\n", m.shed.Load())

	ds := s.idx.Delta()
	fmt.Fprintf(w, "# HELP mogul_index_version Index mutation version.\n# TYPE mogul_index_version gauge\nmogul_index_version %d\n", s.idx.Version())
	fmt.Fprintf(w, "# HELP mogul_index_items Live indexed items.\n# TYPE mogul_index_items gauge\nmogul_index_items %d\n", s.idx.Len())
	fmt.Fprintf(w, "# HELP mogul_index_delta_items Live inserted items awaiting compaction.\n# TYPE mogul_index_delta_items gauge\nmogul_index_delta_items %d\n", ds.DeltaItems)
	fmt.Fprintf(w, "# HELP mogul_index_tombstones Deleted items awaiting compaction.\n# TYPE mogul_index_tombstones gauge\nmogul_index_tombstones %d\n", ds.Tombstones)
}

// formatSeconds renders a microsecond bound as a seconds le label
// ("0.00025", "1").
func formatSeconds(us int64) string {
	return strconv.FormatFloat(float64(us)/1e6, 'g', -1, 64)
}
