package serve_test

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"time"

	"mogul"
	"mogul/serve"
)

// ExampleNew mounts the production serving layer over a freshly built
// index: result caching keyed by the index mutation version,
// micro-batched vector search, backpressure, and /metrics — the same
// stack cmd/mogul-server runs, usable over any mogul.Retriever.
func ExampleNew() {
	ds := mogul.NewMixture(mogul.MixtureConfig{
		N: 300, Classes: 6, Dim: 8, WithinStd: 0.2, Separation: 2.5, Seed: 4,
	})
	idx, err := mogul.BuildFromDataset(ds, mogul.Options{})
	if err != nil {
		panic(err)
	}

	srv := serve.New(idx, serve.Options{
		Labels:      ds.Labels,
		CacheBytes:  16 << 20,               // version-stamped result cache
		BatchWindow: 200 * time.Microsecond, // micro-batch /search/vector
		MaxInFlight: 4,                      // backpressure: 429 past the queue
	})
	defer srv.Close()
	// In production: l, _ := net.Listen("tcp", ":8080") and
	// serve.Run(ctx, l, srv, 10*time.Second) for graceful shutdown.
	ts := httptest.NewServer(srv)
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/search?id=17&k=3")
	if err != nil {
		panic(err)
	}
	defer resp.Body.Close()
	var out struct {
		K       int `json:"k"`
		Answers []struct {
			Item int `json:"item"`
		} `json:"answers"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		panic(err)
	}
	fmt.Printf("status %d, k=%d, first answer item %d\n", resp.StatusCode, out.K, out.Answers[0].Item)

	// The repeat of an identical query is answered from the cache.
	resp2, err := http.Get(ts.URL + "/search?id=17&k=3")
	if err != nil {
		panic(err)
	}
	defer resp2.Body.Close()
	var out2 struct {
		Cached bool `json:"cached"`
	}
	if err := json.NewDecoder(resp2.Body).Decode(&out2); err != nil {
		panic(err)
	}
	fmt.Println("repeat served from cache:", out2.Cached)

	// Prometheus metrics, no dependencies.
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		panic(err)
	}
	defer mresp.Body.Close()
	var buf strings.Builder
	if _, err := fmt.Fprint(&buf, mresp.Status); err != nil {
		panic(err)
	}
	fmt.Println("metrics:", buf.String())

	// Output:
	// status 200, k=3, first answer item 17
	// repeat served from cache: true
	// metrics: 200 OK
}
