package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync"
	"testing"
	"time"

	"mogul"
)

// TestServeRaceTraffic drives the full serving stack — cache,
// micro-batcher, limiter, metrics — with concurrent search and
// mutation HTTP traffic. Meaningful under -race (CI runs it there);
// afterwards, with mutators quiescent, every warm cache entry must
// agree with a fresh computation: the version stamp may never let a
// pre-mutation ranking survive as current.
func TestServeRaceTraffic(t *testing.T) {
	ds := mogul.NewMixture(mogul.MixtureConfig{
		N: 200, Classes: 4, Dim: 6, WithinStd: 0.25, Separation: 2.0, Seed: 33,
	})
	idx, err := mogul.BuildFromDataset(ds, mogul.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s := New(idx, Options{
		CacheBytes:  1 << 20,
		BatchWindow: 200 * time.Microsecond,
		MaxInFlight: 8,
		MaxQueue:    1024,
	})
	t.Cleanup(s.Close)

	// A fixed probe pool so traffic actually collides on cache keys.
	probeVecs := make([]mogul.Vector, 4)
	for i := range probeVecs {
		probeVecs[i] = ds.Points[i*7]
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				var rec *httptest.ResponseRecorder
				switch rng.Intn(4) {
				case 0:
					rec, _ = doJSONQuiet(s, http.MethodGet,
						fmt.Sprintf("/search?id=%d&k=5", rng.Intn(ds.Len())), nil)
				case 1:
					rec, _ = doJSONQuiet(s, http.MethodPost, "/search/vector", map[string]interface{}{
						"vector": probeVecs[rng.Intn(len(probeVecs))], "k": 5,
					})
				case 2:
					rec, _ = doJSONQuiet(s, http.MethodPost, "/search/set", map[string]interface{}{
						"ids": []int{rng.Intn(ds.Len()), rng.Intn(ds.Len())}, "k": 4,
					})
				default:
					rec, _ = doJSONQuiet(s, http.MethodGet, "/metrics", nil)
				}
				switch rec.Code {
				case http.StatusOK, http.StatusBadRequest,
					http.StatusTooManyRequests, http.StatusServiceUnavailable:
					// 400: racing a delete/compact; 429/503: backpressure.
				default:
					select {
					case <-stop:
					default:
						t.Errorf("unexpected status %d: %s", rec.Code, rec.Body.String())
					}
					return
				}
			}
		}(int64(w))
	}
	// One mutator: inserts, deletes, compactions through the handlers.
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(99))
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			switch rng.Intn(6) {
			case 0, 1, 2:
				v := append([]float64(nil), ds.Points[rng.Intn(ds.Len())]...)
				v[1] += rng.Float64() * 0.01
				doJSONQuiet(s, http.MethodPost, "/insert", map[string]interface{}{"vector": v})
			case 3, 4:
				doJSONQuiet(s, http.MethodPost, "/delete", map[string]interface{}{"id": rng.Intn(ds.Len())})
			default:
				doJSONQuiet(s, http.MethodPost, "/compact", nil)
			}
		}
	}()
	time.Sleep(300 * time.Millisecond)
	close(stop)
	wg.Wait()
	if t.Failed() {
		return
	}

	// Quiescent check: no mutator is running, so a cached answer (the
	// second identical request) must equal a computation that bypasses
	// the cache entirely.
	fresh := New(idx, Options{})
	t.Cleanup(fresh.Close)
	version := idx.Version()
	probes := []struct {
		method, path string
		body         interface{}
	}{
		{http.MethodGet, "/search?id=3&k=5", nil},
		{http.MethodGet, "/search?id=42&k=5", nil},
		{http.MethodPost, "/search/vector", map[string]interface{}{"vector": probeVecs[0], "k": 5}},
		{http.MethodPost, "/search/set", map[string]interface{}{"ids": []int{1, 2}, "k": 4}},
	}
	for _, rq := range probes {
		doJSONQuiet(s, rq.method, rq.path, rq.body) // warm
		rec1, body1 := doJSONQuiet(s, rq.method, rq.path, rq.body)
		rec2, body2 := doJSONQuiet(fresh, rq.method, rq.path, rq.body)
		if rec1.Code != rec2.Code {
			t.Fatalf("%s %s: cached status %d vs fresh %d", rq.method, rq.path, rec1.Code, rec2.Code)
		}
		if rec1.Code != http.StatusOK {
			continue
		}
		a1, _ := json.Marshal(body1["answers"])
		a2, _ := json.Marshal(body2["answers"])
		if !bytes.Equal(a1, a2) {
			t.Fatalf("%s %s: stale cache hit after quiescence\ncached: %s\nfresh:  %s", rq.method, rq.path, a1, a2)
		}
	}
	if idx.Version() != version {
		t.Fatal("index version moved during the quiescent check")
	}
}

// gated wraps a Retriever so its search paths block until the gate
// opens — the controllable "slow backend" the shed tests need.
type gated struct {
	mogul.Retriever
	gate chan struct{}
}

func (g *gated) NewQuerier() mogul.Querier {
	return &gatedQuerier{g.Retriever.NewQuerier(), g.gate}
}

func (g *gated) TopKVectorBatch(qs []mogul.Vector, k, par int) []mogul.BatchResult {
	<-g.gate
	return g.Retriever.TopKVectorBatch(qs, k, par)
}

type gatedQuerier struct {
	mogul.Querier
	gate chan struct{}
}

func (q *gatedQuerier) TopKWithInfo(id, k int) ([]mogul.Result, *mogul.SearchInfo, error) {
	<-q.gate
	return q.Querier.TopKWithInfo(id, k)
}

// TestShedBackpressure: with one execution slot and one queue slot
// against a blocked backend, excess requests are shed *immediately*
// with 429 + Retry-After — and once the backend unblocks, everything
// drains without leaking a single goroutine.
func TestShedBackpressure(t *testing.T) {
	idx, _ := testIndex(t)
	gate := make(chan struct{})
	baseline := runtime.NumGoroutine()
	s := New(&gated{Retriever: idx, gate: gate}, Options{
		MaxInFlight: 1,
		MaxQueue:    1,
		RetryAfter:  3 * time.Second,
		BatchWindow: time.Millisecond, // exercise the batch queue's shed door too
	})

	const clients = 10
	codes := make(chan int, clients)
	retryAfter := make(chan string, clients)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rec, _ := doJSONQuiet(s, http.MethodGet, "/search?id=1&k=3", nil)
			codes <- rec.Code
			retryAfter <- rec.Header().Get("Retry-After")
		}()
	}
	// Shed responses return while the gate is still closed: only the
	// executing request and the one queued slot can be outstanding.
	deadline := time.After(5 * time.Second)
	shed := 0
	for shed < clients-2 {
		select {
		case code := <-codes:
			if code != http.StatusTooManyRequests {
				t.Fatalf("pre-unblock completion with status %d, want 429", code)
			}
			if ra := <-retryAfter; ra != "3" {
				t.Fatalf("Retry-After %q, want \"3\"", ra)
			}
			shed++
		case <-deadline:
			t.Fatalf("only %d of %d excess requests were shed before unblocking", shed, clients-2)
		}
	}
	close(gate)
	wg.Wait()
	close(codes)
	ok := 0
	for code := range codes {
		if code == http.StatusOK {
			ok++
		}
	}
	if ok != 2 {
		t.Fatalf("%d requests succeeded after unblock, want 2 (1 executing + 1 queued)", ok)
	}
	if got := s.met.shed.Load(); got != int64(shed) {
		t.Fatalf("shed metric %d, want %d", got, shed)
	}

	// Micro-batched vector traffic sheds too: with the backend blocked,
	// one batch holds the execution slot, one waits in the limiter
	// queue, and every further batch's clients get 429 while the gate
	// is still closed — backpressure, not pile-up.
	gate2 := make(chan struct{})
	s2 := New(&gated{Retriever: idx, gate: gate2}, Options{
		MaxInFlight: 1, MaxQueue: 1, MaxBatch: 2,
		BatchWindow: time.Millisecond, RetryAfter: time.Second,
	})
	var wg2 sync.WaitGroup
	vcodes := make(chan int, clients)
	for c := 0; c < clients; c++ {
		wg2.Add(1)
		go func(i int) {
			defer wg2.Done()
			v := make([]float64, 8)
			v[0] = float64(i) // distinct queries: no coalescing escape hatch
			rec, _ := doJSONQuiet(s2, http.MethodPost, "/search/vector", map[string]interface{}{"vector": v, "k": 3})
			vcodes <- rec.Code
		}(c)
	}
	// With batches of at most 2, ten clients cannot all fit into the
	// executing batch plus the queued one: at least one 429 must land
	// before the gate opens.
	select {
	case code := <-vcodes:
		if code != http.StatusTooManyRequests {
			t.Fatalf("batched flood: pre-unblock completion with status %d, want 429", code)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("batched flood: nothing was shed with the backend blocked")
	}
	close(gate2)
	wg2.Wait()
	close(vcodes)
	for code := range vcodes {
		switch code {
		case http.StatusOK, http.StatusTooManyRequests:
		default:
			t.Fatalf("batched flood: unexpected status %d", code)
		}
	}

	// No goroutine leaks: after Close, we are back to the baseline
	// (give the runtime a moment to reap).
	s.Close()
	s2.Close()
	for i := 0; ; i++ {
		if runtime.NumGoroutine() <= baseline+2 {
			break
		}
		if i > 100 {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutines leaked: %d now vs %d baseline\n%s",
				runtime.NumGoroutine(), baseline, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(20 * time.Millisecond)
	}
}
