package serve

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"math"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"mogul"
)

// The search path: version-stamped caching, backpressure, and the
// direct (unbatched) execution route.
//
// Every search endpoint runs the same pipeline:
//
//	parse -> cache lookup -> admission (limiter) -> execute -> cache fill
//
// The cache key encodes the query exactly (kind tag, k, and the binary
// payload — no hashing, so no collisions), and the stored entry is
// stamped with the index mutation version read BEFORE the search
// executes. A hit is served only while the stamp still equals the
// current version; any Insert/Delete/Compact bumps the version and
// thereby invalidates every cached entry at once. Reading the version
// before the search makes the stamp conservative: if a mutation lands
// mid-search the entry is stamped with the pre-mutation version and
// can never be served after the bump — cached answers are therefore
// always answers the current index would give.

// cacheEntry is one cached ranking with its version stamp. The answer
// rows are stored fully rendered (labels applied, JSON encoded): a hit
// then skips not only the search but the whole serialization path,
// which is where most of a cached request's time would otherwise go.
// Caching rendered labels is sound because the label table only ever
// changes together with a version bump (labels drop when a compaction
// renumbers ids — a mutation), so a stamped entry can never outlive
// its label view.
type cacheEntry struct {
	version uint64
	answers json.RawMessage
	// info preserves the work counters for /search responses so a
	// cached response is byte-identical to the one the search produced.
	info mogul.SearchInfo
}

// entryOverhead approximates the fixed per-entry cost (map slot, list
// links, slice headers) charged to the byte budget on top of key and
// rendered payload.
const entryOverhead = 96

// Cache keys: a kind byte, k, then the exact binary query payload.
// Exact bytes, not a hash — a 64-bit digest would make one-in-2^32
// traffic pairs silently share answers, and the whole point of the
// version stamp is that cached answers are *provably* the live ones.

func keyID(id, k int) string {
	var b [1 + 2*binary.MaxVarintLen64]byte
	b[0] = 'i'
	n := 1 + binary.PutVarint(b[1:], int64(k))
	n += binary.PutVarint(b[n:], int64(id))
	return string(b[:n])
}

func keyVector(v mogul.Vector, k int) string {
	b := make([]byte, 0, 1+binary.MaxVarintLen64+8*len(v))
	b = append(b, 'v')
	b = binary.AppendVarint(b, int64(k))
	for _, x := range v {
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(x))
	}
	return string(b)
}

// vectorGroupKey is keyVector without k: the batch executor groups
// identical in-flight vectors across different k values (the ranking
// for a smaller k is a prefix of the larger one).
func vectorGroupKey(v mogul.Vector) string {
	b := make([]byte, 0, 8*len(v))
	for _, x := range v {
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(x))
	}
	return string(b)
}

func keySet(ids []int, k int) string {
	b := make([]byte, 0, 1+(len(ids)+1)*binary.MaxVarintLen64)
	b = append(b, 's')
	b = binary.AppendVarint(b, int64(k))
	for _, id := range ids {
		b = binary.AppendVarint(b, int64(id))
	}
	return string(b)
}

// cacheGet returns a cached entry if it is present AND stamped with
// the index's current version. A version mismatch is left in place —
// it will age out by LRU — but not served, and counts as a miss in
// the serving-layer counters (the LRU's own counters measure
// residency, not validity, so hit ratios are read from s.met).
func (s *Server) cacheGet(key string) (cacheEntry, bool) {
	if s.cache == nil {
		return cacheEntry{}, false
	}
	e, ok := s.cache.Get(key)
	if !ok || e.version != s.idx.Version() {
		s.met.cacheMisses.Add(1)
		return cacheEntry{}, false
	}
	s.met.cacheHits.Add(1)
	return e, true
}

// cacheSet renders and stores a result under the version read before
// the search; it returns the rendered rows so the miss path can reuse
// them in its own response.
func (s *Server) cacheSet(key string, ver uint64, res []mogul.Result, info mogul.SearchInfo) json.RawMessage {
	rendered, err := json.Marshal(s.toAnswers(res))
	if err != nil {
		return nil
	}
	if s.cache != nil {
		s.cache.Set(key, cacheEntry{version: ver, answers: rendered, info: info},
			int64(len(key))+int64(len(rendered))+entryOverhead)
	}
	return rendered
}

// errShed reports that admission was refused because the wait queue is
// full; errClosed that the server is shutting down.
var (
	errShed   = errors.New("serve: overloaded")
	errClosed = errors.New("serve: server closed")
)

// limiter is the backpressure gate: a semaphore bounds executing
// search work, a queue-depth counter bounds waiting work, and
// everything beyond both is shed immediately — the fail-fast shape
// that keeps an overloaded server answering (with 429s) instead of
// accumulating goroutines until latency collapses.
type limiter struct {
	sem      chan struct{}
	waiting  atomic.Int64
	maxQueue int64
}

// acquire takes an execution slot, waiting in the bounded queue if the
// semaphore is full. It returns errShed when the queue is full too,
// and ctx.Err() when the caller's request is cancelled while waiting.
func (l *limiter) acquire(ctx context.Context) error {
	select {
	case l.sem <- struct{}{}:
		return nil
	default:
	}
	if l.waiting.Add(1) > l.maxQueue {
		l.waiting.Add(-1)
		return errShed
	}
	defer l.waiting.Add(-1)
	select {
	case l.sem <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (l *limiter) release() { <-l.sem }

// runDirect executes one search under the limiter on a pooled query
// engine, returning the results and the version stamp they belong to.
func (s *Server) runDirect(ctx context.Context, fn func(q mogul.Querier) error) error {
	if err := s.lim.acquire(ctx); err != nil {
		return err
	}
	defer s.lim.release()
	sr := s.searcher()
	err := fn(sr)
	s.putSearcher(sr)
	return err
}

// admissionError maps limiter/batcher failures to HTTP responses;
// returns true if it wrote one.
func (s *Server) admissionError(w http.ResponseWriter, err error) bool {
	switch {
	case err == nil:
		return false
	case errors.Is(err, errShed):
		s.shed(w)
		return true
	case errors.Is(err, errClosed):
		writeError(w, http.StatusServiceUnavailable, "server shutting down")
		return true
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		// The client went away while queued; 503 documents the outcome
		// for any middlebox still listening.
		writeError(w, http.StatusServiceUnavailable, "request cancelled")
		return true
	}
	return false
}

func (s *Server) handleSearch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	id, err := atoiQuery(r, "id")
	if err != nil {
		writeError(w, http.StatusBadRequest, "id must be an integer")
		return
	}
	k, err := parseK(r.URL.Query().Get("k"))
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	t0 := time.Now()
	key := keyID(id, k)
	if e, ok := s.cacheGet(key); ok {
		writeJSON(w, http.StatusOK, searchResponse{
			Query:    id,
			K:        k,
			TookUS:   time.Since(t0).Microseconds(),
			Answers:  e.answers,
			Exact:    s.idx.Exact(),
			Cached:   true,
			Pruned:   e.info.ClustersPruned,
			Scanned:  e.info.ClustersScanned,
			Computed: e.info.ScoresComputed,
		})
		return
	}
	var (
		res  []mogul.Result
		info *mogul.SearchInfo
		ver  uint64
	)
	aerr := s.runDirect(r.Context(), func(q mogul.Querier) error {
		ver = s.idx.Version()
		var err error
		res, info, err = q.TopKWithInfo(id, k)
		return err
	})
	if s.admissionError(w, aerr) {
		return
	}
	if aerr != nil {
		writeError(w, http.StatusBadRequest, aerr.Error())
		return
	}
	rendered := s.cacheSet(key, ver, res, *info)
	writeJSON(w, http.StatusOK, searchResponse{
		Query:    id,
		K:        k,
		TookUS:   time.Since(t0).Microseconds(),
		Answers:  rendered,
		Exact:    s.idx.Exact(),
		Pruned:   info.ClustersPruned,
		Scanned:  info.ClustersScanned,
		Computed: info.ScoresComputed,
	})
}

func (s *Server) handleSearchVector(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "use POST")
		return
	}
	var req struct {
		Vector []float64 `json:"vector"`
		K      int       `json:"k"`
	}
	if err := readJSON(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, "bad JSON: "+err.Error())
		return
	}
	k, err := normalizeK(req.K)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	t0 := time.Now()
	key := keyVector(req.Vector, k)
	if e, ok := s.cacheGet(key); ok {
		writeJSON(w, http.StatusOK, searchResponse{
			Query:   "vector",
			K:       k,
			TookUS:  time.Since(t0).Microseconds(),
			Answers: e.answers,
			Exact:   s.idx.Exact(),
			Cached:  true,
		})
		return
	}
	var rendered json.RawMessage
	var aerr error
	if s.bat != nil {
		rendered, aerr = s.bat.do(r.Context(), req.Vector, k, key)
	} else {
		var res []mogul.Result
		var ver uint64
		aerr = s.runDirect(r.Context(), func(q mogul.Querier) error {
			ver = s.idx.Version()
			var err error
			res, err = q.TopKVector(req.Vector, k)
			return err
		})
		if aerr == nil {
			rendered = s.cacheSet(key, ver, res, mogul.SearchInfo{})
		}
	}
	if s.admissionError(w, aerr) {
		return
	}
	if aerr != nil {
		writeError(w, http.StatusBadRequest, aerr.Error())
		return
	}
	writeJSON(w, http.StatusOK, searchResponse{
		Query:   "vector",
		K:       k,
		TookUS:  time.Since(t0).Microseconds(),
		Answers: rendered,
		Exact:   s.idx.Exact(),
	})
}

func (s *Server) handleSearchSet(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "use POST")
		return
	}
	var req struct {
		IDs []int `json:"ids"`
		K   int   `json:"k"`
	}
	if err := readJSON(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, "bad JSON: "+err.Error())
		return
	}
	k, err := normalizeK(req.K)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	t0 := time.Now()
	key := keySet(req.IDs, k)
	if e, ok := s.cacheGet(key); ok {
		writeJSON(w, http.StatusOK, searchResponse{
			Query:   req.IDs,
			K:       k,
			TookUS:  time.Since(t0).Microseconds(),
			Answers: e.answers,
			Exact:   s.idx.Exact(),
			Cached:  true,
		})
		return
	}
	var (
		res []mogul.Result
		ver uint64
	)
	aerr := s.runDirect(r.Context(), func(q mogul.Querier) error {
		ver = s.idx.Version()
		var err error
		res, err = q.TopKSet(req.IDs, k)
		return err
	})
	if s.admissionError(w, aerr) {
		return
	}
	if aerr != nil {
		writeError(w, http.StatusBadRequest, aerr.Error())
		return
	}
	rendered := s.cacheSet(key, ver, res, mogul.SearchInfo{})
	writeJSON(w, http.StatusOK, searchResponse{
		Query:   req.IDs,
		K:       k,
		TookUS:  time.Since(t0).Microseconds(),
		Answers: rendered,
		Exact:   s.idx.Exact(),
	})
}

func (s *Server) handleSearchBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "use POST")
		return
	}
	var req struct {
		IDs []int `json:"ids"`
		K   int   `json:"k"`
	}
	if err := readJSON(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, "bad JSON: "+err.Error())
		return
	}
	if len(req.IDs) == 0 {
		writeError(w, http.StatusBadRequest, "ids must be non-empty")
		return
	}
	k, err := normalizeK(req.K)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	// One bulk request holds one execution slot: TopKBatch parallelizes
	// internally, so admitting the call — not each of its queries — is
	// what the semaphore meaningfully bounds.
	if aerr := s.lim.acquire(r.Context()); aerr != nil {
		s.admissionError(w, aerr)
		return
	}
	t0 := time.Now()
	batch := s.idx.TopKBatch(req.IDs, k, 0)
	s.lim.release()
	took := time.Since(t0)
	type batchEntry struct {
		Query   int      `json:"query"`
		Answers []answer `json:"answers,omitempty"`
		Error   string   `json:"error,omitempty"`
	}
	entries := make([]batchEntry, len(batch))
	for i, br := range batch {
		entries[i] = batchEntry{Query: br.Query}
		if br.Err != nil {
			entries[i].Error = br.Err.Error()
			continue
		}
		entries[i].Answers = s.toAnswers(br.Results)
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"k":       k,
		"took_us": took.Microseconds(),
		"results": entries,
	})
}

// atoiQuery parses an integer query parameter.
func atoiQuery(r *http.Request, name string) (int, error) {
	return strconv.Atoi(r.URL.Query().Get(name))
}
