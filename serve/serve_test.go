package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"mogul"
)

// testIndex builds the small labelled fixture the endpoint tests run
// against.
func testIndex(t *testing.T) (*mogul.Index, *mogul.Dataset) {
	t.Helper()
	ds := mogul.NewMixture(mogul.MixtureConfig{
		N: 300, Classes: 6, Dim: 8, WithinStd: 0.2, Separation: 2.5, Seed: 4,
	})
	idx, err := mogul.BuildFromDataset(ds, mogul.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return idx, ds
}

// testServer mounts the fixture behind a plain Server (no cache, no
// batching): the endpoint-contract tests run on the direct path.
func testServer(t *testing.T) (*Server, *mogul.Dataset) {
	t.Helper()
	idx, ds := testIndex(t)
	s := New(idx, Options{Labels: ds.Labels})
	t.Cleanup(s.Close)
	return s, ds
}

func doJSON(t *testing.T, h http.Handler, method, path string, body interface{}) (*httptest.ResponseRecorder, map[string]interface{}) {
	t.Helper()
	var reader *bytes.Reader
	if body != nil {
		data, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		reader = bytes.NewReader(data)
	} else {
		reader = bytes.NewReader(nil)
	}
	req := httptest.NewRequest(method, path, reader)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	var decoded map[string]interface{}
	if err := json.Unmarshal(rec.Body.Bytes(), &decoded); err != nil {
		t.Fatalf("%s %s: non-JSON response %q", method, path, rec.Body.String())
	}
	return rec, decoded
}

func TestHealthz(t *testing.T) {
	s, ds := testServer(t)
	rec, body := doJSON(t, s, http.MethodGet, "/healthz", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	if body["status"] != "ok" {
		t.Fatalf("body: %v", body)
	}
	if int(body["items"].(float64)) != ds.Len() {
		t.Fatalf("items: %v", body["items"])
	}
	if body["has_labels"] != true {
		t.Fatal("labels not reported")
	}
	if int(body["version"].(float64)) != 1 {
		t.Fatalf("fresh index version on the wire: %v", body["version"])
	}
}

func TestSearchEndpoint(t *testing.T) {
	s, ds := testServer(t)
	rec, body := doJSON(t, s, http.MethodGet, "/search?id=5&k=4", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %v", rec.Code, body)
	}
	answers := body["answers"].([]interface{})
	if len(answers) != 4 {
		t.Fatalf("got %d answers", len(answers))
	}
	first := answers[0].(map[string]interface{})
	if int(first["item"].(float64)) != 5 {
		t.Fatalf("query not first: %v", first)
	}
	if int(first["label"].(float64)) != ds.Labels[5] {
		t.Fatalf("label wrong: %v", first)
	}
	// Default k when the parameter is absent.
	_, body = doJSON(t, s, http.MethodGet, "/search?id=5", nil)
	if int(body["k"].(float64)) != 10 {
		t.Fatalf("default k: %v", body["k"])
	}
	// Errors.
	rec, _ = doJSON(t, s, http.MethodGet, "/search?id=abc", nil)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("bad id status %d", rec.Code)
	}
	rec, _ = doJSON(t, s, http.MethodGet, "/search?id=999999", nil)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("out-of-range id status %d", rec.Code)
	}
	rec, _ = doJSON(t, s, http.MethodPost, "/search?id=5", nil)
	if rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("POST /search status %d", rec.Code)
	}
}

// An explicit non-positive k is a client bug and gets a 400 — the old
// server silently served k=10 instead, hiding it.
func TestKValidation(t *testing.T) {
	s, ds := testServer(t)
	for _, raw := range []string{"0", "-3", "junk"} {
		rec, _ := doJSON(t, s, http.MethodGet, "/search?id=5&k="+raw, nil)
		if rec.Code != http.StatusBadRequest {
			t.Fatalf("k=%s status %d, want 400", raw, rec.Code)
		}
	}
	rec, _ := doJSON(t, s, http.MethodPost, "/search/vector", map[string]interface{}{
		"vector": ds.Points[0], "k": -1,
	})
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("vector k=-1 status %d, want 400", rec.Code)
	}
	rec, _ = doJSON(t, s, http.MethodPost, "/search/set", map[string]interface{}{
		"ids": []int{1}, "k": -2,
	})
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("set k=-2 status %d, want 400", rec.Code)
	}
	rec, _ = doJSON(t, s, http.MethodPost, "/search/batch", map[string]interface{}{
		"ids": []int{1}, "k": -2,
	})
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("batch k=-2 status %d, want 400", rec.Code)
	}
}

func TestSearchVectorEndpoint(t *testing.T) {
	s, ds := testServer(t)
	rec, body := doJSON(t, s, http.MethodPost, "/search/vector", map[string]interface{}{
		"vector": ds.Points[7], "k": 3,
	})
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %v", rec.Code, body)
	}
	if len(body["answers"].([]interface{})) != 3 {
		t.Fatalf("answers: %v", body["answers"])
	}
	// Wrong dimension.
	rec, _ = doJSON(t, s, http.MethodPost, "/search/vector", map[string]interface{}{
		"vector": []float64{1, 2}, "k": 3,
	})
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("bad vector status %d", rec.Code)
	}
	// Bad JSON.
	req := httptest.NewRequest(http.MethodPost, "/search/vector", bytes.NewReader([]byte("{")))
	rec2 := httptest.NewRecorder()
	s.ServeHTTP(rec2, req)
	if rec2.Code != http.StatusBadRequest {
		t.Fatalf("bad JSON status %d", rec2.Code)
	}
	// GET not allowed.
	rec, _ = doJSON(t, s, http.MethodGet, "/search/vector", nil)
	if rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET status %d", rec.Code)
	}
}

func TestSearchSetEndpoint(t *testing.T) {
	s, _ := testServer(t)
	rec, body := doJSON(t, s, http.MethodPost, "/search/set", map[string]interface{}{
		"ids": []int{1, 2, 3}, "k": 5,
	})
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %v", rec.Code, body)
	}
	if len(body["answers"].([]interface{})) != 5 {
		t.Fatalf("answers: %v", body["answers"])
	}
	rec, _ = doJSON(t, s, http.MethodPost, "/search/set", map[string]interface{}{"ids": []int{}})
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("empty ids status %d", rec.Code)
	}
}

func TestItemEndpoint(t *testing.T) {
	s, ds := testServer(t)
	rec, body := doJSON(t, s, http.MethodGet, "/item/9", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	if int(body["label"].(float64)) != ds.Labels[9] {
		t.Fatalf("label: %v", body["label"])
	}
	if len(body["neighbors"].([]interface{})) == 0 {
		t.Fatal("no neighbours")
	}
	rec, _ = doJSON(t, s, http.MethodGet, "/item/xyz", nil)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("bad id status %d", rec.Code)
	}
	rec, _ = doJSON(t, s, http.MethodGet, "/item/99999", nil)
	if rec.Code != http.StatusNotFound {
		t.Fatalf("out-of-range status %d", rec.Code)
	}
}

func TestSearchBatchEndpoint(t *testing.T) {
	s, _ := testServer(t)
	rec, body := doJSON(t, s, http.MethodPost, "/search/batch", map[string]interface{}{
		"ids": []int{1, 2, -5}, "k": 3,
	})
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %v", rec.Code, body)
	}
	results := body["results"].([]interface{})
	if len(results) != 3 {
		t.Fatalf("got %d batch entries", len(results))
	}
	first := results[0].(map[string]interface{})
	if len(first["answers"].([]interface{})) != 3 {
		t.Fatalf("first entry answers: %v", first)
	}
	bad := results[2].(map[string]interface{})
	if bad["error"] == nil || bad["error"] == "" {
		t.Fatalf("invalid id did not error: %v", bad)
	}
	rec, _ = doJSON(t, s, http.MethodPost, "/search/batch", map[string]interface{}{"ids": []int{}})
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("empty ids status %d", rec.Code)
	}
	rec, _ = doJSON(t, s, http.MethodGet, "/search/batch", nil)
	if rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET status %d", rec.Code)
	}
}

func TestStatsEndpoint(t *testing.T) {
	s, _ := testServer(t)
	// Fresh server: zero counters.
	_, body := doJSON(t, s, http.MethodGet, "/stats", nil)
	if int(body["queries_served"].(float64)) != 0 {
		t.Fatalf("fresh stats: %v", body)
	}
	doJSON(t, s, http.MethodGet, "/search?id=5&k=3", nil)
	doJSON(t, s, http.MethodGet, "/search?id=999999&k=3", nil)                               // error
	doJSON(t, s, http.MethodPost, "/insert", map[string]interface{}{"vector": []float64{1}}) // error (dim)
	_, body = doJSON(t, s, http.MethodGet, "/stats", nil)
	if int(body["queries_served"].(float64)) != 2 {
		t.Fatalf("served counter: %v", body)
	}
	if int(body["query_errors"].(float64)) != 1 {
		t.Fatalf("error counter: %v", body)
	}
	// Per-endpoint breakdown: the insert error must land on "insert",
	// not in one global tally.
	eps := body["endpoints"].(map[string]interface{})
	search := eps["search"].(map[string]interface{})
	if int(search["requests"].(float64)) != 2 || int(search["errors"].(float64)) != 1 {
		t.Fatalf("search endpoint stats: %v", search)
	}
	insert := eps["insert"].(map[string]interface{})
	if int(insert["requests"].(float64)) != 1 || int(insert["errors"].(float64)) != 1 {
		t.Fatalf("insert endpoint stats: %v", insert)
	}
}

func TestInsertEndpoint(t *testing.T) {
	s, ds := testServer(t)
	before := ds.Len()

	// A valid insert returns the next id and shows up in searches.
	rec, body := doJSON(t, s, http.MethodPost, "/insert", map[string]interface{}{
		"vector": ds.Points[3],
	})
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %v", rec.Code, body)
	}
	id := int(body["id"].(float64))
	if id != before {
		t.Fatalf("first insert got id %d, want %d", id, before)
	}
	if int(body["items"].(float64)) != before+1 {
		t.Fatalf("items: %v", body["items"])
	}
	rec, body = doJSON(t, s, http.MethodGet, fmt.Sprintf("/search?id=%d&k=3", id), nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("search on inserted id: status %d, %v", rec.Code, body)
	}
	// The inserted item carries no label; its duplicate base item does.
	answers := body["answers"].([]interface{})
	for _, a := range answers {
		if int(a.(map[string]interface{})["item"].(float64)) == id {
			if _, ok := a.(map[string]interface{})["label"]; ok {
				t.Fatal("inserted item was given a label")
			}
		}
	}

	// Error paths: wrong dimension, bad JSON, wrong method.
	rec, _ = doJSON(t, s, http.MethodPost, "/insert", map[string]interface{}{
		"vector": []float64{1, 2},
	})
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("wrong-dim insert status %d", rec.Code)
	}
	req := httptest.NewRequest(http.MethodPost, "/insert", bytes.NewReader([]byte("{")))
	rec2 := httptest.NewRecorder()
	s.ServeHTTP(rec2, req)
	if rec2.Code != http.StatusBadRequest {
		t.Fatalf("bad JSON status %d", rec2.Code)
	}
	rec, _ = doJSON(t, s, http.MethodGet, "/insert", nil)
	if rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET /insert status %d", rec.Code)
	}
}

func TestDeleteEndpoint(t *testing.T) {
	s, ds := testServer(t)
	rec, body := doJSON(t, s, http.MethodPost, "/delete", map[string]interface{}{"id": 5})
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %v", rec.Code, body)
	}
	if int(body["items"].(float64)) != ds.Len()-1 {
		t.Fatalf("items after delete: %v", body["items"])
	}
	// The deleted item is gone from searches and errors as a query.
	rec, body = doJSON(t, s, http.MethodGet, "/search?id=0&k=300", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("search status %d", rec.Code)
	}
	for _, a := range body["answers"].([]interface{}) {
		if int(a.(map[string]interface{})["item"].(float64)) == 5 {
			t.Fatal("deleted item still in results")
		}
	}
	rec, _ = doJSON(t, s, http.MethodGet, "/search?id=5&k=3", nil)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("search on deleted id status %d", rec.Code)
	}
	// Error paths: double delete, unknown id, missing body, method.
	rec, _ = doJSON(t, s, http.MethodPost, "/delete", map[string]interface{}{"id": 5})
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("double delete status %d", rec.Code)
	}
	rec, _ = doJSON(t, s, http.MethodPost, "/delete", map[string]interface{}{"id": 999999})
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("unknown id status %d", rec.Code)
	}
	rec, _ = doJSON(t, s, http.MethodPost, "/delete", map[string]interface{}{})
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("missing id status %d", rec.Code)
	}
	rec, _ = doJSON(t, s, http.MethodGet, "/delete", nil)
	if rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET /delete status %d", rec.Code)
	}
}

func TestCompactEndpoint(t *testing.T) {
	s, ds := testServer(t)
	doJSON(t, s, http.MethodPost, "/insert", map[string]interface{}{"vector": ds.Points[1]})
	_, body := doJSON(t, s, http.MethodGet, "/healthz", nil)
	if int(body["delta_items"].(float64)) != 1 {
		t.Fatalf("delta_items before compact: %v", body)
	}
	rec, body := doJSON(t, s, http.MethodPost, "/compact", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %v", rec.Code, body)
	}
	if int(body["items"].(float64)) != ds.Len()+1 {
		t.Fatalf("items after compact: %v", body["items"])
	}
	_, body = doJSON(t, s, http.MethodGet, "/healthz", nil)
	if int(body["delta_items"].(float64)) != 0 {
		t.Fatalf("delta_items after compact: %v", body)
	}
	// Labels survive an insert-only compaction (ids are stable)...
	if body["has_labels"] != true {
		t.Fatal("labels dropped by insert-only compaction")
	}
	// ...and survive a delta-only delete (base ids stay aligned)...
	_, insBody := doJSON(t, s, http.MethodPost, "/insert", map[string]interface{}{"vector": ds.Points[4]})
	doJSON(t, s, http.MethodPost, "/delete", map[string]interface{}{"id": int(insBody["id"].(float64))})
	doJSON(t, s, http.MethodPost, "/compact", nil)
	_, body = doJSON(t, s, http.MethodGet, "/healthz", nil)
	if body["has_labels"] != true {
		t.Fatal("labels dropped by delta-only delete compaction")
	}
	// ...but are dropped once a delete-compaction renumbers ids.
	doJSON(t, s, http.MethodPost, "/delete", map[string]interface{}{"id": 2})
	rec, _ = doJSON(t, s, http.MethodPost, "/compact", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("second compact status %d", rec.Code)
	}
	_, body = doJSON(t, s, http.MethodGet, "/healthz", nil)
	if body["has_labels"] != false {
		t.Fatal("labels served misaligned after delete-compaction")
	}
	rec, _ = doJSON(t, s, http.MethodGet, "/compact", nil)
	if rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET /compact status %d", rec.Code)
	}
}

// TestGracefulShutdown drives the real Run loop: a request completes,
// the context is cancelled (what SIGTERM does in main), and Run
// returns cleanly while draining an in-flight request.
func TestGracefulShutdown(t *testing.T) {
	s, _ := testServer(t)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	// Wrap the real handler so the test can cancel the serve loop while
	// a request is provably in flight.
	started := make(chan struct{})
	var once sync.Once
	slow := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/search" {
			once.Do(func() { close(started) })
			time.Sleep(50 * time.Millisecond)
		}
		s.ServeHTTP(w, r)
	})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- Run(ctx, l, slow, 5*time.Second) }()

	url := "http://" + l.Addr().String()
	resp, err := http.Get(url + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}

	// Cancel mid-request: graceful drain means the in-flight search
	// still gets an answer, not a reset connection.
	inflight := make(chan error, 1)
	go func() {
		r, err := http.Get(url + "/search?id=1&k=5")
		if err == nil {
			if r.StatusCode != http.StatusOK {
				err = fmt.Errorf("in-flight search status %d", r.StatusCode)
			}
			r.Body.Close()
		}
		inflight <- err
	}()
	<-started
	cancel()
	if err := <-inflight; err != nil {
		t.Fatalf("in-flight request failed during shutdown: %v", err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("serve returned %v, want nil", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("serve did not return after cancellation")
	}
	// The listener is closed: new connections are refused.
	if _, err := http.Get(url + "/healthz"); err == nil {
		t.Fatal("server still accepting connections after shutdown")
	}
}

func TestServerWithoutLabels(t *testing.T) {
	ds := mogul.NewMixture(mogul.MixtureConfig{N: 100, Classes: 3, Dim: 6, Seed: 5})
	idx, err := mogul.BuildFromDataset(ds, mogul.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s := New(idx, Options{})
	t.Cleanup(s.Close)
	_, body := doJSON(t, s, http.MethodGet, "/search?id=0&k=2", nil)
	first := body["answers"].([]interface{})[0].(map[string]interface{})
	if _, ok := first["label"]; ok {
		t.Fatal("label invented for unlabelled dataset")
	}
}

// TestShardedBackend: the same handler stack serves a ShardedIndex
// (-shards N) through the Retriever surface — search, vector, insert,
// delete, compact and health all work, with global ids on the wire.
func TestShardedBackend(t *testing.T) {
	ds := mogul.NewMixture(mogul.MixtureConfig{
		N: 300, Classes: 6, Dim: 8, WithinStd: 0.2, Separation: 2.5, Seed: 4,
	})
	idx, err := mogul.BuildSharded(ds.Points, mogul.Options{}, mogul.ShardOptions{
		Shards: 3, Partitioner: mogul.PartitionKMeans,
	})
	if err != nil {
		t.Fatal(err)
	}
	s := New(idx, Options{Labels: ds.Labels})
	t.Cleanup(s.Close)

	rec, body := doJSON(t, s, http.MethodGet, "/healthz", nil)
	if rec.Code != http.StatusOK || body["items"].(float64) != 300 {
		t.Fatalf("healthz: %d %v", rec.Code, body)
	}
	rec, body = doJSON(t, s, http.MethodGet, "/search?id=17&k=5", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("search: %d %v", rec.Code, body)
	}
	if answers := body["answers"].([]interface{}); len(answers) != 5 {
		t.Fatalf("search answers: %v", answers)
	}
	rec, body = doJSON(t, s, http.MethodPost, "/search/vector", map[string]interface{}{
		"vector": ds.Points[9], "k": 4,
	})
	if rec.Code != http.StatusOK || len(body["answers"].([]interface{})) != 4 {
		t.Fatalf("vector search: %d %v", rec.Code, body)
	}
	rec, body = doJSON(t, s, http.MethodPost, "/insert", map[string]interface{}{
		"vector": ds.Points[0],
	})
	if rec.Code != http.StatusOK || int(body["id"].(float64)) != 300 {
		t.Fatalf("insert: %d %v", rec.Code, body)
	}
	rec, _ = doJSON(t, s, http.MethodPost, "/delete", map[string]int{"id": 5})
	if rec.Code != http.StatusOK {
		t.Fatalf("delete: %d", rec.Code)
	}
	rec, body = doJSON(t, s, http.MethodPost, "/compact", nil)
	if rec.Code != http.StatusOK || int(body["items"].(float64)) != 300 {
		t.Fatalf("compact: %d %v", rec.Code, body)
	}
	rec, body = doJSON(t, s, http.MethodGet, "/search?id=300&k=3", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("search of inserted id after compact: %d %v", rec.Code, body)
	}
}

// TestMetricsEndpoint exercises the Prometheus exposition: counters
// move with traffic, histograms and gauges are present, shed and
// cache families appear when their features are on.
func TestMetricsEndpoint(t *testing.T) {
	idx, ds := testIndex(t)
	s := New(idx, Options{Labels: ds.Labels, CacheBytes: 1 << 20, BatchWindow: 100 * time.Microsecond})
	t.Cleanup(s.Close)

	doJSON(t, s, http.MethodGet, "/search?id=5&k=3", nil)
	doJSON(t, s, http.MethodGet, "/search?id=5&k=3", nil) // cache hit
	doJSON(t, s, http.MethodPost, "/search/vector", map[string]interface{}{"vector": ds.Points[2], "k": 3})

	req := httptest.NewRequest(http.MethodGet, "/metrics", nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("metrics status %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Fatalf("metrics content type %q", ct)
	}
	out := rec.Body.String()
	for _, want := range []string{
		`mogul_requests_total{endpoint="search"} 2`,
		`mogul_request_duration_seconds_bucket{endpoint="search",le="+Inf"} 2`,
		`mogul_request_duration_seconds_count{endpoint="search"} 2`,
		`mogul_cache_hits_total 1`,
		`mogul_cache_misses_total`,
		`mogul_batches_total 1`,
		`mogul_batched_queries_total 1`,
		`mogul_batch_size_bucket{le="1"} 1`,
		`mogul_shed_total 0`,
		`mogul_index_version 1`,
		fmt.Sprintf(`mogul_index_items %d`, ds.Len()),
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics output missing %q", want)
		}
	}
}

// TestCachedSearch: a repeated query is served from cache (flagged,
// identical answers), and any mutation invalidates implicitly via the
// version stamp.
func TestCachedSearch(t *testing.T) {
	idx, ds := testIndex(t)
	s := New(idx, Options{Labels: ds.Labels, CacheBytes: 1 << 20})
	t.Cleanup(s.Close)

	_, first := doJSON(t, s, http.MethodGet, "/search?id=7&k=5", nil)
	if first["cached"] != nil {
		t.Fatalf("first request claimed cached: %v", first)
	}
	_, second := doJSON(t, s, http.MethodGet, "/search?id=7&k=5", nil)
	if second["cached"] != true {
		t.Fatalf("repeat request not cached: %v", second)
	}
	a1, _ := json.Marshal(first["answers"])
	a2, _ := json.Marshal(second["answers"])
	if !bytes.Equal(a1, a2) {
		t.Fatalf("cached answers differ:\n%s\n%s", a1, a2)
	}
	// Work counters survive the cache so the response shape is stable.
	if first["clusters_scanned"] != second["clusters_scanned"] {
		t.Fatalf("cached work counters differ: %v vs %v", first["clusters_scanned"], second["clusters_scanned"])
	}

	// A mutation bumps the version: the very next identical query must
	// recompute (and see the new item in a large-k query).
	doJSON(t, s, http.MethodPost, "/insert", map[string]interface{}{"vector": ds.Points[7]})
	_, third := doJSON(t, s, http.MethodGet, "/search?id=7&k=5", nil)
	if third["cached"] == true {
		t.Fatal("stale cache entry served after insert")
	}
	a3, _ := json.Marshal(third["answers"])
	if bytes.Equal(a1, a3) {
		// The duplicate of item 7 must now compete into its own top-5.
		t.Fatal("post-insert answers identical to pre-insert: stale result")
	}

	// Vector and set paths cache too.
	for _, req := range []struct {
		path string
		body map[string]interface{}
	}{
		{"/search/vector", map[string]interface{}{"vector": ds.Points[3], "k": 4}},
		{"/search/set", map[string]interface{}{"ids": []int{1, 2}, "k": 4}},
	} {
		_, r1 := doJSON(t, s, http.MethodPost, req.path, req.body)
		_, r2 := doJSON(t, s, http.MethodPost, req.path, req.body)
		if r2["cached"] != true {
			t.Fatalf("%s repeat not cached: %v", req.path, r2)
		}
		b1, _ := json.Marshal(r1["answers"])
		b2, _ := json.Marshal(r2["answers"])
		if !bytes.Equal(b1, b2) {
			t.Fatalf("%s cached answers differ", req.path)
		}
	}
}

// TestBatchedVectorSearch: with a batch window on, concurrent
// identical queries coalesce into shared executions and still return
// exactly the direct-path answers.
func TestBatchedVectorSearch(t *testing.T) {
	idx, ds := testIndex(t)
	// Explicit, generous admission bounds: this test is about result
	// correctness under coalescing, not about shedding (which the race
	// detector's scheduling would otherwise trip on small machines).
	batched := New(idx, Options{BatchWindow: 2 * time.Millisecond, MaxBatch: 32, MaxInFlight: 4, MaxQueue: 64})
	direct := New(idx, Options{})
	t.Cleanup(batched.Close)
	t.Cleanup(direct.Close)

	// Reference answers from the direct path.
	_, want := doJSON(t, direct, http.MethodPost, "/search/vector", map[string]interface{}{
		"vector": ds.Points[11], "k": 6,
	})
	wantAnswers, _ := json.Marshal(want["answers"])

	const clients = 24
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rec, body := doJSONQuiet(batched, http.MethodPost, "/search/vector", map[string]interface{}{
				"vector": ds.Points[11], "k": 6,
			})
			if rec.Code != http.StatusOK {
				errs <- fmt.Errorf("status %d: %v", rec.Code, body)
				return
			}
			got, _ := json.Marshal(body["answers"])
			if !bytes.Equal(got, wantAnswers) {
				errs <- fmt.Errorf("batched answers differ: %s vs %s", got, wantAnswers)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	// The herd coalesced: far fewer engine calls than clients.
	if got := batched.met.coalesced.Load(); got == 0 {
		t.Fatal("no coalescing for 24 identical concurrent queries")
	}
	// Different k over the same vector shares the computation and gets
	// a correct prefix.
	rec, body := doJSON(t, batched, http.MethodPost, "/search/vector", map[string]interface{}{
		"vector": ds.Points[11], "k": 3,
	})
	if rec.Code != http.StatusOK || len(body["answers"].([]interface{})) != 3 {
		t.Fatalf("k=3 after k=6: %d %v", rec.Code, body)
	}
	got, _ := json.Marshal(body["answers"])
	var wantPrefix []interface{}
	_ = json.Unmarshal(wantAnswers, &wantPrefix)
	prefix, _ := json.Marshal(wantPrefix[:3])
	if !bytes.Equal(got, prefix) {
		t.Fatalf("k=3 not a prefix of k=6: %s vs %s", got, prefix)
	}
}

// doJSONQuiet is doJSON without the testing.T plumbing, for use inside
// goroutines.
func doJSONQuiet(h http.Handler, method, path string, body interface{}) (*httptest.ResponseRecorder, map[string]interface{}) {
	var reader *bytes.Reader
	if body != nil {
		data, _ := json.Marshal(body)
		reader = bytes.NewReader(data)
	} else {
		reader = bytes.NewReader(nil)
	}
	req := httptest.NewRequest(method, path, reader)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	var decoded map[string]interface{}
	_ = json.Unmarshal(rec.Body.Bytes(), &decoded)
	return rec, decoded
}
