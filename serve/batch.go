package serve

import (
	"context"
	"encoding/json"
	"sync"
	"time"

	"mogul"
)

// Micro-batched execution for out-of-sample (/search/vector) traffic.
//
// Under heavy concurrent load, running each vector query on its own
// goroutine wastes the engine's batch machinery: TopKVectorBatch
// amortizes worker setup and keeps a fixed set of pinned Searcher
// workspaces hot. The batcher converts request-level concurrency into
// engine-level batches:
//
//	request -> bounded queue -> collector (waits BatchWindow for
//	company, caps at MaxBatch) -> executor goroutine (one limiter
//	slot per batch) -> one TopKVectorBatch call -> fan results back
//
// Identical in-flight vectors are deduplicated inside the executor —
// a thundering herd asking the same query costs one search — and
// queries that only differ in k share one computation at the largest
// k, since a top-k ranking is a prefix of every larger-k ranking from
// the same state.
//
// The window is a latency *floor* for the first query of a lonely
// batch (it waits out BatchWindow alone), which is why batching is
// opt-in and the window should sit well under the service's latency
// budget: the trade is a few hundred microseconds of added floor for
// a large throughput multiple at saturation (see BenchmarkServeThroughput).

// pending is one enqueued vector query.
type pending struct {
	ctx context.Context
	vec mogul.Vector
	k   int
	// key is the full cache key (vector + k); gkey the dedup group key
	// (vector only).
	key  string
	gkey string
	out  chan batchOut
}

type batchOut struct {
	// ans is the rendered answer payload (see cacheEntry: the executor
	// renders once per waiter and the cache keeps the same bytes).
	ans json.RawMessage
	err error
}

type batcher struct {
	s        *Server
	in       chan *pending
	window   time.Duration
	maxBatch int
	wg       sync.WaitGroup
}

func newBatcher(s *Server, window time.Duration, maxBatch, queue int) *batcher {
	b := &batcher{
		s:        s,
		in:       make(chan *pending, queue),
		window:   window,
		maxBatch: maxBatch,
	}
	b.wg.Add(1)
	go b.collect()
	return b
}

// do enqueues one query and waits for its rendered result. It returns
// errShed when the batch queue is full, errClosed past Close, and the
// context's error if the client goes away first.
func (b *batcher) do(ctx context.Context, v mogul.Vector, k int, key string) (json.RawMessage, error) {
	p := &pending{
		ctx:  ctx,
		vec:  v,
		k:    k,
		key:  key,
		gkey: vectorGroupKey(v),
		out:  make(chan batchOut, 1),
	}
	select {
	case b.in <- p:
	default:
		// Queue full: shed at the door, before any goroutine or timer
		// is spent on the request.
		return nil, errShed
	}
	select {
	case out := <-p.out:
		return out.ans, out.err
	case <-ctx.Done():
		// The executor will still deliver into the buffered channel;
		// nothing leaks, nobody blocks.
		return nil, ctx.Err()
	case <-b.s.baseCtx.Done():
		return nil, errClosed
	}
}

// collect is the single forming loop: it blocks for a first query,
// keeps the batch open for the window (or until MaxBatch), then hands
// the formed batch to its own executor goroutine and immediately
// starts forming the next — forming and executing pipeline against
// each other.
func (b *batcher) collect() {
	defer b.wg.Done()
	stop := b.s.baseCtx.Done()
	for {
		var first *pending
		select {
		case first = <-b.in:
		case <-stop:
			b.drain()
			return
		}
		batch := make([]*pending, 1, b.maxBatch)
		batch[0] = first
		timer := time.NewTimer(b.window)
		for len(batch) < b.maxBatch {
			select {
			case p := <-b.in:
				batch = append(batch, p)
				continue
			case <-timer.C:
			case <-stop:
			}
			break
		}
		timer.Stop()
		b.wg.Add(1)
		go b.exec(batch)
		select {
		case <-stop:
			b.drain()
			return
		default:
		}
	}
}

// drain fails everything still queued at shutdown.
func (b *batcher) drain() {
	for {
		select {
		case p := <-b.in:
			p.out <- batchOut{err: errClosed}
		default:
			return
		}
	}
}

// exec runs one formed batch: admission, dedup, a single
// TopKVectorBatch call, then result fan-out and cache fill.
func (b *batcher) exec(batch []*pending) {
	defer b.wg.Done()
	s := b.s
	if err := s.lim.acquire(s.baseCtx); err != nil {
		// errShed propagates to every waiter, whose handler counts the
		// shed and answers 429; anything else here means shutdown.
		if err != errShed {
			err = errClosed
		}
		for _, p := range batch {
			p.out <- batchOut{err: err}
		}
		return
	}
	defer s.lim.release()

	// Group by vector: one engine query per distinct vector, at the
	// largest k any waiter asked for. Clients that vanished while the
	// batch formed are dropped here — and if a whole group vanished,
	// its computation is skipped entirely.
	groups := make(map[string]int, len(batch))
	var (
		vecs []mogul.Vector
		kmax []int
		want [][]*pending
	)
	live := 0
	for _, p := range batch {
		if p.ctx.Err() != nil {
			p.out <- batchOut{err: p.ctx.Err()}
			continue
		}
		live++
		gi, ok := groups[p.gkey]
		if !ok {
			gi = len(vecs)
			groups[p.gkey] = gi
			vecs = append(vecs, p.vec)
			kmax = append(kmax, p.k)
			want = append(want, nil)
		} else if p.k > kmax[gi] {
			kmax[gi] = p.k
		}
		want[gi] = append(want[gi], p)
	}
	if live == 0 {
		return
	}
	s.met.batches.Add(1)
	s.met.batchedQueries.Add(int64(live))
	s.met.coalesced.Add(int64(live - len(vecs)))
	s.met.batchSize.observe(int64(live))

	// One k per TopKVectorBatch call: run at the batch-wide maximum
	// and truncate per waiter — top-k lists are prefix-consistent.
	kAll := 0
	for _, k := range kmax {
		if k > kAll {
			kAll = k
		}
	}
	ver := s.idx.Version()
	brs := s.idx.TopKVectorBatch(vecs, kAll, 0)
	for gi, br := range brs {
		if br.Err != nil {
			for _, p := range want[gi] {
				p.out <- batchOut{err: br.Err}
			}
			continue
		}
		// Render (and cache-fill) once per distinct k in the group — a
		// coalesced herd shares one key, and re-marshalling the same
		// rows per waiter would put the redundant work right back on
		// the saturation path the batcher exists to relieve.
		var rendered map[int]json.RawMessage
		for _, p := range want[gi] {
			ans, ok := rendered[p.k]
			if !ok {
				res := br.Results
				if p.k < len(res) {
					res = res[:p.k]
				}
				ans = s.cacheSet(p.key, ver, res, mogul.SearchInfo{})
				if rendered == nil {
					rendered = make(map[int]json.RawMessage, 1)
				}
				rendered[p.k] = ans
			}
			p.out <- batchOut{ans: ans}
		}
	}
}
