package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"mogul"
)

// BenchmarkServeThroughput measures the serving layer end to end —
// HTTP handler, JSON codec, cache, batcher, limiter — over one shared
// index, in the configurations that matter operationally:
//
//   - uncached:          every query runs the engine (the baseline)
//   - cold-cache:        cache on, but every query is new (miss path tax)
//   - warm-cache:        cache on, repeating working set (the hit path;
//     the acceptance bar is >= 5x over uncached)
//   - unbatched-parallel: concurrent clients, direct execution
//   - batched-parallel:   concurrent clients, micro-batched execution
//
// CI's bench-smoke job archives these as BENCH_serve.json via
// cmd/bench2json; a committed baseline lives at the repo root.
func BenchmarkServeThroughput(b *testing.B) {
	ds := mogul.NewMixture(mogul.MixtureConfig{
		N: 6000, Classes: 8, Dim: 32, WithinStd: 0.25, Separation: 2.5, Seed: 17,
	})
	idx, err := mogul.BuildFromDataset(ds, mogul.Options{})
	if err != nil {
		b.Fatal(err)
	}

	// A fixed working set of query bodies, pre-marshalled so the
	// benchmark measures the server, not the test harness.
	const working = 16
	bodies := make([][]byte, working)
	for i := range bodies {
		bodies[i], _ = json.Marshal(map[string]interface{}{
			"vector": ds.Points[i*13], "k": 10,
		})
	}
	// One request object and a no-op response writer per client loop:
	// the benchmark measures the serving stack, not httptest's
	// per-call recorder setup.
	post := newPoster()

	b.Run("uncached", func(b *testing.B) {
		s := New(idx, Options{})
		defer s.Close()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if code := post(s, bodies[i%working]); code != http.StatusOK {
				b.Fatalf("status %d", code)
			}
		}
	})

	b.Run("cold-cache", func(b *testing.B) {
		s := New(idx, Options{CacheBytes: 64 << 20})
		defer s.Close()
		// Every query distinct: the cache only ever costs (key build,
		// miss, fill), never pays.
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			body, _ := json.Marshal(map[string]interface{}{
				"vector": append([]float64{float64(i)}, ds.Points[i%working][1:]...), "k": 10,
			})
			if code := post(s, body); code != http.StatusOK {
				b.Fatalf("status %d", code)
			}
		}
	})

	b.Run("warm-cache", func(b *testing.B) {
		s := New(idx, Options{CacheBytes: 64 << 20})
		defer s.Close()
		for i := 0; i < working; i++ {
			post(s, bodies[i])
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if code := post(s, bodies[i%working]); code != http.StatusOK {
				b.Fatalf("status %d", code)
			}
		}
		b.StopTimer()
		hits, misses := s.met.cacheHits.Load(), s.met.cacheMisses.Load()
		if total := hits + misses; total > 0 {
			b.ReportMetric(float64(hits)/float64(total), "hit-ratio")
		}
	})

	// The parallel pair compares direct vs micro-batched execution
	// under concurrent clients (SetParallelism keeps real concurrency
	// even on small CI machines). Caching is off in both so the
	// comparison isolates the execution layer.
	b.Run("unbatched-parallel", func(b *testing.B) {
		s := New(idx, Options{MaxInFlight: 8, MaxQueue: 4096})
		defer s.Close()
		b.SetParallelism(32)
		b.ReportAllocs()
		b.RunParallel(func(pb *testing.PB) {
			post := newPoster()
			i := 0
			for pb.Next() {
				if code := post(s, bodies[i%working]); code != http.StatusOK {
					b.Fatalf("status %d", code)
				}
				i++
			}
		})
	})

	b.Run("batched-parallel", func(b *testing.B) {
		s := New(idx, Options{
			MaxInFlight: 8, MaxQueue: 4096,
			BatchWindow: 100 * time.Microsecond, MaxBatch: 32,
		})
		defer s.Close()
		b.SetParallelism(32)
		b.ReportAllocs()
		b.RunParallel(func(pb *testing.PB) {
			post := newPoster()
			i := 0
			for pb.Next() {
				if code := post(s, bodies[i%working]); code != http.StatusOK {
					b.Fatalf("status %d", code)
				}
				i++
			}
		})
		b.StopTimer()
		if n := s.met.batches.Load(); n > 0 {
			b.ReportMetric(float64(s.met.batchedQueries.Load())/float64(n), "queries/batch")
		}
	})
}

// nullResponse is the cheapest possible ResponseWriter: it records
// the status and discards the body.
type nullResponse struct {
	hdr  http.Header
	code int
}

func (w *nullResponse) Header() http.Header         { return w.hdr }
func (w *nullResponse) Write(p []byte) (int, error) { return len(p), nil }
func (w *nullResponse) WriteHeader(code int)        { w.code = code }

// newPoster returns a single-goroutine POST /search/vector driver that
// reuses one request object and one nullResponse across calls.
func newPoster() func(s *Server, body []byte) int {
	req := httptest.NewRequest(http.MethodPost, "/search/vector", nil)
	w := &nullResponse{hdr: make(http.Header)}
	return func(s *Server, body []byte) int {
		req.Body = io.NopCloser(bytes.NewReader(body))
		w.code = 0
		clear(w.hdr)
		s.ServeHTTP(w, req)
		if w.code == 0 {
			return http.StatusOK
		}
		return w.code
	}
}

// TestWarmCacheSpeedup pins the acceptance bar outside the benchmark
// harness: the warm-cache path must be at least 5x faster than
// uncached single-query serving on the same working set. Measured with
// modest iteration counts — the gap is over an order of magnitude, so
// the test is robust to noise while still failing loudly if the cache
// path ever regresses into re-executing searches.
func TestWarmCacheSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	ds := mogul.NewMixture(mogul.MixtureConfig{
		N: 6000, Classes: 8, Dim: 32, WithinStd: 0.25, Separation: 2.5, Seed: 17,
	})
	idx, err := mogul.BuildFromDataset(ds, mogul.Options{})
	if err != nil {
		t.Fatal(err)
	}
	body, _ := json.Marshal(map[string]interface{}{"vector": ds.Points[42], "k": 10})
	post := newPoster()
	run := func(s *Server, iters int) time.Duration {
		t0 := time.Now()
		for i := 0; i < iters; i++ {
			if code := post(s, body); code != http.StatusOK {
				t.Fatalf("status %d", code)
			}
		}
		return time.Since(t0)
	}
	// Best-of-chunks timing: each side is measured as the minimum over
	// several chunks, which filters one-sided scheduler/GC noise — the
	// bar is a real 5-7x gap, and a single 300-iteration pass on a
	// loaded single-core CI box can smear the uncached side enough to
	// flake in either direction.
	best := func(s *Server) time.Duration {
		const chunks, iters = 5, 100
		min := time.Duration(1<<63 - 1)
		for c := 0; c < chunks; c++ {
			if d := run(s, iters); d < min {
				min = d
			}
		}
		return min
	}
	uncached := New(idx, Options{})
	warm := New(idx, Options{CacheBytes: 16 << 20})
	defer uncached.Close()
	defer warm.Close()
	run(uncached, 50) // warm up code paths
	run(warm, 50)     // fills + hits
	tu := best(uncached)
	tw := best(warm)
	speedup := float64(tu) / float64(tw)
	t.Logf("uncached %v, warm-cache %v per 100 queries (best of 5): %.1fx", tu, tw, speedup)
	if speedup < 5 {
		t.Fatalf("warm cache speedup %.1fx, want >= 5x", speedup)
	}
}
