package serve

// Regression tests for the unified error rendering contract: every
// error response — including 429 shed responses, which carry a
// Retry-After header — must also carry Content-Type:
// application/json and a {"error": msg} body. The shed path builds
// its response in two steps (header, then body via the shared
// renderer), so a refactor could plausibly drop one half; this pins
// both. Plus parseK edge cases: k > n is legal (the engine clamps to
// the live set), k = MaxInt must not overflow anything on the way
// down.

import (
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"
)

// checkErrorShape asserts the canonical error response: JSON
// Content-Type and an {"error": non-empty} body.
func checkErrorShape(t *testing.T, rec *httptest.ResponseRecorder, wantStatus int) string {
	t.Helper()
	if rec.Code != wantStatus {
		t.Fatalf("status %d, want %d", rec.Code, wantStatus)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("Content-Type %q, want application/json", ct)
	}
	var body struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatalf("body is not JSON: %v (%q)", err, rec.Body.String())
	}
	if body.Error == "" {
		t.Fatalf("body %q lacks an error message", rec.Body.String())
	}
	return body.Error
}

// TestShedResponseShape: the 429 shed response carries BOTH the
// Retry-After header and the canonical JSON error body.
func TestShedResponseShape(t *testing.T) {
	idx, _ := testIndex(t)
	s := New(idx, Options{RetryAfter: 3 * time.Second})
	defer s.Close()
	rec := httptest.NewRecorder()
	s.shed(rec)
	checkErrorShape(t, rec, http.StatusTooManyRequests)
	if ra := rec.Header().Get("Retry-After"); ra != "3" {
		t.Fatalf("Retry-After %q, want \"3\"", ra)
	}
	// Sub-second hints round UP to a whole second, never to 0.
	s2 := New(idx, Options{RetryAfter: 300 * time.Millisecond})
	defer s2.Close()
	rec2 := httptest.NewRecorder()
	s2.shed(rec2)
	if ra := rec2.Header().Get("Retry-After"); ra != "1" {
		t.Fatalf("sub-second Retry-After %q, want \"1\"", ra)
	}
}

// TestErrorShapeAcrossEndpoints: a sample of error paths on every
// endpoint family renders the same shape.
func TestErrorShapeAcrossEndpoints(t *testing.T) {
	idx, _ := testIndex(t)
	s := New(idx, Options{})
	defer s.Close()
	cases := []struct {
		name, method, path, body string
		wantStatus               int
	}{
		{"search bad method", http.MethodPost, "/search?id=1", "", http.StatusMethodNotAllowed},
		{"search bad id", http.MethodGet, "/search?id=x", "", http.StatusBadRequest},
		{"search bad k", http.MethodGet, "/search?id=1&k=0", "", http.StatusBadRequest},
		{"search negative k", http.MethodGet, "/search?id=1&k=-5", "", http.StatusBadRequest},
		{"vector bad json", http.MethodPost, "/search/vector", "{", http.StatusBadRequest},
		{"set empty ids", http.MethodPost, "/search/set", `{"ids":[],"k":5}`, http.StatusBadRequest},
		{"batch bad json", http.MethodPost, "/search/batch", "{", http.StatusBadRequest},
		{"insert bad json", http.MethodPost, "/insert", "{", http.StatusBadRequest},
		{"delete bad body", http.MethodPost, "/delete", `{"id":"x"}`, http.StatusBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			req := newBodyRequest(tc.method, tc.path, tc.body)
			rec := httptest.NewRecorder()
			s.ServeHTTP(rec, req)
			checkErrorShape(t, rec, tc.wantStatus)
		})
	}
}

func newBodyRequest(method, path, body string) *http.Request {
	if body == "" {
		return httptest.NewRequest(method, path, nil)
	}
	req := httptest.NewRequest(method, path, strings.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	return req
}

// TestParseKEdges pins parseK/normalizeK at the edges: absent
// defaults to 10, zero and negatives reject, and values far past any
// index size — up to MaxInt — pass through for the engine to clamp.
func TestParseKEdges(t *testing.T) {
	cases := []struct {
		raw    string
		want   int
		wantOK bool
	}{
		{"", 10, true},
		{"1", 1, true},
		{"0", 0, false},
		{"-3", 0, false},
		{"x", 0, false},
		{"2.5", 0, false},
		{strconv.Itoa(math.MaxInt), math.MaxInt, true},
		// Overflow past MaxInt must reject, not wrap negative.
		{strconv.Itoa(math.MaxInt) + "0", 0, false},
	}
	for _, tc := range cases {
		k, err := parseK(tc.raw)
		if tc.wantOK != (err == nil) {
			t.Fatalf("parseK(%q): err=%v, wantOK=%v", tc.raw, err, tc.wantOK)
		}
		if tc.wantOK && k != tc.want {
			t.Fatalf("parseK(%q) = %d, want %d", tc.raw, k, tc.want)
		}
	}
	if k, err := normalizeK(0); err != nil || k != 10 {
		t.Fatalf("normalizeK(0) = %d, %v; want 10, nil", k, err)
	}
	if _, err := normalizeK(-1); err == nil {
		t.Fatal("normalizeK(-1) accepted")
	}
	if k, err := normalizeK(math.MaxInt); err != nil || k != math.MaxInt {
		t.Fatalf("normalizeK(MaxInt) = %d, %v", k, err)
	}
}

// TestSearchHugeK: k far beyond the index size — including MaxInt —
// answers 200 with every live item, proving the clamp happens in the
// engine and nothing between the HTTP layer and it chokes on the
// magnitude (no allocation sized by k anywhere on the path).
func TestSearchHugeK(t *testing.T) {
	idx, ds := testIndex(t)
	n := ds.Len()
	s := New(idx, Options{})
	defer s.Close()
	for _, k := range []int{n, n + 1, 10 * n, math.MaxInt} {
		req := httptest.NewRequest(http.MethodGet, "/search?id=0&k="+strconv.Itoa(k), nil)
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			t.Fatalf("k=%d: status %d: %s", k, rec.Code, rec.Body.String())
		}
		var resp struct {
			Answers []answer `json:"answers"`
		}
		if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
			t.Fatal(err)
		}
		if len(resp.Answers) != n {
			t.Fatalf("k=%d returned %d answers, want all %d live items", k, len(resp.Answers), n)
		}
	}
}
