package mogul

import "mogul/internal/core"

// Dynamic updates: online Insert/Delete without rebuilding, plus
// Compact to fold accumulated changes into a fresh base build. See
// README "Dynamic updates" for the accuracy model and
// internal/core/dynamic.go for the mechanism (an out-of-sample delta
// layer scored through the Section 4.6.2 machinery).

// DeltaStats describes the dynamic state of an index: the size of the
// factored base, the live inserted items awaiting compaction, and the
// tombstones deletions left behind.
type DeltaStats = core.DeltaStats

// Insert adds a new point to the index without rebuilding and returns
// its item id. The point becomes immediately searchable: it competes
// in TopK/TopKVector/TopKBatch results and can itself serve as a
// query. Internally it is scored through the out-of-sample extension
// (its nearest in-database neighbours act as surrogates), so accuracy
// degrades gently as the delta grows — size the delta with
// Options.AutoCompactFraction or call Compact to fold it in. Safe for
// concurrent use with searches.
func (ix *Index) Insert(v Vector) (int, error) {
	return ix.core.Insert(v)
}

// Delete removes an item (base or inserted) from every search path.
// The underlying storage is tombstoned until Compact; deleting an
// unknown or already-deleted id is an error. Safe for concurrent use
// with searches.
func (ix *Index) Delete(id int) error {
	return ix.core.Delete(id)
}

// Compact folds the delta layer into the base: live points are
// rebuilt into a fresh index with the original build options, after
// which the delta is empty. For insert-only workloads the result — ids
// included — is bit-identical to a fresh Build over the merged point
// set (the whole pipeline is deterministic for a fixed seed). After
// deletions, ids are renumbered compactly with live items keeping
// their relative order. Searches keep running against the
// pre-compaction state while the rebuild is in progress; only
// Insert/Delete block. Indexes built via BuildFromGraphPoints or
// loaded from a pre-v3 file cannot Compact (no recorded graph
// recipe) and return an error.
func (ix *Index) Compact() error {
	return ix.core.Compact()
}

// Delta reports the dynamic state of the index (base size, live
// inserts, tombstones).
func (ix *Index) Delta() DeltaStats {
	return ix.core.Delta()
}
