package mogul

import (
	"math"
	"math/rand"
	"sync"
	"testing"
)

func buildTestIndex(t *testing.T, opts Options) (*Index, *Dataset) {
	t.Helper()
	ds := NewMixture(MixtureConfig{
		N: 400, Classes: 8, Dim: 12, WithinStd: 0.2, Separation: 2.5, Seed: 42,
	})
	ix, err := BuildFromDataset(ds, opts)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return ix, ds
}

func TestBuildAndTopK(t *testing.T) {
	ix, ds := buildTestIndex(t, Options{})
	if ix.Len() != ds.Len() {
		t.Fatalf("Len = %d, want %d", ix.Len(), ds.Len())
	}
	res, err := ix.TopK(10, 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 6 {
		t.Fatalf("got %d results", len(res))
	}
	if res[0].Node != 10 {
		t.Fatalf("query not rank 1: %+v", res[0])
	}
	for i := 1; i < len(res); i++ {
		if res[i].Score > res[i-1].Score {
			t.Fatal("results not sorted")
		}
	}
	// Retrieval quality on separated mixture.
	hits, cnt := 0, 0
	for _, r := range res {
		if r.Node == 10 {
			continue
		}
		cnt++
		if ds.Labels[r.Node] == ds.Labels[10] {
			hits++
		}
	}
	if hits < cnt-1 {
		t.Fatalf("retrieval too weak: %d/%d", hits, cnt)
	}
}

func TestBuildErrors(t *testing.T) {
	if _, err := Build(nil, Options{}); err == nil {
		t.Fatal("nil points accepted")
	}
	if _, err := Build([]Vector{{1, 2}}, Options{}); err == nil {
		t.Fatal("single point accepted")
	}
	bad := &Dataset{Points: []Vector{{1}, {2, 3}}}
	if _, err := BuildFromDataset(bad, Options{}); err == nil {
		t.Fatal("ragged dataset accepted")
	}
}

func TestExactModeMatchesScores(t *testing.T) {
	ds := NewMixture(MixtureConfig{
		N: 200, Classes: 4, Dim: 8, WithinStd: 0.2, Separation: 2.5, Seed: 7,
	})
	approx, err := BuildFromDataset(ds, Options{})
	if err != nil {
		t.Fatal(err)
	}
	exact, err := BuildFromDataset(ds, Options{Exact: true})
	if err != nil {
		t.Fatal(err)
	}
	if approx.Exact() || !exact.Exact() {
		t.Fatal("Exact() flags wrong")
	}
	// Approximate scores track exact ones closely in aggregate.
	a, err := approx.Scores(3)
	if err != nil {
		t.Fatal(err)
	}
	e, err := exact.Scores(3)
	if err != nil {
		t.Fatal(err)
	}
	var num, den float64
	for i := range a {
		num += (a[i] - e[i]) * (a[i] - e[i])
		den += e[i] * e[i]
	}
	if rel := math.Sqrt(num / den); rel > 0.5 {
		t.Fatalf("relative score error %.2f too large", rel)
	}
}

func TestTopKVector(t *testing.T) {
	ds := NewMixture(MixtureConfig{
		N: 300, Classes: 6, Dim: 10, WithinStd: 0.2, Separation: 3, Seed: 9,
	})
	in, queries, qLabels, err := HoldOut(ds, 0.1, 1)
	if err != nil {
		t.Fatal(err)
	}
	ix, err := BuildFromDataset(in, Options{})
	if err != nil {
		t.Fatal(err)
	}
	hits, cnt := 0, 0
	for qi, q := range queries {
		res, err := ix.TopKVector(q, 5)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range res {
			cnt++
			if in.Labels[r.Node] == qLabels[qi] {
				hits++
			}
		}
	}
	if prec := float64(hits) / float64(cnt); prec < 0.8 {
		t.Fatalf("out-of-sample precision %.2f", prec)
	}
}

func TestTopKVectorWithInfo(t *testing.T) {
	ds := NewMixture(MixtureConfig{
		N: 200, Classes: 4, Dim: 8, WithinStd: 0.2, Separation: 2.5, Seed: 13,
	})
	ix, err := BuildFromDataset(ds, Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, bd, err := ix.TopKVectorWithInfo(ds.Points[5], 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 4 {
		t.Fatalf("got %d results", len(res))
	}
	if bd.Overall() <= 0 || len(bd.Neighbors) == 0 {
		t.Fatalf("breakdown empty: %+v", bd)
	}
	if bd.NearestNeighbor+bd.TopK != bd.Overall() {
		t.Fatal("breakdown phases do not sum to overall")
	}
}

func TestNeighbors(t *testing.T) {
	ix, _ := buildTestIndex(t, Options{})
	ids, weights, err := ix.Neighbors(5)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) == 0 || len(ids) != len(weights) {
		t.Fatalf("neighbors %d/%d", len(ids), len(weights))
	}
	if _, _, err := ix.Neighbors(-1); err == nil {
		t.Fatal("negative item accepted")
	}
	if _, _, err := ix.Neighbors(ix.Len()); err == nil {
		t.Fatal("out-of-range item accepted")
	}
}

func TestStatsPopulated(t *testing.T) {
	ix, _ := buildTestIndex(t, Options{})
	st := ix.Stats()
	if st.NumNodes != ix.Len() || st.NumClusters < 2 || st.FactorNNZ <= 0 {
		t.Fatalf("stats look empty: %+v", st)
	}
	if st.PrecomputeTime() <= 0 {
		t.Fatal("zero precompute time")
	}
}

func TestTopKWithInfoPrunes(t *testing.T) {
	ix, _ := buildTestIndex(t, Options{})
	res, info, err := ix.TopKWithInfo(0, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 5 {
		t.Fatalf("got %d results", len(res))
	}
	if info.ClustersPruned == 0 {
		t.Log("warning: no clusters pruned on this instance (allowed but unusual)")
	}
	if info.ScoresComputed <= 0 {
		t.Fatalf("no scores computed: %+v", info)
	}
}

func TestConcurrentSearches(t *testing.T) {
	ix, _ := buildTestIndex(t, Options{})
	var wg sync.WaitGroup
	errs := make(chan error, 32)
	rng := rand.New(rand.NewSource(1))
	queries := make([]int, 32)
	for i := range queries {
		queries[i] = rng.Intn(ix.Len())
	}
	for _, q := range queries {
		wg.Add(1)
		go func(q int) {
			defer wg.Done()
			if _, err := ix.TopK(q, 5); err != nil {
				errs <- err
			}
			if _, err := ix.TopKVector(make(Vector, 12), 5); err != nil {
				errs <- err
			}
		}(q)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestTopKSet(t *testing.T) {
	ix, ds := buildTestIndex(t, Options{})
	seeds := []int{3, 4, 5}
	res, err := ix.TopKSet(seeds, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 10 {
		t.Fatalf("got %d results", len(res))
	}
	// Seeds share a class in this mixture layout only if generated so;
	// at minimum the answers should be dominated by the seeds' labels.
	seedLabels := map[int]bool{}
	for _, s := range seeds {
		seedLabels[ds.Labels[s]] = true
	}
	hits := 0
	for _, r := range res {
		if seedLabels[ds.Labels[r.Node]] {
			hits++
		}
	}
	if hits < len(res)/2 {
		t.Fatalf("only %d/%d answers share a seed label", hits, len(res))
	}
	if _, err := ix.TopKSet(nil, 5); err == nil {
		t.Fatal("empty seed set accepted")
	}
}

func TestSaveLoadIndex(t *testing.T) {
	ix, _ := buildTestIndex(t, Options{})
	path := t.TempDir() + "/index.mogul"
	if err := ix.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != ix.Len() {
		t.Fatalf("loaded Len = %d, want %d", loaded.Len(), ix.Len())
	}
	a, err := ix.TopK(7, 8)
	if err != nil {
		t.Fatal(err)
	}
	b, err := loaded.TopK(7, 8)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("result %d differs after load: %+v vs %+v", i, a[i], b[i])
		}
	}
	// Out-of-sample search still works.
	if _, err := loaded.TopKVector(make(Vector, 12), 3); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadIndex(t.TempDir() + "/missing"); err == nil {
		t.Fatal("missing file loaded")
	}
}

func TestDatasetGenerators(t *testing.T) {
	coil := NewCOILSim(COILConfig{Objects: 4, Poses: 10, Dim: 8, Seed: 1})
	if coil.Len() != 40 {
		t.Fatalf("COIL n = %d", coil.Len())
	}
	if NewPubFigSim(100, 1).Len() != 100 {
		t.Fatal("PubFigSim size")
	}
	if NewNUSWideSim(100, 1).Len() != 100 {
		t.Fatal("NUSWideSim size")
	}
	if NewINRIASim(100, 1).Len() != 100 {
		t.Fatal("INRIASim size")
	}
}
