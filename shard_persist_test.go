package mogul

// Persistence tests for the sharded manifest (MOGULSHD,
// docs/FORMAT.md), matching the plain-format suite in persist_test.go:
// bit-identical round trips, magic-sniffing dispatch through Load, an
// errors-never-panics corruption sweep, and a fuzz target over the
// whole loader.

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"sync"
	"testing"
)

// buildShardedFixture builds a small sharded index with live delta
// state (inserts and tombstones on both base and delta items) so a
// round trip covers every manifest feature.
func buildShardedFixture(t *testing.T, shards int, part Partitioner) *ShardedIndex {
	t.Helper()
	ds := NewMixture(MixtureConfig{N: 240, Classes: 8, Dim: 10, WithinStd: 0.3, Separation: 2.5, Seed: 43})
	six, err := BuildSharded(ds.Points[:200], Options{Seed: 3}, ShardOptions{Shards: shards, Partitioner: part})
	if err != nil {
		t.Fatal(err)
	}
	var delta []int
	for _, p := range ds.Points[200:] {
		g, err := six.Insert(p)
		if err != nil {
			t.Fatal(err)
		}
		delta = append(delta, g)
	}
	if err := six.Delete(13); err != nil {
		t.Fatal(err)
	}
	if err := six.Delete(delta[2]); err != nil {
		t.Fatal(err)
	}
	return six
}

func TestShardedSaveLoadRoundTrip(t *testing.T) {
	for _, part := range []Partitioner{PartitionContiguous, PartitionKMeans} {
		for _, shards := range []int{1, 3} {
			six := buildShardedFixture(t, shards, part)
			var buf bytes.Buffer
			if err := six.Save(&buf); err != nil {
				t.Fatal(err)
			}
			loaded, err := LoadSharded(bytes.NewReader(buf.Bytes()))
			if err != nil {
				t.Fatal(err)
			}
			if loaded.Len() != six.Len() || loaded.NumShards() != six.NumShards() {
				t.Fatalf("identity lost: len=%d shards=%d", loaded.Len(), loaded.NumShards())
			}
			// Save -> Load -> TopK is bit-identical to TopK, across all
			// query paths, including delta items and tombstones.
			for _, q := range []int{0, 57, 199, 201} {
				a, err := six.TopK(q, 12)
				if err != nil {
					t.Fatal(err)
				}
				b, err := loaded.TopK(q, 12)
				if err != nil {
					t.Fatal(err)
				}
				if len(a) != len(b) {
					t.Fatalf("part=%d S=%d TopK(%d) widths %d vs %d", part, shards, q, len(a), len(b))
				}
				for i := range a {
					if a[i] != b[i] {
						t.Fatalf("part=%d S=%d TopK(%d) result %d: %+v vs %+v", part, shards, q, i, a[i], b[i])
					}
				}
			}
			qv := append(Vector(nil), six.shards[0].core.Graph().Points[3]...)
			qv[0] += 0.03
			a, err := six.TopKVector(qv, 12)
			if err != nil {
				t.Fatal(err)
			}
			b, err := loaded.TopKVector(qv, 12)
			if err != nil {
				t.Fatal(err)
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("part=%d S=%d TopKVector result %d differs", part, shards, i)
				}
			}
			// The loaded index keeps mutating correctly: insert routing
			// (k-means centroids round-tripped), deletes, compaction.
			if _, err := loaded.Insert(qv); err != nil {
				t.Fatal(err)
			}
			if err := loaded.Delete(2); err != nil {
				t.Fatal(err)
			}
			if err := loaded.Compact(); err != nil {
				t.Fatal(err)
			}
			if _, err := loaded.TopK(0, 5); err != nil {
				t.Fatal(err)
			}
		}
	}
}

// TestLoadSniffsMagic: the fix under test — Load, LoadFile and the
// deprecated LoadIndex dispatch on the magic header, so callers feed
// any index file to one entry point and get the right kind back.
func TestLoadSniffsMagic(t *testing.T) {
	plain, _ := buildTestIndex(t, Options{})
	six := buildShardedFixture(t, 2, PartitionContiguous)

	var plainBuf, shardBuf bytes.Buffer
	if err := plain.Save(&plainBuf); err != nil {
		t.Fatal(err)
	}
	if err := six.Save(&shardBuf); err != nil {
		t.Fatal(err)
	}

	got, err := Load(bytes.NewReader(plainBuf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := got.(*Index); !ok {
		t.Fatalf("plain file loaded as %T", got)
	}
	got, err = Load(bytes.NewReader(shardBuf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	sharded, ok := got.(*ShardedIndex)
	if !ok {
		t.Fatalf("sharded file loaded as %T", got)
	}
	if sharded.NumShards() != 2 || sharded.Len() != six.Len() {
		t.Fatalf("sharded identity lost through Load: shards=%d len=%d", sharded.NumShards(), sharded.Len())
	}

	// File-path entry points, including the deprecated alias, dispatch
	// identically — and the results match the in-memory index.
	dir := t.TempDir()
	if err := six.SaveFile(dir + "/sharded.mogul"); err != nil {
		t.Fatal(err)
	}
	// The typed entry point agrees with the sniffing ones.
	if _, err := LoadShardedFile(dir + "/sharded.mogul"); err != nil {
		t.Fatal(err)
	}
	for _, load := range []func(string) (Retriever, error){LoadFile, LoadIndex} {
		r, err := load(dir + "/sharded.mogul")
		if err != nil {
			t.Fatal(err)
		}
		if _, ok := r.(*ShardedIndex); !ok {
			t.Fatalf("file path loaded as %T", r)
		}
		a, _ := six.TopK(7, 6)
		b, err := r.TopK(7, 6)
		if err != nil {
			t.Fatal(err)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("result %d differs through file load", i)
			}
		}
	}

	// Garbage magic still errors cleanly through the sniffing path.
	if _, err := Load(bytes.NewReader([]byte("GOBSTREAMnot an index"))); err == nil {
		t.Fatal("garbage magic accepted")
	}
	if _, err := Load(bytes.NewReader([]byte("MOG"))); err == nil {
		t.Fatal("3-byte input accepted")
	}
}

// TestLoadShardedNeverPanics: the corruption sweep of the plain format
// applied to the sharded manifest — every truncation prefix, a stride
// of single-byte corruptions, a wrong manifest version, and structural
// lies in the section framing must error, never panic.
func TestLoadShardedNeverPanics(t *testing.T) {
	six := buildShardedFixture(t, 2, PartitionKMeans)
	var buf bytes.Buffer
	if err := six.Save(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()

	tryLoad := func(label string, b []byte) {
		t.Helper()
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("Load panicked on %s: %v", label, r)
			}
		}()
		if _, err := Load(bytes.NewReader(b)); err == nil {
			t.Fatalf("Load accepted %s", label)
		}
	}
	for n := 0; n < len(data); n += 211 {
		tryLoad(fmt.Sprintf("truncation to %d bytes", n), data[:n])
	}
	for pos := 0; pos < len(data); pos += 307 {
		mutated := append([]byte(nil), data...)
		mutated[pos] ^= 0x5A
		tryLoad(fmt.Sprintf("corruption at byte %d", pos), mutated)
	}

	// Table of structural corruptions with their CRC re-stamped, so the
	// validation layer (not just the checksum) is what rejects them.
	restamp := func(b []byte) []byte {
		crc := crc32IEEE(b[:len(b)-4])
		out := append([]byte(nil), b...)
		binary.LittleEndian.PutUint32(out[len(out)-4:], crc)
		return out
	}
	futureVersion := append([]byte(nil), data...)
	futureVersion[8] = 0xFF
	truncatedEnd := data[:len(data)-16]
	badEndPayload := append([]byte(nil), data...)
	// The end marker's length field sits 12 bytes before the CRC.
	binary.LittleEndian.PutUint64(badEndPayload[len(badEndPayload)-12:], 7)
	for _, tc := range []struct {
		label string
		data  []byte
	}{
		{"future manifest version", restamp(futureVersion)},
		{"missing end marker", truncatedEnd},
		{"end marker with payload", restamp(badEndPayload)},
		{"empty input", nil},
		{"bare sharded magic", []byte(shardedMagic)},
	} {
		tryLoad(tc.label, tc.data)
	}
}

func crc32IEEE(b []byte) uint32 {
	// Matches the container checksum (binio tracks CRC-32 IEEE).
	const poly = 0xedb88320
	crc := ^uint32(0)
	for _, x := range b {
		crc ^= uint32(x)
		for i := 0; i < 8; i++ {
			if crc&1 != 0 {
				crc = crc>>1 ^ poly
			} else {
				crc >>= 1
			}
		}
	}
	return ^crc
}

// fuzzShardedSeed serializes one sharded fixture (with delta state)
// once for the fuzz corpus.
var fuzzShardedSeed = sync.OnceValue(func() []byte {
	ds := NewMixture(MixtureConfig{N: 90, Classes: 4, Dim: 6, WithinStd: 0.3, Separation: 2.5, Seed: 47})
	six, err := BuildSharded(ds.Points[:80], Options{Seed: 3}, ShardOptions{Shards: 2, Partitioner: PartitionKMeans})
	if err != nil {
		panic(err)
	}
	for _, p := range ds.Points[80:] {
		if _, err := six.Insert(p); err != nil {
			panic(err)
		}
	}
	if err := six.Delete(3); err != nil {
		panic(err)
	}
	var buf bytes.Buffer
	if err := six.Save(&buf); err != nil {
		panic(err)
	}
	return buf.Bytes()
})

// FuzzLoadSharded feeds arbitrary bytes to the sniffing loader. The
// contract: Load never panics, and any sharded input it accepts must
// search, mutate, and re-save without panicking. Explore with
//
//	go test -fuzz FuzzLoadSharded -fuzztime 30s .
func FuzzLoadSharded(f *testing.F) {
	seed := fuzzShardedSeed()
	f.Add(seed)
	f.Add(seed[:len(seed)/2])         // truncation
	f.Add(seed[:len(seed)-3])         // clipped checksum
	f.Add([]byte(shardedMagic))       // header only
	f.Add([]byte("MOGULSHD\x01\x00")) // header + partial version
	f.Add([]byte("MOGULIDX12345678")) // plain magic, garbage body
	mutated := append([]byte(nil), seed...)
	mutated[len(mutated)/3] ^= 0x5A // body corruption
	f.Add(mutated)
	versioned := append([]byte(nil), seed...)
	versioned[8] = 0xFF // far-future manifest version
	f.Add(versioned)

	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := Load(bytes.NewReader(data))
		if err != nil {
			return
		}
		six, ok := r.(*ShardedIndex)
		if !ok {
			// A plain index slipping through is FuzzLoad's territory.
			return
		}
		if six.Len() <= 0 {
			t.Fatalf("loaded sharded index has %d items", six.Len())
		}
		if _, err := six.TopK(0, 3); err != nil {
			t.Fatalf("loaded sharded index cannot search: %v", err)
		}
		if _, _, err := six.Neighbors(0); err != nil {
			t.Fatalf("loaded sharded index cannot serve neighbours: %v", err)
		}
		var buf bytes.Buffer
		if err := six.Save(&buf); err != nil {
			t.Fatalf("loaded sharded index cannot re-save: %v", err)
		}
	})
}
