module mogul

go 1.24.0
