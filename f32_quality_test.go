package mogul

// Quality and persistence guarantees of the mixed-precision storage
// mode (Options.Precision = F32) across all three in-process engines.
// The acceptance property: narrowing the bulk arrays to float32 moves
// top-10 membership against the float64 engine by at most half a
// percent, at serving scale. The persistence half pins the f32
// containers: save -> load -> save is byte-stable, the aligned image
// loads through both the streaming (CRC-checked) and the zero-copy
// bytes path with bit-identical answers, and loaded engines keep
// their precision across Compact.

import (
	"bytes"
	"math"
	"testing"
)

// f32Recall returns mean recall@k of engine b against engine a over
// the query items. The metric is tie-aware: when the reference
// engine's scores are tied at the top-k boundary (common at scale —
// exchangeable same-cluster items land within 1e-9 relative of each
// other), the top-k set is not unique, so any returned item whose
// reference score sits within 1e-6 relative of the k-th best counts
// as a member.
func f32Recall(t *testing.T, a, b Retriever, queries []int, k int) float64 {
	t.Helper()
	var total float64
	for _, q := range queries {
		// 3k reference results resolve boundary ties without ranking
		// the whole database.
		want, err := a.TopK(q, 3*k)
		if err != nil {
			t.Fatal(err)
		}
		got, err := b.TopK(q, k)
		if err != nil {
			t.Fatal(err)
		}
		if len(want) > k {
			boundary := want[k-1].Score
			cut := boundary - 1e-6*math.Abs(boundary)
			for len(want) > k && want[len(want)-1].Score < cut {
				want = want[:len(want)-1]
			}
		}
		ref := make(map[int]bool, len(want))
		for _, r := range want {
			ref[r.Node] = true
		}
		hits := 0
		for _, r := range got {
			if ref[r.Node] {
				hits++
			}
		}
		total += float64(hits) / float64(k)
	}
	return total / float64(len(queries))
}

// f32EnginePairs builds each backend over the same points in both
// precisions. The builds are deterministic for a fixed seed and run
// entirely in float64 either way — narrowing happens once at the end —
// so any ranking difference is rounding of the stored arrays, nothing
// else.
func f32EnginePairs(t *testing.T, points []Vector, opts Options) map[string][2]Retriever {
	t.Helper()
	pairs := map[string][2]Retriever{}
	build := func(name string, mk func(o Options) (Retriever, error)) {
		f64opts, f32opts := opts, opts
		f64opts.Precision = F64
		f32opts.Precision = F32
		a, err := mk(f64opts)
		if err != nil {
			t.Fatalf("%s f64 build: %v", name, err)
		}
		b, err := mk(f32opts)
		if err != nil {
			t.Fatalf("%s f32 build: %v", name, err)
		}
		pairs[name] = [2]Retriever{a, b}
	}
	build("core", func(o Options) (Retriever, error) { return Build(points, o) })
	build("emr", func(o Options) (Retriever, error) {
		return BuildEMR(points, o, EMROptions{})
	})
	build("spectral", func(o Options) (Retriever, error) {
		return BuildSpectral(points, o, SpectralOptions{Rank: 32})
	})
	return pairs
}

// TestF32RecallSmall: the cheap always-on version of the acceptance
// property, plus the precision introspection surface.
func TestF32RecallSmall(t *testing.T) {
	ds := NewMixture(MixtureConfig{N: 2000, Classes: 8, Dim: 12, WithinStd: 0.3, Separation: 3, Seed: 17})
	queries := sampleQueries(ds.Len(), 97)
	for name, pair := range f32EnginePairs(t, ds.Points, Options{Seed: 17, GraphK: 6}) {
		type precise interface{ Precision() Precision }
		if got := pair[0].(precise).Precision(); got != F64 {
			t.Fatalf("%s: f64 engine reports precision %d", name, got)
		}
		if got := pair[1].(precise).Precision(); got != F32 {
			t.Fatalf("%s: f32 engine reports precision %d", name, got)
		}
		if r := f32Recall(t, pair[0], pair[1], queries, 10); r < 0.98 {
			t.Errorf("%s: recall@10 of f32 vs f64 = %.4f, want >= 0.98", name, r)
		}
	}
}

// TestF32RecallAtScale: the acceptance property at n = 10^5 — storage
// narrowing costs at most half a percent of top-10 membership on every
// backend.
func TestF32RecallAtScale(t *testing.T) {
	if testing.Short() {
		t.Skip("builds 3 backends x 2 precisions at n = 100000")
	}
	ds := NewMixture(MixtureConfig{N: 100000, Classes: 40, Dim: 8, WithinStd: 0.25, Separation: 4, Seed: 41})
	queries := sampleQueries(ds.Len(), 2503)
	opts := Options{Seed: 41, GraphK: 6, ApproximateGraph: true}
	for name, pair := range f32EnginePairs(t, ds.Points, opts) {
		if r := f32Recall(t, pair[0], pair[1], queries, 10); r < 0.995 {
			t.Errorf("%s: recall@10 of f32 vs f64 = %.4f, want >= 0.995", name, r)
		}
	}
}

// TestF32EMRSerializationRoundTrip proves the v2 MOGULEMR container
// round-trips an f32 engine with bit-identical query behaviour through
// the streaming reader, the aligned streaming reader, and the
// zero-copy bytes reader, and that a re-save reproduces the file byte
// for byte.
func TestF32EMRSerializationRoundTrip(t *testing.T) {
	ds := NewMixture(MixtureConfig{N: 300, Classes: 6, Dim: 8, WithinStd: 0.3, Separation: 3, Seed: 23})
	orig, err := BuildEMR(ds.Points[:280], Options{Seed: 23, Precision: F32}, EMROptions{NumAnchors: 24, NumNearestAnchors: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range ds.Points[280:] {
		if _, err := orig.Insert(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := orig.Delete(7); err != nil {
		t.Fatal(err)
	}
	if err := orig.Delete(281); err != nil {
		t.Fatal(err)
	}
	checkF32RoundTrip(t, "emr", orig, func(w *bytes.Buffer) error { return orig.Save(w) },
		func(w *bytes.Buffer) error { return orig.SaveAligned(w, 4096) },
		func(b []byte) (Retriever, error) { return LoadEMR(bytes.NewReader(b)) },
		func(b []byte) (Retriever, error) { return LoadEMRBytes(b) })
}

// TestF32SpectralSerializationRoundTrip is the same property for the
// v2 MOGULSPC container.
func TestF32SpectralSerializationRoundTrip(t *testing.T) {
	ds := NewMixture(MixtureConfig{N: 160, Classes: 6, Dim: 8, WithinStd: 0.35, Separation: 2.5, Seed: 29})
	orig, err := BuildSpectral(ds.Points[:140], Options{Seed: 29, GraphK: 6, Precision: F32}, SpectralOptions{Rank: 24, AttachK: 5})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range ds.Points[140:] {
		if _, err := orig.Insert(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := orig.Delete(11); err != nil {
		t.Fatal(err)
	}
	if err := orig.Delete(141); err != nil {
		t.Fatal(err)
	}
	checkF32RoundTrip(t, "spectral", orig, func(w *bytes.Buffer) error { return orig.Save(w) },
		func(w *bytes.Buffer) error { return orig.SaveAligned(w, 4096) },
		func(b []byte) (Retriever, error) { return LoadSpectral(bytes.NewReader(b)) },
		func(b []byte) (Retriever, error) { return LoadSpectralBytes(b) })
}

// checkF32RoundTrip runs the shared container property: the plain save
// loads via the stream reader, the aligned save loads via BOTH the
// stream reader (its CRC covers the padding) and the bytes reader;
// every load answers bit-identically to the original, keeps Precision
// F32 (also across a Compact), and re-saving the loaded engine
// reproduces the plain file byte for byte.
func checkF32RoundTrip(t *testing.T, name string, orig Retriever,
	save func(w *bytes.Buffer) error, saveAligned func(w *bytes.Buffer) error,
	loadStream, loadBytes func(b []byte) (Retriever, error),
) {
	t.Helper()
	var plain, aligned bytes.Buffer
	if err := save(&plain); err != nil {
		t.Fatal(err)
	}
	if err := saveAligned(&aligned); err != nil {
		t.Fatal(err)
	}

	type precise interface{ Precision() Precision }
	queries := []int{0, 5, 100}
	check := func(label string, ld Retriever) {
		t.Helper()
		if ld.(precise).Precision() != F32 {
			t.Fatalf("%s/%s: precision lost across save/load", name, label)
		}
		for _, q := range queries {
			a, err := orig.TopK(q, 10)
			if err != nil {
				t.Fatal(err)
			}
			b, err := ld.TopK(q, 10)
			if err != nil {
				t.Fatalf("%s/%s: TopK(%d): %v", name, label, q, err)
			}
			if len(a) != len(b) {
				t.Fatalf("%s/%s: result count differs", name, label)
			}
			for i := range a {
				if a[i].Node != b[i].Node || a[i].Score != b[i].Score {
					t.Fatalf("%s/%s: query %d result %d differs: %+v vs %+v", name, label, q, i, a[i], b[i])
				}
			}
		}
	}

	streamed, err := loadStream(plain.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	check("stream", streamed)
	alignedStream, err := loadStream(aligned.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	check("aligned-stream", alignedStream)
	mapped, err := loadBytes(aligned.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	check("bytes", mapped)

	// Byte stability of the plain container across a load.
	var again bytes.Buffer
	if err := streamed.Save(&again); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(plain.Bytes(), again.Bytes()) {
		t.Fatalf("%s: f32 save -> load -> save is not byte-stable", name)
	}

	// A loaded engine keeps its precision across the recipe rebuild.
	if err := streamed.Compact(); err != nil {
		t.Fatal(err)
	}
	if streamed.(precise).Precision() != F32 {
		t.Fatalf("%s: Compact on a loaded engine dropped the f32 storage mode", name)
	}
}
