package mogul

// Spectral engine persistence: the MOGULSPC container (docs/FORMAT.md).
//
// A saved spectral engine carries everything BuildSpectral computed —
// the retained eigenvalues, the flat n x rank embedding, the base
// graph the exact query-time hops run on, the stored points, the
// delta attachments, the tombstone set, and the recorded build recipe
// — so a loaded engine answers bit-identically to the one that saved
// it without re-running the graph build or the Lanczos decomposition
// (the spectral-tail coefficients are re-derived from the eigenvalues
// with the same expression the build used, so they match to the
// bit). Same
// container discipline as MOGULIDX/MOGULSHD/MOGULEMR: an 8-byte
// magic, a format version, tag/length section framing (unknown tags
// skipped for additive evolution), an end marker, and a trailing
// CRC-32 over everything before it. mogul.Load sniffs the magic and
// dispatches here; malformed input of any kind yields an error, never
// a panic.

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"math"
	"os"
	"time"

	"mogul/internal/binio"
	"mogul/internal/sparse"
)

// spectralMagic identifies a spectral (truncated-eigenbasis) engine
// file.
const spectralMagic = "MOGULSPC"

// spectralFormatVersion is the container version plain float64 saves
// write (kept at 1 so existing files reproduce byte for byte);
// spectralFormatVersionPrec the version carrying precision and
// alignment metadata (written for f32 engines and aligned saves);
// spectralMinReadVersion the oldest this build reads.
const (
	spectralFormatVersion     = 1
	spectralFormatVersionPrec = 2
	spectralMinReadVersion    = 1
)

// Spectral container section tags (the end marker is the shared
// tagEend).
var (
	tagSpMet = [4]byte{'S', 'M', 'E', 'T'} // scalars: alpha, recipe, shapes, timings
	tagSpVal = [4]byte{'S', 'V', 'A', 'L'} // retained eigenvalues, descending
	tagSpGph = [4]byte{'S', 'G', 'P', 'H'} // base graph CSR (the exact-hop operator)
	tagSpPts = [4]byte{'S', 'P', 'T', 'S'} // stored feature vectors
	tagSpEmb = [4]byte{'S', 'E', 'M', 'B'} // flat embedding rows + tombstones
	tagSpAtt = [4]byte{'S', 'A', 'T', 'T'} // delta attachments (anchors + weights)
)

// Save writes the engine in the versioned MOGULSPC format. Mutators
// block for the duration; searches proceed. A float64 engine writes
// version 1, byte-identical to previous releases; a mixed-precision
// engine writes version 2 with its arrays narrowed.
func (e *SpectralIndex) Save(w io.Writer) error {
	// mutMu freezes the delta state so the two-pass section framing
	// sees identical bytes; the read lock covers the reads themselves.
	e.mutMu.Lock()
	defer e.mutMu.Unlock()
	e.mu.RLock()
	defer e.mu.RUnlock()

	if e.st.f32() {
		return e.savePrecLocked(w, 0)
	}

	buffered := bufio.NewWriterSize(w, 1<<20)
	bw := binio.NewWriter(buffered)
	bw.Raw([]byte(spectralMagic))
	bw.Uint32(spectralFormatVersion)

	sections := []struct {
		tag     [4]byte
		payload func(w io.Writer) error
	}{
		{tagSpMet, e.writeSpectralMeta},
		{tagSpVal, e.writeSpectralValues},
		{tagSpGph, e.writeSpectralGraph},
		{tagSpPts, e.writeSpectralPoints},
		{tagSpEmb, e.writeSpectralEmbedding},
		{tagSpAtt, e.writeSpectralAttachments},
	}
	for _, s := range sections {
		if err := writeShardSection(bw, s.tag, s.payload); err != nil {
			return fmt.Errorf("mogul: writing %q section: %w", s.tag[:], err)
		}
	}
	bw.Raw(tagEend[:])
	bw.Uint64(0)
	bw.Uint32(bw.Sum32())
	if err := bw.Err(); err != nil {
		return err
	}
	return buffered.Flush()
}

func (e *SpectralIndex) writeSpectralMeta(w io.Writer) error {
	st := e.st
	bw := binio.NewWriter(w)
	bw.Float64(e.alpha)
	bw.Int(int(e.seed))
	bw.Float64(e.autoCompact)
	// The recorded build recipe (pre-clamping), so Compact on a loaded
	// engine rebuilds with the options the original build got: the
	// graph half of Options, then the SpectralOptions.
	bw.Int(e.ropts.GraphK)
	bw.Int(boolInt(e.ropts.ApproximateGraph))
	bw.Int(boolInt(e.ropts.MutualGraph))
	bw.Float64(e.ropts.Sigma)
	bw.Int(e.sopts.Rank)
	bw.Int(e.sopts.Steps)
	bw.Int(e.sopts.Hops)
	bw.Int(e.sopts.HopBudget)
	bw.Int(e.sopts.AttachK)
	// The realized shapes and the derived attachment bandwidth.
	bw.Int(st.dim)
	bw.Int(st.rank)
	bw.Float64(st.sigma)
	bw.Int(st.baseN)
	bw.Int(st.numPoints())
	bw.Int(int(st.stats.ClusterTime))
	bw.Int(int(st.stats.FactorTime))
	return bw.Err()
}

func boolInt(b bool) int {
	if b {
		return 1
	}
	return 0
}

func (e *SpectralIndex) writeSpectralValues(w io.Writer) error {
	bw := binio.NewWriter(w)
	bw.Floats(e.st.vals)
	return bw.Err()
}

func (e *SpectralIndex) writeSpectralGraph(w io.Writer) error {
	S := e.st.graph
	bw := binio.NewWriter(w)
	bw.Ints(S.RowPtr)
	bw.Ints(S.Col)
	bw.Floats(S.Val)
	return bw.Err()
}

func (e *SpectralIndex) writeSpectralAttachments(w io.Writer) error {
	st := e.st
	bw := binio.NewWriter(w)
	bw.Ints(st.attPtr)
	bw.Ints(st.attID)
	bw.Floats(st.attW)
	return bw.Err()
}

func (e *SpectralIndex) writeSpectralPoints(w io.Writer) error {
	st := e.st
	bw := binio.NewWriter(w)
	for _, pt := range st.points {
		bw.Floats(pt)
	}
	return bw.Err()
}

func (e *SpectralIndex) writeSpectralEmbedding(w io.Writer) error {
	st := e.st
	bw := binio.NewWriter(w)
	bw.Floats(st.emb)
	dead := make([]int, 0, st.deadCount)
	for id, d := range st.dead {
		if d {
			dead = append(dead, id)
		}
	}
	bw.Ints(dead)
	return bw.Err()
}

// SaveFile writes the engine to a file via Save with the same atomic
// temp-file-and-rename protocol as Index.SaveFile.
func (e *SpectralIndex) SaveFile(path string) error {
	return saveFileAtomic(path, e.Save)
}

// SaveFileAligned is SaveAligned to a file with the same atomic
// temp-file-and-rename protocol as SaveFile.
func (e *SpectralIndex) SaveFileAligned(path string, align int) error {
	return saveFileAtomic(path, func(w io.Writer) error { return e.SaveAligned(w, align) })
}

// LoadSpectral reads an engine written by SpectralIndex.Save.
// Malformed input of any kind — wrong magic, unknown version,
// truncation, checksum mismatch, shape mismatches between sections —
// yields an error, never a panic. Callers normally go through Load,
// which sniffs the magic and dispatches here.
func LoadSpectral(r io.Reader) (*SpectralIndex, error) {
	br := binio.NewReader(r)
	var magic [len(spectralMagic)]byte
	br.Raw(magic[:])
	if err := br.Err(); err != nil {
		return nil, fmt.Errorf("mogul: reading spectral engine header: %w", err)
	}
	if string(magic[:]) != spectralMagic {
		return nil, fmt.Errorf("mogul: not a spectral engine file (magic %q)", magic[:])
	}
	version := br.Uint32()
	if err := br.Err(); err != nil {
		return nil, fmt.Errorf("mogul: reading spectral engine header: %w", err)
	}
	if version < spectralMinReadVersion || version > spectralFormatVersionPrec {
		return nil, fmt.Errorf("mogul: spectral engine format version %d, this build reads versions %d-%d", version, spectralMinReadVersion, spectralFormatVersionPrec)
	}

	payloads := map[[4]byte][]byte{}
	bases := map[[4]byte]int64{}
	for {
		var tag [4]byte
		br.Raw(tag[:])
		n := br.Uint64()
		if err := br.Err(); err != nil {
			return nil, fmt.Errorf("mogul: reading section header: %w", err)
		}
		if tag == tagEend {
			if n != 0 {
				return nil, fmt.Errorf("mogul: end marker carries %d payload bytes", n)
			}
			break
		}
		if n > binio.MaxCount {
			return nil, fmt.Errorf("mogul: section %q claims %d bytes", tag[:], n)
		}
		switch tag {
		case tagSpMet, tagSpVal, tagSpGph, tagSpPts, tagSpEmb, tagSpAtt:
			if payloads[tag] != nil {
				return nil, fmt.Errorf("mogul: duplicate %q section", tag[:])
			}
			bases[tag] = br.Count()
			payload, err := readShardPayload(br, n)
			if err != nil {
				return nil, fmt.Errorf("mogul: reading %q section: %w", tag[:], err)
			}
			payloads[tag] = payload
		default:
			// A section from a newer writer: skip (the bytes still
			// count toward the checksum), keeping additive evolution
			// open.
			br.Skip(int64(n))
			if err := br.Err(); err != nil {
				return nil, fmt.Errorf("mogul: skipping %q section: %w", tag[:], err)
			}
		}
	}
	want := br.Sum32()
	got := br.Uint32()
	if err := br.Err(); err != nil {
		return nil, fmt.Errorf("mogul: reading checksum: %w", err)
	}
	if got != want {
		return nil, fmt.Errorf("mogul: checksum mismatch (file %08x, computed %08x): spectral engine file is corrupt", got, want)
	}
	for _, tag := range [][4]byte{tagSpMet, tagSpVal, tagSpGph, tagSpPts, tagSpEmb, tagSpAtt} {
		if payloads[tag] == nil {
			return nil, fmt.Errorf("mogul: spectral engine file is missing its %q section", tag[:])
		}
	}
	if version >= spectralFormatVersionPrec {
		return assembleSpectralPrec(payloads, bases)
	}
	return assembleSpectral(payloads)
}

// assembleSpectral decodes the section payloads and cross-validates
// every shape and value invariant the engine relies on.
func assembleSpectral(payloads map[[4]byte][]byte) (*SpectralIndex, error) {
	mr := binio.NewReader(bytes.NewReader(payloads[tagSpMet]))
	alpha := mr.Float64()
	seed := mr.Int()
	autoCompact := mr.Float64()
	graphK := mr.Int()
	approx := mr.Int()
	mutual := mr.Int()
	sigmaOpt := mr.Float64()
	recipeRank := mr.Int()
	recipeSteps := mr.Int()
	hops := mr.Int()
	hopBudget := mr.Int()
	attachK := mr.Int()
	dim := mr.Int()
	rank := mr.Int()
	sigma := mr.Float64()
	baseN := mr.Int()
	n := mr.Int()
	clusterTime := mr.Int()
	factorTime := mr.Int()
	if err := mr.Err(); err != nil {
		return nil, fmt.Errorf("mogul: decoding spectral metadata: %w", err)
	}
	switch {
	case math.IsNaN(alpha) || alpha <= 0 || alpha >= 1:
		return nil, fmt.Errorf("mogul: corrupt spectral metadata: alpha %g", alpha)
	case math.IsNaN(autoCompact) || math.IsInf(autoCompact, 0) || autoCompact < 0:
		return nil, fmt.Errorf("mogul: corrupt spectral metadata: auto-compact fraction %g", autoCompact)
	case graphK < 0 || approx < 0 || approx > 1 || mutual < 0 || mutual > 1:
		return nil, fmt.Errorf("mogul: corrupt spectral metadata: graph recipe %d/%d/%d", graphK, approx, mutual)
	case math.IsNaN(sigmaOpt) || math.IsInf(sigmaOpt, 0) || sigmaOpt < 0:
		return nil, fmt.Errorf("mogul: corrupt spectral metadata: recipe bandwidth %g", sigmaOpt)
	case recipeRank < 1 || recipeSteps < 0 || hops < 1 || hopBudget < 1 || attachK < 1:
		return nil, fmt.Errorf("mogul: corrupt spectral metadata: spectral recipe %d/%d/%d/%d/%d", recipeRank, recipeSteps, hops, hopBudget, attachK)
	case dim < 1 || dim > binio.MaxCount:
		return nil, fmt.Errorf("mogul: corrupt spectral metadata: dimension %d", dim)
	case n < 1 || n > binio.MaxCount:
		return nil, fmt.Errorf("mogul: corrupt spectral metadata: %d points", n)
	case baseN < 2 || baseN > n:
		return nil, fmt.Errorf("mogul: corrupt spectral metadata: base size %d of %d points", baseN, n)
	case rank < 1 || rank > baseN:
		return nil, fmt.Errorf("mogul: corrupt spectral metadata: rank %d for base size %d", rank, baseN)
	case math.IsNaN(sigma) || math.IsInf(sigma, 0) || sigma < 0:
		return nil, fmt.Errorf("mogul: corrupt spectral metadata: attachment bandwidth %g", sigma)
	case clusterTime < 0 || factorTime < 0:
		return nil, fmt.Errorf("mogul: corrupt spectral metadata: negative build timings")
	}

	vr := binio.NewReader(bytes.NewReader(payloads[tagSpVal]))
	vals := vr.Floats(binio.MaxCount)
	if err := vr.Err(); err != nil {
		return nil, fmt.Errorf("mogul: decoding eigenvalues: %w", err)
	}
	if len(vals) != rank {
		return nil, fmt.Errorf("mogul: %d eigenvalues for rank %d", len(vals), rank)
	}
	for t, v := range vals {
		if math.IsNaN(v) || v < -1 || v > 1 {
			return nil, fmt.Errorf("mogul: eigenvalue %d outside [-1,1]: %g", t, v)
		}
		if t > 0 && v > vals[t-1] {
			return nil, fmt.Errorf("mogul: eigenvalues not descending at %d (%g after %g)", t, v, vals[t-1])
		}
	}

	pr := binio.NewReader(bytes.NewReader(payloads[tagSpPts]))
	points := make([]Vector, n)
	for i := range points {
		v := pr.Floats(binio.MaxCount)
		if err := pr.Err(); err != nil {
			return nil, fmt.Errorf("mogul: decoding point %d: %w", i, err)
		}
		if len(v) != dim {
			return nil, fmt.Errorf("mogul: point %d has dim %d, want %d", i, len(v), dim)
		}
		for _, x := range v {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return nil, fmt.Errorf("mogul: point %d has non-finite component", i)
			}
		}
		points[i] = v
	}

	er := binio.NewReader(bytes.NewReader(payloads[tagSpEmb]))
	emb := er.Floats(binio.MaxCount)
	deadIDs := er.Ints(binio.MaxCount)
	if err := er.Err(); err != nil {
		return nil, fmt.Errorf("mogul: decoding embedding: %w", err)
	}
	if len(emb) != n*rank {
		return nil, fmt.Errorf("mogul: embedding carries %d elements, want %d", len(emb), n*rank)
	}
	for i, v := range emb {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, fmt.Errorf("mogul: embedding element %d is non-finite", i)
		}
	}
	dead := make([]bool, n)
	deadBase := 0
	prev := -1
	for _, id := range deadIDs {
		if id <= prev || id >= n {
			return nil, fmt.Errorf("mogul: corrupt tombstone list (id %d after %d, %d points)", id, prev, n)
		}
		dead[id] = true
		if id < baseN {
			deadBase++
		}
		prev = id
	}
	if len(deadIDs) >= n {
		return nil, fmt.Errorf("mogul: every item tombstoned")
	}

	gr := binio.NewReader(bytes.NewReader(payloads[tagSpGph]))
	rowPtr := gr.Ints(binio.MaxCount)
	col := gr.Ints(binio.MaxCount)
	val := gr.Floats(binio.MaxCount)
	if err := gr.Err(); err != nil {
		return nil, fmt.Errorf("mogul: decoding base graph: %w", err)
	}
	if len(rowPtr) != baseN+1 || rowPtr[0] != 0 {
		return nil, fmt.Errorf("mogul: base graph row index carries %d entries for base size %d", len(rowPtr), baseN)
	}
	for i := 1; i < len(rowPtr); i++ {
		if rowPtr[i] < rowPtr[i-1] {
			return nil, fmt.Errorf("mogul: base graph row index decreases at row %d", i)
		}
	}
	if rowPtr[baseN] != len(col) || len(col) != len(val) {
		return nil, fmt.Errorf("mogul: base graph shape mismatch (%d row-index end, %d columns, %d values)", rowPtr[baseN], len(col), len(val))
	}
	for x, c := range col {
		if c < 0 || c >= baseN {
			return nil, fmt.Errorf("mogul: base graph edge %d targets %d outside [0,%d)", x, c, baseN)
		}
		if v := val[x]; math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, fmt.Errorf("mogul: base graph edge %d has non-finite weight", x)
		}
	}

	ar := binio.NewReader(bytes.NewReader(payloads[tagSpAtt]))
	attPtr := ar.Ints(binio.MaxCount)
	attID := ar.Ints(binio.MaxCount)
	attW := ar.Floats(binio.MaxCount)
	if err := ar.Err(); err != nil {
		return nil, fmt.Errorf("mogul: decoding delta attachments: %w", err)
	}
	if len(attPtr) != (n-baseN)+1 || attPtr[0] != 0 {
		return nil, fmt.Errorf("mogul: attachment index carries %d entries for %d delta items", len(attPtr), n-baseN)
	}
	for i := 1; i < len(attPtr); i++ {
		if attPtr[i] < attPtr[i-1] {
			return nil, fmt.Errorf("mogul: attachment index decreases at delta item %d", i-1)
		}
	}
	if attPtr[len(attPtr)-1] != len(attID) || len(attID) != len(attW) {
		return nil, fmt.Errorf("mogul: attachment shape mismatch (%d index end, %d anchors, %d weights)", attPtr[len(attPtr)-1], len(attID), len(attW))
	}
	for t, id := range attID {
		if id < 0 || id >= baseN {
			return nil, fmt.Errorf("mogul: attachment anchor %d targets %d outside [0,%d)", t, id, baseN)
		}
		if w := attW[t]; math.IsNaN(w) || math.IsInf(w, 0) || w < 0 {
			return nil, fmt.Errorf("mogul: attachment anchor %d has invalid weight %g", t, attW[t])
		}
	}

	e := &SpectralIndex{
		alpha:       alpha,
		seed:        int64(seed),
		autoCompact: autoCompact,
		ropts: Options{
			GraphK:              graphK,
			ApproximateGraph:    approx == 1,
			MutualGraph:         mutual == 1,
			Sigma:               sigmaOpt,
			Alpha:               alpha,
			Seed:                int64(seed),
			AutoCompactFraction: autoCompact,
		},
		sopts: SpectralOptions{Rank: recipeRank, Steps: recipeSteps, Hops: hops, HopBudget: hopBudget, AttachK: attachK},
		st: &spectralState{
			dim:       dim,
			rank:      rank,
			graph:     &sparse.CSR{RowPtr: rowPtr, Col: col, Val: val, Rows: baseN, Cols: baseN},
			sigma:     sigma,
			vals:      vals,
			points:    points,
			dead:      dead,
			emb:       emb,
			attPtr:    attPtr,
			attID:     attID,
			attW:      attW,
			deadCount: len(deadIDs),
			deadBase:  deadBase,
			baseN:     baseN,
			stats: Stats{
				NumNodes:    baseN,
				NumClusters: rank,
				FactorNNZ:   baseN * rank,
				ClusterTime: time.Duration(clusterTime),
				FactorTime:  time.Duration(factorTime),
			},
		},
	}
	e.version.Store(1)
	return e, nil
}

// LoadSpectralFile reads a spectral engine file written by
// SpectralIndex.SaveFile.
func LoadSpectralFile(path string) (*SpectralIndex, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return LoadSpectral(f)
}

// --- Version 2: precision + alignment ---
//
// Version 2 generalizes version 1 the same two ways MOGULEMR's
// version 2 does (docs/FORMAT.md): the SMET section additionally
// records a precision flag and an alignment, the stored points become
// ONE flat row-major array, and — when the engine is mixed-precision —
// the point matrix, the embedding rows, and the base graph's edge
// weights are written as float32. When a positive alignment is
// recorded, every large array in the bulk sections starts on that
// boundary, so LoadSpectralBytes over an mmap'd image hands out
// zero-copy views. Eigenvalues and attachment weights stay float64.

// SaveAligned writes the engine in the version-2 aligned layout: large
// arrays start on align-byte boundaries (use the page size for mmap
// sharing). Works in either precision; align must be a positive power
// of two.
func (e *SpectralIndex) SaveAligned(w io.Writer, align int) error {
	if align <= 0 || align&(align-1) != 0 {
		return fmt.Errorf("mogul: alignment %d is not a positive power of two", align)
	}
	e.mutMu.Lock()
	defer e.mutMu.Unlock()
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.savePrecLocked(w, align)
}

// savePrecLocked writes the version-2 container; align == 0 selects
// the packed (unaligned) variant used for plain f32 saves. Callers
// hold mutMu and e.mu.
func (e *SpectralIndex) savePrecLocked(w io.Writer, align int) error {
	st := e.st
	buffered := bufio.NewWriterSize(w, 1<<20)
	bw := binio.NewWriter(buffered)
	bw.Raw([]byte(spectralMagic))
	bw.Uint32(spectralFormatVersionPrec)

	prec := 0
	if st.f32() {
		prec = 1
	}
	writeMeta := func(w io.Writer) error {
		if err := e.writeSpectralMeta(w); err != nil {
			return err
		}
		mw := binio.NewWriter(w)
		mw.Int(prec)
		mw.Int(align)
		return mw.Err()
	}
	if err := writeShardSection(bw, tagSpMet, writeMeta); err != nil {
		return fmt.Errorf("mogul: writing %q section: %w", tagSpMet[:], err)
	}

	sections := []struct {
		tag     [4]byte
		payload func(sw *binio.Writer) error
	}{
		{tagSpVal, func(sw *binio.Writer) error {
			sw.Floats(st.vals)
			return sw.Err()
		}},
		{tagSpGph, func(sw *binio.Writer) error {
			S := st.graph
			sw.Ints(S.RowPtr)
			sw.Ints(S.Col)
			if st.f32() {
				sw.Float32s(S.Val32)
			} else {
				sw.Floats(S.Val)
			}
			return sw.Err()
		}},
		{tagSpPts, func(sw *binio.Writer) error {
			if st.f32() {
				sw.Float32s(st.pts32)
			} else {
				flat := make([]float64, 0, len(st.points)*st.dim)
				for _, pt := range st.points {
					flat = append(flat, pt...)
				}
				sw.Floats(flat)
			}
			return sw.Err()
		}},
		{tagSpEmb, func(sw *binio.Writer) error {
			if st.f32() {
				sw.Float32s(st.emb32)
			} else {
				sw.Floats(st.emb)
			}
			dead := make([]int, 0, st.deadCount)
			for id, d := range st.dead {
				if d {
					dead = append(dead, id)
				}
			}
			sw.Ints(dead)
			return sw.Err()
		}},
		{tagSpAtt, func(sw *binio.Writer) error {
			sw.Ints(st.attPtr)
			sw.Ints(st.attID)
			sw.Floats(st.attW)
			return sw.Err()
		}},
	}
	for _, s := range sections {
		if err := writeEMRSectionPrec(bw, s.tag, align, s.payload); err != nil {
			return fmt.Errorf("mogul: writing %q section: %w", s.tag[:], err)
		}
	}
	bw.Raw(tagEend[:])
	bw.Uint64(0)
	bw.Uint32(bw.Sum32())
	if err := bw.Err(); err != nil {
		return err
	}
	return buffered.Flush()
}

// LoadSpectralBytes parses a complete spectral engine image held in
// memory — typically an mmap'd file (LoadFileMapped) — using zero-copy
// views for the large arrays wherever the layout allows. The returned
// engine aliases data, which must stay valid (mapped) for the engine's
// lifetime. The trailing CRC is NOT verified (hashing the image would
// fault in every page); all structural and index-range validation
// still runs, so corrupt input errors rather than panicking later.
func LoadSpectralBytes(data []byte) (*SpectralIndex, error) {
	br := binio.NewBytesReader(data)
	var magic [len(spectralMagic)]byte
	br.Raw(magic[:])
	if err := br.Err(); err != nil {
		return nil, fmt.Errorf("mogul: reading spectral engine header: %w", err)
	}
	if string(magic[:]) != spectralMagic {
		return nil, fmt.Errorf("mogul: not a spectral engine file (magic %q)", magic[:])
	}
	version := br.Uint32()
	if err := br.Err(); err != nil {
		return nil, fmt.Errorf("mogul: reading spectral engine header: %w", err)
	}
	if version < spectralMinReadVersion || version > spectralFormatVersionPrec {
		return nil, fmt.Errorf("mogul: spectral engine format version %d, this build reads versions %d-%d", version, spectralMinReadVersion, spectralFormatVersionPrec)
	}

	payloads := map[[4]byte][]byte{}
	bases := map[[4]byte]int64{}
	for {
		var tag [4]byte
		br.Raw(tag[:])
		n := br.Uint64()
		if err := br.Err(); err != nil {
			return nil, fmt.Errorf("mogul: reading section header: %w", err)
		}
		if tag == tagEend {
			if n != 0 {
				return nil, fmt.Errorf("mogul: end marker carries %d payload bytes", n)
			}
			break
		}
		if n > binio.MaxCount {
			return nil, fmt.Errorf("mogul: section %q claims %d bytes", tag[:], n)
		}
		base := br.Count()
		payload := br.View(int(n))
		if err := br.Err(); err != nil {
			return nil, fmt.Errorf("mogul: reading %q section: %w", tag[:], err)
		}
		switch tag {
		case tagSpMet, tagSpVal, tagSpGph, tagSpPts, tagSpEmb, tagSpAtt:
			if payloads[tag] != nil {
				return nil, fmt.Errorf("mogul: duplicate %q section", tag[:])
			}
			payloads[tag] = payload
			bases[tag] = base
		default:
			// Unknown section from a newer writer: View already advanced
			// past it.
		}
	}
	// The trailing checksum must at least be present, so a file cut
	// right after the end marker still errors.
	br.Uint32()
	if err := br.Err(); err != nil {
		return nil, fmt.Errorf("mogul: reading checksum: %w", err)
	}
	for _, tag := range [][4]byte{tagSpMet, tagSpVal, tagSpGph, tagSpPts, tagSpEmb, tagSpAtt} {
		if payloads[tag] == nil {
			return nil, fmt.Errorf("mogul: spectral engine file is missing its %q section", tag[:])
		}
	}
	if version >= spectralFormatVersionPrec {
		return assembleSpectralPrec(payloads, bases)
	}
	return assembleSpectral(payloads)
}

// assembleSpectralPrec decodes a version-2 section set. The big arrays
// come out as views into the payload bytes (zero-copy when the image is
// aligned and the host is little-endian, copied otherwise); unlike the
// version-1 path, the per-element finiteness scans over the point
// matrix, the embedding, and the graph's edge weights are skipped — a
// NaN there degrades a score but can never panic, and scanning would
// fault in every page of a mapped image.
func assembleSpectralPrec(payloads map[[4]byte][]byte, bases map[[4]byte]int64) (*SpectralIndex, error) {
	mr := binio.NewBytesReader(payloads[tagSpMet])
	alpha := mr.Float64()
	seed := mr.Int()
	autoCompact := mr.Float64()
	graphK := mr.Int()
	approx := mr.Int()
	mutual := mr.Int()
	sigmaOpt := mr.Float64()
	recipeRank := mr.Int()
	recipeSteps := mr.Int()
	hops := mr.Int()
	hopBudget := mr.Int()
	attachK := mr.Int()
	dim := mr.Int()
	rank := mr.Int()
	sigma := mr.Float64()
	baseN := mr.Int()
	n := mr.Int()
	clusterTime := mr.Int()
	factorTime := mr.Int()
	prec := mr.Int()
	align := mr.Int()
	if err := mr.Err(); err != nil {
		return nil, fmt.Errorf("mogul: decoding spectral metadata: %w", err)
	}
	switch {
	case math.IsNaN(alpha) || alpha <= 0 || alpha >= 1:
		return nil, fmt.Errorf("mogul: corrupt spectral metadata: alpha %g", alpha)
	case math.IsNaN(autoCompact) || math.IsInf(autoCompact, 0) || autoCompact < 0:
		return nil, fmt.Errorf("mogul: corrupt spectral metadata: auto-compact fraction %g", autoCompact)
	case graphK < 0 || approx < 0 || approx > 1 || mutual < 0 || mutual > 1:
		return nil, fmt.Errorf("mogul: corrupt spectral metadata: graph recipe %d/%d/%d", graphK, approx, mutual)
	case math.IsNaN(sigmaOpt) || math.IsInf(sigmaOpt, 0) || sigmaOpt < 0:
		return nil, fmt.Errorf("mogul: corrupt spectral metadata: recipe bandwidth %g", sigmaOpt)
	case recipeRank < 1 || recipeSteps < 0 || hops < 1 || hopBudget < 1 || attachK < 1:
		return nil, fmt.Errorf("mogul: corrupt spectral metadata: spectral recipe %d/%d/%d/%d/%d", recipeRank, recipeSteps, hops, hopBudget, attachK)
	case dim < 1 || dim > binio.MaxCount:
		return nil, fmt.Errorf("mogul: corrupt spectral metadata: dimension %d", dim)
	case n < 1 || n > binio.MaxCount:
		return nil, fmt.Errorf("mogul: corrupt spectral metadata: %d points", n)
	case n > binio.MaxCount/dim:
		return nil, fmt.Errorf("mogul: corrupt spectral metadata: %d points of dim %d", n, dim)
	case baseN < 2 || baseN > n:
		return nil, fmt.Errorf("mogul: corrupt spectral metadata: base size %d of %d points", baseN, n)
	case rank < 1 || rank > baseN:
		return nil, fmt.Errorf("mogul: corrupt spectral metadata: rank %d for base size %d", rank, baseN)
	case n > binio.MaxCount/rank:
		return nil, fmt.Errorf("mogul: corrupt spectral metadata: %d points of rank %d", n, rank)
	case math.IsNaN(sigma) || math.IsInf(sigma, 0) || sigma < 0:
		return nil, fmt.Errorf("mogul: corrupt spectral metadata: attachment bandwidth %g", sigma)
	case clusterTime < 0 || factorTime < 0:
		return nil, fmt.Errorf("mogul: corrupt spectral metadata: negative build timings")
	case prec != 0 && prec != 1:
		return nil, fmt.Errorf("mogul: corrupt spectral metadata: precision flag %d", prec)
	case align < 0 || align > binio.MaxCount || (align != 0 && align&(align-1) != 0):
		return nil, fmt.Errorf("mogul: corrupt spectral metadata: alignment %d", align)
	}
	f32 := prec == 1

	vr := binio.NewBytesReader(payloads[tagSpVal])
	vr.EnableAlign(align, bases[tagSpVal])
	vals := vr.Floats(binio.MaxCount)
	if err := vr.Err(); err != nil {
		return nil, fmt.Errorf("mogul: decoding eigenvalues: %w", err)
	}
	if len(vals) != rank {
		return nil, fmt.Errorf("mogul: %d eigenvalues for rank %d", len(vals), rank)
	}
	for t, v := range vals {
		if math.IsNaN(v) || v < -1 || v > 1 {
			return nil, fmt.Errorf("mogul: eigenvalue %d outside [-1,1]: %g", t, v)
		}
		if t > 0 && v > vals[t-1] {
			return nil, fmt.Errorf("mogul: eigenvalues not descending at %d (%g after %g)", t, v, vals[t-1])
		}
	}

	gr := binio.NewBytesReader(payloads[tagSpGph])
	gr.EnableAlign(align, bases[tagSpGph])
	rowPtr := gr.IntsView(binio.MaxCount)
	col := gr.IntsView(binio.MaxCount)
	var val []float64
	var val32 []float32
	var nnz int
	if f32 {
		val32 = gr.Float32sView(binio.MaxCount)
		nnz = len(val32)
	} else {
		val = gr.FloatsView(binio.MaxCount)
		nnz = len(val)
	}
	if err := gr.Err(); err != nil {
		return nil, fmt.Errorf("mogul: decoding base graph: %w", err)
	}
	if len(rowPtr) != baseN+1 || rowPtr[0] != 0 {
		return nil, fmt.Errorf("mogul: base graph row index carries %d entries for base size %d", len(rowPtr), baseN)
	}
	for i := 1; i < len(rowPtr); i++ {
		if rowPtr[i] < rowPtr[i-1] {
			return nil, fmt.Errorf("mogul: base graph row index decreases at row %d", i)
		}
	}
	if rowPtr[baseN] != len(col) || len(col) != nnz {
		return nil, fmt.Errorf("mogul: base graph shape mismatch (%d row-index end, %d columns, %d values)", rowPtr[baseN], len(col), nnz)
	}
	for x, c := range col {
		if c < 0 || c >= baseN {
			return nil, fmt.Errorf("mogul: base graph edge %d targets %d outside [0,%d)", x, c, baseN)
		}
	}

	pr := binio.NewBytesReader(payloads[tagSpPts])
	pr.EnableAlign(align, bases[tagSpPts])
	var points []Vector
	var pts32 []float32
	if f32 {
		pts32 = pr.Float32sView(binio.MaxCount)
		if err := pr.Err(); err != nil {
			return nil, fmt.Errorf("mogul: decoding point matrix: %w", err)
		}
		if len(pts32) != n*dim {
			return nil, fmt.Errorf("mogul: point matrix carries %d values, want %d", len(pts32), n*dim)
		}
	} else {
		flat := pr.FloatsView(binio.MaxCount)
		if err := pr.Err(); err != nil {
			return nil, fmt.Errorf("mogul: decoding point matrix: %w", err)
		}
		if len(flat) != n*dim {
			return nil, fmt.Errorf("mogul: point matrix carries %d values, want %d", len(flat), n*dim)
		}
		points = make([]Vector, n)
		for i := range points {
			points[i] = Vector(flat[i*dim : (i+1)*dim : (i+1)*dim])
		}
	}

	er := binio.NewBytesReader(payloads[tagSpEmb])
	er.EnableAlign(align, bases[tagSpEmb])
	var emb []float64
	var emb32 []float32
	var embLen int
	if f32 {
		emb32 = er.Float32sView(binio.MaxCount)
		embLen = len(emb32)
	} else {
		emb = er.FloatsView(binio.MaxCount)
		embLen = len(emb)
	}
	deadIDs := er.Ints(binio.MaxCount)
	if err := er.Err(); err != nil {
		return nil, fmt.Errorf("mogul: decoding embedding: %w", err)
	}
	if embLen != n*rank {
		return nil, fmt.Errorf("mogul: embedding carries %d elements, want %d", embLen, n*rank)
	}
	dead := make([]bool, n)
	deadBase := 0
	prev := -1
	for _, id := range deadIDs {
		if id <= prev || id >= n {
			return nil, fmt.Errorf("mogul: corrupt tombstone list (id %d after %d, %d points)", id, prev, n)
		}
		dead[id] = true
		if id < baseN {
			deadBase++
		}
		prev = id
	}
	if len(deadIDs) >= n {
		return nil, fmt.Errorf("mogul: every item tombstoned")
	}

	ar := binio.NewBytesReader(payloads[tagSpAtt])
	ar.EnableAlign(align, bases[tagSpAtt])
	attPtr := ar.Ints(binio.MaxCount)
	attID := ar.Ints(binio.MaxCount)
	attW := ar.Floats(binio.MaxCount)
	if err := ar.Err(); err != nil {
		return nil, fmt.Errorf("mogul: decoding delta attachments: %w", err)
	}
	if len(attPtr) != (n-baseN)+1 || attPtr[0] != 0 {
		return nil, fmt.Errorf("mogul: attachment index carries %d entries for %d delta items", len(attPtr), n-baseN)
	}
	for i := 1; i < len(attPtr); i++ {
		if attPtr[i] < attPtr[i-1] {
			return nil, fmt.Errorf("mogul: attachment index decreases at delta item %d", i-1)
		}
	}
	if attPtr[len(attPtr)-1] != len(attID) || len(attID) != len(attW) {
		return nil, fmt.Errorf("mogul: attachment shape mismatch (%d index end, %d anchors, %d weights)", attPtr[len(attPtr)-1], len(attID), len(attW))
	}
	for t, id := range attID {
		if id < 0 || id >= baseN {
			return nil, fmt.Errorf("mogul: attachment anchor %d targets %d outside [0,%d)", t, id, baseN)
		}
		if w := attW[t]; math.IsNaN(w) || math.IsInf(w, 0) || w < 0 {
			return nil, fmt.Errorf("mogul: attachment anchor %d has invalid weight %g", t, attW[t])
		}
	}

	ropts := Options{
		GraphK:              graphK,
		ApproximateGraph:    approx == 1,
		MutualGraph:         mutual == 1,
		Sigma:               sigmaOpt,
		Alpha:               alpha,
		Seed:                int64(seed),
		AutoCompactFraction: autoCompact,
	}
	if f32 {
		// Compact on a loaded engine rebuilds with the recorded recipe;
		// restoring the precision keeps the rebuilt state narrowed.
		ropts.Precision = F32
	}
	e := &SpectralIndex{
		alpha:       alpha,
		seed:        int64(seed),
		autoCompact: autoCompact,
		ropts:       ropts,
		sopts:       SpectralOptions{Rank: recipeRank, Steps: recipeSteps, Hops: hops, HopBudget: hopBudget, AttachK: attachK},
		st: &spectralState{
			dim:       dim,
			rank:      rank,
			graph:     &sparse.CSR{RowPtr: rowPtr, Col: col, Val: val, Val32: val32, Rows: baseN, Cols: baseN},
			sigma:     sigma,
			vals:      vals,
			points:    points,
			pts32:     pts32,
			dead:      dead,
			emb:       emb,
			emb32:     emb32,
			attPtr:    attPtr,
			attID:     attID,
			attW:      attW,
			deadCount: len(deadIDs),
			deadBase:  deadBase,
			baseN:     baseN,
			stats: Stats{
				NumNodes:    baseN,
				NumClusters: rank,
				FactorNNZ:   baseN * rank,
				ClusterTime: time.Duration(clusterTime),
				FactorTime:  time.Duration(factorTime),
			},
		},
	}
	e.version.Store(1)
	return e, nil
}
