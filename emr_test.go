package mogul

// Tests for the EMR anchor-graph engine (emr.go). The headline
// property: over an unmutated engine, every query path is bit-identical
// to the internal/baseline EMR implementation — the engine is the
// baseline's math on serving-grade data structures, and any float-level
// divergence is a bug. Plus: dynamic-update equivalence (Insert →
// Compact converges to a fresh build), the Retriever surface contract,
// and a -race concurrent query/mutation suite.

import (
	"math/rand"
	"sync"
	"testing"

	"mogul/internal/baseline"
)

// buildEMRPair builds the engine and the baseline over the same points
// with the same recipe, so results can be compared bit for bit.
func buildEMRPair(t *testing.T, n, dim, p, s int, seed int64) (*EMRIndex, *baseline.EMR, []Vector) {
	t.Helper()
	ds := NewMixture(MixtureConfig{N: n, Classes: 6, Dim: dim, WithinStd: 0.4, Separation: 2.5, Seed: seed})
	e, err := BuildEMR(ds.Points, Options{Alpha: 0.99, Seed: seed}, EMROptions{NumAnchors: p, NumNearestAnchors: s})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := baseline.NewEMR(ds.Points, 0.99, baseline.EMRConfig{NumAnchors: p, NumNearestAnchors: s, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	ref.PrefactorGram = true
	return e, ref, ds.Points
}

// TestEMRMatchesBaseline pins the engine bit-identical to baseline.EMR
// on in-sample and out-of-sample queries, across seeds and anchor
// shapes (including s == p, the bandwidth edge case both now share
// through the deduped helper).
func TestEMRMatchesBaseline(t *testing.T) {
	for _, tc := range []struct {
		n, dim, p, s int
		seed         int64
	}{
		{n: 200, dim: 8, p: 24, s: 4, seed: 1},
		{n: 300, dim: 6, p: 32, s: 5, seed: 2},
		{n: 150, dim: 10, p: 12, s: 12, seed: 3}, // s == p: every anchor in support
		{n: 120, dim: 4, p: 8, s: 3, seed: 4},
	} {
		e, ref, points := buildEMRPair(t, tc.n, tc.dim, tc.p, tc.s, tc.seed)
		rng := rand.New(rand.NewSource(tc.seed))
		for trial := 0; trial < 20; trial++ {
			q := rng.Intn(tc.n)
			k := 1 + rng.Intn(15)
			got, err := e.TopK(q, k)
			if err != nil {
				t.Fatal(err)
			}
			want, err := ref.TopK(q, k)
			if err != nil {
				t.Fatal(err)
			}
			sameResults(t, "TopK", got, want)
		}
		for trial := 0; trial < 20; trial++ {
			qv := append(Vector(nil), points[rng.Intn(tc.n)]...)
			for i := range qv {
				qv[i] += 0.1 * rng.NormFloat64()
			}
			k := 1 + rng.Intn(15)
			got, err := e.TopKVector(qv, k)
			if err != nil {
				t.Fatal(err)
			}
			want, err := ref.TopKOutOfSample(qv, k)
			if err != nil {
				t.Fatal(err)
			}
			sameResults(t, "TopKVector", got, want)
		}
	}
}

// TestEMRSearcherMatchesPooledPath: a dedicated searcher and the
// engine-level pooled methods answer identically, and a searcher
// reused across many queries does not leak state between them.
func TestEMRSearcherMatchesPooledPath(t *testing.T) {
	e, _, points := buildEMRPair(t, 150, 6, 16, 4, 5)
	sr := e.NewSearcher()
	for q := 0; q < 30; q++ {
		a, err := sr.TopK(q, 9)
		if err != nil {
			t.Fatal(err)
		}
		b, err := e.TopK(q, 9)
		if err != nil {
			t.Fatal(err)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("query %d: searcher and pooled results differ at %d", q, i)
			}
		}
		av, err := sr.TopKVector(points[q], 9)
		if err != nil {
			t.Fatal(err)
		}
		bv, err := e.TopKVector(points[q], 9)
		if err != nil {
			t.Fatal(err)
		}
		for i := range av {
			if av[i] != bv[i] {
				t.Fatalf("query %d: vector results differ at %d", q, i)
			}
		}
	}
}

// TestEMRTopKSetSingleSeed: a one-element set query carries weight 1
// and must equal the plain TopK of that seed.
func TestEMRTopKSetSingleSeed(t *testing.T) {
	e, _, _ := buildEMRPair(t, 120, 6, 16, 4, 6)
	for _, q := range []int{0, 17, 119} {
		a, err := e.TopK(q, 8)
		if err != nil {
			t.Fatal(err)
		}
		b, err := e.TopKSet([]int{q}, 8)
		if err != nil {
			t.Fatal(err)
		}
		sameResults(t, "TopKSet single seed", a, b)
	}
	// Duplicate seeds accumulate weight instead of corrupting the scan
	// cursor.
	if _, err := e.TopKSet([]int{3, 3, 7}, 8); err != nil {
		t.Fatal(err)
	}
}

// TestEMRInsertCompactEqualsFresh: the dynamic arc converges — after
// any mix of inserts and deletes, Compact produces an engine
// bit-identical to a fresh BuildEMR over the live points in id order.
func TestEMRInsertCompactEqualsFresh(t *testing.T) {
	ds := NewMixture(MixtureConfig{N: 260, Classes: 6, Dim: 8, WithinStd: 0.4, Separation: 2.5, Seed: 11})
	opts := Options{Alpha: 0.99, Seed: 11}
	eopts := EMROptions{NumAnchors: 24, NumNearestAnchors: 4}
	e, err := BuildEMR(ds.Points[:200], opts, eopts)
	if err != nil {
		t.Fatal(err)
	}
	v0 := e.Version()
	for _, pt := range ds.Points[200:] {
		if _, err := e.Insert(pt); err != nil {
			t.Fatal(err)
		}
	}
	for _, id := range []int{3, 77, 199, 205} {
		if err := e.Delete(id); err != nil {
			t.Fatal(err)
		}
	}
	if e.Version() == v0 {
		t.Fatal("mutations did not advance the version")
	}
	d := e.Delta()
	if d.BaseItems != 200 || d.DeltaItems != 60-1 || d.Tombstones != 4 {
		t.Fatalf("delta = %+v", d)
	}

	// The live points in id order are exactly what Compact snapshots.
	var live []Vector
	for id := 0; id < 260; id++ {
		if e.Alive(id) {
			live = append(live, ds.Points[id])
		}
	}
	if err := e.Compact(); err != nil {
		t.Fatal(err)
	}
	fresh, err := BuildEMR(live, opts, eopts)
	if err != nil {
		t.Fatal(err)
	}
	if e.Len() != fresh.Len() || e.IDSpace() != len(live) {
		t.Fatalf("compacted len=%d idspace=%d, fresh len=%d", e.Len(), e.IDSpace(), fresh.Len())
	}
	for q := 0; q < e.Len(); q += 7 {
		a, err := e.TopK(q, 10)
		if err != nil {
			t.Fatal(err)
		}
		b, err := fresh.TopK(q, 10)
		if err != nil {
			t.Fatal(err)
		}
		sameResults(t, "compacted vs fresh TopK", a, b)
	}
	qv := append(Vector(nil), live[5]...)
	qv[0] += 0.05
	a, _ := e.TopKVector(qv, 10)
	b, _ := fresh.TopKVector(qv, 10)
	sameResults(t, "compacted vs fresh TopKVector", a, b)

	// Compacting an already-clean engine is a no-op and does not
	// invalidate caches (version unchanged).
	vBefore := e.Version()
	if err := e.Compact(); err != nil {
		t.Fatal(err)
	}
	if e.Version() != vBefore {
		t.Fatal("no-op Compact bumped the version")
	}
}

// TestEMRDynamicBasics: tombstones leave results and queries, deleted
// ids stay retired, inserted items are immediately searchable, and the
// auto-compact policy folds the delta in.
func TestEMRDynamicBasics(t *testing.T) {
	ds := NewMixture(MixtureConfig{N: 140, Classes: 4, Dim: 6, WithinStd: 0.4, Separation: 2.5, Seed: 13})
	e, err := BuildEMR(ds.Points[:120], Options{Alpha: 0.99, Seed: 13}, EMROptions{NumAnchors: 16, NumNearestAnchors: 4})
	if err != nil {
		t.Fatal(err)
	}
	id, err := e.Insert(ds.Points[120])
	if err != nil {
		t.Fatal(err)
	}
	if id != 120 {
		t.Fatalf("first insert got id %d", id)
	}
	res, err := e.TopK(id, 5)
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Node != id {
		t.Fatalf("inserted item does not rank first for itself: %+v", res[0])
	}
	if err := e.Delete(7); err != nil {
		t.Fatal(err)
	}
	if _, err := e.TopK(7, 5); err == nil {
		t.Fatal("deleted item served as query")
	}
	if err := e.Delete(7); err == nil {
		t.Fatal("double delete accepted")
	}
	res, err = e.TopK(0, e.Len())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res {
		if r.Node == 7 {
			t.Fatal("tombstoned item appeared in results")
		}
	}
	// Errors: bad k, bad ids, dimension mismatch.
	if _, err := e.TopK(0, 0); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := e.TopK(-1, 5); err == nil {
		t.Fatal("negative query accepted")
	}
	if _, err := e.TopKVector(Vector{1, 2}, 5); err == nil {
		t.Fatal("wrong-dimension vector accepted")
	}
	if _, err := e.TopKSet(nil, 5); err == nil {
		t.Fatal("empty seed set accepted")
	}
	if _, _, err := e.Neighbors(0); err == nil {
		t.Fatal("Neighbors should be unavailable on the anchor graph")
	}

	// Auto-compaction: with a tight fraction, inserts fold the delta in.
	ac, err := BuildEMR(ds.Points[:100], Options{Alpha: 0.99, Seed: 13, AutoCompactFraction: 0.05}, EMROptions{NumAnchors: 16, NumNearestAnchors: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := 100; i < 110; i++ {
		if _, err := ac.Insert(ds.Points[i]); err != nil {
			t.Fatal(err)
		}
	}
	if d := ac.Delta(); d.DeltaItems > 5 {
		t.Fatalf("auto-compact never ran: %+v", d)
	}
}

// TestEMRBatch: the batch entry points answer per-item, record
// per-item failures without failing the batch, and agree with the
// sequential paths.
func TestEMRBatch(t *testing.T) {
	e, _, points := buildEMRPair(t, 90, 6, 12, 4, 17)
	queries := []int{0, 5, -3, 88, 9000}
	out := e.TopKBatch(queries, 6, 4)
	if len(out) != len(queries) {
		t.Fatalf("%d batch results", len(out))
	}
	for i, q := range queries {
		if out[i].Query != q {
			t.Fatalf("result %d carries query %d, want %d", i, out[i].Query, q)
		}
		if q < 0 || q >= 90 {
			if out[i].Err == nil {
				t.Fatalf("bad query %d accepted", q)
			}
			continue
		}
		if out[i].Err != nil {
			t.Fatal(out[i].Err)
		}
		want, _ := e.TopK(q, 6)
		sameResults(t, "batch vs sequential", out[i].Results, want)
	}
	vout := e.TopKVectorBatch([]Vector{points[0], points[1], {1}}, 6, 2)
	if vout[2].Err == nil {
		t.Fatal("wrong-dimension vector accepted in batch")
	}
	want, _ := e.TopKVector(points[0], 6)
	sameResults(t, "vector batch vs sequential", vout[0].Results, want)
}

// TestEMRRetrieverSurface: the introspection half of the Retriever
// contract, plus the interface satisfaction itself (compile-time
// asserted in emr.go, behaviorally spot-checked here).
func TestEMRRetrieverSurface(t *testing.T) {
	var r Retriever
	e, _, _ := buildEMRPair(t, 100, 6, 16, 4, 19)
	r = e
	if r.Len() != 100 {
		t.Fatalf("Len = %d", r.Len())
	}
	if r.Exact() {
		t.Fatal("EMR claims exact scores")
	}
	st := r.Stats()
	if st.NumNodes != 100 || st.NumClusters != 16 || st.FactorNNZ != 16*16 {
		t.Fatalf("stats = %+v", st)
	}
	if st.ClusterTime <= 0 || st.FactorTime <= 0 {
		t.Fatalf("build timings missing: %+v", st)
	}
	if r.Version() == 0 {
		t.Fatal("version must start at 1")
	}
	q := r.NewQuerier()
	if _, err := q.TopK(0, 5); err != nil {
		t.Fatal(err)
	}
	if _, info, err := r.TopKWithInfo(0, 5); err != nil || info.ScoresComputed != 100 || info.ClustersScanned != 16 {
		t.Fatalf("info = %+v, err = %v", nil, err)
	}
}

// TestEMRConcurrentQueries hammers one engine from many goroutines —
// searches on pooled scratch racing Insert/Delete/Compact — and checks
// nothing tears: run under -race (the CI race job does), this is the
// regression test for the cachedGram class of bug at the engine level.
func TestEMRConcurrentQueries(t *testing.T) {
	ds := NewMixture(MixtureConfig{N: 400, Classes: 6, Dim: 8, WithinStd: 0.4, Separation: 2.5, Seed: 23})
	e, err := BuildEMR(ds.Points[:300], Options{Alpha: 0.99, Seed: 23}, EMROptions{NumAnchors: 24, NumNearestAnchors: 4})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for {
				select {
				case <-stop:
					return
				default:
				}
				switch rng.Intn(4) {
				case 0:
					// Ids may be tombstoned or (after Compact)
					// renumbered away concurrently; errors are fine,
					// panics and races are not.
					_, _ = e.TopK(rng.Intn(280), 10)
				case 1:
					_, _ = e.TopKVector(ds.Points[300+rng.Intn(100)], 10)
				case 2:
					_, _ = e.TopKSet([]int{rng.Intn(100), rng.Intn(100)}, 10)
				case 3:
					_, _, _ = e.TopKWithInfo(rng.Intn(280), 10)
				}
			}
		}(w)
	}
	// Mutations race the searches.
	for i := 0; i < 30; i++ {
		if _, err := e.Insert(ds.Points[300+i%100]); err != nil {
			t.Fatal(err)
		}
		if i%7 == 0 {
			_ = e.Delete(i) // may legitimately fail after renumbering
		}
		if i%11 == 0 {
			if err := e.Compact(); err != nil {
				t.Fatal(err)
			}
		}
	}
	close(stop)
	wg.Wait()
	if _, err := e.TopK(0, 5); err != nil {
		t.Fatal(err)
	}
}
