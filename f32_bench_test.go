package mogul

// f64-vs-f32 engine benchmarks. CI's bench-smoke job runs these
// together with the internal/vec kernel benches and archives the pair
// as BENCH_f32.json: TopK latency and allocation profile per engine in
// each storage precision, plus end-to-end build cost (builds always
// run in f64 and narrow once at the end, so the f32 build rows price
// exactly that narrowing pass). The memory story itself is measured by
// `mogul-bench -exp memory`; what -benchmem pins here is that the f32
// query path allocates no more than f64 per op.

import (
	"fmt"
	"sync"
	"testing"
)

// f32BenchFixtures builds each backend at n=20k in both precisions,
// once per process.
var f32BenchFixtures = sync.OnceValue(func() map[string]Retriever {
	ds := NewMixture(MixtureConfig{
		N: 20000, Classes: 25, Dim: 16, WithinStd: 0.3, Separation: 2.5, Seed: 13,
	})
	out := map[string]Retriever{}
	for _, prec := range []Precision{F64, F32} {
		opts := Options{Seed: 13, GraphK: 6, ApproximateGraph: true, Precision: prec}
		label := "f64"
		if prec == F32 {
			label = "f32"
		}
		ix, err := Build(ds.Points, opts)
		if err != nil {
			panic(err)
		}
		out["core/"+label] = ix
		emr, err := BuildEMR(ds.Points, opts, EMROptions{})
		if err != nil {
			panic(err)
		}
		out["emr/"+label] = emr
		spc, err := BuildSpectral(ds.Points, opts, SpectralOptions{})
		if err != nil {
			panic(err)
		}
		out["spectral/"+label] = spc
	}
	return out
})

// BenchmarkF32TopK: steady-state top-10 latency per engine and
// precision over a shared n=20k fixture. The f32 rows read half the
// bulk-array bytes per candidate; allocs/op must match the f64 rows.
func BenchmarkF32TopK(b *testing.B) {
	fx := f32BenchFixtures()
	queries := benchQueries(20000, 64)
	for _, name := range []string{
		"core/f64", "core/f32", "emr/f64", "emr/f32", "spectral/f64", "spectral/f32",
	} {
		r := fx[name]
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := r.TopK(queries[i%len(queries)], 10); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkF32Build: end-to-end build cost per precision at n=5k. The
// f32/f64 delta is the one-shot narrowing pass — builds accumulate in
// f64 either way, so a material gap here is a regression.
func BenchmarkF32Build(b *testing.B) {
	ds := NewMixture(MixtureConfig{
		N: 5000, Classes: 20, Dim: 16, WithinStd: 0.3, Separation: 2.5, Seed: 13,
	})
	for _, prec := range []Precision{F64, F32} {
		label := "f64"
		if prec == F32 {
			label = "f32"
		}
		opts := Options{Seed: 13, GraphK: 6, ApproximateGraph: true, Precision: prec}
		b.Run(fmt.Sprintf("core/%s", label), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := Build(ds.Points, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("emr/%s", label), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := BuildEMR(ds.Points, opts, EMROptions{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
