package mogul

// Persistence tests for the MOGULEMR container (emr_persist.go),
// matching the plain and sharded suites: bit-identical round trips
// (including delta state), magic-sniffing dispatch through Load, an
// errors-never-panics corruption sweep, and a fuzz target.

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"sync"
	"testing"
)

// buildEMRFixture builds a small engine with live delta state
// (inserts and tombstones on base and delta items) so a round trip
// covers every container feature.
func buildEMRFixture(t *testing.T) *EMRIndex {
	t.Helper()
	ds := NewMixture(MixtureConfig{N: 160, Classes: 6, Dim: 8, WithinStd: 0.35, Separation: 2.5, Seed: 29})
	e, err := BuildEMR(ds.Points[:140], Options{Alpha: 0.99, Seed: 29}, EMROptions{NumAnchors: 20, NumNearestAnchors: 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range ds.Points[140:] {
		if _, err := e.Insert(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Delete(11); err != nil { // base tombstone
		t.Fatal(err)
	}
	if err := e.Delete(141); err != nil { // delta tombstone
		t.Fatal(err)
	}
	return e
}

func TestEMRSaveLoadRoundTrip(t *testing.T) {
	e := buildEMRFixture(t)
	var buf bytes.Buffer
	if err := e.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadEMR(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != e.Len() || loaded.IDSpace() != e.IDSpace() || loaded.NumAnchors() != e.NumAnchors() {
		t.Fatalf("identity lost: len=%d idspace=%d p=%d", loaded.Len(), loaded.IDSpace(), loaded.NumAnchors())
	}
	if loaded.Exact() || loaded.Version() != 1 {
		t.Fatalf("exact=%v version=%d", loaded.Exact(), loaded.Version())
	}
	if d, want := loaded.Delta(), e.Delta(); d != want {
		t.Fatalf("delta %+v, want %+v", d, want)
	}

	// Save -> Load -> query is bit-identical across every path,
	// including delta items and around tombstones.
	for _, q := range []int{0, 12, 77, 139, 140, 159} {
		a, err := e.TopK(q, 12)
		if err != nil {
			t.Fatal(err)
		}
		b, err := loaded.TopK(q, 12)
		if err != nil {
			t.Fatal(err)
		}
		sameResults(t, fmt.Sprintf("TopK(%d)", q), b, a)
	}
	qv := append(Vector(nil), loaded.st.points[3]...)
	qv[0] += 0.03
	a, err := e.TopKVector(qv, 12)
	if err != nil {
		t.Fatal(err)
	}
	b, err := loaded.TopKVector(qv, 12)
	if err != nil {
		t.Fatal(err)
	}
	sameResults(t, "TopKVector", b, a)
	sa, err := e.TopKSet([]int{2, 9}, 8)
	if err != nil {
		t.Fatal(err)
	}
	sb, err := loaded.TopKSet([]int{2, 9}, 8)
	if err != nil {
		t.Fatal(err)
	}
	sameResults(t, "TopKSet", sb, sa)

	// Tombstoned queries keep failing after the round trip.
	if _, err := loaded.TopK(11, 5); err == nil {
		t.Fatal("tombstoned item served as query after load")
	}

	// The loaded engine keeps mutating correctly: the anchor
	// attachment state (colSum/lambda) round-tripped, and Compact can
	// rebuild from the recorded recipe.
	if _, err := loaded.Insert(qv); err != nil {
		t.Fatal(err)
	}
	if err := loaded.Delete(2); err != nil {
		t.Fatal(err)
	}
	if err := loaded.Compact(); err != nil {
		t.Fatal(err)
	}
	if _, err := loaded.TopK(0, 5); err != nil {
		t.Fatal(err)
	}

	// A re-save of an untouched load is byte-identical (deterministic
	// serialization of identical state).
	reload, err := LoadEMR(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var buf2 bytes.Buffer
	if err := reload.Save(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatal("save/load/save is not byte-stable")
	}
}

// TestEMRLoadDispatch: mogul.Load and LoadFile sniff the MOGULEMR
// magic and return an *EMRIndex behind the Retriever surface.
func TestEMRLoadDispatch(t *testing.T) {
	e := buildEMRFixture(t)
	var buf bytes.Buffer
	if err := e.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	le, ok := got.(*EMRIndex)
	if !ok {
		t.Fatalf("EMR file loaded as %T", got)
	}
	if le.Len() != e.Len() {
		t.Fatalf("identity lost through Load: len=%d", le.Len())
	}

	dir := t.TempDir()
	path := dir + "/engine.emr"
	if err := e.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadEMRFile(path); err != nil {
		t.Fatal(err)
	}
	r, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := r.(*EMRIndex); !ok {
		t.Fatalf("file path loaded as %T", r)
	}
	a, _ := e.TopK(7, 6)
	b, err := r.TopK(7, 6)
	if err != nil {
		t.Fatal(err)
	}
	sameResults(t, "TopK through LoadFile", b, a)
}

// TestLoadEMRNeverPanics: every truncation prefix, a stride of
// single-byte corruptions, and a table of structural lies with their
// CRC re-stamped must error, never panic.
func TestLoadEMRNeverPanics(t *testing.T) {
	e := buildEMRFixture(t)
	var buf bytes.Buffer
	if err := e.Save(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()

	tryLoad := func(label string, b []byte) {
		t.Helper()
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("Load panicked on %s: %v", label, r)
			}
		}()
		if _, err := Load(bytes.NewReader(b)); err == nil {
			t.Fatalf("Load accepted %s", label)
		}
	}
	for n := 0; n < len(data); n += 199 {
		tryLoad(fmt.Sprintf("truncation to %d bytes", n), data[:n])
	}
	for pos := 0; pos < len(data); pos += 271 {
		mutated := append([]byte(nil), data...)
		mutated[pos] ^= 0x5A
		tryLoad(fmt.Sprintf("corruption at byte %d", pos), mutated)
	}

	// Structural corruptions that survive the checksum: the validation
	// layer itself must reject them.
	restamp := func(b []byte) []byte {
		crc := crc32IEEE(b[:len(b)-4])
		out := append([]byte(nil), b...)
		binary.LittleEndian.PutUint32(out[len(out)-4:], crc)
		return out
	}
	futureVersion := append([]byte(nil), data...)
	futureVersion[8] = 0xFF
	truncatedEnd := data[:len(data)-16]
	badEndPayload := append([]byte(nil), data...)
	binary.LittleEndian.PutUint64(badEndPayload[len(badEndPayload)-12:], 7)
	for _, tc := range []struct {
		label string
		data  []byte
	}{
		{"future container version", restamp(futureVersion)},
		{"missing end marker", truncatedEnd},
		{"end marker with payload", restamp(badEndPayload)},
		{"empty input", nil},
		{"bare EMR magic", []byte(emrMagic)},
	} {
		tryLoad(tc.label, tc.data)
	}
}

// fuzzEMRSeed serializes one engine fixture (with delta state) once
// for the fuzz corpus.
var fuzzEMRSeed = sync.OnceValue(func() []byte {
	ds := NewMixture(MixtureConfig{N: 90, Classes: 4, Dim: 6, WithinStd: 0.3, Separation: 2.5, Seed: 53})
	e, err := BuildEMR(ds.Points[:80], Options{Alpha: 0.99, Seed: 53}, EMROptions{NumAnchors: 12, NumNearestAnchors: 4})
	if err != nil {
		panic(err)
	}
	for _, p := range ds.Points[80:] {
		if _, err := e.Insert(p); err != nil {
			panic(err)
		}
	}
	if err := e.Delete(3); err != nil {
		panic(err)
	}
	var buf bytes.Buffer
	if err := e.Save(&buf); err != nil {
		panic(err)
	}
	return buf.Bytes()
})

// FuzzLoadEMR feeds arbitrary bytes to the sniffing loader. The
// contract: Load never panics, and any EMR input it accepts must
// search, mutate, and re-save without panicking. Explore with
//
//	go test -fuzz FuzzLoadEMR -fuzztime 30s .
func FuzzLoadEMR(f *testing.F) {
	seed := fuzzEMRSeed()
	f.Add(seed)
	f.Add(seed[:len(seed)/2])         // truncation
	f.Add(seed[:len(seed)-3])         // clipped checksum
	f.Add([]byte(emrMagic))           // header only
	f.Add([]byte("MOGULEMR\x01\x00")) // header + partial version
	mutated := append([]byte(nil), seed...)
	mutated[len(mutated)/3] ^= 0x5A // body corruption
	f.Add(mutated)
	versioned := append([]byte(nil), seed...)
	versioned[8] = 0xFF // far-future container version
	f.Add(versioned)

	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := Load(bytes.NewReader(data))
		if err != nil {
			return
		}
		e, ok := r.(*EMRIndex)
		if !ok {
			// Other formats have their own fuzz targets.
			return
		}
		if e.Len() <= 0 {
			t.Fatalf("loaded EMR engine has %d live items", e.Len())
		}
		// Query through a live id (0 may legitimately be tombstoned in
		// accepted input).
		live := -1
		for id := 0; id < e.IDSpace(); id++ {
			if e.Alive(id) {
				live = id
				break
			}
		}
		if live < 0 {
			t.Fatal("no live item in an accepted engine")
		}
		if _, err := e.TopK(live, 3); err != nil {
			t.Fatalf("loaded EMR engine cannot search: %v", err)
		}
		var buf bytes.Buffer
		if err := e.Save(&buf); err != nil {
			t.Fatalf("loaded EMR engine cannot re-save: %v", err)
		}
	})
}
