package mogul

// EMR engine persistence: the MOGULEMR container (docs/FORMAT.md).
//
// A saved EMR engine carries everything BuildEMR computed — anchors,
// base-column normalization, the flat H columns, the stored points,
// the tombstone set, and the prefactored gram system — so a loaded
// engine answers bit-identically to the one that saved it without
// re-running k-means or refactorizing. Same container discipline as
// MOGULIDX/MOGULSHD: an 8-byte magic, a format version, tag/length
// section framing (unknown tags skipped for additive evolution), an
// end marker, and a trailing CRC-32 over everything before it.
// mogul.Load sniffs the magic and dispatches here; malformed input of
// any kind yields an error, never a panic.

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"math"
	"os"
	"time"

	"mogul/internal/binio"
	"mogul/internal/dense"
)

// emrMagic identifies an EMR (anchor-graph) engine file.
const emrMagic = "MOGULEMR"

// emrFormatVersion is the container version plain float64 saves write
// (kept at 1 so existing files reproduce byte for byte);
// emrFormatVersionPrec the version carrying precision and alignment
// metadata (written for f32 engines and aligned saves);
// emrMinReadVersion the oldest this build reads.
const (
	emrFormatVersion     = 1
	emrFormatVersionPrec = 2
	emrMinReadVersion    = 1
)

// EMR container section tags.
var (
	tagEmet = [4]byte{'E', 'M', 'E', 'T'} // scalars: alpha, recipe, shapes, timings
	tagEanc = [4]byte{'E', 'A', 'N', 'C'} // anchors + base column sums
	tagEpts = [4]byte{'E', 'P', 'T', 'S'} // stored feature vectors
	tagEhco = [4]byte{'E', 'H', 'C', 'O'} // flat H columns + tombstones
	tagEgrm = [4]byte{'E', 'G', 'R', 'M'} // prefactored gram system (LU)
	tagEend = [4]byte{'E', 'N', 'D', 0}
)

// Save writes the engine in the versioned MOGULEMR format. Mutators
// block for the duration; searches proceed. A float64 engine writes
// version 1, byte-identical to previous releases; a mixed-precision
// engine writes version 2 with its arrays narrowed.
func (e *EMRIndex) Save(w io.Writer) error {
	// mutMu freezes the delta state so the two-pass section framing
	// sees identical bytes; the read lock covers the reads themselves.
	e.mutMu.Lock()
	defer e.mutMu.Unlock()
	e.mu.RLock()
	defer e.mu.RUnlock()

	if e.st.f32() {
		return e.savePrecLocked(w, 0)
	}

	buffered := bufio.NewWriterSize(w, 1<<20)
	bw := binio.NewWriter(buffered)
	bw.Raw([]byte(emrMagic))
	bw.Uint32(emrFormatVersion)

	sections := []struct {
		tag     [4]byte
		payload func(w io.Writer) error
	}{
		{tagEmet, e.writeEMRMeta},
		{tagEanc, e.writeEMRAnchors},
		{tagEpts, e.writeEMRPoints},
		{tagEhco, e.writeEMRColumns},
		{tagEgrm, e.writeEMRGram},
	}
	for _, s := range sections {
		if err := writeShardSection(bw, s.tag, s.payload); err != nil {
			return fmt.Errorf("mogul: writing %q section: %w", s.tag[:], err)
		}
	}
	bw.Raw(tagEend[:])
	bw.Uint64(0)
	bw.Uint32(bw.Sum32())
	if err := bw.Err(); err != nil {
		return err
	}
	return buffered.Flush()
}

func (e *EMRIndex) writeEMRMeta(w io.Writer) error {
	st := e.st
	bw := binio.NewWriter(w)
	bw.Float64(e.alpha)
	bw.Int(int(e.seed))
	bw.Float64(e.autoCompact)
	// The recorded anchor recipe (pre-clamping), so Compact on a
	// loaded engine rebuilds with the options the original build got.
	bw.Int(e.eopts.NumAnchors)
	bw.Int(e.eopts.NumNearestAnchors)
	bw.Int(st.dim)
	bw.Int(st.p)
	bw.Int(st.s)
	bw.Int(st.baseN)
	bw.Int(st.numPoints())
	bw.Int(int(st.stats.ClusterTime))
	bw.Int(int(st.stats.FactorTime))
	return bw.Err()
}

func (e *EMRIndex) writeEMRAnchors(w io.Writer) error {
	st := e.st
	bw := binio.NewWriter(w)
	for _, c := range st.anchors {
		bw.Floats(c)
	}
	bw.Floats(st.colSum)
	return bw.Err()
}

func (e *EMRIndex) writeEMRPoints(w io.Writer) error {
	st := e.st
	bw := binio.NewWriter(w)
	for _, pt := range st.points {
		bw.Floats(pt)
	}
	return bw.Err()
}

func (e *EMRIndex) writeEMRColumns(w io.Writer) error {
	st := e.st
	bw := binio.NewWriter(w)
	cols := make([]int, len(st.hAnchor))
	for i, a := range st.hAnchor {
		cols[i] = int(a)
	}
	bw.Ints(cols)
	bw.Floats(st.hVal)
	dead := make([]int, 0, st.deadCount)
	for id, d := range st.dead {
		if d {
			dead = append(dead, id)
		}
	}
	bw.Ints(dead)
	return bw.Err()
}

func (e *EMRIndex) writeEMRGram(w io.Writer) error {
	lu, pivot, signDet := e.st.gram.Components()
	bw := binio.NewWriter(w)
	bw.Int(lu.Rows)
	bw.Floats(lu.Data)
	bw.Ints(pivot)
	bw.Float64(signDet)
	return bw.Err()
}

// SaveFile writes the engine to a file via Save with the same atomic
// temp-file-and-rename protocol as Index.SaveFile.
func (e *EMRIndex) SaveFile(path string) error {
	return saveFileAtomic(path, e.Save)
}

// SaveFileAligned is SaveAligned to a file with the same atomic
// temp-file-and-rename protocol as SaveFile.
func (e *EMRIndex) SaveFileAligned(path string, align int) error {
	return saveFileAtomic(path, func(w io.Writer) error { return e.SaveAligned(w, align) })
}

// LoadEMR reads an engine written by EMRIndex.Save. Malformed input of
// any kind — wrong magic, unknown version, truncation, checksum
// mismatch, shape mismatches between sections, a corrupt gram factor —
// yields an error, never a panic. Callers normally go through Load,
// which sniffs the magic and dispatches here.
func LoadEMR(r io.Reader) (*EMRIndex, error) {
	br := binio.NewReader(r)
	var magic [len(emrMagic)]byte
	br.Raw(magic[:])
	if err := br.Err(); err != nil {
		return nil, fmt.Errorf("mogul: reading EMR engine header: %w", err)
	}
	if string(magic[:]) != emrMagic {
		return nil, fmt.Errorf("mogul: not an EMR engine file (magic %q)", magic[:])
	}
	version := br.Uint32()
	if err := br.Err(); err != nil {
		return nil, fmt.Errorf("mogul: reading EMR engine header: %w", err)
	}
	if version < emrMinReadVersion || version > emrFormatVersionPrec {
		return nil, fmt.Errorf("mogul: EMR engine format version %d, this build reads versions %d-%d", version, emrMinReadVersion, emrFormatVersionPrec)
	}

	payloads := map[[4]byte][]byte{}
	bases := map[[4]byte]int64{}
	for {
		var tag [4]byte
		br.Raw(tag[:])
		n := br.Uint64()
		if err := br.Err(); err != nil {
			return nil, fmt.Errorf("mogul: reading section header: %w", err)
		}
		if tag == tagEend {
			if n != 0 {
				return nil, fmt.Errorf("mogul: end marker carries %d payload bytes", n)
			}
			break
		}
		if n > binio.MaxCount {
			return nil, fmt.Errorf("mogul: section %q claims %d bytes", tag[:], n)
		}
		switch tag {
		case tagEmet, tagEanc, tagEpts, tagEhco, tagEgrm:
			if payloads[tag] != nil {
				return nil, fmt.Errorf("mogul: duplicate %q section", tag[:])
			}
			bases[tag] = br.Count()
			payload, err := readShardPayload(br, n)
			if err != nil {
				return nil, fmt.Errorf("mogul: reading %q section: %w", tag[:], err)
			}
			payloads[tag] = payload
		default:
			// A section from a newer writer: skip (the bytes still
			// count toward the checksum), keeping additive evolution
			// open.
			br.Skip(int64(n))
			if err := br.Err(); err != nil {
				return nil, fmt.Errorf("mogul: skipping %q section: %w", tag[:], err)
			}
		}
	}
	want := br.Sum32()
	got := br.Uint32()
	if err := br.Err(); err != nil {
		return nil, fmt.Errorf("mogul: reading checksum: %w", err)
	}
	if got != want {
		return nil, fmt.Errorf("mogul: checksum mismatch (file %08x, computed %08x): EMR engine file is corrupt", got, want)
	}
	for _, tag := range [][4]byte{tagEmet, tagEanc, tagEpts, tagEhco, tagEgrm} {
		if payloads[tag] == nil {
			return nil, fmt.Errorf("mogul: EMR engine file is missing its %q section", tag[:])
		}
	}
	if version >= emrFormatVersionPrec {
		return assembleEMRPrec(payloads, bases)
	}
	return assembleEMR(payloads)
}

// assembleEMR decodes the section payloads and cross-validates every
// shape and value invariant the engine relies on.
func assembleEMR(payloads map[[4]byte][]byte) (*EMRIndex, error) {
	mr := binio.NewReader(bytes.NewReader(payloads[tagEmet]))
	alpha := mr.Float64()
	seed := mr.Int()
	autoCompact := mr.Float64()
	recipeAnchors := mr.Int()
	recipeNearest := mr.Int()
	dim := mr.Int()
	p := mr.Int()
	s := mr.Int()
	baseN := mr.Int()
	n := mr.Int()
	clusterTime := mr.Int()
	factorTime := mr.Int()
	if err := mr.Err(); err != nil {
		return nil, fmt.Errorf("mogul: decoding EMR metadata: %w", err)
	}
	switch {
	case math.IsNaN(alpha) || alpha <= 0 || alpha >= 1:
		return nil, fmt.Errorf("mogul: corrupt EMR metadata: alpha %g", alpha)
	case math.IsNaN(autoCompact) || math.IsInf(autoCompact, 0) || autoCompact < 0:
		return nil, fmt.Errorf("mogul: corrupt EMR metadata: auto-compact fraction %g", autoCompact)
	case dim < 1 || dim > binio.MaxCount:
		return nil, fmt.Errorf("mogul: corrupt EMR metadata: dimension %d", dim)
	case p < 1 || p > binio.MaxCount:
		return nil, fmt.Errorf("mogul: corrupt EMR metadata: %d anchors", p)
	case s < 1 || s > p:
		return nil, fmt.Errorf("mogul: corrupt EMR metadata: %d nearest anchors for %d anchors", s, p)
	case n < 1 || n > binio.MaxCount:
		return nil, fmt.Errorf("mogul: corrupt EMR metadata: %d points", n)
	case baseN < 1 || baseN > n:
		return nil, fmt.Errorf("mogul: corrupt EMR metadata: base size %d of %d points", baseN, n)
	case recipeAnchors < 1 || recipeNearest < 1:
		return nil, fmt.Errorf("mogul: corrupt EMR metadata: anchor recipe %d/%d", recipeAnchors, recipeNearest)
	case clusterTime < 0 || factorTime < 0:
		return nil, fmt.Errorf("mogul: corrupt EMR metadata: negative build timings")
	}

	ar := binio.NewReader(bytes.NewReader(payloads[tagEanc]))
	anchors := make([]Vector, p)
	for a := range anchors {
		v := ar.Floats(binio.MaxCount)
		if err := ar.Err(); err != nil {
			return nil, fmt.Errorf("mogul: decoding anchor %d: %w", a, err)
		}
		if len(v) != dim {
			return nil, fmt.Errorf("mogul: anchor %d has dim %d, want %d", a, len(v), dim)
		}
		for _, x := range v {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return nil, fmt.Errorf("mogul: anchor %d has non-finite component", a)
			}
		}
		anchors[a] = v
	}
	colSum := ar.Floats(binio.MaxCount)
	if err := ar.Err(); err != nil {
		return nil, fmt.Errorf("mogul: decoding column sums: %w", err)
	}
	if len(colSum) != p {
		return nil, fmt.Errorf("mogul: %d column sums for %d anchors", len(colSum), p)
	}
	lambda := make([]float64, p)
	for k, cs := range colSum {
		if math.IsNaN(cs) || math.IsInf(cs, 0) || cs < 0 {
			return nil, fmt.Errorf("mogul: corrupt column sum %g at anchor %d", cs, k)
		}
		if cs > 0 {
			lambda[k] = 1 / cs
		}
	}

	pr := binio.NewReader(bytes.NewReader(payloads[tagEpts]))
	points := make([]Vector, n)
	for i := range points {
		v := pr.Floats(binio.MaxCount)
		if err := pr.Err(); err != nil {
			return nil, fmt.Errorf("mogul: decoding point %d: %w", i, err)
		}
		if len(v) != dim {
			return nil, fmt.Errorf("mogul: point %d has dim %d, want %d", i, len(v), dim)
		}
		for _, x := range v {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return nil, fmt.Errorf("mogul: point %d has non-finite component", i)
			}
		}
		points[i] = v
	}

	hr := binio.NewReader(bytes.NewReader(payloads[tagEhco]))
	cols := hr.Ints(binio.MaxCount)
	hVal := hr.Floats(binio.MaxCount)
	deadIDs := hr.Ints(binio.MaxCount)
	if err := hr.Err(); err != nil {
		return nil, fmt.Errorf("mogul: decoding H columns: %w", err)
	}
	if len(cols) != n*s || len(hVal) != n*s {
		return nil, fmt.Errorf("mogul: H columns carry %d ids / %d values, want %d", len(cols), len(hVal), n*s)
	}
	hAnchor := make([]int32, len(cols))
	for i, a := range cols {
		if a < 0 || a >= p {
			return nil, fmt.Errorf("mogul: H column entry %d names anchor %d outside [0,%d)", i, a, p)
		}
		hAnchor[i] = int32(a)
	}
	for i, v := range hVal {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, fmt.Errorf("mogul: H column entry %d is non-finite", i)
		}
	}
	dead := make([]bool, n)
	deadBase := 0
	prev := -1
	for _, id := range deadIDs {
		if id <= prev || id >= n {
			return nil, fmt.Errorf("mogul: corrupt tombstone list (id %d after %d, %d points)", id, prev, n)
		}
		dead[id] = true
		if id < baseN {
			deadBase++
		}
		prev = id
	}
	if len(deadIDs) >= n {
		return nil, fmt.Errorf("mogul: every item tombstoned")
	}

	gr := binio.NewReader(bytes.NewReader(payloads[tagEgrm]))
	order := gr.Int()
	if err := gr.Err(); err != nil {
		return nil, fmt.Errorf("mogul: decoding gram factor: %w", err)
	}
	if order != p {
		return nil, fmt.Errorf("mogul: gram factor of order %d for %d anchors", order, p)
	}
	luData := gr.Floats(binio.MaxCount)
	pivot := gr.Ints(binio.MaxCount)
	signDet := gr.Float64()
	if err := gr.Err(); err != nil {
		return nil, fmt.Errorf("mogul: decoding gram factor: %w", err)
	}
	if len(luData) != p*p {
		return nil, fmt.Errorf("mogul: gram factor carries %d elements, want %d", len(luData), p*p)
	}
	lu, err := dense.NewLUFromComponents(&dense.Matrix{Data: luData, Rows: p, Cols: p}, pivot, signDet)
	if err != nil {
		return nil, fmt.Errorf("mogul: corrupt gram factor: %w", err)
	}

	e := &EMRIndex{
		alpha:       alpha,
		seed:        int64(seed),
		autoCompact: autoCompact,
		eopts:       EMROptions{NumAnchors: recipeAnchors, NumNearestAnchors: recipeNearest},
		st: &emrState{
			dim:       dim,
			p:         p,
			s:         s,
			anchors:   anchors,
			colSum:    colSum,
			lambda:    lambda,
			points:    points,
			dead:      dead,
			hAnchor:   hAnchor,
			hVal:      hVal,
			deadCount: len(deadIDs),
			deadBase:  deadBase,
			baseN:     baseN,
			gram:      lu,
			stats: Stats{
				NumNodes:    baseN,
				NumClusters: p,
				FactorNNZ:   p * p,
				ClusterTime: time.Duration(clusterTime),
				FactorTime:  time.Duration(factorTime),
			},
		},
	}
	e.version.Store(1)
	return e, nil
}

// LoadEMRFile reads an EMR engine file written by EMRIndex.SaveFile.
func LoadEMRFile(path string) (*EMRIndex, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return LoadEMR(f)
}

// --- Version 2: precision + alignment ---
//
// Version 2 generalizes version 1 the same two ways the core index's
// version 4 does (docs/FORMAT.md): the EMET section additionally
// records a precision flag and an alignment, the stored points become
// ONE flat row-major array, the H columns store int32 anchor ids, and
// — when the engine is mixed-precision — the point matrix and the
// attachment weights are written as float32. When a positive alignment
// is recorded, every large array in the bulk sections starts on that
// boundary, so LoadEMRBytes over an mmap'd image hands out zero-copy
// views. Anchors, column sums, and the gram factor stay float64.

// SaveAligned writes the engine in the version-2 aligned layout: large
// arrays start on align-byte boundaries (use the page size for mmap
// sharing). Works in either precision; align must be a positive power
// of two.
func (e *EMRIndex) SaveAligned(w io.Writer, align int) error {
	if align <= 0 || align&(align-1) != 0 {
		return fmt.Errorf("mogul: alignment %d is not a positive power of two", align)
	}
	e.mutMu.Lock()
	defer e.mutMu.Unlock()
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.savePrecLocked(w, align)
}

// savePrecLocked writes the version-2 container; align == 0 selects
// the packed (unaligned) variant used for plain f32 saves. Callers
// hold mutMu and e.mu.
func (e *EMRIndex) savePrecLocked(w io.Writer, align int) error {
	st := e.st
	buffered := bufio.NewWriterSize(w, 1<<20)
	bw := binio.NewWriter(buffered)
	bw.Raw([]byte(emrMagic))
	bw.Uint32(emrFormatVersionPrec)

	prec := 0
	if st.f32() {
		prec = 1
	}
	writeMeta := func(w io.Writer) error {
		if err := e.writeEMRMeta(w); err != nil {
			return err
		}
		mw := binio.NewWriter(w)
		mw.Int(prec)
		mw.Int(align)
		return mw.Err()
	}
	if err := writeShardSection(bw, tagEmet, writeMeta); err != nil {
		return fmt.Errorf("mogul: writing %q section: %w", tagEmet[:], err)
	}

	sections := []struct {
		tag     [4]byte
		payload func(sw *binio.Writer) error
	}{
		{tagEanc, func(sw *binio.Writer) error {
			for _, c := range st.anchors {
				sw.Floats(c)
			}
			sw.Floats(st.colSum)
			return sw.Err()
		}},
		{tagEpts, func(sw *binio.Writer) error {
			if st.f32() {
				sw.Float32s(st.pts32)
			} else {
				flat := make([]float64, 0, len(st.points)*st.dim)
				for _, pt := range st.points {
					flat = append(flat, pt...)
				}
				sw.Floats(flat)
			}
			return sw.Err()
		}},
		{tagEhco, func(sw *binio.Writer) error {
			sw.Int32s(st.hAnchor)
			if st.f32() {
				sw.Float32s(st.hVal32)
			} else {
				sw.Floats(st.hVal)
			}
			dead := make([]int, 0, st.deadCount)
			for id, d := range st.dead {
				if d {
					dead = append(dead, id)
				}
			}
			sw.Ints(dead)
			return sw.Err()
		}},
		{tagEgrm, func(sw *binio.Writer) error {
			lu, pivot, signDet := st.gram.Components()
			sw.Int(lu.Rows)
			sw.Floats(lu.Data)
			sw.Ints(pivot)
			sw.Float64(signDet)
			return sw.Err()
		}},
	}
	for _, s := range sections {
		if err := writeEMRSectionPrec(bw, s.tag, align, s.payload); err != nil {
			return fmt.Errorf("mogul: writing %q section: %w", s.tag[:], err)
		}
	}
	bw.Raw(tagEend[:])
	bw.Uint64(0)
	bw.Uint32(bw.Sum32())
	if err := bw.Err(); err != nil {
		return err
	}
	return buffered.Flush()
}

// writeEMRSectionPrec frames a payload whose codec needs the
// container's binio.Writer directly plus the absolute base offset of
// its payload, so alignment pads come out identical in the counting
// pass and the real pass (same two-pass protocol as writeShardSection).
func writeEMRSectionPrec(bw *binio.Writer, tag [4]byte, align int, payload func(sw *binio.Writer) error) error {
	base := bw.Count() + 12 // the 4-byte tag and 8-byte length precede the payload
	var count int64
	cw := binio.NewWriter(writerFunc(func(p []byte) (int, error) {
		count += int64(len(p))
		return len(p), nil
	}))
	cw.EnableAlign(align, base)
	if err := payload(cw); err != nil {
		return err
	}
	if err := cw.Err(); err != nil {
		return err
	}
	bw.Raw(tag[:])
	bw.Uint64(uint64(count))
	before := bw.Count()
	sw := binio.NewWriter(writerFunc(func(p []byte) (int, error) {
		bw.Raw(p)
		if err := bw.Err(); err != nil {
			return 0, err
		}
		return len(p), nil
	}))
	sw.EnableAlign(align, base)
	if err := payload(sw); err != nil {
		return err
	}
	if err := sw.Err(); err != nil {
		return err
	}
	if got := bw.Count() - before; got != count {
		return fmt.Errorf("mogul: section produced %d bytes, declared %d", got, count)
	}
	return bw.Err()
}

// LoadEMRBytes parses a complete EMR engine image held in memory —
// typically an mmap'd file (LoadFileMapped) — using zero-copy views
// for the large arrays wherever the layout allows. The returned engine
// aliases data, which must stay valid (mapped) for the engine's
// lifetime. The trailing CRC is NOT verified (hashing the image would
// fault in every page); all structural and index-range validation
// still runs, so corrupt input errors rather than panicking later.
func LoadEMRBytes(data []byte) (*EMRIndex, error) {
	br := binio.NewBytesReader(data)
	var magic [len(emrMagic)]byte
	br.Raw(magic[:])
	if err := br.Err(); err != nil {
		return nil, fmt.Errorf("mogul: reading EMR engine header: %w", err)
	}
	if string(magic[:]) != emrMagic {
		return nil, fmt.Errorf("mogul: not an EMR engine file (magic %q)", magic[:])
	}
	version := br.Uint32()
	if err := br.Err(); err != nil {
		return nil, fmt.Errorf("mogul: reading EMR engine header: %w", err)
	}
	if version < emrMinReadVersion || version > emrFormatVersionPrec {
		return nil, fmt.Errorf("mogul: EMR engine format version %d, this build reads versions %d-%d", version, emrMinReadVersion, emrFormatVersionPrec)
	}

	payloads := map[[4]byte][]byte{}
	bases := map[[4]byte]int64{}
	for {
		var tag [4]byte
		br.Raw(tag[:])
		n := br.Uint64()
		if err := br.Err(); err != nil {
			return nil, fmt.Errorf("mogul: reading section header: %w", err)
		}
		if tag == tagEend {
			if n != 0 {
				return nil, fmt.Errorf("mogul: end marker carries %d payload bytes", n)
			}
			break
		}
		if n > binio.MaxCount {
			return nil, fmt.Errorf("mogul: section %q claims %d bytes", tag[:], n)
		}
		base := br.Count()
		payload := br.View(int(n))
		if err := br.Err(); err != nil {
			return nil, fmt.Errorf("mogul: reading %q section: %w", tag[:], err)
		}
		switch tag {
		case tagEmet, tagEanc, tagEpts, tagEhco, tagEgrm:
			if payloads[tag] != nil {
				return nil, fmt.Errorf("mogul: duplicate %q section", tag[:])
			}
			payloads[tag] = payload
			bases[tag] = base
		default:
			// Unknown section from a newer writer: View already advanced
			// past it.
		}
	}
	// The trailing checksum must at least be present, so a file cut
	// right after the end marker still errors.
	br.Uint32()
	if err := br.Err(); err != nil {
		return nil, fmt.Errorf("mogul: reading checksum: %w", err)
	}
	for _, tag := range [][4]byte{tagEmet, tagEanc, tagEpts, tagEhco, tagEgrm} {
		if payloads[tag] == nil {
			return nil, fmt.Errorf("mogul: EMR engine file is missing its %q section", tag[:])
		}
	}
	if version >= emrFormatVersionPrec {
		return assembleEMRPrec(payloads, bases)
	}
	return assembleEMR(payloads)
}

// assembleEMRPrec decodes a version-2 section set. The big arrays come
// out as views into the payload bytes (zero-copy when the image is
// aligned and the host is little-endian, copied otherwise); unlike the
// version-1 path, the per-element finiteness scans over the point
// matrix and the attachment weights are skipped — a NaN there degrades
// a score but can never panic, and scanning would fault in every page
// of a mapped image.
func assembleEMRPrec(payloads map[[4]byte][]byte, bases map[[4]byte]int64) (*EMRIndex, error) {
	mr := binio.NewBytesReader(payloads[tagEmet])
	alpha := mr.Float64()
	seed := mr.Int()
	autoCompact := mr.Float64()
	recipeAnchors := mr.Int()
	recipeNearest := mr.Int()
	dim := mr.Int()
	p := mr.Int()
	s := mr.Int()
	baseN := mr.Int()
	n := mr.Int()
	clusterTime := mr.Int()
	factorTime := mr.Int()
	prec := mr.Int()
	align := mr.Int()
	if err := mr.Err(); err != nil {
		return nil, fmt.Errorf("mogul: decoding EMR metadata: %w", err)
	}
	switch {
	case math.IsNaN(alpha) || alpha <= 0 || alpha >= 1:
		return nil, fmt.Errorf("mogul: corrupt EMR metadata: alpha %g", alpha)
	case math.IsNaN(autoCompact) || math.IsInf(autoCompact, 0) || autoCompact < 0:
		return nil, fmt.Errorf("mogul: corrupt EMR metadata: auto-compact fraction %g", autoCompact)
	case dim < 1 || dim > binio.MaxCount:
		return nil, fmt.Errorf("mogul: corrupt EMR metadata: dimension %d", dim)
	case p < 1 || p > binio.MaxCount:
		return nil, fmt.Errorf("mogul: corrupt EMR metadata: %d anchors", p)
	case s < 1 || s > p:
		return nil, fmt.Errorf("mogul: corrupt EMR metadata: %d nearest anchors for %d anchors", s, p)
	case n < 1 || n > binio.MaxCount:
		return nil, fmt.Errorf("mogul: corrupt EMR metadata: %d points", n)
	case n > binio.MaxCount/dim:
		return nil, fmt.Errorf("mogul: corrupt EMR metadata: %d points of dim %d", n, dim)
	case baseN < 1 || baseN > n:
		return nil, fmt.Errorf("mogul: corrupt EMR metadata: base size %d of %d points", baseN, n)
	case recipeAnchors < 1 || recipeNearest < 1:
		return nil, fmt.Errorf("mogul: corrupt EMR metadata: anchor recipe %d/%d", recipeAnchors, recipeNearest)
	case clusterTime < 0 || factorTime < 0:
		return nil, fmt.Errorf("mogul: corrupt EMR metadata: negative build timings")
	case prec != 0 && prec != 1:
		return nil, fmt.Errorf("mogul: corrupt EMR metadata: precision flag %d", prec)
	case align < 0 || align > binio.MaxCount || (align != 0 && align&(align-1) != 0):
		return nil, fmt.Errorf("mogul: corrupt EMR metadata: alignment %d", align)
	}
	f32 := prec == 1

	ar := binio.NewBytesReader(payloads[tagEanc])
	ar.EnableAlign(align, bases[tagEanc])
	anchors := make([]Vector, p)
	for a := range anchors {
		v := ar.Floats(binio.MaxCount)
		if err := ar.Err(); err != nil {
			return nil, fmt.Errorf("mogul: decoding anchor %d: %w", a, err)
		}
		if len(v) != dim {
			return nil, fmt.Errorf("mogul: anchor %d has dim %d, want %d", a, len(v), dim)
		}
		for _, x := range v {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return nil, fmt.Errorf("mogul: anchor %d has non-finite component", a)
			}
		}
		anchors[a] = v
	}
	colSum := ar.Floats(binio.MaxCount)
	if err := ar.Err(); err != nil {
		return nil, fmt.Errorf("mogul: decoding column sums: %w", err)
	}
	if len(colSum) != p {
		return nil, fmt.Errorf("mogul: %d column sums for %d anchors", len(colSum), p)
	}
	lambda := make([]float64, p)
	for k, cs := range colSum {
		if math.IsNaN(cs) || math.IsInf(cs, 0) || cs < 0 {
			return nil, fmt.Errorf("mogul: corrupt column sum %g at anchor %d", cs, k)
		}
		if cs > 0 {
			lambda[k] = 1 / cs
		}
	}

	pr := binio.NewBytesReader(payloads[tagEpts])
	pr.EnableAlign(align, bases[tagEpts])
	var points []Vector
	var pts32 []float32
	if f32 {
		pts32 = pr.Float32sView(binio.MaxCount)
		if err := pr.Err(); err != nil {
			return nil, fmt.Errorf("mogul: decoding point matrix: %w", err)
		}
		if len(pts32) != n*dim {
			return nil, fmt.Errorf("mogul: point matrix carries %d values, want %d", len(pts32), n*dim)
		}
	} else {
		flat := pr.FloatsView(binio.MaxCount)
		if err := pr.Err(); err != nil {
			return nil, fmt.Errorf("mogul: decoding point matrix: %w", err)
		}
		if len(flat) != n*dim {
			return nil, fmt.Errorf("mogul: point matrix carries %d values, want %d", len(flat), n*dim)
		}
		points = make([]Vector, n)
		for i := range points {
			points[i] = Vector(flat[i*dim : (i+1)*dim : (i+1)*dim])
		}
	}

	hr := binio.NewBytesReader(payloads[tagEhco])
	hr.EnableAlign(align, bases[tagEhco])
	hAnchor := hr.Int32sView(binio.MaxCount)
	var hVal []float64
	var hVal32 []float32
	var hLen int
	if f32 {
		hVal32 = hr.Float32sView(binio.MaxCount)
		hLen = len(hVal32)
	} else {
		hVal = hr.FloatsView(binio.MaxCount)
		hLen = len(hVal)
	}
	deadIDs := hr.Ints(binio.MaxCount)
	if err := hr.Err(); err != nil {
		return nil, fmt.Errorf("mogul: decoding H columns: %w", err)
	}
	if len(hAnchor) != n*s || hLen != n*s {
		return nil, fmt.Errorf("mogul: H columns carry %d ids / %d values, want %d", len(hAnchor), hLen, n*s)
	}
	for i, a := range hAnchor {
		if a < 0 || int(a) >= p {
			return nil, fmt.Errorf("mogul: H column entry %d names anchor %d outside [0,%d)", i, a, p)
		}
	}
	dead := make([]bool, n)
	deadBase := 0
	prev := -1
	for _, id := range deadIDs {
		if id <= prev || id >= n {
			return nil, fmt.Errorf("mogul: corrupt tombstone list (id %d after %d, %d points)", id, prev, n)
		}
		dead[id] = true
		if id < baseN {
			deadBase++
		}
		prev = id
	}
	if len(deadIDs) >= n {
		return nil, fmt.Errorf("mogul: every item tombstoned")
	}

	gr := binio.NewBytesReader(payloads[tagEgrm])
	gr.EnableAlign(align, bases[tagEgrm])
	order := gr.Int()
	if err := gr.Err(); err != nil {
		return nil, fmt.Errorf("mogul: decoding gram factor: %w", err)
	}
	if order != p {
		return nil, fmt.Errorf("mogul: gram factor of order %d for %d anchors", order, p)
	}
	luData := gr.FloatsView(binio.MaxCount)
	pivot := gr.Ints(binio.MaxCount)
	signDet := gr.Float64()
	if err := gr.Err(); err != nil {
		return nil, fmt.Errorf("mogul: decoding gram factor: %w", err)
	}
	if len(luData) != p*p {
		return nil, fmt.Errorf("mogul: gram factor carries %d elements, want %d", len(luData), p*p)
	}
	lu, err := dense.NewLUFromComponents(&dense.Matrix{Data: luData, Rows: p, Cols: p}, pivot, signDet)
	if err != nil {
		return nil, fmt.Errorf("mogul: corrupt gram factor: %w", err)
	}

	e := &EMRIndex{
		alpha:       alpha,
		seed:        int64(seed),
		autoCompact: autoCompact,
		eopts:       EMROptions{NumAnchors: recipeAnchors, NumNearestAnchors: recipeNearest},
		st: &emrState{
			dim:       dim,
			p:         p,
			s:         s,
			anchors:   anchors,
			colSum:    colSum,
			lambda:    lambda,
			points:    points,
			pts32:     pts32,
			dead:      dead,
			hAnchor:   hAnchor,
			hVal:      hVal,
			hVal32:    hVal32,
			deadCount: len(deadIDs),
			deadBase:  deadBase,
			baseN:     baseN,
			gram:      lu,
			stats: Stats{
				NumNodes:    baseN,
				NumClusters: p,
				FactorNNZ:   p * p,
				ClusterTime: time.Duration(clusterTime),
				FactorTime:  time.Duration(factorTime),
			},
		},
	}
	e.version.Store(1)
	return e, nil
}
