package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"mogul"
)

// ClientOptions tunes one remote-shard client. The zero value is
// production-sane: 5s per-request timeout, 2 retries on idempotent
// reads with 50ms exponential backoff, a shared keep-alive transport.
type ClientOptions struct {
	// Timeout bounds each HTTP attempt (not the whole retry loop);
	// default 5s.
	Timeout time.Duration
	// Retries is the number of EXTRA attempts for idempotent reads
	// after the first fails with a retryable error (5xx, 429, timeout,
	// transport error); default 2. Mutations never retry regardless —
	// an Insert whose response was lost may have landed, and retrying
	// would apply it twice.
	Retries int
	// Backoff is the first retry's delay, doubling per attempt;
	// default 50ms. The wait respects context cancellation.
	Backoff time.Duration
	// Transport overrides the HTTP transport (the fault-injection
	// harness hooks in here); nil uses a dedicated keep-alive
	// transport per client.
	Transport http.RoundTripper
}

func (o ClientOptions) withDefaults() ClientOptions {
	if o.Timeout <= 0 {
		o.Timeout = 5 * time.Second
	}
	if o.Retries < 0 {
		o.Retries = 0
	} else if o.Retries == 0 {
		o.Retries = 2
	}
	if o.Backoff <= 0 {
		o.Backoff = 50 * time.Millisecond
	}
	return o
}

// Client speaks to one ShardServer and implements mogul.Retriever —
// a remote shard drops into any code written against the interface,
// the Coordinator included — plus the context-taking calls the
// distributed fan-out needs (OwnerSearch, VectorSearch, SetSearch,
// LogEntries, Snapshot, AliveMap).
//
// Interface methods that cannot return an error (Len, Stats, Delta,
// Version, Exact) report zero values when the shard is unreachable;
// Version's zero is unambiguous because live versions start at 1.
type Client struct {
	base string
	hc   *http.Client
	opts ClientOptions
}

// NewClient builds a client for the ShardServer at base (e.g.
// "http://10.0.0.7:7601"). Connections are pooled and reused across
// requests; call CloseIdleConnections when discarding the client.
func NewClient(base string, opts ClientOptions) *Client {
	o := opts.withDefaults()
	tr := o.Transport
	if tr == nil {
		tr = &http.Transport{MaxIdleConnsPerHost: 16}
	}
	return &Client{
		base: base,
		hc:   &http.Client{Transport: tr},
		opts: o,
	}
}

// Base returns the server URL this client targets.
func (c *Client) Base() string { return c.base }

// CloseIdleConnections drops pooled keep-alive connections.
func (c *Client) CloseIdleConnections() { c.hc.CloseIdleConnections() }

// errGone marks a 410 response (log truncated past the cursor).
var errGone = errors.New("dist: gone")

// httpError is a non-2xx response with the server's decoded message.
type httpError struct {
	status int
	msg    string
}

func (e *httpError) Error() string {
	return fmt.Sprintf("dist: server returned %d: %s", e.status, e.msg)
}

// retryable reports whether an attempt's failure may be transient:
// transport errors and timeouts (the response never arrived), 5xx
// (the server failed), and 429 (the server shed load and asked for a
// retry). 4xx other than 429 is a permanent request defect.
func retryable(err error) bool {
	var he *httpError
	if errors.As(err, &he) {
		return he.status >= 500 || he.status == http.StatusTooManyRequests
	}
	return !errors.Is(err, errGone)
}

// do runs one request against the shard, retrying per the policy when
// idempotent. It returns the response body and headers on 2xx.
func (c *Client) do(ctx context.Context, method, path string, body []byte, idempotent bool) ([]byte, http.Header, error) {
	attempts := 1
	if idempotent {
		attempts += c.opts.Retries
	}
	var lastErr error
	for attempt := 0; attempt < attempts; attempt++ {
		if attempt > 0 {
			// Exponential backoff before each retry, abandoned the
			// moment the caller's context ends — a cancelled fan-out
			// must not keep a goroutine sleeping toward a dead shard.
			delay := c.opts.Backoff << (attempt - 1)
			select {
			case <-time.After(delay):
			case <-ctx.Done():
				return nil, nil, ctx.Err()
			}
		}
		data, hdr, err := c.attempt(ctx, method, path, body)
		if err == nil {
			return data, hdr, nil
		}
		lastErr = err
		if ctx.Err() != nil {
			return nil, nil, ctx.Err()
		}
		if !idempotent || !retryable(err) {
			break
		}
	}
	return nil, nil, lastErr
}

// attempt is one HTTP round trip under the per-request timeout.
func (c *Client) attempt(ctx context.Context, method, path string, body []byte) ([]byte, http.Header, error) {
	rctx, cancel := context.WithTimeout(ctx, c.opts.Timeout)
	defer cancel()
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(rctx, method, c.base+path, rd)
	if err != nil {
		return nil, nil, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		// A mid-body reset: the response is unusable even on 200.
		return nil, nil, fmt.Errorf("dist: reading response body: %w", err)
	}
	if resp.StatusCode/100 != 2 {
		msg := decodeErrorBody(data)
		if resp.StatusCode == http.StatusGone {
			return nil, nil, fmt.Errorf("%w: %s", errGone, msg)
		}
		return nil, nil, &httpError{status: resp.StatusCode, msg: msg}
	}
	return data, resp.Header, nil
}

// decodeErrorBody extracts {"error": msg}; raw body as fallback.
func decodeErrorBody(data []byte) string {
	var e struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(data, &e) == nil && e.Error != "" {
		return e.Error
	}
	return string(bytes.TrimSpace(data))
}

// getJSON runs an idempotent GET and decodes the JSON response.
func (c *Client) getJSON(ctx context.Context, path string, out interface{}) error {
	data, _, err := c.do(ctx, http.MethodGet, path, nil, true)
	if err != nil {
		return err
	}
	return json.Unmarshal(data, out)
}

// postJSON runs a POST carrying a JSON body; idempotent selects the
// read retry policy (a vector search is a read that happens to POST).
func (c *Client) postJSON(ctx context.Context, path string, in, out interface{}, idempotent bool) error {
	body, err := json.Marshal(in)
	if err != nil {
		return err
	}
	data, _, err := c.do(ctx, http.MethodPost, path, body, idempotent)
	if err != nil {
		return err
	}
	if out == nil {
		return nil
	}
	return json.Unmarshal(data, out)
}

// --- the /dist fan-out surface (context-taking) ---

// InfoCtx fetches the shard's state snapshot.
func (c *Client) InfoCtx(ctx context.Context) (Info, error) {
	var info Info
	err := c.getJSON(ctx, "/dist/info", &info)
	return info, err
}

// OwnerSearch runs the in-database owner-shard half of a distributed
// TopK: the shard-local ranking plus the query item's vector and the
// owning shard's affinity to it.
func (c *Client) OwnerSearch(ctx context.Context, local, k int) ([]mogul.Result, mogul.Vector, float64, error) {
	var resp ownerResponse
	path := "/dist/owner?id=" + strconv.Itoa(local) + "&k=" + strconv.Itoa(k)
	if err := c.getJSON(ctx, path, &resp); err != nil {
		return nil, nil, 0, err
	}
	return fromWire(resp.Answers), resp.Vector, resp.Affinity, nil
}

// VectorSearch probes the shard out-of-sample, returning the local
// ranking and the shard's raw kernel affinity to the query.
func (c *Client) VectorSearch(ctx context.Context, q mogul.Vector, k int) ([]mogul.Result, float64, error) {
	var resp vectorResponse
	req := struct {
		Vector []float64 `json:"vector"`
		K      int       `json:"k"`
	}{q, k}
	if err := c.postJSON(ctx, "/dist/vector", req, &resp, true); err != nil {
		return nil, 0, err
	}
	return fromWire(resp.Answers), resp.Affinity, nil
}

// SetSearch runs a weighted multi-seed search over shard-local ids.
func (c *Client) SetSearch(ctx context.Context, locals []int, weight float64, k int) ([]mogul.Result, error) {
	var resp vectorResponse
	req := struct {
		IDs    []int   `json:"ids"`
		Weight float64 `json:"weight"`
		K      int     `json:"k"`
	}{locals, weight, k}
	if err := c.postJSON(ctx, "/dist/set", req, &resp, true); err != nil {
		return nil, err
	}
	return fromWire(resp.Answers), nil
}

// NeighborsCtx fetches an item's graph context with cancellation.
func (c *Client) NeighborsCtx(ctx context.Context, local int) ([]int, []float64, error) {
	var resp struct {
		Neighbors []int     `json:"neighbors"`
		Weights   []float64 `json:"neighbor_weights"`
	}
	if err := c.getJSON(ctx, "/item/"+strconv.Itoa(local), &resp); err != nil {
		return nil, nil, err
	}
	return resp.Neighbors, resp.Weights, nil
}

// InsertCtx routes one insert to the shard; never retried.
func (c *Client) InsertCtx(ctx context.Context, v mogul.Vector) (int, error) {
	var resp struct {
		ID int `json:"id"`
	}
	req := struct {
		Vector []float64 `json:"vector"`
	}{v}
	if err := c.postJSON(ctx, "/insert", req, &resp, false); err != nil {
		return 0, err
	}
	return resp.ID, nil
}

// DeleteCtx routes one delete to the shard; never retried.
func (c *Client) DeleteCtx(ctx context.Context, local int) error {
	req := struct {
		ID int `json:"id"`
	}{local}
	return c.postJSON(ctx, "/delete", req, nil, false)
}

// CompactCtx folds the shard's delta layer in; never retried.
func (c *Client) CompactCtx(ctx context.Context) error {
	return c.postJSON(ctx, "/compact", struct{}{}, nil, false)
}

// AliveMap snapshots the shard's liveness: the id space size and the
// dead local ids — what a coordinator needs to renumber its maps
// around a compaction.
func (c *Client) AliveMap(ctx context.Context) (space int, dead []int, err error) {
	var resp struct {
		IDSpace int   `json:"id_space"`
		Dead    []int `json:"dead"`
	}
	if err := c.getJSON(ctx, "/dist/alive", &resp); err != nil {
		return 0, nil, err
	}
	return resp.IDSpace, resp.Dead, nil
}

// LogEntries tails the shard's replication log past the cursor. The
// second return mirrors mogul.Index.EntriesSince: false means the log
// was truncated past the cursor (the server answered 410) and the
// follower must bootstrap from Snapshot.
func (c *Client) LogEntries(ctx context.Context, since uint64) ([]mogul.LogEntry, bool, error) {
	data, _, err := c.do(ctx, http.MethodGet, "/dist/log?since="+strconv.FormatUint(since, 10), nil, true)
	if err != nil {
		if errors.Is(err, errGone) {
			return nil, false, nil
		}
		return nil, false, err
	}
	entries, err := mogul.ReadLogEntries(bytes.NewReader(data))
	if err != nil {
		return nil, false, err
	}
	return entries, true, nil
}

// TruncateLog acknowledges entries through upTo so the shard can drop
// them.
func (c *Client) TruncateLog(ctx context.Context, upTo uint64) error {
	req := struct {
		UpTo uint64 `json:"up_to"`
	}{upTo}
	return c.postJSON(ctx, "/dist/truncate", req, nil, false)
}

// Snapshot fetches a consistent (index, version) pair: the returned
// version is exactly the state the stream serializes, so a follower
// loading it resumes the log at that cursor.
func (c *Client) Snapshot(ctx context.Context) (*mogul.Index, uint64, error) {
	data, hdr, err := c.do(ctx, http.MethodGet, "/dist/snapshot", nil, true)
	if err != nil {
		return nil, 0, err
	}
	ver, err := strconv.ParseUint(hdr.Get(versionHeader), 10, 64)
	if err != nil {
		return nil, 0, fmt.Errorf("dist: snapshot missing %s header", versionHeader)
	}
	ret, err := mogul.Load(bytes.NewReader(data))
	if err != nil {
		return nil, 0, err
	}
	ix, ok := ret.(*mogul.Index)
	if !ok {
		return nil, 0, fmt.Errorf("dist: snapshot is not a plain index (%T)", ret)
	}
	return ix, ver, nil
}

// --- the mogul.Retriever surface ---

var _ mogul.Retriever = (*Client)(nil)

func (c *Client) ctx() context.Context { return context.Background() }

// Len returns the shard's live item count (0 when unreachable).
func (c *Client) Len() int {
	info, err := c.InfoCtx(c.ctx())
	if err != nil {
		return 0
	}
	return info.Items
}

// Exact reports whether the shard serves exact scores (false when
// unreachable).
func (c *Client) Exact() bool {
	info, err := c.InfoCtx(c.ctx())
	return err == nil && info.Exact
}

// Stats returns the shard's construction statistics (zero when
// unreachable).
func (c *Client) Stats() mogul.Stats {
	info, err := c.InfoCtx(c.ctx())
	if err != nil {
		return mogul.Stats{}
	}
	return info.Stats
}

// Delta returns the shard's dynamic state (zero when unreachable).
func (c *Client) Delta() mogul.DeltaStats {
	info, err := c.InfoCtx(c.ctx())
	if err != nil {
		return mogul.DeltaStats{}
	}
	return info.Delta
}

// Version returns the shard's mutation version, or 0 when the shard
// is unreachable (live versions start at 1).
func (c *Client) Version() uint64 {
	info, err := c.InfoCtx(c.ctx())
	if err != nil {
		return 0
	}
	return info.Version
}

// searchResponse mirrors the serve layer's response envelope.
type searchResponse struct {
	Answers []wireResult `json:"answers"`
	Pruned  int          `json:"clusters_pruned"`
	Scanned int          `json:"clusters_scanned"`
	Scores  int          `json:"scores_computed"`
}

// TopK runs an in-database query on the remote shard.
func (c *Client) TopK(query, k int) ([]mogul.Result, error) {
	res, _, err := c.TopKWithInfo(query, k)
	return res, err
}

// TopKWithInfo is TopK plus the shard's work counters.
func (c *Client) TopKWithInfo(query, k int) ([]mogul.Result, *mogul.SearchInfo, error) {
	var resp searchResponse
	path := "/search?id=" + strconv.Itoa(query) + "&k=" + strconv.Itoa(k)
	if err := c.getJSON(c.ctx(), path, &resp); err != nil {
		return nil, nil, err
	}
	return fromWire(resp.Answers), &mogul.SearchInfo{
		ClustersPruned:  resp.Pruned,
		ClustersScanned: resp.Scanned,
		ScoresComputed:  resp.Scores,
	}, nil
}

// TopKVector runs an out-of-sample query on the remote shard.
func (c *Client) TopKVector(q mogul.Vector, k int) ([]mogul.Result, error) {
	res, _, err := c.VectorSearch(c.ctx(), q, k)
	return res, err
}

// TopKSet runs an equal-weight multi-seed query on the remote shard.
func (c *Client) TopKSet(seeds []int, k int) ([]mogul.Result, error) {
	var resp searchResponse
	req := struct {
		IDs []int `json:"ids"`
		K   int   `json:"k"`
	}{seeds, k}
	if err := c.postJSON(c.ctx(), "/search/set", req, &resp, true); err != nil {
		return nil, err
	}
	return fromWire(resp.Answers), nil
}

// TopKBatch answers many in-database queries in one request.
func (c *Client) TopKBatch(queries []int, k, parallelism int) []mogul.BatchResult {
	out := make([]mogul.BatchResult, len(queries))
	var resp struct {
		Results []struct {
			Query   int          `json:"query"`
			Answers []wireResult `json:"answers"`
			Error   string       `json:"error"`
		} `json:"results"`
	}
	req := struct {
		IDs []int `json:"ids"`
		K   int   `json:"k"`
	}{queries, k}
	err := c.postJSON(c.ctx(), "/search/batch", req, &resp, true)
	if err != nil || len(resp.Results) != len(queries) {
		if err == nil {
			err = fmt.Errorf("dist: batch answered %d of %d queries", len(resp.Results), len(queries))
		}
		for i, q := range queries {
			out[i] = mogul.BatchResult{Query: q, Err: err}
		}
		return out
	}
	for i, br := range resp.Results {
		out[i] = mogul.BatchResult{Query: br.Query}
		if br.Error != "" {
			out[i].Err = errors.New(br.Error)
			continue
		}
		out[i].Results = fromWire(br.Answers)
	}
	return out
}

// TopKVectorBatch answers many out-of-sample queries, fanning the
// individual requests out client-side so the server's micro-batcher
// can coalesce them.
func (c *Client) TopKVectorBatch(queries []mogul.Vector, k, parallelism int) []mogul.BatchResult {
	out := make([]mogul.BatchResult, len(queries))
	if parallelism <= 0 {
		parallelism = 8
	}
	if parallelism > len(queries) {
		parallelism = len(queries)
	}
	next := make(chan int)
	done := make(chan struct{})
	for w := 0; w < parallelism; w++ {
		go func() {
			for i := range next {
				res, err := c.TopKVector(queries[i], k)
				out[i] = mogul.BatchResult{Query: i, Results: res, Err: err}
			}
			done <- struct{}{}
		}()
	}
	for i := range queries {
		next <- i
	}
	close(next)
	for w := 0; w < parallelism; w++ {
		<-done
	}
	return out
}

// Neighbors fetches an item's graph context from the remote shard.
func (c *Client) Neighbors(item int) (ids []int, weights []float64, err error) {
	return c.NeighborsCtx(c.ctx(), item)
}

// Insert routes one insert to the remote shard (never retried).
func (c *Client) Insert(v mogul.Vector) (int, error) { return c.InsertCtx(c.ctx(), v) }

// Delete routes one delete to the remote shard (never retried).
func (c *Client) Delete(id int) error { return c.DeleteCtx(c.ctx(), id) }

// Compact folds the remote shard's delta in (never retried).
func (c *Client) Compact() error { return c.CompactCtx(c.ctx()) }

// Save streams the remote shard's snapshot to w.
func (c *Client) Save(w io.Writer) error {
	data, _, err := c.do(c.ctx(), http.MethodGet, "/dist/snapshot", nil, true)
	if err != nil {
		return err
	}
	_, err = w.Write(data)
	return err
}

// SaveFile writes the remote shard's snapshot to a local file.
func (c *Client) SaveFile(path string) error {
	return mogul.SaveFileFunc(path, c.Save)
}

// clientQuerier adapts the client to the Querier surface: the client
// holds no per-query scratch (the server side pools those), so the
// querier simply delegates.
type clientQuerier struct{ c *Client }

func (q clientQuerier) TopK(query, k int) ([]mogul.Result, error) { return q.c.TopK(query, k) }
func (q clientQuerier) TopKWithInfo(query, k int) ([]mogul.Result, *mogul.SearchInfo, error) {
	return q.c.TopKWithInfo(query, k)
}
func (q clientQuerier) TopKVector(v mogul.Vector, k int) ([]mogul.Result, error) {
	return q.c.TopKVector(v, k)
}
func (q clientQuerier) TopKSet(seeds []int, k int) ([]mogul.Result, error) {
	return q.c.TopKSet(seeds, k)
}

// NewQuerier returns a Querier delegating to the client (all scratch
// pooling happens server-side).
func (c *Client) NewQuerier() mogul.Querier { return clientQuerier{c} }
