package dist

import (
	"context"
	"errors"
	"fmt"
	"time"

	"mogul"
)

// LogSource is where a follower tails a primary's mutation log from —
// a *Client against the primary's shard server, or the primary
// *mogul.Index itself in tests (see indexSource).
type LogSource interface {
	// LogEntries returns the entries logged after the cursor, oldest
	// first. ok=false means the log was truncated past the cursor and
	// the follower must bootstrap from a snapshot.
	LogEntries(ctx context.Context, since uint64) ([]mogul.LogEntry, bool, error)
}

// indexSource adapts an in-process primary to LogSource.
type indexSource struct{ ix *mogul.Index }

func (s indexSource) LogEntries(ctx context.Context, since uint64) ([]mogul.LogEntry, bool, error) {
	if err := ctx.Err(); err != nil {
		return nil, false, err
	}
	entries, ok := s.ix.EntriesSince(since)
	return entries, ok, nil
}

// IndexSource wraps an in-process primary index as a LogSource.
func IndexSource(ix *mogul.Index) LogSource { return indexSource{ix} }

// ErrLogTruncated reports that the primary's log no longer reaches
// back to the follower's cursor: the follower fell too far behind (or
// the primary restarted from a snapshot) and must re-bootstrap from a
// fresh snapshot (Client.Snapshot + NewReplicatorAt).
var ErrLogTruncated = errors.New("dist: primary log truncated past the follower's cursor")

// Replicator converges a follower index onto a primary by tailing the
// primary's Insert/Delete/Compact delta log. Because the whole build
// pipeline is deterministic, replaying the primary's mutations in log
// order reproduces the primary's state bit for bit: after CatchUp the
// follower ranks identically to the primary at the same version.
//
// The cursor is the primary's Version() stamp of the last applied
// entry. The follower's own Version() generally differs (a follower
// bootstrapped from a snapshot restarts at 1), so the replicator
// tracks the cursor separately and maintains the constant offset
// between the two counters; the offset is also what lets it verify
// id parity on replayed inserts.
type Replicator struct {
	src      LogSource
	follower *mogul.Index

	// cursor is the primary Version() through which the follower is
	// converged.
	cursor uint64
	// offset is primaryVersion − followerVersion, constant across
	// replay because every logged mutation bumps both counters by one
	// (a replayed no-op Compact logs on the primary only when it
	// actually compacted, in which case it compacts on the follower
	// too — see apply).
	offset uint64
}

// NewReplicator tails src into follower, assuming the follower is a
// bit-identical copy of the primary as of the primary version cursor
// — e.g. both were just built from the same points (cursor = 1), or
// the follower loaded a snapshot taken at that version.
func NewReplicator(src LogSource, follower *mogul.Index, cursor uint64) *Replicator {
	return &Replicator{
		src:      src,
		follower: follower,
		cursor:   cursor,
		offset:   cursor - follower.Version(),
	}
}

// Bootstrap fetches a consistent snapshot from the primary's shard
// server and returns a replicator converged through the snapshot's
// version — the recovery path after ErrLogTruncated.
func Bootstrap(ctx context.Context, c *Client) (*Replicator, *mogul.Index, error) {
	ix, ver, err := c.Snapshot(ctx)
	if err != nil {
		return nil, nil, err
	}
	return NewReplicator(c, ix, ver), ix, nil
}

// Cursor returns the primary Version() the follower is converged
// through.
func (r *Replicator) Cursor() uint64 { return r.cursor }

// Follower returns the index being converged.
func (r *Replicator) Follower() *mogul.Index { return r.follower }

// CatchUp drains the primary's log until the follower is fully caught
// up, returning the number of entries applied. ErrLogTruncated means
// the follower must re-bootstrap from a snapshot.
func (r *Replicator) CatchUp(ctx context.Context) (int, error) {
	applied := 0
	for {
		entries, ok, err := r.src.LogEntries(ctx, r.cursor)
		if err != nil {
			return applied, err
		}
		if !ok {
			return applied, fmt.Errorf("%w (cursor %d)", ErrLogTruncated, r.cursor)
		}
		if len(entries) == 0 {
			return applied, nil
		}
		for _, e := range entries {
			if err := r.apply(e); err != nil {
				return applied, err
			}
			applied++
		}
	}
}

// Run tails the log until ctx ends, polling at interval; transient
// source errors are retried on the next tick. ErrLogTruncated stops
// the loop — the follower needs a snapshot, not more polling.
func (r *Replicator) Run(ctx context.Context, interval time.Duration) error {
	if interval <= 0 {
		interval = 100 * time.Millisecond
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		if _, err := r.CatchUp(ctx); err != nil {
			if errors.Is(err, ErrLogTruncated) || ctx.Err() != nil {
				return err
			}
			// Transient (shard unreachable mid-poll): retry next tick.
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-ticker.C:
		}
	}
}

// apply replays one primary log entry onto the follower.
//
// Insert id parity: the primary logs the id its insert returned
// *before* any auto-compaction renumbering, inside the same lock that
// stamped the version — so whenever the follower's version aligns
// with the entry's (entry.Version − offset == followerVersion + 1 at
// apply time), the follower's insert must hand back the same id. The
// follower mirrors the primary's auto-compaction decision (same
// option, same state), so the counters stay locked in step: a
// primary-side auto-compact appears in the log as an OpCompact whose
// replay compacts the follower too.
func (r *Replicator) apply(e mogul.LogEntry) error {
	if e.Version <= r.cursor {
		return nil // already applied (an overlapping tail)
	}
	if e.Version != r.cursor+1 {
		return fmt.Errorf("dist: log gap: cursor %d, next entry version %d", r.cursor, e.Version)
	}
	expectFollower := e.Version - r.offset
	switch e.Op {
	case mogul.OpInsert:
		id, err := r.follower.Insert(e.Vector)
		if err != nil {
			return fmt.Errorf("dist: replaying insert (primary version %d): %w", e.Version, err)
		}
		if r.follower.Version() == expectFollower && id != e.ID {
			return fmt.Errorf("dist: replay diverged: insert at primary version %d returned id %d on the follower, primary logged %d", e.Version, id, e.ID)
		}
	case mogul.OpDelete:
		if err := r.follower.Delete(e.ID); err != nil {
			return fmt.Errorf("dist: replaying delete of %d (primary version %d): %w", e.ID, e.Version, err)
		}
	case mogul.OpCompact:
		if err := r.follower.Compact(); err != nil {
			return fmt.Errorf("dist: replaying compact (primary version %d): %w", e.Version, err)
		}
	default:
		return fmt.Errorf("dist: unknown log op %d at primary version %d", e.Op, e.Version)
	}
	r.cursor = e.Version
	// After a replayed insert the follower may sit one version ahead:
	// its own auto-compaction fired, and the primary's matching
	// OpCompact (the next log entry) replays as a version-neutral
	// no-op, re-aligning the counters. Anything else is divergence.
	got := r.follower.Version()
	if got != expectFollower && !(e.Op == mogul.OpInsert && got == expectFollower+1) {
		return fmt.Errorf("dist: replay diverged: follower at version %d after primary version %d (expected %d)", got, e.Version, expectFollower)
	}
	return nil
}
