package dist_test

// Distributed fan-out benchmarks over a loopback cluster: what one
// coordinated TopK costs once HTTP, JSON, and the merge are in the
// path, against the in-process ShardedIndex doing the same fan-out
// without a network. CI's distributed-smoke job records these as
// BENCH_distributed.json.

import (
	"testing"
	"time"

	"mogul"
	"mogul/dist"
	"mogul/dist/disttest"
)

// benchT adapts testing.B to the harness's testingT.
type benchT struct{ *testing.B }

func (b benchT) Fatalf(format string, args ...interface{}) { b.B.Fatalf(format, args...) }

func benchCluster(b *testing.B, shards int) (*disttest.Cluster, *mogul.Dataset) {
	b.Helper()
	ds := mogul.NewMixture(mogul.MixtureConfig{N: 600, Classes: 8, Dim: 12, WithinStd: 0.25, Separation: 3, Seed: 7})
	cl := disttest.NewCluster(benchT{b}, disttest.ClusterConfig{
		Shards: shards,
		Points: ds.Points,
		Build:  mogul.Options{Seed: 3},
		Client: dist.ClientOptions{Timeout: 10 * time.Second},
	})
	return cl, ds
}

func BenchmarkDistributedTopK(b *testing.B) {
	cl, ds := benchCluster(b, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cl.Coord.TopK(i%ds.Len(), 10); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDistributedTopKVector(b *testing.B) {
	cl, ds := benchCluster(b, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cl.Coord.TopKVector(ds.Points[i%ds.Len()], 10); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDistributedVsInProcess pairs the coordinator with the
// in-process oracle on identical data, so one bench run shows the
// network tax directly.
func BenchmarkDistributedVsInProcess(b *testing.B) {
	ds := mogul.NewMixture(mogul.MixtureConfig{N: 600, Classes: 8, Dim: 12, WithinStd: 0.25, Separation: 3, Seed: 7})
	b.Run("coordinator", func(b *testing.B) {
		cl := disttest.NewCluster(benchT{b}, disttest.ClusterConfig{
			Shards: 3,
			Points: ds.Points,
			Build:  mogul.Options{Seed: 3},
			Client: dist.ClientOptions{Timeout: 10 * time.Second},
		})
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := cl.Coord.TopK(i%ds.Len(), 10); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("in-process", func(b *testing.B) {
		six, err := mogul.BuildSharded(ds.Points, mogul.Options{Seed: 3}, mogul.ShardOptions{Shards: 3})
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := six.TopK(i%ds.Len(), 10); err != nil {
				b.Fatal(err)
			}
		}
	})
}
