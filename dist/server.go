package dist

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"

	"mogul"
	"mogul/serve"
)

// ShardServer exposes one shard's full surface over HTTP: every serve
// endpoint (search paths with caching/batching/backpressure,
// mutations, metrics) plus the /dist/* endpoints the distributed
// layer is built from:
//
//	GET  /dist/info              -> shard state (items, version, exact,
//	                                stats, delta, log length)
//	GET  /dist/owner?id=N&k=K    -> owner search: answers + the query
//	                                item's vector + the shard's own
//	                                affinity to it, in one round trip
//	POST /dist/vector            -> {"vector":[...],"k":K}: answers +
//	                                the shard's kernel affinity
//	POST /dist/set               -> {"ids":[...],"weight":w,"k":K}:
//	                                weighted multi-seed search
//	GET  /dist/log?since=V       -> replication log tail past cursor V
//	                                (binary, mogul.WriteLogEntries);
//	                                410 Gone once truncated past V
//	GET  /dist/snapshot          -> full index stream with the matching
//	                                X-Mogul-Version header
//	GET  /dist/alive             -> id space + dead ids (the liveness
//	                                map a coordinator compaction needs)
//	POST /dist/truncate          -> {"up_to":V}: drop acknowledged log
//
// Search answers carry float64 scores through JSON, which Go encodes
// in shortest-round-trip form — scores survive the wire bit-exactly,
// so a coordinator's merged ranking can be pinned against the
// in-process oracle.
type ShardServer struct {
	ix  *mogul.Index
	srv *serve.Server
	mux *http.ServeMux
}

// versionHeader carries the shard's mutation version on binary
// responses that cannot embed it in a JSON body.
const versionHeader = "X-Mogul-Version"

// NewShardServer wraps ix in the serving layer plus the /dist/*
// surface. Close the returned server on shutdown (it closes the inner
// serve.Server; the index stays open).
func NewShardServer(ix *mogul.Index, opts serve.Options) *ShardServer {
	s := &ShardServer{ix: ix, srv: serve.New(ix, opts), mux: http.NewServeMux()}
	s.mux.HandleFunc("/dist/info", s.handleInfo)
	s.mux.HandleFunc("/dist/owner", s.handleOwner)
	s.mux.HandleFunc("/dist/vector", s.handleVector)
	s.mux.HandleFunc("/dist/set", s.handleSet)
	s.mux.HandleFunc("/dist/log", s.handleLog)
	s.mux.HandleFunc("/dist/snapshot", s.handleSnapshot)
	s.mux.HandleFunc("/dist/alive", s.handleAlive)
	s.mux.HandleFunc("/dist/truncate", s.handleTruncate)
	s.mux.Handle("/", s.srv)
	return s
}

func (s *ShardServer) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Close releases the inner serve.Server's background machinery.
func (s *ShardServer) Close() { s.srv.Close() }

// Index returns the served shard index (the replicator applies log
// entries to it directly on follower nodes).
func (s *ShardServer) Index() *mogul.Index { return s.ix }

// wireResult is one answer row on the /dist wire: ids are SHARD-LOCAL
// (the coordinator owns the global remap), scores bit-exact float64.
type wireResult struct {
	Item  int     `json:"item"`
	Score float64 `json:"score"`
}

func toWire(res []mogul.Result) []wireResult {
	out := make([]wireResult, len(res))
	for i, r := range res {
		out[i] = wireResult{Item: r.Node, Score: r.Score}
	}
	return out
}

func fromWire(res []wireResult) []mogul.Result {
	out := make([]mogul.Result, len(res))
	for i, r := range res {
		out[i] = mogul.Result{Node: r.Item, Score: r.Score}
	}
	return out
}

// ownerResponse answers /dist/owner: the in-database ranking plus the
// query item's stored vector and the owning shard's affinity to it —
// everything a coordinator needs before probing the other shards.
type ownerResponse struct {
	Version  uint64       `json:"version"`
	Answers  []wireResult `json:"answers"`
	Vector   []float64    `json:"vector"`
	Affinity float64      `json:"affinity"`
}

// vectorResponse answers /dist/vector and /dist/set.
type vectorResponse struct {
	Version  uint64       `json:"version"`
	Answers  []wireResult `json:"answers"`
	Affinity float64      `json:"affinity,omitempty"`
}

func (s *ShardServer) handleInfo(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		distError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	writeJSON(w, http.StatusOK, Info{
		Items:   s.ix.Len(),
		Version: s.ix.Version(),
		Exact:   s.ix.Exact(),
		IDSpace: s.ix.IDSpace(),
		LogLen:  s.ix.LogLen(),
		Stats:   s.ix.Stats(),
		Delta:   s.ix.Delta(),
	})
}

// Info is a shard's state snapshot (/dist/info).
type Info struct {
	Items   int              `json:"items"`
	Version uint64           `json:"version"`
	Exact   bool             `json:"exact"`
	IDSpace int              `json:"id_space"`
	LogLen  int              `json:"log_len"`
	Stats   mogul.Stats      `json:"stats"`
	Delta   mogul.DeltaStats `json:"delta"`
}

func (s *ShardServer) handleOwner(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		distError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	q := r.URL.Query()
	id, err := strconv.Atoi(q.Get("id"))
	if err != nil {
		distError(w, http.StatusBadRequest, "id must be an integer")
		return
	}
	k, err := strconv.Atoi(q.Get("k"))
	if err != nil || k <= 0 {
		distError(w, http.StatusBadRequest, "k must be a positive integer")
		return
	}
	// The version is read before the search so the stamp is
	// conservative: a mutation landing mid-search yields a stale stamp,
	// never a stamp claiming post-mutation answers.
	ver := s.ix.Version()
	res, qvec, aff, err := s.ix.TopKWithVector(id, k)
	if err != nil {
		distError(w, http.StatusBadRequest, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, ownerResponse{
		Version:  ver,
		Answers:  toWire(res),
		Vector:   qvec,
		Affinity: aff,
	})
}

func (s *ShardServer) handleVector(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		distError(w, http.StatusMethodNotAllowed, "use POST")
		return
	}
	var req struct {
		Vector []float64 `json:"vector"`
		K      int       `json:"k"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		distError(w, http.StatusBadRequest, "bad JSON: "+err.Error())
		return
	}
	if req.K <= 0 {
		distError(w, http.StatusBadRequest, "k must be a positive integer")
		return
	}
	ver := s.ix.Version()
	res, aff, err := s.ix.TopKVectorWithAffinity(req.Vector, req.K)
	if err != nil {
		distError(w, http.StatusBadRequest, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, vectorResponse{Version: ver, Answers: toWire(res), Affinity: aff})
}

func (s *ShardServer) handleSet(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		distError(w, http.StatusMethodNotAllowed, "use POST")
		return
	}
	var req struct {
		IDs    []int   `json:"ids"`
		Weight float64 `json:"weight"`
		K      int     `json:"k"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		distError(w, http.StatusBadRequest, "bad JSON: "+err.Error())
		return
	}
	if req.K <= 0 {
		distError(w, http.StatusBadRequest, "k must be a positive integer")
		return
	}
	if req.Weight <= 0 {
		distError(w, http.StatusBadRequest, "weight must be positive")
		return
	}
	ver := s.ix.Version()
	res, err := s.ix.TopKSetWeighted(req.IDs, req.Weight, req.K)
	if err != nil {
		distError(w, http.StatusBadRequest, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, vectorResponse{Version: ver, Answers: toWire(res)})
}

func (s *ShardServer) handleLog(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		distError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	since, err := strconv.ParseUint(r.URL.Query().Get("since"), 10, 64)
	if err != nil {
		distError(w, http.StatusBadRequest, "since must be a version cursor")
		return
	}
	entries, ok := s.ix.EntriesSince(since)
	if !ok {
		// The follower's cursor predates the retained log: it cannot
		// catch up incrementally and must bootstrap from /dist/snapshot.
		// 410 is the contract for "gone for good", distinct from any
		// transient failure a client would retry.
		distError(w, http.StatusGone, fmt.Sprintf("log truncated past version %d; bootstrap from snapshot", since))
		return
	}
	var buf bytes.Buffer
	if err := mogul.WriteLogEntries(&buf, entries); err != nil {
		distError(w, http.StatusInternalServerError, err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set(versionHeader, strconv.FormatUint(s.ix.Version(), 10))
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(buf.Bytes())
}

func (s *ShardServer) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		distError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	// A snapshot is only a valid replication bootstrap when the version
	// it is stamped with matches the serialized state exactly, so the
	// pair is captured under a version double-read: if a mutation lands
	// mid-save, re-save. Mutations are rare relative to save time only
	// in pathological loops, so a bounded number of retries suffices;
	// persistent interference reports 503 and the follower retries.
	const attempts = 5
	var buf bytes.Buffer
	var ver uint64
	for i := 0; ; i++ {
		ver = s.ix.Version()
		buf.Reset()
		if err := s.ix.Save(&buf); err != nil {
			distError(w, http.StatusInternalServerError, err.Error())
			return
		}
		if s.ix.Version() == ver {
			break
		}
		if i == attempts-1 {
			distError(w, http.StatusServiceUnavailable, "index mutating too fast to snapshot consistently")
			return
		}
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set(versionHeader, strconv.FormatUint(ver, 10))
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(buf.Bytes())
}

func (s *ShardServer) handleAlive(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		distError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	space := s.ix.IDSpace()
	dead := []int{}
	for id := 0; id < space; id++ {
		if !s.ix.Alive(id) {
			dead = append(dead, id)
		}
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"id_space": space,
		"dead":     dead,
		"version":  s.ix.Version(),
	})
}

func (s *ShardServer) handleTruncate(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		distError(w, http.StatusMethodNotAllowed, "use POST")
		return
	}
	var req struct {
		UpTo uint64 `json:"up_to"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		distError(w, http.StatusBadRequest, "bad JSON: "+err.Error())
		return
	}
	s.ix.TruncateEntries(req.UpTo)
	writeJSON(w, http.StatusOK, map[string]interface{}{"log_len": s.ix.LogLen()})
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// distError renders errors through the serve layer's canonical
// renderer, so the /dist/* endpoints and the serve endpoints present
// one error format (and one Content-Type) to clients.
func distError(w http.ResponseWriter, status int, msg string) {
	serve.WriteError(w, status, msg)
}
