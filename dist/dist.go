// Package dist splits a sharded Mogul deployment across processes
// behind the same mogul.Retriever surface the in-process ShardedIndex
// serves. Three pieces compose (see docs/DISTRIBUTED.md):
//
//   - ShardServer wraps one shard's *mogul.Index in the full serve
//     HTTP layer (search, mutations, caching, metrics) and adds the
//     /dist/* endpoints the distributed layer needs: owner search
//     (answers + query vector + affinity in one round trip), vector
//     search with affinity, weighted set search, the replication log
//     (/dist/log), snapshots, and the liveness map a coordinator
//     compaction consumes.
//
//   - Client speaks to one ShardServer and implements mogul.Retriever
//     plus the context-taking shard calls a Coordinator fans out to.
//     Connections are reused through one transport, every request
//     carries a per-request timeout, and idempotent reads retry with
//     bounded exponential backoff; mutations are never retried.
//
//   - Coordinator serves one global id space over a set of shards —
//     each local (an index in this process) or remote (a Client) —
//     with the exact affinity-weighted fan-out/merge the in-process
//     ShardedIndex runs: the owner shard answers in-database at full
//     weight, every other shard is probed out-of-sample with the
//     query's vector and scaled by its kernel affinity relative to
//     the owner's. On the same contiguous partition its exact-mode
//     rankings are bit-identical to the ShardedIndex oracle
//     (dist/equivalence_test.go pins this). Context-taking search
//     variants tolerate shard failures and report degraded coverage;
//     the strict Retriever surface fails instead.
//
// Replication: a follower tails the primary's Insert/Delete/Compact
// delta log (mogul.LogEntry) keyed by the Version() cursor — see
// Replicator. Because the whole build pipeline is deterministic,
// replay converges the follower to a bit-identical index; the
// convergence property is tested over random mutation interleavings
// in dist/replication_test.go.
package dist

import (
	"fmt"

	"mogul"
)

// BuildShardIndexes partitions points into s contiguous shards and
// builds one independent index per shard with exactly the recipe
// BuildSharded(points, opts, ShardOptions{Shards: s}) uses: shard i
// holds the points with global ids in [i*n/s, (i+1)*n/s), per-shard
// auto-compaction is disabled (the coordinator owns compaction, as
// the sharded layer does), and one heat-kernel bandwidth — estimated
// over the full dataset — is pinned across all shards. A Coordinator
// over the returned indexes therefore serves bit-identical exact-mode
// rankings to the in-process ShardedIndex on the same partition.
//
// The returned partition lists each shard's global ids in local-id
// order; pass it to NewCoordinator.
func BuildShardIndexes(points []mogul.Vector, opts mogul.Options, s int) ([]*mogul.Index, [][]int, error) {
	if s <= 0 {
		s = 1
	}
	if len(points) < 2*s {
		return nil, nil, fmt.Errorf("dist: %d shards need at least %d points, got %d", s, 2*s, len(points))
	}
	partition := ContiguousPartition(len(points), s)
	shardOpts := opts
	shardOpts.AutoCompactFraction = 0
	if s > 1 && shardOpts.Sigma == 0 {
		k := shardOpts.GraphK
		if k <= 0 {
			k = 5
		}
		shardOpts.Sigma = mogul.EstimateSigma(points, k)
	}
	idxs := make([]*mogul.Index, s)
	for sh, members := range partition {
		pts := make([]mogul.Vector, len(members))
		for i, g := range members {
			pts[i] = points[g]
		}
		ix, err := mogul.Build(pts, shardOpts)
		if err != nil {
			return nil, nil, fmt.Errorf("dist: building shard %d: %w", sh, err)
		}
		idxs[sh] = ix
	}
	return idxs, partition, nil
}

// ContiguousPartition returns the contiguous s-way split of n global
// ids BuildSharded's PartitionContiguous derives: shard i holds ids
// [i*n/s, (i+1)*n/s) in order.
func ContiguousPartition(n, s int) [][]int {
	partition := make([][]int, s)
	for g := 0; g < n; g++ {
		sh := g * s / n
		partition[sh] = append(partition[sh], g)
	}
	return partition
}
