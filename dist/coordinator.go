package dist

import (
	"context"
	"fmt"
	"io"
	"slices"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"mogul"
	"mogul/internal/topk"
)

// Backend is one shard as the coordinator sees it: the context-taking
// fan-out surface a *Client serves remotely and a LocalShard serves
// in-process. All ids are shard-local; the coordinator owns the
// global id space.
type Backend interface {
	// OwnerSearch runs the in-database half of a distributed TopK on
	// the shard owning the query: the shard-local ranking plus the
	// query item's stored vector and this shard's affinity to it.
	OwnerSearch(ctx context.Context, local, k int) ([]mogul.Result, mogul.Vector, float64, error)
	// VectorSearch probes the shard out-of-sample, returning the local
	// ranking and the shard's raw kernel affinity to the query.
	VectorSearch(ctx context.Context, q mogul.Vector, k int) ([]mogul.Result, float64, error)
	// SetSearch runs a multi-seed search over shard-local seeds, each
	// carrying the given global query weight.
	SetSearch(ctx context.Context, locals []int, weight float64, k int) ([]mogul.Result, error)
	// NeighborsCtx returns a local item's graph context.
	NeighborsCtx(ctx context.Context, local int) ([]int, []float64, error)
	// InsertCtx adds a point to the shard and returns its local id.
	InsertCtx(ctx context.Context, v mogul.Vector) (int, error)
	// DeleteCtx tombstones a local id.
	DeleteCtx(ctx context.Context, local int) error
	// AliveMap snapshots the shard's id space and dead local ids.
	AliveMap(ctx context.Context) (space int, dead []int, err error)
	// CompactCtx folds the shard's delta layer into a fresh base.
	CompactCtx(ctx context.Context) error
	// InfoCtx reports the shard's state snapshot.
	InfoCtx(ctx context.Context) (Info, error)
}

var (
	_ Backend = (*Client)(nil)
	_ Backend = LocalShard{}
)

// ShardIndex is the in-process engine surface a LocalShard adapts:
// the mogul.Retriever contract plus the vector/affinity/weighted-set
// entry points the fan-out protocol needs and the id-space metadata
// the coordinator tracks. Both *mogul.Index and *mogul.EMRIndex
// satisfy it, so a coordinator can hold flat-graph and anchor-graph
// shards behind one field.
type ShardIndex interface {
	mogul.Retriever
	TopKWithVector(query, k int) ([]mogul.Result, mogul.Vector, float64, error)
	TopKVectorWithAffinity(q mogul.Vector, k int) ([]mogul.Result, float64, error)
	TopKSetWeighted(seeds []int, weight float64, k int) ([]mogul.Result, error)
	IDSpace() int
	Alive(id int) bool
	LogLen() int
}

var (
	_ ShardIndex = (*mogul.Index)(nil)
	_ ShardIndex = (*mogul.EMRIndex)(nil)
	_ ShardIndex = (*mogul.SpectralIndex)(nil)
)

// LocalShard adapts an in-process engine (flat *mogul.Index,
// anchor-graph *mogul.EMRIndex, or truncated-eigenbasis
// *mogul.SpectralIndex) to the Backend surface, so a
// coordinator can serve mixed local + remote shard sets (e.g. one
// resident shard plus N remote ones) through one code path. Context
// cancellation is checked at call entry; the underlying searches are
// not interruptible mid-flight.
type LocalShard struct {
	Ix ShardIndex
}

func (l LocalShard) OwnerSearch(ctx context.Context, local, k int) ([]mogul.Result, mogul.Vector, float64, error) {
	if err := ctx.Err(); err != nil {
		return nil, nil, 0, err
	}
	return l.Ix.TopKWithVector(local, k)
}

func (l LocalShard) VectorSearch(ctx context.Context, q mogul.Vector, k int) ([]mogul.Result, float64, error) {
	if err := ctx.Err(); err != nil {
		return nil, 0, err
	}
	return l.Ix.TopKVectorWithAffinity(q, k)
}

func (l LocalShard) SetSearch(ctx context.Context, locals []int, weight float64, k int) ([]mogul.Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return l.Ix.TopKSetWeighted(locals, weight, k)
}

func (l LocalShard) NeighborsCtx(ctx context.Context, local int) ([]int, []float64, error) {
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	return l.Ix.Neighbors(local)
}

func (l LocalShard) InsertCtx(ctx context.Context, v mogul.Vector) (int, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	return l.Ix.Insert(v)
}

func (l LocalShard) DeleteCtx(ctx context.Context, local int) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	return l.Ix.Delete(local)
}

func (l LocalShard) AliveMap(ctx context.Context) (int, []int, error) {
	if err := ctx.Err(); err != nil {
		return 0, nil, err
	}
	space := l.Ix.IDSpace()
	var dead []int
	for id := 0; id < space; id++ {
		if !l.Ix.Alive(id) {
			dead = append(dead, id)
		}
	}
	return space, dead, nil
}

func (l LocalShard) CompactCtx(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	return l.Ix.Compact()
}

func (l LocalShard) InfoCtx(ctx context.Context) (Info, error) {
	if err := ctx.Err(); err != nil {
		return Info{}, err
	}
	return Info{
		Items:   l.Ix.Len(),
		Version: l.Ix.Version(),
		Exact:   l.Ix.Exact(),
		IDSpace: l.Ix.IDSpace(),
		LogLen:  l.Ix.LogLen(),
		Stats:   l.Ix.Stats(),
		Delta:   l.Ix.Delta(),
	}, nil
}

// Shard is one logical shard: a primary plus optional read replicas
// (followers kept converged by a Replicator). Reads prefer the
// primary and hedge to replicas (CoordOptions.HedgeDelay) or fail
// over to them sequentially; mutations only ever go to the primary.
type Shard struct {
	Replicas []Backend
}

// Primary returns the mutation target (Replicas[0]).
func (sh Shard) Primary() Backend { return sh.Replicas[0] }

// CoordOptions tunes the coordinator's fan-out behaviour.
type CoordOptions struct {
	// ShardTimeout bounds each per-shard call; 0 means no per-shard
	// deadline beyond the caller's context.
	ShardTimeout time.Duration
	// HedgeDelay, when a shard has replicas, launches the next replica
	// this long after the previous one went out without answering —
	// the classic tail-latency hedge. 0 disables hedging: replicas are
	// then pure failover targets, tried in order on error.
	HedgeDelay time.Duration
}

// shardLoc addresses one item: owning shard + shard-local id;
// shard < 0 marks a retired global id (deleted and compacted away).
type shardLoc struct {
	shard, local int
}

// Coordinator serves one global id space over a set of shards with
// the in-process ShardedIndex's exact fan-out/merge semantics: the
// owner shard answers in-database at scale 1, every other shard is
// probed out-of-sample and scaled by its kernel affinity relative to
// the owner's, and the per-shard lists k-way merge under the global
// order (score desc, id asc). On the same contiguous partition the
// exact-mode rankings are bit-identical to the oracle.
//
// The context-taking search variants (TopKCtx, TopKVectorCtx,
// TopKSetCtx) tolerate non-essential shard failures under per-shard
// deadlines and report which shards answered via Degraded; the strict
// mogul.Retriever surface fails the query instead. Mutations route to
// the owning shard's primary and are never hedged or retried.
//
// The coordinator must be the only mutator of its shards: routing a
// mutation around it (straight to a shard server) desynchronizes the
// global id maps. See docs/DISTRIBUTED.md, "Ownership".
type Coordinator struct {
	// mu freezes the id maps relative to the shard states for the
	// duration of a fan-out, exactly like ShardedIndex.mu.
	mu sync.RWMutex
	// mutMu serializes mutators.
	mutMu sync.Mutex

	shards []Shard
	opts   CoordOptions

	locOf []shardLoc
	l2g   [][]int
	// live tracks each shard's live item count (the coordinator is the
	// sole mutator, so counting locally avoids a network round trip on
	// every insert routing decision).
	live []int

	// exact is the shard set's scoring mode, captured at construction.
	exact bool

	version atomic.Uint64
}

// NewCoordinator builds a coordinator over shards, where partition
// lists each shard's global ids in shard-local order (as returned by
// BuildShardIndexes, or ContiguousPartition for a freshly built
// contiguous split). The shard states must match the partition — each
// shard's index holds exactly the listed items, in that local order.
func NewCoordinator(shards []Shard, partition [][]int, opts CoordOptions) (*Coordinator, error) {
	if len(shards) == 0 || len(shards) != len(partition) {
		return nil, fmt.Errorf("dist: %d shards with %d partition groups", len(shards), len(partition))
	}
	total := 0
	for s, members := range partition {
		if len(shards[s].Replicas) == 0 {
			return nil, fmt.Errorf("dist: shard %d has no replicas", s)
		}
		total += len(members)
	}
	c := &Coordinator{
		shards: shards,
		opts:   opts,
		locOf:  make([]shardLoc, total),
		l2g:    make([][]int, len(partition)),
		live:   make([]int, len(partition)),
	}
	for i := range c.locOf {
		c.locOf[i] = shardLoc{shard: -1, local: -1}
	}
	for s, members := range partition {
		c.l2g[s] = slices.Clone(members)
		c.live[s] = len(members)
		for local, g := range members {
			if g < 0 || g >= total {
				return nil, fmt.Errorf("dist: partition id %d outside [0,%d)", g, total)
			}
			if c.locOf[g].shard >= 0 {
				return nil, fmt.Errorf("dist: global id %d assigned to shards %d and %d", g, c.locOf[g].shard, s)
			}
			c.locOf[g] = shardLoc{shard: s, local: local}
		}
	}
	for g, loc := range c.locOf {
		if loc.shard < 0 {
			return nil, fmt.Errorf("dist: global id %d missing from the partition", g)
		}
	}
	info, err := shards[0].Primary().InfoCtx(context.Background())
	if err != nil {
		return nil, fmt.Errorf("dist: probing shard 0: %w", err)
	}
	c.exact = info.Exact
	c.version.Store(1)
	return c, nil
}

// NumShards returns the shard count.
func (c *Coordinator) NumShards() int { return len(c.shards) }

// Degraded reports a fan-out's coverage: which shards contributed to
// the merged ranking and which failed (timeout, partition, error).
// A complete fan-out has no failures.
type Degraded struct {
	// Answered lists the shards whose candidates entered the merge.
	Answered []int
	// Failed maps each non-answering shard to its failure.
	Failed map[int]error
}

// Complete reports whether every shard answered.
func (d *Degraded) Complete() bool { return len(d.Failed) == 0 }

// Err returns nil for a complete fan-out and an error naming the
// failed shards otherwise — the strict Retriever surface's contract.
func (d *Degraded) Err() error {
	if d == nil || len(d.Failed) == 0 {
		return nil
	}
	ids := make([]int, 0, len(d.Failed))
	for s := range d.Failed {
		ids = append(ids, s)
	}
	sort.Ints(ids)
	return fmt.Errorf("dist: %d of %d shards failed (first: shard %d: %v)",
		len(d.Failed), len(d.Failed)+len(d.Answered), ids[0], d.Failed[ids[0]])
}

// locate resolves a global id; callers hold mu (any mode) or mutMu.
func (c *Coordinator) locate(id int) (shardLoc, error) {
	if id < 0 || id >= len(c.locOf) {
		return shardLoc{}, fmt.Errorf("dist: item %d outside [0,%d)", id, len(c.locOf))
	}
	loc := c.locOf[id]
	if loc.shard < 0 {
		return shardLoc{}, fmt.Errorf("dist: item %d is deleted", id)
	}
	return loc, nil
}

// shardCtx derives the per-shard deadline context.
func (c *Coordinator) shardCtx(ctx context.Context) (context.Context, context.CancelFunc) {
	if c.opts.ShardTimeout > 0 {
		return context.WithTimeout(ctx, c.opts.ShardTimeout)
	}
	return context.WithCancel(ctx)
}

// hedge runs call against a shard's replicas: the primary first, the
// next replica HedgeDelay later (or immediately once the previous
// attempt failed), first success wins. With hedging disabled the
// replicas are sequential failover targets. The per-shard timeout
// spans the whole attempt sequence — it is the shard's answer
// deadline, not a per-replica one.
func hedge[T any](ctx context.Context, replicas []Backend, delay time.Duration, call func(context.Context, Backend) (T, error)) (T, error) {
	var zero T
	if len(replicas) == 1 || delay <= 0 {
		var lastErr error
		for _, b := range replicas {
			if err := ctx.Err(); err != nil {
				if lastErr == nil {
					lastErr = err
				}
				break
			}
			v, err := call(ctx, b)
			if err == nil {
				return v, nil
			}
			lastErr = err
		}
		return zero, lastErr
	}
	hctx, cancel := context.WithCancel(ctx)
	defer cancel()
	type outcome struct {
		v   T
		err error
	}
	ch := make(chan outcome, len(replicas))
	launched := 0
	launch := func() {
		b := replicas[launched]
		launched++
		go func() {
			v, err := call(hctx, b)
			ch <- outcome{v, err}
		}()
	}
	launch()
	timer := time.NewTimer(delay)
	defer timer.Stop()
	pending := 1
	var lastErr error
	for {
		select {
		case o := <-ch:
			pending--
			if o.err == nil {
				return o.v, nil
			}
			lastErr = o.err
			switch {
			case launched < len(replicas):
				launch()
				pending++
			case pending == 0:
				return zero, lastErr
			}
		case <-timer.C:
			if launched < len(replicas) {
				launch()
				pending++
				timer.Reset(delay)
			}
		case <-ctx.Done():
			// Outstanding attempts unwind through hctx; the buffered
			// channel absorbs their results, so nothing leaks.
			return zero, ctx.Err()
		}
	}
}

// shardList is one shard's merged-candidate input: results remapped
// to global ids, scaled, re-sorted into the global order.
type shardList struct {
	shard int
	items []topk.Item
}

// remap converts one shard's local ranking into a merge input,
// mirroring ShardedSearcher.addList: global ids via l2g, scores
// scaled by the shard's affinity weight, re-sorted into (score desc,
// global id asc). Local ids past the map (an insert racing the
// fan-out) are skipped for this query. Callers hold mu in read mode.
func (c *Coordinator) remap(s int, res []mogul.Result, scale float64) []topk.Item {
	l2g := c.l2g[s]
	items := make([]topk.Item, 0, len(res))
	for _, r := range res {
		if r.Node >= len(l2g) {
			continue
		}
		items = append(items, topk.Item{ID: l2g[r.Node], Score: scale * r.Score})
	}
	sortItems(items)
	return items
}

// relativeAffinity prices a non-owning shard's contribution against
// the owner's own kernel affinity: min(1, aff/own), falling back to
// the absolute affinity when the owner's underflowed to 0 — the exact
// formula of the in-process sharded merge.
func relativeAffinity(aff, own float64) float64 {
	if own <= 0 {
		return aff
	}
	if aff >= own {
		return 1
	}
	return aff / own
}

// sortItems sorts candidates by the global ranking order in place.
func sortItems(items []topk.Item) {
	slices.SortFunc(items, func(a, b topk.Item) int {
		switch {
		case topk.Better(a, b):
			return -1
		case topk.Better(b, a):
			return 1
		default:
			return 0
		}
	})
}

// merge k-way merges per-shard candidate lists into the global top-k.
func merge(k int, lists []shardList) []mogul.Result {
	var m topk.Merger
	in := make([][]topk.Item, len(lists))
	for i, l := range lists {
		in[i] = l.items
	}
	merged := m.Merge(nil, k, in...)
	out := make([]mogul.Result, len(merged))
	for i, it := range merged {
		out[i] = mogul.Result{Node: it.ID, Score: it.Score}
	}
	return out
}

// TopKCtx fans an in-database query out to all shards and merges: the
// owner shard answers in-database (its failure fails the query — it
// alone knows the query's vector and affinity baseline), every other
// shard is probed out-of-sample under the per-shard deadline, and
// shards that fail are dropped from the merge and reported in
// Degraded.
func (c *Coordinator) TopKCtx(ctx context.Context, query, k int) ([]mogul.Result, *Degraded, error) {
	if k <= 0 {
		return nil, nil, fmt.Errorf("dist: K must be positive, got %d", k)
	}
	c.mu.RLock()
	defer c.mu.RUnlock()
	loc, err := c.locate(query)
	if err != nil {
		return nil, nil, err
	}
	deg := &Degraded{Failed: map[int]error{}}

	type ownerOut struct {
		res  []mogul.Result
		qvec mogul.Vector
		aff  float64
	}
	octx, ocancel := c.shardCtx(ctx)
	own, err := hedge(octx, c.shards[loc.shard].Replicas, c.opts.HedgeDelay,
		func(ctx context.Context, b Backend) (ownerOut, error) {
			res, qvec, aff, err := b.OwnerSearch(ctx, loc.local, k)
			return ownerOut{res, qvec, aff}, err
		})
	ocancel()
	if err != nil {
		return nil, nil, fmt.Errorf("dist: owner shard %d: %w", loc.shard, err)
	}
	lists := []shardList{{shard: loc.shard, items: c.remap(loc.shard, own.res, 1)}}
	deg.Answered = append(deg.Answered, loc.shard)

	if len(c.shards) > 1 {
		others := c.fanOutVector(ctx, own.qvec, k, loc.shard, deg)
		for _, o := range others {
			lists = append(lists, shardList{shard: o.shard, items: c.remap(o.shard, o.res, relativeAffinity(o.aff, own.aff))})
		}
	}
	sortLists(lists)
	return merge(k, lists), deg, nil
}

// vecOut is one non-owner shard's out-of-sample answer.
type vecOut struct {
	shard int
	res   []mogul.Result
	aff   float64
}

// fanOutVector probes every shard but skip out-of-sample in parallel,
// recording failures in deg and returning the successful answers.
func (c *Coordinator) fanOutVector(ctx context.Context, q mogul.Vector, k, skip int, deg *Degraded) []vecOut {
	var (
		wg   sync.WaitGroup
		omu  sync.Mutex
		outs []vecOut
	)
	for s := range c.shards {
		if s == skip {
			continue
		}
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			sctx, cancel := c.shardCtx(ctx)
			defer cancel()
			type vOut struct {
				res []mogul.Result
				aff float64
			}
			v, err := hedge(sctx, c.shards[s].Replicas, c.opts.HedgeDelay,
				func(ctx context.Context, b Backend) (vOut, error) {
					res, aff, err := b.VectorSearch(ctx, q, k)
					return vOut{res, aff}, err
				})
			omu.Lock()
			defer omu.Unlock()
			if err != nil {
				deg.Failed[s] = err
				return
			}
			deg.Answered = append(deg.Answered, s)
			outs = append(outs, vecOut{shard: s, res: v.res, aff: v.aff})
		}(s)
	}
	wg.Wait()
	return outs
}

// sortLists orders merge inputs by shard so the merge consumes lists
// in a deterministic order regardless of arrival (the merge itself is
// order-independent — this keeps any tie-broken internals stable too).
func sortLists(lists []shardList) {
	sort.Slice(lists, func(i, j int) bool { return lists[i].shard < lists[j].shard })
}

// TopKVectorCtx fans an out-of-sample query to every shard, scales
// each answer by the shard's affinity relative to the best answering
// shard's, and merges. Failed shards degrade coverage; a query where
// no shard answered is an error.
func (c *Coordinator) TopKVectorCtx(ctx context.Context, q mogul.Vector, k int) ([]mogul.Result, *Degraded, error) {
	if k <= 0 {
		return nil, nil, fmt.Errorf("dist: K must be positive, got %d", k)
	}
	c.mu.RLock()
	defer c.mu.RUnlock()
	deg := &Degraded{Failed: map[int]error{}}
	outs := c.fanOutVector(ctx, q, k, -1, deg)
	if len(outs) == 0 {
		if err := ctx.Err(); err != nil {
			return nil, nil, err
		}
		return nil, nil, fmt.Errorf("dist: no shard answered: %w", deg.Err())
	}
	maxAff := 0.0
	for _, o := range outs {
		if o.aff > maxAff {
			maxAff = o.aff
		}
	}
	lists := make([]shardList, 0, len(outs))
	for _, o := range outs {
		scale := 1.0
		if maxAff > 0 {
			scale = o.aff / maxAff
		}
		lists = append(lists, shardList{shard: o.shard, items: c.remap(o.shard, o.res, scale)})
	}
	sortLists(lists)
	return merge(k, lists), deg, nil
}

// TopKSetCtx fans a multi-seed query out: each shard searches the
// seeds it owns at the global weight 1/len(seeds). A failed
// seed-owning shard degrades the result (that part of the query mass
// is missing — reported, not silently absorbed); if every seed-owning
// shard failed, the query errors.
func (c *Coordinator) TopKSetCtx(ctx context.Context, seeds []int, k int) ([]mogul.Result, *Degraded, error) {
	if len(seeds) == 0 {
		return nil, nil, fmt.Errorf("dist: TopKSet needs at least one seed item")
	}
	if k <= 0 {
		return nil, nil, fmt.Errorf("dist: K must be positive, got %d", k)
	}
	c.mu.RLock()
	defer c.mu.RUnlock()
	perShard := make(map[int][]int)
	for _, seed := range seeds {
		loc, err := c.locate(seed)
		if err != nil {
			return nil, nil, err
		}
		perShard[loc.shard] = append(perShard[loc.shard], loc.local)
	}
	w := 1 / float64(len(seeds))
	deg := &Degraded{Failed: map[int]error{}}
	var (
		wg    sync.WaitGroup
		omu   sync.Mutex
		lists []shardList
	)
	for s, locals := range perShard {
		wg.Add(1)
		go func(s int, locals []int) {
			defer wg.Done()
			sctx, cancel := c.shardCtx(ctx)
			defer cancel()
			res, err := hedge(sctx, c.shards[s].Replicas, c.opts.HedgeDelay,
				func(ctx context.Context, b Backend) ([]mogul.Result, error) {
					return b.SetSearch(ctx, locals, w, k)
				})
			omu.Lock()
			defer omu.Unlock()
			if err != nil {
				deg.Failed[s] = err
				return
			}
			deg.Answered = append(deg.Answered, s)
			lists = append(lists, shardList{shard: s, items: c.remap(s, res, 1)})
		}(s, locals)
	}
	wg.Wait()
	if len(lists) == 0 {
		if err := ctx.Err(); err != nil {
			return nil, nil, err
		}
		return nil, nil, fmt.Errorf("dist: no seed-owning shard answered: %w", deg.Err())
	}
	sortLists(lists)
	return merge(k, lists), deg, nil
}

// --- mutations (primary-only, never hedged or retried) ---

// routeInsert picks the least-loaded shard (lowest id wins ties) —
// the contiguous-partition routing rule of the in-process
// ShardedIndex. Callers hold mutMu.
func (c *Coordinator) routeInsert() int {
	best := 0
	for s := 1; s < len(c.shards); s++ {
		if c.live[s] < c.live[best] {
			best = s
		}
	}
	return best
}

// InsertCtx routes one insert to the least-loaded shard's primary and
// returns the new global id.
func (c *Coordinator) InsertCtx(ctx context.Context, v mogul.Vector) (int, error) {
	c.mutMu.Lock()
	defer c.mutMu.Unlock()
	s := c.routeInsert()
	sctx, cancel := c.shardCtx(ctx)
	local, err := c.shards[s].Primary().InsertCtx(sctx, v)
	cancel()
	if err != nil {
		return 0, fmt.Errorf("dist: inserting into shard %d: %w", s, err)
	}
	c.mu.Lock()
	g := len(c.locOf)
	c.locOf = append(c.locOf, shardLoc{shard: s, local: local})
	c.l2g[s] = append(c.l2g[s], g)
	c.live[s]++
	c.mu.Unlock()
	c.version.Add(1)
	return g, nil
}

// DeleteCtx tombstones one global id on its owning shard's primary.
func (c *Coordinator) DeleteCtx(ctx context.Context, id int) error {
	c.mutMu.Lock()
	defer c.mutMu.Unlock()
	loc, err := c.locate(id)
	if err != nil {
		return err
	}
	sctx, cancel := c.shardCtx(ctx)
	err = c.shards[loc.shard].Primary().DeleteCtx(sctx, loc.local)
	cancel()
	if err != nil {
		return fmt.Errorf("dist: item %d (shard %d): %w", id, loc.shard, err)
	}
	c.live[loc.shard]--
	c.version.Add(1)
	return nil
}

// CompactCtx folds every shard's delta in, preserving global ids:
// before compacting a shard with tombstones, the coordinator
// snapshots the shard's liveness map and renumbers its id tables the
// way the shard's own compaction will — the same discipline the
// in-process ShardedIndex runs, stretched over the network. The
// fan-out write lock is held across each tombstoned shard's rebuild
// so no search pairs new shard state with old maps.
func (c *Coordinator) CompactCtx(ctx context.Context) error {
	c.mutMu.Lock()
	defer c.mutMu.Unlock()
	for s := range c.shards {
		if err := c.compactShard(ctx, s); err != nil {
			return fmt.Errorf("dist: compacting shard %d: %w", s, err)
		}
	}
	return nil
}

func (c *Coordinator) compactShard(ctx context.Context, s int) error {
	primary := c.shards[s].Primary()
	sctx, cancel := c.shardCtx(ctx)
	defer cancel()
	info, err := primary.InfoCtx(sctx)
	if err != nil {
		return err
	}
	if info.Delta.DeltaItems == 0 && info.Delta.Tombstones == 0 {
		return nil
	}
	if info.Delta.Tombstones == 0 {
		// Insert-only: local ids survive compaction bit for bit, the
		// maps stay valid, searches keep running.
		if err := primary.CompactCtx(ctx); err != nil {
			return err
		}
		c.version.Add(1)
		return nil
	}
	space, deadList, err := primary.AliveMap(sctx)
	if err != nil {
		return err
	}
	dead := make(map[int]bool, len(deadList))
	for _, id := range deadList {
		dead[id] = true
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := primary.CompactCtx(ctx); err != nil {
		return err
	}
	old := c.l2g[s]
	j := 0
	for local, g := range old {
		if local < space && !dead[local] {
			old[j] = g
			c.locOf[g] = shardLoc{shard: s, local: j}
			j++
		} else {
			c.locOf[g] = shardLoc{shard: -1, local: -1}
		}
	}
	c.l2g[s] = old[:j]
	c.live[s] = j
	c.version.Add(1)
	return nil
}

// --- the strict mogul.Retriever surface ---

var _ mogul.Retriever = (*Coordinator)(nil)

// Len returns the live item count across all shards (tracked locally;
// the coordinator is the sole mutator).
func (c *Coordinator) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	total := 0
	for _, n := range c.live {
		total += n
	}
	return total
}

// Exact reports the shard set's scoring mode (captured at
// construction; every shard is built with the same options).
func (c *Coordinator) Exact() bool { return c.exact }

// Version returns the coordinator's monotonic mutation version —
// bumped once per completed coordinator mutation, the stamp a serving
// layer's result cache keys on. Mutations routed around the
// coordinator are invisible to it (see the Ownership contract).
func (c *Coordinator) Version() uint64 { return c.version.Load() }

// Stats aggregates construction statistics across reachable shards,
// mirroring ShardedIndex.Stats (modularity node-weighted).
func (c *Coordinator) Stats() mogul.Stats {
	var out mogul.Stats
	var wmod float64
	for _, sh := range c.shards {
		info, err := sh.Primary().InfoCtx(context.Background())
		if err != nil {
			continue
		}
		st := info.Stats
		out.NumNodes += st.NumNodes
		out.NumEdges += st.NumEdges
		out.NumClusters += st.NumClusters
		out.BorderSize += st.BorderSize
		out.FactorNNZ += st.FactorNNZ
		out.ClampedPivots += st.ClampedPivots
		out.ClusterTime += st.ClusterTime
		out.PermuteTime += st.PermuteTime
		out.FactorTime += st.FactorTime
		wmod += st.Modularity * float64(st.NumNodes)
	}
	if out.NumNodes > 0 {
		out.Modularity = wmod / float64(out.NumNodes)
	}
	return out
}

// Delta aggregates the dynamic state across reachable shards.
func (c *Coordinator) Delta() mogul.DeltaStats {
	var out mogul.DeltaStats
	for _, sh := range c.shards {
		info, err := sh.Primary().InfoCtx(context.Background())
		if err != nil {
			continue
		}
		out.BaseItems += info.Delta.BaseItems
		out.DeltaItems += info.Delta.DeltaItems
		out.Tombstones += info.Delta.Tombstones
	}
	return out
}

// TopK is TopKCtx requiring every shard to answer.
func (c *Coordinator) TopK(query, k int) ([]mogul.Result, error) {
	res, deg, err := c.TopKCtx(context.Background(), query, k)
	if err != nil {
		return nil, err
	}
	if err := deg.Err(); err != nil {
		return nil, err
	}
	return res, nil
}

// TopKWithInfo is TopK; the distributed fan-out does not aggregate
// per-shard work counters (the info is always zero).
func (c *Coordinator) TopKWithInfo(query, k int) ([]mogul.Result, *mogul.SearchInfo, error) {
	res, err := c.TopK(query, k)
	if err != nil {
		return nil, nil, err
	}
	return res, &mogul.SearchInfo{}, nil
}

// TopKVector is TopKVectorCtx requiring every shard to answer.
func (c *Coordinator) TopKVector(q mogul.Vector, k int) ([]mogul.Result, error) {
	res, deg, err := c.TopKVectorCtx(context.Background(), q, k)
	if err != nil {
		return nil, err
	}
	if err := deg.Err(); err != nil {
		return nil, err
	}
	return res, nil
}

// TopKSet is TopKSetCtx requiring every seed-owning shard to answer.
func (c *Coordinator) TopKSet(seeds []int, k int) ([]mogul.Result, error) {
	res, deg, err := c.TopKSetCtx(context.Background(), seeds, k)
	if err != nil {
		return nil, err
	}
	if err := deg.Err(); err != nil {
		return nil, err
	}
	return res, nil
}

// TopKBatch answers many in-database queries with a bounded worker
// pool of concurrent fan-outs.
func (c *Coordinator) TopKBatch(queries []int, k, parallelism int) []mogul.BatchResult {
	out := make([]mogul.BatchResult, len(queries))
	c.runBatch(len(queries), parallelism, func(i int) {
		res, err := c.TopK(queries[i], k)
		out[i] = mogul.BatchResult{Query: queries[i], Results: res, Err: err}
	})
	return out
}

// TopKVectorBatch answers many out-of-sample queries concurrently.
func (c *Coordinator) TopKVectorBatch(queries []mogul.Vector, k, parallelism int) []mogul.BatchResult {
	out := make([]mogul.BatchResult, len(queries))
	c.runBatch(len(queries), parallelism, func(i int) {
		res, err := c.TopKVector(queries[i], k)
		out[i] = mogul.BatchResult{Query: i, Results: res, Err: err}
	})
	return out
}

func (c *Coordinator) runBatch(n, parallelism int, work func(int)) {
	if parallelism <= 0 {
		parallelism = 4
	}
	if parallelism > n {
		parallelism = n
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < parallelism; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				work(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
}

// Neighbors returns an item's graph context inside its owning shard,
// remapped to global ids.
func (c *Coordinator) Neighbors(item int) (ids []int, weights []float64, err error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	loc, err := c.locate(item)
	if err != nil {
		return nil, nil, err
	}
	sctx, cancel := c.shardCtx(context.Background())
	defer cancel()
	ids, weights, err = hedge2(sctx, c.shards[loc.shard].Replicas, c.opts.HedgeDelay, loc.local)
	if err != nil {
		return nil, nil, fmt.Errorf("dist: item %d (shard %d): %w", item, loc.shard, err)
	}
	l2g := c.l2g[loc.shard]
	for i, local := range ids {
		if local < len(l2g) {
			ids[i] = l2g[local]
		}
	}
	return ids, weights, nil
}

// hedge2 adapts hedge to Neighbors' two-value result.
func hedge2(ctx context.Context, replicas []Backend, delay time.Duration, local int) ([]int, []float64, error) {
	type nOut struct {
		ids []int
		wts []float64
	}
	v, err := hedge(ctx, replicas, delay, func(ctx context.Context, b Backend) (nOut, error) {
		ids, wts, err := b.NeighborsCtx(ctx, local)
		return nOut{ids, wts}, err
	})
	return v.ids, v.wts, err
}

// Insert routes one insert (see InsertCtx).
func (c *Coordinator) Insert(v mogul.Vector) (int, error) {
	return c.InsertCtx(context.Background(), v)
}

// Delete routes one delete (see DeleteCtx).
func (c *Coordinator) Delete(id int) error { return c.DeleteCtx(context.Background(), id) }

// Compact folds every shard's delta in (see CompactCtx).
func (c *Coordinator) Compact() error { return c.CompactCtx(context.Background()) }

// Save is unsupported on a coordinator: each shard owns its state —
// snapshot the shard servers individually (/dist/snapshot).
func (c *Coordinator) Save(w io.Writer) error {
	return fmt.Errorf("dist: a coordinator has no single index to save; snapshot each shard server")
}

// SaveFile is unsupported (see Save).
func (c *Coordinator) SaveFile(path string) error { return c.Save(nil) }

// coordQuerier delegates to the coordinator: per-query scratch lives
// shard-side, so there is nothing to pin per worker.
type coordQuerier struct{ c *Coordinator }

func (q coordQuerier) TopK(query, k int) ([]mogul.Result, error) { return q.c.TopK(query, k) }
func (q coordQuerier) TopKWithInfo(query, k int) ([]mogul.Result, *mogul.SearchInfo, error) {
	return q.c.TopKWithInfo(query, k)
}
func (q coordQuerier) TopKVector(v mogul.Vector, k int) ([]mogul.Result, error) {
	return q.c.TopKVector(v, k)
}
func (q coordQuerier) TopKSet(seeds []int, k int) ([]mogul.Result, error) {
	return q.c.TopKSet(seeds, k)
}

// NewQuerier returns a Querier delegating to the coordinator.
func (c *Coordinator) NewQuerier() mogul.Querier { return coordQuerier{c} }
