package dist_test

// Chaos suite: a 3-shard loopback cluster under concurrent query
// load while faults flip on and off — latency spikes, dropped
// requests, a full partition, mid-body connection resets. The
// invariants under chaos:
//
//  1. No search returns a WRONG answer: every successful fan-out is
//     bit-identical to the healthy oracle (exact mode), degraded or
//     not — failure may shrink coverage, never corrupt it. (Shards
//     are not mutated during the storm, so any successful merge over
//     answering shards containing the owner is deterministic.)
//  2. Degraded reporting is truthful: complete results answer from
//     all shards; incomplete ones name the faulted shards.
//  3. Nothing leaks: once the storm ends and the cluster closes, the
//     goroutine count returns to baseline (run under -race in CI).

import (
	"context"
	"math/rand"
	"runtime"
	"slices"
	"sync"
	"testing"
	"time"

	"mogul"
	"mogul/dist"
	"mogul/dist/disttest"
)

func TestChaosFanOut(t *testing.T) {
	ds := mogul.NewMixture(mogul.MixtureConfig{N: 240, Classes: 6, Dim: 8, WithinStd: 0.25, Separation: 3, Seed: 7})
	opts := mogul.Options{Seed: 3, Exact: true}
	cl := disttest.NewCluster(t, disttest.ClusterConfig{
		Shards: 3,
		Points: ds.Points,
		Build:  opts,
		Client: dist.ClientOptions{Timeout: 500 * time.Millisecond, Retries: 1, Backoff: 2 * time.Millisecond},
		Coord:  dist.CoordOptions{ShardTimeout: time.Second},
	})
	oracle, err := mogul.BuildSharded(ds.Points, opts, mogul.ShardOptions{Shards: 3})
	if err != nil {
		t.Fatal(err)
	}
	// Precompute the oracle's answers: the cluster is not mutated
	// during the storm, so these stay the truth throughout.
	queries := sampleQueries(ds.Len(), 13)
	want := make(map[int][]mogul.Result, len(queries))
	for _, q := range queries {
		res, err := oracle.TopK(q, 10)
		if err != nil {
			t.Fatal(err)
		}
		want[q] = res
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup

	// The fault storm: flip one fault on, hold, clear, repeat.
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(42))
		for i := 0; ; i++ {
			select {
			case <-stop:
				for _, f := range cl.Faults {
					f.Clear()
				}
				return
			default:
			}
			f := cl.Faults[rng.Intn(len(cl.Faults))]
			switch rng.Intn(4) {
			case 0:
				f.Partition()
			case 1:
				f.DropEvery(2)
			case 2:
				f.Latency(5 * time.Millisecond)
			case 3:
				f.ResetAfter(64)
			}
			time.Sleep(10 * time.Millisecond)
			f.Clear()
		}
	}()

	// Query workers: hammer the ctx surface, verifying invariant 1
	// on every success and invariant 2 on every outcome.
	var (
		mu        sync.Mutex
		successes int
		degradeds int
	)
	const workers = 8
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + w)))
			for {
				select {
				case <-stop:
					return
				default:
				}
				q := queries[rng.Intn(len(queries))]
				res, deg, err := cl.Coord.TopKCtx(context.Background(), q, 10)
				if err != nil {
					continue // owner unreachable this instant — acceptable
				}
				if deg.Complete() {
					// Full fan-out must be bit-identical to the oracle.
					if !slices.Equal(res, want[q]) {
						t.Errorf("complete fan-out for %d diverged from oracle:\ngot  %v\nwant %v", q, res, want[q])
						return
					}
					mu.Lock()
					successes++
					mu.Unlock()
				} else {
					// Degraded: every answer must still be a subset of
					// plausible candidates — ids must be valid and the
					// failed map non-empty.
					if len(deg.Failed) == 0 {
						t.Error("incomplete result with empty Failed map")
						return
					}
					for _, r := range res {
						if r.Node < 0 || r.Node >= ds.Len() {
							t.Errorf("degraded result for %d contains invalid id %d", q, r.Node)
							return
						}
					}
					mu.Lock()
					degradeds++
					mu.Unlock()
				}
			}
		}(w)
	}

	time.Sleep(600 * time.Millisecond)
	close(stop)
	wg.Wait()
	t.Logf("chaos storm: %d complete (oracle-identical) results, %d degraded", successes, degradeds)
	if successes == 0 {
		t.Error("no complete fan-out ever succeeded under chaos — faults too aggressive to prove invariant 1")
	}
	if degradeds == 0 {
		t.Log("note: no degraded results observed this run (timing-dependent)")
	}
}

// TestChaosGoroutineHygiene pins invariant 3 precisely: boot a
// cluster, run a short storm, tear everything down explicitly, and
// require the goroutine count back at baseline.
func TestChaosGoroutineHygiene(t *testing.T) {
	ds := mogul.NewMixture(mogul.MixtureConfig{N: 120, Classes: 4, Dim: 6, WithinStd: 0.3, Separation: 3, Seed: 3})
	baseline := runtime.NumGoroutine()

	inner := &cleanupRecorder{T: t}
	cl := disttest.NewCluster(inner, disttest.ClusterConfig{
		Shards: 2,
		Points: ds.Points,
		Build:  mogul.Options{Seed: 5, Exact: true},
		Client: dist.ClientOptions{Timeout: 200 * time.Millisecond, Retries: 1, Backoff: time.Millisecond},
	})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				if i%5 == 0 {
					cl.Faults[w%2].ResetAfter(32)
				} else {
					cl.Faults[w%2].Clear()
				}
				_, _, _ = cl.Coord.TopKCtx(context.Background(), i%ds.Len(), 5)
			}
		}(w)
	}
	wg.Wait()
	inner.runCleanups() // tear the cluster down NOW, not at test end

	for i := 0; ; i++ {
		if runtime.NumGoroutine() <= baseline+2 {
			break
		}
		if i > 100 {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutines leaked after chaos teardown: %d now vs %d baseline\n%s",
				runtime.NumGoroutine(), baseline, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// cleanupRecorder intercepts t.Cleanup registrations so a test can
// run a harness's teardown mid-test and then assert on the quiesced
// state.
type cleanupRecorder struct {
	*testing.T
	cleanups []func()
	ran      bool
}

func (c *cleanupRecorder) Cleanup(f func()) {
	c.cleanups = append(c.cleanups, f)
	if !c.ran {
		// Also register with the real T as a safety net in case the
		// test fails before calling runCleanups.
		c.T.Cleanup(func() {
			if !c.ran {
				f()
			}
		})
	}
}

func (c *cleanupRecorder) runCleanups() {
	for i := len(c.cleanups) - 1; i >= 0; i-- {
		c.cleanups[i]()
	}
	c.ran = true
}
