package dist_test

// Table-driven contract tests for the remote-shard client's retry
// policy: idempotent reads retry on 5xx, 429, timeouts and transport
// faults with exponential backoff; mutations NEVER retry (a lost
// Insert response may have landed — retrying doubles it); permanent
// request defects (4xx, 410) fail fast; and the backoff wait is
// abandoned the moment the caller's context ends.

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"mogul"
	"mogul/dist"
)

// scriptedShard is a fake shard server that answers each request per
// a status script ("500,500,200" = fail twice then succeed) and
// counts attempts.
type scriptedShard struct {
	script   []int
	attempts atomic.Int32
	// delay stalls every response (for timeout cases).
	delay time.Duration
	// body overrides the success payload (default: minimal valid JSON
	// for the endpoint under test).
	body string
}

func (s *scriptedShard) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	n := int(s.attempts.Add(1)) - 1
	if s.delay > 0 {
		time.Sleep(s.delay)
	}
	status := http.StatusOK
	if n < len(s.script) {
		status = s.script[n]
	} else if len(s.script) > 0 {
		status = s.script[len(s.script)-1]
	}
	if status != http.StatusOK {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(status)
		w.Write([]byte(`{"error":"scripted failure"}`))
		return
	}
	body := s.body
	if body == "" {
		body = `{"items":1,"version":1,"exact":true}`
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write([]byte(body))
}

func TestClientRetryPolicy(t *testing.T) {
	cases := []struct {
		name string
		// script is the per-attempt status sequence (last repeats).
		script []int
		delay  time.Duration
		// body overrides the 200 payload.
		body string
		// call runs one client operation and reports its error.
		call func(c *dist.Client) error
		// wantAttempts pins how many HTTP attempts must have landed.
		wantAttempts int32
		wantErr      bool
	}{
		{
			name:   "read retries 5xx then succeeds",
			script: []int{500, 500, 200},
			call: func(c *dist.Client) error {
				_, err := c.InfoCtx(context.Background())
				return err
			},
			wantAttempts: 3,
		},
		{
			name:   "read retries 429 shed responses",
			script: []int{429, 200},
			call: func(c *dist.Client) error {
				_, err := c.InfoCtx(context.Background())
				return err
			},
			wantAttempts: 2,
		},
		{
			name:   "read exhausts retries on persistent 5xx",
			script: []int{500},
			call: func(c *dist.Client) error {
				_, err := c.InfoCtx(context.Background())
				return err
			},
			wantAttempts: 3, // 1 + Retries(2)
			wantErr:      true,
		},
		{
			name:   "read does not retry 4xx defects",
			script: []int{404},
			call: func(c *dist.Client) error {
				_, err := c.InfoCtx(context.Background())
				return err
			},
			wantAttempts: 1,
			wantErr:      true,
		},
		{
			name:   "log tail does not retry 410 truncation",
			script: []int{410},
			call: func(c *dist.Client) error {
				// 410 is a semantic answer (bootstrap needed), not an
				// error: ok=false, err=nil, after exactly one attempt.
				entries, ok, err := c.LogEntries(context.Background(), 1)
				if err != nil {
					return err
				}
				if ok || entries != nil {
					return errors.New("410 should surface as ok=false")
				}
				return nil
			},
			wantAttempts: 1,
		},
		{
			name:   "read retries timeouts",
			script: []int{200},
			delay:  80 * time.Millisecond, // > client timeout
			call: func(c *dist.Client) error {
				_, err := c.InfoCtx(context.Background())
				return err
			},
			wantAttempts: 3,
			wantErr:      true,
		},
		{
			name:   "vector search POST is an idempotent read",
			script: []int{500, 200},
			body:   `{"version":1,"answers":[{"item":0,"score":0.5}],"affinity":0.9}`,
			call: func(c *dist.Client) error {
				res, aff, err := c.VectorSearch(context.Background(), mogul.Vector{1, 2}, 5)
				if err != nil {
					return err
				}
				if len(res) != 1 || aff != 0.9 {
					return errors.New("decoded answer mismatch")
				}
				return nil
			},
			wantAttempts: 2,
		},
		{
			name:   "insert never retries on 5xx",
			script: []int{500},
			call: func(c *dist.Client) error {
				_, err := c.InsertCtx(context.Background(), mogul.Vector{1, 2})
				return err
			},
			wantAttempts: 1,
			wantErr:      true,
		},
		{
			name:   "delete never retries on 5xx",
			script: []int{500},
			call: func(c *dist.Client) error {
				return c.DeleteCtx(context.Background(), 0)
			},
			wantAttempts: 1,
			wantErr:      true,
		},
		{
			name:   "compact never retries on timeout",
			script: []int{200},
			delay:  80 * time.Millisecond,
			call: func(c *dist.Client) error {
				return c.CompactCtx(context.Background())
			},
			wantAttempts: 1,
			wantErr:      true,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			shard := &scriptedShard{script: tc.script, delay: tc.delay, body: tc.body}
			hs := httptest.NewServer(shard)
			defer hs.Close()
			c := dist.NewClient(hs.URL, dist.ClientOptions{
				Timeout: 30 * time.Millisecond,
				Retries: 2,
				Backoff: time.Millisecond,
			})
			defer c.CloseIdleConnections()
			err := tc.call(c)
			if tc.wantErr && err == nil {
				t.Fatal("wanted an error, got nil")
			}
			if !tc.wantErr && err != nil {
				t.Fatalf("unexpected error: %v", err)
			}
			// Attempts may still be finishing server-side after a client
			// timeout; wait briefly for the counter to settle.
			deadline := time.Now().Add(2 * time.Second)
			for shard.attempts.Load() < tc.wantAttempts && time.Now().Before(deadline) {
				time.Sleep(5 * time.Millisecond)
			}
			if got := shard.attempts.Load(); got != tc.wantAttempts {
				t.Fatalf("server saw %d attempts, want %d", got, tc.wantAttempts)
			}
		})
	}
}

// TestClientBackoffRespectsContext: with a huge backoff configured, a
// context cancelled between attempts unblocks the retry loop
// immediately instead of sleeping the backoff out.
func TestClientBackoffRespectsContext(t *testing.T) {
	shard := &scriptedShard{script: []int{500}}
	hs := httptest.NewServer(shard)
	defer hs.Close()
	c := dist.NewClient(hs.URL, dist.ClientOptions{
		Timeout: 50 * time.Millisecond,
		Retries: 3,
		Backoff: 30 * time.Second, // would stall the test if honoured
	})
	defer c.CloseIdleConnections()
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := c.InfoCtx(ctx)
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("cancelled read succeeded")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	if elapsed > 2*time.Second {
		t.Fatalf("cancellation took %v — the backoff sleep ignored the context", elapsed)
	}
	if got := shard.attempts.Load(); got != 1 {
		t.Fatalf("server saw %d attempts, want 1 (cancelled during first backoff)", got)
	}
}

// TestClientBackoffGrowth: the delay between retries doubles —
// attempt gaps measured server-side must be (roughly) Backoff then
// 2*Backoff.
func TestClientBackoffGrowth(t *testing.T) {
	var stamps []time.Time
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		stamps = append(stamps, time.Now())
		w.WriteHeader(http.StatusInternalServerError)
		w.Write([]byte(`{"error":"down"}`))
	}))
	defer hs.Close()
	base := 40 * time.Millisecond
	c := dist.NewClient(hs.URL, dist.ClientOptions{
		Timeout: time.Second,
		Retries: 2,
		Backoff: base,
	})
	defer c.CloseIdleConnections()
	if _, err := c.InfoCtx(context.Background()); err == nil {
		t.Fatal("persistent 500 should fail")
	}
	if len(stamps) != 3 {
		t.Fatalf("saw %d attempts, want 3", len(stamps))
	}
	gap1 := stamps[1].Sub(stamps[0])
	gap2 := stamps[2].Sub(stamps[1])
	if gap1 < base {
		t.Fatalf("first retry after %v, want >= %v", gap1, base)
	}
	if gap2 < 2*base {
		t.Fatalf("second retry after %v, want >= %v (doubled)", gap2, 2*base)
	}
}
