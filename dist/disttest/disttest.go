// Package disttest boots in-process Mogul clusters for testing the
// distributed layer: N shard servers on loopback listeners, remote
// clients against them, and a coordinator fanning out over the set —
// all inside one test process, so equivalence suites can pin the
// cluster's rankings against an in-process oracle, and chaos suites
// can inject faults at the transport seam without touching a real
// network.
package disttest

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"time"

	"mogul"
	"mogul/dist"
	"mogul/serve"
)

// ClusterConfig shapes a test cluster.
type ClusterConfig struct {
	// Shards is the shard-server count (default 3).
	Shards int
	// Points is the initial dataset, split contiguously across shards
	// with the exact BuildSharded recipe (required).
	Points []mogul.Vector
	// Build options for every shard (one sigma is pinned across the
	// set automatically when unset).
	Build mogul.Options
	// Serve configures each shard's serving layer (zero value: no
	// cache, no batching, default backpressure).
	Serve serve.Options
	// Client configures the per-shard remote clients. Tests usually
	// shorten Timeout/Backoff; Transport is overridden per shard by
	// the cluster's fault injectors.
	Client dist.ClientOptions
	// Coord configures the coordinator's fan-out.
	Coord dist.CoordOptions
}

// Cluster is a booted loopback cluster: per-shard servers, the fault
// injectors wrapping each shard's transport, remote clients, and a
// coordinator over them.
type Cluster struct {
	// Coord fans out over all shards through remote clients.
	Coord *dist.Coordinator
	// Servers holds each shard's HTTP server (index via .Index()).
	Servers []*dist.ShardServer
	// Clients holds the per-shard remote clients the coordinator uses.
	Clients []*dist.Client
	// Faults holds each shard's fault injector; Faults[i] shapes every
	// request to shard i.
	Faults []*Faults
	// Partition lists each shard's global ids in local order.
	Partition [][]int

	https []*httptest.Server
}

// testingT is the subset of *testing.T the harness needs.
type testingT interface {
	Helper()
	Fatalf(format string, args ...interface{})
	Cleanup(func())
}

// NewCluster boots a cluster and registers its teardown with t: shard
// servers close, clients drop pooled connections, listeners stop —
// leaving no goroutines behind (the leak checks in the chaos suite
// depend on this).
func NewCluster(t testingT, cfg ClusterConfig) *Cluster {
	t.Helper()
	if cfg.Shards <= 0 {
		cfg.Shards = 3
	}
	idxs, partition, err := dist.BuildShardIndexes(cfg.Points, cfg.Build, cfg.Shards)
	if err != nil {
		t.Fatalf("disttest: building shards: %v", err)
	}
	c := &Cluster{Partition: partition}
	shards := make([]dist.Shard, cfg.Shards)
	for i, ix := range idxs {
		srv := dist.NewShardServer(ix, cfg.Serve)
		hs := httptest.NewServer(srv)
		faults := &Faults{next: hs.Client().Transport}
		copts := cfg.Client
		copts.Transport = faults
		cl := dist.NewClient(hs.URL, copts)
		c.Servers = append(c.Servers, srv)
		c.https = append(c.https, hs)
		c.Faults = append(c.Faults, faults)
		c.Clients = append(c.Clients, cl)
		shards[i] = dist.Shard{Replicas: []dist.Backend{cl}}
	}
	coord, err := dist.NewCoordinator(shards, partition, cfg.Coord)
	if err != nil {
		c.shutdown()
		t.Fatalf("disttest: building coordinator: %v", err)
	}
	c.Coord = coord
	t.Cleanup(c.shutdown)
	return c
}

// shutdown tears the cluster down in dependency order.
func (c *Cluster) shutdown() {
	for _, cl := range c.Clients {
		cl.CloseIdleConnections()
	}
	for _, hs := range c.https {
		hs.Close()
	}
	for _, s := range c.Servers {
		s.Close()
	}
}

// AddReplica boots a server + client around a follower index and
// registers them for cluster teardown. The coordinator's shard wiring
// is fixed at construction and is NOT updated — this is for
// replication tests that drive a Replicator against the new node
// directly.
func (c *Cluster) AddReplica(t testingT, follower *mogul.Index, serveOpts serve.Options, copts dist.ClientOptions) *dist.Client {
	t.Helper()
	srv := dist.NewShardServer(follower, serveOpts)
	hs := httptest.NewServer(srv)
	faults := &Faults{next: hs.Client().Transport}
	copts.Transport = faults
	cl := dist.NewClient(hs.URL, copts)
	c.Servers = append(c.Servers, srv)
	c.https = append(c.https, hs)
	c.Faults = append(c.Faults, faults)
	c.Clients = append(c.Clients, cl)
	return cl
}

// errInjected marks failures manufactured by the harness.
var errInjected = errors.New("disttest: injected fault")

// IsInjected reports whether an error chain contains a harness fault.
func IsInjected(err error) bool { return errors.Is(err, errInjected) }

// Faults is a fault-injecting http.RoundTripper wrapping a real
// transport. All knobs are safe for concurrent use and take effect
// immediately — a chaos loop flips them while traffic is in flight.
//
// Fault order per request: partition check, drop check, latency,
// then the real round trip, then the mid-body reset wrapper.
type Faults struct {
	mu sync.Mutex
	// dropEvery drops request number n when n%dropEvery == 0 (0: off).
	dropEvery int
	// partitioned fails every request while set.
	partitioned bool
	// latency delays every request before it reaches the transport.
	latency time.Duration
	// resetAfter truncates response bodies after this many bytes with
	// a connection-reset error (0: off).
	resetAfter int
	// count numbers requests for dropEvery.
	count int

	next http.RoundTripper
}

// Partition severs the shard: every request fails immediately with an
// injected error until Heal.
func (f *Faults) Partition() { f.mu.Lock(); f.partitioned = true; f.mu.Unlock() }

// Heal reconnects a partitioned shard.
func (f *Faults) Heal() { f.mu.Lock(); f.partitioned = false; f.mu.Unlock() }

// DropEvery drops every n-th request (n <= 0 disables).
func (f *Faults) DropEvery(n int) { f.mu.Lock(); f.dropEvery = n; f.count = 0; f.mu.Unlock() }

// Latency delays every request by d before it is sent.
func (f *Faults) Latency(d time.Duration) { f.mu.Lock(); f.latency = d; f.mu.Unlock() }

// ResetAfter makes every response body fail with a mid-body
// connection reset after n bytes (n <= 0 disables).
func (f *Faults) ResetAfter(n int) { f.mu.Lock(); f.resetAfter = n; f.mu.Unlock() }

// Clear removes all injected faults.
func (f *Faults) Clear() {
	f.mu.Lock()
	f.dropEvery, f.partitioned, f.latency, f.resetAfter = 0, false, 0, 0
	f.mu.Unlock()
}

// RoundTrip implements http.RoundTripper with the configured faults.
func (f *Faults) RoundTrip(req *http.Request) (*http.Response, error) {
	f.mu.Lock()
	partitioned := f.partitioned
	latency := f.latency
	resetAfter := f.resetAfter
	drop := false
	if f.dropEvery > 0 {
		f.count++
		drop = f.count%f.dropEvery == 0
	}
	f.mu.Unlock()

	if partitioned {
		return nil, fmt.Errorf("%w: partitioned from %s", errInjected, req.URL.Host)
	}
	if drop {
		return nil, fmt.Errorf("%w: dropped request to %s", errInjected, req.URL.Path)
	}
	if latency > 0 {
		select {
		case <-time.After(latency):
		case <-req.Context().Done():
			return nil, req.Context().Err()
		}
	}
	resp, err := f.next.RoundTrip(req)
	if err != nil || resetAfter <= 0 {
		return resp, err
	}
	resp.Body = &resettingBody{rc: resp.Body, remaining: resetAfter}
	return resp, nil
}

// resettingBody fails mid-stream after a byte budget, simulating a
// connection reset while the response body is in flight — the status
// line arrived fine, the payload did not.
type resettingBody struct {
	rc        io.ReadCloser
	remaining int
}

func (b *resettingBody) Read(p []byte) (int, error) {
	if b.remaining <= 0 {
		return 0, fmt.Errorf("%w: connection reset mid-body", errInjected)
	}
	if len(p) > b.remaining {
		p = p[:b.remaining]
	}
	n, err := b.rc.Read(p)
	b.remaining -= n
	if err == io.EOF {
		return n, err
	}
	if b.remaining <= 0 && err == nil {
		err = fmt.Errorf("%w: connection reset mid-body", errInjected)
	}
	return n, err
}

func (b *resettingBody) Close() error { return b.rc.Close() }
