package dist_test

// Replication convergence as a property: for ANY interleaving of
// Insert/Delete/Compact on a primary, a follower tailing the delta
// log reaches the same Version() and ranks bit-identically. The build
// pipeline is deterministic end to end, so replay is not "close" —
// it is equality, and these tests pin it that way. Both transports
// are exercised: the in-process LogSource and the real HTTP log
// endpoint (binary codec, 410 truncation contract, snapshot
// bootstrap).

import (
	"context"
	"errors"
	"math/rand"
	"slices"
	"testing"
	"time"

	"mogul"
	"mogul/dist"
	"mogul/dist/disttest"
)

// buildPair builds a primary and a follower from the same points —
// bit-identical twins at version 1.
func buildPair(t *testing.T, points []mogul.Vector, opts mogul.Options) (*mogul.Index, *mogul.Index) {
	t.Helper()
	primary, err := mogul.Build(points, opts)
	if err != nil {
		t.Fatal(err)
	}
	follower, err := mogul.Build(points, opts)
	if err != nil {
		t.Fatal(err)
	}
	return primary, follower
}

// assertConverged checks version parity and bit-identical rankings
// over every live id.
func assertConverged(t *testing.T, primary, follower *mogul.Index, stage string) {
	t.Helper()
	if p, f := primary.Version(), follower.Version(); p != f {
		t.Fatalf("%s: version diverged: primary %d, follower %d", stage, p, f)
	}
	if p, f := primary.Len(), follower.Len(); p != f {
		t.Fatalf("%s: Len diverged: primary %d, follower %d", stage, p, f)
	}
	for q := 0; q < primary.IDSpace(); q++ {
		if !primary.Alive(q) {
			if follower.Alive(q) {
				t.Fatalf("%s: id %d dead on primary, alive on follower", stage, q)
			}
			continue
		}
		want, err := primary.TopK(q, 10)
		if err != nil {
			t.Fatal(err)
		}
		got, err := follower.TopK(q, 10)
		if err != nil {
			t.Fatalf("%s: follower TopK(%d): %v", stage, q, err)
		}
		if !slices.Equal(got, want) {
			t.Fatalf("%s: TopK(%d) diverged:\nprimary  %v\nfollower %v", stage, q, want, got)
		}
	}
}

// mutateRandomly applies n random mutations (weighted toward inserts)
// and returns how many were applied.
func mutateRandomly(t *testing.T, ix *mogul.Index, rng *rand.Rand, dim, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		switch op := rng.Intn(10); {
		case op < 6: // insert
			v := make(mogul.Vector, dim)
			for d := range v {
				v[d] = rng.NormFloat64()
			}
			if _, err := ix.Insert(v); err != nil {
				t.Fatal(err)
			}
		case op < 9: // delete a random live id
			space := ix.IDSpace()
			for tries := 0; tries < 32; tries++ {
				id := rng.Intn(space)
				if ix.Alive(id) {
					if err := ix.Delete(id); err != nil {
						t.Fatal(err)
					}
					break
				}
			}
		default:
			if err := ix.Compact(); err != nil {
				t.Fatal(err)
			}
		}
	}
}

// TestReplicationConvergenceProperty: random interleavings over
// several seeds, applied through the in-process log source.
func TestReplicationConvergenceProperty(t *testing.T) {
	ds := mogul.NewMixture(mogul.MixtureConfig{N: 120, Classes: 4, Dim: 6, WithinStd: 0.3, Separation: 3, Seed: 3})
	for seed := int64(1); seed <= 4; seed++ {
		primary, follower := buildPair(t, ds.Points, mogul.Options{Seed: 5})
		rep := dist.NewReplicator(dist.IndexSource(primary), follower, primary.Version())
		rng := rand.New(rand.NewSource(seed))
		for round := 0; round < 3; round++ {
			mutateRandomly(t, primary, rng, 6, 15)
			if _, err := rep.CatchUp(context.Background()); err != nil {
				t.Fatalf("seed %d round %d: %v", seed, round, err)
			}
			assertConverged(t, primary, follower, "in-process")
		}
		if rep.Cursor() != primary.Version() {
			t.Fatalf("seed %d: cursor %d, primary version %d", seed, rep.Cursor(), primary.Version())
		}
	}
}

// TestReplicationAutoCompactInterleaving: a primary whose inserts
// trigger auto-compaction logs Insert+Compact pairs; replay keeps the
// follower's counters locked in step through them.
func TestReplicationAutoCompactInterleaving(t *testing.T) {
	ds := mogul.NewMixture(mogul.MixtureConfig{N: 100, Classes: 4, Dim: 6, WithinStd: 0.3, Separation: 3, Seed: 3})
	opts := mogul.Options{Seed: 5, AutoCompactFraction: 0.1}
	primary, follower := buildPair(t, ds.Points, opts)
	rep := dist.NewReplicator(dist.IndexSource(primary), follower, primary.Version())
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 25; i++ {
		v := make(mogul.Vector, 6)
		for d := range v {
			v[d] = rng.NormFloat64()
		}
		if _, err := primary.Insert(v); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := rep.CatchUp(context.Background()); err != nil {
		t.Fatal(err)
	}
	assertConverged(t, primary, follower, "auto-compact")
}

// TestReplicationOverHTTP: the follower tails the primary through a
// real shard server — binary log codec on the wire, cursor handoff in
// the query string — and converges identically.
func TestReplicationOverHTTP(t *testing.T) {
	ds := mogul.NewMixture(mogul.MixtureConfig{N: 120, Classes: 4, Dim: 6, WithinStd: 0.3, Separation: 3, Seed: 3})
	cl := disttest.NewCluster(t, disttest.ClusterConfig{
		Shards: 1,
		Points: ds.Points,
		Build:  mogul.Options{Seed: 5},
		Client: dist.ClientOptions{Timeout: 5 * time.Second},
	})
	primary := cl.Servers[0].Index()
	follower, err := mogul.Build(ds.Points, mogul.Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	rep := dist.NewReplicator(cl.Clients[0], follower, primary.Version())
	rng := rand.New(rand.NewSource(2))
	mutateRandomly(t, primary, rng, 6, 20)
	if _, err := rep.CatchUp(context.Background()); err != nil {
		t.Fatal(err)
	}
	assertConverged(t, primary, follower, "http")

	// The follower acknowledges its cursor; the primary trims its log.
	before := primary.LogLen()
	if err := cl.Clients[0].TruncateLog(context.Background(), rep.Cursor()); err != nil {
		t.Fatal(err)
	}
	if after := primary.LogLen(); after != 0 || before == 0 {
		t.Fatalf("log trim: %d entries before, %d after", before, after)
	}
}

// TestReplicationSnapshotBootstrap: a follower whose cursor fell
// behind a truncated log gets ErrLogTruncated, bootstraps from the
// HTTP snapshot (stamped with its exact version), and converges from
// there — including across the snapshot's version reset.
func TestReplicationSnapshotBootstrap(t *testing.T) {
	ds := mogul.NewMixture(mogul.MixtureConfig{N: 120, Classes: 4, Dim: 6, WithinStd: 0.3, Separation: 3, Seed: 3})
	cl := disttest.NewCluster(t, disttest.ClusterConfig{
		Shards: 1,
		Points: ds.Points,
		Build:  mogul.Options{Seed: 5},
		Client: dist.ClientOptions{Timeout: 5 * time.Second},
	})
	primary := cl.Servers[0].Index()
	client := cl.Clients[0]
	rng := rand.New(rand.NewSource(4))
	mutateRandomly(t, primary, rng, 6, 15)
	primary.TruncateEntries(primary.Version()) // drop the whole log

	// A stale follower cannot catch up incrementally any more.
	stale, err := mogul.Build(ds.Points, mogul.Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	staleRep := dist.NewReplicator(client, stale, 1)
	if _, err := staleRep.CatchUp(context.Background()); !errors.Is(err, dist.ErrLogTruncated) {
		t.Fatalf("stale catch-up: got %v, want ErrLogTruncated", err)
	}

	// Bootstrap from the snapshot, then keep tailing new mutations.
	rep, follower, err := dist.Bootstrap(context.Background(), client)
	if err != nil {
		t.Fatal(err)
	}
	// A loaded snapshot restarts at version 1 while the primary is far
	// ahead; the replicator's offset bridges the gap.
	if follower.Version() != 1 {
		t.Fatalf("loaded snapshot at version %d, want 1", follower.Version())
	}
	mutateRandomly(t, primary, rng, 6, 10)
	if _, err := rep.CatchUp(context.Background()); err != nil {
		t.Fatal(err)
	}
	if p, f := primary.Len(), follower.Len(); p != f {
		t.Fatalf("bootstrap: Len diverged: primary %d, follower %d", p, f)
	}
	if rep.Cursor() != primary.Version() {
		t.Fatalf("bootstrap: cursor %d, primary version %d", rep.Cursor(), primary.Version())
	}
	for q := 0; q < primary.IDSpace(); q += 7 {
		if !primary.Alive(q) {
			continue
		}
		want, err := primary.TopK(q, 10)
		if err != nil {
			t.Fatal(err)
		}
		got, err := follower.TopK(q, 10)
		if err != nil {
			t.Fatal(err)
		}
		if !slices.Equal(got, want) {
			t.Fatalf("bootstrap: TopK(%d) diverged", q)
		}
	}
}

// TestReplicatorRunLoop: the polling loop keeps a follower of a live
// shard server converged and stops cleanly on context cancellation.
func TestReplicatorRunLoop(t *testing.T) {
	ds := mogul.NewMixture(mogul.MixtureConfig{N: 100, Classes: 4, Dim: 6, WithinStd: 0.3, Separation: 3, Seed: 3})
	cl := disttest.NewCluster(t, disttest.ClusterConfig{
		Shards: 1,
		Points: ds.Points,
		Build:  mogul.Options{Seed: 5},
		Client: dist.ClientOptions{Timeout: 5 * time.Second},
	})
	primary := cl.Servers[0].Index()
	follower, err := mogul.Build(ds.Points, mogul.Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	rep := dist.NewReplicator(cl.Clients[0], follower, primary.Version())
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- rep.Run(ctx, 5*time.Millisecond) }()

	rng := rand.New(rand.NewSource(6))
	mutateRandomly(t, primary, rng, 6, 10)
	target := primary.Version()
	deadline := time.After(5 * time.Second)
	for follower.Version() != target {
		select {
		case <-deadline:
			cancel()
			t.Fatalf("follower stuck at version %d, primary at %d", follower.Version(), target)
		case <-time.After(2 * time.Millisecond):
		}
	}
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("Run returned %v, want context.Canceled", err)
	}
	assertConverged(t, primary, follower, "run-loop")
}
