package dist_test

// The spectral truncated-eigenbasis engine behind the distributed
// fan-out: a coordinator over a single LocalShard wrapping a
// *mogul.SpectralIndex is a pure passthrough (one shard, scale 1,
// merge of one list), so every search path must return bit-identical
// scores to the engine called directly — and stay bit-identical as
// Insert/Delete/Compact flow through the coordinator. This is the
// runtime counterpart of the compile-time ShardIndex assertion in
// coordinator.go.
//
// One semantic wrinkle: on Compact the flat engine renumbers live
// items densely while the coordinator keeps global ids stable and
// only remaps its shard-local table (compactShard), so the
// post-compact probe translates ids across that renumbering; scores
// must still match bit for bit.

import (
	"math"
	"testing"

	"mogul"
	"mogul/dist"
)

func sameSpectralResults(t *testing.T, path string, got, want []mogul.Result, toGlobal func(int) int) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d results, want %d", path, len(got), len(want))
	}
	for i := range want {
		if got[i].Node != toGlobal(want[i].Node) ||
			math.Float64bits(got[i].Score) != math.Float64bits(want[i].Score) {
			t.Fatalf("%s rank %d: got (%d, %x), want (%d, %x)", path, i,
				got[i].Node, math.Float64bits(got[i].Score),
				toGlobal(want[i].Node), math.Float64bits(want[i].Score))
		}
	}
}

func TestLocalShardSpectralBitIdentical(t *testing.T) {
	ds := mogul.NewMixture(mogul.MixtureConfig{
		N: 220, Classes: 20, Dim: 8, WithinStd: 0.25, Separation: 3.0, Seed: 7,
	})
	base, extra := ds.Points[:200], ds.Points[200:]

	// Two engines built identically: one queried directly (the
	// oracle), one behind a single-shard coordinator. Mutations are
	// applied to the oracle directly and to the other only through the
	// coordinator, so the test also pins the LocalShard mutation path.
	direct, err := mogul.BuildSpectral(base, mogul.Options{Seed: 3}, mogul.SpectralOptions{Rank: 24})
	if err != nil {
		t.Fatal(err)
	}
	behind, err := mogul.BuildSpectral(base, mogul.Options{Seed: 3}, mogul.SpectralOptions{Rank: 24})
	if err != nil {
		t.Fatal(err)
	}
	coord, err := dist.NewCoordinator(
		[]dist.Shard{{Replicas: []dist.Backend{dist.LocalShard{Ix: behind}}}},
		dist.ContiguousPartition(len(base), 1),
		dist.CoordOptions{},
	)
	if err != nil {
		t.Fatal(err)
	}

	identity := func(id int) int { return id }

	// probe compares the coordinator against the direct engine on all
	// three search paths. toDirect maps a coordinator global id to the
	// direct engine's id space; toGlobal inverts it (both identity
	// until the compaction stage renumbers the direct engine).
	probe := func(stage string, globalIDs []int, toDirect, toGlobal func(int) int) {
		t.Helper()
		for _, g := range globalIDs {
			want, err := direct.TopK(toDirect(g), 10)
			if err != nil {
				t.Fatalf("%s: direct TopK(%d): %v", stage, toDirect(g), err)
			}
			got, err := coord.TopK(g, 10)
			if err != nil {
				t.Fatalf("%s: coordinator TopK(%d): %v", stage, g, err)
			}
			sameSpectralResults(t, stage+"/TopK", got, want, toGlobal)
		}
		for i, q := range extra {
			want, err := direct.TopKVector(q, 10)
			if err != nil {
				t.Fatalf("%s: direct TopKVector[%d]: %v", stage, i, err)
			}
			got, err := coord.TopKVector(q, 10)
			if err != nil {
				t.Fatalf("%s: coordinator TopKVector[%d]: %v", stage, i, err)
			}
			sameSpectralResults(t, stage+"/TopKVector", got, want, toGlobal)
		}
		seeds := globalIDs[:3]
		directSeeds := make([]int, len(seeds))
		for i, g := range seeds {
			directSeeds[i] = toDirect(g)
		}
		want, err := direct.TopKSet(directSeeds, 10)
		if err != nil {
			t.Fatalf("%s: direct TopKSet: %v", stage, err)
		}
		got, err := coord.TopKSet(seeds, 10)
		if err != nil {
			t.Fatalf("%s: coordinator TopKSet: %v", stage, err)
		}
		sameSpectralResults(t, stage+"/TopKSet", got, want, toGlobal)
	}

	liveIDs := func() []int {
		ids := []int{}
		for g := 0; g < direct.IDSpace(); g += 17 {
			if direct.Alive(g) {
				ids = append(ids, g)
			}
		}
		return ids
	}

	probe("fresh", liveIDs(), identity, identity)

	for _, v := range extra {
		if _, err := direct.Insert(v); err != nil {
			t.Fatal(err)
		}
		if _, err := coord.Insert(v); err != nil {
			t.Fatal(err)
		}
	}
	deleted := []int{5, 60, 201} // two base items and a delta item
	for _, id := range deleted {
		if err := direct.Delete(id); err != nil {
			t.Fatal(err)
		}
		if err := coord.Delete(id); err != nil {
			t.Fatal(err)
		}
	}
	probe("mutated", liveIDs(), identity, identity)

	// Compact renumbers the direct engine (live items, old order) but
	// not the coordinator's global ids: build the translation before
	// compacting, then verify scores still match across it.
	space := direct.IDSpace()
	globals := []int{}
	toDirect := make(map[int]int, space)
	toGlobal := make(map[int]int, space)
	next := 0
	for g := 0; g < space; g++ {
		if !direct.Alive(g) {
			continue
		}
		toDirect[g] = next
		toGlobal[next] = g
		next++
		if g%17 == 0 {
			globals = append(globals, g)
		}
	}
	if err := direct.Compact(); err != nil {
		t.Fatal(err)
	}
	if err := coord.Compact(); err != nil {
		t.Fatal(err)
	}
	probe("compacted", globals,
		func(g int) int { return toDirect[g] },
		func(d int) int { return toGlobal[d] })
}
