package dist_test

// Equivalence suite pinning the distributed coordinator to the
// in-process ShardedIndex oracle. The coordinator reimplements the
// exact fan-out/merge over HTTP, and JSON float64 round-trips scores
// bit-exactly, so on the same contiguous partition the merged
// rankings must be IDENTICAL — ids and scores — in exact mode; the
// approximate mode is additionally pinned statistically (recall@10
// >= 0.95) so a regression in either mode is caught by the cheaper
// check first.

import (
	"context"
	"slices"
	"testing"
	"time"

	"mogul"
	"mogul/dist"
	"mogul/dist/disttest"
)

// equivCluster boots a cluster plus its in-process oracle: the same
// points, options and contiguous partition on both sides.
func equivCluster(t *testing.T, points []mogul.Vector, opts mogul.Options, shards int) (*disttest.Cluster, *mogul.ShardedIndex) {
	t.Helper()
	cl := disttest.NewCluster(t, disttest.ClusterConfig{
		Shards: shards,
		Points: points,
		Build:  opts,
		Client: dist.ClientOptions{Timeout: 10 * time.Second},
	})
	oracle, err := mogul.BuildSharded(points, opts, mogul.ShardOptions{Shards: shards})
	if err != nil {
		t.Fatal(err)
	}
	return cl, oracle
}

func sampleQueries(n, stride int) []int {
	out := []int{}
	for q := 0; q < n; q += stride {
		out = append(out, q)
	}
	return out
}

// recallAt10 is |top10(got) ∩ top10(want)| / 10 averaged over queries.
func recallAt10(t *testing.T, got, want func(q int) []mogul.Result, queries []int) float64 {
	t.Helper()
	total := 0.0
	for _, q := range queries {
		w := want(q)
		g := got(q)
		wantSet := map[int]bool{}
		for _, r := range w {
			wantSet[r.Node] = true
		}
		hit := 0
		for _, r := range g {
			if wantSet[r.Node] {
				hit++
			}
		}
		if len(w) > 0 {
			total += float64(hit) / float64(len(w))
		} else {
			total += 1
		}
	}
	return total / float64(len(queries))
}

// TestCoordinatorBitIdenticalExact: in exact mode every fan-out path —
// in-database, out-of-sample, multi-seed — returns byte-for-byte what
// the in-process ShardedIndex returns, across 2 and 3 shards.
func TestCoordinatorBitIdenticalExact(t *testing.T) {
	ds := mogul.NewMixture(mogul.MixtureConfig{N: 300, Classes: 6, Dim: 8, WithinStd: 0.25, Separation: 3, Seed: 7})
	for _, shards := range []int{2, 3} {
		cl, oracle := equivCluster(t, ds.Points, mogul.Options{Seed: 3, Exact: true}, shards)
		if got, want := cl.Coord.Len(), oracle.Len(); got != want {
			t.Fatalf("S=%d Len: coordinator %d, oracle %d", shards, got, want)
		}
		if !cl.Coord.Exact() {
			t.Fatalf("S=%d coordinator lost the exact flag", shards)
		}
		for _, q := range sampleQueries(ds.Len(), 29) {
			want, err := oracle.TopK(q, 10)
			if err != nil {
				t.Fatal(err)
			}
			got, err := cl.Coord.TopK(q, 10)
			if err != nil {
				t.Fatal(err)
			}
			if !slices.Equal(got, want) {
				t.Fatalf("S=%d TopK(%d) differs:\ncoordinator %v\noracle      %v", shards, q, got, want)
			}
		}
		for _, q := range sampleQueries(ds.Len(), 61) {
			qv := slices.Clone(ds.Points[q])
			qv[0] += 0.03
			want, err := oracle.TopKVector(qv, 10)
			if err != nil {
				t.Fatal(err)
			}
			got, err := cl.Coord.TopKVector(qv, 10)
			if err != nil {
				t.Fatal(err)
			}
			if !slices.Equal(got, want) {
				t.Fatalf("S=%d TopKVector(%d) differs:\ncoordinator %v\noracle      %v", shards, q, got, want)
			}
		}
		// Seeds straddling shard boundaries exercise the weighted
		// per-shard set splitting.
		seedSets := [][]int{{1, 2, 3}, {0, ds.Len() / 2, ds.Len() - 1}, {5}}
		for _, seeds := range seedSets {
			want, err := oracle.TopKSet(seeds, 10)
			if err != nil {
				t.Fatal(err)
			}
			got, err := cl.Coord.TopKSet(seeds, 10)
			if err != nil {
				t.Fatal(err)
			}
			if !slices.Equal(got, want) {
				t.Fatalf("S=%d TopKSet(%v) differs:\ncoordinator %v\noracle      %v", shards, seeds, got, want)
			}
		}
	}
}

// TestCoordinatorRecallApproximate: the default approximate mode is
// pinned at recall@10 >= 0.95 against the oracle (it is in fact
// bit-identical too — same shard indexes, same merge — but the
// statistical floor is the contract the ISSUE sets, robust to benign
// float reassociation).
func TestCoordinatorRecallApproximate(t *testing.T) {
	ds := mogul.NewTwoMoons(mogul.TwoMoonsConfig{N: 300, Noise: 0.06, Seed: 5})
	cl, oracle := equivCluster(t, ds.Points, mogul.Options{Seed: 3}, 3)
	queries := sampleQueries(ds.Len(), 17)
	rec := recallAt10(t,
		func(q int) []mogul.Result {
			res, err := cl.Coord.TopK(q, 10)
			if err != nil {
				t.Fatal(err)
			}
			return res
		},
		func(q int) []mogul.Result {
			res, err := oracle.TopK(q, 10)
			if err != nil {
				t.Fatal(err)
			}
			return res
		},
		queries)
	t.Logf("approximate-mode recall@10 vs ShardedIndex oracle: %.3f", rec)
	if rec < 0.95 {
		t.Fatalf("recall@10 %.3f below 0.95", rec)
	}
}

// TestCoordinatorDynamicEquivalence drives the same mutation sequence
// through the coordinator and the oracle — inserts, deletes, a
// compaction that renumbers shard-local ids — and requires the global
// id assignment and every subsequent ranking to stay identical.
func TestCoordinatorDynamicEquivalence(t *testing.T) {
	ds := mogul.NewMixture(mogul.MixtureConfig{N: 240, Classes: 6, Dim: 8, WithinStd: 0.25, Separation: 3, Seed: 9})
	opts := mogul.Options{Seed: 3, Exact: true}
	cl, oracle := equivCluster(t, ds.Points, opts, 3)

	extra := mogul.NewMixture(mogul.MixtureConfig{N: 30, Classes: 6, Dim: 8, WithinStd: 0.25, Separation: 3, Seed: 10})
	for i, v := range extra.Points {
		gotID, err := cl.Coord.Insert(v)
		if err != nil {
			t.Fatal(err)
		}
		wantID, err := oracle.Insert(v)
		if err != nil {
			t.Fatal(err)
		}
		if gotID != wantID {
			t.Fatalf("insert %d routed to global id %d, oracle %d", i, gotID, wantID)
		}
	}
	for _, id := range []int{3, 50, 120, 200, 245} {
		if err := cl.Coord.Delete(id); err != nil {
			t.Fatal(err)
		}
		if err := oracle.Delete(id); err != nil {
			t.Fatal(err)
		}
	}
	check := func(stage string) {
		t.Helper()
		if got, want := cl.Coord.Len(), oracle.Len(); got != want {
			t.Fatalf("%s: Len %d vs oracle %d", stage, got, want)
		}
		for _, q := range []int{0, 7, 100, 150, 239, 250, 262} {
			want, wantErr := oracle.TopK(q, 10)
			got, gotErr := cl.Coord.TopK(q, 10)
			if (gotErr == nil) != (wantErr == nil) {
				t.Fatalf("%s: TopK(%d) error mismatch: coordinator %v, oracle %v", stage, q, gotErr, wantErr)
			}
			if gotErr != nil {
				continue
			}
			if !slices.Equal(got, want) {
				t.Fatalf("%s: TopK(%d) differs:\ncoordinator %v\noracle      %v", stage, q, got, want)
			}
		}
	}
	check("after mutations")
	if err := cl.Coord.Compact(); err != nil {
		t.Fatal(err)
	}
	if err := oracle.Compact(); err != nil {
		t.Fatal(err)
	}
	check("after compaction")
	// Deleted ids must stay errors on both sides after renumbering.
	if _, err := cl.Coord.TopK(3, 5); err == nil {
		t.Fatal("deleted id 3 still answers on the coordinator after compaction")
	}
}

// TestCoordinatorDegraded: with one shard partitioned away, the
// ctx search surface still answers from the remaining shards and
// reports exactly which shard failed; the strict surface refuses.
func TestCoordinatorDegraded(t *testing.T) {
	ds := mogul.NewMixture(mogul.MixtureConfig{N: 240, Classes: 6, Dim: 8, WithinStd: 0.25, Separation: 3, Seed: 7})
	cl := disttest.NewCluster(t, disttest.ClusterConfig{
		Shards: 3,
		Points: ds.Points,
		Build:  mogul.Options{Seed: 3, Exact: true},
		Client: dist.ClientOptions{Timeout: 2 * time.Second, Retries: 1, Backoff: time.Millisecond},
	})
	cl.Faults[2].Partition()

	// Query owned by shard 0: owner healthy, shard 2 missing from the
	// merge.
	res, deg, err := cl.Coord.TopKCtx(context.Background(), 0, 10)
	if err != nil {
		t.Fatalf("degraded TopKCtx failed outright: %v", err)
	}
	if len(res) == 0 {
		t.Fatal("degraded TopKCtx returned no answers")
	}
	if deg.Complete() {
		t.Fatal("Degraded claims complete with shard 2 partitioned")
	}
	if len(deg.Failed) != 1 || deg.Failed[2] == nil {
		t.Fatalf("Degraded.Failed = %v, want exactly shard 2", deg.Failed)
	}
	if !disttest.IsInjected(deg.Failed[2]) {
		t.Fatalf("shard 2 failure lost the injected cause: %v", deg.Failed[2])
	}
	if !slices.Contains(deg.Answered, 0) || !slices.Contains(deg.Answered, 1) {
		t.Fatalf("Degraded.Answered = %v, want shards 0 and 1", deg.Answered)
	}
	if err := deg.Err(); err == nil {
		t.Fatal("Degraded.Err() nil for an incomplete fan-out")
	}

	// Strict surface refuses the same query.
	if _, err := cl.Coord.TopK(0, 10); err == nil {
		t.Fatal("strict TopK answered despite a partitioned shard")
	}

	// Query owned by the partitioned shard: even the ctx surface must
	// fail — only the owner knows the query vector.
	ownerQ := cl.Partition[2][0]
	if _, _, err := cl.Coord.TopKCtx(context.Background(), ownerQ, 10); err == nil {
		t.Fatal("TopKCtx answered with the owner shard partitioned")
	}

	// Heal and the strict surface recovers.
	cl.Faults[2].Heal()
	if _, err := cl.Coord.TopK(0, 10); err != nil {
		t.Fatalf("after heal: %v", err)
	}
}
