package mogul

import (
	"runtime"
	"sync"
)

// BatchResult pairs one query of a batch with its answers (or error).
type BatchResult struct {
	// Query is the in-database query item id.
	Query int
	// Results are the ranked answers; nil when Err is set.
	Results []Result
	// Err reports a per-query failure (e.g. out-of-range id).
	Err error
}

// runBatch is the shared worker-pool engine behind the batch entry
// points of Index and ShardedIndex: n work items are fanned out to the
// workers, each of which builds one run closure over a private query
// engine (a Searcher or ShardedSearcher) for its whole run, so a batch
// of thousands of queries performs thousands of searches on a handful
// of reusable workspaces. Results land at their item's index; per-item
// failures are recorded, never fatal. parallelism <= 0 selects
// GOMAXPROCS.
func runBatch(n, parallelism int, worker func() func(i int) BatchResult) []BatchResult {
	out := make([]BatchResult, n)
	if n == 0 {
		return out
	}
	workers := parallelism
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			run := worker()
			for i := range next {
				out[i] = run(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
	return out
}

// TopKBatch answers many in-database queries concurrently. Searches
// only take the index's read lock, so queries parallelize perfectly;
// this is the bulk-evaluation entry point (e.g. scoring a whole query
// log). It is safe to run concurrently with Insert/Delete/Compact:
// each query observes a consistent index state, with inserted items
// competing in its results. parallelism <= 0 selects GOMAXPROCS.
// Results are returned in input order; per-query failures are
// reported in the corresponding BatchResult rather than aborting the
// batch.
func (ix *Index) TopKBatch(queries []int, k, parallelism int) []BatchResult {
	return runBatch(len(queries), parallelism, func() func(int) BatchResult {
		sr := ix.NewSearcher()
		return func(i int) BatchResult {
			q := queries[i]
			res, err := sr.TopK(q, k)
			return BatchResult{Query: q, Results: res, Err: err}
		}
	})
}

// TopKVectorBatch answers many out-of-sample queries concurrently,
// mirroring TopKBatch. The i-th BatchResult's Query field holds i (the
// position in the input slice).
func (ix *Index) TopKVectorBatch(queries []Vector, k, parallelism int) []BatchResult {
	return runBatch(len(queries), parallelism, func() func(int) BatchResult {
		sr := ix.NewSearcher()
		return func(i int) BatchResult {
			res, err := sr.TopKVector(queries[i], k)
			return BatchResult{Query: i, Results: res, Err: err}
		}
	})
}
