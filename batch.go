package mogul

import (
	"runtime"
	"sync"
)

// BatchResult pairs one query of a batch with its answers (or error).
type BatchResult struct {
	// Query is the in-database query item id.
	Query int
	// Results are the ranked answers; nil when Err is set.
	Results []Result
	// Err reports a per-query failure (e.g. out-of-range id).
	Err error
}

// TopKBatch answers many in-database queries concurrently. Searches
// only take the index's read lock, so queries parallelize perfectly;
// this is the bulk-evaluation entry point (e.g. scoring a whole query
// log). It is safe to run concurrently with Insert/Delete/Compact:
// each query observes a consistent index state, with inserted items
// competing in its results. parallelism <= 0 selects GOMAXPROCS.
// Results are returned in input order; per-query failures are
// reported in the corresponding BatchResult rather than aborting the
// batch.
func (ix *Index) TopKBatch(queries []int, k, parallelism int) []BatchResult {
	out := make([]BatchResult, len(queries))
	if len(queries) == 0 {
		return out
	}
	workers := parallelism
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(queries) {
		workers = len(queries)
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				q := queries[i]
				res, err := ix.TopK(q, k)
				out[i] = BatchResult{Query: q, Results: res, Err: err}
			}
		}()
	}
	for i := range queries {
		next <- i
	}
	close(next)
	wg.Wait()
	return out
}

// TopKVectorBatch answers many out-of-sample queries concurrently,
// mirroring TopKBatch. The i-th BatchResult's Query field holds i (the
// position in the input slice).
func (ix *Index) TopKVectorBatch(queries []Vector, k, parallelism int) []BatchResult {
	out := make([]BatchResult, len(queries))
	if len(queries) == 0 {
		return out
	}
	workers := parallelism
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(queries) {
		workers = len(queries)
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				res, err := ix.TopKVector(queries[i], k)
				out[i] = BatchResult{Query: i, Results: res, Err: err}
			}
		}()
	}
	for i := range queries {
		next <- i
	}
	close(next)
	wg.Wait()
	return out
}
