package mogul

// Property tests for anchor re-seeding under distribution drift (the
// EMR auto-compact/Compact contract). An insert-heavy workload whose
// new points land far from the base build leaves the k-means anchors
// covering the wrong region — delta items attach to distant anchors
// and recall in the drifted region suffers. Compact must fully
// re-seed: it re-runs the recorded recipe (k-means included) over the
// live points, so the compacted engine matches a fresh BuildEMR over
// those points exactly, and recall in the drifted region recovers.
// These tests also pin the auto-compact accounting fix: a deleted
// delta item counts once toward the pending-work threshold, not twice.

import (
	"bytes"
	"math/rand"
	"testing"

	"mogul/internal/eval"
)

// driftFixture builds an EMR engine over base points, then inserts a
// same-sized wave of points offset far outside the base support.
// Returns the engine, the full live point list in id order, and
// out-of-sample queries targeting the drifted region.
func driftFixture(t *testing.T, opts Options, eopts EMROptions) (*EMRIndex, []Vector, []Vector) {
	t.Helper()
	// The engine's target workload (docs/EMR.md): micro-clusters of ~10
	// near-duplicates, with enough anchors for ~3 per cluster.
	base := NewMixture(MixtureConfig{N: 400, Classes: 40, Dim: 8, WithinStd: 0.25, Separation: 3.0, Seed: 11})
	moved := NewMixture(MixtureConfig{N: 400, Classes: 40, Dim: 8, WithinStd: 0.25, Separation: 3.0, Seed: 31})
	drifted := make([]Vector, len(moved.Points))
	for i, p := range moved.Points {
		q := append(Vector(nil), p...)
		for d := range q {
			q[d] += 8.0
		}
		drifted[i] = q
	}

	e, err := BuildEMR(base.Points, opts, eopts)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range drifted {
		if _, err := e.Insert(p); err != nil {
			t.Fatal(err)
		}
	}

	live := append(append([]Vector(nil), base.Points...), drifted...)
	rng := rand.New(rand.NewSource(99))
	queries := make([]Vector, 32)
	for i := range queries {
		src := drifted[rng.Intn(len(drifted))]
		q := make(Vector, len(src))
		for d := range q {
			q[d] = src[d] + 0.05*rng.NormFloat64()
		}
		queries[i] = q
	}
	return e, live, queries
}

// emrRecallAt10 measures mean recall@10 of the engine against an
// exact Manifold Ranking oracle over the same points, on the given
// out-of-sample queries.
func emrRecallAt10(t *testing.T, engine *EMRIndex, pts []Vector, queries []Vector) float64 {
	t.Helper()
	exact, err := Build(pts, Options{Alpha: 0.99, Seed: 11, Exact: true, ApproximateGraph: true})
	if err != nil {
		t.Fatal(err)
	}
	var recall float64
	for _, q := range queries {
		ref, err := exact.TopKVector(q, 10)
		if err != nil {
			t.Fatal(err)
		}
		got, err := engine.TopKVector(q, 10)
		if err != nil {
			t.Fatal(err)
		}
		recall += eval.PAtK(eval.TopKIDs(got), eval.TopKIDs(ref))
	}
	return recall / float64(len(queries))
}

// TestEMRDriftCompactMatchesFresh: after the drifted wave doubles the
// database, Compact re-seeds the anchors over the combined support —
// the compacted engine answers exactly like a fresh BuildEMR over the
// live points, and recall in the drifted region recovers to the
// fresh-build level (at or above the pre-compact stale-anchor recall,
// and above the absolute bar).
func TestEMRDriftCompactMatchesFresh(t *testing.T) {
	opts := Options{Alpha: 0.99, Seed: 11}
	eopts := EMROptions{NumAnchors: 256, NumNearestAnchors: 8}
	e, live, queries := driftFixture(t, opts, eopts)

	recallStale := emrRecallAt10(t, e, live, queries)
	if err := e.Compact(); err != nil {
		t.Fatal(err)
	}
	recallFresh := emrRecallAt10(t, e, live, queries)
	t.Logf("drifted-region recall@10: stale anchors %.3f, after Compact %.3f", recallStale, recallFresh)
	if recallFresh < recallStale {
		t.Fatalf("Compact degraded drifted-region recall: %.3f -> %.3f", recallStale, recallFresh)
	}
	if recallFresh < 0.9 {
		t.Fatalf("post-Compact recall@10 = %.3f in the drifted region, want >= 0.9 (anchors not re-seeded?)", recallFresh)
	}

	// The compacted engine is indistinguishable from a fresh build over
	// the live points: same recipe, same seed, same answers to the bit.
	fresh, err := BuildEMR(live, opts, eopts)
	if err != nil {
		t.Fatal(err)
	}
	for q := 0; q < len(live); q += 61 {
		a, err := e.TopK(q, 10)
		if err != nil {
			t.Fatal(err)
		}
		b, err := fresh.TopK(q, 10)
		if err != nil {
			t.Fatal(err)
		}
		sameResults(t, "compacted vs fresh TopK after drift", a, b)
	}
	for _, qv := range queries[:8] {
		a, err := e.TopKVector(qv, 10)
		if err != nil {
			t.Fatal(err)
		}
		b, err := fresh.TopKVector(qv, 10)
		if err != nil {
			t.Fatal(err)
		}
		sameResults(t, "compacted vs fresh TopKVector after drift", a, b)
	}
}

// TestEMRNoDriftCompactBitIdentical: on a clean engine (no pending
// delta), Compact is a no-op — the serialized state stays
// byte-identical and the version does not move, so caches stay valid.
func TestEMRNoDriftCompactBitIdentical(t *testing.T) {
	ds := NewMixture(MixtureConfig{N: 300, Classes: 6, Dim: 8, WithinStd: 0.3, Separation: 3.0, Seed: 11})
	e, err := BuildEMR(ds.Points, Options{Alpha: 0.99, Seed: 11}, EMROptions{NumAnchors: 32, NumNearestAnchors: 6})
	if err != nil {
		t.Fatal(err)
	}
	var before bytes.Buffer
	if err := e.Save(&before); err != nil {
		t.Fatal(err)
	}
	v := e.Version()
	if err := e.Compact(); err != nil {
		t.Fatal(err)
	}
	if e.Version() != v {
		t.Fatal("no-drift Compact bumped the version")
	}
	var after bytes.Buffer
	if err := e.Save(&after); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before.Bytes(), after.Bytes()) {
		t.Fatal("no-drift Compact changed the serialized state")
	}
}

// TestEMRAutoCompactCountsDeletedDeltaOnce pins the accounting fix: a
// deleted delta item is one unit of pending compaction work (it is
// already counted as an inserted item), so churny insert-then-delete
// workloads must not trip the threshold at half its nominal value.
func TestEMRAutoCompactCountsDeletedDeltaOnce(t *testing.T) {
	ds := NewMixture(MixtureConfig{N: 140, Classes: 4, Dim: 6, WithinStd: 0.4, Separation: 2.5, Seed: 13})
	e, err := BuildEMR(ds.Points[:100], Options{Alpha: 0.99, Seed: 13, AutoCompactFraction: 0.5},
		EMROptions{NumAnchors: 16, NumNearestAnchors: 4})
	if err != nil {
		t.Fatal(err)
	}
	// 30 inserts then 30 deletes of those same delta items: pending
	// work is 30 (not 60), under the threshold of 50 — no compaction.
	ids := make([]int, 0, 30)
	for _, p := range ds.Points[100:130] {
		id, err := e.Insert(p)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	for _, id := range ids {
		if err := e.Delete(id); err != nil {
			t.Fatal(err)
		}
	}
	if d := e.Delta(); d.BaseItems != 100 || d.Tombstones != 30 {
		t.Fatalf("churny delta workload tripped auto-compact early: %+v", d)
	}
	// 21 base deletions push pending to 30+21=51 > 50: now it compacts,
	// leaving 79 live base items and a clean delta.
	for id := 0; id < 21; id++ {
		if err := e.Delete(id); err != nil {
			t.Fatal(err)
		}
	}
	if d := e.Delta(); d.BaseItems != 79 || d.DeltaItems != 0 || d.Tombstones != 0 {
		t.Fatalf("base tombstones past the threshold did not compact: %+v", d)
	}
}
