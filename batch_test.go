package mogul

import (
	"testing"
)

func TestTopKBatchMatchesSequential(t *testing.T) {
	ix, _ := buildTestIndex(t, Options{})
	queries := []int{0, 7, 42, 199, 7, 399}
	batch := ix.TopKBatch(queries, 6, 4)
	if len(batch) != len(queries) {
		t.Fatalf("batch size %d", len(batch))
	}
	for i, br := range batch {
		if br.Err != nil {
			t.Fatalf("query %d: %v", queries[i], br.Err)
		}
		if br.Query != queries[i] {
			t.Fatalf("result %d attributed to query %d, want %d", i, br.Query, queries[i])
		}
		seq, err := ix.TopK(queries[i], 6)
		if err != nil {
			t.Fatal(err)
		}
		if len(seq) != len(br.Results) {
			t.Fatalf("lengths differ for query %d", queries[i])
		}
		for j := range seq {
			if seq[j] != br.Results[j] {
				t.Fatalf("query %d rank %d: %+v vs %+v", queries[i], j, seq[j], br.Results[j])
			}
		}
	}
}

func TestTopKBatchPerQueryErrors(t *testing.T) {
	ix, _ := buildTestIndex(t, Options{})
	batch := ix.TopKBatch([]int{5, -1, 10_000_000}, 3, 0)
	if batch[0].Err != nil {
		t.Fatalf("valid query failed: %v", batch[0].Err)
	}
	if batch[1].Err == nil || batch[2].Err == nil {
		t.Fatal("invalid queries did not error")
	}
}

func TestTopKBatchEmpty(t *testing.T) {
	ix, _ := buildTestIndex(t, Options{})
	if got := ix.TopKBatch(nil, 5, 2); len(got) != 0 {
		t.Fatalf("empty batch returned %d results", len(got))
	}
	if got := ix.TopKVectorBatch(nil, 5, 2); len(got) != 0 {
		t.Fatalf("empty vector batch returned %d results", len(got))
	}
}

func TestTopKVectorBatch(t *testing.T) {
	ix, ds := buildTestIndex(t, Options{})
	queries := []Vector{
		ds.Points[3].Clone(),
		ds.Points[50].Clone(),
		make(Vector, 12),
	}
	batch := ix.TopKVectorBatch(queries, 4, 2)
	for i, br := range batch {
		if br.Err != nil {
			t.Fatalf("vector query %d: %v", i, br.Err)
		}
		if br.Query != i {
			t.Fatalf("vector result %d attributed to %d", i, br.Query)
		}
		if len(br.Results) != 4 {
			t.Fatalf("vector query %d returned %d results", i, len(br.Results))
		}
	}
	// A dimension mismatch surfaces per query, not as a panic.
	bad := ix.TopKVectorBatch([]Vector{{1, 2}}, 4, 1)
	if bad[0].Err == nil {
		t.Fatal("wrong-dimension vector accepted")
	}
}
