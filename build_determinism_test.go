package mogul

// Determinism contract of the parallel build pipeline (see
// docs/PERFORMANCE.md): precompute parallelized over internal/par must
// produce byte-identical Save output and bit-identical scores at any
// GOMAXPROCS, because block shapes and reduction orders are fixed
// functions of the input size, never of the worker count. These tests
// pin that contract for both the exact engine (Build) and the
// anchor-graph engine (BuildEMR), and the truncated-eigenbasis engine
// (BuildSpectral) at 1, 2, and 8 workers.

import (
	"bytes"
	"math"
	"runtime"
	"testing"
)

var determinismProcs = []int{1, 2, 8}

// withProcs runs fn at the given GOMAXPROCS and restores the previous
// setting.
func withProcs(t *testing.T, procs int, fn func()) {
	t.Helper()
	prev := runtime.GOMAXPROCS(procs)
	defer runtime.GOMAXPROCS(prev)
	fn()
}

func determinismPoints(n int) []Vector {
	ds := NewMixture(MixtureConfig{
		N: n, Classes: n / 20, Dim: 8, WithinStd: 0.25, Separation: 3.0, Seed: 7,
	})
	return ds.Points
}

// saveAndScores builds with build, serializes the result, and collects
// TopK answers for a spread of queries.
func topKSignature(t *testing.T, r Retriever, n int) [][]Result {
	t.Helper()
	queries := []int{0, 1, n / 3, n / 2, n - 1}
	out := make([][]Result, 0, len(queries))
	for _, q := range queries {
		res, err := r.TopK(q, 10)
		if err != nil {
			t.Fatalf("TopK(%d): %v", q, err)
		}
		out = append(out, res)
	}
	return out
}

func compareSignatures(t *testing.T, procs int, ref, got [][]Result) {
	t.Helper()
	for qi := range ref {
		if len(ref[qi]) != len(got[qi]) {
			t.Fatalf("GOMAXPROCS=%d query %d: %d results, want %d", procs, qi, len(got[qi]), len(ref[qi]))
		}
		for r := range ref[qi] {
			if ref[qi][r].Node != got[qi][r].Node ||
				math.Float64bits(ref[qi][r].Score) != math.Float64bits(got[qi][r].Score) {
				t.Fatalf("GOMAXPROCS=%d query %d rank %d: got (%d, %x), want (%d, %x)",
					procs, qi, r,
					got[qi][r].Node, math.Float64bits(got[qi][r].Score),
					ref[qi][r].Node, math.Float64bits(ref[qi][r].Score))
			}
		}
	}
}

func TestBuildDeterministicAcrossGOMAXPROCS(t *testing.T) {
	const n = 1200
	pts := determinismPoints(n)
	opts := Options{Exact: true, Seed: 3}

	var refBytes []byte
	var refSig [][]Result
	for _, procs := range determinismProcs {
		withProcs(t, procs, func() {
			ix, err := Build(pts, opts)
			if err != nil {
				t.Fatalf("GOMAXPROCS=%d: Build: %v", procs, err)
			}
			// Build wall-times are the one nondeterministic diagnostic in
			// the container; everything else must be byte-stable.
			ix.core.ClearTimings()
			var buf bytes.Buffer
			if err := ix.Save(&buf); err != nil {
				t.Fatalf("GOMAXPROCS=%d: Save: %v", procs, err)
			}
			sig := topKSignature(t, ix, n)
			if refBytes == nil {
				refBytes, refSig = buf.Bytes(), sig
				return
			}
			if !bytes.Equal(refBytes, buf.Bytes()) {
				t.Fatalf("GOMAXPROCS=%d: Save output differs from GOMAXPROCS=%d (%d vs %d bytes)",
					procs, determinismProcs[0], buf.Len(), len(refBytes))
			}
			compareSignatures(t, procs, refSig, sig)
		})
	}
}

func TestBuildSpectralDeterministicAcrossGOMAXPROCS(t *testing.T) {
	const n = 2000
	pts := determinismPoints(n)
	opts := Options{Seed: 3}
	sopts := SpectralOptions{Rank: 48}

	var refBytes []byte
	var refSig [][]Result
	for _, procs := range determinismProcs {
		withProcs(t, procs, func() {
			e, err := BuildSpectral(pts, opts, sopts)
			if err != nil {
				t.Fatalf("GOMAXPROCS=%d: BuildSpectral: %v", procs, err)
			}
			// Build wall-times are the one nondeterministic diagnostic in
			// the container; everything else must be byte-stable.
			e.st.stats.ClusterTime = 0
			e.st.stats.FactorTime = 0
			var buf bytes.Buffer
			if err := e.Save(&buf); err != nil {
				t.Fatalf("GOMAXPROCS=%d: Save: %v", procs, err)
			}
			sig := topKSignature(t, e, n)
			if refBytes == nil {
				refBytes, refSig = buf.Bytes(), sig
				return
			}
			if !bytes.Equal(refBytes, buf.Bytes()) {
				t.Fatalf("GOMAXPROCS=%d: Save output differs from GOMAXPROCS=%d (%d vs %d bytes)",
					procs, determinismProcs[0], buf.Len(), len(refBytes))
			}
			compareSignatures(t, procs, refSig, sig)
		})
	}
}

func TestBuildEMRDeterministicAcrossGOMAXPROCS(t *testing.T) {
	const n = 2000
	pts := determinismPoints(n)
	opts := Options{Seed: 3}
	eopts := EMROptions{NumAnchors: 64, NumNearestAnchors: 6}

	var refBytes []byte
	var refSig [][]Result
	for _, procs := range determinismProcs {
		withProcs(t, procs, func() {
			e, err := BuildEMR(pts, opts, eopts)
			if err != nil {
				t.Fatalf("GOMAXPROCS=%d: BuildEMR: %v", procs, err)
			}
			// Build wall-times are the one nondeterministic diagnostic in
			// the container; everything else must be byte-stable.
			e.st.stats.ClusterTime = 0
			e.st.stats.FactorTime = 0
			var buf bytes.Buffer
			if err := e.Save(&buf); err != nil {
				t.Fatalf("GOMAXPROCS=%d: Save: %v", procs, err)
			}
			sig := topKSignature(t, e, n)
			if refBytes == nil {
				refBytes, refSig = buf.Bytes(), sig
				return
			}
			if !bytes.Equal(refBytes, buf.Bytes()) {
				t.Fatalf("GOMAXPROCS=%d: Save output differs from GOMAXPROCS=%d (%d vs %d bytes)",
					procs, determinismProcs[0], buf.Len(), len(refBytes))
			}
			compareSignatures(t, procs, refSig, sig)
		})
	}
}
