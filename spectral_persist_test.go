package mogul

// Persistence hardening for the MOGULSPC container
// (spectral_persist.go), matching the plain/sharded/EMR suites: an
// errors-never-panics corruption sweep over truncations, bit flips,
// and CRC-restamped structural lies, plus a fuzz target over the
// sniffing loader. The happy-path round trip (bit-identical queries,
// byte-stable re-save, post-load Compact) lives in spectral_test.go.

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"sync"
	"testing"
)

// buildSpectralFixture builds a small engine with live delta state
// (inserts and tombstones on base and delta items) so every container
// section — graph, embedding, attachments, tombstones — carries
// non-trivial content.
func buildSpectralFixture(t *testing.T) *SpectralIndex {
	t.Helper()
	ds := NewMixture(MixtureConfig{N: 160, Classes: 6, Dim: 8, WithinStd: 0.35, Separation: 2.5, Seed: 29})
	e, err := BuildSpectral(ds.Points[:140], Options{Alpha: 0.99, Seed: 29, GraphK: 6}, SpectralOptions{Rank: 24, AttachK: 5})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range ds.Points[140:] {
		if _, err := e.Insert(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Delete(11); err != nil { // base tombstone
		t.Fatal(err)
	}
	if err := e.Delete(141); err != nil { // delta tombstone
		t.Fatal(err)
	}
	return e
}

// TestLoadSpectralNeverPanics: every truncation prefix, a stride of
// single-byte corruptions, and a table of structural lies with their
// CRC re-stamped must error, never panic.
func TestLoadSpectralNeverPanics(t *testing.T) {
	e := buildSpectralFixture(t)
	var buf bytes.Buffer
	if err := e.Save(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()

	tryLoad := func(label string, b []byte) {
		t.Helper()
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("Load panicked on %s: %v", label, r)
			}
		}()
		if _, err := Load(bytes.NewReader(b)); err == nil {
			t.Fatalf("Load accepted %s", label)
		}
	}
	for n := 0; n < len(data); n += 199 {
		tryLoad(fmt.Sprintf("truncation to %d bytes", n), data[:n])
	}
	for pos := 0; pos < len(data); pos += 271 {
		mutated := append([]byte(nil), data...)
		mutated[pos] ^= 0x5A
		tryLoad(fmt.Sprintf("corruption at byte %d", pos), mutated)
	}

	// Structural corruptions that survive the checksum: the validation
	// layer itself must reject them.
	restamp := func(b []byte) []byte {
		crc := crc32IEEE(b[:len(b)-4])
		out := append([]byte(nil), b...)
		binary.LittleEndian.PutUint32(out[len(out)-4:], crc)
		return out
	}
	futureVersion := append([]byte(nil), data...)
	futureVersion[8] = 0xFF
	truncatedEnd := data[:len(data)-16]
	badEndPayload := append([]byte(nil), data...)
	binary.LittleEndian.PutUint64(badEndPayload[len(badEndPayload)-12:], 7)
	for _, tc := range []struct {
		label string
		data  []byte
	}{
		{"future container version", restamp(futureVersion)},
		{"missing end marker", truncatedEnd},
		{"end marker with payload", restamp(badEndPayload)},
		{"empty input", nil},
		{"bare spectral magic", []byte(spectralMagic)},
	} {
		tryLoad(tc.label, tc.data)
	}
}

// fuzzSpectralSeed serializes one engine fixture (with delta state)
// once for the fuzz corpus.
var fuzzSpectralSeed = sync.OnceValue(func() []byte {
	ds := NewMixture(MixtureConfig{N: 90, Classes: 4, Dim: 6, WithinStd: 0.3, Separation: 2.5, Seed: 53})
	e, err := BuildSpectral(ds.Points[:80], Options{Alpha: 0.99, Seed: 53}, SpectralOptions{Rank: 12, AttachK: 4})
	if err != nil {
		panic(err)
	}
	for _, p := range ds.Points[80:] {
		if _, err := e.Insert(p); err != nil {
			panic(err)
		}
	}
	if err := e.Delete(3); err != nil {
		panic(err)
	}
	var buf bytes.Buffer
	if err := e.Save(&buf); err != nil {
		panic(err)
	}
	return buf.Bytes()
})

// FuzzLoadSpectral feeds arbitrary bytes to the sniffing loader. The
// contract: Load never panics, and any spectral input it accepts must
// search, mutate, and re-save without panicking. Explore with
//
//	go test -fuzz FuzzLoadSpectral -fuzztime 30s .
func FuzzLoadSpectral(f *testing.F) {
	seed := fuzzSpectralSeed()
	f.Add(seed)
	f.Add(seed[:len(seed)/2])         // truncation
	f.Add(seed[:len(seed)-3])         // clipped checksum
	f.Add([]byte(spectralMagic))      // header only
	f.Add([]byte("MOGULSPC\x01\x00")) // header + partial version
	mutated := append([]byte(nil), seed...)
	mutated[len(mutated)/3] ^= 0x5A // body corruption
	f.Add(mutated)
	versioned := append([]byte(nil), seed...)
	versioned[8] = 0xFF // far-future container version
	f.Add(versioned)

	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := Load(bytes.NewReader(data))
		if err != nil {
			return
		}
		e, ok := r.(*SpectralIndex)
		if !ok {
			// Other formats have their own fuzz targets.
			return
		}
		if e.Len() <= 0 {
			t.Fatalf("loaded spectral engine has %d live items", e.Len())
		}
		// Query through a live id (0 may legitimately be tombstoned in
		// accepted input).
		live := -1
		for id := 0; id < e.IDSpace(); id++ {
			if e.Alive(id) {
				live = id
				break
			}
		}
		if live < 0 {
			t.Fatal("no live item in an accepted engine")
		}
		if _, err := e.TopK(live, 3); err != nil {
			t.Fatalf("loaded spectral engine cannot search: %v", err)
		}
		var buf bytes.Buffer
		if err := e.Save(&buf); err != nil {
			t.Fatalf("loaded spectral engine cannot re-save: %v", err)
		}
	})
}
