package mogul

import "testing"

// The mutation version is the contract the serving layer's result
// cache is built on: it starts at 1, bumps on every visible mutation
// (Insert, Delete, Compact — including a renumbering one), and holds
// still while the index is quiescent.
func TestIndexVersion(t *testing.T) {
	ds := NewMixture(MixtureConfig{N: 120, Classes: 3, Dim: 6, Seed: 11})
	idx, err := BuildFromDataset(ds, Options{})
	if err != nil {
		t.Fatal(err)
	}
	v := idx.Version()
	if v != 1 {
		t.Fatalf("fresh index version %d, want 1", v)
	}
	// Queries do not move it.
	if _, err := idx.TopK(3, 5); err != nil {
		t.Fatal(err)
	}
	if idx.Version() != v {
		t.Fatalf("TopK bumped version to %d", idx.Version())
	}
	id, err := idx.Insert(ds.Points[0])
	if err != nil {
		t.Fatal(err)
	}
	if idx.Version() <= v {
		t.Fatalf("Insert did not bump version (still %d)", idx.Version())
	}
	v = idx.Version()
	if err := idx.Delete(id); err != nil {
		t.Fatal(err)
	}
	if idx.Version() <= v {
		t.Fatalf("Delete did not bump version (still %d)", idx.Version())
	}
	v = idx.Version()
	if err := idx.Compact(); err != nil {
		t.Fatal(err)
	}
	if idx.Version() <= v {
		t.Fatalf("Compact did not bump version (still %d)", idx.Version())
	}
	// A no-op Compact (empty delta) leaves the version alone: version
	// stability must mean "answers unchanged", nothing weaker.
	v = idx.Version()
	if err := idx.Compact(); err != nil {
		t.Fatal(err)
	}
	if idx.Version() != v {
		t.Fatalf("no-op Compact bumped version %d -> %d", v, idx.Version())
	}
}

// The sharded version mirrors the plain one, bumping only once a
// mutation is fully visible (shard state and global id maps).
func TestShardedIndexVersion(t *testing.T) {
	ds := NewMixture(MixtureConfig{N: 160, Classes: 4, Dim: 6, Seed: 12})
	six, err := BuildSharded(ds.Points, Options{}, ShardOptions{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	if six.Version() != 1 {
		t.Fatalf("fresh sharded version %d, want 1", six.Version())
	}
	v := six.Version()
	id, err := six.Insert(ds.Points[1])
	if err != nil {
		t.Fatal(err)
	}
	if six.Version() <= v {
		t.Fatal("sharded Insert did not bump version")
	}
	v = six.Version()
	if err := six.Delete(id); err != nil {
		t.Fatal(err)
	}
	if six.Version() <= v {
		t.Fatal("sharded Delete did not bump version")
	}
	v = six.Version()
	if err := six.Compact(); err != nil {
		t.Fatal(err)
	}
	if six.Version() <= v {
		t.Fatal("sharded Compact did not bump version")
	}
	v = six.Version()
	if err := six.Compact(); err != nil {
		t.Fatal(err)
	}
	if six.Version() != v {
		t.Fatalf("no-op sharded Compact bumped version %d -> %d", v, six.Version())
	}
}
