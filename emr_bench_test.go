package mogul

// Benchmarks backing BENCH_emr.json (CI bench-smoke): EMR build time
// and per-query latency at n in {10k, 100k}, with recall@10 against
// the exact Manifold Ranking oracle attached via b.ReportMetric. The
// acceptance bars for the anchor-graph engine: recall@10 >= 0.9 vs
// exact, and per-query latency growing by no more than ~2x across the
// 10x jump in n — the p^2 solve is size-independent and the O(n*s)
// column scan is memory-bandwidth-bound, so latency stays flat where
// a graph-sized engine would grow linearly.
//
// The workload is the regime the engine targets (docs/EMR.md):
// fine-grained retrieval over micro-clusters of ~10 near-duplicates
// in a low-intrinsic-dimension feature space, queried out-of-sample
// with perturbed stored points. Anchor resolution is what recall
// buys (s=24 widens each point's attachment support past the default
// 5), and anchor count is also what buys latency flatness: at p=2560
// the size-independent p^2 solve dominates the O(n*s) scan at both
// sizes, so the 10k->100k latency ratio stays well under 2x where
// p=1024 would let the scan term show through (~7x).

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"mogul/internal/eval"
)

// emrBenchSizes: the latency-flatness criterion compares adjacent
// entries (10x apart in n).
var emrBenchSizes = []int{10_000, 100_000}

// emrBenchOptions is the frontier point the acceptance criteria are
// pinned to; mogul-bench -exp emr sweeps the rest of the frontier.
var emrBenchOptions = EMROptions{NumAnchors: 2560, NumNearestAnchors: 24}

type emrBenchFixture struct {
	pts     []Vector
	queries []Vector
	engine  *EMRIndex
	recall  float64 // recall@10 vs the exact oracle, mean over queries
}

var (
	emrBenchMu       sync.Mutex
	emrBenchFixtures = map[int]*emrBenchFixture{}
)

// emrBenchPoints draws the n-point micro-cluster mixture and a pool
// of out-of-sample queries (perturbed stored points — near-duplicate
// lookup).
func emrBenchPoints(n int) ([]Vector, []Vector) {
	ds := NewMixture(MixtureConfig{
		N: n, Classes: n / 10, Dim: 8, WithinStd: 0.25, Separation: 3.0, Seed: 11,
	})
	rng := rand.New(rand.NewSource(99))
	queries := make([]Vector, 64)
	for i := range queries {
		base := ds.Points[rng.Intn(n)]
		q := make(Vector, len(base))
		for j := range q {
			q[j] = base[j] + 0.05*rng.NormFloat64()
		}
		queries[i] = q
	}
	return ds.Points, queries
}

func emrBenchFixtureFor(b *testing.B, n int) *emrBenchFixture {
	b.Helper()
	emrBenchMu.Lock()
	defer emrBenchMu.Unlock()
	if f, ok := emrBenchFixtures[n]; ok {
		return f
	}
	pts, queries := emrBenchPoints(n)
	engine, err := BuildEMR(pts, Options{Seed: 11}, emrBenchOptions)
	if err != nil {
		b.Fatal(err)
	}
	// Exact oracle over the same points; the approximate k-NN graph
	// keeps construction tractable at n=100k without touching the
	// exactness of the ranking itself.
	exact, err := Build(pts, Options{Exact: true, ApproximateGraph: true, Seed: 11})
	if err != nil {
		b.Fatal(err)
	}
	var recall float64
	for _, q := range queries {
		ref, err := exact.TopKVector(q, 10)
		if err != nil {
			b.Fatal(err)
		}
		got, err := engine.TopKVector(q, 10)
		if err != nil {
			b.Fatal(err)
		}
		recall += eval.PAtK(eval.TopKIDs(got), eval.TopKIDs(ref))
	}
	recall /= float64(len(queries))
	f := &emrBenchFixture{pts: pts, queries: queries, engine: engine, recall: recall}
	emrBenchFixtures[n] = f
	return f
}

// BenchmarkEMRBuild prices BuildEMR end to end (k-means, anchor
// attachment, gram factorization) at each scale.
func BenchmarkEMRBuild(b *testing.B) {
	for _, n := range emrBenchSizes {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			pts, _ := emrBenchPoints(n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := BuildEMR(pts, Options{Seed: 11}, emrBenchOptions); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkEMRTopKVector prices the out-of-sample query path — the
// serving hot path — and attaches recall@10 vs the exact oracle.
func BenchmarkEMRTopKVector(b *testing.B) {
	for _, n := range emrBenchSizes {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			f := emrBenchFixtureFor(b, n)
			sr := f.engine.NewSearcher()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := sr.TopKVector(f.queries[i%len(f.queries)], 10); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(f.recall, "recall@10")
		})
	}
}

// BenchmarkEMRTopK prices the in-sample path (seed item by id)
// through the pooled engine-level entry point.
func BenchmarkEMRTopK(b *testing.B) {
	for _, n := range emrBenchSizes {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			f := emrBenchFixtureFor(b, n)
			queries := benchQueries(n, 64)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := f.engine.TopK(queries[i%len(queries)], 10); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(f.recall, "recall@10")
		})
	}
}
