package mogul

// The magic-sniffing dispatch contract of mogul.Load/LoadFile across
// every on-disk container: one loader entry point accepts all four
// engine formats, returns the right concrete type behind the
// Retriever surface, and preserves answers bit-for-bit. Each format's
// own persistence suite covers its internals; this table pins the
// dispatch itself, including the failure mode for an unknown magic.

import (
	"bytes"
	"fmt"
	"math"
	"testing"
)

func TestLoadDispatchAllFormats(t *testing.T) {
	ds := NewMixture(MixtureConfig{N: 200, Classes: 8, Dim: 8, WithinStd: 0.3, Separation: 2.5, Seed: 17})
	pts := ds.Points

	cases := []struct {
		format string
		build  func() (Retriever, error)
		check  func(Retriever) bool
	}{
		{
			"MOGULIDX", func() (Retriever, error) { return Build(pts, Options{Seed: 17}) },
			func(r Retriever) bool { _, ok := r.(*Index); return ok },
		},
		{
			"MOGULSHD", func() (Retriever, error) {
				return BuildSharded(pts, Options{Seed: 17}, ShardOptions{Shards: 3, Partitioner: PartitionKMeans})
			},
			func(r Retriever) bool { _, ok := r.(*ShardedIndex); return ok },
		},
		{
			"MOGULEMR", func() (Retriever, error) {
				return BuildEMR(pts, Options{Seed: 17}, EMROptions{NumAnchors: 16, NumNearestAnchors: 4})
			},
			func(r Retriever) bool { _, ok := r.(*EMRIndex); return ok },
		},
		{
			"MOGULSPC", func() (Retriever, error) {
				return BuildSpectral(pts, Options{Seed: 17}, SpectralOptions{Rank: 16})
			},
			func(r Retriever) bool { _, ok := r.(*SpectralIndex); return ok },
		},
	}
	for _, tc := range cases {
		t.Run(tc.format, func(t *testing.T) {
			built, err := tc.build()
			if err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			if err := built.Save(&buf); err != nil {
				t.Fatal(err)
			}
			if got := string(buf.Bytes()[:8]); got != tc.format {
				t.Fatalf("container magic %q, want %q", got, tc.format)
			}

			loaded, err := Load(bytes.NewReader(buf.Bytes()))
			if err != nil {
				t.Fatal(err)
			}
			if !tc.check(loaded) {
				t.Fatalf("%s file dispatched to %T", tc.format, loaded)
			}
			if loaded.Len() != built.Len() {
				t.Fatalf("identity lost through Load: len=%d, want %d", loaded.Len(), built.Len())
			}
			for _, q := range []int{0, 25, 199} {
				want, err := built.TopK(q, 10)
				if err != nil {
					t.Fatal(err)
				}
				got, err := loaded.TopK(q, 10)
				if err != nil {
					t.Fatal(err)
				}
				if len(got) != len(want) {
					t.Fatalf("TopK(%d): %d results, want %d", q, len(got), len(want))
				}
				for i := range want {
					if got[i].Node != want[i].Node ||
						math.Float64bits(got[i].Score) != math.Float64bits(want[i].Score) {
						t.Fatalf("TopK(%d) rank %d: (%d, %x), want (%d, %x)", q, i,
							got[i].Node, math.Float64bits(got[i].Score),
							want[i].Node, math.Float64bits(want[i].Score))
					}
				}
			}

			// The file path goes through the same dispatch.
			path := t.TempDir() + "/engine.mogul"
			if err := built.SaveFile(path); err != nil {
				t.Fatal(err)
			}
			viaFile, err := LoadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if !tc.check(viaFile) {
				t.Fatalf("%s file path dispatched to %T", tc.format, viaFile)
			}
		})
	}

	// An unknown magic is refused with a sniffing error, not handed to
	// an arbitrary format loader.
	junk := append([]byte("MOGULXXX"), bytes.Repeat([]byte{0}, 64)...)
	if _, err := Load(bytes.NewReader(junk)); err == nil {
		t.Fatal("Load accepted an unknown container magic")
	} else if got := fmt.Sprint(err); !bytes.Contains([]byte(got), []byte("MOGULXXX")) {
		t.Fatalf("sniffing error does not name the unknown magic: %v", err)
	}
}
