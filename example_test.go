package mogul_test

// Runnable godoc examples for the documented entry points. `go test`
// executes these, so the README quickstart can never silently rot.

import (
	"bytes"
	"fmt"
	"log"

	"mogul"
)

// examplePoints is a tiny two-cluster dataset: items 0-3 sit near the
// origin, items 4-7 sit near (5, 5). Manifold Ranking retrieves
// cluster-mates for any query, which is the behaviour every example
// below demonstrates.
func examplePoints() []mogul.Vector {
	return []mogul.Vector{
		{0.00, 0.00}, {0.11, 0.02}, {0.03, 0.12}, {0.14, 0.13},
		{5.00, 5.00}, {5.12, 5.01}, {5.02, 5.13}, {5.11, 5.14},
	}
}

func ExampleBuild() {
	idx, err := mogul.Build(examplePoints(), mogul.Options{GraphK: 3})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("items:", idx.Len())
	fmt.Println("exact:", idx.Exact())
	// Output:
	// items: 8
	// exact: false
}

func ExampleIndex_TopK() {
	idx, err := mogul.Build(examplePoints(), mogul.Options{GraphK: 3})
	if err != nil {
		log.Fatal(err)
	}
	// In-database query: rank every item against item 3. The query
	// itself ranks first; its cluster-mates follow, and the far
	// cluster (items 4-7) stays out of the top answers.
	results, err := idx.TopK(3, 4)
	if err != nil {
		log.Fatal(err)
	}
	for rank, r := range results {
		fmt.Printf("%d. item %d\n", rank+1, r.Node)
	}
	// Output:
	// 1. item 3
	// 2. item 1
	// 3. item 2
	// 4. item 0
}

func ExampleIndex_TopKVector() {
	idx, err := mogul.Build(examplePoints(), mogul.Options{GraphK: 3})
	if err != nil {
		log.Fatal(err)
	}
	// Out-of-sample query: a vector that is not in the database. Its
	// neighbours in the nearest cluster act as surrogate query nodes;
	// the index is not modified.
	results, err := idx.TopKVector(mogul.Vector{5.05, 5.05}, 3)
	if err != nil {
		log.Fatal(err)
	}
	for rank, r := range results {
		fmt.Printf("%d. item %d\n", rank+1, r.Node)
	}
	// Output:
	// 1. item 6
	// 2. item 7
	// 3. item 4
}

func ExampleIndex_Save() {
	idx, err := mogul.Build(examplePoints(), mogul.Options{GraphK: 3})
	if err != nil {
		log.Fatal(err)
	}
	// Persist the fully precomputed index (SaveFile/LoadFile do the
	// same against a path) and reload it: the loaded index returns
	// bit-identical results without redoing any precomputation.
	var buf bytes.Buffer
	if err := idx.Save(&buf); err != nil {
		log.Fatal(err)
	}
	loaded, err := mogul.Load(&buf)
	if err != nil {
		log.Fatal(err)
	}
	a, _ := idx.TopK(2, 3)
	b, _ := loaded.TopK(2, 3)
	fmt.Println("items:", loaded.Len())
	fmt.Println("identical results:", a[0] == b[0] && a[1] == b[1] && a[2] == b[2])
	// Output:
	// items: 8
	// identical results: true
}

func ExampleBuildSharded() {
	// Partition the database into 2 shards, built in parallel; queries
	// fan out to every shard and merge into one global ranking. With
	// the contiguous partitioner, items 0-3 land on shard 0 and items
	// 4-7 on shard 1, and ids are preserved verbatim.
	idx, err := mogul.BuildSharded(examplePoints(), mogul.Options{GraphK: 3}, mogul.ShardOptions{
		Shards: 2, Partitioner: mogul.PartitionContiguous,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("shards:", idx.NumShards())
	fmt.Println("items:", idx.Len())
	// An in-database query is answered by its owning shard plus an
	// affinity-weighted out-of-sample probe of the other shard; the
	// query's cluster-mates still dominate.
	results, err := idx.TopK(5, 3)
	if err != nil {
		log.Fatal(err)
	}
	for rank, r := range results {
		fmt.Printf("%d. item %d\n", rank+1, r.Node)
	}
	// Output:
	// shards: 2
	// items: 8
	// 1. item 7
	// 2. item 6
	// 3. item 5
}

func ExampleIndex_NewSearcher() {
	idx, err := mogul.Build(examplePoints(), mogul.Options{GraphK: 3})
	if err != nil {
		log.Fatal(err)
	}
	// A Searcher pins a reusable query workspace to one worker: every
	// search it runs allocates nothing beyond the returned results.
	// Use one per goroutine; the plain Index methods pool workspaces
	// internally and stay the right default elsewhere.
	sr := idx.NewSearcher()
	for _, q := range []int{0, 4, 7} {
		res, err := sr.TopK(q, 2)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("item %d best matches: %d, %d\n", q, res[0].Node, res[1].Node)
	}
	// Output:
	// item 0 best matches: 3, 1
	// item 4 best matches: 7, 6
	// item 7 best matches: 7, 6
}
