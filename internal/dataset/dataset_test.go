package dataset

import (
	"math"
	"testing"

	"mogul/internal/knn"
	"mogul/internal/vec"
)

func TestCOILSimStructure(t *testing.T) {
	ds := COILSim(COILConfig{Objects: 10, Poses: 24, Dim: 16, Seed: 1})
	if err := ds.Validate(); err != nil {
		t.Fatal(err)
	}
	if ds.Len() != 240 || ds.Dim() != 16 {
		t.Fatalf("n=%d dim=%d", ds.Len(), ds.Dim())
	}
	// Labels: 24 consecutive points per object.
	for i := 0; i < ds.Len(); i++ {
		if ds.Labels[i] != i/24 {
			t.Fatalf("label[%d] = %d", i, ds.Labels[i])
		}
	}
	// Pose manifold: adjacent poses of the same object must be much
	// closer than points of different objects on average.
	var within, across float64
	var wc, ac int
	for obj := 0; obj < 10; obj++ {
		base := obj * 24
		for p := 0; p < 24; p++ {
			within += math.Sqrt(vec.SquaredEuclidean(ds.Points[base+p], ds.Points[base+(p+1)%24]))
			wc++
		}
		other := ((obj + 1) % 10) * 24
		across += math.Sqrt(vec.SquaredEuclidean(ds.Points[base], ds.Points[other]))
		ac++
	}
	if within/float64(wc) >= across/float64(ac) {
		t.Fatalf("pose neighbours (%g) not closer than cross-object (%g)",
			within/float64(wc), across/float64(ac))
	}
}

func TestCOILSimDeterminism(t *testing.T) {
	a := COILSim(COILConfig{Objects: 3, Poses: 8, Dim: 8, Seed: 7})
	b := COILSim(COILConfig{Objects: 3, Poses: 8, Dim: 8, Seed: 7})
	for i := range a.Points {
		for j := range a.Points[i] {
			if a.Points[i][j] != b.Points[i][j] {
				t.Fatal("same seed produced different data")
			}
		}
	}
	c := COILSim(COILConfig{Objects: 3, Poses: 8, Dim: 8, Seed: 8})
	same := true
	for i := range a.Points {
		for j := range a.Points[i] {
			if a.Points[i][j] != c.Points[i][j] {
				same = false
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical data")
	}
}

func TestMixtureDefaults(t *testing.T) {
	ds := Mixture(MixtureConfig{Seed: 1})
	if err := ds.Validate(); err != nil {
		t.Fatal(err)
	}
	if ds.Len() != 1000 {
		t.Fatalf("default N = %d", ds.Len())
	}
}

func TestZipfSizes(t *testing.T) {
	sizes := zipfSizes(100, 5, 1.0)
	total := 0
	for i, s := range sizes {
		if s < 1 {
			t.Fatalf("size[%d] = %d", i, s)
		}
		total += s
	}
	if total != 100 {
		t.Fatalf("sizes sum to %d", total)
	}
	// Exponent > 0 makes the first class strictly largest.
	if sizes[0] <= sizes[4] {
		t.Fatalf("zipf sizes not decreasing: %v", sizes)
	}
	// Exponent 0 gives near-equal sizes.
	flat := zipfSizes(100, 5, 0)
	for _, s := range flat {
		if s < 18 || s > 22 {
			t.Fatalf("flat sizes uneven: %v", flat)
		}
	}
	// k > n clamps.
	tiny := zipfSizes(3, 10, 1)
	sum := 0
	for _, s := range tiny {
		sum += s
	}
	if sum != 3 {
		t.Fatalf("clamped sizes sum to %d", sum)
	}
}

func TestNamedGenerators(t *testing.T) {
	cases := map[string]*vec.Dataset{
		"pubfig": PubFigSim(500, 1),
		"nus":    NUSWideSim(500, 2),
		"inria":  INRIASim(500, 3),
	}
	wantDim := map[string]int{"pubfig": 73, "nus": 150, "inria": 128}
	for name, ds := range cases {
		if err := ds.Validate(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if ds.Len() != 500 {
			t.Fatalf("%s: n = %d", name, ds.Len())
		}
		if ds.Dim() != wantDim[name] {
			t.Fatalf("%s: dim = %d, want %d", name, ds.Dim(), wantDim[name])
		}
		// Unbalanced class sizes: largest class well above the mean.
		counts := map[int]int{}
		for _, l := range ds.Labels {
			counts[l]++
		}
		maxC := 0
		for _, c := range counts {
			if c > maxC {
				maxC = c
			}
		}
		mean := float64(ds.Len()) / float64(len(counts))
		if float64(maxC) < 1.5*mean {
			t.Fatalf("%s: classes look balanced (max %d, mean %.1f)", name, maxC, mean)
		}
	}
}

func TestMixtureRetrievalSignal(t *testing.T) {
	// Integration: a k-NN graph over a generated mixture must connect
	// mostly same-label nodes, otherwise the retrieval experiments
	// have no signal to measure.
	ds := Mixture(MixtureConfig{N: 400, Classes: 8, Dim: 16, WithinStd: 0.2, Separation: 2, Seed: 5})
	g, err := knn.BuildGraph(ds.Points, knn.GraphConfig{K: 5})
	if err != nil {
		t.Fatal(err)
	}
	same, total := 0, 0
	for i := 0; i < g.Len(); i++ {
		cols, _ := g.Neighbors(i)
		for _, j := range cols {
			total++
			if ds.Labels[i] == ds.Labels[j] {
				same++
			}
		}
	}
	if frac := float64(same) / float64(total); frac < 0.9 {
		t.Fatalf("only %.2f of graph edges are within-class", frac)
	}
}

func TestHoldOut(t *testing.T) {
	ds := Mixture(MixtureConfig{N: 100, Classes: 4, Dim: 8, Seed: 6})
	in, queries, labels, err := HoldOut(ds, 0.2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(queries) != 20 || in.Len() != 80 {
		t.Fatalf("split %d/%d", len(queries), in.Len())
	}
	if len(labels) != len(queries) {
		t.Fatalf("labels %d for %d queries", len(labels), len(queries))
	}
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
	// Errors.
	if _, _, _, err := HoldOut(ds, 0, 1); err == nil {
		t.Fatal("fraction 0 accepted")
	}
	if _, _, _, err := HoldOut(ds, 1, 1); err == nil {
		t.Fatal("fraction 1 accepted")
	}
	tiny := &vec.Dataset{Points: []vec.Vector{{1}}}
	if _, _, _, err := HoldOut(tiny, 0.5, 1); err == nil {
		t.Fatal("single-point dataset accepted")
	}
	// Unlabelled datasets work too.
	unlabelled := &vec.Dataset{Points: ds.Points, Name: "u"}
	_, q2, l2, err := HoldOut(unlabelled, 0.1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(q2) == 0 || l2 != nil {
		t.Fatalf("unlabelled holdout: %d queries, labels %v", len(q2), l2)
	}
}
