package dataset

import (
	"fmt"
	"math"
	"math/rand"

	"mogul/internal/vec"
)

// TwoMoonsConfig parameterizes the two-moons generator.
type TwoMoonsConfig struct {
	// N is the total number of points (split evenly between moons).
	N int
	// Noise is the isotropic noise level (default 0.08).
	Noise float64
	// Gap shifts the moons apart vertically; 0 gives the classic
	// interlocking pattern.
	Gap float64
	// Dim pads the 2-D pattern with zero-mean noise dimensions
	// (default 2, i.e. the plain pattern).
	Dim int
	// Seed drives the randomness.
	Seed int64
}

// TwoMoons generates the interlocking half-circles pattern from Zhou
// et al.'s original Manifold Ranking papers ([25, 26] in the paper's
// references) — the canonical illustration of why ranking must follow
// the manifold: the two classes interleave in Euclidean space, so
// nearest-neighbour retrieval crosses moons while diffusion along the
// k-NN graph stays on the query's moon. Labels are 0 (upper moon) and
// 1 (lower moon).
func TwoMoons(cfg TwoMoonsConfig) *vec.Dataset {
	n := cfg.N
	if n <= 0 {
		n = 400
	}
	noise := cfg.Noise
	if noise == 0 {
		noise = 0.08
	}
	dim := cfg.Dim
	if dim < 2 {
		dim = 2
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	ds := &vec.Dataset{
		Points: make([]vec.Vector, 0, n),
		Labels: make([]int, 0, n),
		Name:   fmt.Sprintf("two-moons(n=%d)", n),
	}
	half := n / 2
	for i := 0; i < n; i++ {
		p := make(vec.Vector, dim)
		if i < half {
			// Upper moon: half circle from 0 to pi.
			theta := math.Pi * float64(i) / float64(half)
			p[0] = math.Cos(theta)
			p[1] = math.Sin(theta) + cfg.Gap/2
			ds.Labels = append(ds.Labels, 0)
		} else {
			// Lower moon: shifted half circle from pi to 2pi.
			theta := math.Pi * float64(i-half) / float64(n-half)
			p[0] = 1 - math.Cos(theta)
			p[1] = 0.5 - math.Sin(theta) - cfg.Gap/2
			ds.Labels = append(ds.Labels, 1)
		}
		for j := 0; j < dim; j++ {
			p[j] += rng.NormFloat64() * noise
		}
		ds.Points = append(ds.Points, p)
	}
	return ds
}
