// Package dataset generates the synthetic stand-ins for the four image
// datasets of the paper's evaluation (Section 5). The real corpora
// (COIL-100 images, PubFig face attributes, NUS-WIDE color moments,
// INRIA SIFT descriptors) are not redistributable here, so each
// generator reproduces the *structure* that the corresponding dataset
// contributes to the experiments:
//
//   - COILSim: many small, well-separated closed pose manifolds
//     (100 objects x 72 poses on a ring) — the regime where Manifold
//     Ranking shines and retrieval precision is measured against
//     object identity.
//   - PubFigSim: moderate-dimensional semantic attributes with
//     strongly unbalanced class sizes — the regime where FMR's
//     balanced spectral cut degrades.
//   - NUSWideSim: large, noisy, overlapping clusters with heavy-tailed
//     sizes (web images).
//   - INRIASim: the largest-n regime with high-dimensional
//     SIFT-like descriptors.
//
// All generators are deterministic given a seed. DESIGN.md Section 4
// records the substitution rationale.
package dataset

import (
	"fmt"
	"math"
	"math/rand"

	"mogul/internal/vec"
)

// COILConfig parameterizes the COIL-100 stand-in.
type COILConfig struct {
	// Objects is the number of distinct objects (classes); the real
	// dataset has 100.
	Objects int
	// Poses is the number of viewpoints per object; the real dataset
	// has 72 (5-degree steps on a turntable).
	Poses int
	// Dim is the feature dimensionality. The real dataset uses 3,048
	// raw RGB dimensions; the default 64 keeps distances meaningful
	// and computation fast while preserving the manifold structure.
	Dim int
	// Harmonics is the number of Fourier harmonics of the pose ring
	// embedding (default 3): higher values give wigglier manifolds.
	Harmonics int
	// Noise is the isotropic feature noise level (default 0.02).
	Noise float64
	// Separation scales the distance between object centers
	// (default 1.0).
	Separation float64
	// Seed drives all randomness.
	Seed int64
}

func (c *COILConfig) withDefaults() COILConfig {
	out := *c
	if out.Objects <= 0 {
		out.Objects = 100
	}
	if out.Poses <= 0 {
		out.Poses = 72
	}
	if out.Dim <= 0 {
		out.Dim = 64
	}
	if out.Harmonics <= 0 {
		out.Harmonics = 3
	}
	if out.Noise < 0 {
		out.Noise = 0
	} else if out.Noise == 0 {
		out.Noise = 0.02
	}
	if out.Separation <= 0 {
		out.Separation = 1
	}
	return out
}

// COILSim generates the COIL-100 stand-in: each object is a closed
// one-dimensional manifold — a random smooth ring embedding in feature
// space — sampled at Poses equally spaced angles, plus noise. Labels
// are object ids.
func COILSim(cfg COILConfig) *vec.Dataset {
	c := cfg.withDefaults()
	rng := rand.New(rand.NewSource(c.Seed))
	n := c.Objects * c.Poses
	ds := &vec.Dataset{
		Points: make([]vec.Vector, 0, n),
		Labels: make([]int, 0, n),
		Name:   fmt.Sprintf("COIL-sim(n=%d,d=%d)", n, c.Dim),
	}
	for obj := 0; obj < c.Objects; obj++ {
		center := make(vec.Vector, c.Dim)
		for j := range center {
			center[j] = rng.NormFloat64() * c.Separation
		}
		// Random Fourier coefficients define the ring embedding
		// x(theta) = center + sum_h a_h cos(h theta) + b_h sin(h theta);
		// amplitudes decay with the harmonic index so the manifold is
		// smooth, and the fundamental is large enough that adjacent
		// poses are nearest neighbours.
		cosCoef := make([]vec.Vector, c.Harmonics)
		sinCoef := make([]vec.Vector, c.Harmonics)
		for h := 0; h < c.Harmonics; h++ {
			amp := 0.35 / float64(h+1)
			cosCoef[h] = make(vec.Vector, c.Dim)
			sinCoef[h] = make(vec.Vector, c.Dim)
			for j := 0; j < c.Dim; j++ {
				cosCoef[h][j] = rng.NormFloat64() * amp / math.Sqrt(float64(c.Dim))
				sinCoef[h][j] = rng.NormFloat64() * amp / math.Sqrt(float64(c.Dim))
			}
		}
		for p := 0; p < c.Poses; p++ {
			theta := 2 * math.Pi * float64(p) / float64(c.Poses)
			x := center.Clone()
			for h := 0; h < c.Harmonics; h++ {
				ct := math.Cos(float64(h+1) * theta)
				st := math.Sin(float64(h+1) * theta)
				for j := 0; j < c.Dim; j++ {
					x[j] += cosCoef[h][j]*ct + sinCoef[h][j]*st
				}
			}
			for j := 0; j < c.Dim; j++ {
				x[j] += rng.NormFloat64() * c.Noise
			}
			ds.Points = append(ds.Points, x)
			ds.Labels = append(ds.Labels, obj)
		}
	}
	return ds
}

// MixtureConfig parameterizes the Gaussian-mixture generators shared
// by the PubFig / NUS-WIDE / INRIA stand-ins.
type MixtureConfig struct {
	// N is the total number of points.
	N int
	// Classes is the number of mixture components (semantic classes).
	Classes int
	// Dim is the feature dimensionality.
	Dim int
	// ZipfExponent shapes the class-size distribution: 0 gives equal
	// sizes; larger values make sizes heavy-tailed/unbalanced.
	ZipfExponent float64
	// WithinStd is the within-class standard deviation along each of
	// the class's intrinsic directions.
	WithinStd float64
	// NoiseStd is isotropic ambient noise added on top.
	NoiseStd float64
	// IntrinsicDim is the number of directions a class varies along
	// (low intrinsic dimensionality is what makes the data a manifold
	// mixture); default min(8, Dim).
	IntrinsicDim int
	// Separation scales the distance between class centers.
	Separation float64
	// Seed drives all randomness.
	Seed int64
	// Name labels the dataset in reports.
	Name string
}

func (c *MixtureConfig) withDefaults() MixtureConfig {
	out := *c
	if out.N <= 0 {
		out.N = 1000
	}
	if out.Classes <= 0 {
		out.Classes = 10
	}
	if out.Dim <= 0 {
		out.Dim = 32
	}
	if out.WithinStd <= 0 {
		out.WithinStd = 0.25
	}
	if out.NoiseStd < 0 {
		out.NoiseStd = 0
	}
	if out.IntrinsicDim <= 0 {
		out.IntrinsicDim = 8
	}
	if out.IntrinsicDim > out.Dim {
		out.IntrinsicDim = out.Dim
	}
	if out.Separation <= 0 {
		out.Separation = 1
	}
	if out.Name == "" {
		out.Name = "mixture"
	}
	return out
}

// zipfSizes splits n into k parts with sizes proportional to
// 1/rank^exponent (>= 1 each).
func zipfSizes(n, k int, exponent float64) []int {
	if k > n {
		k = n
	}
	weights := make([]float64, k)
	var total float64
	for i := range weights {
		weights[i] = 1 / math.Pow(float64(i+1), exponent)
		total += weights[i]
	}
	sizes := make([]int, k)
	assigned := 0
	for i := range sizes {
		sizes[i] = int(float64(n) * weights[i] / total)
		if sizes[i] < 1 {
			sizes[i] = 1
		}
		assigned += sizes[i]
	}
	// Distribute rounding surplus to the largest class; when the
	// 1-minimum overshot n (many tiny classes), shave the largest
	// classes down until the total is exactly n.
	if assigned < n {
		sizes[0] += n - assigned
	}
	for assigned > n {
		largest := 0
		for i, s := range sizes {
			if s > sizes[largest] {
				largest = i
			}
		}
		if sizes[largest] == 1 {
			break // k == n: every class already minimal
		}
		sizes[largest]--
		assigned--
	}
	return sizes
}

// Mixture generates a low-intrinsic-dimension Gaussian mixture with
// Zipf-distributed class sizes: the common skeleton of the PubFig /
// NUS-WIDE / INRIA stand-ins.
func Mixture(cfg MixtureConfig) *vec.Dataset {
	c := cfg.withDefaults()
	rng := rand.New(rand.NewSource(c.Seed))
	sizes := zipfSizes(c.N, c.Classes, c.ZipfExponent)
	ds := &vec.Dataset{
		Points: make([]vec.Vector, 0, c.N),
		Labels: make([]int, 0, c.N),
		Name:   c.Name,
	}
	for class, size := range sizes {
		center := make(vec.Vector, c.Dim)
		for j := range center {
			center[j] = rng.NormFloat64() * c.Separation
		}
		// Random intrinsic directions (not orthonormalized: slight
		// correlation between directions is realistic and harmless).
		basis := make([]vec.Vector, c.IntrinsicDim)
		for b := range basis {
			basis[b] = make(vec.Vector, c.Dim)
			for j := range basis[b] {
				basis[b][j] = rng.NormFloat64() / math.Sqrt(float64(c.Dim))
			}
		}
		for p := 0; p < size; p++ {
			x := center.Clone()
			for _, dir := range basis {
				coef := rng.NormFloat64() * c.WithinStd
				for j := range x {
					x[j] += coef * dir[j]
				}
			}
			if c.NoiseStd > 0 {
				for j := range x {
					x[j] += rng.NormFloat64() * c.NoiseStd
				}
			}
			ds.Points = append(ds.Points, x)
			ds.Labels = append(ds.Labels, class)
		}
	}
	return ds
}

// PubFigSim generates the PubFig stand-in: 73-dimensional
// attribute-like features, moderately many classes (people) with
// unbalanced frequencies (celebrities differ wildly in photo counts).
func PubFigSim(n int, seed int64) *vec.Dataset {
	classes := 200
	if n < classes {
		classes = n/4 + 1
	}
	return Mixture(MixtureConfig{
		N:            n,
		Classes:      classes,
		Dim:          73,
		ZipfExponent: 0.9,
		WithinStd:    0.22,
		NoiseStd:     0.05,
		IntrinsicDim: 6,
		Separation:   0.9,
		Seed:         seed,
		Name:         fmt.Sprintf("PubFig-sim(n=%d,d=73)", n),
	})
}

// NUSWideSim generates the NUS-WIDE stand-in: 150-dimensional color
// moments, fewer but larger and noisier clusters with overlapping
// support.
func NUSWideSim(n int, seed int64) *vec.Dataset {
	classes := 81 // NUS-WIDE has 81 concept tags
	if n < classes {
		classes = n/4 + 1
	}
	return Mixture(MixtureConfig{
		N:            n,
		Classes:      classes,
		Dim:          150,
		ZipfExponent: 1.1,
		WithinStd:    0.3,
		NoiseStd:     0.1,
		IntrinsicDim: 10,
		Separation:   0.8,
		Seed:         seed,
		Name:         fmt.Sprintf("NUS-sim(n=%d,d=150)", n),
	})
}

// INRIASim generates the INRIA stand-in: 128-dimensional SIFT-like
// descriptors, the paper's largest corpus; many clusters with
// heavy-tailed sizes and substantial noise.
func INRIASim(n int, seed int64) *vec.Dataset {
	classes := 256
	if n < classes {
		classes = n/4 + 1
	}
	return Mixture(MixtureConfig{
		N:            n,
		Classes:      classes,
		Dim:          128,
		ZipfExponent: 1.2,
		WithinStd:    0.28,
		NoiseStd:     0.08,
		IntrinsicDim: 8,
		Separation:   0.75,
		Seed:         seed,
		Name:         fmt.Sprintf("INRIA-sim(n=%d,d=128)", n),
	})
}

// HoldOut splits a dataset into an in-database part and held-out query
// points for out-of-sample experiments (Section 5.2.3). fraction is
// the held-out share in (0, 1); at least one point stays on each side.
func HoldOut(ds *vec.Dataset, fraction float64, seed int64) (in *vec.Dataset, outPoints []vec.Vector, outLabels []int, err error) {
	n := ds.Len()
	if n < 2 {
		return nil, nil, nil, fmt.Errorf("dataset: need at least 2 points to hold out, got %d", n)
	}
	if fraction <= 0 || fraction >= 1 {
		return nil, nil, nil, fmt.Errorf("dataset: fraction must lie in (0,1), got %g", fraction)
	}
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(n)
	hold := int(float64(n) * fraction)
	if hold < 1 {
		hold = 1
	}
	if hold >= n {
		hold = n - 1
	}
	in = &vec.Dataset{Name: ds.Name + "/in"}
	for i, idx := range perm {
		if i < hold {
			outPoints = append(outPoints, ds.Points[idx])
			if ds.Labels != nil {
				outLabels = append(outLabels, ds.Labels[idx])
			}
		} else {
			in.Points = append(in.Points, ds.Points[idx])
			if ds.Labels != nil {
				in.Labels = append(in.Labels, ds.Labels[idx])
			}
		}
	}
	return in, outPoints, outLabels, nil
}
