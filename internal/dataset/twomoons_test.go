package dataset

import (
	"testing"

	"mogul/internal/knn"
)

func TestTwoMoonsShape(t *testing.T) {
	ds := TwoMoons(TwoMoonsConfig{N: 300, Seed: 1})
	if err := ds.Validate(); err != nil {
		t.Fatal(err)
	}
	if ds.Len() != 300 || ds.Dim() != 2 {
		t.Fatalf("n=%d dim=%d", ds.Len(), ds.Dim())
	}
	zero, one := 0, 0
	for _, l := range ds.Labels {
		switch l {
		case 0:
			zero++
		case 1:
			one++
		default:
			t.Fatalf("unexpected label %d", l)
		}
	}
	if zero != 150 || one != 150 {
		t.Fatalf("moon sizes %d/%d", zero, one)
	}
}

func TestTwoMoonsDefaultsAndPadding(t *testing.T) {
	ds := TwoMoons(TwoMoonsConfig{Seed: 2, Dim: 5})
	if ds.Len() != 400 || ds.Dim() != 5 {
		t.Fatalf("defaults: n=%d dim=%d", ds.Len(), ds.Dim())
	}
}

func TestTwoMoonsManifoldSignal(t *testing.T) {
	// The classic property: with modest noise the k-NN graph keeps the
	// moons mostly separate, so manifold-following retrieval works
	// where raw distance does not.
	ds := TwoMoons(TwoMoonsConfig{N: 400, Noise: 0.06, Seed: 3})
	g, err := knn.BuildGraph(ds.Points, knn.GraphConfig{K: 5})
	if err != nil {
		t.Fatal(err)
	}
	same, total := 0, 0
	for i := 0; i < g.Len(); i++ {
		cols, _ := g.Neighbors(i)
		for _, j := range cols {
			total++
			if ds.Labels[i] == ds.Labels[j] {
				same++
			}
		}
	}
	if frac := float64(same) / float64(total); frac < 0.95 {
		t.Fatalf("within-moon edge fraction %.3f below 0.95", frac)
	}
}

func TestTwoMoonsDeterminism(t *testing.T) {
	a := TwoMoons(TwoMoonsConfig{N: 50, Seed: 9})
	b := TwoMoons(TwoMoonsConfig{N: 50, Seed: 9})
	for i := range a.Points {
		for j := range a.Points[i] {
			if a.Points[i][j] != b.Points[i][j] {
				t.Fatal("same seed differs")
			}
		}
	}
}
