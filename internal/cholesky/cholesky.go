// Package cholesky implements the two sparse symmetric factorizations
// at the core of the paper:
//
//   - IncompleteLDL: the Incomplete Cholesky factorization of
//     Section 4.2 (Equations 6-7). L is restricted to the sparsity
//     pattern of the input matrix W, so the factor has O(n) non-zeros
//     and O(n) factorization cost on k-NN graphs (Lemma 2).
//   - CompleteLDL: the Modified (complete) Cholesky factorization of
//     Section 4.6.1 with fill-in allowed, used by MogulE to recover
//     exact Manifold Ranking scores in O(m) time, m = nnz(L).
//
// Both return a Factor: W ≈ (or =) L D Lᵀ with unit-diagonal L stored
// in compressed sparse column (CSC) form. CSC makes both triangular
// solves stream through columns of L, which is also exactly the access
// pattern the Mogul bound tables need (they read Uᵀ = L by columns).
package cholesky

import (
	"fmt"

	"mogul/internal/sparse"
	"mogul/internal/vec"
)

// DefaultMinPivot is the diagonal clamp applied when a computed pivot
// D_jj is not safely positive. W = I - alpha*S is symmetric positive
// definite for alpha < 1, but incomplete factorizations can still
// produce non-positive pivots; the standard remedy is a small diagonal
// boost. Clamping only perturbs the approximation (Mogul is already
// approximate); it never affects MogulE on SPD inputs in practice, and
// the Stats report makes any clamp visible.
const DefaultMinPivot = 1e-12

// Factor is a unit-lower-triangular LDLᵀ factorization. The strictly
// lower part of L is stored by columns; the unit diagonal is implicit.
type Factor struct {
	// N is the matrix dimension.
	N int
	// ColPtr has length N+1; column j's entries live at
	// RowIdx[ColPtr[j]:ColPtr[j+1]] / Val[...], with row indices in
	// strictly increasing order (all > j).
	ColPtr []int
	// RowIdx holds the row index of each stored entry of L.
	RowIdx []int
	// Val holds the value of each stored entry of L. Exactly one of
	// Val and Val32 is non-nil (when the factor has entries): Val32 is
	// the mixed-precision storage mode (f32.go).
	Val []float64
	// Val32 holds the values as float32 in mixed-precision mode.
	Val32 []float32
	// D is the diagonal matrix of the factorization.
	D []float64
	// Clamped counts pivots that were clamped to MinPivot.
	Clamped int
}

// NNZ returns the number of stored strictly-lower entries of L. The
// paper reports this for COIL-100: 28,293 for Mogul's incomplete
// factor vs 132,818 for MogulE's complete factor (Section 5.2.1).
func (f *Factor) NNZ() int { return len(f.RowIdx) }

// Col returns the strictly-lower entries of column j (rows and values
// alias internal storage).
func (f *Factor) Col(j int) (rows []int, vals []float64) {
	lo, hi := f.ColPtr[j], f.ColPtr[j+1]
	return f.RowIdx[lo:hi], f.Val[lo:hi]
}

// forwardInPlace solves (L D) y = q in place: the column-oriented
// forward substitution of Equation 4. Every forward-substitution entry
// point (ForwardSolve, Solve, SolveInPlace) shares this body, so their
// arithmetic stays bit-identical by construction.
func (f *Factor) forwardInPlace(v []float64) {
	if f.Val32 != nil {
		f.forwardInPlace32(v)
		return
	}
	for j := 0; j < f.N; j++ {
		v[j] /= f.D[j]
		vj := v[j]
		if vj == 0 {
			continue
		}
		rows, vals := f.Col(j)
		vec.ScatterAxpy(v, rows, vals, -f.D[j]*vj)
	}
}

// backwardInPlace solves Lᵀ x = y in place: the back substitution of
// Equation 5 (U = Lᵀ has unit diagonal), with each column's gather-dot
// accumulated under the vec four-lane contract. Shared by BackSolve,
// Solve, and SolveInPlace for the same bit-identity reason as
// forwardInPlace.
func (f *Factor) backwardInPlace(v []float64) {
	if f.Val32 != nil {
		f.backwardInPlace32(v)
		return
	}
	for i := f.N - 1; i >= 0; i-- {
		rows, vals := f.Col(i)
		v[i] -= vec.DotGather(vals, rows, v)
	}
}

// ForwardSolve solves (L D) y = q by column-oriented forward
// substitution (Equation 4 of the paper). A fresh slice is returned.
func (f *Factor) ForwardSolve(q []float64) []float64 {
	if len(q) != f.N {
		panic(fmt.Sprintf("cholesky: ForwardSolve length %d != %d", len(q), f.N))
	}
	y := append([]float64(nil), q...)
	f.forwardInPlace(y)
	return y
}

// BackSolve solves Lᵀ x = y by back substitution (Equation 5; U = Lᵀ
// has unit diagonal). A fresh slice is returned.
func (f *Factor) BackSolve(y []float64) []float64 {
	if len(y) != f.N {
		panic(fmt.Sprintf("cholesky: BackSolve length %d != %d", len(y), f.N))
	}
	x := append([]float64(nil), y...)
	f.backwardInPlace(x)
	return x
}

// Solve computes x with (L D Lᵀ) x = q: the approximate (incomplete
// factor) or exact (complete factor) Manifold Ranking linear solve.
func (f *Factor) Solve(q []float64) []float64 {
	return f.BackSolve(f.ForwardSolve(q))
}

// SolveInPlace is Solve without the allocations: v holds q on entry and
// x on return. The arithmetic (operation order and rounding) is
// bit-identical to Solve because both run the same shared in-place
// substitutions; callers that own a reusable buffer (the query-engine
// scratch, CG preconditioner applications) use this to keep
// steady-state solves allocation-free.
func (f *Factor) SolveInPlace(v []float64) {
	if len(v) != f.N {
		panic(fmt.Sprintf("cholesky: SolveInPlace length %d != %d", len(v), f.N))
	}
	f.forwardInPlace(v)
	f.backwardInPlace(v)
}

// Reconstruct densifies L D Lᵀ; a test oracle for small matrices.
func (f *Factor) Reconstruct() [][]float64 {
	n := f.N
	l := make([][]float64, n)
	for i := range l {
		l[i] = make([]float64, n)
		l[i][i] = 1
	}
	for j := 0; j < n; j++ {
		rows, vals := f.Col(j)
		for k, i := range rows {
			l[i][j] = vals[k]
		}
	}
	out := make([][]float64, n)
	for i := range out {
		out[i] = make([]float64, n)
		for j := 0; j <= i; j++ {
			var s float64
			for k := 0; k <= j && k <= i; k++ {
				s += l[i][k] * f.D[k] * l[j][k]
			}
			out[i][j] = s
			out[j][i] = s
		}
	}
	return out
}

// checkSquareSymmetricInput validates common preconditions.
func checkSquareSymmetricInput(w *sparse.CSR) error {
	if w.Rows != w.Cols {
		return fmt.Errorf("cholesky: matrix must be square, got %dx%d", w.Rows, w.Cols)
	}
	return nil
}

// IncompleteLDL computes the Incomplete Cholesky factorization of
// Equations 6-7: L inherits exactly the strictly-lower sparsity
// pattern of w. minPivot <= 0 selects DefaultMinPivot.
//
// Cost: for each row the partial dot products touch only pattern
// entries, so on a k-NN graph (bounded row degree) both time and space
// are O(n), which is Lemma 2 of the paper.
func IncompleteLDL(w *sparse.CSR, minPivot float64) (*Factor, error) {
	if err := checkSquareSymmetricInput(w); err != nil {
		return nil, err
	}
	if minPivot <= 0 {
		minPivot = DefaultMinPivot
	}
	n := w.Rows

	// Row-major working storage for L: rowCols[i]/rowVals[i] hold the
	// strictly-lower entries of row i in ascending column order.
	rowCols := make([][]int, n)
	rowVals := make([][]float64, n)
	d := make([]float64, n)
	clamped := 0

	for i := 0; i < n; i++ {
		cols, vals := w.Row(i)
		// The strictly-lower pattern of row i is the prefix of the CSR
		// row with column < i (columns are sorted).
		var wDiag float64
		lower := 0
		for lower < len(cols) && cols[lower] < i {
			lower++
		}
		if lower < len(cols) && cols[lower] == i {
			wDiag = vals[lower]
		}
		ci := make([]int, 0, lower)
		vi := make([]float64, 0, lower)
		for t := 0; t < lower; t++ {
			j := cols[t]
			// Equation 6: L_ij = (W_ij - sum_{k<j} L_ik L_jk D_kk) / D_jj
			s := sparseDotWeighted(ci, vi, rowCols[j], rowVals[j], d, j)
			lij := (vals[t] - s) / d[j]
			ci = append(ci, j)
			vi = append(vi, lij)
		}
		// Equation 7: D_ii = W_ii - sum_{k<i} L_ik^2 D_kk
		di := wDiag
		for t, k := range ci {
			di -= vi[t] * vi[t] * d[k]
		}
		if di < minPivot {
			di = minPivot
			clamped++
		}
		d[i] = di
		rowCols[i] = ci
		rowVals[i] = vi
	}
	return rowsToFactor(n, rowCols, rowVals, d, clamped), nil
}

// sparseDotWeighted computes sum over common indices k < limit of
// a[k]*b[k]*d[k] for two sparse rows with ascending indices.
func sparseDotWeighted(aCols []int, aVals []float64, bCols []int, bVals []float64, d []float64, limit int) float64 {
	var s float64
	ia, ib := 0, 0
	for ia < len(aCols) && ib < len(bCols) {
		ka, kb := aCols[ia], bCols[ib]
		if ka >= limit || kb >= limit {
			break
		}
		switch {
		case ka == kb:
			s += aVals[ia] * bVals[ib] * d[ka]
			ia++
			ib++
		case ka < kb:
			ia++
		default:
			ib++
		}
	}
	return s
}

// rowsToFactor converts row-major triangular storage into the CSC
// Factor layout.
func rowsToFactor(n int, rowCols [][]int, rowVals [][]float64, d []float64, clamped int) *Factor {
	colCount := make([]int, n)
	nnz := 0
	for i := 0; i < n; i++ {
		for _, j := range rowCols[i] {
			colCount[j]++
			nnz++
		}
	}
	f := &Factor{
		N:       n,
		ColPtr:  make([]int, n+1),
		RowIdx:  make([]int, nnz),
		Val:     make([]float64, nnz),
		D:       d,
		Clamped: clamped,
	}
	for j := 0; j < n; j++ {
		f.ColPtr[j+1] = f.ColPtr[j] + colCount[j]
	}
	next := append([]int(nil), f.ColPtr[:n]...)
	// Visiting rows in ascending order keeps row indices sorted within
	// each column.
	for i := 0; i < n; i++ {
		for t, j := range rowCols[i] {
			f.RowIdx[next[j]] = i
			f.Val[next[j]] = rowVals[i][t]
			next[j]++
		}
	}
	return f
}

// CompleteLDL computes the exact sparse LDLᵀ factorization with
// fill-in (up-looking algorithm with elimination-tree pattern
// computation). This is the paper's Modified Cholesky factorization
// (Section 4.6.1): dropping the pattern restriction of Equation 6
// makes the factorization exact, so MogulE reproduces the
// inverse-matrix ranking scores. minPivot <= 0 selects
// DefaultMinPivot.
func CompleteLDL(w *sparse.CSR, minPivot float64) (*Factor, error) {
	if err := checkSquareSymmetricInput(w); err != nil {
		return nil, err
	}
	if minPivot <= 0 {
		minPivot = DefaultMinPivot
	}
	n := w.Rows

	// Symbolic pass: elimination tree and per-column fill counts.
	parent := make([]int, n)
	flag := make([]int, n)
	colCount := make([]int, n)
	for i := range parent {
		parent[i] = -1
		flag[i] = -1
	}
	for k := 0; k < n; k++ {
		flag[k] = k
		cols, _ := w.Row(k)
		for _, i := range cols {
			if i >= k {
				break
			}
			for j := i; flag[j] != k; j = parent[j] {
				if parent[j] == -1 {
					parent[j] = k
				}
				colCount[j]++
				flag[j] = k
			}
		}
	}

	f := &Factor{
		N:      n,
		ColPtr: make([]int, n+1),
		D:      make([]float64, n),
	}
	for j := 0; j < n; j++ {
		f.ColPtr[j+1] = f.ColPtr[j] + colCount[j]
	}
	f.RowIdx = make([]int, f.ColPtr[n])
	f.Val = make([]float64, f.ColPtr[n])

	// Numeric pass (up-looking, one row of L per step).
	y := make([]float64, n)   // dense accumulator for row k
	pattern := make([]int, n) // scratch for one etree path
	stack := make([]int, n)   // row pattern in topological order
	lnz := make([]int, n)     // entries filled so far per column
	for i := range flag {
		flag[i] = -1
	}
	for k := 0; k < n; k++ {
		top := n
		flag[k] = k
		var dk float64
		cols, vals := w.Row(k)
		for t, i := range cols {
			if i > k {
				break
			}
			if i == k {
				dk = vals[t]
				continue
			}
			y[i] += vals[t]
			ln := 0
			for j := i; flag[j] != k; j = parent[j] {
				pattern[ln] = j
				ln++
				flag[j] = k
			}
			for ln > 0 {
				ln--
				top--
				stack[top] = pattern[ln]
			}
		}
		// Solve the triangular system for row k; stack[top:] is the
		// pattern in topological (ascending-dependency) order.
		for ; top < n; top++ {
			i := stack[top]
			yi := y[i]
			y[i] = 0
			lo := f.ColPtr[i]
			hi := lo + lnz[i]
			for p := lo; p < hi; p++ {
				y[f.RowIdx[p]] -= f.Val[p] * yi
			}
			lki := yi / f.D[i]
			dk -= lki * yi
			f.RowIdx[hi] = k
			f.Val[hi] = lki
			lnz[i]++
		}
		if dk < minPivot {
			dk = minPivot
			f.Clamped++
		}
		f.D[k] = dk
	}
	return f, nil
}
