package cholesky

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"mogul/internal/dense"
	"mogul/internal/sparse"
)

// randomSPD builds a random sparse symmetric diagonally dominant
// matrix (hence SPD) with roughly avgDeg off-diagonal entries per row.
func randomSPD(n, avgDeg int, rng *rand.Rand) *sparse.CSR {
	var entries []sparse.Coord
	offDiagSum := make([]float64, n)
	for i := 0; i < n; i++ {
		for t := 0; t < avgDeg; t++ {
			j := rng.Intn(n)
			if j == i {
				continue
			}
			v := -rng.Float64()
			entries = append(entries, sparse.Coord{Row: i, Col: j, Val: v})
			entries = append(entries, sparse.Coord{Row: j, Col: i, Val: v})
			offDiagSum[i] += -v
			offDiagSum[j] += -v
		}
	}
	for i := 0; i < n; i++ {
		entries = append(entries, sparse.Coord{Row: i, Col: i, Val: offDiagSum[i] + 1 + rng.Float64()})
	}
	m, err := sparse.NewFromCoords(n, n, entries)
	if err != nil {
		panic(err)
	}
	return m
}

func maxAbsDiff(a, b [][]float64) float64 {
	var worst float64
	for i := range a {
		for j := range a[i] {
			if d := math.Abs(a[i][j] - b[i][j]); d > worst {
				worst = d
			}
		}
	}
	return worst
}

func TestCompleteLDLReconstructs(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(40)
		w := randomSPD(n, 3, rng)
		f, err := CompleteLDL(w, 0)
		if err != nil {
			t.Fatalf("CompleteLDL: %v", err)
		}
		if f.Clamped != 0 {
			t.Fatalf("trial %d: SPD input clamped %d pivots", trial, f.Clamped)
		}
		got := f.Reconstruct()
		want := w.Dense()
		if d := maxAbsDiff(got, want); d > 1e-8 {
			t.Fatalf("trial %d: reconstruction error %g", trial, d)
		}
	}
}

func TestCompleteLDLSolveMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(40)
		w := randomSPD(n, 3, rng)
		f, err := CompleteLDL(w, 0)
		if err != nil {
			t.Fatalf("CompleteLDL: %v", err)
		}
		q := make([]float64, n)
		for i := range q {
			q[i] = rng.NormFloat64()
		}
		got := f.Solve(q)
		want, err := dense.Solve(dense.NewMatrixFrom(w.Dense()), q)
		if err != nil {
			t.Fatalf("dense solve: %v", err)
		}
		for i := range got {
			if math.Abs(got[i]-want[i]) > 1e-7*(1+math.Abs(want[i])) {
				t.Fatalf("trial %d: x[%d] = %g, want %g", trial, i, got[i], want[i])
			}
		}
	}
}

func TestIncompletePatternRestriction(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(40)
		w := randomSPD(n, 3, rng)
		f, err := IncompleteLDL(w, 0)
		if err != nil {
			t.Fatalf("IncompleteLDL: %v", err)
		}
		// Every stored entry of L must correspond to a non-zero
		// pattern position of W (Equation 6's "incomplete" rule).
		for j := 0; j < n; j++ {
			rows, _ := f.Col(j)
			for _, i := range rows {
				if i <= j {
					t.Fatalf("entry (%d,%d) not strictly lower", i, j)
				}
				if w.At(i, j) == 0 {
					t.Fatalf("fill-in at (%d,%d) violates the incomplete pattern", i, j)
				}
			}
		}
		if f.NNZ() > w.NNZ() {
			t.Fatalf("incomplete factor has %d nnz, input %d", f.NNZ(), w.NNZ())
		}
	}
}

func TestIncompleteEqualsCompleteOnTriangularPattern(t *testing.T) {
	// On a tridiagonal matrix no fill occurs, so incomplete and
	// complete factorizations must coincide exactly.
	rng := rand.New(rand.NewSource(4))
	n := 30
	var entries []sparse.Coord
	for i := 0; i < n; i++ {
		entries = append(entries, sparse.Coord{Row: i, Col: i, Val: 4 + rng.Float64()})
		if i+1 < n {
			v := -rng.Float64()
			entries = append(entries, sparse.Coord{Row: i, Col: i + 1, Val: v})
			entries = append(entries, sparse.Coord{Row: i + 1, Col: i, Val: v})
		}
	}
	w, err := sparse.NewFromCoords(n, n, entries)
	if err != nil {
		t.Fatal(err)
	}
	inc, err := IncompleteLDL(w, 0)
	if err != nil {
		t.Fatal(err)
	}
	com, err := CompleteLDL(w, 0)
	if err != nil {
		t.Fatal(err)
	}
	if inc.NNZ() != com.NNZ() {
		t.Fatalf("nnz mismatch: incomplete %d, complete %d", inc.NNZ(), com.NNZ())
	}
	for i := range inc.D {
		if math.Abs(inc.D[i]-com.D[i]) > 1e-12 {
			t.Fatalf("D[%d]: %g vs %g", i, inc.D[i], com.D[i])
		}
	}
	for k := range inc.Val {
		if inc.RowIdx[k] != com.RowIdx[k] || math.Abs(inc.Val[k]-com.Val[k]) > 1e-12 {
			t.Fatalf("L entry %d differs", k)
		}
	}
}

func TestForwardBackSolveIdentities(t *testing.T) {
	// Property: for random SPD W and random q,
	// (L D) * ForwardSolve(q) == q and L^T * BackSolve(y) == y.
	rng := rand.New(rand.NewSource(5))
	check := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(30)
		w := randomSPD(n, 2, r)
		f, err := CompleteLDL(w, 0)
		if err != nil {
			return false
		}
		q := make([]float64, n)
		for i := range q {
			q[i] = r.NormFloat64()
		}
		y := f.ForwardSolve(q)
		// Verify (L D) y == q.
		ld := make([]float64, n)
		for j := 0; j < n; j++ {
			ld[j] += f.D[j] * y[j]
			rows, vals := f.Col(j)
			for t, i := range rows {
				ld[i] += vals[t] * f.D[j] * y[j]
			}
		}
		for i := range q {
			if math.Abs(ld[i]-q[i]) > 1e-8*(1+math.Abs(q[i])) {
				return false
			}
		}
		x := f.BackSolve(y)
		// Verify L^T x == y.
		lt := append([]float64(nil), x...)
		for j := 0; j < n; j++ {
			rows, vals := f.Col(j)
			for t, i := range rows {
				lt[j] += vals[t] * x[i]
			}
		}
		for i := range y {
			if math.Abs(lt[i]-y[i]) > 1e-8*(1+math.Abs(y[i])) {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 50, Rand: rng}
	if err := quick.Check(func(seed int64) bool { return check(seed) }, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestNonSquareRejected(t *testing.T) {
	m := &sparse.CSR{RowPtr: []int{0, 0, 0}, Rows: 2, Cols: 3}
	if _, err := IncompleteLDL(m, 0); err == nil {
		t.Fatal("IncompleteLDL accepted non-square input")
	}
	if _, err := CompleteLDL(m, 0); err == nil {
		t.Fatal("CompleteLDL accepted non-square input")
	}
}

func TestPivotClampCounts(t *testing.T) {
	// An indefinite matrix forces clamping rather than failure.
	entries := []sparse.Coord{
		{Row: 0, Col: 0, Val: 1},
		{Row: 1, Col: 1, Val: 1},
		{Row: 0, Col: 1, Val: 2},
		{Row: 1, Col: 0, Val: 2},
	}
	w, err := sparse.NewFromCoords(2, 2, entries)
	if err != nil {
		t.Fatal(err)
	}
	f, err := CompleteLDL(w, 0)
	if err != nil {
		t.Fatal(err)
	}
	if f.Clamped == 0 {
		t.Fatal("expected clamped pivots on indefinite input")
	}
}
