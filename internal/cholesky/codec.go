package cholesky

import (
	"fmt"
	"io"

	"mogul/internal/binio"
)

// Binary codec for LDL^T factors — a leaf record of the Mogul index
// file format (docs/FORMAT.md). The container frames and checksums the
// record; the codec validates the factor's own invariants so a
// corrupted file fails loudly instead of producing wrong solves.

// WriteTo writes the factor as: N, Clamped (int64), then ColPtr,
// RowIdx, Val, D as length-prefixed slices.
func (f *Factor) WriteTo(w io.Writer) (int64, error) {
	bw := binio.NewWriter(w)
	bw.Int(f.N)
	bw.Int(f.Clamped)
	bw.Ints(f.ColPtr)
	bw.Ints(f.RowIdx)
	bw.Floats(f.Val)
	bw.Floats(f.D)
	return bw.Count(), bw.Err()
}

// ReadFactor reads a factor written by WriteTo and validates its
// structural invariants.
func ReadFactor(r io.Reader) (*Factor, error) {
	br := binio.NewReader(r)
	n := br.Int()
	clamped := br.Int()
	if err := br.Err(); err != nil {
		return nil, fmt.Errorf("cholesky: reading factor header: %w", err)
	}
	if n < 0 || n > binio.MaxCount || clamped < 0 || clamped > n {
		return nil, fmt.Errorf("cholesky: corrupt factor header (n=%d, clamped=%d)", n, clamped)
	}
	f := &Factor{
		N:       n,
		Clamped: clamped,
		ColPtr:  br.Ints(n + 1),
		RowIdx:  br.Ints(binio.MaxCount),
		Val:     br.Floats(binio.MaxCount),
		D:       br.Floats(n),
	}
	if err := br.Err(); err != nil {
		return nil, fmt.Errorf("cholesky: reading factor body: %w", err)
	}
	if err := f.Validate(); err != nil {
		return nil, err
	}
	return f, nil
}

// Validate checks the Factor invariants: ColPtr has length N+1 and is
// non-decreasing from 0 to NNZ; RowIdx and Val have equal length; D
// has length N; row indices within each column j are strictly
// increasing and lie in (j, N).
func (f *Factor) Validate() error {
	if f.N < 0 {
		return fmt.Errorf("cholesky: negative dimension %d", f.N)
	}
	if len(f.ColPtr) != f.N+1 {
		return fmt.Errorf("cholesky: %d column pointers for n=%d", len(f.ColPtr), f.N)
	}
	if len(f.RowIdx) != f.nVals() {
		return fmt.Errorf("cholesky: %d row indices but %d values", len(f.RowIdx), f.nVals())
	}
	if len(f.D) != f.N {
		return fmt.Errorf("cholesky: diagonal length %d for n=%d", len(f.D), f.N)
	}
	if f.ColPtr[0] != 0 || f.ColPtr[f.N] != len(f.RowIdx) {
		return fmt.Errorf("cholesky: column pointers span [%d,%d], want [0,%d]", f.ColPtr[0], f.ColPtr[f.N], len(f.RowIdx))
	}
	for j := 0; j < f.N; j++ {
		lo, hi := f.ColPtr[j], f.ColPtr[j+1]
		if lo > hi {
			return fmt.Errorf("cholesky: column %d has negative extent", j)
		}
		prev := j // entries are strictly lower: rows must exceed j
		for k := lo; k < hi; k++ {
			i := f.RowIdx[k]
			if i <= prev || i >= f.N {
				return fmt.Errorf("cholesky: column %d row index %d outside (%d,%d)", j, i, prev, f.N)
			}
			prev = i
		}
	}
	return nil
}
