package cholesky

import (
	"bytes"
	"reflect"
	"testing"

	"mogul/internal/sparse"
)

// testFactor factorizes a small SPD matrix so codec tests exercise a
// real factor rather than a hand-built one.
func testFactor(t *testing.T, complete bool) *Factor {
	t.Helper()
	// Diagonally dominant pentadiagonal matrix, clearly SPD.
	var entries []sparse.Coord
	n := 12
	for i := 0; i < n; i++ {
		entries = append(entries, sparse.Coord{Row: i, Col: i, Val: 4})
		if i+1 < n {
			entries = append(entries, sparse.Coord{Row: i, Col: i + 1, Val: -1}, sparse.Coord{Row: i + 1, Col: i, Val: -1})
		}
		if i+3 < n {
			entries = append(entries, sparse.Coord{Row: i, Col: i + 3, Val: -0.5}, sparse.Coord{Row: i + 3, Col: i, Val: -0.5})
		}
	}
	w, err := sparse.NewFromCoords(n, n, entries)
	if err != nil {
		t.Fatal(err)
	}
	var f *Factor
	if complete {
		f, err = CompleteLDL(w, 0)
	} else {
		f, err = IncompleteLDL(w, 0)
	}
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestFactorCodecRoundTrip(t *testing.T) {
	for _, complete := range []bool{false, true} {
		f := testFactor(t, complete)
		var buf bytes.Buffer
		n, err := f.WriteTo(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if n != int64(buf.Len()) {
			t.Fatalf("WriteTo reported %d bytes, wrote %d", n, buf.Len())
		}
		got, err := ReadFactor(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, f) {
			t.Fatalf("round trip mismatch (complete=%v)", complete)
		}
		// The loaded factor must solve identically, bit for bit.
		q := make([]float64, f.N)
		q[3] = 1
		a, b := f.ForwardSolve(q), got.ForwardSolve(q)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("solve differs at %d: %g vs %g", i, a[i], b[i])
			}
		}
	}
}

func TestReadFactorRejectsCorruption(t *testing.T) {
	f := testFactor(t, false)
	var buf bytes.Buffer
	if _, err := f.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	for n := 0; n < buf.Len(); n += 7 {
		if _, err := ReadFactor(bytes.NewReader(buf.Bytes()[:n])); err == nil {
			t.Fatalf("truncation to %d bytes accepted", n)
		}
	}
	// An upper-triangular (row <= column) entry must be rejected.
	bad := testFactor(t, false)
	if bad.NNZ() == 0 {
		t.Fatal("test factor unexpectedly diagonal")
	}
	bad.RowIdx[0] = 0
	var b2 bytes.Buffer
	if _, err := bad.WriteTo(&b2); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFactor(&b2); err == nil {
		t.Fatal("non-lower-triangular entry accepted")
	}
}

func TestFactorValidate(t *testing.T) {
	if err := testFactor(t, true).Validate(); err != nil {
		t.Fatal(err)
	}
	cases := map[string]*Factor{
		"short colptr": {N: 2, ColPtr: []int{0, 0}, D: []float64{1, 1}},
		"short D":      {N: 2, ColPtr: []int{0, 0, 0}, D: []float64{1}},
		"bad span":     {N: 1, ColPtr: []int{0, 3}, D: []float64{1}},
		"neg clamped":  {N: 1, ColPtr: []int{0, 0}, D: []float64{1}, Clamped: -1},
	}
	for name, f := range cases {
		if name == "neg clamped" {
			// Validate does not police Clamped (ReadFactor does); make
			// sure the reader rejects it instead.
			var buf bytes.Buffer
			if _, err := f.WriteTo(&buf); err != nil {
				t.Fatal(err)
			}
			if _, err := ReadFactor(&buf); err == nil {
				t.Fatal("negative clamp count accepted")
			}
			continue
		}
		if err := f.Validate(); err == nil {
			t.Fatalf("%s passed validation", name)
		}
	}
}
