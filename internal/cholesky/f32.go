package cholesky

import (
	"fmt"

	"mogul/internal/binio"
	"mogul/internal/vec"
)

// Mixed-precision factor storage. In f32 mode the strictly-lower
// values of L live in Val32 and Val is nil; the diagonal D stays
// float64 (it is O(n), not O(nnz), and pivot precision is what keeps
// the substitutions stable). The substitution bodies dispatch on
// Val32, widening each stored value in registers — accumulation stays
// float64 under the vec four-lane contract, so the only difference
// from the f64 factor is the one rounding applied by Narrow32.

// F32 reports whether the factor stores its values as float32.
func (f *Factor) F32() bool { return f.Val32 != nil }

// Narrow32 converts the factor to f32 storage in place, freeing the
// float64 values. Idempotent.
func (f *Factor) Narrow32() {
	if f.Val32 != nil {
		return
	}
	f.Val32 = vec.Narrow32(nil, f.Val)
	f.Val = nil
}

// Col32 returns the strictly-lower entries of column j of an f32
// factor (rows and values alias internal storage).
func (f *Factor) Col32(j int) (rows []int, vals []float32) {
	lo, hi := f.ColPtr[j], f.ColPtr[j+1]
	return f.RowIdx[lo:hi], f.Val32[lo:hi]
}

// ColWidened writes column j's values into buf (widening when f32) and
// returns rows plus the values; for cold paths that want one code path
// over both precisions.
func (f *Factor) ColWidened(j int, buf []float64) (rows []int, vals []float64) {
	if f.Val32 == nil {
		return f.Col(j)
	}
	rows32, v32 := f.Col32(j)
	return rows32, vec.Widen64(buf, v32)
}

// forwardInPlace32/backwardInPlace32 mirror the f64 bodies exactly —
// same loop structure, same kernels, f32 storage.

func (f *Factor) forwardInPlace32(v []float64) {
	for j := 0; j < f.N; j++ {
		v[j] /= f.D[j]
		vj := v[j]
		if vj == 0 {
			continue
		}
		rows, vals := f.Col32(j)
		vec.ScatterAxpy32(v, rows, vals, -f.D[j]*vj)
	}
}

func (f *Factor) backwardInPlace32(v []float64) {
	for i := f.N - 1; i >= 0; i-- {
		rows, vals := f.Col32(i)
		v[i] -= vec.DotGather32(vals, rows, v)
	}
}

// WriteToPrec writes the factor through an existing binio.Writer in
// the format-version-4 layout: N, Clamped, ColPtr, RowIdx, values
// (Float32s when f32, Floats otherwise), D. With a plain writer and
// f32=false the bytes are identical to WriteTo.
func (f *Factor) WriteToPrec(bw *binio.Writer, f32 bool) error {
	bw.Int(f.N)
	bw.Int(f.Clamped)
	bw.Ints(f.ColPtr)
	bw.Ints(f.RowIdx)
	if f32 {
		if f.Val32 == nil {
			return fmt.Errorf("cholesky: f32 write of a float64 factor")
		}
		bw.Float32s(f.Val32)
	} else {
		if f.Val == nil && len(f.RowIdx) > 0 {
			return fmt.Errorf("cholesky: f64 write of an f32 factor")
		}
		bw.Floats(f.Val)
	}
	bw.Floats(f.D)
	return bw.Err()
}

// ReadFactorPrec reads a factor written by WriteToPrec from an
// existing binio.Reader, using zero-copy views where the reader
// allows. The caller owns structural validation context (container
// framing); the factor's own invariants are validated here.
func ReadFactorPrec(br *binio.Reader, f32 bool) (*Factor, error) {
	n := br.Int()
	clamped := br.Int()
	if err := br.Err(); err != nil {
		return nil, fmt.Errorf("cholesky: reading factor header: %w", err)
	}
	if n < 0 || n > binio.MaxCount || clamped < 0 || clamped > n {
		return nil, fmt.Errorf("cholesky: corrupt factor header (n=%d, clamped=%d)", n, clamped)
	}
	f := &Factor{
		N:       n,
		Clamped: clamped,
		ColPtr:  br.IntsView(n + 1),
		RowIdx:  br.IntsView(binio.MaxCount),
	}
	if f32 {
		f.Val32 = br.Float32sView(binio.MaxCount)
	} else {
		f.Val = br.FloatsView(binio.MaxCount)
	}
	f.D = br.FloatsView(n)
	if err := br.Err(); err != nil {
		return nil, fmt.Errorf("cholesky: reading factor body: %w", err)
	}
	if err := f.Validate(); err != nil {
		return nil, err
	}
	return f, nil
}

// nVals returns the stored value count regardless of precision.
func (f *Factor) nVals() int {
	if f.Val32 != nil {
		return len(f.Val32)
	}
	return len(f.Val)
}
