package dense

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randomMatrix(rng *rand.Rand, rows, cols int) *Matrix {
	m := NewMatrix(rows, cols)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	return m
}

func TestMulIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := randomMatrix(rng, 4, 4)
	got := a.Mul(Identity(4))
	for i := range a.Data {
		if math.Abs(got.Data[i]-a.Data[i]) > 1e-14 {
			t.Fatalf("A*I != A at %d", i)
		}
	}
}

func TestMulAgainstManual(t *testing.T) {
	a := NewMatrixFrom([][]float64{{1, 2}, {3, 4}})
	b := NewMatrixFrom([][]float64{{5, 6}, {7, 8}})
	c := a.Mul(b)
	want := [][]float64{{19, 22}, {43, 50}}
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if c.At(i, j) != want[i][j] {
				t.Fatalf("C[%d][%d] = %g, want %g", i, j, c.At(i, j), want[i][j])
			}
		}
	}
}

func TestMulVec(t *testing.T) {
	a := NewMatrixFrom([][]float64{{1, 2, 3}, {4, 5, 6}})
	got := a.MulVec([]float64{1, 1, 1})
	if got[0] != 6 || got[1] != 15 {
		t.Fatalf("MulVec = %v", got)
	}
}

func TestTranspose(t *testing.T) {
	a := NewMatrixFrom([][]float64{{1, 2, 3}, {4, 5, 6}})
	at := a.Transpose()
	if at.Rows != 3 || at.Cols != 2 || at.At(2, 1) != 6 || at.At(0, 1) != 4 {
		t.Fatalf("Transpose wrong: %+v", at)
	}
}

func TestLUSolveProperty(t *testing.T) {
	// Property: for random well-conditioned A and b, A*Solve(b) == b.
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(12)
		a := randomMatrix(rng, n, n)
		// Diagonal dominance for conditioning.
		for i := 0; i < n; i++ {
			a.Add(i, i, float64(n)+2)
		}
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		x, err := Solve(a, b)
		if err != nil {
			return false
		}
		ax := a.MulVec(x)
		for i := range b {
			if math.Abs(ax[i]-b[i]) > 1e-8*(1+math.Abs(b[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestInverseProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 10; trial++ {
		n := 1 + rng.Intn(10)
		a := randomMatrix(rng, n, n)
		for i := 0; i < n; i++ {
			a.Add(i, i, float64(n)+2)
		}
		inv, err := Inverse(a)
		if err != nil {
			t.Fatal(err)
		}
		prod := a.Mul(inv)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				want := 0.0
				if i == j {
					want = 1
				}
				if math.Abs(prod.At(i, j)-want) > 1e-8 {
					t.Fatalf("A*A^-1 at (%d,%d) = %g", i, j, prod.At(i, j))
				}
			}
		}
	}
}

func TestSingularRejected(t *testing.T) {
	a := NewMatrixFrom([][]float64{{1, 2}, {2, 4}})
	if _, err := Factorize(a); err == nil {
		t.Fatal("singular matrix factorized")
	}
	if _, err := Factorize(NewMatrix(2, 3)); err == nil {
		t.Fatal("non-square matrix factorized")
	}
}

func TestDeterminant(t *testing.T) {
	a := NewMatrixFrom([][]float64{{2, 0}, {0, 3}})
	f, err := Factorize(a)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(f.Det()-6) > 1e-12 {
		t.Fatalf("det = %g, want 6", f.Det())
	}
	// Row swap flips sign bookkeeping but not the determinant value.
	b := NewMatrixFrom([][]float64{{0, 1}, {1, 0}})
	fb, err := Factorize(b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fb.Det()+1) > 1e-12 {
		t.Fatalf("det(swap) = %g, want -1", fb.Det())
	}
}

func TestEigSymSmall(t *testing.T) {
	a := NewMatrixFrom([][]float64{{2, 1}, {1, 2}})
	w, v, err := EigSym(a)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(w[0]-1) > 1e-9 || math.Abs(w[1]-3) > 1e-9 {
		t.Fatalf("eigenvalues = %v, want [1 3]", w)
	}
	// Columns orthonormal.
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			var dot float64
			for r := 0; r < 2; r++ {
				dot += v.At(r, i) * v.At(r, j)
			}
			want := 0.0
			if i == j {
				want = 1
			}
			if math.Abs(dot-want) > 1e-9 {
				t.Fatalf("V^T V at (%d,%d) = %g", i, j, dot)
			}
		}
	}
}

func TestEigSymReconstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 10; trial++ {
		n := 2 + rng.Intn(10)
		a := NewMatrix(n, n)
		for i := 0; i < n; i++ {
			for j := i; j < n; j++ {
				v := rng.NormFloat64()
				a.Set(i, j, v)
				a.Set(j, i, v)
			}
		}
		w, v, err := EigSym(a)
		if err != nil {
			t.Fatal(err)
		}
		// Check A v_k = w_k v_k for each eigenpair.
		for k := 0; k < n; k++ {
			col := make([]float64, n)
			for r := 0; r < n; r++ {
				col[r] = v.At(r, k)
			}
			av := a.MulVec(col)
			for r := 0; r < n; r++ {
				if math.Abs(av[r]-w[k]*col[r]) > 1e-7 {
					t.Fatalf("trial %d: eigenpair %d residual %g", trial, k, av[r]-w[k]*col[r])
				}
			}
		}
		// Ascending order.
		for k := 1; k < n; k++ {
			if w[k] < w[k-1]-1e-12 {
				t.Fatalf("eigenvalues not ascending: %v", w)
			}
		}
	}
}

func TestEigSymRejectsAsymmetric(t *testing.T) {
	a := NewMatrixFrom([][]float64{{1, 2}, {3, 4}})
	if _, _, err := EigSym(a); err == nil {
		t.Fatal("asymmetric matrix accepted")
	}
	if _, _, err := EigSym(NewMatrix(2, 3)); err == nil {
		t.Fatal("non-square matrix accepted")
	}
}

func TestSVDReconstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 10; trial++ {
		m := 2 + rng.Intn(8)
		n := 2 + rng.Intn(8)
		a := randomMatrix(rng, m, n)
		svd, err := ComputeSVD(a)
		if err != nil {
			t.Fatal(err)
		}
		// Reconstruct A = U S V^T.
		r := len(svd.S)
		for i := 0; i < m; i++ {
			for j := 0; j < n; j++ {
				var s float64
				for k := 0; k < r; k++ {
					s += svd.U.At(i, k) * svd.S[k] * svd.V.At(j, k)
				}
				if math.Abs(s-a.At(i, j)) > 1e-8 {
					t.Fatalf("trial %d (%dx%d): reconstruction at (%d,%d): %g vs %g",
						trial, m, n, i, j, s, a.At(i, j))
				}
			}
		}
		// Singular values descending and non-negative.
		for k := 1; k < r; k++ {
			if svd.S[k] > svd.S[k-1]+1e-12 || svd.S[k] < 0 {
				t.Fatalf("singular values not sorted: %v", svd.S)
			}
		}
	}
}

func TestSVDTruncate(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	a := randomMatrix(rng, 6, 4)
	svd, err := ComputeSVD(a)
	if err != nil {
		t.Fatal(err)
	}
	u, s, v := svd.Truncate(2)
	if u.Cols != 2 || len(s) != 2 || v.Cols != 2 {
		t.Fatalf("Truncate(2) shapes: U %dx%d, S %d, V %dx%d", u.Rows, u.Cols, len(s), v.Rows, v.Cols)
	}
	// Clamp beyond rank.
	u, s, _ = svd.Truncate(100)
	if u.Cols != len(svd.S) || len(s) != len(svd.S) {
		t.Fatal("Truncate beyond rank did not clamp")
	}
	if _, s, _ := svd.Truncate(-1); len(s) != 0 {
		t.Fatal("negative rank did not clamp to 0")
	}
}

func TestSVDRankDeficient(t *testing.T) {
	// Rank-1 matrix: second singular value must be ~0.
	a := NewMatrixFrom([][]float64{{1, 2}, {2, 4}, {3, 6}})
	svd, err := ComputeSVD(a)
	if err != nil {
		t.Fatal(err)
	}
	if svd.S[1] > 1e-10 {
		t.Fatalf("rank-1 matrix has sigma_2 = %g", svd.S[1])
	}
}

func TestSVDEmpty(t *testing.T) {
	if _, err := ComputeSVD(NewMatrix(0, 3)); err == nil {
		t.Fatal("empty matrix accepted")
	}
}
