package dense

import (
	"fmt"
	"math"
	"sort"
)

// EigSym computes the full eigendecomposition of a symmetric matrix
// using the cyclic Jacobi rotation method: A = V diag(w) V^T with
// orthonormal columns of V. Eigenvalues are returned in ascending
// order. The FMR baseline uses this for spectral clustering (the
// smallest eigenvectors of the normalized Laplacian).
//
// Jacobi is O(n^3) per sweep but unconditionally stable and simple,
// which is the right trade-off for the baseline sizes used here.
func EigSym(a *Matrix) (w []float64, v *Matrix, err error) {
	if a.Rows != a.Cols {
		return nil, nil, fmt.Errorf("dense: EigSym of non-square %dx%d matrix", a.Rows, a.Cols)
	}
	n := a.Rows
	// Verify symmetry up to a scaled tolerance so silent mistakes in
	// callers surface here rather than as garbage eigenvectors.
	var maxAbs float64
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if v := math.Abs(a.At(i, j)); v > maxAbs {
				maxAbs = v
			}
		}
	}
	tol := 1e-9 * (1 + maxAbs)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if math.Abs(a.At(i, j)-a.At(j, i)) > tol {
				return nil, nil, fmt.Errorf("dense: EigSym input not symmetric at (%d,%d): %g vs %g", i, j, a.At(i, j), a.At(j, i))
			}
		}
	}

	m := a.Clone()
	vec := Identity(n)
	const maxSweeps = 64
	for sweep := 0; sweep < maxSweeps; sweep++ {
		// Off-diagonal Frobenius norm decides convergence.
		var off float64
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				off += m.At(i, j) * m.At(i, j)
			}
		}
		if math.Sqrt(2*off) <= 1e-12*(1+maxAbs)*float64(n) {
			break
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				apq := m.At(p, q)
				if math.Abs(apq) <= 1e-300 {
					continue
				}
				app, aqq := m.At(p, p), m.At(q, q)
				theta := (aqq - app) / (2 * apq)
				var t float64
				if theta >= 0 {
					t = 1 / (theta + math.Sqrt(1+theta*theta))
				} else {
					t = -1 / (-theta + math.Sqrt(1+theta*theta))
				}
				c := 1 / math.Sqrt(1+t*t)
				s := t * c
				// Apply the rotation J(p, q, theta) on both sides.
				for k := 0; k < n; k++ {
					akp, akq := m.At(k, p), m.At(k, q)
					m.Set(k, p, c*akp-s*akq)
					m.Set(k, q, s*akp+c*akq)
				}
				for k := 0; k < n; k++ {
					apk, aqk := m.At(p, k), m.At(q, k)
					m.Set(p, k, c*apk-s*aqk)
					m.Set(q, k, s*apk+c*aqk)
				}
				for k := 0; k < n; k++ {
					vkp, vkq := vec.At(k, p), vec.At(k, q)
					vec.Set(k, p, c*vkp-s*vkq)
					vec.Set(k, q, s*vkp+c*vkq)
				}
			}
		}
	}

	// Extract eigenvalues and sort ascending with their vectors.
	w = make([]float64, n)
	for i := 0; i < n; i++ {
		w[i] = m.At(i, i)
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(i, j int) bool { return w[idx[i]] < w[idx[j]] })
	sortedW := make([]float64, n)
	sortedV := NewMatrix(n, n)
	for newCol, oldCol := range idx {
		sortedW[newCol] = w[oldCol]
		for r := 0; r < n; r++ {
			sortedV.Set(r, newCol, vec.At(r, oldCol))
		}
	}
	return sortedW, sortedV, nil
}
