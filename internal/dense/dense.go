// Package dense provides the dense linear-algebra kernels the
// reproduction needs: LU factorization (the O(n^3) inverse-matrix
// baseline of the paper and the exactness oracle for tests), a Jacobi
// symmetric eigensolver (spectral clustering inside the FMR baseline),
// and a one-sided Jacobi thin SVD (FMR's per-block low-rank
// approximation).
//
// Everything is written against the Go standard library; no BLAS. The
// point of these kernels is correctness and clarity at the baseline
// scales of the paper's evaluation, not peak FLOPs.
package dense

import (
	"fmt"
	"math"
)

// Matrix is a dense row-major matrix.
type Matrix struct {
	// Data holds the elements row by row; element (i, j) is
	// Data[i*Cols+j].
	Data []float64
	// Rows and Cols are the dimensions.
	Rows, Cols int
}

// NewMatrix returns a zero-initialized rows x cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("dense: negative dimensions %dx%d", rows, cols))
	}
	return &Matrix{Data: make([]float64, rows*cols), Rows: rows, Cols: cols}
}

// NewMatrixFrom builds a matrix from a slice of rows, copying the data.
func NewMatrixFrom(rows [][]float64) *Matrix {
	if len(rows) == 0 {
		return NewMatrix(0, 0)
	}
	m := NewMatrix(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != m.Cols {
			panic(fmt.Sprintf("dense: ragged input: row %d has %d cols, want %d", i, len(r), m.Cols))
		}
		copy(m.Data[i*m.Cols:(i+1)*m.Cols], r)
	}
	return m
}

// Identity returns the n x n identity matrix.
func Identity(n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Add accumulates v into element (i, j).
func (m *Matrix) Add(i, j int, v float64) { m.Data[i*m.Cols+j] += v }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	return &Matrix{Data: append([]float64(nil), m.Data...), Rows: m.Rows, Cols: m.Cols}
}

// Row returns row i; the slice aliases the matrix storage.
func (m *Matrix) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Mul returns m * b.
func (m *Matrix) Mul(b *Matrix) *Matrix {
	if m.Cols != b.Rows {
		panic(fmt.Sprintf("dense: Mul dimension mismatch %dx%d * %dx%d", m.Rows, m.Cols, b.Rows, b.Cols))
	}
	out := NewMatrix(m.Rows, b.Cols)
	for i := 0; i < m.Rows; i++ {
		mi := m.Row(i)
		oi := out.Row(i)
		for k := 0; k < m.Cols; k++ {
			a := mi[k]
			if a == 0 {
				continue
			}
			bk := b.Row(k)
			for j := 0; j < b.Cols; j++ {
				oi[j] += a * bk[j]
			}
		}
	}
	return out
}

// MulVec returns m * x as a fresh slice.
func (m *Matrix) MulVec(x []float64) []float64 {
	if m.Cols != len(x) {
		panic(fmt.Sprintf("dense: MulVec dimension mismatch %dx%d * %d", m.Rows, m.Cols, len(x)))
	}
	out := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		mi := m.Row(i)
		var s float64
		for j, v := range x {
			s += mi[j] * v
		}
		out[i] = s
	}
	return out
}

// Transpose returns m^T.
func (m *Matrix) Transpose() *Matrix {
	out := NewMatrix(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			out.Set(j, i, m.At(i, j))
		}
	}
	return out
}

// LU holds an LU factorization with partial pivoting: P*A = L*U with
// unit-diagonal L stored below the diagonal of lu and U on and above.
type LU struct {
	lu    *Matrix
	pivot []int
	// signDet is +1 or -1 depending on the parity of row swaps.
	signDet float64
}

// Factorize computes the LU factorization of a square matrix. It
// returns an error when the matrix is singular to working precision.
func Factorize(a *Matrix) (*LU, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("dense: LU of non-square %dx%d matrix", a.Rows, a.Cols)
	}
	n := a.Rows
	lu := a.Clone()
	pivot := make([]int, n)
	sign := 1.0
	for k := 0; k < n; k++ {
		// Partial pivoting: pick the largest |value| in column k.
		p, maxAbs := k, math.Abs(lu.At(k, k))
		for i := k + 1; i < n; i++ {
			if v := math.Abs(lu.At(i, k)); v > maxAbs {
				p, maxAbs = i, v
			}
		}
		if maxAbs == 0 {
			return nil, fmt.Errorf("dense: singular matrix (zero pivot at column %d)", k)
		}
		pivot[k] = p
		if p != k {
			rk, rp := lu.Row(k), lu.Row(p)
			for j := 0; j < n; j++ {
				rk[j], rp[j] = rp[j], rk[j]
			}
			sign = -sign
		}
		pv := lu.At(k, k)
		for i := k + 1; i < n; i++ {
			f := lu.At(i, k) / pv
			lu.Set(i, k, f)
			if f == 0 {
				continue
			}
			ri, rk := lu.Row(i), lu.Row(k)
			for j := k + 1; j < n; j++ {
				ri[j] -= f * rk[j]
			}
		}
	}
	return &LU{lu: lu, pivot: pivot, signDet: sign}, nil
}

// Solve solves A x = b for x using the factorization.
func (f *LU) Solve(b []float64) []float64 {
	return f.SolveInto(make([]float64, len(b)), b)
}

// SolveInto solves A x = b into dst, which must have the same length
// as b and may not alias it. It performs no allocation, so pooled
// query paths can reuse one solution buffer per worker. Solve
// delegates here; both run the identical arithmetic.
func (f *LU) SolveInto(dst, b []float64) []float64 {
	n := f.lu.Rows
	if len(b) != n || len(dst) != n {
		panic(fmt.Sprintf("dense: LU.SolveInto length mismatch dst=%d b=%d n=%d", len(dst), len(b), n))
	}
	x := dst
	copy(x, b)
	// Apply row swaps.
	for k := 0; k < n; k++ {
		if p := f.pivot[k]; p != k {
			x[k], x[p] = x[p], x[k]
		}
	}
	// Forward substitution with unit-lower L.
	for i := 1; i < n; i++ {
		ri := f.lu.Row(i)
		var s float64
		for j := 0; j < i; j++ {
			s += ri[j] * x[j]
		}
		x[i] -= s
	}
	// Back substitution with U.
	for i := n - 1; i >= 0; i-- {
		ri := f.lu.Row(i)
		var s float64
		for j := i + 1; j < n; j++ {
			s += ri[j] * x[j]
		}
		x[i] = (x[i] - s) / ri[i]
	}
	return x
}

// Inverse returns A^{-1} computed column by column; this is the O(n^3)
// time, O(n^2) space computation that the paper's "Inverse" baseline
// performs (Equation 2).
func (f *LU) Inverse() *Matrix {
	n := f.lu.Rows
	inv := NewMatrix(n, n)
	e := make([]float64, n)
	for j := 0; j < n; j++ {
		for i := range e {
			e[i] = 0
		}
		e[j] = 1
		col := f.Solve(e)
		for i := 0; i < n; i++ {
			inv.Set(i, j, col[i])
		}
	}
	return inv
}

// Components exposes the raw factorization — the packed LU matrix
// (unit-lower L below the diagonal, U on and above), the pivot rows,
// and the row-swap parity — for serialization. The returned matrix and
// slice alias the factorization's storage; callers must not mutate
// them.
func (f *LU) Components() (lu *Matrix, pivot []int, signDet float64) {
	return f.lu, f.pivot, f.signDet
}

// NewLUFromComponents reassembles a factorization previously taken
// apart by Components, validating the invariants Factorize guarantees:
// a square matrix, pivot[k] in [k, n), a +/-1 swap parity consistent
// with the pivots, finite entries, and nonzero U diagonal. Corrupt
// serialized factors fail here instead of producing NaN scores (or
// dividing by zero) at query time.
func NewLUFromComponents(lu *Matrix, pivot []int, signDet float64) (*LU, error) {
	n := lu.Rows
	if lu.Cols != n {
		return nil, fmt.Errorf("dense: LU components: non-square %dx%d matrix", lu.Rows, lu.Cols)
	}
	if len(lu.Data) != n*n {
		return nil, fmt.Errorf("dense: LU components: %d elements for %dx%d matrix", len(lu.Data), n, n)
	}
	if len(pivot) != n {
		return nil, fmt.Errorf("dense: LU components: %d pivots for order %d", len(pivot), n)
	}
	sign := 1.0
	for k, p := range pivot {
		if p < k || p >= n {
			return nil, fmt.Errorf("dense: LU components: pivot[%d] = %d outside [%d,%d)", k, p, k, n)
		}
		if p != k {
			sign = -sign
		}
	}
	if signDet != sign {
		return nil, fmt.Errorf("dense: LU components: signDet %g inconsistent with pivots (want %g)", signDet, sign)
	}
	for i, v := range lu.Data {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, fmt.Errorf("dense: LU components: non-finite element at %d", i)
		}
	}
	for i := 0; i < n; i++ {
		if lu.At(i, i) == 0 {
			return nil, fmt.Errorf("dense: LU components: zero U diagonal at %d", i)
		}
	}
	return &LU{lu: lu, pivot: pivot, signDet: signDet}, nil
}

// Order returns n, the dimension of the factorized matrix.
func (f *LU) Order() int { return f.lu.Rows }

// Det returns the determinant of the factorized matrix.
func (f *LU) Det() float64 {
	d := f.signDet
	for i := 0; i < f.lu.Rows; i++ {
		d *= f.lu.At(i, i)
	}
	return d
}

// Inverse is a convenience wrapper: factorize and invert.
func Inverse(a *Matrix) (*Matrix, error) {
	f, err := Factorize(a)
	if err != nil {
		return nil, err
	}
	return f.Inverse(), nil
}

// Solve is a convenience wrapper: factorize and solve a single system.
func Solve(a *Matrix, b []float64) ([]float64, error) {
	f, err := Factorize(a)
	if err != nil {
		return nil, err
	}
	return f.Solve(b), nil
}
