package dense

import (
	"fmt"
	"math"
	"sort"
)

// SVD holds a thin singular value decomposition A = U diag(S) V^T with
// U of size m x r, S of length r, and V of size n x r, where
// r = min(m, n). Singular values are in descending order.
type SVD struct {
	U *Matrix
	S []float64
	V *Matrix
}

// ComputeSVD computes a thin SVD with the one-sided Jacobi method:
// columns of a working copy of A are orthogonalized by plane rotations;
// the resulting column norms are the singular values. One-sided Jacobi
// is slow (O(m n^2) per sweep) but accurate and entirely stdlib, which
// matches this repository's constraints. The FMR baseline uses it for
// the per-block low-rank approximation of the adjacency matrix.
func ComputeSVD(a *Matrix) (*SVD, error) {
	m, n := a.Rows, a.Cols
	if m == 0 || n == 0 {
		return nil, fmt.Errorf("dense: SVD of empty %dx%d matrix", m, n)
	}
	// One-sided Jacobi wants m >= n; transpose if needed and swap U/V.
	if m < n {
		s, err := ComputeSVD(a.Transpose())
		if err != nil {
			return nil, err
		}
		return &SVD{U: s.V, S: s.S, V: s.U}, nil
	}

	w := a.Clone()
	v := Identity(n)
	var frob float64
	for _, x := range w.Data {
		frob += x * x
	}
	eps := 1e-14 * (1 + frob)

	const maxSweeps = 60
	for sweep := 0; sweep < maxSweeps; sweep++ {
		rotated := false
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				// Compute the 2x2 Gram block of columns p and q.
				var app, aqq, apq float64
				for i := 0; i < m; i++ {
					cp, cq := w.At(i, p), w.At(i, q)
					app += cp * cp
					aqq += cq * cq
					apq += cp * cq
				}
				if math.Abs(apq) <= eps*math.Sqrt(app*aqq)+1e-300 {
					continue
				}
				rotated = true
				// Jacobi rotation that zeroes the Gram off-diagonal.
				tau := (aqq - app) / (2 * apq)
				var t float64
				if tau >= 0 {
					t = 1 / (tau + math.Sqrt(1+tau*tau))
				} else {
					t = -1 / (-tau + math.Sqrt(1+tau*tau))
				}
				c := 1 / math.Sqrt(1+t*t)
				s := t * c
				for i := 0; i < m; i++ {
					cp, cq := w.At(i, p), w.At(i, q)
					w.Set(i, p, c*cp-s*cq)
					w.Set(i, q, s*cp+c*cq)
				}
				for i := 0; i < n; i++ {
					vp, vq := v.At(i, p), v.At(i, q)
					v.Set(i, p, c*vp-s*vq)
					v.Set(i, q, s*vp+c*vq)
				}
			}
		}
		if !rotated {
			break
		}
	}

	// Column norms are singular values; normalized columns form U.
	sv := make([]float64, n)
	for j := 0; j < n; j++ {
		var s float64
		for i := 0; i < m; i++ {
			s += w.At(i, j) * w.At(i, j)
		}
		sv[j] = math.Sqrt(s)
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(i, j int) bool { return sv[idx[i]] > sv[idx[j]] })

	u := NewMatrix(m, n)
	vOut := NewMatrix(n, n)
	sOut := make([]float64, n)
	for newCol, oldCol := range idx {
		sOut[newCol] = sv[oldCol]
		if sv[oldCol] > 0 {
			inv := 1 / sv[oldCol]
			for i := 0; i < m; i++ {
				u.Set(i, newCol, w.At(i, oldCol)*inv)
			}
		}
		for i := 0; i < n; i++ {
			vOut.Set(i, newCol, v.At(i, oldCol))
		}
	}
	return &SVD{U: u, S: sOut, V: vOut}, nil
}

// Truncate returns the rank-r approximation factors (U_r, S_r, V_r)
// keeping the r largest singular triplets. r is clamped to the
// available rank.
func (s *SVD) Truncate(r int) (*Matrix, []float64, *Matrix) {
	if r > len(s.S) {
		r = len(s.S)
	}
	if r < 0 {
		r = 0
	}
	u := NewMatrix(s.U.Rows, r)
	v := NewMatrix(s.V.Rows, r)
	for j := 0; j < r; j++ {
		for i := 0; i < s.U.Rows; i++ {
			u.Set(i, j, s.U.At(i, j))
		}
		for i := 0; i < s.V.Rows; i++ {
			v.Set(i, j, s.V.At(i, j))
		}
	}
	return u, append([]float64(nil), s.S[:r]...), v
}
