package spectral

import (
	"math"
	"runtime"
	"testing"

	"mogul/internal/dense"
	"mogul/internal/sparse"
)

// symTestMatrix builds a deterministic sparse symmetric matrix with a
// banded structure plus a strong diagonal, scaled so the spectrum sits
// inside [-1, 1] like a normalized adjacency.
func symTestMatrix(t *testing.T, n, band int) *sparse.CSR {
	t.Helper()
	var coords []sparse.Coord
	for i := 0; i < n; i++ {
		for off := 1; off <= band; off++ {
			j := i + off
			if j >= n {
				break
			}
			v := (splitmix(17, uint64(i*n+j)) - 0.5) / float64(band+2)
			coords = append(coords, sparse.Coord{Row: i, Col: j, Val: v}, sparse.Coord{Row: j, Col: i, Val: v})
		}
		coords = append(coords, sparse.Coord{Row: i, Col: i, Val: (splitmix(23, uint64(i)) - 0.5) * 0.8})
	}
	m, err := sparse.NewFromCoords(n, n, coords)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func denseOf(m *sparse.CSR) *dense.Matrix {
	d := dense.NewMatrix(m.Rows, m.Cols)
	for i := 0; i < m.Rows; i++ {
		cols, vals := m.Row(i)
		for k, j := range cols {
			d.Set(i, j, vals[k])
		}
	}
	return d
}

// TestDecomposeMatchesDenseOracle: the Lanczos pairs must match the
// dense Jacobi eigensolver on a full decomposition (values and vectors
// up to sign), and the top-r truncation must pick the same values.
func TestDecomposeMatchesDenseOracle(t *testing.T) {
	const n = 60
	S := symTestMatrix(t, n, 4)
	w, v, err := dense.EigSym(denseOf(S))
	if err != nil {
		t.Fatal(err)
	}

	full, err := Decompose(S, n, n, 5)
	if err != nil {
		t.Fatal(err)
	}
	if full.Rank != n {
		t.Fatalf("full decomposition kept %d of %d pairs", full.Rank, n)
	}
	for tt := 0; tt < n; tt++ {
		want := w[n-1-tt] // oracle ascending, basis descending
		if math.Abs(full.Vals[tt]-want) > 1e-8 {
			t.Fatalf("eigenvalue %d: got %.12f, want %.12f", tt, full.Vals[tt], want)
		}
		// Vectors match up to sign: compare |<u, oracle>| to 1.
		var dot float64
		for i := 0; i < n; i++ {
			dot += full.Vecs[i*n+tt] * v.At(i, n-1-tt)
		}
		if math.Abs(math.Abs(dot)-1) > 1e-6 {
			t.Fatalf("eigenvector %d: |<lanczos, oracle>| = %.9f, want 1", tt, math.Abs(dot))
		}
	}

	// Random band matrices have gapless spectra (the hard case for a
	// Krylov method), so run the truncated selection over the full
	// Krylov space; the shallow-space accuracy regime is covered by the
	// residual test below.
	const r = 7
	top, err := Decompose(S, r, n, 5)
	if err != nil {
		t.Fatal(err)
	}
	if top.Rank != r {
		t.Fatalf("rank-%d decomposition kept %d pairs", r, top.Rank)
	}
	for tt := 0; tt < r; tt++ {
		if math.Abs(top.Vals[tt]-w[n-1-tt]) > 1e-8 {
			t.Fatalf("top eigenvalue %d: got %.12f, want %.12f", tt, top.Vals[tt], w[n-1-tt])
		}
	}
}

// TestDecomposeResidualsAndOrthonormality: S u = lambda u within
// tolerance and U^T U = I for a truncated decomposition of a larger
// matrix (where the dense oracle would be too slow).
func TestDecomposeResidualsAndOrthonormality(t *testing.T) {
	const n, r = 900, 12
	S := symTestMatrix(t, n, 6)
	b, err := Decompose(S, r, 180, 9)
	if err != nil {
		t.Fatal(err)
	}
	if b.Rank != r {
		t.Fatalf("kept %d of %d pairs", b.Rank, r)
	}
	u := make([]float64, n)
	su := make([]float64, n)
	for tt := 0; tt < r; tt++ {
		for i := 0; i < n; i++ {
			u[i] = b.Vecs[i*r+tt]
		}
		mulVecPar(S, su, u)
		var resid, norm float64
		for i := 0; i < n; i++ {
			d := su[i] - b.Vals[tt]*u[i]
			resid += d * d
			norm += u[i] * u[i]
		}
		if math.Abs(norm-1) > 1e-9 {
			t.Fatalf("eigenvector %d has norm %.12f", tt, math.Sqrt(norm))
		}
		if math.Sqrt(resid) > 1e-6 {
			t.Fatalf("eigenpair %d residual %.3e", tt, math.Sqrt(resid))
		}
		for ss := tt + 1; ss < r; ss++ {
			var dot float64
			for i := 0; i < n; i++ {
				dot += b.Vecs[i*r+tt] * b.Vecs[i*r+ss]
			}
			if math.Abs(dot) > 1e-8 {
				t.Fatalf("eigenvectors %d and %d not orthogonal: %.3e", tt, ss, dot)
			}
		}
	}
	for tt := 1; tt < r; tt++ {
		if b.Vals[tt] > b.Vals[tt-1] {
			t.Fatalf("eigenvalues not descending at %d: %g > %g", tt, b.Vals[tt], b.Vals[tt-1])
		}
	}
}

// TestDecomposeDeterministicAcrossGOMAXPROCS: the basis must be
// bit-identical at 1, 2, and 8 workers — the contract every saved
// byte of the spectral engine rests on.
func TestDecomposeDeterministicAcrossGOMAXPROCS(t *testing.T) {
	const n, r = 3000, 16
	S := symTestMatrix(t, n, 5)
	var ref *Basis
	for _, procs := range []int{1, 2, 8} {
		prev := runtime.GOMAXPROCS(procs)
		b, err := Decompose(S, r, 0, 41)
		runtime.GOMAXPROCS(prev)
		if err != nil {
			t.Fatalf("GOMAXPROCS=%d: %v", procs, err)
		}
		if ref == nil {
			ref = b
			continue
		}
		if b.Rank != ref.Rank {
			t.Fatalf("GOMAXPROCS=%d: rank %d, want %d", procs, b.Rank, ref.Rank)
		}
		for i := range ref.Vals {
			if math.Float64bits(b.Vals[i]) != math.Float64bits(ref.Vals[i]) {
				t.Fatalf("GOMAXPROCS=%d: eigenvalue %d differs in bits", procs, i)
			}
		}
		for i := range ref.Vecs {
			if math.Float64bits(b.Vecs[i]) != math.Float64bits(ref.Vecs[i]) {
				t.Fatalf("GOMAXPROCS=%d: embedding element %d differs in bits", procs, i)
			}
		}
	}
}

// TestDecomposeBreakdown: a matrix whose Krylov space is smaller than
// the requested rank (here rank-1: every row identical) must truncate
// gracefully instead of fabricating pairs.
func TestDecomposeBreakdown(t *testing.T) {
	const n = 12
	var coords []sparse.Coord
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			coords = append(coords, sparse.Coord{Row: i, Col: j, Val: 1.0 / n})
		}
	}
	S, err := sparse.NewFromCoords(n, n, coords)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Decompose(S, 6, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if b.Rank < 1 || b.Rank > 6 {
		t.Fatalf("breakdown kept %d pairs", b.Rank)
	}
	if math.Abs(b.Vals[0]-1) > 1e-9 {
		t.Fatalf("top eigenvalue of the averaging matrix: got %g, want 1", b.Vals[0])
	}
}

// TestDecomposeRejectsBadInput: shape errors come back as errors.
func TestDecomposeRejectsBadInput(t *testing.T) {
	rect, err := sparse.NewFromCoords(3, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Decompose(rect, 2, 0, 1); err == nil {
		t.Fatal("accepted a non-square matrix")
	}
	sq := symTestMatrix(t, 5, 2)
	if _, err := Decompose(sq, 0, 0, 1); err == nil {
		t.Fatal("accepted rank 0")
	}
}
