// Package spectral computes truncated eigendecompositions of large
// sparse symmetric matrices — the rank-r basis behind the Fast
// Spectral Ranking backend (Iscen et al., "Fast Spectral Ranking for
// Similarity Search"): the normalized k-NN graph adjacency
// S = C^{-1/2} A C^{-1/2} is factored once as S ~ U diag(vals) U^T,
// after which the Manifold Ranking resolvent collapses to dot
// products in the embedding (see mogul.BuildSpectral).
//
// The solver is Lanczos with full (two-pass classical Gram-Schmidt)
// reorthogonalization and a Rayleigh-Ritz step through dense.EigSym
// on the projected tridiagonal matrix. Everything is deterministic at
// any GOMAXPROCS: the start vector is a pure function of the seed,
// matrix-vector products parallelize over rows (each row independent,
// fixed four-lane kernel order inside), and every inner product runs
// as a par.SumBlocks fixed-shape blocked reduction, so the basis —
// and every score and saved byte downstream of it — is bit-identical
// at 1 worker and at 64.
package spectral

import (
	"fmt"
	"math"

	"mogul/internal/dense"
	"mogul/internal/par"
	"mogul/internal/sparse"
	"mogul/internal/vec"
)

// Basis is a truncated eigendecomposition S ~ Vecs diag(Vals) Vecs^T.
type Basis struct {
	// Rank is the number of retained eigenpairs (clamped to what the
	// Krylov space exposed; see Decompose).
	Rank int
	// Vals holds the Ritz values in descending order, clamped to
	// [-1, 1] (the spectrum of a normalized adjacency; clamping keeps
	// the ranking transfer function 1/(1-alpha*lambda) finite and
	// positive under floating-point overshoot).
	Vals []float64
	// Vecs holds the orthonormal Ritz vectors row-major: element
	// [i*Rank+t] is component i of eigenvector t, so the per-item
	// embedding rows the query scan streams are contiguous.
	Vecs []float64
}

// Row returns the embedding row of item i (aliases Basis storage).
func (b *Basis) Row(i int) []float64 { return b.Vecs[i*b.Rank : (i+1)*b.Rank] }

// breakdownTol declares the Krylov space exhausted: the residual of
// the three-term recurrence has collapsed to rounding noise relative
// to the unit-norm basis vectors (a "happy breakdown" — an invariant
// subspace was found, which with full reorthogonalization only
// happens when the matrix has fewer reachable eigendirections than
// requested steps).
const breakdownTol = 1e-12

// Decompose computes the top-rank (largest algebraic eigenvalue)
// eigenpairs of the symmetric matrix S with steps Lanczos iterations
// (steps <= 0 selects 2*rank+16). rank and steps are clamped to the
// matrix order; on early breakdown the returned Basis carries as many
// pairs as the Krylov space exposed, which can be fewer than rank.
// The result is deterministic for a fixed (S, rank, steps, seed) at
// any GOMAXPROCS.
func Decompose(S *sparse.CSR, rank, steps int, seed int64) (*Basis, error) {
	if S.Rows != S.Cols {
		return nil, fmt.Errorf("spectral: non-square %dx%d matrix", S.Rows, S.Cols)
	}
	n := S.Rows
	if n < 1 {
		return nil, fmt.Errorf("spectral: empty matrix")
	}
	if rank < 1 {
		return nil, fmt.Errorf("spectral: rank must be positive, got %d", rank)
	}
	if rank > n {
		rank = n
	}
	if steps <= 0 {
		steps = 2*rank + 16
	}
	if steps < rank {
		steps = rank
	}
	if steps > n {
		steps = n
	}

	// Lanczos with full reorthogonalization. V collects the orthonormal
	// Krylov basis; alphas/betas the projected tridiagonal.
	V := make([][]float64, 0, steps)
	alphas := make([]float64, 0, steps)
	betas := make([]float64, 0, steps) // betas[j] couples v_j and v_{j+1}

	v0 := make([]float64, n)
	par.For(n, 0, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			v0[i] = splitmix(uint64(seed)^0x9e3779b97f4a7c15, uint64(i)) - 0.5
		}
	})
	if norm := math.Sqrt(dotPar(v0, v0)); norm > 0 {
		scalePar(v0, 1/norm)
	} else {
		v0[0] = 1
	}
	V = append(V, v0)

	w := make([]float64, n)
	coeff := make([]float64, 0, steps)
	for j := 0; j < steps; j++ {
		vj := V[j]
		mulVecPar(S, w, vj)
		alpha := dotPar(w, vj)
		alphas = append(alphas, alpha)

		// Three-term recurrence, then two passes of classical
		// Gram-Schmidt against the whole basis (CGS2): the first pass
		// includes the recurrence terms themselves, the second mops up
		// the cancellation error, keeping V orthonormal to working
		// precision — which is what keeps the projected matrix genuinely
		// tridiagonal and the Ritz pairs trustworthy.
		for pass := 0; pass < 2; pass++ {
			coeff = coeff[:0]
			for i := range V {
				coeff = append(coeff, dotPar(w, V[i]))
			}
			par.For(n, 0, func(lo, hi int) {
				for i, c := range coeff {
					if c == 0 {
						continue
					}
					vi := V[i][lo:hi]
					wb := w[lo:hi]
					for x := range wb {
						wb[x] -= c * vi[x]
					}
				}
			})
		}

		beta := math.Sqrt(dotPar(w, w))
		if j+1 >= steps {
			break
		}
		if beta <= breakdownTol {
			// Invariant subspace found: the tridiagonal recurrence cannot
			// continue past it without destroying the T = V^T S V
			// structure, so stop with the pairs the space exposed.
			break
		}
		betas = append(betas, beta)
		next := make([]float64, n)
		inv := 1 / beta
		par.For(n, 0, func(lo, hi int) {
			wb := w[lo:hi]
			nb := next[lo:hi]
			for x := range wb {
				nb[x] = wb[x] * inv
			}
		})
		V = append(V, next)
	}

	// Rayleigh-Ritz on the projected tridiagonal.
	m := len(V)
	T := dense.NewMatrix(m, m)
	for j := 0; j < m; j++ {
		T.Set(j, j, alphas[j])
		if j+1 < m {
			T.Set(j, j+1, betas[j])
			T.Set(j+1, j, betas[j])
		}
	}
	ritz, Y, err := dense.EigSym(T)
	if err != nil {
		return nil, fmt.Errorf("spectral: Rayleigh-Ritz eigensolve: %w", err)
	}

	if rank > m {
		rank = m
	}
	vals := make([]float64, rank)
	for t := 0; t < rank; t++ {
		// EigSym returns ascending; take the largest, descending.
		v := ritz[m-1-t]
		if v > 1 {
			v = 1
		}
		if v < -1 {
			v = -1
		}
		vals[t] = v
	}

	// Ritz vectors U = V Y (top columns), assembled row-major so item
	// i's embedding is contiguous. Each block streams every Lanczos
	// vector once and accumulates in ascending j order — bit-identical
	// at any GOMAXPROCS, cache-friendly at any n.
	vecs := make([]float64, n*rank)
	par.For(n, 128, func(lo, hi int) {
		for j := 0; j < m; j++ {
			vj := V[j][lo:hi]
			for t := 0; t < rank; t++ {
				y := Y.At(j, m-1-t)
				if y == 0 {
					continue
				}
				for x, vx := range vj {
					vecs[(lo+x)*rank+t] += y * vx
				}
			}
		}
	})
	return &Basis{Rank: rank, Vals: vals, Vecs: vecs}, nil
}

// mulVecPar computes y = S*x parallelized over rows; each row is an
// independent fixed-order DotGather, so the product is bit-identical
// to the serial CSR MulVecTo at any worker count.
func mulVecPar(S *sparse.CSR, y, x []float64) {
	par.For(S.Rows, 256, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			a, b := S.RowPtr[i], S.RowPtr[i+1]
			y[i] = vec.DotGather(S.Val[a:b], S.Col[a:b], x)
		}
	})
}

// dotPar is a deterministic parallel inner product: fixed-shape block
// partials (four-lane vec.Dot inside), folded in ascending block
// order.
func dotPar(a, b []float64) float64 {
	return par.SumBlocks(len(a), 0, func(lo, hi int) float64 {
		return vec.Dot(a[lo:hi], b[lo:hi])
	})
}

func scalePar(a []float64, s float64) {
	par.For(len(a), 0, func(lo, hi int) {
		ab := a[lo:hi]
		for x := range ab {
			ab[x] *= s
		}
	})
}

// splitmix maps (seed, index) to a uniform float64 in [0, 1) — the
// deterministic start-vector generator (no global RNG state, so the
// value of component i never depends on evaluation order).
func splitmix(seed, i uint64) float64 {
	z := seed + (i+1)*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return float64(z>>11) / (1 << 53)
}
