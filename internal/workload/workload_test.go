package workload

import (
	"strings"
	"testing"

	"mogul/internal/core"
	"mogul/internal/dataset"
	"mogul/internal/knn"
	"mogul/internal/vec"
)

func testIndex(t *testing.T) (*core.Index, []vec.Vector) {
	t.Helper()
	ds := dataset.Mixture(dataset.MixtureConfig{
		N: 400, Classes: 8, Dim: 8, WithinStd: 0.2, Separation: 2, Seed: 1,
	})
	in, holdout, _, err := dataset.HoldOut(ds, 0.05, 2)
	if err != nil {
		t.Fatal(err)
	}
	g, err := knn.BuildGraph(in.Points, knn.GraphConfig{K: 5})
	if err != nil {
		t.Fatal(err)
	}
	ix, err := core.NewIndex(g, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return ix, holdout
}

func TestRunBasics(t *testing.T) {
	ix, _ := testIndex(t)
	rep, err := Run(ix, Config{Queries: 200, K: 5, Concurrency: 4, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Queries != 200 || rep.Errors != 0 || rep.OutOfSample != 0 {
		t.Fatalf("report: %+v", rep)
	}
	if rep.QPS <= 0 || rep.Latency.Max <= 0 || rep.Latency.Median > rep.Latency.Max {
		t.Fatalf("latency stats: %+v", rep.Latency)
	}
	if !strings.Contains(rep.String(), "qps=") {
		t.Fatalf("String(): %s", rep.String())
	}
}

func TestRunWithOutOfSample(t *testing.T) {
	ix, holdout := testIndex(t)
	rep, err := Run(ix, Config{
		Queries: 100, K: 5, Concurrency: 2,
		OutOfSampleFraction: 0.3, HoldOut: holdout, Seed: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors != 0 {
		t.Fatalf("%d errors", rep.Errors)
	}
	if rep.OutOfSample == 0 || rep.OutOfSample == 100 {
		t.Fatalf("oos count %d implausible for fraction 0.3", rep.OutOfSample)
	}
}

func TestRunDeterministicStream(t *testing.T) {
	ix, holdout := testIndex(t)
	a, err := Run(ix, Config{Queries: 50, K: 3, OutOfSampleFraction: 0.2, HoldOut: holdout, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(ix, Config{Queries: 50, K: 3, OutOfSampleFraction: 0.2, HoldOut: holdout, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if a.OutOfSample != b.OutOfSample {
		t.Fatalf("stream not deterministic: %d vs %d oos", a.OutOfSample, b.OutOfSample)
	}
}

func TestRunValidation(t *testing.T) {
	ix, _ := testIndex(t)
	if _, err := Run(ix, Config{Queries: 0, K: 5}); err == nil {
		t.Fatal("zero queries accepted")
	}
	if _, err := Run(ix, Config{Queries: 10, K: 0}); err == nil {
		t.Fatal("zero k accepted")
	}
	if _, err := Run(ix, Config{Queries: 10, K: 5, OutOfSampleFraction: 2}); err == nil {
		t.Fatal("fraction > 1 accepted")
	}
	if _, err := Run(ix, Config{Queries: 10, K: 5, OutOfSampleFraction: 0.5}); err == nil {
		t.Fatal("missing holdout accepted")
	}
}
