// Package workload simulates a retrieval service's query stream over a
// prebuilt Mogul index and measures throughput and latency — the
// operational view of the paper's system ("image retrieval engines
// present at most 20 images at one time", Section 5.1, implies an
// interactive serving context this package makes concrete).
//
// A workload mixes in-database queries drawn from a Zipf popularity
// distribution (real query logs are heavy-tailed) with a configurable
// fraction of out-of-sample queries (new uploads), fanned out over a
// fixed number of concurrent clients.
package workload

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"mogul/internal/core"
	"mogul/internal/eval"
	"mogul/internal/vec"
)

// Config describes a synthetic query stream.
type Config struct {
	// Queries is the total number of queries to issue.
	Queries int
	// K is the answer count per query (the paper's UI argument caps
	// this at ~20).
	K int
	// Concurrency is the number of client goroutines (default 1).
	Concurrency int
	// ZipfS is the Zipf exponent for query popularity (must be > 1 for
	// the stdlib generator; default 1.2, mildly skewed).
	ZipfS float64
	// OutOfSampleFraction in [0,1] is the share of queries that are
	// held-out vectors instead of database items.
	OutOfSampleFraction float64
	// HoldOut supplies the out-of-sample query vectors (required when
	// OutOfSampleFraction > 0).
	HoldOut []vec.Vector
	// Seed makes the stream deterministic.
	Seed int64
}

// Report summarizes one run.
type Report struct {
	// Queries actually issued.
	Queries int
	// Wall is the end-to-end wall-clock time.
	Wall time.Duration
	// QPS is Queries / Wall.
	QPS float64
	// Latency holds per-query latency order statistics.
	Latency eval.DurationStats
	// Errors counts failed queries (should be 0).
	Errors int
	// OutOfSample counts how many queries took the out-of-sample path.
	OutOfSample int
}

// String renders the report as a compact single block.
func (r *Report) String() string {
	return fmt.Sprintf(
		"queries=%d (oos=%d) wall=%v qps=%.0f p50=%v p90=%v p99=%v max=%v errors=%d",
		r.Queries, r.OutOfSample, r.Wall.Round(time.Millisecond), r.QPS,
		r.Latency.Median.Round(time.Microsecond), r.Latency.P90.Round(time.Microsecond),
		r.Latency.P99.Round(time.Microsecond), r.Latency.Max.Round(time.Microsecond),
		r.Errors,
	)
}

// Run replays the configured stream against the index.
func Run(ix *core.Index, cfg Config) (*Report, error) {
	if cfg.Queries <= 0 {
		return nil, fmt.Errorf("workload: Queries must be positive, got %d", cfg.Queries)
	}
	if cfg.K <= 0 {
		return nil, fmt.Errorf("workload: K must be positive, got %d", cfg.K)
	}
	if cfg.OutOfSampleFraction < 0 || cfg.OutOfSampleFraction > 1 {
		return nil, fmt.Errorf("workload: OutOfSampleFraction must lie in [0,1], got %g", cfg.OutOfSampleFraction)
	}
	if cfg.OutOfSampleFraction > 0 && len(cfg.HoldOut) == 0 {
		return nil, fmt.Errorf("workload: OutOfSampleFraction > 0 requires HoldOut vectors")
	}
	concurrency := cfg.Concurrency
	if concurrency <= 0 {
		concurrency = 1
	}
	zipfS := cfg.ZipfS
	if zipfS <= 1 {
		zipfS = 1.2
	}
	n := ix.Stats().NumNodes

	// Pre-generate the whole stream so the measured section is pure
	// query work. A query is either an item id (>= 0) or -(holdout+1).
	rng := rand.New(rand.NewSource(cfg.Seed))
	zipf := rand.NewZipf(rng, zipfS, 1, uint64(n-1))
	// A fixed random relabeling decouples Zipf rank from item id (ids
	// carry no popularity meaning).
	relabel := rng.Perm(n)
	stream := make([]int, cfg.Queries)
	oosCount := 0
	for i := range stream {
		if cfg.OutOfSampleFraction > 0 && rng.Float64() < cfg.OutOfSampleFraction {
			stream[i] = -(rng.Intn(len(cfg.HoldOut)) + 1)
			oosCount++
		} else {
			stream[i] = relabel[int(zipf.Uint64())]
		}
	}

	latencies := make([]time.Duration, cfg.Queries)
	errs := make([]error, cfg.Queries)
	var wg sync.WaitGroup
	next := make(chan int, concurrency)
	start := time.Now()
	for w := 0; w < concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				q := stream[i]
				t0 := time.Now()
				var err error
				if q >= 0 {
					_, err = ix.TopK(q, cfg.K)
				} else {
					_, _, err = ix.SearchOutOfSample(cfg.HoldOut[-q-1], core.OOSOptions{K: cfg.K})
				}
				latencies[i] = time.Since(t0)
				errs[i] = err
			}
		}()
	}
	for i := range stream {
		next <- i
	}
	close(next)
	wg.Wait()
	wall := time.Since(start)

	report := &Report{
		Queries:     cfg.Queries,
		Wall:        wall,
		QPS:         float64(cfg.Queries) / wall.Seconds(),
		Latency:     eval.SummarizeDurations(latencies),
		OutOfSample: oosCount,
	}
	for _, err := range errs {
		if err != nil {
			report.Errors++
		}
	}
	return report, nil
}
