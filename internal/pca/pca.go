// Package pca implements principal component analysis for feature
// preprocessing. The paper's pipelines feed raw image descriptors
// (3,048-D RGB values for COIL-100) into the k-NN graph; real
// deployments first project such features onto their leading principal
// components to cut graph-construction cost and denoise distances.
// This package provides that standard step on top of the repository's
// own symmetric eigensolver.
package pca

import (
	"fmt"
	"sort"

	"mogul/internal/dense"
	"mogul/internal/vec"
)

// Model is a fitted PCA projection.
type Model struct {
	// Mean is the training mean, subtracted before projection.
	Mean vec.Vector
	// Components holds the top principal axes, one per row, each of
	// the original dimensionality and unit norm.
	Components []vec.Vector
	// Explained holds the variance captured by each component, in
	// decreasing order.
	Explained []float64
	// TotalVariance is the trace of the covariance matrix.
	TotalVariance float64
}

// Fit computes the top-k principal components of the points. k is
// clamped to the dimensionality. The full covariance eigendecomposition
// is O(d^3) — fine for the descriptor dimensionalities used here
// (tens to a few hundred).
func Fit(points []vec.Vector, k int) (*Model, error) {
	n := len(points)
	if n < 2 {
		return nil, fmt.Errorf("pca: need at least 2 points, got %d", n)
	}
	dim := len(points[0])
	if dim == 0 {
		return nil, fmt.Errorf("pca: zero-dimensional points")
	}
	for i, p := range points {
		if len(p) != dim {
			return nil, fmt.Errorf("pca: point %d has dim %d, want %d", i, len(p), dim)
		}
	}
	if k <= 0 || k > dim {
		k = dim
	}

	mean := vec.Mean(points)
	// Covariance matrix (d x d).
	cov := dense.NewMatrix(dim, dim)
	for _, p := range points {
		for i := 0; i < dim; i++ {
			di := p[i] - mean[i]
			if di == 0 {
				continue
			}
			row := cov.Row(i)
			for j := 0; j < dim; j++ {
				row[j] += di * (p[j] - mean[j])
			}
		}
	}
	inv := 1 / float64(n-1)
	for i := range cov.Data {
		cov.Data[i] *= inv
	}

	eig, v, err := dense.EigSym(cov)
	if err != nil {
		return nil, fmt.Errorf("pca: eigendecomposition: %w", err)
	}
	// Eigenvalues ascend; take the top k.
	idx := make([]int, dim)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return eig[idx[a]] > eig[idx[b]] })

	m := &Model{Mean: mean}
	for _, e := range eig {
		if e > 0 {
			m.TotalVariance += e
		}
	}
	for t := 0; t < k; t++ {
		col := idx[t]
		comp := make(vec.Vector, dim)
		for r := 0; r < dim; r++ {
			comp[r] = v.At(r, col)
		}
		lam := eig[col]
		if lam < 0 {
			lam = 0 // numerical noise below zero
		}
		m.Components = append(m.Components, comp)
		m.Explained = append(m.Explained, lam)
	}
	return m, nil
}

// Dim returns the projected dimensionality.
func (m *Model) Dim() int { return len(m.Components) }

// Project maps a single vector into the component space.
func (m *Model) Project(p vec.Vector) (vec.Vector, error) {
	if len(p) != len(m.Mean) {
		return nil, fmt.Errorf("pca: project dimension %d, want %d", len(p), len(m.Mean))
	}
	centered := p.Clone()
	centered.Sub(m.Mean)
	out := make(vec.Vector, len(m.Components))
	for c, comp := range m.Components {
		out[c] = centered.Dot(comp)
	}
	return out, nil
}

// ProjectAll maps every point; errors on the first dimension mismatch.
func (m *Model) ProjectAll(points []vec.Vector) ([]vec.Vector, error) {
	out := make([]vec.Vector, len(points))
	for i, p := range points {
		proj, err := m.Project(p)
		if err != nil {
			return nil, fmt.Errorf("pca: point %d: %w", i, err)
		}
		out[i] = proj
	}
	return out, nil
}

// ExplainedRatio returns the fraction of total variance captured by
// the kept components.
func (m *Model) ExplainedRatio() float64 {
	if m.TotalVariance == 0 {
		return 0
	}
	var kept float64
	for _, e := range m.Explained {
		kept += e
	}
	return kept / m.TotalVariance
}

// Transform fits PCA on a dataset and returns the projected dataset
// (labels carried over) together with the model.
func Transform(ds *vec.Dataset, k int) (*vec.Dataset, *Model, error) {
	m, err := Fit(ds.Points, k)
	if err != nil {
		return nil, nil, err
	}
	proj, err := m.ProjectAll(ds.Points)
	if err != nil {
		return nil, nil, err
	}
	out := &vec.Dataset{
		Points: proj,
		Labels: ds.Labels,
		Name:   fmt.Sprintf("%s/pca%d", ds.Name, m.Dim()),
	}
	return out, m, nil
}
