package pca

import (
	"math"
	"math/rand"
	"testing"

	"mogul/internal/dataset"
	"mogul/internal/knn"
	"mogul/internal/vec"
)

func TestFitRecoversDominantDirection(t *testing.T) {
	// Points spread along (1,1,0)/sqrt(2) with tiny orthogonal noise:
	// the first component must align with that axis.
	rng := rand.New(rand.NewSource(1))
	var pts []vec.Vector
	for i := 0; i < 300; i++ {
		tval := rng.NormFloat64() * 5
		pts = append(pts, vec.Vector{
			tval/math.Sqrt2 + rng.NormFloat64()*0.01,
			tval/math.Sqrt2 + rng.NormFloat64()*0.01,
			rng.NormFloat64() * 0.01,
		})
	}
	m, err := Fit(pts, 1)
	if err != nil {
		t.Fatal(err)
	}
	c := m.Components[0]
	if dot := math.Abs(c[0]*1/math.Sqrt2 + c[1]*1/math.Sqrt2); dot < 0.999 {
		t.Fatalf("first component %v not aligned with dominant axis (|dot| = %g)", c, dot)
	}
	if m.ExplainedRatio() < 0.99 {
		t.Fatalf("explained ratio %g", m.ExplainedRatio())
	}
}

func TestFitErrors(t *testing.T) {
	if _, err := Fit(nil, 2); err == nil {
		t.Fatal("empty input accepted")
	}
	if _, err := Fit([]vec.Vector{{1}}, 1); err == nil {
		t.Fatal("single point accepted")
	}
	if _, err := Fit([]vec.Vector{{1, 2}, {3}}, 1); err == nil {
		t.Fatal("ragged input accepted")
	}
	if _, err := Fit([]vec.Vector{{}, {}}, 1); err == nil {
		t.Fatal("zero-dim input accepted")
	}
}

func TestProjectionPreservesDistancesAtFullRank(t *testing.T) {
	// Full-rank PCA is an isometry (rotation + translation): pairwise
	// distances must be preserved.
	rng := rand.New(rand.NewSource(2))
	var pts []vec.Vector
	for i := 0; i < 50; i++ {
		p := make(vec.Vector, 5)
		for j := range p {
			p[j] = rng.NormFloat64()
		}
		pts = append(pts, p)
	}
	m, err := Fit(pts, 5)
	if err != nil {
		t.Fatal(err)
	}
	proj, err := m.ProjectAll(pts)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 30; trial++ {
		i, j := rng.Intn(50), rng.Intn(50)
		want := vec.SquaredEuclidean(pts[i], pts[j])
		got := vec.SquaredEuclidean(proj[i], proj[j])
		if math.Abs(got-want) > 1e-7*(1+want) {
			t.Fatalf("distance (%d,%d): %g vs %g", i, j, got, want)
		}
	}
}

func TestProjectValidation(t *testing.T) {
	pts := []vec.Vector{{1, 2}, {3, 4}, {5, 6}}
	m, err := Fit(pts, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Project(vec.Vector{1}); err == nil {
		t.Fatal("wrong dimension accepted")
	}
	if _, err := m.ProjectAll([]vec.Vector{{1, 2}, {1}}); err == nil {
		t.Fatal("ragged batch accepted")
	}
}

func TestTransformKeepsRetrievalSignal(t *testing.T) {
	// Integration: PCA to 8 dims must keep the mixture retrievable
	// (the whole point of using it as graph preprocessing).
	ds := dataset.Mixture(dataset.MixtureConfig{
		N: 400, Classes: 8, Dim: 64, WithinStd: 0.2, Separation: 2, Seed: 3,
	})
	reduced, m, err := Transform(ds, 8)
	if err != nil {
		t.Fatal(err)
	}
	if reduced.Dim() != 8 || reduced.Len() != ds.Len() {
		t.Fatalf("reduced shape %dx%d", reduced.Len(), reduced.Dim())
	}
	if m.ExplainedRatio() < 0.3 {
		t.Fatalf("explained ratio %g suspiciously low", m.ExplainedRatio())
	}
	g, err := knn.BuildGraph(reduced.Points, knn.GraphConfig{K: 5})
	if err != nil {
		t.Fatal(err)
	}
	same, total := 0, 0
	for i := 0; i < g.Len(); i++ {
		cols, _ := g.Neighbors(i)
		for _, j := range cols {
			total++
			if reduced.Labels[i] == reduced.Labels[j] {
				same++
			}
		}
	}
	if frac := float64(same) / float64(total); frac < 0.9 {
		t.Fatalf("within-class edge fraction %.2f after PCA", frac)
	}
}

func TestExplainedOrdering(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	var pts []vec.Vector
	for i := 0; i < 100; i++ {
		pts = append(pts, vec.Vector{
			rng.NormFloat64() * 3,
			rng.NormFloat64() * 2,
			rng.NormFloat64() * 1,
		})
	}
	m, err := Fit(pts, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(m.Explained); i++ {
		if m.Explained[i] > m.Explained[i-1]+1e-12 {
			t.Fatalf("explained variance not descending: %v", m.Explained)
		}
	}
}
