package binio

import (
	"bytes"
	"errors"
	"io"
	"math"
	"testing"
)

func TestRoundTripPrimitives(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Uint32(0xdeadbeef)
	w.Uint64(1 << 62)
	w.Int(-42)
	w.Float64(math.Pi)
	w.Ints([]int{0, -1, 1 << 40, -(1 << 40)})
	w.Floats([]float64{0, -1.5, math.Inf(1), math.SmallestNonzeroFloat64})
	w.Floats(nil)
	if err := w.Err(); err != nil {
		t.Fatal(err)
	}
	if w.Count() != int64(buf.Len()) {
		t.Fatalf("Count %d != buffer %d", w.Count(), buf.Len())
	}

	r := NewReader(bytes.NewReader(buf.Bytes()))
	if v := r.Uint32(); v != 0xdeadbeef {
		t.Fatalf("Uint32 = %x", v)
	}
	if v := r.Uint64(); v != 1<<62 {
		t.Fatalf("Uint64 = %d", v)
	}
	if v := r.Int(); v != -42 {
		t.Fatalf("Int = %d", v)
	}
	if v := r.Float64(); v != math.Pi {
		t.Fatalf("Float64 = %g", v)
	}
	ints := r.Ints(10)
	if len(ints) != 4 || ints[1] != -1 || ints[2] != 1<<40 || ints[3] != -(1<<40) {
		t.Fatalf("Ints = %v", ints)
	}
	floats := r.Floats(10)
	if len(floats) != 4 || floats[1] != -1.5 || !math.IsInf(floats[2], 1) {
		t.Fatalf("Floats = %v", floats)
	}
	if v := r.Floats(10); len(v) != 0 {
		t.Fatalf("empty Floats = %v", v)
	}
	if err := r.Err(); err != nil {
		t.Fatal(err)
	}
	if r.Sum32() != w.Sum32() {
		t.Fatalf("CRC mismatch: read %08x, wrote %08x", r.Sum32(), w.Sum32())
	}
}

func TestLargeSliceRoundTrip(t *testing.T) {
	// Larger than one scratch chunk, so the batching paths are hit.
	n := 3*scratchSize/8 + 17
	ints := make([]int, n)
	floats := make([]float64, n)
	for i := range ints {
		ints[i] = i * 31
		floats[i] = float64(i) / 7
	}
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Ints(ints)
	w.Floats(floats)
	if err := w.Err(); err != nil {
		t.Fatal(err)
	}
	r := NewReader(&buf)
	gotI := r.Ints(n)
	gotF := r.Floats(n)
	if err := r.Err(); err != nil {
		t.Fatal(err)
	}
	for i := range ints {
		if gotI[i] != ints[i] || gotF[i] != floats[i] {
			t.Fatalf("element %d differs", i)
		}
	}
}

func TestTruncationIsUnexpectedEOF(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Ints(make([]int, 100))
	data := buf.Bytes()[:buf.Len()/2]
	r := NewReader(bytes.NewReader(data))
	r.Ints(100)
	if !errors.Is(r.Err(), io.ErrUnexpectedEOF) {
		t.Fatalf("err = %v, want io.ErrUnexpectedEOF", r.Err())
	}
	// Sticky: later reads keep failing without panicking.
	r.Uint64()
	r.Floats(5)
	if r.Err() == nil {
		t.Fatal("error not sticky")
	}
}

func TestSliceLengthLimit(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Uint64(1 << 50) // absurd length prefix with no data behind it
	r := NewReader(bytes.NewReader(buf.Bytes()))
	if r.Ints(1000); r.Err() == nil {
		t.Fatal("oversized length accepted")
	}
	// A corrupt length below the limit must fail on missing bytes, not
	// allocate the claimed amount up front.
	buf.Reset()
	w = NewWriter(&buf)
	w.Uint64(1 << 30)
	r = NewReader(bytes.NewReader(buf.Bytes()))
	if r.Floats(1 << 31); !errors.Is(r.Err(), io.ErrUnexpectedEOF) {
		t.Fatalf("err = %v, want io.ErrUnexpectedEOF", r.Err())
	}
}

func TestSkipCountsTowardChecksum(t *testing.T) {
	payload := []byte("0123456789abcdef0123456789abcdef")
	full := NewReader(bytes.NewReader(payload))
	full.Raw(make([]byte, len(payload)))

	skip := NewReader(bytes.NewReader(payload))
	skip.Skip(int64(len(payload)))
	if skip.Err() != nil {
		t.Fatal(skip.Err())
	}
	if skip.Sum32() != full.Sum32() || skip.Count() != full.Count() {
		t.Fatal("Skip diverges from Raw in CRC or count")
	}
}
