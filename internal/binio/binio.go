// Package binio provides the primitive little-endian codec that the
// Mogul index persistence format is built from. Every multi-byte value
// is little-endian; slices are length-prefixed with a uint64 count.
//
// Writer and Reader carry a sticky error (the first failure wins) so
// codec code can emit a whole record and check once, and both maintain
// a running CRC-32 (IEEE) over every byte that passes through, which
// the container format uses for its trailing checksum.
//
// Truncated input surfaces as io.ErrUnexpectedEOF rather than io.EOF,
// so "file ended in the middle of a record" is distinguishable from
// "no more records". Slice reads allocate incrementally while the
// bytes actually arrive, so a corrupt length prefix fails with a read
// error instead of attempting a multi-gigabyte allocation.
package binio

import (
	"encoding/binary"
	"fmt"
	"hash"
	"hash/crc32"
	"io"
	"math"
)

// scratchSize is the staging-buffer size used to batch slice
// conversions; one syscall per 32 KiB instead of one per element.
const scratchSize = 32 * 1024

// maxInitialElems caps the up-front allocation for a length-prefixed
// slice. Longer slices grow as their bytes arrive, so a corrupted
// length cannot trigger an allocation bomb.
const maxInitialElems = 1 << 17

// MaxCount is the shared sanity bound on decoded counts (matrix
// dimensions, node counts, section lengths). It sits far above any
// realistic index so it never constrains real data; it only makes
// corrupt headers fail fast with a clear error. Capped at the
// platform's int range so 32-bit builds stay compilable.
const MaxCount = min(1<<40, math.MaxInt)

// Writer streams primitive values to an io.Writer, tracking byte count
// and CRC-32. Errors are sticky: after the first failure every call is
// a no-op and Err returns the failure.
type Writer struct {
	w       io.Writer
	crc     hash.Hash32
	n       int64
	err     error
	align   int64 // 0 = plain layout; else large arrays pad to this boundary
	base    int64 // absolute file offset of byte 0 of this writer
	scratch [scratchSize]byte
}

// NewWriter wraps w.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: w, crc: crc32.NewIEEE()}
}

// Err returns the first error encountered, if any.
func (w *Writer) Err() error { return w.err }

// Count returns the number of bytes written so far.
func (w *Writer) Count() int64 { return w.n }

// Sum32 returns the CRC-32 (IEEE) of every byte written so far.
func (w *Writer) Sum32() uint32 { return w.crc.Sum32() }

// Raw writes p verbatim.
func (w *Writer) Raw(p []byte) {
	if w.err != nil {
		return
	}
	m, err := w.w.Write(p)
	w.n += int64(m)
	w.crc.Write(p[:m])
	if err != nil {
		w.err = err
	} else if m != len(p) {
		w.err = io.ErrShortWrite
	}
}

// Uint32 writes a little-endian uint32.
func (w *Writer) Uint32(v uint32) {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	w.Raw(b[:])
}

// Uint64 writes a little-endian uint64.
func (w *Writer) Uint64(v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	w.Raw(b[:])
}

// Int writes an int as a two's-complement little-endian int64.
func (w *Writer) Int(v int) { w.Uint64(uint64(int64(v))) }

// Float64 writes the IEEE-754 bits of v.
func (w *Writer) Float64(v float64) { w.Uint64(math.Float64bits(v)) }

// Ints writes a length-prefixed int slice.
func (w *Writer) Ints(s []int) {
	w.Uint64(uint64(len(s)))
	w.alignPad(int64(len(s)) * 8)
	for len(s) > 0 && w.err == nil {
		chunk := len(s)
		if chunk > scratchSize/8 {
			chunk = scratchSize / 8
		}
		for i := 0; i < chunk; i++ {
			binary.LittleEndian.PutUint64(w.scratch[i*8:], uint64(int64(s[i])))
		}
		w.Raw(w.scratch[:chunk*8])
		s = s[chunk:]
	}
}

// Floats writes a length-prefixed float64 slice.
func (w *Writer) Floats(s []float64) {
	w.Uint64(uint64(len(s)))
	w.alignPad(int64(len(s)) * 8)
	for len(s) > 0 && w.err == nil {
		chunk := len(s)
		if chunk > scratchSize/8 {
			chunk = scratchSize / 8
		}
		for i := 0; i < chunk; i++ {
			binary.LittleEndian.PutUint64(w.scratch[i*8:], math.Float64bits(s[i]))
		}
		w.Raw(w.scratch[:chunk*8])
		s = s[chunk:]
	}
}

// Reader streams primitive values from an io.Reader, mirroring Writer.
// Errors are sticky; truncation is reported as io.ErrUnexpectedEOF.
type Reader struct {
	r       io.Reader
	buf     []byte // non-nil = bytes-backed mode (zero-copy views, no CRC)
	pos     int
	crc     hash.Hash32
	n       int64
	err     error
	align   int64 // mirrors Writer.align
	base    int64 // absolute file offset of byte 0 of this reader
	scratch [scratchSize]byte
}

// NewReader wraps r.
func NewReader(r io.Reader) *Reader {
	return &Reader{r: r, crc: crc32.NewIEEE()}
}

// Err returns the first error encountered, if any.
func (r *Reader) Err() error { return r.err }

// Count returns the number of bytes consumed so far.
func (r *Reader) Count() int64 { return r.n }

// Sum32 returns the CRC-32 (IEEE) of every byte consumed so far, or 0
// for a bytes-backed reader (which maintains no CRC; see CRCTracked).
func (r *Reader) Sum32() uint32 {
	if r.crc == nil {
		return 0
	}
	return r.crc.Sum32()
}

// Fail records err (unless one is already sticky) and returns it.
func (r *Reader) Fail(err error) error {
	if r.err == nil {
		r.err = err
	}
	return r.err
}

// Raw fills p, failing with io.ErrUnexpectedEOF on truncation.
func (r *Reader) Raw(p []byte) {
	if r.err != nil {
		return
	}
	if r.buf != nil {
		m := copy(p, r.buf[r.pos:])
		r.pos += m
		r.n += int64(m)
		if m != len(p) {
			r.err = io.ErrUnexpectedEOF
		}
		return
	}
	m, err := io.ReadFull(r.r, p)
	r.n += int64(m)
	r.crc.Write(p[:m])
	if err == io.EOF {
		err = io.ErrUnexpectedEOF
	}
	if err != nil {
		r.err = err
	}
}

// Uint32 reads a little-endian uint32.
func (r *Reader) Uint32() uint32 {
	var b [4]byte
	r.Raw(b[:])
	if r.err != nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b[:])
}

// Uint64 reads a little-endian uint64.
func (r *Reader) Uint64() uint64 {
	var b [8]byte
	r.Raw(b[:])
	if r.err != nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b[:])
}

// Int reads an int64 and narrows it to int.
func (r *Reader) Int() int { return int(int64(r.Uint64())) }

// Float64 reads IEEE-754 bits.
func (r *Reader) Float64() float64 { return math.Float64frombits(r.Uint64()) }

// sliceLen reads and validates a length prefix against max.
func (r *Reader) sliceLen(max int) (int, bool) {
	n := r.Uint64()
	if r.err != nil {
		return 0, false
	}
	if max < 0 {
		max = 0
	}
	if n > uint64(max) {
		r.Fail(fmt.Errorf("binio: slice length %d exceeds limit %d", n, max))
		return 0, false
	}
	return int(n), true
}

// Ints reads a length-prefixed int slice, rejecting lengths above max.
func (r *Reader) Ints(max int) []int {
	n, ok := r.sliceLen(max)
	if !ok {
		return nil
	}
	r.alignSkip(int64(n) * 8)
	return r.intsBody(n)
}

func (r *Reader) intsBody(n int) []int {
	cap0 := n
	if cap0 > maxInitialElems {
		cap0 = maxInitialElems
	}
	out := make([]int, 0, cap0)
	for len(out) < n && r.err == nil {
		chunk := n - len(out)
		if chunk > scratchSize/8 {
			chunk = scratchSize / 8
		}
		r.Raw(r.scratch[:chunk*8])
		if r.err != nil {
			return nil
		}
		for i := 0; i < chunk; i++ {
			out = append(out, int(int64(binary.LittleEndian.Uint64(r.scratch[i*8:]))))
		}
	}
	return out
}

// Floats reads a length-prefixed float64 slice, rejecting lengths
// above max.
func (r *Reader) Floats(max int) []float64 {
	n, ok := r.sliceLen(max)
	if !ok {
		return nil
	}
	r.alignSkip(int64(n) * 8)
	return r.floatsBody(n)
}

func (r *Reader) floatsBody(n int) []float64 {
	cap0 := n
	if cap0 > maxInitialElems {
		cap0 = maxInitialElems
	}
	out := make([]float64, 0, cap0)
	for len(out) < n && r.err == nil {
		chunk := n - len(out)
		if chunk > scratchSize/8 {
			chunk = scratchSize / 8
		}
		r.Raw(r.scratch[:chunk*8])
		if r.err != nil {
			return nil
		}
		for i := 0; i < chunk; i++ {
			out = append(out, math.Float64frombits(binary.LittleEndian.Uint64(r.scratch[i*8:])))
		}
	}
	return out
}

// Skip discards exactly n bytes (counted and checksummed, so skipped
// sections still participate in the container CRC).
func (r *Reader) Skip(n int64) {
	if r.err != nil || n <= 0 {
		return
	}
	for n > 0 && r.err == nil {
		chunk := n
		if chunk > scratchSize {
			chunk = scratchSize
		}
		r.Raw(r.scratch[:chunk])
		n -= chunk
	}
}
