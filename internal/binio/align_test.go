package binio

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"unsafe"
)

func TestFloat32sInt32sRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{0, 1, 3, 1000, 9001} {
		f := make([]float32, n)
		x := make([]int32, n)
		for i := range f {
			f[i] = float32(rng.NormFloat64())
			x[i] = rng.Int31() - 1<<30
		}
		var buf bytes.Buffer
		w := NewWriter(&buf)
		w.Float32s(f)
		w.Int32s(x)
		if err := w.Err(); err != nil {
			t.Fatal(err)
		}
		r := NewReader(bytes.NewReader(buf.Bytes()))
		gf := r.Float32s(MaxCount)
		gx := r.Int32s(MaxCount)
		if err := r.Err(); err != nil {
			t.Fatal(err)
		}
		if len(gf) != n || len(gx) != n {
			t.Fatalf("n=%d: round-trip lengths %d/%d", n, len(gf), len(gx))
		}
		for i := range gf {
			if gf[i] != f[i] || gx[i] != x[i] {
				t.Fatalf("n=%d: mismatch at %d", n, i)
			}
		}
		if r.Sum32() != w.Sum32() {
			t.Fatalf("n=%d: CRC mismatch", n)
		}
	}
}

// The aligned layout pads large arrays to the boundary; the reader
// must land the payload view on the same offsets, and the views must
// be bit-identical to the copying decode.
func TestAlignedRoundTripAndViews(t *testing.T) {
	const align = 4096
	rng := rand.New(rand.NewSource(2))
	big := make([]float64, AlignThreshold) // 8*threshold bytes, padded
	big32 := make([]float32, 2*AlignThreshold)
	ints := make([]int, AlignThreshold)
	small := []float64{1, 2, 3} // below threshold: never padded
	for i := range big {
		big[i] = rng.NormFloat64()
		ints[i] = rng.Int()
	}
	for i := range big32 {
		big32[i] = float32(rng.NormFloat64())
	}

	const base = 24 // pretend a container header precedes us
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.EnableAlign(align, base)
	w.Float64(math.Pi) // misalign the stream
	w.Floats(small)
	w.Floats(big)
	w.Float32s(big32)
	w.Ints(ints)
	if err := w.Err(); err != nil {
		t.Fatal(err)
	}

	check := func(r *Reader, label string, wantView bool) {
		t.Helper()
		if got := r.Float64(); got != math.Pi {
			t.Fatalf("%s: header %v", label, got)
		}
		if got := r.FloatsView(MaxCount); len(got) != len(small) || got[0] != 1 {
			t.Fatalf("%s: small = %v", label, got)
		}
		gotBig := r.FloatsView(MaxCount)
		got32 := r.Float32sView(MaxCount)
		gotInts := r.IntsView(MaxCount)
		if err := r.Err(); err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		for i := range big {
			if gotBig[i] != big[i] || gotInts[i] != ints[i] {
				t.Fatalf("%s: payload mismatch at %d", label, i)
			}
		}
		for i := range big32 {
			if got32[i] != big32[i] {
				t.Fatalf("%s: f32 payload mismatch at %d", label, i)
			}
		}
		if wantView && hostLittleEndian {
			if uintptr(unsafe.Pointer(&gotBig[0]))%8 != 0 {
				t.Fatalf("%s: view not 8-aligned", label)
			}
		}
	}

	// Stream (copying) reader.
	r := NewReader(bytes.NewReader(buf.Bytes()))
	r.EnableAlign(align, base)
	check(r, "stream", false)
	if r.Sum32() != w.Sum32() {
		t.Fatal("stream: CRC mismatch over aligned layout")
	}

	// Bytes-backed reader over a buffer whose element alignment allows
	// zero-copy: allocate 8-aligned backing and copy in.
	backing := make([]float64, (align+buf.Len())/8+2)
	bb := unsafe.Slice((*byte)(unsafe.Pointer(&backing[0])), len(backing)*8)
	// Place the image so that (absolute offset base+0) corresponds to a
	// position where payloads land 8-aligned in memory: payloads sit at
	// absolute offsets ≡ 0 (mod 4096), so start the image at bb[base].
	copy(bb[align-base:], buf.Bytes())
	br := NewBytesReader(bb[align-base : align-base+buf.Len()])
	br.EnableAlign(align, base)
	check(br, "bytes", true)
	if br.CRCTracked() {
		t.Fatal("bytes reader claims CRC tracking")
	}

	// A truncated image errors, never panics.
	for _, cut := range []int{1, 9, align, buf.Len() - 1} {
		tr := NewBytesReader(bb[align-base : align-base+cut])
		tr.EnableAlign(align, base)
		tr.Float64()
		tr.FloatsView(MaxCount)
		tr.FloatsView(MaxCount)
		tr.Float32sView(MaxCount)
		tr.IntsView(MaxCount)
		if tr.Err() == nil {
			t.Fatalf("truncation at %d: no error", cut)
		}
	}
}

func TestViewStreamEquivalence(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Int32s([]int32{5, -7, 9})
	w.Float32s([]float32{0.5, -1.5})
	r1 := NewReader(bytes.NewReader(buf.Bytes()))
	r2 := NewBytesReader(buf.Bytes())
	a1, b1 := r1.Int32sView(MaxCount), r1.Float32sView(MaxCount)
	a2, b2 := r2.Int32sView(MaxCount), r2.Float32sView(MaxCount)
	if r1.Err() != nil || r2.Err() != nil {
		t.Fatal(r1.Err(), r2.Err())
	}
	for i := range a1 {
		if a1[i] != a2[i] {
			t.Fatal("int32 view mismatch")
		}
	}
	for i := range b1 {
		if b1[i] != b2[i] {
			t.Fatal("float32 view mismatch")
		}
	}
}
