package binio

import (
	"bytes"
	"io"
	"testing"
)

// FuzzReader drives the primitive decoder with arbitrary bytes through
// a fixed read script covering every primitive. The contract: no
// panic, no giant allocation from corrupt length prefixes, errors are
// sticky, and truncation surfaces as io.ErrUnexpectedEOF rather than
// io.EOF.
func FuzzReader(f *testing.F) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Uint32(7)
	w.Int(-42)
	w.Float64(3.5)
	w.Ints([]int{1, 2, 3})
	w.Floats([]float64{0.5, -0.25})
	w.Uint64(999)
	if err := w.Err(); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)-5])
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xFF}, 64)) // maximal length prefixes

	f.Fuzz(func(t *testing.T, data []byte) {
		r := NewReader(bytes.NewReader(data))
		_ = r.Uint32()
		_ = r.Int()
		_ = r.Float64()
		ints := r.Ints(1 << 20)
		floats := r.Floats(1 << 20)
		_ = r.Uint64()
		if err := r.Err(); err != nil {
			// Sticky error: every later read is a no-op zero value.
			if got := r.Uint64(); got != 0 {
				t.Fatalf("read after error returned %d", got)
			}
			if err == io.EOF {
				t.Fatal("truncation reported as io.EOF, want io.ErrUnexpectedEOF")
			}
			return
		}
		// Successful slice reads never exceed the declared cap.
		if len(ints) > 1<<20 || len(floats) > 1<<20 {
			t.Fatalf("slice bounds ignored: %d ints, %d floats", len(ints), len(floats))
		}
	})
}
