package binio

import (
	"encoding/binary"
	"io"
	"math"
	"strconv"
	"unsafe"
)

// Aligned-layout and zero-copy extensions.
//
// An ALIGNED stream differs from the plain layout in exactly one rule:
// any length-prefixed array whose raw payload is at least
// AlignThreshold bytes has zero padding inserted BETWEEN its count
// word and its payload, enough that the payload's absolute file offset
// is a multiple of the recorded alignment. Pad bytes pass through the
// normal write/read path, so counts and the container CRC cover them.
// Both sides derive the pad deterministically from the absolute
// offset, which is why Writer/Reader carry a base offset: section
// codecs run against sub-writers that must know where in the file
// their byte 0 lands.
//
// A bytes-backed Reader (NewBytesReader) parses an in-memory image —
// typically an mmap'd file — and can hand out zero-copy VIEWS of
// array payloads: when the host is little-endian and the payload is
// suitably aligned in memory, the slice aliases the backing buffer
// and costs O(1); otherwise the view methods silently fall back to
// the copying decode, so callers never branch on platform. Bytes mode
// does not maintain a CRC (hashing the whole image would defeat
// O(page-faults) cold start); CRCTracked reports whether the trailing
// container checksum is comparable.

// AlignThreshold is the minimum raw payload size, in bytes, for an
// array to be padded in aligned mode. Small arrays stay packed — only
// the big flat arrays that dominate an index's footprint pay the pad.
const AlignThreshold = 4096

// hostLittleEndian reports whether the host memory layout matches the
// on-disk little-endian format, which is what makes casts valid.
var hostLittleEndian = func() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// NewBytesReader returns a Reader over an in-memory stream image.
// View methods on it are zero-copy where alignment allows. No CRC is
// maintained — see CRCTracked.
func NewBytesReader(b []byte) *Reader {
	return &Reader{buf: b}
}

// CRCTracked reports whether this reader maintained a CRC over the
// consumed bytes; when false, format readers must skip comparing the
// trailing container checksum.
func (r *Reader) CRCTracked() bool { return r.buf == nil }

// EnableAlign switches the writer to the aligned layout: arrays of at
// least AlignThreshold payload bytes pad to an `align`-byte boundary.
// base is the absolute file offset of this writer's byte 0.
func (w *Writer) EnableAlign(align int, base int64) {
	w.align = int64(align)
	w.base = base
}

// EnableAlign mirrors Writer.EnableAlign for the reader side.
func (r *Reader) EnableAlign(align int, base int64) {
	r.align = int64(align)
	r.base = base
}

// padLen returns the pad inserted before a payload of payloadBytes at
// absolute offset abs, or 0 when alignment is off or the array is
// below threshold.
func padLen(align, abs, payloadBytes int64) int64 {
	if align <= 0 || payloadBytes < AlignThreshold {
		return 0
	}
	rem := abs % align
	if rem == 0 {
		return 0
	}
	return align - rem
}

func (w *Writer) alignPad(payloadBytes int64) {
	pad := padLen(w.align, w.base+w.n, payloadBytes)
	for pad > 0 && w.err == nil {
		chunk := pad
		if chunk > scratchSize {
			chunk = scratchSize
		}
		clear(w.scratch[:chunk])
		w.Raw(w.scratch[:chunk])
		pad -= chunk
	}
}

func (r *Reader) alignSkip(payloadBytes int64) {
	r.Skip(padLen(r.align, r.base+r.n, payloadBytes))
}

// Float32s writes a length-prefixed float32 slice (raw IEEE-754 bits,
// little-endian), padding in aligned mode.
func (w *Writer) Float32s(s []float32) {
	w.Uint64(uint64(len(s)))
	w.alignPad(int64(len(s)) * 4)
	for len(s) > 0 && w.err == nil {
		chunk := len(s)
		if chunk > scratchSize/4 {
			chunk = scratchSize / 4
		}
		for i := 0; i < chunk; i++ {
			binary.LittleEndian.PutUint32(w.scratch[i*4:], math.Float32bits(s[i]))
		}
		w.Raw(w.scratch[:chunk*4])
		s = s[chunk:]
	}
}

// Int32s writes a length-prefixed int32 slice, padding in aligned
// mode.
func (w *Writer) Int32s(s []int32) {
	w.Uint64(uint64(len(s)))
	w.alignPad(int64(len(s)) * 4)
	for len(s) > 0 && w.err == nil {
		chunk := len(s)
		if chunk > scratchSize/4 {
			chunk = scratchSize / 4
		}
		for i := 0; i < chunk; i++ {
			binary.LittleEndian.PutUint32(w.scratch[i*4:], uint32(s[i]))
		}
		w.Raw(w.scratch[:chunk*4])
		s = s[chunk:]
	}
}

// Float32s reads a length-prefixed float32 slice, rejecting lengths
// above max.
func (r *Reader) Float32s(max int) []float32 {
	n, ok := r.sliceLen(max)
	if !ok {
		return nil
	}
	r.alignSkip(int64(n) * 4)
	return r.float32sBody(n)
}

func (r *Reader) float32sBody(n int) []float32 {
	cap0 := n
	if cap0 > maxInitialElems {
		cap0 = maxInitialElems
	}
	out := make([]float32, 0, cap0)
	for len(out) < n && r.err == nil {
		chunk := n - len(out)
		if chunk > scratchSize/4 {
			chunk = scratchSize / 4
		}
		r.Raw(r.scratch[:chunk*4])
		if r.err != nil {
			return nil
		}
		for i := 0; i < chunk; i++ {
			out = append(out, math.Float32frombits(binary.LittleEndian.Uint32(r.scratch[i*4:])))
		}
	}
	return out
}

// Int32s reads a length-prefixed int32 slice, rejecting lengths above
// max.
func (r *Reader) Int32s(max int) []int32 {
	n, ok := r.sliceLen(max)
	if !ok {
		return nil
	}
	r.alignSkip(int64(n) * 4)
	return r.int32sBody(n)
}

func (r *Reader) int32sBody(n int) []int32 {
	cap0 := n
	if cap0 > maxInitialElems {
		cap0 = maxInitialElems
	}
	out := make([]int32, 0, cap0)
	for len(out) < n && r.err == nil {
		chunk := n - len(out)
		if chunk > scratchSize/4 {
			chunk = scratchSize / 4
		}
		r.Raw(r.scratch[:chunk*4])
		if r.err != nil {
			return nil
		}
		for i := 0; i < chunk; i++ {
			out = append(out, int32(binary.LittleEndian.Uint32(r.scratch[i*4:])))
		}
	}
	return out
}

// view returns a zero-copy window of n*size bytes when the reader is
// bytes-backed, the host is little-endian, and the current position is
// aligned to elemAlign; ok=false means the caller must take the
// copying path.
func (r *Reader) view(n, size, elemAlign int) (p unsafe.Pointer, ok bool) {
	if r.buf == nil || !hostLittleEndian || n == 0 || r.err != nil {
		return nil, false
	}
	need := int64(n) * int64(size)
	if int64(len(r.buf)-r.pos) < need {
		return nil, false // copying path surfaces the truncation error
	}
	addr := unsafe.Pointer(&r.buf[r.pos])
	if uintptr(addr)%uintptr(elemAlign) != 0 {
		return nil, false
	}
	r.pos += int(need)
	r.n += need
	return addr, true
}

// FloatsView reads a length-prefixed float64 slice, returning a
// zero-copy view of the backing buffer when possible and a fresh
// decoded slice otherwise. Callers must treat the result as read-only
// and must not outlive the backing buffer with it.
func (r *Reader) FloatsView(max int) []float64 {
	n, ok := r.sliceLen(max)
	if !ok {
		return nil
	}
	r.alignSkip(int64(n) * 8)
	if p, ok := r.view(n, 8, 8); ok {
		return unsafe.Slice((*float64)(p), n)
	}
	return r.floatsBody(n)
}

// Float32sView is FloatsView for float32 payloads.
func (r *Reader) Float32sView(max int) []float32 {
	n, ok := r.sliceLen(max)
	if !ok {
		return nil
	}
	r.alignSkip(int64(n) * 4)
	if p, ok := r.view(n, 4, 4); ok {
		return unsafe.Slice((*float32)(p), n)
	}
	return r.float32sBody(n)
}

// Int32sView is FloatsView for int32 payloads.
func (r *Reader) Int32sView(max int) []int32 {
	n, ok := r.sliceLen(max)
	if !ok {
		return nil
	}
	r.alignSkip(int64(n) * 4)
	if p, ok := r.view(n, 4, 4); ok {
		return unsafe.Slice((*int32)(p), n)
	}
	return r.int32sBody(n)
}

// IntsView reads a length-prefixed int slice (int64 on disk),
// zero-copy only on 64-bit little-endian hosts.
func (r *Reader) IntsView(max int) []int {
	n, ok := r.sliceLen(max)
	if !ok {
		return nil
	}
	r.alignSkip(int64(n) * 8)
	if strconv.IntSize == 64 {
		if p, ok := r.view(n, 8, 8); ok {
			return unsafe.Slice((*int)(p), n)
		}
	}
	return r.intsBody(n)
}

// View returns the next n raw bytes: a window of the backing buffer in
// bytes mode, a fresh copy in stream mode. Used by container readers
// to hand whole section payloads to leaf codecs.
func (r *Reader) View(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || n > MaxCount {
		r.Fail(io.ErrUnexpectedEOF)
		return nil
	}
	if r.buf != nil {
		if len(r.buf)-r.pos < n {
			r.err = io.ErrUnexpectedEOF
			return nil
		}
		v := r.buf[r.pos : r.pos+n : r.pos+n]
		r.pos += n
		r.n += int64(n)
		return v
	}
	out := make([]byte, n)
	r.Raw(out)
	if r.err != nil {
		return nil
	}
	return out
}
