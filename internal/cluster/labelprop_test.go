package cluster

import (
	"testing"

	"mogul/internal/sparse"
)

func TestLabelPropagationTwoCliques(t *testing.T) {
	adj := twoCliques(8)
	cl, err := LabelPropagation(adj, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if cl.N < 2 {
		t.Fatalf("found %d clusters, want >= 2", cl.N)
	}
	// Each clique ends up in a single cluster.
	for i := 1; i < 8; i++ {
		if cl.Assign[i] != cl.Assign[0] {
			t.Fatal("first clique split")
		}
		if cl.Assign[8+i] != cl.Assign[8] {
			t.Fatal("second clique split")
		}
	}
	if cl.Assign[0] == cl.Assign[8] {
		t.Fatal("cliques merged")
	}
	if cl.Modularity <= 0 {
		t.Fatalf("modularity %g", cl.Modularity)
	}
}

func TestLabelPropagationEdgeless(t *testing.T) {
	adj, _ := sparse.NewFromCoords(4, 4, nil)
	cl, err := LabelPropagation(adj, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if cl.N != 4 {
		t.Fatalf("edgeless graph: %d clusters", cl.N)
	}
}

func TestLabelPropagationRejectsRectangular(t *testing.T) {
	adj, _ := sparse.NewFromCoords(2, 3, nil)
	if _, err := LabelPropagation(adj, 0, 1); err == nil {
		t.Fatal("rectangular adjacency accepted")
	}
}

func TestLabelPropagationDeterministic(t *testing.T) {
	adj := twoCliques(10)
	a, err := LabelPropagation(adj, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := LabelPropagation(adj, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Assign {
		if a.Assign[i] != b.Assign[i] {
			t.Fatal("non-deterministic labels")
		}
	}
}

func TestLabelPropagationTerminates(t *testing.T) {
	// A bipartite-ish structure that could oscillate under naive
	// simultaneous updates; the sequential sweep with keep-on-tie must
	// terminate within the sweep cap.
	var entries []sparse.Coord
	add := func(a, b int) {
		entries = append(entries, sparse.Coord{Row: a, Col: b, Val: 1})
		entries = append(entries, sparse.Coord{Row: b, Col: a, Val: 1})
	}
	for i := 0; i < 10; i++ {
		for j := 10; j < 20; j++ {
			add(i, j)
		}
	}
	adj, err := sparse.NewFromCoords(20, 20, entries)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := LabelPropagation(adj, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if cl.N < 1 || cl.N > 20 {
		t.Fatalf("weird cluster count %d", cl.N)
	}
}
