// Package cluster implements modularity-based graph clustering.
//
// Algorithm 1 of the paper partitions the k-NN graph with "the
// state-of-the-art clustering approach by Shiokawa et al. [17]", an
// incremental-aggregation modularity optimizer whose cost is linear in
// the number of edges and whose cluster count is chosen automatically.
// That code was never released, so this package provides a
// Louvain-style optimizer with the same contract: linear-time local
// moves, multi-level aggregation, automatic cluster count, maximized
// within-cluster edge mass. The permutation step only needs those
// properties (it wants few cross-cluster edges), so the substitution
// preserves the behaviour the paper relies on.
package cluster

import (
	"fmt"
	"sort"

	"mogul/internal/sparse"
)

// Clustering is a partition of graph nodes.
type Clustering struct {
	// Assign maps each node to a cluster id in [0, N).
	Assign []int
	// N is the number of clusters.
	N int
	// Modularity is the weighted modularity of the partition.
	Modularity float64
	// Levels is the number of aggregation levels the optimizer used.
	Levels int
}

// Sizes returns the number of nodes in each cluster.
func (c *Clustering) Sizes() []int {
	sizes := make([]int, c.N)
	for _, a := range c.Assign {
		sizes[a]++
	}
	return sizes
}

// Members returns the node lists per cluster, each in ascending order.
func (c *Clustering) Members() [][]int {
	members := make([][]int, c.N)
	for node, a := range c.Assign {
		members[a] = append(members[a], node)
	}
	return members
}

// Config controls the optimizer.
type Config struct {
	// MaxLevels bounds aggregation depth (default 16).
	MaxLevels int
	// MaxSweeps bounds local-move sweeps per level (default 32).
	MaxSweeps int
	// MinGain is the modularity improvement below which a sweep stops
	// (default 1e-7).
	MinGain float64
	// Resolution scales the null-model term; 1 is classic modularity.
	Resolution float64
}

func (cfg *Config) withDefaults() Config {
	out := *cfg
	if out.MaxLevels <= 0 {
		out.MaxLevels = 16
	}
	if out.MaxSweeps <= 0 {
		out.MaxSweeps = 32
	}
	if out.MinGain <= 0 {
		out.MinGain = 1e-7
	}
	if out.Resolution <= 0 {
		out.Resolution = 1
	}
	return out
}

// Louvain clusters an undirected weighted graph given as a symmetric
// adjacency matrix with non-negative weights and zero diagonal
// (self-loops are tolerated and treated as internal weight). Node
// visiting order is fixed, so results are deterministic.
func Louvain(adj *sparse.CSR, cfg Config) (*Clustering, error) {
	if adj.Rows != adj.Cols {
		return nil, fmt.Errorf("cluster: adjacency must be square, got %dx%d", adj.Rows, adj.Cols)
	}
	c := cfg.withDefaults()
	n := adj.Rows
	if n == 0 {
		return &Clustering{Assign: nil, N: 0}, nil
	}

	// assignStack[level] maps super-nodes of that level to their
	// (compacted) community at the next level.
	current := adj
	assignStack := make([][]int, 0, c.MaxLevels)
	levels := 0
	for ; levels < c.MaxLevels; levels++ {
		assign, improved := localMove(current, c)
		compacted, nComm := compactLabels(assign)
		assignStack = append(assignStack, compacted)
		if !improved || nComm == current.Rows {
			break
		}
		current = aggregate(current, compacted, nComm)
	}

	// Project the per-level assignments down to original nodes.
	final := make([]int, n)
	for i := range final {
		final[i] = i
	}
	for _, assign := range assignStack {
		for i := range final {
			final[i] = assign[final[i]]
		}
	}
	compact, nClusters := compactLabels(final)
	q := Modularity(adj, compact, c.Resolution)
	return &Clustering{Assign: compact, N: nClusters, Modularity: q, Levels: levels + 1}, nil
}

// localMove runs Louvain phase one: greedy node moves until no move
// improves modularity. It returns the community assignment (labels may
// be sparse) and whether any node moved at all.
func localMove(adj *sparse.CSR, cfg Config) (assign []int, improved bool) {
	n := adj.Rows
	assign = make([]int, n)
	degree := make([]float64, n)   // weighted degree incl. self loops counted twice
	selfLoop := make([]float64, n) // weight of the node's self loop
	var total2m float64            // 2m: total weight counting both directions
	for i := 0; i < n; i++ {
		cols, vals := adj.Row(i)
		for k, j := range cols {
			w := vals[k]
			if j == i {
				selfLoop[i] += w
			}
			degree[i] += w
			total2m += w
		}
		assign[i] = i
	}
	if total2m == 0 {
		// Edgeless graph: every node is its own community.
		return assign, false
	}

	// commTot[c] = sum of degrees of nodes in community c.
	commTot := append([]float64(nil), degree...)
	// Scratch: weight from the moving node to each neighbour community,
	// plus the candidate list in ascending community id. Iterating the
	// map directly would visit candidates in randomized order, and the
	// near-tie break below is order sensitive — the clustering (and
	// with it every downstream structure) must be a pure function of
	// the input graph, or rebuild-equivalence guarantees (Compact
	// versus fresh Build) break.
	neighWeight := make(map[int]float64, 16)
	candidates := make([]int, 0, 16)

	for sweep := 0; sweep < cfg.MaxSweeps; sweep++ {
		moved := 0
		for i := 0; i < n; i++ {
			ci := assign[i]
			for k := range neighWeight {
				delete(neighWeight, k)
			}
			candidates = candidates[:0]
			cols, vals := adj.Row(i)
			for k, j := range cols {
				if j == i {
					continue
				}
				c := assign[j]
				if _, ok := neighWeight[c]; !ok {
					candidates = append(candidates, c)
				}
				neighWeight[c] += vals[k]
			}
			sort.Ints(candidates)
			// Remove i from its community.
			commTot[ci] -= degree[i]
			// Gain of joining community c:
			//   w(i->c) - resolution * degree_i * commTot[c] / 2m
			best, bestGain := ci, neighWeight[ci]-cfg.Resolution*degree[i]*commTot[ci]/total2m
			for _, cand := range candidates {
				if cand == ci {
					continue
				}
				gain := neighWeight[cand] - cfg.Resolution*degree[i]*commTot[cand]/total2m
				if gain > bestGain+cfg.MinGain || (gain > bestGain-cfg.MinGain && cand < best && gain >= bestGain) {
					best, bestGain = cand, gain
				}
			}
			commTot[best] += degree[i]
			if best != ci {
				assign[i] = best
				moved++
				improved = true
			}
		}
		if moved == 0 {
			break
		}
	}
	return assign, improved
}

// aggregate builds the community super-graph from compacted labels:
// one node per community, edge weights summed, internal weight
// becoming self loops.
func aggregate(adj *sparse.CSR, compact []int, nComm int) *sparse.CSR {
	entries := make([]sparse.Coord, 0, adj.NNZ())
	for i := 0; i < adj.Rows; i++ {
		cols, vals := adj.Row(i)
		ci := compact[i]
		for k, j := range cols {
			entries = append(entries, sparse.Coord{Row: ci, Col: compact[j], Val: vals[k]})
		}
	}
	m, err := sparse.NewFromCoords(nComm, nComm, entries)
	if err != nil {
		// Entries are produced from valid labels; failure is a bug.
		panic("cluster: aggregate produced invalid coordinates: " + err.Error())
	}
	return m
}

// compactLabels renumbers arbitrary labels into [0, n) preserving first
// appearance order, which keeps results deterministic.
func compactLabels(assign []int) ([]int, int) {
	remap := make(map[int]int, len(assign))
	out := make([]int, len(assign))
	next := 0
	for i, a := range assign {
		id, ok := remap[a]
		if !ok {
			id = next
			remap[a] = id
			next++
		}
		out[i] = id
	}
	return out, next
}

// Modularity computes the weighted modularity of a partition:
// Q = sum_c (in_c/2m - resolution*(tot_c/2m)^2), with in_c twice the
// internal weight of community c.
func Modularity(adj *sparse.CSR, assign []int, resolution float64) float64 {
	if resolution <= 0 {
		resolution = 1
	}
	nComm := 0
	for _, a := range assign {
		if a+1 > nComm {
			nComm = a + 1
		}
	}
	in := make([]float64, nComm)
	tot := make([]float64, nComm)
	var total2m float64
	for i := 0; i < adj.Rows; i++ {
		cols, vals := adj.Row(i)
		for k, j := range cols {
			w := vals[k]
			total2m += w
			tot[assign[i]] += w
			if assign[i] == assign[j] {
				in[assign[i]] += w
			}
		}
	}
	if total2m == 0 {
		return 0
	}
	var q float64
	for c := 0; c < nComm; c++ {
		q += in[c]/total2m - resolution*(tot[c]/total2m)*(tot[c]/total2m)
	}
	return q
}
