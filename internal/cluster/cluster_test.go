package cluster

import (
	"math/rand"
	"testing"
	"testing/quick"

	"mogul/internal/sparse"
)

// twoCliques builds two size-m cliques joined by a single bridge edge.
func twoCliques(m int) *sparse.CSR {
	var entries []sparse.Coord
	add := func(a, b int) {
		entries = append(entries, sparse.Coord{Row: a, Col: b, Val: 1})
		entries = append(entries, sparse.Coord{Row: b, Col: a, Val: 1})
	}
	for i := 0; i < m; i++ {
		for j := i + 1; j < m; j++ {
			add(i, j)
			add(m+i, m+j)
		}
	}
	add(0, m)
	adj, err := sparse.NewFromCoords(2*m, 2*m, entries)
	if err != nil {
		panic(err)
	}
	return adj
}

func TestLouvainTwoCliques(t *testing.T) {
	adj := twoCliques(8)
	cl, err := Louvain(adj, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if cl.N != 2 {
		t.Fatalf("found %d clusters, want 2 (sizes %v)", cl.N, cl.Sizes())
	}
	for i := 1; i < 8; i++ {
		if cl.Assign[i] != cl.Assign[0] {
			t.Fatal("first clique split")
		}
		if cl.Assign[8+i] != cl.Assign[8] {
			t.Fatal("second clique split")
		}
	}
	if cl.Assign[0] == cl.Assign[8] {
		t.Fatal("cliques merged")
	}
	if cl.Modularity < 0.3 {
		t.Fatalf("modularity %g unexpectedly low", cl.Modularity)
	}
}

func TestLouvainRingOfCliques(t *testing.T) {
	// Classic benchmark: k cliques connected in a ring; Louvain must
	// find roughly one cluster per clique.
	const cliques, size = 6, 6
	var entries []sparse.Coord
	add := func(a, b int) {
		entries = append(entries, sparse.Coord{Row: a, Col: b, Val: 1})
		entries = append(entries, sparse.Coord{Row: b, Col: a, Val: 1})
	}
	for c := 0; c < cliques; c++ {
		base := c * size
		for i := 0; i < size; i++ {
			for j := i + 1; j < size; j++ {
				add(base+i, base+j)
			}
		}
		next := ((c + 1) % cliques) * size
		add(base, next+1)
	}
	adj, err := sparse.NewFromCoords(cliques*size, cliques*size, entries)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := Louvain(adj, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if cl.N < cliques/2 || cl.N > cliques {
		t.Fatalf("found %d clusters for %d cliques", cl.N, cliques)
	}
	// Every clique stays whole.
	for c := 0; c < cliques; c++ {
		base := c * size
		for i := 1; i < size; i++ {
			if cl.Assign[base+i] != cl.Assign[base] {
				t.Fatalf("clique %d split", c)
			}
		}
	}
}

func TestLouvainEdgeless(t *testing.T) {
	adj, _ := sparse.NewFromCoords(5, 5, nil)
	cl, err := Louvain(adj, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if cl.N != 5 {
		t.Fatalf("edgeless graph: %d clusters, want 5 singletons", cl.N)
	}
	if cl.Modularity != 0 {
		t.Fatalf("edgeless modularity = %g", cl.Modularity)
	}
}

func TestLouvainEmpty(t *testing.T) {
	adj, _ := sparse.NewFromCoords(0, 0, nil)
	cl, err := Louvain(adj, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if cl.N != 0 {
		t.Fatalf("empty graph: %d clusters", cl.N)
	}
}

func TestLouvainRejectsRectangular(t *testing.T) {
	adj, _ := sparse.NewFromCoords(2, 3, nil)
	if _, err := Louvain(adj, Config{}); err == nil {
		t.Fatal("rectangular adjacency accepted")
	}
}

func TestLouvainDeterministic(t *testing.T) {
	adj := twoCliques(10)
	a, err := Louvain(adj, Config{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Louvain(adj, Config{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Assign {
		if a.Assign[i] != b.Assign[i] {
			t.Fatal("non-deterministic clustering")
		}
	}
}

func TestClusteringAccessors(t *testing.T) {
	cl := &Clustering{Assign: []int{0, 1, 0, 1, 1}, N: 2}
	sizes := cl.Sizes()
	if sizes[0] != 2 || sizes[1] != 3 {
		t.Fatalf("Sizes = %v", sizes)
	}
	members := cl.Members()
	if len(members[0]) != 2 || members[0][0] != 0 || members[0][1] != 2 {
		t.Fatalf("Members = %v", members)
	}
}

func TestModularityBounds(t *testing.T) {
	// Property: modularity of any labelling lies in [-1, 1].
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(20)
		var entries []sparse.Coord
		for e := 0; e < n*2; e++ {
			i, j := rng.Intn(n), rng.Intn(n)
			if i == j {
				continue
			}
			entries = append(entries, sparse.Coord{Row: i, Col: j, Val: 1})
			entries = append(entries, sparse.Coord{Row: j, Col: i, Val: 1})
		}
		adj, err := sparse.NewFromCoords(n, n, entries)
		if err != nil {
			return false
		}
		assign := make([]int, n)
		for i := range assign {
			assign[i] = rng.Intn(3)
		}
		q := Modularity(adj, assign, 1)
		return q >= -1-1e-9 && q <= 1+1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestLouvainNeverWorseThanSingletons(t *testing.T) {
	// The optimizer starts from singletons, so its final modularity
	// cannot be below the singleton partition's.
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(25)
		var entries []sparse.Coord
		for e := 0; e < n*3; e++ {
			i, j := rng.Intn(n), rng.Intn(n)
			if i == j {
				continue
			}
			w := rng.Float64()
			entries = append(entries, sparse.Coord{Row: i, Col: j, Val: w})
			entries = append(entries, sparse.Coord{Row: j, Col: i, Val: w})
		}
		adj, err := sparse.NewFromCoords(n, n, entries)
		if err != nil {
			return false
		}
		cl, err := Louvain(adj, Config{})
		if err != nil {
			return false
		}
		singletons := make([]int, n)
		for i := range singletons {
			singletons[i] = i
		}
		return cl.Modularity >= Modularity(adj, singletons, 1)-1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
