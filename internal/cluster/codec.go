package cluster

import (
	"fmt"
	"io"

	"mogul/internal/binio"
)

// Binary codec for clusterings — a leaf record of the Mogul index file
// format (docs/FORMAT.md). The index container stores the partition in
// permuted node order; this codec only guarantees that Assign is a
// valid map into [0, N).

// WriteTo writes the clustering as: N, Levels (int64), Modularity
// (float64), then Assign as a length-prefixed slice.
func (c *Clustering) WriteTo(w io.Writer) (int64, error) {
	bw := binio.NewWriter(w)
	bw.Int(c.N)
	bw.Int(c.Levels)
	bw.Float64(c.Modularity)
	bw.Ints(c.Assign)
	return bw.Count(), bw.Err()
}

// ReadClustering reads a clustering written by WriteTo and validates
// that every assignment lies in [0, N).
func ReadClustering(r io.Reader) (*Clustering, error) {
	br := binio.NewReader(r)
	n := br.Int()
	levels := br.Int()
	mod := br.Float64()
	if err := br.Err(); err != nil {
		return nil, fmt.Errorf("cluster: reading clustering header: %w", err)
	}
	if n < 0 || n > binio.MaxCount || levels < 0 {
		return nil, fmt.Errorf("cluster: corrupt clustering header (N=%d, levels=%d)", n, levels)
	}
	assign := br.Ints(binio.MaxCount)
	if err := br.Err(); err != nil {
		return nil, fmt.Errorf("cluster: reading assignments: %w", err)
	}
	for node, a := range assign {
		if a < 0 || a >= n {
			return nil, fmt.Errorf("cluster: node %d assigned to cluster %d outside [0,%d)", node, a, n)
		}
	}
	return &Clustering{Assign: assign, N: n, Modularity: mod, Levels: levels}, nil
}
