package cluster

import (
	"bytes"
	"reflect"
	"testing"
)

func TestClusteringCodecRoundTrip(t *testing.T) {
	c := &Clustering{
		Assign:     []int{0, 0, 1, 2, 1, 2, 2},
		N:          3,
		Modularity: 0.4375,
		Levels:     2,
	}
	var buf bytes.Buffer
	n, err := c.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Fatalf("WriteTo reported %d bytes, wrote %d", n, buf.Len())
	}
	got, err := ReadClustering(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, c) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, c)
	}
}

func TestReadClusteringRejectsCorruption(t *testing.T) {
	c := &Clustering{Assign: []int{0, 1, 1}, N: 2}
	var buf bytes.Buffer
	if _, err := c.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	for n := 0; n < buf.Len(); n++ {
		if _, err := ReadClustering(bytes.NewReader(buf.Bytes()[:n])); err == nil {
			t.Fatalf("truncation to %d bytes accepted", n)
		}
	}
	// Assignment outside [0, N).
	bad := &Clustering{Assign: []int{0, 5}, N: 2}
	var b2 bytes.Buffer
	if _, err := bad.WriteTo(&b2); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadClustering(&b2); err == nil {
		t.Fatal("out-of-range assignment accepted")
	}
}
