package cluster

import (
	"fmt"
	"math/rand"
	"sort"

	"mogul/internal/sparse"
)

// LabelPropagation clusters an undirected weighted graph with the
// classic label-propagation algorithm (Raghavan et al.): every node
// starts with its own label and repeatedly adopts the label carrying
// the most edge weight among its neighbours, until labels stabilize.
//
// It is the other standard linear-time community detector besides
// modularity optimization; the reproduction offers it as an ablation
// for Algorithm 1's clustering step — the permutation only needs
// "few cross-cluster edges", so any detector with that property can
// power Mogul, and comparing the two shows how sensitive the system is
// to the exact choice (the paper's [17] is modularity-based).
//
// Ties between equally weighted labels are broken pseudo-randomly from
// the seed (the standard remedy for label propagation's
// epidemic-merge pathology on unweighted graphs); a fixed seed makes
// runs deterministic. Nodes are visited in a fixed order and the sweep
// count is capped, so termination is guaranteed.
func LabelPropagation(adj *sparse.CSR, maxSweeps int, seed int64) (*Clustering, error) {
	if adj.Rows != adj.Cols {
		return nil, fmt.Errorf("cluster: adjacency must be square, got %dx%d", adj.Rows, adj.Cols)
	}
	if maxSweeps <= 0 {
		maxSweeps = 32
	}
	n := adj.Rows
	rng := rand.New(rand.NewSource(seed))
	labels := make([]int, n)
	for i := range labels {
		labels[i] = i
	}
	weight := make(map[int]float64, 16)
	candidates := make([]int, 0, 16)
	for sweep := 0; sweep < maxSweeps; sweep++ {
		changed := 0
		for i := 0; i < n; i++ {
			cols, vals := adj.Row(i)
			if len(cols) == 0 {
				continue
			}
			for k := range weight {
				delete(weight, k)
			}
			for t, j := range cols {
				if j == i {
					continue
				}
				weight[labels[j]] += vals[t]
			}
			if len(weight) == 0 {
				continue
			}
			// Find the maximum weight, then collect all labels tied at
			// it (sorted for determinism) and pick one at random.
			// Keeping the current label when it ties the maximum
			// prevents oscillation.
			var maxW float64
			for _, w := range weight {
				if w > maxW {
					maxW = w
				}
			}
			if weight[labels[i]] >= maxW {
				continue // current label already maximal
			}
			candidates = candidates[:0]
			for l, w := range weight {
				if w == maxW {
					candidates = append(candidates, l)
				}
			}
			sort.Ints(candidates)
			next := candidates[rng.Intn(len(candidates))]
			if next != labels[i] {
				labels[i] = next
				changed++
			}
		}
		if changed == 0 {
			break
		}
	}
	compact, nClusters := compactLabels(labels)
	return &Clustering{
		Assign:     compact,
		N:          nClusters,
		Modularity: Modularity(adj, compact, 1),
		Levels:     1,
	}, nil
}
