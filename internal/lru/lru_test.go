package lru

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

// refLRU is the obviously-correct single-lock reference: a recency
// slice (front = most recent) plus a value map, evicting from the back
// over budget. The property test drives Cache (1 shard, so shard-local
// LRU order is global LRU order) and refLRU through the same random op
// stream and demands identical observable behaviour at every step.
type refLRU struct {
	budget int64
	bytes  int64
	order  []string
	vals   map[string]int
	sizes  map[string]int64
}

func newRef(budget int64) *refLRU {
	return &refLRU{budget: budget, vals: map[string]int{}, sizes: map[string]int64{}}
}

func (r *refLRU) touch(key string) {
	for i, k := range r.order {
		if k == key {
			r.order = append(r.order[:i], r.order[i+1:]...)
			break
		}
	}
	r.order = append([]string{key}, r.order...)
}

func (r *refLRU) get(key string) (int, bool) {
	v, ok := r.vals[key]
	if ok {
		r.touch(key)
	}
	return v, ok
}

func (r *refLRU) set(key string, val int, size int64) bool {
	if size < 0 {
		size = 0
	}
	if size > r.budget {
		r.del(key)
		return false
	}
	if old, ok := r.sizes[key]; ok {
		r.bytes += size - old
	} else {
		r.bytes += size
	}
	r.vals[key] = val
	r.sizes[key] = size
	r.touch(key)
	for r.bytes > r.budget {
		victim := r.order[len(r.order)-1]
		r.del(victim)
	}
	return true
}

func (r *refLRU) del(key string) bool {
	if _, ok := r.vals[key]; !ok {
		return false
	}
	r.bytes -= r.sizes[key]
	delete(r.vals, key)
	delete(r.sizes, key)
	for i, k := range r.order {
		if k == key {
			r.order = append(r.order[:i], r.order[i+1:]...)
			break
		}
	}
	return true
}

// TestPropertyVsReference: 1-shard Cache == reference LRU, op for op,
// over thousands of random operations and several budgets.
func TestPropertyVsReference(t *testing.T) {
	for _, budget := range []int64{1, 7, 64, 1000} {
		t.Run(fmt.Sprintf("budget=%d", budget), func(t *testing.T) {
			rng := rand.New(rand.NewSource(budget * 31))
			c := New[string, int](budget, 1)
			ref := newRef(c.shards[0].budget)
			keys := make([]string, 12)
			for i := range keys {
				keys[i] = fmt.Sprintf("k%02d", i)
			}
			for step := 0; step < 5000; step++ {
				key := keys[rng.Intn(len(keys))]
				switch op := rng.Intn(10); {
				case op < 4: // Get
					gv, gok := c.Get(key)
					wv, wok := ref.get(key)
					if gok != wok || (gok && gv != wv) {
						t.Fatalf("step %d: Get(%q) = %d,%v, want %d,%v", step, key, gv, gok, wv, wok)
					}
				case op < 8: // Set
					size := int64(rng.Intn(int(budget) + 2))
					val := rng.Int()
					got := c.Set(key, val, size)
					want := ref.set(key, val, size)
					if got != want {
						t.Fatalf("step %d: Set(%q, size %d) resident=%v, want %v", step, key, size, got, want)
					}
				case op < 9: // Delete
					if got, want := c.Delete(key), ref.del(key); got != want {
						t.Fatalf("step %d: Delete(%q) = %v, want %v", step, key, got, want)
					}
				default: // occasional Purge
					if rng.Intn(50) == 0 {
						c.Purge()
						*ref = *newRef(ref.budget)
					}
				}
				if c.Len() != len(ref.vals) {
					t.Fatalf("step %d: Len %d, want %d", step, c.Len(), len(ref.vals))
				}
				if c.Bytes() != ref.bytes {
					t.Fatalf("step %d: Bytes %d, want %d", step, c.Bytes(), ref.bytes)
				}
				// Full residency agreement, not just the touched key.
				for _, k := range keys {
					_, wok := ref.vals[k]
					if _, gok := peek(c, k); gok != wok {
						t.Fatalf("step %d: residency of %q = %v, want %v", step, k, gok, wok)
					}
				}
			}
		})
	}
}

// peek checks residency without perturbing recency order or counters.
func peek(c *Cache[string, int], key string) (int, bool) {
	sh := c.shardOf(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	e, ok := sh.entries[key]
	if !ok {
		return 0, false
	}
	return e.val, true
}

// TestShardedInvariants: with many shards, per-shard budgets hold, a
// working set within every shard budget never evicts, and Get always
// returns the last Set value.
func TestShardedInvariants(t *testing.T) {
	const maxBytes = 1 << 14
	c := New[int, int](maxBytes, 8)
	perShard := c.shards[0].budget

	// Small working set: every entry 8 bytes, far under any budget.
	last := map[int]int{}
	for i := 0; i < 64; i++ {
		c.Set(i, i*3, 8)
		last[i] = i * 3
	}
	for k, want := range last {
		if v, ok := c.Get(k); !ok || v != want {
			t.Fatalf("Get(%d) = %d,%v, want %d,true", k, v, ok, want)
		}
	}
	if st := c.Stats(); st.Evictions != 0 || st.Entries != 64 || st.Bytes != 64*8 {
		t.Fatalf("in-budget working set perturbed: %+v", st)
	}

	// Overflow: shove in far more than fits, then check every shard is
	// within budget and the accounting matches a full recount.
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 20000; i++ {
		c.Set(rng.Intn(4096), i, int64(1+rng.Intn(256)))
	}
	var total int64
	entries := 0
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		if sh.bytes > sh.budget {
			t.Fatalf("shard %d holds %d bytes over budget %d", i, sh.bytes, sh.budget)
		}
		var recount int64
		n := 0
		for e := sh.head; e != nil; e = e.next {
			recount += e.size
			n++
		}
		if recount != sh.bytes || n != len(sh.entries) {
			t.Fatalf("shard %d accounting drifted: list %d bytes/%d entries, shard says %d/%d",
				i, recount, n, sh.bytes, len(sh.entries))
		}
		total += sh.bytes
		entries += n
		sh.mu.Unlock()
	}
	if total != c.Bytes() || entries != c.Len() {
		t.Fatalf("global accounting drifted: %d/%d vs %d/%d", total, entries, c.Bytes(), c.Len())
	}
	if c.Bytes() > maxBytes {
		t.Fatalf("cache holds %d bytes over the %d budget", c.Bytes(), maxBytes)
	}

	// Oversized entries are refused without nuking the shard.
	before := c.Len()
	if c.Set(1, 1, perShard+1) {
		t.Fatal("entry above the shard budget was admitted")
	}
	if got := c.Len(); got < before-1 {
		t.Fatalf("oversized Set evicted the shard: %d -> %d entries", before, got)
	}
}

// TestConcurrent hammers the cache from many goroutines (meaningful
// under -race) and then verifies the accounting survived.
func TestConcurrent(t *testing.T) {
	c := New[int, int](1<<16, 16)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 5000; i++ {
				k := rng.Intn(512)
				switch rng.Intn(4) {
				case 0:
					c.Get(k)
				case 1:
					c.Delete(k)
				default:
					c.Set(k, i, int64(rng.Intn(128)))
				}
			}
		}(int64(w))
	}
	wg.Wait()
	var total int64
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		var recount int64
		n := 0
		for e := sh.head; e != nil; e = e.next {
			recount += e.size
			n++
		}
		if recount != sh.bytes || n != len(sh.entries) {
			t.Fatalf("shard %d accounting drifted after concurrent traffic", i)
		}
		if sh.bytes > sh.budget {
			t.Fatalf("shard %d over budget after concurrent traffic", i)
		}
		total += recount
		sh.mu.Unlock()
	}
	if st := c.Stats(); st.Bytes != total {
		t.Fatalf("Stats bytes %d, recount %d", st.Bytes, total)
	}
}

func TestStatsCounters(t *testing.T) {
	c := New[string, string](1<<10, 2)
	c.Set("a", "x", 4)
	c.Get("a")
	c.Get("a")
	c.Get("missing")
	st := c.Stats()
	if st.Hits != 2 || st.Misses != 1 {
		t.Fatalf("hits/misses = %d/%d, want 2/1", st.Hits, st.Misses)
	}
	if st.Entries != 1 || st.Bytes != 4 {
		t.Fatalf("entries/bytes = %d/%d, want 1/4", st.Entries, st.Bytes)
	}
}
