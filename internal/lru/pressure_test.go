package lru

// Byte-pressure races: concurrent writers slamming a small cache with
// a mix of normal and oversized entries, plus readers and deleters.
// The invariants that must hold at every quiescent point (and that
// -race must bless along the way):
//
//   - resident bytes never exceed the configured budget,
//   - an entry larger than its shard's budget is NEVER resident —
//     including when it arrives as a replacement for a smaller
//     resident value (the replace path must evict the old value, not
//     update it in place and blow the budget),
//   - eviction under pressure converges (no livelock, no negative
//     byte accounting).

import (
	"fmt"
	"sync"
	"testing"
)

// TestOversizedReplaceEvicts: replacing a resident small value with
// an oversized one removes the key entirely instead of growing the
// shard past its budget.
func TestOversizedReplaceEvicts(t *testing.T) {
	c := New[string, string](64, 1) // one shard, 64-byte budget
	if !c.Set("k", "small", 8) {
		t.Fatal("small entry rejected")
	}
	if c.Set("k", "huge", 65) {
		t.Fatal("oversized replacement admitted")
	}
	if _, ok := c.Get("k"); ok {
		t.Fatal("key still resident after oversized replacement")
	}
	if got := c.Bytes(); got != 0 {
		t.Fatalf("bytes %d after oversized replacement, want 0", got)
	}
}

// TestByteBudgetUnderConcurrentPressure: writers race normal entries,
// oversized entries, replacements and deletes against readers on a
// deliberately tiny budget, then every invariant is checked.
func TestByteBudgetUnderConcurrentPressure(t *testing.T) {
	const (
		shards   = 4
		budget   = int64(shards * 128) // 128 bytes per shard
		writers  = 8
		rounds   = 300
		keySpace = 32
	)
	c := New[string, string](budget, shards)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				key := fmt.Sprintf("k%d", (w*rounds+i)%keySpace)
				switch i % 5 {
				case 0, 1: // normal entry
					c.Set(key, "v", 32)
				case 2: // oversized: must never become resident
					if c.Set(key, "huge", 129) {
						t.Errorf("oversized Set(%s) reported resident", key)
						return
					}
				case 3:
					c.Get(key)
				case 4:
					c.Delete(key)
				}
			}
		}(w)
	}
	wg.Wait()
	if got := c.Bytes(); got > budget {
		t.Fatalf("resident bytes %d exceed budget %d", got, budget)
	}
	if got := c.Bytes(); got < 0 {
		t.Fatalf("negative byte accounting: %d", got)
	}
	// Whatever survived must be readable and consistently counted.
	st := c.Stats()
	if st.Bytes != c.Bytes() || st.Entries != c.Len() {
		t.Fatalf("stats disagree with accessors: %+v vs bytes=%d len=%d", st, c.Bytes(), c.Len())
	}
	// The cache must still work after the storm.
	if !c.Set("fresh", "v", 16) {
		t.Fatal("cache wedged after pressure storm")
	}
	if v, ok := c.Get("fresh"); !ok || v != "v" {
		t.Fatal("fresh entry unreadable after pressure storm")
	}
}

// TestEvictionConvergesAtExactBudget: entries that exactly fill the
// budget are admitted and pressure beyond evicts precisely enough —
// the boundary where an off-by-one in the eviction loop would either
// livelock or under-evict.
func TestEvictionConvergesAtExactBudget(t *testing.T) {
	c := New[string, string](128, 1)
	if !c.Set("a", "v", 128) {
		t.Fatal("entry at exactly the budget rejected")
	}
	if got := c.Bytes(); got != 128 {
		t.Fatalf("bytes %d, want 128", got)
	}
	// A second full-budget entry must evict the first, not coexist.
	if !c.Set("b", "v", 128) {
		t.Fatal("second full-budget entry rejected")
	}
	if _, ok := c.Get("a"); ok {
		t.Fatal("evicted entry still resident")
	}
	if got := c.Bytes(); got != 128 {
		t.Fatalf("bytes %d after turnover, want 128", got)
	}
	if c.Stats().Evictions == 0 {
		t.Fatal("eviction not counted")
	}
}
