// Package lru provides a concurrency-friendly, byte-budgeted LRU
// cache: the key space is split across independently locked shards
// (hash of the key picks the shard), so readers and writers on
// different shards never contend, and each shard evicts its own
// least-recently-used entries once its slice of the global byte budget
// overflows. Entry sizes are caller-provided — the cache has no way to
// know how much a generic value really weighs — which makes the
// accounting exact for the caller's definition of "bytes".
//
// The package exists to back the serving layer's query-result cache
// (package serve), but is deliberately generic: any comparable key,
// any value.
package lru

import (
	"hash/maphash"
	"sync"
	"sync/atomic"
)

// Cache is a sharded-lock LRU cache with byte-size accounting. The
// zero value is not usable; construct with New. All methods are safe
// for concurrent use.
type Cache[K comparable, V any] struct {
	shards []shard[K, V]
	// mask selects a shard from a key hash; len(shards) is a power of
	// two.
	mask uint64
	seed maphash.Seed

	hits      atomic.Int64
	misses    atomic.Int64
	evictions atomic.Int64
}

// shard is one independently locked slice of the key space: a map for
// lookup plus an intrusive doubly-linked list in recency order (head =
// most recent). Each shard owns budget bytes of the global budget and
// evicts from its own tail only — LRU order is per shard, which is the
// standard price of sharding the lock.
type shard[K comparable, V any] struct {
	mu      sync.Mutex
	budget  int64
	bytes   int64
	entries map[K]*entry[K, V]
	// head/tail are sentinel-free list ends; nil when empty.
	head, tail *entry[K, V]

	// Pad to a cache line so neighbouring shards' locks do not falsely
	// share.
	_ [24]byte
}

type entry[K comparable, V any] struct {
	key        K
	val        V
	size       int64
	prev, next *entry[K, V]
}

// Stats is a point-in-time snapshot of cache effectiveness counters.
type Stats struct {
	// Hits and Misses count Get outcomes; Evictions counts entries
	// removed to fit the byte budget (explicit Delete/Purge not
	// included).
	Hits, Misses, Evictions int64
	// Entries and Bytes describe the current resident set.
	Entries int
	Bytes   int64
}

// New returns a cache spreading maxBytes across the given number of
// lock shards. shards is clamped to [1, 512] and rounded up to a power
// of two; maxBytes < 1 is clamped to 1 (a cache that can hold nothing
// is still well-defined: every Set evicts itself). Each shard's budget
// is maxBytes/shards, so a single entry larger than that is
// uncacheable by design — size the budget for the working set, not for
// one giant entry.
func New[K comparable, V any](maxBytes int64, shards int) *Cache[K, V] {
	if maxBytes < 1 {
		maxBytes = 1
	}
	if shards < 1 {
		shards = 1
	}
	if shards > 512 {
		shards = 512
	}
	n := 1
	for n < shards {
		n <<= 1
	}
	per := maxBytes / int64(n)
	if per < 1 {
		per = 1
	}
	c := &Cache[K, V]{
		shards: make([]shard[K, V], n),
		mask:   uint64(n - 1),
		seed:   maphash.MakeSeed(),
	}
	for i := range c.shards {
		c.shards[i].budget = per
		c.shards[i].entries = make(map[K]*entry[K, V])
	}
	return c
}

// shardOf hashes the key to its owning shard.
func (c *Cache[K, V]) shardOf(key K) *shard[K, V] {
	return &c.shards[maphash.Comparable(c.seed, key)&c.mask]
}

// Get returns the cached value for key and marks it most recently
// used. The second return reports whether the key was resident.
func (c *Cache[K, V]) Get(key K) (V, bool) {
	sh := c.shardOf(key)
	sh.mu.Lock()
	e, ok := sh.entries[key]
	if !ok {
		sh.mu.Unlock()
		c.misses.Add(1)
		var zero V
		return zero, false
	}
	sh.moveToFront(e)
	v := e.val
	sh.mu.Unlock()
	c.hits.Add(1)
	return v, true
}

// Set inserts or replaces the value for key, charging size bytes
// against the key's shard budget and evicting least-recently-used
// entries until the shard fits again. An entry whose size alone
// exceeds the shard budget is not cached (and evicts nothing); Set
// reports whether the entry is resident on return.
func (c *Cache[K, V]) Set(key K, val V, size int64) bool {
	if size < 0 {
		size = 0
	}
	sh := c.shardOf(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if size > sh.budget {
		// Too large to ever fit: admitting it would wipe the whole
		// shard for an entry that still cannot stay.
		if e, ok := sh.entries[key]; ok {
			sh.remove(e)
		}
		return false
	}
	if e, ok := sh.entries[key]; ok {
		sh.bytes += size - e.size
		e.val = val
		e.size = size
		sh.moveToFront(e)
	} else {
		e := &entry[K, V]{key: key, val: val, size: size}
		sh.entries[key] = e
		sh.pushFront(e)
		sh.bytes += size
	}
	for sh.bytes > sh.budget && sh.tail != nil {
		// The just-touched entry sits at the head and fits the budget
		// on its own, so the loop always terminates before evicting it.
		sh.remove(sh.tail)
		c.evictions.Add(1)
	}
	return true
}

// Delete removes key, reporting whether it was resident.
func (c *Cache[K, V]) Delete(key K) bool {
	sh := c.shardOf(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	e, ok := sh.entries[key]
	if ok {
		sh.remove(e)
	}
	return ok
}

// Purge drops every entry (counters are kept; evictions not counted).
func (c *Cache[K, V]) Purge() {
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		clear(sh.entries)
		sh.head, sh.tail = nil, nil
		sh.bytes = 0
		sh.mu.Unlock()
	}
}

// Len returns the number of resident entries.
func (c *Cache[K, V]) Len() int {
	n := 0
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		n += len(sh.entries)
		sh.mu.Unlock()
	}
	return n
}

// Bytes returns the total accounted size of resident entries.
func (c *Cache[K, V]) Bytes() int64 {
	var b int64
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		b += sh.bytes
		sh.mu.Unlock()
	}
	return b
}

// Stats snapshots the effectiveness counters and resident set size.
// The counters are read atomically but not as one transaction; under
// concurrent traffic the snapshot is approximate, as cache stats are.
func (c *Cache[K, V]) Stats() Stats {
	return Stats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Evictions: c.evictions.Load(),
		Entries:   c.Len(),
		Bytes:     c.Bytes(),
	}
}

// pushFront links a detached entry as most recently used. Callers hold
// the shard lock.
func (sh *shard[K, V]) pushFront(e *entry[K, V]) {
	e.prev = nil
	e.next = sh.head
	if sh.head != nil {
		sh.head.prev = e
	}
	sh.head = e
	if sh.tail == nil {
		sh.tail = e
	}
}

// moveToFront marks a resident entry most recently used.
func (sh *shard[K, V]) moveToFront(e *entry[K, V]) {
	if sh.head == e {
		return
	}
	sh.unlink(e)
	sh.pushFront(e)
}

// unlink detaches e from the recency list without touching the map or
// the byte accounting.
func (sh *shard[K, V]) unlink(e *entry[K, V]) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		sh.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		sh.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

// remove evicts e entirely: list, map, and byte accounting.
func (sh *shard[K, V]) remove(e *entry[K, V]) {
	sh.unlink(e)
	delete(sh.entries, e.key)
	sh.bytes -= e.size
}
