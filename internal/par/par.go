// Package par is the deterministic parallel-for substrate of the build
// pipeline: a bounded worker pool over fixed-shape index blocks plus
// blocked reductions that fold partial results in a fixed order.
//
// Determinism is the whole point. Every helper partitions [0, n) into
// blocks whose count and boundaries depend ONLY on n and minBlock —
// never on GOMAXPROCS, never on scheduling — and reductions combine
// per-block partials in ascending block order. A computation whose
// per-block work writes only block-owned state (or reduces through
// SumBlocks / ReduceVec) therefore produces bit-identical results at
// any worker count, including 1. That contract is what lets the
// parallel build stages (k-NN edge weighting, k-means++ seeding
// sweeps, EMR anchor attachment, gram accumulation, bound tables)
// promise byte-identical Save output across GOMAXPROCS settings, with
// tests holding them to it.
//
// Workers are plain goroutines pulling block ids off an atomic cursor:
// the pool is bounded by GOMAXPROCS(0) (so -cpu / GOMAXPROCS control
// build parallelism the same way they control the query path), blocks
// are coarse enough that cursor contention is noise, and uneven block
// costs self-balance because fast workers simply pull more blocks.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// defaultMinBlock is the block-size floor when callers pass
// minBlock <= 0: small enough to engage extra cores on mid-sized
// inputs, large enough that goroutine fan-out never dominates the
// per-element work of the cheapest kernels.
const defaultMinBlock = 512

// targetBlocks caps the block count: enough blocks that the pool
// load-balances on any realistic core count, few enough that per-block
// overhead (and per-block reduction storage) stays bounded. It is a
// fixed constant — NOT derived from the machine — because the block
// shape is part of the determinism contract.
const targetBlocks = 64

// Blocks returns the fixed block partition of [0, n): the block size
// and block count. Both depend only on n and minBlock, so the shape is
// identical on every machine and at every GOMAXPROCS — the property
// every determinism guarantee in this package rests on. count is 0 for
// n <= 0.
func Blocks(n, minBlock int) (size, count int) {
	if n <= 0 {
		return 0, 0
	}
	if minBlock <= 0 {
		minBlock = defaultMinBlock
	}
	size = (n + targetBlocks - 1) / targetBlocks
	if size < minBlock {
		size = minBlock
	}
	count = (n + size - 1) / size
	return size, count
}

// ForBlocks runs fn(b, lo, hi) for every block b of the fixed
// partition of [0, n), on up to GOMAXPROCS(0) workers. fn must confine
// its writes to state owned by block b (or by the index range
// [lo, hi)); under that rule the result is bit-identical at any worker
// count. fn is called at most once per block; blocks execute in
// arbitrary order and concurrently.
func ForBlocks(n, minBlock int, fn func(b, lo, hi int)) {
	size, count := Blocks(n, minBlock)
	if count == 0 {
		return
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > count {
		workers = count
	}
	if workers <= 1 {
		for b := 0; b < count; b++ {
			lo := b * size
			hi := lo + size
			if hi > n {
				hi = n
			}
			fn(b, lo, hi)
		}
		return
	}
	var cursor atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				b := int(cursor.Add(1)) - 1
				if b >= count {
					return
				}
				lo := b * size
				hi := lo + size
				if hi > n {
					hi = n
				}
				fn(b, lo, hi)
			}
		}()
	}
	wg.Wait()
}

// For is ForBlocks without the block id: fn(lo, hi) over the fixed
// partition of [0, n). The workhorse for per-index-independent work
// (each iteration writes only slot i of output slices).
func For(n, minBlock int, fn func(lo, hi int)) {
	ForBlocks(n, minBlock, func(_, lo, hi int) { fn(lo, hi) })
}

// SumBlocks computes a scalar sum as a fixed-shape blocked reduction:
// partial(lo, hi) produces each block's partial (summed internally in
// ascending index order by the caller), and the partials fold in
// ascending block order. The result is bit-identical at any worker
// count — but differs in rounding from a straight sequential sum over
// [0, n), which is why callers that switch to SumBlocks must move
// every implementation that is pinned bit-identical to them in
// lockstep.
func SumBlocks(n, minBlock int, partial func(lo, hi int) float64) float64 {
	_, count := Blocks(n, minBlock)
	if count == 0 {
		return 0
	}
	partials := make([]float64, count)
	ForBlocks(n, minBlock, func(b, lo, hi int) {
		partials[b] = partial(lo, hi)
	})
	var total float64
	for _, p := range partials {
		total += p
	}
	return total
}

// ReduceVec accumulates a dense vector as a fixed-shape blocked
// reduction: block(lo, hi, acc) scatters the contribution of index
// range [lo, hi) into a zeroed per-block accumulator of len(dst), and
// the accumulators fold into dst (added componentwise) in ascending
// block order. dst is typically zeroed by the caller; existing content
// is kept and added to. Bit-identical at any worker count; the same
// lockstep caveat as SumBlocks applies versus a sequential scatter.
//
// Per-block storage is count * len(dst) floats; Blocks caps count at
// 64, so the footprint stays bounded regardless of n.
func ReduceVec(dst []float64, n, minBlock int, block func(lo, hi int, acc []float64)) {
	_, count := Blocks(n, minBlock)
	if count == 0 {
		return
	}
	parts := make([][]float64, count)
	ForBlocks(n, minBlock, func(b, lo, hi int) {
		acc := make([]float64, len(dst))
		block(lo, hi, acc)
		parts[b] = acc
	})
	for _, acc := range parts {
		for j, v := range acc {
			dst[j] += v
		}
	}
}
