package par

import (
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

// withGOMAXPROCS runs fn at the given worker count and restores the
// previous setting.
func withGOMAXPROCS(t *testing.T, procs int, fn func()) {
	t.Helper()
	prev := runtime.GOMAXPROCS(procs)
	defer runtime.GOMAXPROCS(prev)
	fn()
}

func TestBlocksShapeIsFixed(t *testing.T) {
	cases := []struct{ n, minBlock int }{
		{0, 0}, {1, 0}, {511, 0}, {512, 0}, {513, 0},
		{10_000, 0}, {100_000, 0}, {100_000, 1}, {7, 1}, {64, 1},
		{1_000_000, 2048},
	}
	for _, c := range cases {
		size, count := Blocks(c.n, c.minBlock)
		if c.n <= 0 {
			if count != 0 {
				t.Fatalf("Blocks(%d,%d): count %d, want 0", c.n, c.minBlock, count)
			}
			continue
		}
		if count > targetBlocks {
			t.Fatalf("Blocks(%d,%d): count %d exceeds cap %d", c.n, c.minBlock, count, targetBlocks)
		}
		if size*count < c.n || size*(count-1) >= c.n {
			t.Fatalf("Blocks(%d,%d): size %d count %d does not tile [0,n)", c.n, c.minBlock, size, count)
		}
		// The shape must not depend on GOMAXPROCS.
		withGOMAXPROCS(t, 1, func() {
			s1, c1 := Blocks(c.n, c.minBlock)
			if s1 != size || c1 != count {
				t.Fatalf("Blocks(%d,%d) changed under GOMAXPROCS=1", c.n, c.minBlock)
			}
		})
	}
}

func TestForCoversEveryIndexOnce(t *testing.T) {
	for _, n := range []int{0, 1, 7, 512, 513, 10_000} {
		visits := make([]int32, n)
		For(n, 1, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&visits[i], 1)
			}
		})
		for i, v := range visits {
			if v != 1 {
				t.Fatalf("n=%d: index %d visited %d times", n, i, v)
			}
		}
	}
}

func TestForBlocksCallsEachBlockOnce(t *testing.T) {
	n := 10_000
	_, count := Blocks(n, 1)
	calls := make([]int32, count)
	ForBlocks(n, 1, func(b, lo, hi int) {
		atomic.AddInt32(&calls[b], 1)
	})
	for b, c := range calls {
		if c != 1 {
			t.Fatalf("block %d called %d times", b, c)
		}
	}
}

// TestSumBlocksDeterministicAcrossWorkerCounts is the contract the
// build pipeline rests on: the blocked reduction produces the same
// bits at GOMAXPROCS 1, 2, and 8.
func TestSumBlocksDeterministicAcrossWorkerCounts(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	n := 100_003
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = rng.NormFloat64()
	}
	sum := func() float64 {
		return SumBlocks(n, 0, func(lo, hi int) float64 {
			var s float64
			for i := lo; i < hi; i++ {
				s += xs[i]
			}
			return s
		})
	}
	var ref float64
	withGOMAXPROCS(t, 1, func() { ref = sum() })
	for _, procs := range []int{2, 8} {
		withGOMAXPROCS(t, procs, func() {
			if got := sum(); got != ref {
				t.Fatalf("GOMAXPROCS=%d: sum %v != serial %v", procs, got, ref)
			}
		})
	}
}

func TestReduceVecDeterministicAcrossWorkerCounts(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	n, d := 50_001, 37
	idx := make([]int, n)
	val := make([]float64, n)
	for i := range idx {
		idx[i] = rng.Intn(d)
		val[i] = rng.NormFloat64()
	}
	reduce := func() []float64 {
		dst := make([]float64, d)
		ReduceVec(dst, n, 0, func(lo, hi int, acc []float64) {
			for i := lo; i < hi; i++ {
				acc[idx[i]] += val[i]
			}
		})
		return dst
	}
	var ref []float64
	withGOMAXPROCS(t, 1, func() { ref = reduce() })
	for _, procs := range []int{2, 8} {
		withGOMAXPROCS(t, procs, func() {
			got := reduce()
			for j := range got {
				if got[j] != ref[j] {
					t.Fatalf("GOMAXPROCS=%d: dst[%d] %v != serial %v", procs, j, got[j], ref[j])
				}
			}
		})
	}
}

// TestPoolUnderRace hammers the pool from many concurrent callers so
// `go test -race` exercises the cursor/WaitGroup protocol and
// overlapping For invocations.
func TestPoolUnderRace(t *testing.T) {
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			n := 4096 + int(seed)*17
			out := make([]int, n)
			For(n, 1, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					out[i] = i * i
				}
			})
			for i, v := range out {
				if v != i*i {
					t.Errorf("seed %d: out[%d] = %d", seed, i, v)
					return
				}
			}
			s := SumBlocks(n, 1, func(lo, hi int) float64 {
				var acc float64
				for i := lo; i < hi; i++ {
					acc++
				}
				return acc
			})
			if s != float64(n) {
				t.Errorf("seed %d: count %v != %d", seed, s, n)
			}
		}(int64(g))
	}
	wg.Wait()
}
