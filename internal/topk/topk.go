// Package topk implements the bounded top-k collector used by the
// Mogul search algorithm (Algorithm 2 of the paper) and by k-NN graph
// construction. It maintains the k largest-scoring items seen so far
// and exposes the current threshold theta = the k-th best score, which
// drives the paper's upper-bound pruning.
package topk

import (
	"container/heap"
	"math"
	"sort"
)

// Item is a scored node.
type Item struct {
	// ID is the node identifier.
	ID int
	// Score is the ranking score; larger is better.
	Score float64
}

// Collector keeps the k items with the largest scores. The zero value
// is not usable; construct with New.
type Collector struct {
	k     int
	items minHeap
}

// New returns a collector for the k best items. k must be positive.
// Mirroring Algorithm 2 lines 2-3 ("append dummy nodes"), the collector
// behaves as if pre-filled with k dummy items of score 0 represented
// implicitly: Threshold is 0 until k real items arrive, and items with
// negative scores still enter so that genuinely negative rankings can
// be returned when nothing better exists.
func New(k int) *Collector {
	if k <= 0 {
		panic("topk: k must be positive")
	}
	return &Collector{k: k, items: make(minHeap, 0, k)}
}

// K returns the configured answer count.
func (c *Collector) K() int { return c.k }

// Len returns the number of real items currently held.
func (c *Collector) Len() int { return len(c.items) }

// Threshold returns theta, the smallest score among the current top-k
// (the pruning bound of Algorithm 2 line 14). While fewer than k items
// have been offered, it returns negative infinity so nothing is
// wrongly pruned; callers that want the paper's literal "theta = 0"
// initialization can clamp with math.Max(0, Threshold()).
func (c *Collector) Threshold() float64 {
	if len(c.items) < c.k {
		return math.Inf(-1)
	}
	return c.items[0].Score
}

// Offer considers a scored node and returns true when it entered the
// current top-k.
func (c *Collector) Offer(id int, score float64) bool {
	if len(c.items) < c.k {
		heap.Push(&c.items, Item{ID: id, Score: score})
		return true
	}
	if score <= c.items[0].Score {
		return false
	}
	c.items[0] = Item{ID: id, Score: score}
	heap.Fix(&c.items, 0)
	return true
}

// Results returns the collected items ordered by descending score,
// breaking ties by ascending ID for determinism.
func (c *Collector) Results() []Item {
	out := make([]Item, len(c.items))
	copy(out, c.items)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// minHeap is a min-heap on Score so the root is the weakest member of
// the current top-k.
type minHeap []Item

func (h minHeap) Len() int            { return len(h) }
func (h minHeap) Less(i, j int) bool  { return h[i].Score < h[j].Score }
func (h minHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *minHeap) Push(x interface{}) { *h = append(*h, x.(Item)) }
func (h *minHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}
