// Package topk implements the bounded top-k collector used by the
// Mogul search algorithm (Algorithm 2 of the paper) and by k-NN graph
// construction. It maintains the k largest-scoring items seen so far
// and exposes the current threshold theta = the k-th best score, which
// drives the paper's upper-bound pruning.
package topk

import (
	"math"
	"slices"
	"sort"
)

// Item is a scored node.
type Item struct {
	// ID is the node identifier.
	ID int
	// Score is the ranking score; larger is better.
	Score float64
}

// Collector keeps the k items with the largest scores. The zero value
// is not usable; construct with New.
type Collector struct {
	k     int
	items minHeap
}

// New returns a collector for the k best items. k must be positive.
// Mirroring Algorithm 2 lines 2-3 ("append dummy nodes"), the collector
// behaves as if pre-filled with k dummy items of score 0 represented
// implicitly: Threshold is 0 until k real items arrive, and items with
// negative scores still enter so that genuinely negative rankings can
// be returned when nothing better exists.
func New(k int) *Collector {
	if k <= 0 {
		panic("topk: k must be positive")
	}
	return &Collector{k: k, items: make(minHeap, 0, k)}
}

// K returns the configured answer count.
func (c *Collector) K() int { return c.k }

// Reset reconfigures the collector for a fresh top-k run, dropping any
// collected items while keeping the backing storage, so a collector can
// be reused across queries without allocating. k must be positive. The
// zero Collector is valid input: Reset turns it into the equivalent of
// New(k).
func (c *Collector) Reset(k int) {
	if k <= 0 {
		panic("topk: k must be positive")
	}
	c.k = k
	if cap(c.items) < k {
		c.items = make(minHeap, 0, k)
	}
	c.items = c.items[:0]
}

// Len returns the number of real items currently held.
func (c *Collector) Len() int { return len(c.items) }

// Threshold returns theta, the smallest score among the current top-k
// (the pruning bound of Algorithm 2 line 14). While fewer than k items
// have been offered, it returns negative infinity so nothing is
// wrongly pruned; callers that want the paper's literal "theta = 0"
// initialization can clamp with math.Max(0, Threshold()).
func (c *Collector) Threshold() float64 {
	if len(c.items) < c.k {
		return math.Inf(-1)
	}
	return c.items[0].Score
}

// Offer considers a scored node and returns true when it entered the
// current top-k.
func (c *Collector) Offer(id int, score float64) bool {
	if len(c.items) < c.k {
		c.items = append(c.items, Item{ID: id, Score: score})
		c.up(len(c.items) - 1)
		return true
	}
	if score <= c.items[0].Score {
		return false
	}
	c.items[0] = Item{ID: id, Score: score}
	c.down(0)
	return true
}

// up and down are the sift operations of container/heap, inlined on
// the concrete item type: heap.Push boxes every item into an
// interface{}, which costs one allocation per offered item — fatal for
// a collector sitting in the zero-allocation hot path. The comparison
// and swap order match container/heap exactly, so the heap layout (and
// therefore behavior under tied scores) is unchanged.
func (c *Collector) up(j int) {
	h := c.items
	for {
		i := (j - 1) / 2 // parent
		if i == j || h[j].Score >= h[i].Score {
			break
		}
		h[i], h[j] = h[j], h[i]
		j = i
	}
}

func (c *Collector) down(i int) {
	h := c.items
	n := len(h)
	for {
		j1 := 2*i + 1
		if j1 >= n || j1 < 0 {
			break
		}
		j := j1
		if j2 := j1 + 1; j2 < n && h[j2].Score < h[j1].Score {
			j = j2
		}
		if h[j].Score >= h[i].Score {
			break
		}
		h[i], h[j] = h[j], h[i]
		i = j
	}
}

// Results returns the collected items ordered by descending score,
// breaking ties by ascending ID for determinism.
func (c *Collector) Results() []Item {
	out := make([]Item, len(c.items))
	copy(out, c.items)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// Drain sorts the collected items in place (descending score, ties by
// ascending ID, exactly as Results) and returns a slice aliasing the
// collector's storage — no allocation. Draining breaks the internal
// heap invariant: the collector must be Reset before the next Offer,
// and the returned slice is valid only until that Reset.
func (c *Collector) Drain() []Item {
	slices.SortFunc(c.items, func(a, b Item) int {
		switch {
		case a.Score > b.Score:
			return -1
		case a.Score < b.Score:
			return 1
		case a.ID < b.ID:
			return -1
		case a.ID > b.ID:
			return 1
		default:
			return 0
		}
	})
	return c.items
}

// minHeap is a min-heap on Score (maintained by the inlined up/down
// sifts above) so the root is the weakest member of the current top-k.
type minHeap []Item

// Better is the ranking order shared by Results, Drain and Merger: a
// ranks strictly ahead of b on higher score, ties broken by ascending
// ID for determinism.
func Better(a, b Item) bool {
	if a.Score != b.Score {
		return a.Score > b.Score
	}
	return a.ID < b.ID
}

// Merger performs k-way merges of ranked item lists — the fan-out
// reduction of a sharded search: each shard answers with its own
// ranked top-k list, and the merger folds them into one global
// ranking. It owns the cursor scratch, so a Merger reused across
// queries merges without allocating (beyond what the caller-provided
// destination may grow). A Merger is not safe for concurrent use.
type Merger struct {
	pos []int
}

// Merge folds the given lists — each already sorted by Better (score
// descending, ties by ascending ID), as Results and Drain emit — into
// the k best items overall, appended to dst[:0] and returned. Input
// ids must be globally unique across lists (the caller remaps shard-
// local ids to global ids first). The shard count is small, so a
// linear scan over list heads beats heap bookkeeping.
func (m *Merger) Merge(dst []Item, k int, lists ...[]Item) []Item {
	if cap(m.pos) < len(lists) {
		m.pos = make([]int, len(lists))
	}
	pos := m.pos[:len(lists)]
	for i := range pos {
		pos[i] = 0
	}
	dst = dst[:0]
	for len(dst) < k {
		best := -1
		for i, l := range lists {
			if pos[i] >= len(l) {
				continue
			}
			if best < 0 || Better(l[pos[i]], lists[best][pos[best]]) {
				best = i
			}
		}
		if best < 0 {
			break
		}
		dst = append(dst, lists[best][pos[best]])
		pos[best]++
	}
	return dst
}
