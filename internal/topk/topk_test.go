package topk

import (
	"container/heap"
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestCollectorBasics(t *testing.T) {
	c := New(3)
	if c.K() != 3 || c.Len() != 0 {
		t.Fatalf("fresh collector K=%d Len=%d", c.K(), c.Len())
	}
	if !math.IsInf(c.Threshold(), -1) {
		t.Fatalf("empty threshold = %g, want -Inf", c.Threshold())
	}
	c.Offer(1, 5)
	c.Offer(2, 1)
	c.Offer(3, 3)
	if c.Threshold() != 1 {
		t.Fatalf("threshold = %g, want 1", c.Threshold())
	}
	if entered := c.Offer(4, 0.5); entered {
		t.Fatal("weaker item entered a full collector")
	}
	if entered := c.Offer(5, 4); !entered {
		t.Fatal("stronger item rejected")
	}
	res := c.Results()
	wantIDs := []int{1, 5, 3}
	for i, it := range res {
		if it.ID != wantIDs[i] {
			t.Fatalf("Results[%d].ID = %d, want %d (full: %+v)", i, it.ID, wantIDs[i], res)
		}
	}
}

func TestCollectorTieBreaksByID(t *testing.T) {
	c := New(3)
	c.Offer(9, 1)
	c.Offer(2, 1)
	c.Offer(5, 1)
	res := c.Results()
	if res[0].ID != 2 || res[1].ID != 5 || res[2].ID != 9 {
		t.Fatalf("tie break wrong: %+v", res)
	}
}

func TestCollectorPanicsOnBadK(t *testing.T) {
	for _, k := range []int{0, -1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("New(%d) did not panic", k)
				}
			}()
			New(k)
		}()
	}
}

func TestCollectorMatchesSort(t *testing.T) {
	// Property: the collector finds exactly the k best scores of a
	// random stream (scores kept distinct to avoid tie ambiguity).
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(200)
		k := 1 + rng.Intn(20)
		scores := rng.Perm(n) // distinct
		c := New(k)
		for id, s := range scores {
			c.Offer(id, float64(s))
		}
		got := c.Results()
		want := append([]int(nil), scores...)
		sort.Sort(sort.Reverse(sort.IntSlice(want)))
		limit := k
		if limit > n {
			limit = n
		}
		if len(got) != limit {
			return false
		}
		for i := 0; i < limit; i++ {
			if int(got[i].Score) != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestHeapInterfaceCompleteness(t *testing.T) {
	// Offer never pops, but minHeap implements heap.Interface fully;
	// exercise Pop directly so the invariant holds for any future use.
	h := &minHeap{}
	heap.Push(h, Item{ID: 1, Score: 3})
	heap.Push(h, Item{ID: 2, Score: 1})
	heap.Push(h, Item{ID: 3, Score: 2})
	got := make([]float64, 0, 3)
	for h.Len() > 0 {
		got = append(got, heap.Pop(h).(Item).Score)
	}
	want := []float64{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("heap pop order %v, want %v", got, want)
		}
	}
}

func TestNegativeScores(t *testing.T) {
	c := New(2)
	c.Offer(0, -5)
	c.Offer(1, -1)
	c.Offer(2, -3)
	res := c.Results()
	if res[0].ID != 1 || res[1].ID != 2 {
		t.Fatalf("negative scores mishandled: %+v", res)
	}
}
