package topk

import (
	"container/heap"
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestCollectorBasics(t *testing.T) {
	c := New(3)
	if c.K() != 3 || c.Len() != 0 {
		t.Fatalf("fresh collector K=%d Len=%d", c.K(), c.Len())
	}
	if !math.IsInf(c.Threshold(), -1) {
		t.Fatalf("empty threshold = %g, want -Inf", c.Threshold())
	}
	c.Offer(1, 5)
	c.Offer(2, 1)
	c.Offer(3, 3)
	if c.Threshold() != 1 {
		t.Fatalf("threshold = %g, want 1", c.Threshold())
	}
	if entered := c.Offer(4, 0.5); entered {
		t.Fatal("weaker item entered a full collector")
	}
	if entered := c.Offer(5, 4); !entered {
		t.Fatal("stronger item rejected")
	}
	res := c.Results()
	wantIDs := []int{1, 5, 3}
	for i, it := range res {
		if it.ID != wantIDs[i] {
			t.Fatalf("Results[%d].ID = %d, want %d (full: %+v)", i, it.ID, wantIDs[i], res)
		}
	}
}

func TestCollectorTieBreaksByID(t *testing.T) {
	c := New(3)
	c.Offer(9, 1)
	c.Offer(2, 1)
	c.Offer(5, 1)
	res := c.Results()
	if res[0].ID != 2 || res[1].ID != 5 || res[2].ID != 9 {
		t.Fatalf("tie break wrong: %+v", res)
	}
}

func TestCollectorPanicsOnBadK(t *testing.T) {
	for _, k := range []int{0, -1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("New(%d) did not panic", k)
				}
			}()
			New(k)
		}()
	}
}

func TestCollectorMatchesSort(t *testing.T) {
	// Property: the collector finds exactly the k best scores of a
	// random stream (scores kept distinct to avoid tie ambiguity).
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(200)
		k := 1 + rng.Intn(20)
		scores := rng.Perm(n) // distinct
		c := New(k)
		for id, s := range scores {
			c.Offer(id, float64(s))
		}
		got := c.Results()
		want := append([]int(nil), scores...)
		sort.Sort(sort.Reverse(sort.IntSlice(want)))
		limit := k
		if limit > n {
			limit = n
		}
		if len(got) != limit {
			return false
		}
		for i := 0; i < limit; i++ {
			if int(got[i].Score) != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// refHeap drives container/heap over the same comparator, so the
// inlined up/down sifts can be checked against the library they were
// transcribed from — including the resulting heap LAYOUT, which must
// match exactly so tied-score eviction behaves as it always did.
type refHeap []Item

func (h refHeap) Len() int            { return len(h) }
func (h refHeap) Less(i, j int) bool  { return h[i].Score < h[j].Score }
func (h refHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *refHeap) Push(x interface{}) { *h = append(*h, x.(Item)) }
func (h *refHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

func TestInlinedSiftsMatchContainerHeap(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(300)
		k := 1 + rng.Intn(20)
		c := New(k)
		ref := make(refHeap, 0, k)
		for id := 0; id < n; id++ {
			score := float64(rng.Intn(25)) // many ties
			c.Offer(id, score)
			if len(ref) < k {
				heap.Push(&ref, Item{ID: id, Score: score})
			} else if score > ref[0].Score {
				ref[0] = Item{ID: id, Score: score}
				heap.Fix(&ref, 0)
			}
			// Layouts must be identical element by element, not merely
			// equivalent heaps.
			if len(c.items) != len(ref) {
				return false
			}
			for i := range ref {
				if c.items[i] != ref[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestResetReusesStorage(t *testing.T) {
	c := New(4)
	for i := 0; i < 10; i++ {
		c.Offer(i, float64(i))
	}
	c.Reset(3)
	if c.K() != 3 || c.Len() != 0 {
		t.Fatalf("after Reset(3): K=%d Len=%d", c.K(), c.Len())
	}
	if !math.IsInf(c.Threshold(), -1) {
		t.Fatalf("threshold after Reset = %g, want -Inf", c.Threshold())
	}
	c.Offer(1, 5)
	c.Offer(2, 1)
	c.Offer(3, 3)
	c.Offer(4, 2)
	res := c.Results()
	if len(res) != 3 || res[0].ID != 1 || res[1].ID != 3 || res[2].ID != 4 {
		t.Fatalf("post-Reset results wrong: %+v", res)
	}

	// The zero Collector becomes usable through Reset.
	var z Collector
	z.Reset(2)
	z.Offer(7, 1)
	z.Offer(8, 2)
	z.Offer(9, 3)
	res = z.Results()
	if len(res) != 2 || res[0].ID != 9 || res[1].ID != 8 {
		t.Fatalf("zero-value collector after Reset: %+v", res)
	}

	// Reset must still reject non-positive k.
	defer func() {
		if recover() == nil {
			t.Fatal("Reset(0) did not panic")
		}
	}()
	c.Reset(0)
}

func TestDrainMatchesResults(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(200)
		k := 1 + rng.Intn(20)
		a, b := New(k), New(k)
		for id := 0; id < n; id++ {
			score := float64(rng.Intn(30)) // exercise score ties
			a.Offer(id, score)
			b.Offer(id, score)
		}
		want := a.Results()
		got := b.Drain()
		if len(got) != len(want) {
			return false
		}
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		// After a Reset the drained collector must behave like new.
		b.Reset(k)
		return b.Len() == 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestNegativeScores(t *testing.T) {
	c := New(2)
	c.Offer(0, -5)
	c.Offer(1, -1)
	c.Offer(2, -3)
	res := c.Results()
	if res[0].ID != 1 || res[1].ID != 2 {
		t.Fatalf("negative scores mishandled: %+v", res)
	}
}

// TestMergeMatchesSortOracle: merging ranked lists equals sorting the
// concatenation and taking the k best, for random list shapes, with
// score ties included.
func TestMergeMatchesSortOracle(t *testing.T) {
	var m Merger
	var dst []Item
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		numLists := 1 + rng.Intn(9)
		k := 1 + rng.Intn(25)
		lists := make([][]Item, numLists)
		var all []Item
		id := 0
		for i := range lists {
			n := rng.Intn(30)
			for j := 0; j < n; j++ {
				lists[i] = append(lists[i], Item{ID: id, Score: float64(rng.Intn(12))})
				id++
			}
			sort.Slice(lists[i], func(a, b int) bool { return Better(lists[i][a], lists[i][b]) })
			all = append(all, lists[i]...)
		}
		sort.Slice(all, func(a, b int) bool { return Better(all[a], all[b]) })
		if len(all) > k {
			all = all[:k]
		}
		dst = m.Merge(dst, k, lists...)
		if len(dst) != len(all) {
			return false
		}
		for i := range all {
			if dst[i] != all[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestMergeEdgeCases pins the boundary behaviour: no lists, empty
// lists, and k larger than the total item count.
func TestMergeEdgeCases(t *testing.T) {
	var m Merger
	if got := m.Merge(nil, 5); len(got) != 0 {
		t.Fatalf("merge of no lists produced %v", got)
	}
	if got := m.Merge(nil, 5, nil, []Item{}); len(got) != 0 {
		t.Fatalf("merge of empty lists produced %v", got)
	}
	a := []Item{{ID: 1, Score: 3}, {ID: 2, Score: 1}}
	b := []Item{{ID: 3, Score: 2}}
	got := m.Merge(nil, 10, a, b)
	want := []Item{{ID: 1, Score: 3}, {ID: 3, Score: 2}, {ID: 2, Score: 1}}
	if len(got) != len(want) {
		t.Fatalf("got %v want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v want %v", got, want)
		}
	}
	// Cross-list score tie resolves by ascending id.
	got = m.Merge(got, 1, []Item{{ID: 9, Score: 7}}, []Item{{ID: 4, Score: 7}})
	if got[0].ID != 4 {
		t.Fatalf("tie not broken by id: %v", got)
	}
}
