// Package cg implements the (preconditioned) conjugate gradient method
// for the symmetric positive definite systems at the heart of Manifold
// Ranking: (I - alpha*S) x = (1-alpha) q.
//
// CG is the natural bridge between the paper's two factorizations: the
// incomplete Cholesky factor that Mogul builds for *approximate*
// scores is exactly the classic IC(0) preconditioner, so a handful of
// preconditioned CG iterations turns Mogul's O(n) factor into *exact*
// scores without the fill-in that MogulE's complete factorization
// pays. The repository exposes this as the "MogulCG" ablation: it
// quantifies how much of MogulE's cost is avoidable when exactness is
// wanted only occasionally.
package cg

import (
	"fmt"
	"math"

	"mogul/internal/cholesky"
	"mogul/internal/sparse"
	"mogul/internal/vec"
)

// Options controls a CG solve.
type Options struct {
	// Tol is the relative residual target ||r||/||b|| (default 1e-8).
	Tol float64
	// MaxIter caps iterations (default 10*n).
	MaxIter int
	// Preconditioner, when non-nil, enables preconditioned CG using
	// M^{-1} ≈ A^{-1} given by the LDL^T factor (IC(0) for Mogul).
	Preconditioner *cholesky.Factor
}

// Result reports a solve.
type Result struct {
	// X is the solution vector.
	X []float64
	// Iterations actually used.
	Iterations int
	// Residual is the final relative residual.
	Residual float64
	// Converged reports whether Tol was reached within MaxIter.
	Converged bool
}

// Solve runs (preconditioned) conjugate gradients on A x = b for a
// symmetric positive definite sparse A.
func Solve(a *sparse.CSR, b []float64, opts Options) (*Result, error) {
	n := a.Rows
	if a.Cols != n {
		return nil, fmt.Errorf("cg: matrix must be square, got %dx%d", a.Rows, a.Cols)
	}
	if len(b) != n {
		return nil, fmt.Errorf("cg: rhs length %d, want %d", len(b), n)
	}
	tol := opts.Tol
	if tol <= 0 {
		tol = 1e-8
	}
	maxIter := opts.MaxIter
	if maxIter <= 0 {
		maxIter = 10 * n
		if maxIter < 100 {
			maxIter = 100
		}
	}
	if opts.Preconditioner != nil && opts.Preconditioner.N != n {
		return nil, fmt.Errorf("cg: preconditioner size %d, want %d", opts.Preconditioner.N, n)
	}

	normB := norm2(b)
	if normB == 0 {
		return &Result{X: make([]float64, n), Converged: true}, nil
	}

	x := make([]float64, n)
	r := append([]float64(nil), b...) // r = b - A*0
	z := make([]float64, n)           // reused across iterations
	applyPreconditionerTo(z, opts.Preconditioner, r)
	p := append([]float64(nil), z...)
	rz := dot(r, z)
	ap := make([]float64, n)

	res := &Result{}
	for iter := 0; iter < maxIter; iter++ {
		a.MulVecTo(ap, p)
		pap := dot(p, ap)
		if pap <= 0 {
			// Loss of positive definiteness (numerical); return the
			// best iterate found so far.
			break
		}
		alpha := rz / pap
		vec.Axpy(x, alpha, p)
		vec.Axpy(r, -alpha, ap)
		res.Iterations = iter + 1
		if norm2(r)/normB < tol {
			res.Converged = true
			break
		}
		applyPreconditionerTo(z, opts.Preconditioner, r)
		rzNew := dot(r, z)
		beta := rzNew / rz
		rz = rzNew
		for i := range p {
			p[i] = z[i] + beta*p[i]
		}
	}
	res.X = x
	res.Residual = norm2(r) / normB
	return res, nil
}

// applyPreconditionerTo computes z = M^{-1} r into the caller's buffer
// (or copies r when no preconditioner is set), so the per-iteration
// preconditioner application allocates nothing.
func applyPreconditionerTo(z []float64, m *cholesky.Factor, r []float64) {
	copy(z, r)
	if m != nil {
		m.SolveInPlace(z)
	}
}

func dot(a, b []float64) float64 {
	return vec.Dot(a, b)
}

func norm2(a []float64) float64 {
	return math.Sqrt(dot(a, a))
}
