package cg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"mogul/internal/cholesky"
	"mogul/internal/sparse"
)

// spd builds a random sparse symmetric diagonally dominant matrix.
func spd(n, deg int, rng *rand.Rand) *sparse.CSR {
	var entries []sparse.Coord
	rowAbs := make([]float64, n)
	for i := 0; i < n; i++ {
		for t := 0; t < deg; t++ {
			j := rng.Intn(n)
			if j == i {
				continue
			}
			v := -rng.Float64()
			entries = append(entries, sparse.Coord{Row: i, Col: j, Val: v})
			entries = append(entries, sparse.Coord{Row: j, Col: i, Val: v})
			rowAbs[i] -= v
			rowAbs[j] -= v
		}
	}
	for i := 0; i < n; i++ {
		entries = append(entries, sparse.Coord{Row: i, Col: i, Val: rowAbs[i] + 1})
	}
	m, err := sparse.NewFromCoords(n, n, entries)
	if err != nil {
		panic(err)
	}
	return m
}

func residual(a *sparse.CSR, x, b []float64) float64 {
	ax := a.MulVec(x)
	var num, den float64
	for i := range b {
		d := ax[i] - b[i]
		num += d * d
		den += b[i] * b[i]
	}
	if den == 0 {
		return math.Sqrt(num)
	}
	return math.Sqrt(num / den)
}

func TestSolveUnpreconditioned(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(60)
		a := spd(n, 2, rng)
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		res, err := Solve(a, b, Options{Tol: 1e-10})
		if err != nil || !res.Converged {
			return false
		}
		return residual(a, res.X, b) < 1e-8
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestSolvePreconditioned(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 10; trial++ {
		n := 20 + rng.Intn(80)
		a := spd(n, 3, rng)
		f, err := cholesky.IncompleteLDL(a, 0)
		if err != nil {
			t.Fatal(err)
		}
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		plain, err := Solve(a, b, Options{Tol: 1e-10})
		if err != nil {
			t.Fatal(err)
		}
		pre, err := Solve(a, b, Options{Tol: 1e-10, Preconditioner: f})
		if err != nil {
			t.Fatal(err)
		}
		if !pre.Converged {
			t.Fatalf("preconditioned CG did not converge: %+v", pre)
		}
		if residual(a, pre.X, b) > 1e-8 {
			t.Fatalf("preconditioned residual %g", residual(a, pre.X, b))
		}
		// IC(0) preconditioning should not need more iterations than
		// plain CG (usually far fewer).
		if pre.Iterations > plain.Iterations {
			t.Fatalf("preconditioned CG used %d iterations, plain %d", pre.Iterations, plain.Iterations)
		}
	}
}

func TestSolveCompletePreconditionerOneShot(t *testing.T) {
	// With the complete factor as preconditioner, M = A exactly, so CG
	// must converge in a single iteration.
	rng := rand.New(rand.NewSource(5))
	a := spd(40, 3, rng)
	f, err := cholesky.CompleteLDL(a, 0)
	if err != nil {
		t.Fatal(err)
	}
	b := make([]float64, 40)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	res, err := Solve(a, b, Options{Tol: 1e-10, Preconditioner: f})
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations > 2 {
		t.Fatalf("exact preconditioner took %d iterations", res.Iterations)
	}
}

func TestSolveEdgeCases(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := spd(10, 2, rng)
	// Zero rhs: zero solution, converged immediately.
	res, err := Solve(a, make([]float64, 10), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged || res.Iterations != 0 {
		t.Fatalf("zero rhs: %+v", res)
	}
	for _, x := range res.X {
		if x != 0 {
			t.Fatal("zero rhs gave non-zero solution")
		}
	}
	// Errors.
	rect, _ := sparse.NewFromCoords(2, 3, nil)
	if _, err := Solve(rect, []float64{1, 2}, Options{}); err == nil {
		t.Fatal("rectangular matrix accepted")
	}
	if _, err := Solve(a, []float64{1}, Options{}); err == nil {
		t.Fatal("wrong rhs length accepted")
	}
	small, _ := sparse.NewFromCoords(3, 3, []sparse.Coord{
		{Row: 0, Col: 0, Val: 1}, {Row: 1, Col: 1, Val: 1}, {Row: 2, Col: 2, Val: 1},
	})
	wrongF, err := cholesky.CompleteLDL(small, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Solve(a, make([]float64, 10), Options{Preconditioner: wrongF}); err == nil {
		t.Fatal("mismatched preconditioner accepted")
	}
}

func TestMaxIterRespected(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	a := spd(100, 3, rng)
	b := make([]float64, 100)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	res, err := Solve(a, b, Options{Tol: 1e-300, MaxIter: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Converged || res.Iterations > 3 {
		t.Fatalf("MaxIter violated: %+v", res)
	}
}
