package eval

import (
	"math"
	"sort"
	"time"
)

// AveragePrecision computes AP for one ranked answer list against a
// binary relevance oracle: the mean of precision@i over the ranks i
// that hold a relevant item, normalized by min(len(ranked),
// totalRelevant). Returns 0 when nothing is relevant.
//
// The paper evaluates with P@k and retrieval precision only; AP/MAP
// and NDCG are provided because any downstream user of a retrieval
// library will ask for them, and the quality experiments report them
// alongside the paper's metrics.
func AveragePrecision(ranked []int, relevant map[int]bool, totalRelevant int) float64 {
	if totalRelevant <= 0 {
		return 0
	}
	denom := totalRelevant
	if len(ranked) < denom {
		denom = len(ranked)
	}
	if denom == 0 {
		return 0
	}
	hits := 0
	var sum float64
	for i, id := range ranked {
		if relevant[id] {
			hits++
			sum += float64(hits) / float64(i+1)
		}
	}
	return sum / float64(denom)
}

// NDCG computes the normalized discounted cumulative gain of a ranked
// list against graded relevance (gain 0 when an id is absent). Returns
// 0 when the ideal DCG is 0.
func NDCG(ranked []int, gain map[int]float64) float64 {
	var dcg float64
	for i, id := range ranked {
		dcg += gain[id] / math.Log2(float64(i)+2)
	}
	ideal := make([]float64, 0, len(gain))
	for _, g := range gain {
		ideal = append(ideal, g)
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(ideal)))
	var idcg float64
	for i := 0; i < len(ideal) && i < len(ranked); i++ {
		idcg += ideal[i] / math.Log2(float64(i)+2)
	}
	if idcg == 0 {
		return 0
	}
	return dcg / idcg
}

// RankCorrelation computes Spearman's rho between two score vectors of
// equal length (ties share averaged ranks). It measures how faithfully
// an approximate ranking preserves the exact one across the whole
// database, a stricter lens than P@k.
func RankCorrelation(a, b []float64) float64 {
	if len(a) != len(b) || len(a) < 2 {
		return 0
	}
	ra := ranks(a)
	rb := ranks(b)
	n := float64(len(a))
	meanA, meanB := 0.0, 0.0
	for i := range ra {
		meanA += ra[i]
		meanB += rb[i]
	}
	meanA /= n
	meanB /= n
	var cov, varA, varB float64
	for i := range ra {
		da, db := ra[i]-meanA, rb[i]-meanB
		cov += da * db
		varA += da * da
		varB += db * db
	}
	if varA == 0 || varB == 0 {
		return 0
	}
	return cov / math.Sqrt(varA*varB)
}

// ranks assigns 1-based ranks with ties averaged.
func ranks(x []float64) []float64 {
	idx := make([]int, len(x))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return x[idx[a]] < x[idx[b]] })
	out := make([]float64, len(x))
	for i := 0; i < len(idx); {
		j := i
		for j < len(idx) && x[idx[j]] == x[idx[i]] {
			j++
		}
		// Average rank for the tie group [i, j).
		avg := (float64(i+1) + float64(j)) / 2
		for t := i; t < j; t++ {
			out[idx[t]] = avg
		}
		i = j
	}
	return out
}

// DurationStats summarizes a latency sample.
type DurationStats struct {
	Min, Median, P90, P99, Max time.Duration
	Mean                       time.Duration
}

// SummarizeDurations computes order statistics of a latency sample;
// the zero value is returned for empty input.
func SummarizeDurations(ds []time.Duration) DurationStats {
	if len(ds) == 0 {
		return DurationStats{}
	}
	sorted := append([]time.Duration(nil), ds...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	var total time.Duration
	for _, d := range sorted {
		total += d
	}
	q := func(p float64) time.Duration {
		i := int(p * float64(len(sorted)-1))
		return sorted[i]
	}
	return DurationStats{
		Min:    sorted[0],
		Median: q(0.5),
		P90:    q(0.9),
		P99:    q(0.99),
		Max:    sorted[len(sorted)-1],
		Mean:   total / time.Duration(len(sorted)),
	}
}
