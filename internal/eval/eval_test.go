package eval

import (
	"math"
	"strings"
	"testing"
	"time"

	"mogul/internal/cholesky"
	"mogul/internal/core"
	"mogul/internal/sparse"
)

func TestPAtK(t *testing.T) {
	if got := PAtK([]int{1, 2, 3}, []int{1, 2, 3}); got != 1 {
		t.Fatalf("identical sets P@k = %g", got)
	}
	if got := PAtK([]int{1, 2, 3}, []int{4, 5, 6}); got != 0 {
		t.Fatalf("disjoint sets P@k = %g", got)
	}
	if got := PAtK([]int{1, 9, 3}, []int{1, 2, 3}); math.Abs(got-2.0/3) > 1e-12 {
		t.Fatalf("partial overlap P@k = %g", got)
	}
	if got := PAtK([]int{1}, nil); got != 0 {
		t.Fatalf("empty reference P@k = %g", got)
	}
	// Short method answer against a longer reference is penalized.
	if got := PAtK([]int{1}, []int{1, 2}); got != 0.5 {
		t.Fatalf("short answer P@k = %g", got)
	}
}

func TestRetrievalPrecision(t *testing.T) {
	labels := []int{0, 0, 1, 1, 0}
	// Query id 0 (label 0); answers 0 (self, skipped), 1 (hit), 2 (miss).
	got := RetrievalPrecision([]int{0, 1, 2}, labels, 0, 0)
	if got != 0.5 {
		t.Fatalf("precision = %g, want 0.5", got)
	}
	if got := RetrievalPrecision([]int{0}, labels, 0, 0); got != 0 {
		t.Fatalf("self-only answers precision = %g", got)
	}
	if got := RetrievalPrecision(nil, labels, 0, 0); got != 0 {
		t.Fatalf("empty answers precision = %g", got)
	}
}

func TestTopKFromScores(t *testing.T) {
	scores := []float64{0.1, 0.9, 0.5, 0.7}
	ids := TopKFromScores(scores, 2, nil)
	if len(ids) != 2 || ids[0] != 1 || ids[1] != 3 {
		t.Fatalf("TopKFromScores = %v", ids)
	}
	ids = TopKFromScores(scores, 2, map[int]bool{1: true})
	if ids[0] != 3 || ids[1] != 2 {
		t.Fatalf("excluded TopKFromScores = %v", ids)
	}
}

func TestTopKIDs(t *testing.T) {
	res := []core.Result{{Node: 5, Score: 1}, {Node: 2, Score: 0.5}}
	ids := TopKIDs(res)
	if ids[0] != 5 || ids[1] != 2 {
		t.Fatalf("TopKIDs = %v", ids)
	}
}

func TestMeanMedian(t *testing.T) {
	if Mean(nil) != 0 {
		t.Fatal("Mean(nil) != 0")
	}
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Fatalf("Mean = %g", got)
	}
	if Median(nil) != 0 {
		t.Fatal("Median(nil) != 0")
	}
	ds := []time.Duration{3 * time.Second, time.Second, 2 * time.Second}
	if got := Median(ds); got != 2*time.Second {
		t.Fatalf("Median = %v", got)
	}
}

func TestTimeAndSeconds(t *testing.T) {
	d := Time(func() { time.Sleep(time.Millisecond) })
	if d < time.Millisecond {
		t.Fatalf("Time measured %v", d)
	}
	if s := Seconds(1500 * time.Millisecond); s != "1.500e+00" {
		t.Fatalf("Seconds = %q", s)
	}
}

func TestSpyCSR(t *testing.T) {
	m, err := sparse.NewFromCoords(10, 10, []sparse.Coord{
		{Row: 0, Col: 0, Val: 1}, {Row: 9, Col: 9, Val: 1}, {Row: 9, Col: 0, Val: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	plot := SpyCSR(m, 5)
	lines := strings.Split(strings.TrimRight(plot, "\n"), "\n")
	if len(lines) != 5 {
		t.Fatalf("spy has %d lines", len(lines))
	}
	if lines[0][0] == ' ' {
		t.Fatal("entry (0,0) not rendered")
	}
	if lines[4][4] == ' ' {
		t.Fatal("entry (9,9) not rendered")
	}
	if lines[0][4] != ' ' {
		t.Fatal("empty corner rendered")
	}
	if SpyCSR(&sparse.CSR{}, 5) != "" {
		t.Fatal("empty matrix should render empty plot")
	}
}

func TestSpyFactor(t *testing.T) {
	// Small SPD tridiagonal factor: diagonal band must appear.
	entries := []sparse.Coord{}
	n := 12
	for i := 0; i < n; i++ {
		entries = append(entries, sparse.Coord{Row: i, Col: i, Val: 4})
		if i > 0 {
			entries = append(entries, sparse.Coord{Row: i, Col: i - 1, Val: -1})
			entries = append(entries, sparse.Coord{Row: i - 1, Col: i, Val: -1})
		}
	}
	w, err := sparse.NewFromCoords(n, n, entries)
	if err != nil {
		t.Fatal(err)
	}
	f, err := cholesky.CompleteLDL(w, 0)
	if err != nil {
		t.Fatal(err)
	}
	plot := SpyFactor(f, 6)
	lines := strings.Split(strings.TrimRight(plot, "\n"), "\n")
	if len(lines) != 6 {
		t.Fatalf("spy has %d lines", len(lines))
	}
	for i := 0; i < 6; i++ {
		if lines[i][i] == ' ' {
			t.Fatalf("diagonal cell %d empty", i)
		}
	}
	// Upper triangle of L stays empty.
	if lines[0][5] != ' ' {
		t.Fatal("upper triangle rendered")
	}
}

func TestCSVTable(t *testing.T) {
	var b strings.Builder
	CSVTable(&b, [][]string{
		{"name", "value"},
		{"plain", "1"},
		{"with,comma", `has "quotes"`},
	})
	out := b.String()
	want := "name,value\nplain,1\n\"with,comma\",\"has \"\"quotes\"\"\"\n"
	if out != want {
		t.Fatalf("CSV output:\n%q\nwant\n%q", out, want)
	}
}

func TestTable(t *testing.T) {
	var b strings.Builder
	Table(&b, [][]string{
		{"name", "value"},
		{"alpha", "0.99"},
	})
	out := b.String()
	if !strings.Contains(out, "name") || !strings.Contains(out, "0.99") {
		t.Fatalf("table output missing content:\n%s", out)
	}
	if !strings.Contains(out, "----") {
		t.Fatal("missing header separator")
	}
}
