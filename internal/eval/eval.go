// Package eval provides the evaluation metrics and reporting helpers
// used by the experiment harness: P@k against a reference ranking,
// retrieval precision against ground-truth labels (Section 5.2.1 of
// the paper), wall-clock measurement, ASCII sparsity ("spy") plots for
// the Figure 6 reproduction, and aligned table output.
package eval

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"text/tabwriter"
	"time"

	"mogul/internal/cholesky"
	"mogul/internal/core"
	"mogul/internal/sparse"
	"mogul/internal/topk"
)

// TopKIDs extracts node ids from ranked results.
func TopKIDs(results []core.Result) []int {
	out := make([]int, len(results))
	for i, r := range results {
		out[i] = r.Node
	}
	return out
}

// TopKFromScores returns the ids of the k largest scores, excluding
// the ids in exclude (pass nil for none). Ties break on smaller id.
func TopKFromScores(scores []float64, k int, exclude map[int]bool) []int {
	c := topk.New(k)
	for i, s := range scores {
		if exclude[i] {
			continue
		}
		c.Offer(i, s)
	}
	items := c.Results()
	out := make([]int, len(items))
	for i, it := range items {
		out[i] = it.ID
	}
	return out
}

// PAtK is the paper's P@k: the fraction of the method's top-k answers
// that also appear in the reference (inverse-matrix) top-k. Both
// slices are treated as sets; the shorter length bounds the
// denominator so partial answers are not rewarded.
func PAtK(method, reference []int) float64 {
	if len(reference) == 0 {
		return 0
	}
	ref := make(map[int]bool, len(reference))
	for _, id := range reference {
		ref[id] = true
	}
	hits := 0
	for _, id := range method {
		if ref[id] {
			hits++
		}
	}
	return float64(hits) / float64(len(reference))
}

// RetrievalPrecision is the fraction of answers whose ground-truth
// label matches the query's label ("the ratio of answer nodes that
// correspond to the same objects as the query nodes", Section 5.2.1).
// The query node itself, when present in answers, is skipped — finding
// yourself is not retrieval.
func RetrievalPrecision(answers []int, labels []int, queryLabel, queryID int) float64 {
	count, hits := 0, 0
	for _, id := range answers {
		if id == queryID {
			continue
		}
		count++
		if labels[id] == queryLabel {
			hits++
		}
	}
	if count == 0 {
		return 0
	}
	return float64(hits) / float64(count)
}

// Mean returns the arithmetic mean, or 0 for empty input.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Median returns the median duration, or 0 for empty input.
func Median(ds []time.Duration) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), ds...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	return sorted[len(sorted)/2]
}

// Time runs f once and returns its wall-clock duration.
func Time(f func()) time.Duration {
	t0 := time.Now()
	f()
	return time.Since(t0)
}

// Seconds formats a duration the way the paper's log-scale plots read:
// scientific notation in seconds.
func Seconds(d time.Duration) string {
	return fmt.Sprintf("%.3e", d.Seconds())
}

// SpyFactor renders an ASCII density plot of the strictly-lower factor
// L (the Figure 6 reproduction): the n x n index square is bucketed
// into size x size character cells shaded by non-zero density.
func SpyFactor(f *cholesky.Factor, size int) string {
	if size <= 0 {
		size = 48
	}
	grid := make([][]int, size)
	for i := range grid {
		grid[i] = make([]int, size)
	}
	n := f.N
	if n == 0 {
		return ""
	}
	scale := float64(size) / float64(n)
	for j := 0; j < n; j++ {
		rows, _ := f.Col(j)
		cj := int(float64(j) * scale)
		for _, r := range rows {
			grid[int(float64(r)*scale)][cj]++
		}
		// Unit diagonal.
		grid[cj][cj]++
	}
	return renderGrid(grid)
}

// SpyCSR renders an ASCII density plot of a sparse matrix.
func SpyCSR(m *sparse.CSR, size int) string {
	if size <= 0 {
		size = 48
	}
	grid := make([][]int, size)
	for i := range grid {
		grid[i] = make([]int, size)
	}
	if m.Rows == 0 || m.Cols == 0 {
		return ""
	}
	rScale := float64(size) / float64(m.Rows)
	cScale := float64(size) / float64(m.Cols)
	for i := 0; i < m.Rows; i++ {
		cols, _ := m.Row(i)
		ri := int(float64(i) * rScale)
		for _, j := range cols {
			grid[ri][int(float64(j)*cScale)]++
		}
	}
	return renderGrid(grid)
}

// renderGrid shades cell counts with a short density ramp.
func renderGrid(grid [][]int) string {
	maxCount := 0
	for _, row := range grid {
		for _, c := range row {
			if c > maxCount {
				maxCount = c
			}
		}
	}
	ramp := []byte(" .:+#@")
	var b strings.Builder
	for _, row := range grid {
		for _, c := range row {
			if c == 0 {
				b.WriteByte(' ')
				continue
			}
			// Log shading: sparse cells stay visible next to dense
			// diagonal blocks.
			lvl := 1 + int(float64(len(ramp)-2)*math.Log1p(float64(c))/math.Log1p(float64(maxCount)))
			if lvl > len(ramp)-1 {
				lvl = len(ramp) - 1
			}
			b.WriteByte(ramp[lvl])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// CSVTable writes rows as RFC-4180-ish CSV (quoting cells containing
// commas or quotes); the first row is the header. The benchmark
// harness offers this as machine-readable output for replotting.
func CSVTable(w io.Writer, rows [][]string) {
	for _, row := range rows {
		for j, cell := range row {
			if j > 0 {
				fmt.Fprint(w, ",")
			}
			if strings.ContainsAny(cell, ",\"\n") {
				fmt.Fprintf(w, "\"%s\"", strings.ReplaceAll(cell, `"`, `""`))
			} else {
				fmt.Fprint(w, cell)
			}
		}
		fmt.Fprintln(w)
	}
}

// Table writes aligned rows; the first row is treated as the header.
func Table(w io.Writer, rows [][]string) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	for i, row := range rows {
		fmt.Fprintln(tw, strings.Join(row, "\t"))
		if i == 0 {
			sep := make([]string, len(row))
			for j, cell := range row {
				sep[j] = strings.Repeat("-", len(cell))
			}
			fmt.Fprintln(tw, strings.Join(sep, "\t"))
		}
	}
	tw.Flush()
}
