package eval

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestAveragePrecision(t *testing.T) {
	rel := map[int]bool{1: true, 3: true}
	// Ranked: relevant at positions 1 and 2 -> AP = (1/1 + 2/2)/2 = 1.
	if got := AveragePrecision([]int{1, 3}, rel, 2); got != 1 {
		t.Fatalf("perfect AP = %g", got)
	}
	// Relevant at positions 2 and 4 -> (1/2 + 2/4)/2 = 0.5.
	if got := AveragePrecision([]int{0, 1, 2, 3}, rel, 2); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("AP = %g, want 0.5", got)
	}
	if got := AveragePrecision([]int{0, 2}, rel, 2); got != 0 {
		t.Fatalf("no hits AP = %g", got)
	}
	if got := AveragePrecision(nil, rel, 2); got != 0 {
		t.Fatalf("empty ranked AP = %g", got)
	}
	if got := AveragePrecision([]int{1}, rel, 0); got != 0 {
		t.Fatalf("zero relevant AP = %g", got)
	}
	// Short list normalizes by list length, not total relevant.
	if got := AveragePrecision([]int{1}, rel, 2); got != 1 {
		t.Fatalf("short-list AP = %g, want 1", got)
	}
}

func TestNDCG(t *testing.T) {
	gain := map[int]float64{1: 3, 2: 2, 3: 1}
	// Ideal order.
	if got := NDCG([]int{1, 2, 3}, gain); math.Abs(got-1) > 1e-12 {
		t.Fatalf("ideal NDCG = %g", got)
	}
	// Worst order is below 1 but above 0.
	got := NDCG([]int{3, 2, 1}, gain)
	if got <= 0 || got >= 1 {
		t.Fatalf("reversed NDCG = %g", got)
	}
	if got := NDCG([]int{9, 8}, gain); got != 0 {
		t.Fatalf("irrelevant NDCG = %g", got)
	}
	if got := NDCG([]int{1}, map[int]float64{}); got != 0 {
		t.Fatalf("empty gains NDCG = %g", got)
	}
}

func TestRankCorrelation(t *testing.T) {
	a := []float64{1, 2, 3, 4, 5}
	if got := RankCorrelation(a, a); math.Abs(got-1) > 1e-12 {
		t.Fatalf("self correlation = %g", got)
	}
	b := []float64{5, 4, 3, 2, 1}
	if got := RankCorrelation(a, b); math.Abs(got+1) > 1e-12 {
		t.Fatalf("reversed correlation = %g", got)
	}
	if got := RankCorrelation(a, []float64{1, 1, 1, 1, 1}); got != 0 {
		t.Fatalf("constant correlation = %g", got)
	}
	if got := RankCorrelation([]float64{1}, []float64{2}); got != 0 {
		t.Fatalf("single-element correlation = %g", got)
	}
	if got := RankCorrelation(a, a[:3]); got != 0 {
		t.Fatalf("length mismatch correlation = %g", got)
	}
	// Property: rho is within [-1, 1] and invariant under monotone
	// transformation of one argument.
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(40)
		x := make([]float64, n)
		y := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
			y[i] = rng.NormFloat64()
		}
		rho := RankCorrelation(x, y)
		if rho < -1-1e-9 || rho > 1+1e-9 {
			return false
		}
		// exp is strictly monotone: ranks unchanged.
		ex := make([]float64, n)
		for i := range x {
			ex[i] = math.Exp(x[i])
		}
		return math.Abs(RankCorrelation(ex, y)-rho) < 1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestRanksTies(t *testing.T) {
	r := ranks([]float64{10, 20, 20, 30})
	want := []float64{1, 2.5, 2.5, 4}
	for i := range want {
		if r[i] != want[i] {
			t.Fatalf("ranks = %v, want %v", r, want)
		}
	}
}

func TestSummarizeDurations(t *testing.T) {
	if got := SummarizeDurations(nil); got.Max != 0 {
		t.Fatalf("empty summary: %+v", got)
	}
	var ds []time.Duration
	for i := 1; i <= 100; i++ {
		ds = append(ds, time.Duration(i)*time.Millisecond)
	}
	s := SummarizeDurations(ds)
	if s.Min != time.Millisecond || s.Max != 100*time.Millisecond {
		t.Fatalf("min/max: %+v", s)
	}
	if s.Median < 45*time.Millisecond || s.Median > 55*time.Millisecond {
		t.Fatalf("median: %v", s.Median)
	}
	if s.P90 < 85*time.Millisecond || s.P99 < 95*time.Millisecond {
		t.Fatalf("percentiles: %+v", s)
	}
	if s.Mean != 50500*time.Microsecond {
		t.Fatalf("mean: %v", s.Mean)
	}
}
