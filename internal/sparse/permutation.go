package sparse

import "fmt"

// Permutation represents the orthogonal node-permutation matrix P of
// the paper (Section 4.2.1): P_ij = 1 means original node j is placed
// at permuted position i, so A' = P A P^T satisfies
// A'[i][j] = A[NewToOld[i]][NewToOld[j]].
type Permutation struct {
	// NewToOld maps a permuted position to the original node id.
	NewToOld []int
	// OldToNew maps an original node id to its permuted position.
	OldToNew []int
}

// NewPermutation builds a Permutation from a newToOld ordering. It
// validates that the slice is a bijection on [0, n).
func NewPermutation(newToOld []int) (*Permutation, error) {
	n := len(newToOld)
	oldToNew := make([]int, n)
	seen := make([]bool, n)
	for pos, old := range newToOld {
		if old < 0 || old >= n {
			return nil, fmt.Errorf("sparse: permutation entry %d out of range [0,%d)", old, n)
		}
		if seen[old] {
			return nil, fmt.Errorf("sparse: permutation repeats node %d", old)
		}
		seen[old] = true
		oldToNew[old] = pos
	}
	return &Permutation{NewToOld: append([]int(nil), newToOld...), OldToNew: oldToNew}, nil
}

// IdentityPermutation returns the identity permutation on n nodes.
func IdentityPermutation(n int) *Permutation {
	p := &Permutation{NewToOld: make([]int, n), OldToNew: make([]int, n)}
	for i := 0; i < n; i++ {
		p.NewToOld[i] = i
		p.OldToNew[i] = i
	}
	return p
}

// Len returns the number of elements permuted.
func (p *Permutation) Len() int { return len(p.NewToOld) }

// Apply computes x' = P x: element at original index i moves to
// position OldToNew[i]. The result is a fresh slice.
func (p *Permutation) Apply(x []float64) []float64 {
	if len(x) != p.Len() {
		panic(fmt.Sprintf("sparse: Permutation.Apply length mismatch %d != %d", len(x), p.Len()))
	}
	out := make([]float64, len(x))
	for pos, old := range p.NewToOld {
		out[pos] = x[old]
	}
	return out
}

// ApplyInverse computes x = P^T x': the inverse of Apply.
func (p *Permutation) ApplyInverse(x []float64) []float64 {
	if len(x) != p.Len() {
		panic(fmt.Sprintf("sparse: Permutation.ApplyInverse length mismatch %d != %d", len(x), p.Len()))
	}
	out := make([]float64, len(x))
	for pos, old := range p.NewToOld {
		out[old] = x[pos]
	}
	return out
}

// PermuteSym computes A' = P A P^T for a square matrix A, i.e. the
// symmetric renumbering of a graph adjacency matrix (Equation 3 of the
// paper rewrites the ranking computation in this permuted basis).
func (p *Permutation) PermuteSym(a *CSR) (*CSR, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("sparse: PermuteSym needs a square matrix, got %dx%d", a.Rows, a.Cols)
	}
	if a.Rows != p.Len() {
		return nil, fmt.Errorf("sparse: permutation length %d does not match matrix size %d", p.Len(), a.Rows)
	}
	entries := make([]Coord, 0, a.NNZ())
	for i := 0; i < a.Rows; i++ {
		cols, vals := a.Row(i)
		pi := p.OldToNew[i]
		for k, j := range cols {
			entries = append(entries, Coord{Row: pi, Col: p.OldToNew[j], Val: vals[k]})
		}
	}
	return NewFromCoords(a.Rows, a.Cols, entries)
}

// Compose returns the permutation "q after p": applying the result is
// equivalent to applying p first and then q.
func (p *Permutation) Compose(q *Permutation) (*Permutation, error) {
	if p.Len() != q.Len() {
		return nil, fmt.Errorf("sparse: composing permutations of different sizes %d and %d", p.Len(), q.Len())
	}
	newToOld := make([]int, p.Len())
	for pos := range newToOld {
		newToOld[pos] = p.NewToOld[q.NewToOld[pos]]
	}
	return NewPermutation(newToOld)
}
