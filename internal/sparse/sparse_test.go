package sparse

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randomCoords(rng *rand.Rand, rows, cols, nnz int) []Coord {
	entries := make([]Coord, nnz)
	for i := range entries {
		entries[i] = Coord{Row: rng.Intn(rows), Col: rng.Intn(cols), Val: rng.NormFloat64()}
	}
	return entries
}

func TestNewFromCoordsBasics(t *testing.T) {
	m, err := NewFromCoords(3, 4, []Coord{
		{Row: 0, Col: 1, Val: 2},
		{Row: 2, Col: 3, Val: -1},
		{Row: 0, Col: 1, Val: 3}, // duplicate, should sum to 5
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.NNZ() != 2 {
		t.Fatalf("NNZ = %d, want 2 (duplicates summed)", m.NNZ())
	}
	if got := m.At(0, 1); got != 5 {
		t.Fatalf("At(0,1) = %g, want 5", got)
	}
	if got := m.At(1, 1); got != 0 {
		t.Fatalf("At(1,1) = %g, want 0", got)
	}
	if got := m.At(2, 3); got != -1 {
		t.Fatalf("At(2,3) = %g, want -1", got)
	}
}

func TestNewFromCoordsErrors(t *testing.T) {
	if _, err := NewFromCoords(-1, 2, nil); err == nil {
		t.Fatal("negative rows accepted")
	}
	if _, err := NewFromCoords(2, 2, []Coord{{Row: 2, Col: 0}}); err == nil {
		t.Fatal("out-of-range row accepted")
	}
	if _, err := NewFromCoords(2, 2, []Coord{{Row: 0, Col: -1}}); err == nil {
		t.Fatal("negative col accepted")
	}
}

func TestAtOutOfRangePanics(t *testing.T) {
	m := Identity(2)
	defer func() {
		if recover() == nil {
			t.Fatal("At out of range did not panic")
		}
	}()
	m.At(2, 0)
}

func TestDenseRoundTrip(t *testing.T) {
	// Property: CSR built from coords agrees elementwise with a dense
	// accumulation of the same coords.
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows, cols := 1+rng.Intn(10), 1+rng.Intn(10)
		entries := randomCoords(rng, rows, cols, rng.Intn(30))
		m, err := NewFromCoords(rows, cols, entries)
		if err != nil {
			return false
		}
		want := make([][]float64, rows)
		for i := range want {
			want[i] = make([]float64, cols)
		}
		for _, e := range entries {
			want[e.Row][e.Col] += e.Val
		}
		got := m.Dense()
		for i := range want {
			for j := range want[i] {
				if math.Abs(got[i][j]-want[i][j]) > 1e-12 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestMulVecAgainstDense(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows, cols := 1+rng.Intn(8), 1+rng.Intn(8)
		m, err := NewFromCoords(rows, cols, randomCoords(rng, rows, cols, rng.Intn(20)))
		if err != nil {
			return false
		}
		x := make([]float64, cols)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		got := m.MulVec(x)
		d := m.Dense()
		for i := 0; i < rows; i++ {
			var want float64
			for j := 0; j < cols; j++ {
				want += d[i][j] * x[j]
			}
			if math.Abs(got[i]-want) > 1e-10 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestTransposeInvolution(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows, cols := 1+rng.Intn(8), 1+rng.Intn(8)
		m, err := NewFromCoords(rows, cols, randomCoords(rng, rows, cols, rng.Intn(20)))
		if err != nil {
			return false
		}
		tt := m.Transpose().Transpose()
		if tt.Rows != m.Rows || tt.Cols != m.Cols || tt.NNZ() != m.NNZ() {
			return false
		}
		for i := 0; i < m.Rows; i++ {
			cols0, vals0 := m.Row(i)
			for k, j := range cols0 {
				if math.Abs(tt.At(i, j)-vals0[k]) > 1e-15 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestRowSumsDiagonalScaleClone(t *testing.T) {
	m, err := NewFromCoords(2, 2, []Coord{
		{Row: 0, Col: 0, Val: 1}, {Row: 0, Col: 1, Val: 2}, {Row: 1, Col: 0, Val: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	rs := m.RowSums()
	if rs[0] != 3 || rs[1] != 3 {
		t.Fatalf("RowSums = %v", rs)
	}
	d := m.Diagonal()
	if d[0] != 1 || d[1] != 0 {
		t.Fatalf("Diagonal = %v", d)
	}
	c := m.Clone()
	c.Scale(2)
	if m.At(0, 1) != 2 || c.At(0, 1) != 4 {
		t.Fatal("Scale affected original or missed clone")
	}
}

func TestIsSymmetric(t *testing.T) {
	sym, _ := NewFromCoords(2, 2, []Coord{
		{Row: 0, Col: 1, Val: 5}, {Row: 1, Col: 0, Val: 5},
	})
	if !sym.IsSymmetric(1e-12) {
		t.Fatal("symmetric matrix rejected")
	}
	asym, _ := NewFromCoords(2, 2, []Coord{{Row: 0, Col: 1, Val: 5}})
	if asym.IsSymmetric(1e-12) {
		t.Fatal("asymmetric matrix accepted")
	}
	rect, _ := NewFromCoords(2, 3, nil)
	if rect.IsSymmetric(1e-12) {
		t.Fatal("rectangular matrix accepted as symmetric")
	}
}

func TestDropZeros(t *testing.T) {
	m, _ := NewFromCoords(2, 2, []Coord{
		{Row: 0, Col: 0, Val: 1e-15}, {Row: 1, Col: 1, Val: 2},
	})
	d := m.DropZeros(1e-12)
	if d.NNZ() != 1 || d.At(1, 1) != 2 {
		t.Fatalf("DropZeros kept %d entries", d.NNZ())
	}
}

func TestIdentity(t *testing.T) {
	m := Identity(3)
	if m.NNZ() != 3 {
		t.Fatalf("identity NNZ = %d", m.NNZ())
	}
	x := []float64{1, 2, 3}
	y := m.MulVec(x)
	for i := range x {
		if y[i] != x[i] {
			t.Fatalf("I*x = %v", y)
		}
	}
}

func TestMulVecDimensionPanics(t *testing.T) {
	m := Identity(2)
	defer func() {
		if recover() == nil {
			t.Fatal("MulVec dimension mismatch did not panic")
		}
	}()
	m.MulVec([]float64{1, 2, 3})
}
